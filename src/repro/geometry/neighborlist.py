"""Buffered (Verlet / skin-radius) neighbor lists.

The seed code rebuilt its pair list from scratch on every force
evaluation, so the "conventional processor" baseline the paper's Anton
speedups are measured against (Figure 5, Table 4) was dominated by
pair-search overhead.  :class:`NeighborList` amortizes that cost the
way GROMACS does: bin atoms with the fully vectorized cell engine
(:func:`~repro.geometry.cells.cell_candidate_pairs`), keep every pair
out to ``cutoff + skin``, pre-apply the static exclusion mask once,
and reuse the list until some atom has moved more than ``skin / 2``
since the last build — the classical sufficient condition, since two
atoms approaching each other close the gap by at most ``skin``.

Determinism: at use time the list recomputes ``dx``/``r2`` from the
*current* wrapped positions and filters to the true cutoff, and the
cached candidates are kept in canonical ``(i, j)`` order, so the
filtered arrays are bitwise identical to a fresh
:func:`~repro.geometry.cells.neighbor_pairs` search at the same
configuration (after exclusion filtering).  Fixed-point force codes —
and even float force sums — therefore do not depend on the rebuild
history, which keeps checkpoint/restore replay and the machine
simulation's parallel invariance exact.
"""

from __future__ import annotations

from contextlib import nullcontext

import numpy as np

from repro.geometry.cells import (
    _FILTER_CHUNK,
    NeighborPairs,
    _canonical_order,
    brute_force_pairs,
    cell_candidate_pairs,
    ensemble_cell_candidate_pairs,
)
from repro.geometry.pbc import Box

__all__ = ["NeighborList", "EnsembleNeighborList"]


class NeighborList:
    """A buffered pair list for one box/cutoff/exclusion configuration.

    Parameters
    ----------
    box, cutoff:
        The periodic box and true interaction cutoff (angstroms).
    skin:
        Requested buffer radius.  The effective skin is capped so that
        ``cutoff + skin`` stays within the box's minimum-image limit
        (small test boxes); a capped — even zero — skin only means more
        frequent rebuilds, never wrong pairs.
    exclusions:
        Optional :class:`~repro.forcefield.exclusions.ExclusionTable`;
        when given, excluded and 1-4 pairs are removed from the cached
        candidates once per rebuild instead of on every evaluation.
    timers:
        Optional :class:`~repro.perf.timers.Timers`; build time is
        recorded under ``"neighbor_build"`` and build/reuse events
        under the ``"neighbor_builds"`` / ``"neighbor_reuses"``
        counters.
    kernels:
        Optional kernel suite from :mod:`repro.kernels`.  With the
        compiled tier, :meth:`pairs` runs the cutoff filter in C into
        persistent scratch and returns prefix *views* of that scratch
        — bitwise identical to the NumPy filter, but the views are
        only valid until the next :meth:`pairs` call.
    """

    def __init__(
        self,
        box: Box,
        cutoff: float,
        skin: float = 2.0,
        exclusions=None,
        timers=None,
        kernels=None,
    ):
        if cutoff <= 0:
            raise ValueError("cutoff must be positive")
        if cutoff > box.max_cutoff():
            raise ValueError(
                f"cutoff {cutoff} exceeds the minimum-image limit {box.max_cutoff()}"
            )
        if skin < 0:
            raise ValueError("skin must be non-negative")
        self.box = box
        self.cutoff = float(cutoff)
        self.skin = float(skin)
        self.effective_skin = float(min(skin, box.max_cutoff() - cutoff))
        self.reach = self.cutoff + self.effective_skin
        self.exclusions = exclusions
        self.timers = timers
        self.kernels = kernels
        self.n_builds = 0
        self.n_reuses = 0
        self._ref_positions: np.ndarray | None = None
        self._cand_i: np.ndarray | None = None
        self._cand_j: np.ndarray | None = None
        self._lengths = np.ascontiguousarray(box.lengths, dtype=np.float64)
        self._scratch_cap = -1
        self._oi = self._oj = self._odx = self._or2 = None

    # -- building ----------------------------------------------------------

    def build(self, positions: np.ndarray) -> None:
        """Force a rebuild of the candidate list at ``positions``."""
        self._build(self.box.wrap(np.asarray(positions, dtype=np.float64)))

    def _build(self, wrapped: np.ndarray) -> None:
        if self.timers is not None:
            with self.timers.time("neighbor_build"):
                self._build_inner(wrapped)
            self.timers.count("neighbor_builds")
        else:
            self._build_inner(wrapped)

    def _build_inner(self, wrapped: np.ndarray) -> None:
        cand = cell_candidate_pairs(wrapped, self.box, self.reach)
        if cand is None:
            bf = brute_force_pairs(wrapped, self.box, self.reach)
            ii, jj = bf.i, bf.j  # already canonical
            canonical = True
        else:
            ii, jj = self._filter_to_reach(wrapped, *cand)
            canonical = False
        if self.exclusions is not None and len(ii):
            keep = ~self.exclusions.is_excluded(ii, jj)
            ii, jj = ii[keep], jj[keep]
        if not canonical and len(ii):
            # Sorting only the reach-filtered survivors keeps the
            # pairs() output a pure function of the configuration at a
            # fraction of the cost of sorting raw cell candidates.
            order = _canonical_order(ii, jj, len(wrapped))
            ii, jj = ii[order], jj[order]
        self._cand_i, self._cand_j = ii, jj
        self._ref_positions = wrapped.copy()
        self.n_builds += 1

    def _filter_to_reach(
        self, wrapped: np.ndarray, ii: np.ndarray, jj: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Drop cell candidates beyond ``reach`` at the build configuration.

        A pair separated by more than ``cutoff + skin`` at build time
        cannot come within the cutoff before a rebuild triggers (each
        atom moves at most ``skin/2``), so only genuine Verlet-list
        members are cached.  Chunked to bound the transient ``dx``
        allocation.
        """
        r2max = self.reach * self.reach
        kept_i, kept_j = [], []
        for lo in range(0, len(ii), _FILTER_CHUNK):
            hi = lo + _FILTER_CHUNK
            d = self.box.minimum_image(wrapped[ii[lo:hi]] - wrapped[jj[lo:hi]])
            keep = np.sum(d * d, axis=1) < r2max
            kept_i.append(ii[lo:hi][keep])
            kept_j.append(jj[lo:hi][keep])
        if not kept_i:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        return np.concatenate(kept_i), np.concatenate(kept_j)

    # -- querying ----------------------------------------------------------

    @property
    def n_candidates(self) -> int:
        """Cached candidate pairs (within ``cutoff + skin`` at build)."""
        return 0 if self._cand_i is None else len(self._cand_i)

    def needs_rebuild(self, positions: np.ndarray) -> bool:
        """True when the cached list may miss a within-cutoff pair."""
        return self._needs_rebuild(self.box.wrap(np.asarray(positions, dtype=np.float64)))

    def _needs_rebuild(self, wrapped: np.ndarray) -> bool:
        ref = self._ref_positions
        if ref is None or len(ref) != len(wrapped):
            return True
        if self.effective_skin == 0.0:
            return True
        d = self.box.minimum_image(wrapped - ref)
        max_r2 = float(np.max(np.sum(d * d, axis=1))) if len(d) else 0.0
        return max_r2 > (self.effective_skin / 2.0) ** 2

    def pairs(self, positions: np.ndarray) -> NeighborPairs:
        """Within-cutoff pairs at ``positions``, rebuilding if needed.

        Rebuild or not, the returned arrays are a pure function of the
        current configuration: candidates are stored in canonical
        ``(i, j)`` order and ``dx``/``r2`` are recomputed from the
        wrapped current positions before filtering to the true cutoff.
        """
        wrapped = self.box.wrap(np.asarray(positions, dtype=np.float64))
        if self._needs_rebuild(wrapped):
            self._build(wrapped)
        else:
            self.n_reuses += 1
            if self.timers is not None:
                self.timers.count("neighbor_reuses")
        ii, jj = self._cand_i, self._cand_j
        k = self.kernels
        # The cutoff filter is the remaining per-call work; charge it to
        # its own leaf phase so hierarchical profiles attribute it
        # (observational only — no effect on the returned pairs).
        select = self.timers.time("pair_select") if self.timers is not None else nullcontext()
        with select:
            if k is not None and k.tier == "compiled" and len(ii):
                self._ensure_scratch(len(ii))
                m = k.pair_filter(
                    np.ascontiguousarray(wrapped),
                    ii,
                    jj,
                    self._lengths,
                    self.cutoff * self.cutoff,
                    self._oi,
                    self._oj,
                    self._odx,
                    self._or2,
                )
                return NeighborPairs(
                    i=self._oi[:m], j=self._oj[:m], dx=self._odx[:m], r2=self._or2[:m]
                )
            dx = self.box.minimum_image(wrapped[ii] - wrapped[jj])
            r2 = np.sum(dx * dx, axis=1)
            keep = r2 < self.cutoff * self.cutoff
            return NeighborPairs(i=ii[keep], j=jj[keep], dx=dx[keep], r2=r2[keep])

    def _ensure_scratch(self, n: int) -> None:
        """Size the compiled-filter output scratch to the candidate count."""
        if n <= self._scratch_cap:
            return
        self._scratch_cap = n
        self._oi = np.empty(n, dtype=np.int64)
        self._oj = np.empty(n, dtype=np.int64)
        self._odx = np.empty((n, 3), dtype=np.float64)
        self._or2 = np.empty(n, dtype=np.float64)


class EnsembleNeighborList(NeighborList):
    """Neighbor list for R replicas stacked along the atom axis.

    Replica ``r`` owns atom rows ``[r * n_solo, (r + 1) * n_solo)``; one
    batched binning/filter/sort pass builds all replicas' candidates
    (:func:`~repro.geometry.cells.ensemble_cell_candidate_pairs`), and
    the inherited :meth:`pairs` filter runs once over the concatenated
    candidate list.  The candidate list restricted to a replica is in
    that replica's canonical order (the global sort key ``i * RN + j``
    groups replica-major), and a rebuild triggered by *any* replica's
    drift is bitwise harmless for the others: :meth:`pairs` output is a
    pure function of the current configuration regardless of when the
    list was last built — the same skin-independence contract the solo
    list already guarantees.
    """

    def __init__(self, box, cutoff, replicas, n_solo, **kwargs):
        super().__init__(box, cutoff, **kwargs)
        self.replicas = int(replicas)
        self.n_solo = int(n_solo)

    def _build_inner(self, wrapped: np.ndarray) -> None:
        cand = ensemble_cell_candidate_pairs(
            wrapped, self.box, self.reach, self.replicas, self.n_solo
        )
        if cand is None:
            # Per-replica brute force; each block is canonical and the
            # replica-major concatenation stays globally canonical.
            parts_i, parts_j = [], []
            for r in range(self.replicas):
                sl = slice(r * self.n_solo, (r + 1) * self.n_solo)
                bf = brute_force_pairs(wrapped[sl], self.box, self.reach)
                parts_i.append(bf.i + r * self.n_solo)
                parts_j.append(bf.j + r * self.n_solo)
            ii = np.concatenate(parts_i)
            jj = np.concatenate(parts_j)
            canonical = True
        else:
            ii, jj = self._filter_to_reach(wrapped, *cand)
            canonical = False
        if self.exclusions is not None and len(ii):
            keep = ~self.exclusions.is_excluded(ii, jj)
            ii, jj = ii[keep], jj[keep]
        if not canonical and len(ii):
            order = _canonical_order(ii, jj, len(wrapped))
            ii, jj = ii[order], jj[order]
        self._cand_i, self._cand_j = ii, jj
        self._ref_positions = wrapped.copy()
        self.n_builds += 1
