"""Geometry substrate: periodic boxes, neighbor search, import regions."""

from repro.geometry.cells import (
    NeighborPairs,
    brute_force_pairs,
    cell_candidate_pairs,
    neighbor_pairs,
)
from repro.geometry.neighborlist import EnsembleNeighborList, NeighborList
from repro.geometry.pbc import Box
from repro.geometry.regions import (
    dilated_box_volume,
    half_shell_import_volume,
    nt_import_volume,
    nt_spreading_import_volume,
    voxel_region_volume,
)

__all__ = [
    "NeighborPairs",
    "NeighborList",
    "EnsembleNeighborList",
    "brute_force_pairs",
    "cell_candidate_pairs",
    "neighbor_pairs",
    "Box",
    "dilated_box_volume",
    "half_shell_import_volume",
    "nt_import_volume",
    "nt_spreading_import_volume",
    "voxel_region_volume",
]
