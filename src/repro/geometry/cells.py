"""Cell-list neighbor search under periodic boundary conditions.

Produces each within-cutoff pair exactly once, in canonical order
(``i < j``, sorted lexicographically by ``(i, j)``).  The canonical
ordering makes every pair-producing path — brute force, the vectorized
cell list, and the buffered :class:`~repro.geometry.neighborlist.NeighborList`
— return bitwise-identical arrays for the same configuration, so even
floating-point force sums do not depend on which search path ran.

This is the "conventional processor" pair-finding substrate; the
simulated machine uses the NT method in :mod:`repro.parallel.nt`
instead, and the two are cross-checked against each other in the
integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.pbc import Box

__all__ = [
    "NeighborPairs",
    "neighbor_pairs",
    "brute_force_pairs",
    "cell_candidate_pairs",
    "ensemble_cell_candidate_pairs",
]

# Half stencil: 13 offsets such that each unordered cell pair appears once.
_HALF_STENCIL = np.array(
    [
        (1, 0, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 1, 0),
        (1, -1, 0),
        (1, 0, 1),
        (1, 0, -1),
        (0, 1, 1),
        (0, 1, -1),
        (1, 1, 1),
        (1, 1, -1),
        (1, -1, 1),
        (1, -1, -1),
    ],
    dtype=np.int64,
)


@dataclass(frozen=True)
class NeighborPairs:
    """Unique within-cutoff atom pairs and their displacements.

    ``dx`` is the minimum-image displacement ``x[i] - x[j]`` and ``r2``
    its squared norm; all arrays share the leading pair axis.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r2: np.ndarray

    def __len__(self) -> int:
        return len(self.i)


def _empty_pairs() -> NeighborPairs:
    empty = np.empty(0, dtype=np.int64)
    return NeighborPairs(empty, empty.copy(), np.empty((0, 3)), np.empty(0))


#: Chunk size (pairs) for candidate distance filtering; bounds the
#: transient dx allocation when the raw candidate set is large.
_FILTER_CHUNK = 2_000_000


def _canonical_order(ii: np.ndarray, jj: np.ndarray, n: int) -> np.ndarray:
    """Permutation sorting ``(ii, jj)`` pairs lexicographically.

    Pairs are unique and ``ii < jj``, so the single combined key
    ``ii * n + jj`` (exact in int64 for any realistic atom count)
    orders them identically to ``np.lexsort((jj, ii))`` at a fraction
    of the cost.
    """
    return np.argsort(ii * np.int64(n) + jj)


def _filter(
    positions: np.ndarray,
    box: Box,
    ii: np.ndarray,
    jj: np.ndarray,
    cutoff: float,
    sort: bool = False,
) -> NeighborPairs:
    c2 = cutoff * cutoff
    out_i, out_j, out_dx, out_r2 = [], [], [], []
    for lo in range(0, len(ii), _FILTER_CHUNK):
        sl = slice(lo, lo + _FILTER_CHUNK)
        dx = box.minimum_image(positions[ii[sl]] - positions[jj[sl]])
        r2 = np.sum(dx * dx, axis=1)
        keep = r2 < c2
        out_i.append(ii[sl][keep])
        out_j.append(jj[sl][keep])
        out_dx.append(dx[keep])
        out_r2.append(r2[keep])
    if not out_i:
        return _empty_pairs()
    i = np.concatenate(out_i)
    j = np.concatenate(out_j)
    dx = np.concatenate(out_dx)
    r2 = np.concatenate(out_r2)
    if sort and len(i):
        order = _canonical_order(i, j, len(positions))
        return NeighborPairs(i=i[order], j=j[order], dx=dx[order], r2=r2[order])
    return NeighborPairs(i=i, j=j, dx=dx, r2=r2)


def brute_force_pairs(
    positions: np.ndarray, box: Box, cutoff: float, chunk: int = 512
) -> NeighborPairs:
    """All-pairs O(N²) search, chunked to bound memory.

    Correct for any cutoff up to ``box.max_cutoff()``; used directly for
    small or dense-in-cells systems and as the oracle in tests.
    """
    n = len(positions)
    out_i, out_j, out_dx, out_r2 = [], [], [], []
    c2 = cutoff * cutoff
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        d = box.minimum_image(positions[lo:hi, None, :] - positions[None, :, :])
        r2 = np.sum(d * d, axis=2)
        ii_rel, jj = np.nonzero((r2 < c2) & (np.arange(n)[None, :] > (lo + np.arange(hi - lo))[:, None]))
        out_i.append(ii_rel + lo)
        out_j.append(jj)
        out_dx.append(d[ii_rel, jj])
        out_r2.append(r2[ii_rel, jj])
    if not out_i:
        return _empty_pairs()
    return NeighborPairs(
        i=np.concatenate(out_i),
        j=np.concatenate(out_j),
        dx=np.concatenate(out_dx),
        r2=np.concatenate(out_r2),
    )


def _grouped_arange(counts: np.ndarray) -> np.ndarray:
    """Concatenation of ``arange(c)`` for each ``c`` in ``counts``."""
    counts = np.asarray(counts, dtype=np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    ends = np.cumsum(counts)
    return np.arange(total, dtype=np.int64) - np.repeat(ends - counts, counts)


#: Finest binning considered: cells down to ``reach / 3``.  Finer bins
#: cut candidate oversampling (cell volume vs. cutoff sphere) at the
#: price of a larger stencil; beyond ~3 the stencil bookkeeping wins.
_MAX_BIN_REFINE = 3


def _half_stencil_offsets(k: int, cell_size: np.ndarray, reach: float) -> np.ndarray:
    """Half stencil for cells of ``cell_size`` with bins ``reach / k``.

    All lexicographically-positive offsets in ``[-k, k]^3`` whose cells
    can hold a point within ``reach`` of the home cell: the per-axis
    face gap is ``(|o| - 1) * cell_size``, and offsets whose gap
    already exceeds ``reach`` are pruned (trims the corners of the
    stencil cube toward the cutoff sphere).  Each unordered cell pair
    appears under exactly one retained offset.
    """
    r = np.arange(-k, k + 1, dtype=np.int64)
    off = np.stack(np.meshgrid(r, r, r, indexing="ij"), axis=-1).reshape(-1, 3)
    lex_pos = (off[:, 0] > 0) | (
        (off[:, 0] == 0) & ((off[:, 1] > 0) | ((off[:, 1] == 0) & (off[:, 2] > 0)))
    )
    off = off[lex_pos]
    gap = np.maximum(np.abs(off) - 1, 0) * cell_size
    return off[np.sum(gap * gap, axis=1) < reach * reach]


def _choose_binning(
    positions: np.ndarray, box: Box, reach: float
) -> tuple[np.ndarray, np.ndarray] | None:
    """Pick the finest admissible binning (ncells, stencil) or ``None``.

    A refinement ``k`` bins at ``cell >= reach / k`` and needs at least
    ``2k + 1`` cells per axis so wrapped stencil cells stay distinct.
    Guards keep the empty-cell table and the per-atom stencil arrays
    proportional to the atom count.
    """
    n = len(positions)
    for k in range(_MAX_BIN_REFINE, 0, -1):
        ncells = np.floor(box.lengths * k / reach).astype(np.int64)
        if np.any(ncells < 2 * k + 1):
            continue
        if int(np.prod(ncells)) > max(64 * n, 4096):
            continue
        stencil = _half_stencil_offsets(k, box.lengths / ncells, reach)
        if n * (len(stencil) + 1) > 80_000_000:
            continue
        return ncells, stencil
    return None


def cell_candidate_pairs(
    positions: np.ndarray, box: Box, reach: float
) -> tuple[np.ndarray, np.ndarray] | None:
    """Vectorized candidate pairs from cell binning at ``reach``.

    Returns candidate pairs ``(i, j)`` with ``i < j`` — a superset of
    all pairs within ``reach``, in unspecified order (callers filter by
    distance first and canonically sort the survivors, which is far
    cheaper than sorting the raw candidates) — or ``None`` when the box
    admits no valid binning (callers fall back to the brute-force
    path).  ``positions`` must already be wrapped into the primary
    cell.

    The whole half-stencil sweep is array arithmetic: atoms are binned
    and sorted by flat cell id once, and for every (atom, stencil
    offset) the run of atoms in the neighboring cell is expanded with a
    grouped-arange — no per-cell Python loop.  Bins are refined down to
    ``reach / 3`` when the box allows it, shrinking the candidate
    overcount toward the cutoff-sphere volume.
    """
    if len(positions) < 64:
        return None
    binning = _choose_binning(positions, box, reach)
    if binning is None:
        return None
    ncells, stencil = binning

    cell_size = box.lengths / ncells
    # Modulo clamps both the exact-L edge (index == ncells) and any
    # -1 bin from floating-point jitter at 0 into valid cells.
    cidx = np.floor(positions / cell_size).astype(np.int64) % ncells
    flat = (cidx[:, 0] * ncells[1] + cidx[:, 1]) * ncells[2] + cidx[:, 2]

    n = len(positions)
    order = np.argsort(flat, kind="stable")  # atom ids in cell order
    sorted_flat = flat[order]
    ntot = int(np.prod(ncells))
    counts = np.bincount(sorted_flat, minlength=ntot)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

    # Intra-cell pairs: slot p pairs with slots p+1 .. end(cell)-1.
    slot = np.arange(n, dtype=np.int64)
    cell_end = starts[sorted_flat] + counts[sorted_flat]
    k_intra = cell_end - slot - 1
    ii_slot = np.repeat(slot, k_intra)
    jj_slot = ii_slot + 1 + _grouped_arange(k_intra)
    intra_i = order[ii_slot]
    intra_j = order[jj_slot]

    # Cross-cell pairs over the half stencil, all offsets at once.
    nbr = (cidx[:, None, :] + stencil[None, :, :]) % ncells  # (n, |stencil|, 3)
    nbr_flat = ((nbr[..., 0] * ncells[1] + nbr[..., 1]) * ncells[2] + nbr[..., 2]).ravel()
    cnt = counts[nbr_flat]
    cross_i = np.repeat(np.repeat(np.arange(n, dtype=np.int64), len(stencil)), cnt)
    jj_slot = np.repeat(starts[nbr_flat], cnt) + _grouped_arange(cnt)
    cross_j = order[jj_slot]

    ii = np.concatenate([intra_i, cross_i])
    jj = np.concatenate([intra_j, cross_j])
    return np.minimum(ii, jj), np.maximum(ii, jj)


def ensemble_cell_candidate_pairs(
    positions: np.ndarray, box: Box, reach: float, replicas: int, n_solo: int
) -> tuple[np.ndarray, np.ndarray] | None:
    """Candidate pairs for ``replicas`` stacked replicas in one sweep.

    ``positions`` holds R replicas of an ``n_solo``-atom system
    concatenated along the atom axis (replica ``r`` owns rows
    ``[r * n_solo, (r + 1) * n_solo)``), all sharing one box.  Atoms are
    binned with *replica-major* flat cell ids ``r * ncells_total +
    flat`` so cells of different replicas are distinct and no candidate
    ever crosses a replica boundary — load-bearing because replicas
    typically start from identical coordinates, where naive shared
    binning would pair every atom with its R-1 twins at distance zero.

    One bin pass, one stable sort, and one stencil sweep cover the whole
    ensemble; the candidate set restricted to replica ``r`` is a superset
    of that replica's within-``reach`` pairs (each at most once), so the
    downstream distance filter + canonical sort yield exactly the solo
    candidate list per replica.  Returns ``None`` when the box admits no
    binning (callers fall back to per-replica brute force).
    """
    if n_solo < 64:
        return None
    binning = _choose_binning(positions, box, reach)
    if binning is None:
        return None
    ncells, stencil = binning
    ntot = int(np.prod(ncells))
    if replicas * ntot > 50_000_000:
        return None

    cell_size = box.lengths / ncells
    cidx = np.floor(positions / cell_size).astype(np.int64) % ncells
    flat = (cidx[:, 0] * ncells[1] + cidx[:, 1]) * ncells[2] + cidx[:, 2]

    n = len(positions)
    rep = np.repeat(np.arange(replicas, dtype=np.int64) * ntot, n_solo)
    gflat = flat + rep
    order = np.argsort(gflat, kind="stable")
    sorted_gflat = gflat[order]
    counts = np.bincount(sorted_gflat, minlength=replicas * ntot)
    starts = np.concatenate(([0], np.cumsum(counts)[:-1]))

    # Intra-cell pairs: slot p pairs with slots p+1 .. end(cell)-1.
    slot = np.arange(n, dtype=np.int64)
    cell_end = starts[sorted_gflat] + counts[sorted_gflat]
    k_intra = cell_end - slot - 1
    ii_slot = np.repeat(slot, k_intra)
    jj_slot = ii_slot + 1 + _grouped_arange(k_intra)
    intra_i = order[ii_slot]
    intra_j = order[jj_slot]

    # Cross-cell pairs over the half stencil; neighbor cell ids carry
    # the same per-atom replica offset, staying within the replica.
    nbr = (cidx[:, None, :] + stencil[None, :, :]) % ncells
    nbr_flat = (
        (nbr[..., 0] * ncells[1] + nbr[..., 1]) * ncells[2]
        + nbr[..., 2]
        + rep[:, None]
    ).ravel()
    cnt = counts[nbr_flat]
    cross_i = np.repeat(np.repeat(np.arange(n, dtype=np.int64), len(stencil)), cnt)
    jj_slot = np.repeat(starts[nbr_flat], cnt) + _grouped_arange(cnt)
    cross_j = order[jj_slot]

    ii = np.concatenate([intra_i, cross_i])
    jj = np.concatenate([intra_j, cross_j])
    return np.minimum(ii, jj), np.maximum(ii, jj)


def neighbor_pairs(positions: np.ndarray, box: Box, cutoff: float) -> NeighborPairs:
    """Unique atom pairs with minimum-image distance < cutoff.

    Uses the vectorized cell list when the box admits a valid binning
    (at least 3 cells per axis at the coarsest refinement), otherwise
    falls back to the brute-force path.  Pairs come out in canonical
    ``(i, j)`` order either way.
    """
    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if cutoff > box.max_cutoff():
        raise ValueError(
            f"cutoff {cutoff} exceeds the minimum-image limit {box.max_cutoff()}"
        )
    cand = cell_candidate_pairs(positions, box, cutoff)
    if cand is None:
        return brute_force_pairs(positions, box, cutoff)
    return _filter(positions, box, cand[0], cand[1], cutoff, sort=True)


def _neighbor_pairs_loop(positions: np.ndarray, box: Box, cutoff: float) -> NeighborPairs:
    """Seed implementation: per-occupied-cell Python loop.

    Kept (not exported) as the benchmark baseline for the vectorized
    path and as a second oracle in tests.  Pair order is cell-major,
    not canonical.
    """
    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if cutoff > box.max_cutoff():
        raise ValueError(
            f"cutoff {cutoff} exceeds the minimum-image limit {box.max_cutoff()}"
        )
    ncells = np.floor(box.lengths / cutoff).astype(np.int64)
    if np.any(ncells < 3) or len(positions) < 64:
        return brute_force_pairs(positions, box, cutoff)

    cell_size = box.lengths / ncells
    cidx = np.floor(positions / cell_size).astype(np.int64) % ncells
    flat = (cidx[:, 0] * ncells[1] + cidx[:, 1]) * ncells[2] + cidx[:, 2]

    order = np.argsort(flat, kind="stable")
    sorted_atoms = order
    sorted_flat = flat[order]
    ntot = int(np.prod(ncells))
    starts = np.searchsorted(sorted_flat, np.arange(ntot))
    ends = np.searchsorted(sorted_flat, np.arange(ntot), side="right")

    def cell_id(cx: int, cy: int, cz: int) -> int:
        return (cx * ncells[1] + cy) * ncells[2] + cz

    out_i, out_j = [], []
    occupied = np.unique(sorted_flat)
    occ_x = occupied // (ncells[1] * ncells[2])
    occ_y = (occupied // ncells[2]) % ncells[1]
    occ_z = occupied % ncells[2]
    for c, cx, cy, cz in zip(occupied, occ_x, occ_y, occ_z):
        a = sorted_atoms[starts[c] : ends[c]]
        # Intra-cell pairs, i < j by position in the cell.
        if len(a) > 1:
            ii, jj = np.triu_indices(len(a), k=1)
            out_i.append(a[ii])
            out_j.append(a[jj])
        # Half-stencil neighbor cells.
        nbr_atoms = []
        for ox, oy, oz in _HALF_STENCIL:
            c2flat = cell_id((cx + ox) % ncells[0], (cy + oy) % ncells[1], (cz + oz) % ncells[2])
            if c2flat == c:
                continue
            s, e = starts[c2flat], ends[c2flat]
            if e > s:
                nbr_atoms.append(sorted_atoms[s:e])
        if nbr_atoms and len(a):
            b = np.concatenate(nbr_atoms)
            out_i.append(np.repeat(a, len(b)))
            out_j.append(np.tile(b, len(a)))
    if not out_i:
        return _empty_pairs()
    return _filter(positions, box, np.concatenate(out_i), np.concatenate(out_j), cutoff)
