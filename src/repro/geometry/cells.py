"""Cell-list neighbor search under periodic boundary conditions.

Produces each within-cutoff pair exactly once.  This is the
"conventional processor" pair-finding substrate; the simulated machine
uses the NT method in :mod:`repro.parallel.nt` instead, and the two are
cross-checked against each other in the integration tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.pbc import Box

__all__ = ["NeighborPairs", "neighbor_pairs", "brute_force_pairs"]

# Half stencil: 13 offsets such that each unordered cell pair appears once.
_HALF_STENCIL = np.array(
    [
        (1, 0, 0),
        (0, 1, 0),
        (0, 0, 1),
        (1, 1, 0),
        (1, -1, 0),
        (1, 0, 1),
        (1, 0, -1),
        (0, 1, 1),
        (0, 1, -1),
        (1, 1, 1),
        (1, 1, -1),
        (1, -1, 1),
        (1, -1, -1),
    ],
    dtype=np.int64,
)


@dataclass(frozen=True)
class NeighborPairs:
    """Unique within-cutoff atom pairs and their displacements.

    ``dx`` is the minimum-image displacement ``x[i] - x[j]`` and ``r2``
    its squared norm; all arrays share the leading pair axis.
    """

    i: np.ndarray
    j: np.ndarray
    dx: np.ndarray
    r2: np.ndarray

    def __len__(self) -> int:
        return len(self.i)


def _filter(positions: np.ndarray, box: Box, ii: np.ndarray, jj: np.ndarray, cutoff: float) -> NeighborPairs:
    dx = box.minimum_image(positions[ii] - positions[jj])
    r2 = np.sum(dx * dx, axis=1)
    keep = r2 < cutoff * cutoff
    return NeighborPairs(i=ii[keep], j=jj[keep], dx=dx[keep], r2=r2[keep])


def brute_force_pairs(
    positions: np.ndarray, box: Box, cutoff: float, chunk: int = 512
) -> NeighborPairs:
    """All-pairs O(N²) search, chunked to bound memory.

    Correct for any cutoff up to ``box.max_cutoff()``; used directly for
    small or dense-in-cells systems and as the oracle in tests.
    """
    n = len(positions)
    out_i, out_j, out_dx, out_r2 = [], [], [], []
    c2 = cutoff * cutoff
    for lo in range(0, n, chunk):
        hi = min(lo + chunk, n)
        d = box.minimum_image(positions[lo:hi, None, :] - positions[None, :, :])
        r2 = np.sum(d * d, axis=2)
        ii_rel, jj = np.nonzero((r2 < c2) & (np.arange(n)[None, :] > (lo + np.arange(hi - lo))[:, None]))
        out_i.append(ii_rel + lo)
        out_j.append(jj)
        out_dx.append(d[ii_rel, jj])
        out_r2.append(r2[ii_rel, jj])
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return NeighborPairs(empty, empty.copy(), np.empty((0, 3)), np.empty(0))
    return NeighborPairs(
        i=np.concatenate(out_i),
        j=np.concatenate(out_j),
        dx=np.concatenate(out_dx),
        r2=np.concatenate(out_r2),
    )


def neighbor_pairs(positions: np.ndarray, box: Box, cutoff: float) -> NeighborPairs:
    """Unique atom pairs with minimum-image distance < cutoff.

    Uses a cell list when the box admits at least 3 cells per axis,
    otherwise falls back to the brute-force path.
    """
    positions = box.wrap(np.asarray(positions, dtype=np.float64))
    if cutoff <= 0:
        raise ValueError("cutoff must be positive")
    if cutoff > box.max_cutoff():
        raise ValueError(
            f"cutoff {cutoff} exceeds the minimum-image limit {box.max_cutoff()}"
        )
    ncells = np.floor(box.lengths / cutoff).astype(np.int64)
    if np.any(ncells < 3) or len(positions) < 64:
        return brute_force_pairs(positions, box, cutoff)

    cell_size = box.lengths / ncells
    cidx = np.floor(positions / cell_size).astype(np.int64)
    cidx = np.minimum(cidx, ncells - 1)  # guard exact-L edge
    flat = (cidx[:, 0] * ncells[1] + cidx[:, 1]) * ncells[2] + cidx[:, 2]

    order = np.argsort(flat, kind="stable")
    sorted_atoms = order
    sorted_flat = flat[order]
    ntot = int(np.prod(ncells))
    starts = np.searchsorted(sorted_flat, np.arange(ntot))
    ends = np.searchsorted(sorted_flat, np.arange(ntot), side="right")

    def cell_atoms(cx: np.ndarray, cy: np.ndarray, cz: np.ndarray) -> int:
        return (cx * ncells[1] + cy) * ncells[2] + cz

    out_i, out_j = [], []
    occupied = np.unique(sorted_flat)
    occ_x = occupied // (ncells[1] * ncells[2])
    occ_y = (occupied // ncells[2]) % ncells[1]
    occ_z = occupied % ncells[2]
    for c, cx, cy, cz in zip(occupied, occ_x, occ_y, occ_z):
        a = sorted_atoms[starts[c] : ends[c]]
        # Intra-cell pairs, i < j by position in the cell.
        if len(a) > 1:
            ii, jj = np.triu_indices(len(a), k=1)
            out_i.append(a[ii])
            out_j.append(a[jj])
        # Half-stencil neighbor cells.
        nbr_atoms = []
        for ox, oy, oz in _HALF_STENCIL:
            c2flat = cell_atoms((cx + ox) % ncells[0], (cy + oy) % ncells[1], (cz + oz) % ncells[2])
            if c2flat == c:
                continue
            s, e = starts[c2flat], ends[c2flat]
            if e > s:
                nbr_atoms.append(sorted_atoms[s:e])
        if nbr_atoms and len(a):
            b = np.concatenate(nbr_atoms)
            out_i.append(np.repeat(a, len(b)))
            out_j.append(np.tile(b, len(a)))
    if not out_i:
        empty = np.empty(0, dtype=np.int64)
        return NeighborPairs(empty, empty.copy(), np.empty((0, 3)), np.empty(0))
    return _filter(positions, box, np.concatenate(out_i), np.concatenate(out_j), cutoff)
