"""Import-region geometry for range-limited parallelization methods.

Reproduces the geometric content of Figure 3: the volumes a node must
import under the NT method (tower + half plate), the traditional
half-shell method, and the symmetric-plate variant used for charge
spreading / force interpolation.  The analytic formulas here are
cross-validated against voxelized estimates in the tests and drive the
Figure 3 benchmark.

Conventions: the home box has dimensions ``(bx, by, bz)``; the cutoff is
``R``.  Import volume excludes the home box itself (atoms already
resident).
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "dilated_box_volume",
    "half_shell_import_volume",
    "nt_import_volume",
    "nt_spreading_import_volume",
    "voxel_region_volume",
]


def dilated_box_volume(dims: tuple[float, float, float], R: float) -> float:
    """Volume of a box Minkowski-dilated by a ball of radius R.

    V + R * surface + (pi R²/4) * (4 * edge-length sum)/4 + 4/3 pi R³ —
    i.e. faces contribute slabs, edges quarter-cylinders, corners
    sphere octants.
    """
    bx, by, bz = dims
    faces = 2.0 * R * (bx * by + by * bz + bz * bx)
    edges = math.pi * R * R * (bx + by + bz)
    corners = 4.0 / 3.0 * math.pi * R**3
    return bx * by * bz + faces + edges + corners


def half_shell_import_volume(dims: tuple[float, float, float], R: float) -> float:
    """Import volume of the traditional half-shell method (Figure 3b).

    Each node imports half of the dilation shell around its home box
    (pair symmetry halves the full shell).
    """
    bx, by, bz = dims
    return 0.5 * (dilated_box_volume(dims, R) - bx * by * bz)


def _dilated_footprint_area(bx: float, by: float, R: float) -> float:
    """2-D Minkowski dilation of the box footprint by a disc of radius R."""
    return bx * by + 2.0 * R * (bx + by) + math.pi * R * R


def nt_import_volume(dims: tuple[float, float, float], R: float) -> float:
    """Import volume of the NT method (Figure 3a).

    Tower: the home-box column extended by R up and down
    (``bx*by*2R`` of imported volume).  Plate: half of the dilated
    footprint ring, of slab thickness ``bz`` (the asymmetry reflects
    computing each pair once).
    """
    bx, by, bz = dims
    tower = bx * by * 2.0 * R
    plate_ring = (_dilated_footprint_area(bx, by, R) - bx * by) * bz
    return tower + 0.5 * plate_ring


def nt_spreading_import_volume(dims: tuple[float, float, float], R: float) -> float:
    """Import volume for the charge-spreading NT variant (Figure 3c).

    Interactions are between *atoms* and *mesh points*, which breaks the
    pair symmetry, so the full (symmetric) plate ring is needed.  Mesh
    points are computed locally, so only the tower is actually
    communicated; this function reports the geometric region size used
    for the Figure 3 comparison.
    """
    bx, by, bz = dims
    tower = bx * by * 2.0 * R
    plate_ring = (_dilated_footprint_area(bx, by, R) - bx * by) * bz
    return tower + plate_ring


def voxel_region_volume(
    dims: tuple[float, float, float],
    R: float,
    method: str = "nt",
    resolution: float = 0.25,
) -> float:
    """Voxelized estimate of an import-region volume (test oracle).

    Samples a grid of voxel centers in the bounding region around the
    home box and counts those inside the method's import region.

    Parameters
    ----------
    method:
        ``"nt"``, ``"half_shell"``, or ``"nt_spreading"``.
    resolution:
        Voxel edge length; error scales roughly linearly with it.
    """
    bx, by, bz = dims
    lo = np.array([-R, -R, -R])
    hi = np.array([bx + R, by + R, bz + R])
    counts = np.maximum(((hi - lo) / resolution).astype(int), 1)
    xs = lo[0] + (np.arange(counts[0]) + 0.5) * resolution
    ys = lo[1] + (np.arange(counts[1]) + 0.5) * resolution
    zs = lo[2] + (np.arange(counts[2]) + 0.5) * resolution
    X, Y, Z = np.meshgrid(xs, ys, zs, indexing="ij")

    def clamp_dist2_xy():
        dx = np.maximum(np.maximum(-X, X - bx), 0.0)
        dy = np.maximum(np.maximum(-Y, Y - by), 0.0)
        return dx * dx + dy * dy

    in_home = (X >= 0) & (X < bx) & (Y >= 0) & (Y < by) & (Z >= 0) & (Z < bz)
    if method == "half_shell":
        dx = np.maximum(np.maximum(-X, X - bx), 0.0)
        dy = np.maximum(np.maximum(-Y, Y - by), 0.0)
        dz = np.maximum(np.maximum(-Z, Z - bz), 0.0)
        in_shell = (dx * dx + dy * dy + dz * dz) < R * R
        # "Upper half" by the same (z, then y, then x) convention the NT
        # plate uses; on-boundary slices use y/x to break the tie.
        upper = (Z >= bz) | ((Z >= 0) & (Z < bz) & ((Y >= by) | ((Y >= 0) & (Y < by) & (X >= bx))))
        region = in_shell & upper & ~in_home
    elif method in ("nt", "nt_spreading"):
        tower = (
            (X >= 0)
            & (X < bx)
            & (Y >= 0)
            & (Y < by)
            & (Z >= -R)
            & (Z < bz + R)
        )
        in_plate_footprint = clamp_dist2_xy() < R * R
        plate_slab = (Z >= 0) & (Z < bz) & in_plate_footprint
        if method == "nt":
            outside_xy = ~((X >= 0) & (X < bx) & (Y >= 0) & (Y < by))
            upper_xy = (Y >= by) | ((Y >= 0) & (Y < by) & (X >= bx))
            plate = plate_slab & outside_xy & upper_xy
        else:
            plate = plate_slab
        region = (tower | plate) & ~in_home
    else:
        raise ValueError(f"unknown method {method!r}")
    return float(np.count_nonzero(region)) * resolution**3
