"""Orthorhombic periodic boxes and minimum-image arithmetic."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Box"]


@dataclass(frozen=True)
class Box:
    """An orthorhombic periodic simulation box.

    Positions live in [0, L) per axis; displacements use the
    minimum-image convention.  All lengths are in angstroms.
    """

    lengths: np.ndarray = field()

    def __post_init__(self) -> None:
        lengths = np.asarray(self.lengths, dtype=np.float64).reshape(3)
        if np.any(lengths <= 0) or not np.all(np.isfinite(lengths)):
            raise ValueError(f"box lengths must be positive and finite, got {lengths}")
        object.__setattr__(self, "lengths", lengths)

    @classmethod
    def cubic(cls, side: float) -> "Box":
        """A cubic box with the given side length."""
        return cls(np.full(3, float(side)))

    @property
    def volume(self) -> float:
        return float(np.prod(self.lengths))

    @property
    def is_cubic(self) -> bool:
        return bool(np.all(self.lengths == self.lengths[0]))

    def wrap(self, positions: np.ndarray) -> np.ndarray:
        """Map positions into the primary cell [0, L) per axis.

        ``np.mod`` can return exactly L for denormal-negative inputs;
        the correction keeps the half-open interval invariant airtight
        (cell indexing depends on it).
        """
        w = np.mod(np.asarray(positions, dtype=np.float64), self.lengths)
        return np.where(w >= self.lengths, w - self.lengths, w)

    def minimum_image(self, d: np.ndarray) -> np.ndarray:
        """Minimum-image displacement vectors (last axis = xyz)."""
        d = np.asarray(d, dtype=np.float64)
        return d - self.lengths * np.round(d / self.lengths)

    def displacement(self, xi: np.ndarray, xj: np.ndarray) -> np.ndarray:
        """Minimum-image displacement xi - xj (broadcasting)."""
        return self.minimum_image(np.asarray(xi, dtype=np.float64) - np.asarray(xj, dtype=np.float64))

    def distance2(self, xi: np.ndarray, xj: np.ndarray) -> np.ndarray:
        """Squared minimum-image distances."""
        d = self.displacement(xi, xj)
        return np.sum(d * d, axis=-1)

    def distance(self, xi: np.ndarray, xj: np.ndarray) -> np.ndarray:
        return np.sqrt(self.distance2(xi, xj))

    def max_cutoff(self) -> float:
        """Largest cutoff for which minimum image is unambiguous (L/2)."""
        return float(np.min(self.lengths)) / 2.0

    def fractional(self, positions: np.ndarray) -> np.ndarray:
        """Positions as box fractions in [0, 1)."""
        return self.wrap(positions) / self.lengths

    def from_fractional(self, frac: np.ndarray) -> np.ndarray:
        """Box fractions back to cartesian angstroms."""
        return np.asarray(frac, dtype=np.float64) * self.lengths
