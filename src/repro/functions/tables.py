"""Tiered, r²-indexed piecewise-cubic function tables (paper Section 4).

Each PPIP "computes two arbitrary functions of a distance, r ... The
tables are indexed by r² rather than r, avoiding an unnecessary square
root. A tiered indexing scheme divides the domain of r² into non-uniform
segments, allowing for narrower segments where the function is rapidly
varying."  Coefficients are minimax cubics (Remez), continuity-adjusted
at segment boundaries, and stored in block floating point.

The normalized domain is ``u = (r/R)²`` in [0, 1) for cutoff ``R``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.fixedpoint import BlockFloat, BlockFloatCodec, FixedFormat
from repro.functions.remez import remez_fit

__all__ = ["Tier", "ANTON_ELECTROSTATIC_TIERS", "TieredTable", "uniform_tiers"]


@dataclass(frozen=True)
class Tier:
    """A run of uniformly sized segments covering [start, end) of u."""

    start: float
    end: float
    segments: int

    def __post_init__(self) -> None:
        if not (0.0 <= self.start < self.end <= 1.0):
            raise ValueError(f"tier [{self.start}, {self.end}) outside [0, 1]")
        if self.segments < 1:
            raise ValueError("tier needs at least one segment")


#: The example configuration from Section 4: "the electrostatic table
#: might be configured with 64 entries for (r/R)² in [0, 1/128), 96
#: entries for [1/128, 1/32), 56 entries for [1/32, 1/4) and 24 entries
#: for [1/4, 1)" — 240 entries total.
ANTON_ELECTROSTATIC_TIERS: tuple[Tier, ...] = (
    Tier(0.0, 1.0 / 128, 64),
    Tier(1.0 / 128, 1.0 / 32, 96),
    Tier(1.0 / 32, 1.0 / 4, 56),
    Tier(1.0 / 4, 1.0, 24),
)


def uniform_tiers(n_segments: int, start: float = 0.0, end: float = 1.0) -> tuple[Tier, ...]:
    """A single uniform tier — the ablation baseline for tiered indexing."""
    return (Tier(start, end, n_segments),)


def _validate_tiers(tiers: Sequence[Tier]) -> None:
    for t0, t1 in zip(tiers, tiers[1:]):
        if abs(t0.end - t1.start) > 1e-15:
            raise ValueError("tiers must be contiguous and ascending")


class TieredTable:
    """A piecewise-cubic approximation of f(u) on tiered segments.

    Use :meth:`build` to construct from a function.  Evaluation modes:

    * :meth:`evaluate` — quantized (block-float) coefficients, float64
      Horner.  This is the table the functional MD kernels consume.
    * :meth:`evaluate_raw` — unquantized minimax coefficients, for
      attributing error to fit vs. coefficient quantization.
    * :meth:`evaluate_hardware` — integer Horner with a configurable
      datapath width, for the Figure 4 accuracy-vs-width study.
    """

    def __init__(
        self,
        tiers: Sequence[Tier],
        seg_starts: np.ndarray,
        seg_widths: np.ndarray,
        coeffs_quant: np.ndarray,
        coeffs_raw: np.ndarray,
        blocks: list[BlockFloat],
        mantissa_bits: int,
        fit_errors: np.ndarray,
    ):
        self.tiers = tuple(tiers)
        self.seg_starts = seg_starts
        self.seg_widths = seg_widths
        self.coeffs_quant = coeffs_quant
        self.coeffs_raw = coeffs_raw
        self.blocks = blocks
        self.mantissa_bits = mantissa_bits
        self.fit_errors = fit_errors
        self._seg_key: tuple[bytes, bytes] | None = None

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        f: Callable[[np.ndarray], np.ndarray],
        tiers: Sequence[Tier] = ANTON_ELECTROSTATIC_TIERS,
        degree: int = 3,
        mantissa_bits: int = 22,
        u_floor: float = 0.0,
        enforce_continuity: bool = True,
        grid_per_segment: int = 257,
    ) -> "TieredTable":
        """Fit ``f`` over all tier segments.

        Parameters
        ----------
        f:
            Vectorized function of u.
        u_floor:
            Physical kernels diverge at r = 0; u below this floor is
            evaluated as ``f(u_floor)`` (the hardware never consumes
            those entries because bonded-pair exclusions keep r away
            from 0).
        enforce_continuity:
            Apply the paper's endpoint adjustment so adjacent segments
            agree at their shared boundary (before quantization).
        """
        tiers = tuple(tiers)
        _validate_tiers(tiers)

        def f_safe(u: np.ndarray) -> np.ndarray:
            return np.asarray(f(np.maximum(u, u_floor)), dtype=np.float64)

        seg_starts_l: list[float] = []
        seg_widths_l: list[float] = []
        fits = []
        for tier in tiers:
            width = (tier.end - tier.start) / tier.segments
            for s in range(tier.segments):
                s0 = tier.start + s * width
                fits.append(
                    remez_fit(f_safe, s0, s0 + width, degree=degree, grid=grid_per_segment)
                )
                seg_starts_l.append(s0)
                seg_widths_l.append(width)

        n = len(fits)
        coeffs_raw = np.array([fit.coeffs for fit in fits])
        fit_errors = np.array([fit.max_error for fit in fits])

        if enforce_continuity and n > 1:
            # Endpoint values in t-space: p(0) and p(1).
            starts_v = coeffs_raw[:, 0].copy()
            ends_v = coeffs_raw.sum(axis=1)
            # Shared boundary value: average of the two one-sided values.
            bnd = 0.5 * (ends_v[:-1] + starts_v[1:])
            target0 = np.concatenate(([starts_v[0]], bnd))
            target1 = np.concatenate((bnd, [ends_v[-1]]))
            d0 = target0 - starts_v
            d1 = target1 - ends_v
            # c0 += d0 fixes p(0); c1 += (d1 - d0) then fixes p(1)
            # without touching the higher-order shape terms.
            coeffs_raw[:, 0] += d0
            coeffs_raw[:, 1] += d1 - d0

        codec = BlockFloatCodec(mantissa_bits=mantissa_bits)
        blocks = [codec.encode(coeffs_raw[i]) for i in range(n)]
        coeffs_quant = np.array([blk.decode() for blk in blocks])

        return cls(
            tiers=tiers,
            seg_starts=np.array(seg_starts_l),
            seg_widths=np.array(seg_widths_l),
            coeffs_quant=coeffs_quant,
            coeffs_raw=coeffs_raw,
            blocks=blocks,
            mantissa_bits=mantissa_bits,
            fit_errors=fit_errors,
        )

    # -- lookup ----------------------------------------------------------

    @property
    def n_segments(self) -> int:
        return len(self.seg_starts)

    @property
    def domain(self) -> tuple[float, float]:
        return float(self.tiers[0].start), float(self.tiers[-1].end)

    def segment_index(self, u: np.ndarray) -> np.ndarray:
        """Map u values to segment indices (clamped to the domain)."""
        u = np.asarray(u, dtype=np.float64)
        idx = np.searchsorted(self.seg_starts, u, side="right") - 1
        return np.clip(idx, 0, self.n_segments - 1)

    def _local_t(self, u: np.ndarray, idx: np.ndarray) -> np.ndarray:
        t = (np.asarray(u, dtype=np.float64) - self.seg_starts[idx]) / self.seg_widths[idx]
        return np.clip(t, 0.0, 1.0)

    def _evaluate_with(self, coeffs: np.ndarray, u: np.ndarray) -> np.ndarray:
        idx = self.segment_index(u)
        t = self._local_t(u, idx)
        c = coeffs[idx]  # (m, degree+1)
        out = c[..., -1].copy()
        for k in range(c.shape[-1] - 2, -1, -1):
            out = out * t + c[..., k]
        return out

    def segmentation_key(self) -> tuple[bytes, bytes]:
        """Hashable identity of the segment layout.

        Tables with equal keys map any ``u`` to the same ``(idx, t)``,
        so one :meth:`locate` result can feed all of their
        :meth:`evaluate_at` calls — the software analog of the PPIP
        sharing a single r²-to-segment lookup between its two function
        pipelines (Section 4).
        """
        if self._seg_key is None:
            self._seg_key = (self.seg_starts.tobytes(), self.seg_widths.tobytes())
        return self._seg_key

    def locate(self, u: np.ndarray | float) -> tuple[np.ndarray, np.ndarray]:
        """Segment indices and local coordinates ``t`` for ``u``.

        The pair is reusable by :meth:`evaluate_at` on any table whose
        :meth:`segmentation_key` matches this one's.
        """
        u = np.asarray(u, dtype=np.float64)
        idx = self.segment_index(u)
        return idx, self._local_t(u, idx)

    def evaluate_at(self, idx: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Quantized-coefficient Horner evaluation at a precomputed
        :meth:`locate` result — bitwise identical to :meth:`evaluate`
        of the same ``u``."""
        c = self.coeffs_quant[idx]
        out = c[..., -1].copy()
        for k in range(c.shape[-1] - 2, -1, -1):
            out = out * t + c[..., k]
        return out

    def evaluate(self, u: np.ndarray | float) -> np.ndarray:
        """Table value with block-float-quantized coefficients."""
        return self._evaluate_with(self.coeffs_quant, np.asarray(u, dtype=np.float64))

    def evaluate_raw(self, u: np.ndarray | float) -> np.ndarray:
        """Table value with full-precision minimax coefficients."""
        return self._evaluate_with(self.coeffs_raw, np.asarray(u, dtype=np.float64))

    def evaluate_hardware(
        self, u: np.ndarray | float, t_bits: int = 22, stage_bits: int = 26
    ) -> np.ndarray:
        """Integer-datapath Horner evaluation.

        ``t`` is quantized to ``t_bits`` and every Horner stage result is
        rounded to a fixed-point grid whose resolution is set by
        ``stage_bits`` relative to the stage's representable bound —
        a functional model of the 19–22-bit multiplier datapaths of
        Figure 4a.
        """
        u = np.asarray(u, dtype=np.float64)
        idx = self.segment_index(u)
        t_fmt = FixedFormat(t_bits)
        t = t_fmt.decode(t_fmt.encode_clip(self._local_t(u, idx)))
        c = self.coeffs_quant[idx]
        # Stage bound: the largest value the accumulator must hold.
        bound = float(np.max(np.abs(self.coeffs_quant))) * (c.shape[-1])
        bound = max(bound, 1e-300)
        step = bound * 2.0 ** (1 - stage_bits)
        out = c[..., -1].copy()
        for k in range(c.shape[-1] - 2, -1, -1):
            out = out * t + c[..., k]
            out = np.rint(out / step) * step
        return out

    # -- diagnostics -----------------------------------------------------

    def max_abs_error(self, f: Callable[[np.ndarray], np.ndarray], samples_per_segment: int = 64) -> float:
        """Max |table - f| over the domain (excluding any floored region)."""
        errs = []
        for i in range(self.n_segments):
            us = self.seg_starts[i] + self.seg_widths[i] * np.linspace(0, 1, samples_per_segment)
            errs.append(np.max(np.abs(self.evaluate(us) - f(us))))
        return float(np.max(errs))

    def continuity_jumps(self) -> np.ndarray:
        """|left - right| value mismatch at each interior boundary."""
        ends_v = self.coeffs_quant.sum(axis=1)[:-1]
        starts_v = self.coeffs_quant[1:, 0]
        return np.abs(ends_v - starts_v)
