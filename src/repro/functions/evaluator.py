"""PPIP-style tabulated kernel evaluation for pairwise interactions.

A PPIP computes pairwise forces as table-driven functions of the squared
distance (paper Section 4).  :class:`KernelTableSet` bundles the tables a
simulation needs — real-space electrostatic force/energy and the two
van der Waals dispersion kernels — indexed by ``u = (r/R)²`` for a
cutoff ``R``, so the MD nonbonded path can run in "Anton numerics" mode
and be compared against the analytic double-precision path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.functions.tables import ANTON_ELECTROSTATIC_TIERS, Tier, TieredTable

__all__ = ["KernelTableSet"]


class KernelTableSet:
    """Tabulated kernels of r² for a fixed interaction cutoff.

    Parameters
    ----------
    cutoff:
        Interaction cutoff R in angstroms; tables span r in
        (r_floor, R).
    r_floor:
        Smallest physical pair distance the tables must represent.
        Non-excluded nonbonded pairs in condensed-phase MD never
        approach closer than ~0.8 A.
    """

    def __init__(self, cutoff: float, r_floor: float = 0.8):
        if cutoff <= r_floor:
            raise ValueError(f"cutoff {cutoff} must exceed r_floor {r_floor}")
        self.cutoff = float(cutoff)
        self.r_floor = float(r_floor)
        self.u_floor = (r_floor / cutoff) ** 2
        self.tables: dict[str, TieredTable] = {}

    def add(
        self,
        name: str,
        f_of_r2: Callable[[np.ndarray], np.ndarray],
        tiers: Sequence[Tier] = ANTON_ELECTROSTATIC_TIERS,
        mantissa_bits: int = 22,
        degree: int = 3,
    ) -> TieredTable:
        """Tabulate ``f_of_r2`` (a function of r² in A²) over the cutoff.

        The table stores ``g(u) = f_of_r2(u * R²)`` with the hardware's
        tiered segmentation; u below the floor is clamped (exclusions
        guarantee it is never consumed).
        """
        r2max = self.cutoff**2

        def g(u: np.ndarray) -> np.ndarray:
            return f_of_r2(np.asarray(u, dtype=np.float64) * r2max)

        table = TieredTable.build(
            g,
            tiers=tiers,
            degree=degree,
            mantissa_bits=mantissa_bits,
            u_floor=self.u_floor,
        )
        self.tables[name] = table
        return table

    def normalize(self, r2: np.ndarray | float) -> np.ndarray:
        """Map squared distances to the clamped table coordinate ``u``.

        Exactly the transform :meth:`evaluate` applies internally, so a
        normalized array can be shared across several table lookups.
        """
        u = np.asarray(r2, dtype=np.float64) / self.cutoff**2
        return np.minimum(u, np.nextafter(1.0, 0.0))

    def evaluate(self, name: str, r2: np.ndarray | float) -> np.ndarray:
        """Evaluate a tabulated kernel at squared distances r² (A²)."""
        return self.tables[name].evaluate(self.normalize(r2))

    def shared_evaluator(self, u: np.ndarray):
        """A one-``locate``-many-tables evaluator over fixed ``u``.

        Returns ``ev(name)`` which evaluates table ``name`` at ``u``
        (pre-normalized via :meth:`normalize`), computing the
        segment-index/local-coordinate lookup once per distinct
        segmentation instead of once per table.  Tables sharing a
        :meth:`~repro.functions.tables.TieredTable.segmentation_key`
        reuse the lookup; results are bitwise identical to
        :meth:`evaluate`.
        """
        cache: dict[tuple[bytes, bytes], tuple[np.ndarray, np.ndarray]] = {}

        def ev(name: str) -> np.ndarray:
            table = self.tables[name]
            key = table.segmentation_key()
            loc = cache.get(key)
            if loc is None:
                loc = cache[key] = table.locate(u)
            return table.evaluate_at(*loc)

        return ev

    def names(self) -> list[str]:
        return sorted(self.tables)

    def __contains__(self, name: str) -> bool:
        return name in self.tables
