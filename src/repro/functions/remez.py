"""Remez exchange algorithm for minimax polynomial approximation.

The paper (Section 4): "the Remez exchange algorithm is used to compute
the minimax polynomial on each segment, after which the coefficients are
adjusted to make the function continuous across segment boundaries."

This module implements the classic single-exchange Remez iteration for a
scalar function on an interval, returning coefficients in a *normalized*
local variable ``t`` in [0, 1] (the form the table hardware evaluates,
since the segment index supplies the offset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

__all__ = ["MinimaxFit", "remez_fit", "polyval_ascending"]


def polyval_ascending(coeffs: np.ndarray, t: np.ndarray | float) -> np.ndarray:
    """Evaluate a polynomial with ascending-order coefficients by Horner.

    ``coeffs[k]`` multiplies ``t**k`` — the layout used by the table
    hardware (constant term first, as it is the widest datapath in
    Figure 4a).
    """
    t = np.asarray(t, dtype=np.float64)
    out = np.full_like(t, coeffs[-1], dtype=np.float64)
    for c in coeffs[-2::-1]:
        out = out * t + c
    return out


@dataclass(frozen=True)
class MinimaxFit:
    """Result of a minimax fit on [a, b] in normalized t = (x-a)/(b-a)."""

    coeffs: np.ndarray  # ascending order, in t
    a: float
    b: float
    max_error: float
    iterations: int
    converged: bool

    def __call__(self, x: np.ndarray | float) -> np.ndarray:
        t = (np.asarray(x, dtype=np.float64) - self.a) / (self.b - self.a)
        return polyval_ascending(self.coeffs, t)


def _alternating_extrema(err: np.ndarray, k: int) -> np.ndarray | None:
    """Pick k alternating-sign extremum indices from a dense error grid.

    Maximal runs of constant sign alternate by construction; within each
    run we take the largest |err|.  If there are more than k runs we
    keep the contiguous window of k runs whose smallest extremum is
    largest (preserving alternation).  Returns None if fewer than k runs
    exist (the iteration has degenerated).
    """
    signs = np.sign(err)
    signs[signs == 0] = 1
    # Boundaries of maximal constant-sign runs.
    change = np.nonzero(np.diff(signs))[0] + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(err)]))
    if len(starts) < k:
        return None
    peaks = np.empty(len(starts), dtype=np.int64)
    for i, (s, e) in enumerate(zip(starts, ends)):
        peaks[i] = s + int(np.argmax(np.abs(err[s:e])))
    if len(peaks) == k:
        return peaks
    peak_mags = np.abs(err[peaks])
    best_lo, best_val = 0, -np.inf
    for lo in range(len(peaks) - k + 1):
        v = float(np.min(peak_mags[lo : lo + k]))
        if v > best_val:
            best_val, best_lo = v, lo
    return peaks[best_lo : best_lo + k]


def remez_fit(
    f: Callable[[np.ndarray], np.ndarray],
    a: float,
    b: float,
    degree: int = 3,
    grid: int = 4000,
    max_iter: int = 40,
    rel_tol: float = 1e-10,
) -> MinimaxFit:
    """Minimax polynomial approximation of ``f`` on [a, b].

    Parameters
    ----------
    f:
        Vectorized function of the original variable ``x``.
    a, b:
        Interval endpoints, ``a < b``.
    degree:
        Polynomial degree (Anton tables use cubics).
    grid:
        Dense evaluation grid size for the exchange step.
    max_iter:
        Exchange iteration cap; smooth kernels converge in a handful.
    rel_tol:
        Stop when the observed max error and the levelled error E agree
        to this relative tolerance (equioscillation achieved).

    Returns
    -------
    MinimaxFit
        Coefficients in normalized ``t``; ``max_error`` is measured on
        the dense grid.
    """
    if not b > a:
        raise ValueError(f"need b > a, got [{a}, {b}]")
    k = degree + 2
    ts = np.linspace(0.0, 1.0, grid)
    fx = np.asarray(f(a + ts * (b - a)), dtype=np.float64)
    if not np.all(np.isfinite(fx)):
        raise ValueError("function not finite on the fit interval")

    # Chebyshev extrema as the initial reference (mapped to [0, 1]).
    ref_t = 0.5 * (1.0 - np.cos(np.pi * np.arange(k) / (k - 1)))
    ref_idx = np.clip((ref_t * (grid - 1)).round().astype(int), 0, grid - 1)
    ref_idx = np.unique(ref_idx)
    while len(ref_idx) < k:  # pathological tiny grids
        ref_idx = np.unique(np.concatenate([ref_idx, [min(ref_idx[-1] + 1, grid - 1)]]))

    coeffs = np.zeros(degree + 1)
    converged = False
    it = 0
    for it in range(1, max_iter + 1):
        tr = ts[ref_idx]
        fr = fx[ref_idx]
        # Solve p(tr_i) + (-1)^i E = f(tr_i) for coeffs and E.
        V = np.vander(tr, degree + 1, increasing=True)
        A = np.column_stack([V, (-1.0) ** np.arange(len(tr))])
        try:
            sol = np.linalg.solve(A, fr)
        except np.linalg.LinAlgError:
            break
        coeffs = sol[:-1]
        E = abs(sol[-1])
        err = polyval_ascending(coeffs, ts) - fx
        max_err = float(np.max(np.abs(err)))
        if max_err <= E * (1.0 + rel_tol) or (max_err - E) <= rel_tol * max(max_err, 1e-300):
            converged = True
            break
        new_idx = _alternating_extrema(err, k)
        if new_idx is None or np.array_equal(new_idx, ref_idx):
            break
        ref_idx = new_idx

    err = polyval_ascending(coeffs, ts) - fx
    return MinimaxFit(
        coeffs=coeffs,
        a=float(a),
        b=float(b),
        max_error=float(np.max(np.abs(err))),
        iterations=it,
        converged=converged,
    )
