"""Tabulated function evaluation: Remez minimax fits, tiered r²-indexed
piecewise-cubic tables with block-float coefficients, and PPIP-style
kernel table sets (paper Section 4, Figure 4)."""

from repro.functions.evaluator import KernelTableSet
from repro.functions.remez import MinimaxFit, polyval_ascending, remez_fit
from repro.functions.tables import (
    ANTON_ELECTROSTATIC_TIERS,
    Tier,
    TieredTable,
    uniform_tiers,
)

__all__ = [
    "KernelTableSet",
    "MinimaxFit",
    "polyval_ascending",
    "remez_fit",
    "ANTON_ELECTROSTATIC_TIERS",
    "Tier",
    "TieredTable",
    "uniform_tiers",
]
