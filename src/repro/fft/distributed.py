"""Simulated distributed 3-D FFT (paper Section 3.2.2).

Anton parallelizes its small (32³) FFT as three phases of 1-D FFTs
oriented along each axis; before each phase the nodes of every axis
line perform an all-to-all so that whole lines land on single nodes.
"This parallelization strategy involves sending a large number of
messages (hundreds per node)" — the opposite of the
few-large-messages strategies that win on commodity clusters.

This class computes the transform *functionally identically* to the
serial radix-2 kernel for any node count (the per-line 1-D FFT is the
same algorithm regardless of distribution — which is what makes the
machine's results bitwise independent of node count), while charging
the simulated network with the messages the real redistribution would
send.
"""

from __future__ import annotations

import numpy as np

from repro.fft.radix2 import fft1d, fft3d, ifft1d, ifft3d
from repro.parallel.comm import SimNetwork
from repro.parallel.topology import TorusTopology

__all__ = ["DistributedFFT3D"]


class DistributedFFT3D:
    """A K³ FFT distributed over a torus of nodes.

    Parameters
    ----------
    mesh_shape:
        Three power-of-two mesh dimensions, each divisible by the
        corresponding torus dimension.
    network:
        Traffic is charged here; pass None for a purely functional
        transform.
    bytes_per_point:
        Wire size of one mesh value.  Anton ships reduced-precision
        fixed-point values; 8 bytes (two 32-bit fixed-point words)
        is the default.
    line_batches:
        Number of separate messages each node uses per peer per phase
        (Anton pipelines sub-line bundles rather than one monolithic
        block, producing its "hundreds of messages per node").
    """

    def __init__(
        self,
        mesh_shape: tuple[int, int, int],
        topology: TorusTopology,
        network: SimNetwork | None = None,
        bytes_per_point: int = 8,
        line_batches: int = 4,
    ):
        for m, d in zip(mesh_shape, topology.dims):
            if m % d:
                raise ValueError(f"mesh dim {m} not divisible by torus dim {d}")
            if m & (m - 1):
                raise ValueError(f"mesh dims must be powers of two, got {m}")
        self.mesh_shape = tuple(mesh_shape)
        self.topology = topology
        self.network = network
        self.bytes_per_point = bytes_per_point
        self.line_batches = line_batches
        # The all-to-all routes are static per axis; cache the
        # (src, dst, nbytes) arrays so each phase is one send_batch.
        self._axis_routes: dict[int, tuple[np.ndarray, np.ndarray, np.ndarray]] = {}

    # -- functional transforms ------------------------------------------

    def forward(self, mesh: np.ndarray) -> np.ndarray:
        """Forward transform; charges one redistribution per axis."""
        if mesh.shape != self.mesh_shape:
            raise ValueError(f"mesh shape {mesh.shape} != {self.mesh_shape}")
        out = np.asarray(mesh, dtype=np.complex128)
        for axis in (2, 1, 0):
            self._charge_axis_phase(axis)
            out = fft1d(out, axis=axis)
        return out

    def inverse(self, mesh_hat: np.ndarray) -> np.ndarray:
        """Inverse transform (1/N normalized); same traffic as forward."""
        if mesh_hat.shape != self.mesh_shape:
            raise ValueError(f"mesh shape {mesh_hat.shape} != {self.mesh_shape}")
        out = np.asarray(mesh_hat, dtype=np.complex128)
        for axis in (0, 1, 2):
            self._charge_axis_phase(axis)
            out = ifft1d(out, axis=axis)
        return out

    # -- traffic model ----------------------------------------------------

    def points_per_node(self) -> int:
        return int(np.prod(self.mesh_shape)) // self.topology.n_nodes

    def _charge_axis_phase(self, axis: int) -> None:
        """Charge the all-to-all that gathers whole lines along ``axis``.

        Each node owns a (K/p)³-ish block; to give every node of its
        axis line complete lines, it sends each of the (p-1) peers an
        equal 1/p share of its block, split into ``line_batches``
        messages.
        """
        if self.network is None:
            return
        topo = self.topology
        p = topo.dims[axis]
        if p == 1:
            return
        routes = self._axis_routes.get(axis)
        if routes is None:
            share_points = self.points_per_node() // p
            per_msg = max(share_points * self.bytes_per_point // self.line_batches, 4)
            src_l: list[int] = []
            dst_l: list[int] = []
            for node in range(topo.n_nodes):
                for peer in topo.axis_line(node, axis):
                    if peer == node:
                        continue
                    src_l.extend([node] * self.line_batches)
                    dst_l.extend([peer] * self.line_batches)
            routes = (
                np.asarray(src_l, dtype=np.int64),
                np.asarray(dst_l, dtype=np.int64),
                np.full(len(src_l), per_msg, dtype=np.int64),
            )
            self._axis_routes[axis] = routes
        src, dst, nbytes = routes
        # send_batch produces exactly the statistics (and, under fault
        # injection, the same canonical wire-ledger entries) as the
        # per-message loop it replaces.
        self.network.send_batch(src, dst, nbytes, tag=f"fft_axis{axis}")

    def messages_per_node_per_transform(self) -> int:
        """Analytic per-node message count of one 3-D transform."""
        total = 0
        for axis in range(3):
            p = self.topology.dims[axis]
            if p > 1:
                total += (p - 1) * self.line_batches
        return total

    # -- serial reference --------------------------------------------------

    @staticmethod
    def serial_forward(mesh: np.ndarray) -> np.ndarray:
        """The single-node reference; bitwise equal to :meth:`forward`."""
        return fft3d(mesh)

    @staticmethod
    def serial_inverse(mesh_hat: np.ndarray) -> np.ndarray:
        return ifft3d(mesh_hat)
