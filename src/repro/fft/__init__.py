"""FFT substrate: from-scratch radix-2 kernels and the simulated
distributed 3-D FFT with message accounting (paper Section 3.2.2)."""

from repro.fft.distributed import DistributedFFT3D
from repro.fft.radix2 import bit_reverse_permutation, fft1d, fft3d, ifft1d, ifft3d

__all__ = [
    "DistributedFFT3D",
    "bit_reverse_permutation",
    "fft1d",
    "fft3d",
    "ifft1d",
    "ifft3d",
]
