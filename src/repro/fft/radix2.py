"""Radix-2 complex FFT, implemented from scratch.

Anton computes its 32³ FFT with hardware butterflies on the geometry
cores; we reproduce the algorithm (iterative Cooley–Tukey with bit
reversal) as the kernel of the simulated distributed FFT.  Matches
NumPy's conventions: forward uses ``e^{-2 pi i jk/n}``, inverse scales
by ``1/n``.

The butterflies are vectorized over all batch axes, so transforming a
whole mesh plane is a handful of NumPy ops per stage.
"""

from __future__ import annotations

import numpy as np

__all__ = ["fft1d", "ifft1d", "fft3d", "ifft3d", "bit_reverse_permutation"]


def bit_reverse_permutation(n: int) -> np.ndarray:
    """Bit-reversal index permutation for a power-of-two length n."""
    if n & (n - 1) or n == 0:
        raise ValueError(f"length must be a power of two, got {n}")
    bits = n.bit_length() - 1
    idx = np.arange(n, dtype=np.int64)
    rev = np.zeros(n, dtype=np.int64)
    for _ in range(bits):
        rev = (rev << 1) | (idx & 1)
        idx >>= 1
    return rev


def _fft_last_axis(x: np.ndarray, inverse: bool) -> np.ndarray:
    n = x.shape[-1]
    out = np.ascontiguousarray(x, dtype=np.complex128)[..., bit_reverse_permutation(n)].copy()
    sign = 1.0 if inverse else -1.0
    size = 2
    while size <= n:
        half = size // 2
        tw = np.exp(sign * 2j * np.pi * np.arange(half) / size)
        # View as (..., n/size, size) blocks and butterfly in place.
        blocks = out.reshape(*out.shape[:-1], n // size, size)
        even = blocks[..., :half]
        odd = blocks[..., half:] * tw
        blocks[..., :half], blocks[..., half:] = even + odd, even - odd
        size *= 2
    if inverse:
        out /= n
    return out


def fft1d(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Forward FFT along ``axis`` (power-of-two length)."""
    x = np.moveaxis(np.asarray(x), axis, -1)
    return np.moveaxis(_fft_last_axis(x, inverse=False), -1, axis)


def ifft1d(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Inverse FFT along ``axis`` (includes the 1/n factor)."""
    x = np.moveaxis(np.asarray(x), axis, -1)
    return np.moveaxis(_fft_last_axis(x, inverse=True), -1, axis)


def fft3d(x: np.ndarray) -> np.ndarray:
    """Forward 3-D FFT via three passes of 1-D transforms.

    This is exactly Anton's decomposition: "a straightforward
    decomposition into sets of one-dimensional FFTs oriented along each
    of the three axes" (Section 3.2.2).
    """
    out = np.asarray(x, dtype=np.complex128)
    for axis in (2, 1, 0):
        out = fft1d(out, axis=axis)
    return out


def ifft3d(x: np.ndarray) -> np.ndarray:
    """Inverse 3-D FFT (includes the 1/N factor)."""
    out = np.asarray(x, dtype=np.complex128)
    for axis in (0, 1, 2):
        out = ifft1d(out, axis=axis)
    return out
