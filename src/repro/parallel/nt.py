"""The NT method: neutral-territory parallelization of range-limited
pairwise interactions (Shaw 2005; paper Section 3.2.1, Figure 3,
Table 3).

Each node computes interactions between atoms in a *tower* (its home
column of boxes, extended by the cutoff up and down) and atoms in a
*plate* (a half-slab at its home z, extended by the cutoff in x-y).
The plate's asymmetry reflects computing each pair exactly once; the
interaction between two atoms is often computed by a node on which
*neither* resides — the "neutral territory".

This module provides the pair->node assignment rule (exactly-once by
construction, with deterministic tie-breaking for degenerate torus
wraps), the tower/plate import-region box sets, and a Monte-Carlo
match-efficiency estimator reproducing Table 3.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.parallel.decomposition import SpatialDecomposition

__all__ = [
    "NTAssignment",
    "nt_assign_pairs",
    "nt_node_tables",
    "tower_plate_boxes",
    "match_efficiency",
]


def _wrapped_delta(a: np.ndarray, b: np.ndarray, D: int) -> tuple[np.ndarray, np.ndarray]:
    """Signed torus displacement b - a in [-(D//2), D//2], plus a tie
    flag for the ambiguous |delta| == D/2 case (even D)."""
    d = np.mod(b - a, D)
    over = d > D // 2
    d = np.where(over, d - D, d)
    tie = (D % 2 == 0) & (np.abs(d) == D // 2) & (D > 1)
    return d, tie


@dataclass(frozen=True)
class NTAssignment:
    """Result of assigning a pair list to nodes."""

    node: np.ndarray          # computing node id per pair
    neutral: np.ndarray       # True where neither atom resides on the node


def nt_assign_pairs(
    decomp: SpatialDecomposition,
    positions: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
    atom_box_coords: np.ndarray | None = None,
) -> NTAssignment:
    """Assign each pair (i[k], j[k]) to its NT computing node.

    The rule: with box displacement (dx, dy, dz) from A's to B's home
    box, the pair runs on node (A.x, A.y, B.z) when (dx, dy) lies in
    the upper half-plane H = {dy > 0 or (dy == 0 and dx > 0)}, on node
    (B.x, B.y, A.z) when the reverse displacement lies in H, and within
    a column (dx = dy = 0) on the lower atom's box.  Degenerate torus
    wraps (|d| exactly half the torus) are tie-broken by raw
    coordinates so each pair is claimed exactly once.

    ``atom_box_coords`` optionally supplies ``decomp.box_coord`` of the
    *whole* position array, letting callers with many pair lists (or
    long ones) pay the wrap-and-floor once per configuration instead of
    twice per pair; ``box_coord`` is elementwise per atom, so gathering
    rows of the precomputed array is identical to recomputing them.
    """
    dims = decomp.dims
    if atom_box_coords is None:
        ca = decomp.box_coord(positions[i])
        cb = decomp.box_coord(positions[j])
    else:
        ca = atom_box_coords[i]
        cb = atom_box_coords[j]
    dx, tx = _wrapped_delta(ca[:, 0], cb[:, 0], int(dims[0]))
    dy, ty = _wrapped_delta(ca[:, 1], cb[:, 1], int(dims[1]))
    dz, tz = _wrapped_delta(ca[:, 2], cb[:, 2], int(dims[2]))
    # Resolve wrap ties with the raw coordinate ordering (deterministic
    # and consistent from both endpoints' viewpoints).
    sx = np.where(tx, np.where(ca[:, 0] < cb[:, 0], 1, -1), np.sign(dx)).astype(np.int64)
    sy = np.where(ty, np.where(ca[:, 1] < cb[:, 1], 1, -1), np.sign(dy)).astype(np.int64)
    sz = np.where(tz, np.where(ca[:, 2] < cb[:, 2], 1, -1), np.sign(dz)).astype(np.int64)

    in_upper = (sy > 0) | ((sy == 0) & (sx > 0))
    same_column = (sx == 0) & (sy == 0)
    # Column pairs: the box whose partner sits "above" computes (the
    # plate holds the home box, the tower reaches the partner).
    column_owner_is_a = sz >= 0

    hx = np.where(same_column, ca[:, 0], np.where(in_upper, ca[:, 0], cb[:, 0]))
    hy = np.where(same_column, ca[:, 1], np.where(in_upper, ca[:, 1], cb[:, 1]))
    hz = np.where(
        same_column,
        np.where(column_owner_is_a, ca[:, 2], cb[:, 2]),
        np.where(in_upper, cb[:, 2], ca[:, 2]),
    )
    node = (hx * dims[1] + hy) * dims[2] + hz
    node_a = (ca[:, 0] * dims[1] + ca[:, 1]) * dims[2] + ca[:, 2]
    node_b = (cb[:, 0] * dims[1] + cb[:, 1]) * dims[2] + cb[:, 2]
    return NTAssignment(node=node, neutral=(node != node_a) & (node != node_b))


def nt_node_tables(decomp: SpatialDecomposition) -> tuple[np.ndarray, np.ndarray]:
    """Dense (n_boxes, n_boxes) lookup tables of the NT assignment.

    The computing node (and its neutrality) is a pure function of the
    two atoms' home-box ids, so the whole rule can be tabulated once
    per decomposition — built by running :func:`nt_assign_pairs` itself
    over every ordered box pair, which makes the tables identical to
    the direct computation by construction.  A per-pair assignment then
    reduces to one gather: ``node_table.ravel()[flat_a * n + flat_b]``.

    Returns ``(node_table, neutral_table)``; int64 node ids and bool
    neutrality flags.
    """
    dims = decomp.dims
    n = int(dims[0] * dims[1] * dims[2])
    ids = np.arange(n, dtype=np.int64)
    coords = np.stack(
        (ids // (dims[1] * dims[2]), (ids // dims[2]) % dims[1], ids % dims[2]),
        axis=-1,
    )
    a = np.repeat(ids, n)
    b = np.tile(ids, n)
    assign = nt_assign_pairs(decomp, None, a, b, atom_box_coords=coords)
    return assign.node.reshape(n, n), assign.neutral.reshape(n, n)


def tower_plate_boxes(
    decomp: SpatialDecomposition, node_coord: tuple[int, int, int], cutoff: float
) -> tuple[set[tuple[int, int, int]], set[tuple[int, int, int]]]:
    """Box coordinates of a node's tower and plate import regions.

    Whole-box granularity (Anton imports whole subboxes — Figure 3f).
    The tower is the home column within the cutoff vertically; the
    plate is the half-slab of boxes whose footprint comes within the
    cutoff horizontally, plus the home box.
    """
    dims = decomp.dims
    nb = decomp.node_box
    nx, ny, nz = node_coord
    reach_z = int(math.ceil(cutoff / nb[2]))
    tower = {(nx, ny, int((nz + dz) % dims[2])) for dz in range(-reach_z, reach_z + 1)}

    plate: set[tuple[int, int, int]] = {(nx, ny, nz)}
    reach_x = int(math.ceil(cutoff / nb[0]))
    reach_y = int(math.ceil(cutoff / nb[1]))
    for dy in range(-reach_y, reach_y + 1):
        for dx in range(-reach_x, reach_x + 1):
            if (dy, dx) == (0, 0):
                continue
            if not (dy > 0 or (dy == 0 and dx > 0)):
                continue
            # Closest approach between the two box footprints.
            gap_x = max(abs(dx) - 1, 0) * nb[0]
            gap_y = max(abs(dy) - 1, 0) * nb[1]
            if gap_x**2 + gap_y**2 < cutoff**2:
                plate.add((int((nx + dx) % dims[0]), int((ny + dy) % dims[1]), nz))
    return tower, plate


def match_efficiency(
    box_side: float,
    cutoff: float = 13.0,
    subbox_divisions: int = 1,
    density: float = 0.1003,
    n_samples: int = 10,
    seed: int = 0,
    chunk: int = 512,
) -> float:
    """Monte-Carlo match efficiency of the NT method (Table 3).

    "Match efficiency (defined as the ratio of necessary interactions
    to pairs of atoms considered)": atoms at water density fill a
    neighborhood around one home subbox; the match units examine every
    tower atom against every plate atom (regions trimmed to their exact
    geometric extents), and the efficiency is the fraction of those
    candidates that fall within the cutoff.

    Home subbox spans [0, sub]³ with sub = box_side / subbox_divisions.
    Tower: home footprint, z in [-cutoff, sub + cutoff].  Plate: slab
    z in [0, sub], horizontal distance to the footprint < cutoff, upper
    half (y above, or level and x above) plus the home subbox.
    """
    rng = np.random.default_rng(seed)
    sub = box_side / subbox_divisions
    R = cutoff
    lo = np.array([-R - sub, -R - sub, -R - sub])
    hi = np.array([sub + R + sub, sub + R + sub, sub + R + sub])
    volume = float(np.prod(hi - lo))
    n_atoms = max(int(round(density * volume)), 1)

    necessary = 0
    considered = 0
    for _ in range(n_samples):
        pos = rng.uniform(lo, hi, (n_atoms, 3))
        x, y, z = pos[:, 0], pos[:, 1], pos[:, 2]
        in_foot = (x >= 0) & (x < sub) & (y >= 0) & (y < sub)
        in_tower = in_foot & (z >= -R) & (z < sub + R)
        gap_x = np.maximum(np.maximum(-x, x - sub), 0.0)
        gap_y = np.maximum(np.maximum(-y, y - sub), 0.0)
        in_reach = gap_x**2 + gap_y**2 < R * R
        home = in_foot & (z >= 0) & (z < sub)
        # Half-plane: the north strip plus the east strip at home level.
        upper = (y >= sub) | ((y >= 0) & (y < sub) & (x >= sub))
        in_plate = (z >= 0) & (z < sub) & in_reach & ((upper & ~in_foot) | home)

        t_idx = np.nonzero(in_tower)[0]
        p_idx = np.nonzero(in_plate)[0]
        if not len(t_idx) or not len(p_idx):
            continue
        considered += len(t_idx) * len(p_idx)
        home_t = home[t_idx]
        home_p = home[p_idx]
        for s in range(0, len(t_idx), chunk):
            tc = t_idx[s : s + chunk]
            d = pos[tc][:, None, :] - pos[p_idx][None, :, :]
            within = np.sum(d * d, axis=2) < R * R
            same = tc[:, None] == p_idx[None, :]
            # Home-home candidates appear twice (once in each role);
            # count each such unordered pair once.
            both_home = home_t[s : s + chunk][:, None] & home_p[None, :]
            dup = both_home & (tc[:, None] > p_idx[None, :])
            necessary += int(np.count_nonzero(within & ~same & ~dup))
    if considered == 0:
        return 0.0
    return necessary / considered
