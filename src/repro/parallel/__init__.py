"""Parallelization substrate: torus topology, simulated network,
spatial decomposition, the NT method, the half-shell baseline, and
deferred migration."""

from repro.parallel.comm import NetworkStats, SimNetwork
from repro.parallel.decomposition import SpatialDecomposition
from repro.parallel.halfshell import half_shell_assign_pairs, half_shell_boxes
from repro.parallel.migration import MigrationEvent, MigrationSchedule
from repro.parallel.nt import (
    NTAssignment,
    match_efficiency,
    nt_assign_pairs,
    nt_node_tables,
    tower_plate_boxes,
)
from repro.parallel.topology import TorusTopology

__all__ = [
    "NetworkStats",
    "SimNetwork",
    "SpatialDecomposition",
    "half_shell_assign_pairs",
    "half_shell_boxes",
    "MigrationEvent",
    "MigrationSchedule",
    "NTAssignment",
    "match_efficiency",
    "nt_assign_pairs",
    "nt_node_tables",
    "tower_plate_boxes",
    "TorusTopology",
]
