"""Deferred atom migration (paper Section 3.2.4).

"Anton mitigates this expense by performing migration operations only
every N time steps, where N is typically between 4 and 8."  Between
migrations an atom may reside on an 'incorrect' node — because its
constraint group straddles a boundary, or because it crossed one since
the last migration — and "a slight expansion of the NT method import
region is ... sufficient to ensure execution of the correct set of
range-limited interactions."

:class:`MigrationSchedule` tracks ownership between migrations, counts
the migration traffic, and computes the import-margin expansion needed
for a given interval and velocity bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forcefield import Topology
from repro.parallel.decomposition import SpatialDecomposition

__all__ = ["MigrationSchedule", "MigrationEvent"]


@dataclass(frozen=True)
class MigrationEvent:
    """Statistics of one migration pass."""

    step: int
    n_migrated: int
    max_displacement_error: float  # how far owners had drifted (boxes)


class MigrationSchedule:
    """Ownership tracking with every-N migration.

    Parameters
    ----------
    interval:
        Steps between migration passes (paper: 4-8).
    max_speed:
        Conservative bound on per-step atomic displacement (A/step);
        with 2.5 fs steps even hot hydrogens stay under ~0.1 A/step.
    """

    def __init__(
        self,
        decomp: SpatialDecomposition,
        topology: Topology,
        interval: int = 4,
        max_speed: float = 0.1,
    ):
        if interval < 1:
            raise ValueError("interval must be >= 1")
        self.decomp = decomp
        self.topology = topology
        self.interval = interval
        self.max_speed = max_speed
        self.owners: np.ndarray | None = None
        self.steps_since_migration = 0
        self.events: list[MigrationEvent] = []
        self._step = 0

    def import_margin(self, positions: np.ndarray | None = None) -> float:
        """Import-region expansion (A) guaranteeing pair coverage.

        Two contributions (Section 3.2.4): drift of up to
        ``interval * max_speed`` per atom between migrations, and
        constraint groups straddling boxes (bounded by the measured
        group extent when positions are given).
        """
        margin = 2.0 * self.interval * self.max_speed  # both atoms may drift
        if positions is not None and self.topology.n_constraints:
            margin += self.decomp.max_group_extent(positions, self.topology)
        return margin

    def initialize(self, positions: np.ndarray) -> np.ndarray:
        """Initial ownership (a full migration)."""
        self.owners = self.decomp.assign_atoms(positions, self.topology)
        self.steps_since_migration = 0
        return self.owners

    def step(self, positions: np.ndarray) -> MigrationEvent | None:
        """Advance one step; migrate if the interval has elapsed.

        Returns the event on migration steps, else None.
        """
        if self.owners is None:
            raise RuntimeError("call initialize() first")
        self._step += 1
        self.steps_since_migration += 1
        if self.steps_since_migration < self.interval:
            return None
        correct = self.decomp.assign_atoms(positions, self.topology)
        moved = correct != self.owners
        # Displacement error: how many box widths the stale owner is off
        # (diagnostic for the import-margin bound).
        err = 0.0
        if np.any(moved):
            stale = self.decomp.torus
            box_w = float(np.min(self.decomp.node_box))
            hops = [
                stale.hop_distance(int(a), int(b))
                for a, b in zip(self.owners[moved], correct[moved])
            ]
            err = max(hops) * box_w if hops else 0.0
        event = MigrationEvent(
            step=self._step, n_migrated=int(np.count_nonzero(moved)), max_displacement_error=err
        )
        self.events.append(event)
        self.owners = correct
        self.steps_since_migration = 0
        return event

    def total_migrated(self) -> int:
        return sum(e.n_migrated for e in self.events)
