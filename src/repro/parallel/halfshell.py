"""The traditional half-shell parallelization — the NT baseline.

Figure 3b: "each node computes interactions between atoms in its home
box and atoms in a larger 'half-shell' region".  Pairs are computed on
the home node of one of their atoms (never neutral territory), and the
import region is the half of the cutoff shell around the home box —
asymptotically larger than the NT import region as parallelism grows.
"""

from __future__ import annotations

import math

import numpy as np

from repro.parallel.decomposition import SpatialDecomposition
from repro.parallel.nt import NTAssignment, _wrapped_delta

__all__ = ["half_shell_assign_pairs", "half_shell_boxes"]


def half_shell_assign_pairs(
    decomp: SpatialDecomposition,
    positions: np.ndarray,
    i: np.ndarray,
    j: np.ndarray,
) -> NTAssignment:
    """Assign each pair to a home node under the half-shell rule.

    The pair runs on the node of the atom whose box displacement to
    the other lies in the canonical upper half-space (lexicographic
    (dz, dy, dx) > 0); within one box, on that box's node.  Exactly one
    node claims each pair; ``neutral`` is always False (the defining
    contrast with the NT method).
    """
    dims = decomp.dims
    ca = decomp.box_coord(positions[i])
    cb = decomp.box_coord(positions[j])
    dx, tx = _wrapped_delta(ca[:, 0], cb[:, 0], int(dims[0]))
    dy, ty = _wrapped_delta(ca[:, 1], cb[:, 1], int(dims[1]))
    dz, tz = _wrapped_delta(ca[:, 2], cb[:, 2], int(dims[2]))
    sx = np.where(tx, np.where(ca[:, 0] < cb[:, 0], 1, -1), np.sign(dx)).astype(np.int64)
    sy = np.where(ty, np.where(ca[:, 1] < cb[:, 1], 1, -1), np.sign(dy)).astype(np.int64)
    sz = np.where(tz, np.where(ca[:, 2] < cb[:, 2], 1, -1), np.sign(dz)).astype(np.int64)

    b_is_upper = (sz > 0) | ((sz == 0) & ((sy > 0) | ((sy == 0) & (sx >= 0))))
    owner = np.where(b_is_upper[:, None], ca, cb)
    node = (owner[:, 0] * dims[1] + owner[:, 1]) * dims[2] + owner[:, 2]
    return NTAssignment(node=node, neutral=np.zeros(len(node), dtype=bool))


def half_shell_boxes(
    decomp: SpatialDecomposition, node_coord: tuple[int, int, int], cutoff: float
) -> set[tuple[int, int, int]]:
    """Import-region boxes of the half-shell method (home box included).

    All boxes within the cutoff of the home box whose displacement is
    in the canonical upper half-space.
    """
    dims = decomp.dims
    nb = decomp.node_box
    nx, ny, nz = node_coord
    reach = [int(math.ceil(cutoff / nb[a])) for a in range(3)]
    out: set[tuple[int, int, int]] = {(nx, ny, nz)}
    for dz in range(0, reach[2] + 1):
        for dy in range(-reach[1], reach[1] + 1):
            for dx in range(-reach[0], reach[0] + 1):
                if (dz, dy, dx) == (0, 0, 0):
                    continue
                if not (dz > 0 or (dz == 0 and (dy > 0 or (dy == 0 and dx > 0)))):
                    continue
                gap = [max(abs(d) - 1, 0) * nb[a] for a, d in enumerate((dx, dy, dz))]
                if sum(g * g for g in gap) < cutoff**2:
                    out.add(
                        (
                            int((nx + dx) % dims[0]),
                            int((ny + dy) % dims[1]),
                            int((nz + dz) % dims[2]),
                        )
                    )
    return out
