"""Simulated inter-node message passing with traffic accounting.

The functional machine simulation routes every inter-node transfer
through a :class:`SimNetwork`, which records message counts, byte
volumes, and hop-weighted link traffic.  The paper's key communication
facts — "inter-node latency is tens of nanoseconds, and messages with
as little as four bytes of data can be sent efficiently ... a typical
time step on Anton involves thousands of inter-node messages per ASIC"
— become measurable quantities of a simulated step, which the
performance model then converts to time.

Accounting comes in two granularities: :meth:`SimNetwork.send` charges
one message (and optionally carries a payload), while
:meth:`SimNetwork.send_batch` charges a whole array of routes at once
with bincount reductions — the same statistics a loop of ``send`` calls
would produce, without the per-message Python overhead.  Per-node
counters are int64 arrays indexed by node id.

Retransmissions (fault recovery, see :mod:`repro.fault`) are charged
with ``retransmit=True`` and land in separate ``retransmit_*`` /
``by_tag_retransmit`` counters: the primary statistics stay exactly
those of a fault-free run, so a fault-injected run never inflates the
paper's Table 3 traffic comparison.
"""

from __future__ import annotations

import numpy as np

from repro.parallel.topology import TorusTopology

__all__ = ["NetworkStats", "SimNetwork"]


class NetworkStats:
    """Aggregated traffic counters for one accounting window.

    ``per_node_messages`` / ``per_node_bytes`` are int64 arrays indexed
    by source node id; ``by_tag`` maps each traffic class to its
    cumulative ``(messages, bytes)``.
    """

    def __init__(self, n_nodes: int = 1):
        self.messages = 0
        self.bytes = 0
        self.hop_bytes = 0  # bytes weighted by torus hop distance
        self.per_node_messages = np.zeros(n_nodes, dtype=np.int64)
        self.per_node_bytes = np.zeros(n_nodes, dtype=np.int64)
        self.by_tag: dict[str, tuple[int, int]] = {}
        # Fault-recovery retransmissions, accounted apart from the
        # primary counters above (which must match a fault-free run).
        self.retransmit_messages = 0
        self.retransmit_bytes = 0
        self.by_tag_retransmit: dict[str, tuple[int, int]] = {}

    def charge_tag(self, tag: str, messages: int, nbytes: int) -> None:
        m, b = self.by_tag.get(tag, (0, 0))
        self.by_tag[tag] = (m + int(messages), b + int(nbytes))

    def charge_retransmit(self, tag: str, messages: int, nbytes: int) -> None:
        self.retransmit_messages += int(messages)
        self.retransmit_bytes += int(nbytes)
        m, b = self.by_tag_retransmit.get(tag, (0, 0))
        self.by_tag_retransmit[tag] = (m + int(messages), b + int(nbytes))

    def max_node_messages(self) -> int:
        return int(self.per_node_messages.max(initial=0))

    def max_node_bytes(self) -> int:
        return int(self.per_node_bytes.max(initial=0))


class SimNetwork:
    """Message transport between simulated nodes.

    ``send`` delivers payloads immediately (the functional simulation is
    sequential) while accumulating the statistics a real torus would
    exhibit.  Payloads are opaque to the network.
    """

    def __init__(self, topology: TorusTopology):
        self.topology = topology
        self.stats = NetworkStats(topology.n_nodes)
        self._mailboxes: dict[tuple[int, str], list] = {}
        #: Optional link-level router (:class:`repro.network.LinkRouter`).
        self.router = None

    def reset_stats(self) -> None:
        self.stats = NetworkStats(self.topology.n_nodes)

    def attach_router(self, router) -> None:
        """Attach a routed-fabric accounting layer.

        Every subsequent charge is *also* expanded into per-link
        traversals by the router.  Strictly additive: the flat
        :class:`NetworkStats` counters, payload delivery, and therefore
        all simulation state are bitwise unchanged by attaching one.
        """
        self.router = router

    @property
    def in_recovery(self) -> bool:
        """Whether charges currently land in a recovery pool.  The base
        network has no fault layer; :class:`~repro.fault.inject.FaultyNetwork`
        overrides this during rollback replay."""
        return False

    def send(
        self, src: int, dst: int, nbytes: int, tag: str, payload=None, retransmit: bool = False
    ) -> None:
        """Send one message; local (src == dst) transfers are free.

        ``retransmit=True`` marks a fault-recovery resend: it is
        counted in the separate retransmit counters so the primary
        statistics keep matching a fault-free run.
        """
        if src == dst:
            if payload is not None:
                self._mailboxes.setdefault((dst, tag), []).append(payload)
            return
        s = self.stats
        if retransmit:
            s.charge_retransmit(tag, 1, nbytes)
            if self.router is not None:
                self.router.charge(src, dst, nbytes, tag, recovery=True)
            return
        s.messages += 1
        s.bytes += int(nbytes)
        s.hop_bytes += int(nbytes) * self.topology.hop_distance(src, dst)
        s.per_node_messages[src] += 1
        s.per_node_bytes[src] += int(nbytes)
        s.charge_tag(tag, 1, nbytes)
        if self.router is not None:
            self.router.charge(src, dst, nbytes, tag, recovery=self.in_recovery)
        if payload is not None:
            self._mailboxes.setdefault((dst, tag), []).append(payload)

    def send_batch(
        self,
        src: np.ndarray,
        dst: np.ndarray,
        nbytes: np.ndarray,
        tag: str,
        retransmit: bool = False,
        route: bool = True,
    ) -> None:
        """Charge an array of messages in one call (no payloads).

        Produces exactly the statistics of ``send(src[k], dst[k],
        nbytes[k], tag)`` over all ``k`` — local routes are free, hop
        weighting uses the torus metric — but reduces with bincounts
        instead of a Python loop per message.  ``retransmit=True``
        charges the whole batch to the retransmit counters instead of
        the primary ones.  ``route=False`` skips the attached router
        (multicast entry points charge tree links themselves).
        """
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        nbytes = np.asarray(nbytes, dtype=np.int64)
        remote = src != dst
        if not remote.all():
            src, dst, nbytes = src[remote], dst[remote], nbytes[remote]
        if not len(src):
            return
        s = self.stats
        total = int(np.sum(nbytes))
        if retransmit:
            s.charge_retransmit(tag, len(src), total)
            if route and self.router is not None:
                self.router.charge_batch(src, dst, nbytes, tag, recovery=True)
            return
        s.messages += len(src)
        s.bytes += total
        s.hop_bytes += int(np.sum(nbytes * self.topology.hop_distances(src, dst)))
        n = self.topology.n_nodes
        s.per_node_messages += np.bincount(src, minlength=n)
        np.add.at(s.per_node_bytes, src, nbytes)
        s.charge_tag(tag, len(src), total)
        if route and self.router is not None:
            self.router.charge_batch(src, dst, nbytes, tag, recovery=self.in_recovery)

    def multicast(self, src: int, dsts: list[int], nbytes: int, tag: str, payload=None) -> None:
        """Send the same payload to several destinations.

        Models Anton's multicast mechanism, "which sends all atoms in a
        given subbox to the same set of nodes" (Section 3.2.1) — one
        message per destination is still charged, since each traverses
        its own final link.  The destination fan-out is charged through
        a single ``send_batch`` call (payload delivery is unchanged),
        so large NT broadcasts don't pay per-message Python overhead;
        an attached router carries the payload once per multicast-tree
        edge instead of once per destination path.
        """
        dsts_arr = np.atleast_1d(np.asarray(dsts, dtype=np.int64))
        if payload is not None:
            for dst in dsts_arr:
                self._mailboxes.setdefault((int(dst), tag), []).append(payload)
        if not len(dsts_arr):
            return
        self.send_batch(
            np.full(dsts_arr.shape, src, dtype=np.int64),
            dsts_arr,
            np.full(dsts_arr.shape, int(nbytes), dtype=np.int64),
            tag,
            route=False,
        )
        if self.router is not None:
            self.router.charge_multicast(
                src, dsts_arr, int(nbytes), tag, recovery=self.in_recovery
            )

    def multicast_routes(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray, tag: str
    ) -> None:
        """Charge a batch of per-destination broadcast routes.

        Statistics are exactly those of :meth:`send_batch` — one
        charged message per destination, since each traverses its own
        final link — but rows sharing a source are one payload fanned
        out to many nodes (the NT subbox broadcast), so an attached
        router charges each source's spanning tree instead of one
        unicast path per destination.
        """
        self.send_batch(src, dst, nbytes, tag, route=False)
        if self.router is not None:
            self.router.charge_multicast_routes(
                src, dst, nbytes, tag, recovery=self.in_recovery
            )

    def receive(self, node: int, tag: str) -> list:
        """Drain the mailbox for (node, tag); returns payloads in
        deterministic send order."""
        return self._mailboxes.pop((node, tag), [])
