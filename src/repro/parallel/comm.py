"""Simulated inter-node message passing with traffic accounting.

The functional machine simulation routes every inter-node transfer
through a :class:`SimNetwork`, which records message counts, byte
volumes, and hop-weighted link traffic.  The paper's key communication
facts — "inter-node latency is tens of nanoseconds, and messages with
as little as four bytes of data can be sent efficiently ... a typical
time step on Anton involves thousands of inter-node messages per ASIC"
— become measurable quantities of a simulated step, which the
performance model then converts to time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.parallel.topology import TorusTopology

__all__ = ["NetworkStats", "SimNetwork"]


@dataclass
class NetworkStats:
    """Aggregated traffic counters for one accounting window."""

    messages: int = 0
    bytes: int = 0
    hop_bytes: int = 0  # bytes weighted by torus hop distance
    per_node_messages: dict[int, int] = field(default_factory=dict)
    per_node_bytes: dict[int, int] = field(default_factory=dict)
    by_tag: dict[str, tuple[int, int]] = field(default_factory=dict)

    def max_node_messages(self) -> int:
        return max(self.per_node_messages.values(), default=0)

    def max_node_bytes(self) -> int:
        return max(self.per_node_bytes.values(), default=0)


class SimNetwork:
    """Message transport between simulated nodes.

    ``send`` delivers payloads immediately (the functional simulation is
    sequential) while accumulating the statistics a real torus would
    exhibit.  Payloads are opaque to the network.
    """

    def __init__(self, topology: TorusTopology):
        self.topology = topology
        self.stats = NetworkStats()
        self._mailboxes: dict[tuple[int, str], list] = {}

    def reset_stats(self) -> None:
        self.stats = NetworkStats()

    def send(self, src: int, dst: int, nbytes: int, tag: str, payload=None) -> None:
        """Send one message; local (src == dst) transfers are free."""
        if src == dst:
            if payload is not None:
                self._mailboxes.setdefault((dst, tag), []).append(payload)
            return
        s = self.stats
        s.messages += 1
        s.bytes += int(nbytes)
        s.hop_bytes += int(nbytes) * self.topology.hop_distance(src, dst)
        s.per_node_messages[src] = s.per_node_messages.get(src, 0) + 1
        s.per_node_bytes[src] = s.per_node_bytes.get(src, 0) + int(nbytes)
        m, b = s.by_tag.get(tag, (0, 0))
        s.by_tag[tag] = (m + 1, b + int(nbytes))
        if payload is not None:
            self._mailboxes.setdefault((dst, tag), []).append(payload)

    def multicast(self, src: int, dsts: list[int], nbytes: int, tag: str, payload=None) -> None:
        """Send the same payload to several destinations.

        Models Anton's multicast mechanism, "which sends all atoms in a
        given subbox to the same set of nodes" (Section 3.2.1) — one
        message per destination is still charged, since each traverses
        its own final link.
        """
        for dst in dsts:
            self.send(src, dst, nbytes, tag, payload)

    def receive(self, node: int, tag: str) -> list:
        """Drain the mailbox for (node, tag); returns payloads in
        deterministic send order."""
        return self._mailboxes.pop((node, tag), [])
