"""Spatial decomposition of a periodic box over a node torus.

"Anton distributes particle data across nodes using a spatial
decomposition, in which the space to be simulated is divided into a
regular grid of boxes, and each node updates the positions and momenta
of atoms in one box, referred to as the home box" (Section 3.2).

Constraint groups are kept whole: every atom of a group lives on the
node of the group's first atom (Section 3.2.4's "we ensure that all
atoms in a constraint group reside on the same node").
"""

from __future__ import annotations

import numpy as np

from repro.forcefield import Topology
from repro.geometry import Box
from repro.parallel.topology import TorusTopology

__all__ = ["SpatialDecomposition"]


class SpatialDecomposition:
    """Maps positions to home boxes/nodes on a torus.

    Parameters
    ----------
    subbox_divisions:
        Divide each home box into s×s×s subboxes for the NT method's
        match-efficiency optimization (Table 3).
    """

    def __init__(self, box: Box, topology: TorusTopology, subbox_divisions: int = 1):
        self.box = box
        self.torus = topology
        self.dims = np.asarray(topology.dims, dtype=np.int64)
        self.node_box = box.lengths / self.dims
        if subbox_divisions < 1:
            raise ValueError("subbox_divisions must be >= 1")
        self.subbox_divisions = subbox_divisions
        self.subbox_size = self.node_box / subbox_divisions

    # -- geometric assignment --------------------------------------------

    def box_coord(self, positions: np.ndarray) -> np.ndarray:
        """Home-box (node) coordinates of positions, shape (n, 3)."""
        pos = self.box.wrap(np.asarray(positions, dtype=np.float64))
        c = np.floor(pos / self.node_box).astype(np.int64)
        return np.minimum(c, self.dims - 1)

    def node_of(self, positions: np.ndarray) -> np.ndarray:
        """Flat node ids of positions' home boxes."""
        c = self.box_coord(positions)
        return (c[:, 0] * self.dims[1] + c[:, 1]) * self.dims[2] + c[:, 2]

    def subbox_coord(self, positions: np.ndarray) -> np.ndarray:
        """Global subbox coordinates (node grid x subbox divisions)."""
        pos = self.box.wrap(np.asarray(positions, dtype=np.float64))
        c = np.floor(pos / self.subbox_size).astype(np.int64)
        return np.minimum(c, self.dims * self.subbox_divisions - 1)

    # -- ownership with constraint groups ----------------------------------

    def assign_atoms(self, positions: np.ndarray, topology: Topology | None = None) -> np.ndarray:
        """Owning node per atom.

        Geometric assignment, overridden so each constraint group (and
        its virtual sites) lives wholly on the node owning its first
        atom.  The expanded NT import region (Section 3.2.4) absorbs
        the resulting off-home-box residency.
        """
        owners = self.node_of(positions)
        if topology is not None:
            for group in topology.constraint_groups():
                owners[group] = owners[group[0]]
        return owners

    def max_group_extent(self, positions: np.ndarray, topology: Topology) -> float:
        """Largest distance of any constraint-group atom from the
        group's first atom — sets the import-region expansion margin."""
        worst = 0.0
        for group in topology.constraint_groups():
            d = self.box.distance(positions[group], positions[group[0]])
            worst = max(worst, float(np.max(d)))
        return worst

    def atoms_per_node(self, owners: np.ndarray) -> np.ndarray:
        """Histogram of atoms over nodes."""
        return np.bincount(owners, minlength=self.torus.n_nodes)
