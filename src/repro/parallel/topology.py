"""Toroidal node topology (paper Section 2.2).

"Anton comprises a set of nodes connected in a toroidal topology; the
512-node machines ... have an 8x8x8 toroidal topology, corresponding to
an 8x8x8 partitioning of a chemical system with periodic boundary
conditions."  Node counts are powers of two from 1 to 32768.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["TorusTopology"]


@dataclass(frozen=True)
class TorusTopology:
    """A dx × dy × dz torus of nodes.

    Node ids are flat indices in C order of their (x, y, z) coordinates.
    """

    dims: tuple[int, int, int]

    def __post_init__(self) -> None:
        if len(self.dims) != 3 or any(d < 1 for d in self.dims):
            raise ValueError(f"dims must be three positive ints, got {self.dims}")
        n = self.n_nodes
        if n & (n - 1):
            raise ValueError(
                f"node count {n} is not a power of two (the current software "
                "only supports power-of-two configurations, paper footnote 3)"
            )

    @classmethod
    def cubic(cls, side: int) -> "TorusTopology":
        return cls((side, side, side))

    @classmethod
    def for_node_count(cls, n: int) -> "TorusTopology":
        """The most-cubic torus with n nodes (n a power of two).

        Factors n = 2^e into dims (2^a, 2^b, 2^c) with a >= b >= c and
        a - c <= 1, matching how Anton machines are partitioned.
        """
        if n < 1 or n & (n - 1):
            raise ValueError(f"node count must be a power of two, got {n}")
        e = n.bit_length() - 1
        a = (e + 2) // 3
        b = (e + 1) // 3
        c = e // 3
        return cls((2**a, 2**b, 2**c))

    @property
    def n_nodes(self) -> int:
        return self.dims[0] * self.dims[1] * self.dims[2]

    def node_id(self, coord: tuple[int, int, int]) -> int:
        x, y, z = (c % d for c, d in zip(coord, self.dims))
        return (x * self.dims[1] + y) * self.dims[2] + z

    def coord(self, node: int) -> tuple[int, int, int]:
        dx, dy, dz = self.dims
        if not 0 <= node < self.n_nodes:
            raise IndexError(f"node {node} out of range")
        return (node // (dy * dz), (node // dz) % dy, node % dz)

    def neighbors(self, node: int) -> list[int]:
        """The up-to-six torus neighbors (deduplicated on small dims)."""
        x, y, z = self.coord(node)
        out = []
        for axis, delta in ((0, 1), (0, -1), (1, 1), (1, -1), (2, 1), (2, -1)):
            c = [x, y, z]
            c[axis] += delta
            nid = self.node_id(tuple(c))
            if nid != node and nid not in out:
                out.append(nid)
        return out

    def coords_of(self, nodes: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`coord`: (x, y, z) rows for an id array."""
        nodes = np.asarray(nodes, dtype=np.int64)
        dy, dz = self.dims[1], self.dims[2]
        return np.stack((nodes // (dy * dz), (nodes // dz) % dy, nodes % dz), axis=-1)

    def hop_distances(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`hop_distance` over two node-id arrays."""
        diff = np.abs(self.coords_of(a) - self.coords_of(b))
        dims = np.asarray(self.dims, dtype=np.int64)
        return np.sum(np.minimum(diff, dims - diff), axis=-1)

    def hop_distance(self, a: int, b: int) -> int:
        """Minimum torus hop count between two nodes."""
        ca, cb = self.coord(a), self.coord(b)
        total = 0
        for x1, x2, d in zip(ca, cb, self.dims):
            diff = abs(x1 - x2)
            total += min(diff, d - diff)
        return total

    def axis_line(self, node: int, axis: int) -> list[int]:
        """All node ids sharing this node's coordinates except ``axis``.

        These are the all-to-all groups of the distributed FFT's
        per-axis phases.
        """
        c = list(self.coord(node))
        out = []
        for v in range(self.dims[axis]):
            c2 = list(c)
            c2[axis] = v
            out.append(self.node_id(tuple(c2)))
        return out
