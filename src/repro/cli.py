"""Command-line interface: ``python -m repro <command>``.

Commands
--------
simulate   build a benchmark system (at reduced scale) and run MD
ensemble   batch R replicas through one engine pass per step
serve      run the multi-run simulation service (durable queue + workers)
submit     submit a job to a running service
jobs       list jobs on a running service (--watch to follow)
cancel     cancel a job on a running service
machine    run the functional multi-node machine and report traffic
network    routed-fabric link occupancy report / predicted scaling sweep
perf       print the performance model's Table 2 profile / Figure 5 rate
traj       inspect, dump, or CRC-verify a trajectory file
info       version, paper reference, and reproduced-experiment index

Long runs persist through the durable run store (``--trajectory``,
``--checkpoint-dir``/``--checkpoint-every``, ``--energy-log``) and
resume bit-exactly with ``--resume``.  The machine survives injected
faults (``--faults drop=1e-3,crash=1 --fault-seed 7``): message faults
are detected by checksums and healed by retransmission, node crashes
roll back to the newest valid checkpoint and replay — without changing
a single bit of the trajectory (combine with ``--check-invariance`` to
verify).
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np


def _add_simulate(sub) -> None:
    p = sub.add_parser("simulate", help="run MD on a benchmark system")
    p.add_argument("--system", default="water", help="water, hp, or a Table 4 name (gpW, DHFR, ...)")
    p.add_argument("--scale", type=float, default=0.05, help="atom-count scale for Table 4 systems")
    p.add_argument("--waters", type=int, default=64, help="molecule count for --system water")
    p.add_argument("--steps", type=int, default=200)
    p.add_argument("--dt", type=float, default=1.0, help="time step, fs")
    p.add_argument("--mode", choices=("fixed", "float"), default="fixed")
    p.add_argument("--temperature", type=float, default=300.0)
    p.add_argument("--cutoff", type=float, default=None)
    p.add_argument("--skin", type=float, default=None,
                   help="Verlet-list buffer radius, A (default: MDParams.skin)")
    p.add_argument("--record-every", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timings", action="store_true",
                   help="print per-component wall-time counters after the run")
    _add_store_flags(p)


def _add_store_flags(p, energy_log: bool = True) -> None:
    g = p.add_argument_group("durable run store")
    g.add_argument("--trajectory", metavar="PATH",
                   help="write a bit-exact binary trajectory to PATH")
    g.add_argument("--trajectory-every", type=int, default=0, metavar="N",
                   help="steps between frames (default: --record-every)")
    g.add_argument("--checkpoint-dir", metavar="DIR",
                   help="directory for rolling atomic checkpoints")
    g.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="steps between checkpoints (0: only a final one)")
    g.add_argument("--retain", type=int, default=4,
                   help="checkpoints kept in the rolling store (default 4)")
    g.add_argument("--resume", action="store_true",
                   help="resume bit-exactly from the newest valid checkpoint")
    if energy_log:
        g.add_argument("--energy-log", metavar="PATH",
                       help="stream energy records to PATH as JSON lines")


def _add_ensemble(sub) -> None:
    p = sub.add_parser(
        "ensemble",
        help="run R replicas batched through one engine pass per step",
    )
    p.add_argument("--replicas", type=int, default=4, help="replica count R")
    p.add_argument("--seeds", default=None, metavar="SPEC",
                   help="base seed for splitmix64 derivation, or an explicit "
                        "comma-separated per-replica list (e.g. 1,2,3,4); "
                        "default: derive from --seed")
    p.add_argument("--waters", type=int, default=64, help="water molecule count")
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--dt", type=float, default=1.0, help="time step, fs")
    p.add_argument("--temperature", type=float, default=300.0)
    p.add_argument("--cutoff", type=float, default=None)
    p.add_argument("--skin", type=float, default=None,
                   help="Verlet-list buffer radius, A (default: MDParams.skin)")
    p.add_argument("--record-every", type=int, default=20)
    p.add_argument("--seed", type=int, default=0,
                   help="system build seed (also the default --seeds base)")
    p.add_argument("--kernel-tier", choices=("numpy", "compiled"), default=None,
                   help="hot-loop kernel tier (bitwise identical across tiers); "
                        "default: $REPRO_KERNEL_TIER or numpy")
    p.add_argument("--kernel-threads", type=int, default=None, metavar="T",
                   help="compiled-tier worker threads (bitwise identical for "
                        "every T); default: $REPRO_KERNEL_THREADS or 1")
    p.add_argument("--detach", type=int, default=None, metavar="R",
                   help="after the run, detach replica R into a solo "
                        "Simulation and verify its state codes match")
    p.add_argument("--timings", action="store_true",
                   help="print per-component wall-time counters after the run")
    p.add_argument("--profile", action="store_true",
                   help="print the hierarchical per-step phase profile as JSON")
    g = p.add_argument_group("per-replica durable store")
    g.add_argument("--trajectory", metavar="PATH",
                   help="write solo-format trajectories to PATH.r000.rrs, ...")
    g.add_argument("--trajectory-every", type=int, default=0, metavar="N",
                   help="steps between frames (default: --record-every)")
    g.add_argument("--checkpoint-dir", metavar="DIR",
                   help="root for per-replica checkpoint stores "
                        "(DIR/replica-000/, ...)")
    g.add_argument("--checkpoint-every", type=int, default=0, metavar="N",
                   help="steps between checkpoints (0: only a final one)")
    g.add_argument("--retain", type=int, default=4,
                   help="checkpoints kept per replica store (default 4)")


def _add_serve(sub) -> None:
    p = sub.add_parser("serve", help="run the multi-run simulation service")
    p.add_argument("--dir", required=True, metavar="STATE",
                   help="state directory (durable queue, socket, job artifacts)")
    p.add_argument("--workers", type=int, default=2, help="worker processes")
    p.add_argument("--max-batch", type=int, default=8,
                   help="max same-system jobs fused into one engine pass")
    p.add_argument("--kernel-tier", choices=("numpy", "compiled"), default=None,
                   help="worker kernel tier (bitwise identical across tiers); "
                        "default: $REPRO_KERNEL_TIER or numpy")
    p.add_argument("--kernel-threads", type=int, default=None, metavar="T",
                   help="compiled-tier threads per worker (bitwise identical "
                        "for every T)")
    p.add_argument("--idle-exit", type=float, default=0.0, metavar="SEC",
                   help="exit SEC seconds after every job is terminal "
                        "(0: serve until shutdown)")

    p = sub.add_parser("submit", help="submit a job to a running service")
    p.add_argument("--dir", required=True, metavar="STATE", help="state directory")
    p.add_argument("--name", default="", help="job id (default: job-NNNN)")
    p.add_argument("--priority", type=int, default=0,
                   help="scheduling priority (higher preempts lower)")
    p.add_argument("--waters", type=int, default=64)
    p.add_argument("--steps", type=int, default=100)
    p.add_argument("--dt", type=float, default=1.0)
    p.add_argument("--temperature", type=float, default=300.0)
    p.add_argument("--cutoff", type=float, default=None)
    p.add_argument("--seed", type=int, default=0, help="velocity seed (run identity)")
    p.add_argument("--build-seed", type=int, default=0, help="system build seed")
    p.add_argument("--record-every", type=int, default=10)
    p.add_argument("--trajectory-every", type=int, default=0,
                   help="steps between frames (default: --record-every)")
    p.add_argument("--checkpoint-every", type=int, default=0,
                   help="steps per slice / between checkpoints (0: one slice)")
    p.add_argument("--retain", type=int, default=4)
    p.add_argument("--wait", action="store_true",
                   help="block until the job reaches a terminal state")

    p = sub.add_parser("jobs", help="list jobs on a running service")
    p.add_argument("--dir", required=True, metavar="STATE", help="state directory")
    p.add_argument("--watch", action="store_true",
                   help="refresh until every job is terminal")
    p.add_argument("--metrics", action="store_true",
                   help="also print pool metrics as JSON")

    p = sub.add_parser("cancel", help="cancel a job on a running service")
    p.add_argument("--dir", required=True, metavar="STATE", help="state directory")
    p.add_argument("id", help="job id to cancel")


def _add_machine(sub) -> None:
    p = sub.add_parser("machine", help="run the functional Anton machine simulation")
    p.add_argument("--nodes", type=int, default=8, help="power-of-two node count")
    p.add_argument("--waters", type=int, default=32)
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--check-invariance", action="store_true",
                   help="also run on 1 node and compare bitwise")
    p.add_argument("--backend", choices=("serial", "vectorized", "process"),
                   default="vectorized",
                   help="execution backend (state codes are bitwise "
                        "identical across all of them)")
    p.add_argument("--kernel-tier", choices=("numpy", "compiled"), default=None,
                   help="hot-loop kernel tier: 'compiled' builds a small C "
                        "extension on first use (bitwise identical to numpy; "
                        "falls back with a warning if no C compiler is found); "
                        "default: $REPRO_KERNEL_TIER or numpy")
    p.add_argument("--kernel-threads", type=int, default=None, metavar="T",
                   help="compiled-tier worker threads from the persistent "
                        "pthread pool (bitwise identical for every T); "
                        "default: $REPRO_KERNEL_THREADS or 1")
    p.add_argument("--timings", action="store_true",
                   help="print per-phase machine engine timings after the run")
    p.add_argument("--profile", action="store_true",
                   help="print the hierarchical per-step phase profile as JSON")
    g = p.add_argument_group("fault injection")
    g.add_argument("--faults", metavar="SPEC",
                   help="inject seeded faults, e.g. drop=1e-3,corrupt=1e-3,crash=1 "
                        "(float: per-step probability; int: exact count); the run "
                        "detects, retries, and rolls back — final bits match a "
                        "fault-free run")
    g.add_argument("--fault-seed", type=int, default=0, metavar="N",
                   help="seed for the deterministic fault schedule (default 0)")
    g.add_argument("--max-retries", type=int, default=3, metavar="N",
                   help="retransmissions per dead message / heartbeat waits per "
                        "silent node before escalating to rollback (default 3)")
    _add_routed_flags(p)
    _add_store_flags(p, energy_log=False)


def _add_routed_flags(p) -> None:
    g = p.add_argument_group("routed network fabric (accounting only — "
                             "bits never change)")
    g.add_argument("--routed", action="store_true",
                   help="expand every message into dimension-ordered per-link "
                        "traversals and report link occupancy/congestion")
    g.add_argument("--multicast", choices=("tree", "unicast"), default="tree",
                   help="NT broadcast accounting: spanning-tree edges (default) "
                        "or one unicast path per destination")
    g.add_argument("--delta-bits", type=int, default=None, metavar="B",
                   help="fixed-point delta compression: charge position/force "
                        "payloads at B bits per 32-bit word (accounting only)")


def _routed_config(args):
    from repro.network import RoutedConfig

    return RoutedConfig(multicast=args.multicast, delta_bits=args.delta_bits)


def _print_network_report(report: dict) -> None:
    dims = "x".join(str(d) for d in report["topology"])
    print(f"routed fabric: {dims} torus, {report['links']} directed links, "
          f"{report['steps']} steps "
          f"(multicast={report['multicast_mode']}, delta_bits={report['delta_bits']})")
    print(f"{'phase':<18} {'msgs':>8} {'link bytes':>12} {'max link':>10} "
          f"{'hops':>5} {'us/step':>8}  busiest")
    for tag, ph in report["phases"].items():
        busiest = "-"
        if ph["busiest_link"]:
            busiest = f"node {ph['busiest_link'][0]} {ph['busiest_link'][1]}"
        print(f"{tag:<18} {ph['messages']:>8} {ph['link_bytes']:>12} "
              f"{ph['max_link_bytes']:>10} {ph['max_hops']:>5} "
              f"{ph['time_us_per_step']:>8.3f}  {busiest}")
    mc = report["multicast"]
    if mc["unicast_link_bytes"]:
        saved_pct = 100.0 * mc["saved_link_bytes"] / mc["unicast_link_bytes"]
        print(f"multicast: {mc['tree_link_bytes']} tree vs "
              f"{mc['unicast_link_bytes']} unicast link bytes "
              f"({saved_pct:.0f}% saved)")
    if report["compression_saved_link_bytes"]:
        print(f"compression saved: {report['compression_saved_link_bytes']} link bytes")
    if report["recovery_link_bytes"]:
        print(f"recovery link bytes (segregated): {report['recovery_link_bytes']}")
    print(f"comm critical path: {report['comm_us_per_step']:.3f} us/step "
          f"(max link load: {report['max_link_bytes']} bytes)")


def _add_network(sub) -> None:
    p = sub.add_parser(
        "network",
        help="routed-fabric link report (functional run) or predicted "
             "512-4096 node scaling sweep (--predict)",
    )
    p.add_argument("--nodes", type=int, default=8,
                   help="power-of-two node count for the functional run")
    p.add_argument("--waters", type=int, default=32)
    p.add_argument("--steps", type=int, default=8)
    p.add_argument("--backend", choices=("serial", "vectorized", "process"),
                   default="vectorized")
    p.add_argument("--multicast", choices=("tree", "unicast"), default="tree")
    p.add_argument("--delta-bits", type=int, default=None, metavar="B")
    p.add_argument("--json", action="store_true", help="print the report as JSON")
    g = p.add_argument_group("analytic prediction (no functional stepping)")
    g.add_argument("--predict", action="store_true",
                   help="sweep the congested critical-path model over "
                        "--node-counts for a Table 4 system")
    g.add_argument("--system", default="DHFR", help="Table 4 name (with --predict)")
    g.add_argument("--node-counts", default="512,1024,2048,4096", metavar="LIST",
                   help="comma-separated node counts (with --predict)")
    g.add_argument("--bandwidth-scale", type=float, default=1.0, metavar="S",
                   help="scale usable link bandwidth (S < 1 injects congestion)")


def _add_traj(sub) -> None:
    p = sub.add_parser("traj", help="inspect/verify trajectory files")
    p.add_argument("action", choices=("info", "dump", "verify"),
                   help="info: header + frame table; dump: one frame; "
                        "verify: CRC-check every record")
    p.add_argument("path", help="trajectory file")
    p.add_argument("--frame", type=int, default=-1,
                   help="frame index for dump (negative from the end)")
    p.add_argument("--atoms", type=int, default=3,
                   help="atom rows to print for dump")


def _add_perf(sub) -> None:
    p = sub.add_parser("perf", help="performance model queries")
    p.add_argument("--system", default="DHFR", help="Table 4 name or BPTI")
    p.add_argument("--nodes", type=int, default=512)
    p.add_argument("--profile", action="store_true", help="print the Table 2 style task profile")


def _open_store(args):
    """(store, loaded) from the durable-store flags; SystemExit on misuse."""
    from repro.io import CheckpointError, CheckpointStore

    store = None
    if args.checkpoint_dir:
        store = CheckpointStore(args.checkpoint_dir, retain=args.retain)
    loaded = None
    if args.resume:
        if store is None:
            raise SystemExit("--resume requires --checkpoint-dir")
        try:
            loaded = store.load_latest()
        except CheckpointError as exc:
            raise SystemExit(str(exc)) from exc
        for path, why in loaded.skipped:
            print(f"warning: skipped corrupt snapshot {path}: {why}")
    return store, loaded


def cmd_simulate(args) -> int:
    from dataclasses import replace

    from repro import BerendsenThermostat, EnergyLogWriter, MDParams, Simulation, minimize_energy
    from repro.systems import benchmark_by_name, build_hp_system, build_water_box, hp_miniprotein

    if args.system == "water":
        system = build_water_box(n_molecules=args.waters, seed=args.seed)
        cutoff = args.cutoff or min(5.5, system.box.max_cutoff() * 0.9)
        params = MDParams(cutoff=cutoff, mesh=(16, 16, 16), long_range_every=2)
    elif args.system == "hp":
        system = build_hp_system(hp_miniprotein(seed=args.seed))
        params = MDParams(cutoff=args.cutoff or 14.0, mesh=(16, 16, 16))
    else:
        spec = benchmark_by_name(args.system)
        system = spec.build(scale=args.scale, seed=args.seed)
        cutoff = args.cutoff or min(spec.cutoff, system.box.max_cutoff() * 0.9)
        params = MDParams(cutoff=cutoff, mesh=(32, 32, 32), long_range_every=2)
    if args.skin is not None:
        params = replace(params, skin=args.skin)
    print(f"system: {system.meta.get('name', args.system)} — {system.n_atoms} atoms, "
          f"box {system.box.lengths[0]:.1f} A, cutoff {params.cutoff:.1f} A, "
          f"skin {params.skin:.1f} A")
    store, loaded = _open_store(args)
    if loaded is None:
        # A restore replaces the dynamic state wholesale, so system
        # preparation is only needed for fresh runs.
        e = minimize_energy(system, params, max_steps=80)
        print(f"minimized potential energy: {e:.1f} kcal/mol")
        system.initialize_velocities(args.temperature, seed=args.seed + 1)
    sim = Simulation(
        system,
        params,
        dt=args.dt,
        mode=args.mode,
        thermostat=BerendsenThermostat(args.temperature),
        constraints=True,
    )
    steps = args.steps
    if loaded is not None:
        sim.restore(loaded.state)
        done = sim.integrator.step_count
        steps = max(0, args.steps - done)
        print(f"resumed from {loaded.path} at step {done} ({steps} steps remain)")

    trajectory = None
    trajectory_every = args.trajectory_every or args.record_every
    if args.trajectory:
        if loaded is not None and os.path.exists(args.trajectory):
            trajectory = sim.append_trajectory(args.trajectory)
        else:
            trajectory = sim.open_trajectory(args.trajectory)
    energy_writer = None
    if args.energy_log:
        energy_writer = EnergyLogWriter(args.energy_log, append=loaded is not None)

    try:
        print(f"{'step':>8} {'E_total':>14} {'T (K)':>8}")
        for rec in sim.run(
            steps,
            record_every=args.record_every,
            energy_writer=energy_writer,
            trajectory=trajectory,
            trajectory_every=trajectory_every,
            checkpoint_store=store,
            checkpoint_every=args.checkpoint_every,
        ):
            print(f"{rec.step:>8} {rec.total:>14.4f} {rec.temperature:>8.0f}")
    finally:
        if trajectory is not None:
            trajectory.close()
        if energy_writer is not None:
            energy_writer.close()
    if store is not None:
        final = store.save(sim.checkpoint(), sim.integrator.step_count)
        print(f"final checkpoint: {final}")
    nl = sim.calc.neighbor_list
    print(f"neighbor list: {nl.n_builds} builds / {nl.n_reuses} reuses "
          f"(skin {nl.effective_skin:.1f} A, {nl.n_candidates} cached pairs)")
    if args.timings:
        print("component wall time:")
        for line in sim.timers.summary_lines():
            print(f"  {line}")
    return 0


def cmd_ensemble(args) -> int:
    from dataclasses import replace

    from repro import BerendsenThermostat, MDParams, minimize_energy
    from repro.ensemble import EnsembleSimulation, parse_seed_spec
    from repro.io import replica_checkpoint_store, replica_trajectory_path
    from repro.systems import build_water_box

    system = build_water_box(n_molecules=args.waters, seed=args.seed)
    cutoff = args.cutoff or min(5.5, system.box.max_cutoff() * 0.9)
    params = MDParams(cutoff=cutoff, mesh=(16, 16, 16), long_range_every=2)
    if args.skin is not None:
        params = replace(params, skin=args.skin)
    try:
        seeds = parse_seed_spec(args.seeds, args.replicas, base_seed=args.seed)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    print(f"system: water x{args.replicas} replicas — {system.n_atoms} atoms each "
          f"({system.n_atoms * args.replicas} batched), box {system.box.lengths[0]:.1f} A, "
          f"cutoff {params.cutoff:.1f} A")
    e = minimize_energy(system, params, max_steps=80)
    print(f"minimized potential energy: {e:.1f} kcal/mol")
    print(f"replica seeds: {', '.join(str(s) for s in seeds)}")
    ens = EnsembleSimulation(
        system,
        params,
        dt=args.dt,
        seeds=seeds,
        temperature=args.temperature,
        thermostat=BerendsenThermostat(args.temperature),
        constraints=True,
        kernel_tier=args.kernel_tier,
        kernel_threads=args.kernel_threads,
    )
    print(
        f"kernel tier: {ens.kernels.tier} "
        f"(threads: {getattr(ens.kernels, 'threads', 1)})"
    )

    trajectories = None
    trajectory_every = args.trajectory_every or args.record_every
    if args.trajectory:
        trajectories = [
            ens.open_replica_trajectory(replica_trajectory_path(args.trajectory, r))
            for r in range(ens.replicas)
        ]
    stores = None
    if args.checkpoint_dir:
        stores = [
            replica_checkpoint_store(args.checkpoint_dir, r, retain=args.retain)
            for r in range(ens.replicas)
        ]
    try:
        print(f"{'step':>8}  " + "  ".join(f"{'E_r%d' % r:>12}" for r in range(ens.replicas)))
        for recs in zip(*ens.run(
            args.steps,
            record_every=args.record_every,
            trajectories=trajectories,
            trajectory_every=trajectory_every,
            checkpoint_stores=stores,
            checkpoint_every=args.checkpoint_every,
        )):
            print(f"{recs[0].step:>8}  " + "  ".join(f"{rec.total:>12.4f}" for rec in recs))
    finally:
        if trajectories is not None:
            for writer in trajectories:
                writer.close()
    if stores is not None:
        step = ens.integrator.step_count
        for r, store in enumerate(stores):
            final = store.save(ens.replica_checkpoint(r), step)
            if r == 0:
                print(f"final checkpoints: {final} ...")
    temps = [ens.energy_logs[r][-1].temperature if ens.energy_logs[r] else float("nan")
             for r in range(ens.replicas)]
    print("final T (K): " + ", ".join(f"{t:.0f}" for t in temps))
    nl = ens.calc.neighbor_list
    print(f"neighbor list: {nl.n_builds} builds / {nl.n_reuses} reuses "
          f"({nl.n_candidates} cached pairs across replicas)")
    ok = True
    if args.detach is not None:
        solo = ens.detach(args.detach)
        xs, vs = solo.integrator.X, solo.integrator.V
        xe, ve = ens.state_codes(args.detach)
        same = bool(np.array_equal(xs, xe) and np.array_equal(vs, ve))
        print(f"replica {args.detach} detached as a solo Simulation "
              f"(state codes bitwise identical: {same})")
        ok = same
    if args.timings:
        print("component wall time:")
        for line in ens.timers.summary_lines():
            print(f"  {line}")
    if args.profile:
        import json

        print(json.dumps(ens.profile(), indent=2))
    return 0 if ok else 1


def cmd_machine(args) -> int:
    from repro import AntonMachine, MDParams, minimize_energy
    from repro.systems import build_water_box

    base = build_water_box(n_molecules=args.waters, seed=7)
    cutoff = min(4.5, base.box.max_cutoff() * 0.9)
    params = MDParams(cutoff=cutoff, mesh=(16, 16, 16), quantize_mesh_bits=40)
    store, loaded = _open_store(args)
    if loaded is None:
        minimize_energy(base, params, max_steps=40)
        base.initialize_velocities(300.0, seed=8)

    fault_kwargs = {}
    if args.faults:
        from repro.fault import RecoveryPolicy, parse_fault_spec

        try:
            spec = parse_fault_spec(args.faults)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
        fault_kwargs = dict(
            faults=spec,
            fault_seed=args.fault_seed,
            recovery=RecoveryPolicy(max_retries=args.max_retries),
        )
    machine = AntonMachine(
        base.copy(), params, n_nodes=args.nodes, dt=1.0, backend=args.backend,
        kernel_tier=args.kernel_tier, kernel_threads=args.kernel_threads,
        routed=_routed_config(args) if args.routed else False,
        **fault_kwargs,
    )
    steps = args.steps
    if loaded is not None:
        machine.restore(loaded.state)
        done = machine.integrator.step_count
        steps = max(0, args.steps - done)
        print(f"resumed from {loaded.path} at step {done} ({steps} steps remain)")
    trajectory = None
    if args.trajectory:
        if loaded is not None and os.path.exists(args.trajectory):
            trajectory = machine.append_trajectory(args.trajectory)
        else:
            trajectory = machine.open_trajectory(args.trajectory)
    try:
        machine.run(
            steps,
            trajectory=trajectory,
            trajectory_every=args.trajectory_every,
            checkpoint_store=store,
            checkpoint_every=args.checkpoint_every,
        )
    finally:
        if trajectory is not None:
            trajectory.close()
    if store is not None:
        final = store.save(machine.checkpoint(), machine.integrator.step_count)
        print(f"final checkpoint: {final}")
    print(f"{args.nodes}-node machine, {args.steps} steps "
          f"({machine.topology.dims[0]}x{machine.topology.dims[1]}x{machine.topology.dims[2]} torus), "
          f"{args.backend} backend")
    print(f"kernel tier: {machine.backend.kernels.tier} "
          f"(threads: {getattr(machine.backend.kernels, 'threads', 1)})")
    print(f"messages/node/step: {machine.messages_per_node_per_step():.1f}")
    for tag, (msgs, nbytes) in sorted(machine.traffic_summary().items()):
        print(f"  {tag:<20} {msgs:>8} msgs {nbytes:>12} bytes")
    if args.routed:
        _print_network_report(machine.network_report())
    if args.faults:
        report = machine.fault_report()
        recovery = machine.recovery_traffic_summary()
        print(f"fault injection (seed {args.fault_seed}): "
              f"{report['injected']} injected, {report['retries']} retries, "
              f"{report['rollbacks']} rollbacks, "
              f"{report['replayed_steps']} steps replayed")
        for name, count in sorted(report.items()):
            if count:
                print(f"  {name:<22} {count:>8}")
        rt_msgs, rt_bytes = recovery["retransmit"]
        rp_msgs, rp_bytes = recovery["replay"]
        print(f"  recovery traffic: {rt_msgs} retransmit msgs ({rt_bytes} bytes), "
              f"{rp_msgs} replay msgs ({rp_bytes} bytes) — excluded from the "
              f"primary counters above")
    if args.timings:
        print(f"engine time: {machine.engine_seconds() * 1e3:.1f} ms")
        for name, secs in sorted(machine.phase_timings().items(), key=lambda kv: -kv[1]):
            print(f"  {name:<20} {secs * 1e3:10.2f} ms")
    if args.profile:
        import json

        print(json.dumps(machine.profile(), indent=2))
    ok = True
    if args.check_invariance:
        ref = AntonMachine(base.copy(), params, n_nodes=1, dt=1.0, backend=args.backend)
        ref.step(args.steps)
        same = all(
            np.array_equal(a, b) for a, b in zip(machine.state_codes(), ref.state_codes())
        )
        print(f"bitwise identical to the 1-node machine: {same}")
        ref.close()
        ok = same
    machine.close()
    return 0 if ok else 1


def cmd_traj(args) -> int:
    from repro.io import CorruptRecord, TrajectoryReader

    try:
        reader = TrajectoryReader(args.path)
    except FileNotFoundError:
        print(f"{args.path}: no such file", file=sys.stderr)
        return 1
    except CorruptRecord as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with reader:
        if args.action == "info":
            dec = reader.decode
            print(f"{args.path}: {len(reader)} frames "
                  f"({'rebuilt index — torn tail dropped' if reader.index_rebuilt else 'clean index'})")
            if len(reader):
                steps = reader.steps
                print(f"steps {steps[0]}..{steps[-1]}")
            print(f"storage: {dec.get('storage', '?')}"
                  + (f", {dec['position_bits']}-bit positions" if "position_bits" in dec else ""))
            fp = reader.fingerprint
            if fp:
                print(f"fingerprint: {fp.get('n_atoms', '?')} atoms, mode {fp.get('mode', '?')}, "
                      f"dt {fp.get('dt', '?')} fs, system {fp.get('system_hash', '?')[:12]}")
            for key, value in sorted(reader.meta.items()):
                print(f"meta.{key}: {value}")
        elif args.action == "dump":
            try:
                frame = reader.frame(args.frame)
            except IndexError as exc:
                print(str(exc), file=sys.stderr)
                return 1
            pos = reader.positions(frame)
            vel = reader.velocities(frame)
            print(f"frame {args.frame}: step {frame.step}, t = {frame.time_fs:.1f} fs, "
                  f"{len(pos)} atoms")
            print(f"position extent: [{pos.min():.4f}, {pos.max():.4f}] A; "
                  f"|v|_max {np.max(np.abs(vel)):.5f} A/fs")
            for i in range(min(args.atoms, len(pos))):
                print(f"  atom {i}: x = ({pos[i, 0]:12.6f}, {pos[i, 1]:12.6f}, {pos[i, 2]:12.6f})"
                      f"  v = ({vel[i, 0]:9.6f}, {vel[i, 1]:9.6f}, {vel[i, 2]:9.6f})")
        else:  # verify
            report = reader.verify()
            print(f"{args.path}: {report.n_frames} frames")
            print(f"header: {'ok' if report.header_ok else 'BAD'}; "
                  f"index: {'ok' if report.index_ok else 'missing'}; "
                  f"tail: {'clean' if report.clean_tail else 'TORN'}")
            for err in report.errors:
                print(f"  {err}")
            print("verify: PASS" if report.ok else "verify: FAIL")
            return 0 if report.ok else 1
    return 0


def cmd_network(args) -> int:
    import json

    from repro.network import RoutedConfig

    config = RoutedConfig(multicast=args.multicast, delta_bits=args.delta_bits)
    if args.predict:
        from repro import PerformanceModel
        from repro.network import CongestionModel
        from repro.systems import benchmark_by_name

        spec = benchmark_by_name(args.system)
        node_counts = tuple(int(x) for x in args.node_counts.split(","))
        congestion = CongestionModel(bandwidth_scale=args.bandwidth_scale)
        pm = PerformanceModel()
        rows = pm.anton_routed_scaling(
            spec, node_counts=node_counts, config=config, congestion=congestion
        )
        if args.json:
            print(json.dumps(rows, indent=2, default=float))
            return 0
        print(f"{spec.name}: predicted scaling, congested critical-path model "
              f"(bandwidth scale {args.bandwidth_scale})")
        print(f"{'nodes':>6} {'short us':>9} {'long us':>8} {'step us':>8} "
              f"{'us/day routed':>14} {'us/day counter':>15} {'mcast saved':>12}")
        for r in rows:
            print(f"{r['n_nodes']:>6} {r['short_comm_us']:>9.2f} "
                  f"{r['long_comm_us']:>8.2f} {r['step_us_routed']:>8.2f} "
                  f"{r['us_per_day_routed']:>14.2f} {r['us_per_day_counter']:>15.2f} "
                  f"{r['multicast']['saved_link_bytes']:>12}")
        return 0

    from repro import AntonMachine, MDParams, minimize_energy
    from repro.systems import build_water_box

    base = build_water_box(n_molecules=args.waters, seed=7)
    cutoff = min(4.5, base.box.max_cutoff() * 0.9)
    params = MDParams(cutoff=cutoff, mesh=(16, 16, 16), quantize_mesh_bits=40)
    minimize_energy(base, params, max_steps=40)
    base.initialize_velocities(300.0, seed=8)
    machine = AntonMachine(
        base, params, n_nodes=args.nodes, dt=1.0, backend=args.backend,
        routed=config,
    )
    machine.step(args.steps)
    report = machine.network_report()
    if args.json:
        print(json.dumps(report, indent=2, default=float))
    else:
        _print_network_report(report)
    machine.close()
    return 0


def cmd_perf(args) -> int:
    from repro import PerformanceModel
    from repro.systems import benchmark_by_name

    pm = PerformanceModel()
    spec = benchmark_by_name(args.system)
    rate = pm.anton_us_per_day(spec, n_nodes=args.nodes)
    print(f"{spec.name}: {spec.n_atoms} atoms, cutoff {spec.cutoff} A, mesh {spec.mesh}^3")
    print(f"modeled rate on {args.nodes} nodes: {rate:.1f} us/day "
          f"(paper, 512 nodes: {spec.paper_us_per_day})")
    print(f"speedup vs Desmond record: {pm.speedup_vs_desmond(rate):.0f}x; "
          f"vs practical clusters: {pm.speedup_vs_practical_cluster(rate):.0f}x")
    if args.profile:
        from repro.perf import workload_from_spec

        w = workload_from_spec(spec, n_nodes=args.nodes)
        print(f"\nper-node task profile ({args.nodes} nodes), us:")
        for task, t, frac in pm.anton_profile(w, n_nodes=args.nodes).rows():
            print(f"  {task:<24} {t:8.2f}  ({frac:4.0%})")
    return 0


def cmd_info(_args) -> int:
    import repro

    print(f"repro {repro.__version__} — functional reproduction of")
    print('  Shaw et al., "Millisecond-Scale Molecular Dynamics Simulations')
    print('  on Anton", SC 2009.')
    print("\nreproduced experiments (see EXPERIMENTS.md):")
    for item in (
        "Table 1  longest published simulations (bench_table1_longest_sims)",
        "Table 2  x86 vs Anton task profiles (bench_table2_profile)",
        "Table 3  NT match efficiency (bench_table3_match_efficiency)",
        "Table 4  force errors / drift / rates (bench_table4_accuracy)",
        "Fig. 3   import-region volumes (bench_figure3_import_volume)",
        "Fig. 4   datapath-width accuracy (bench_figure4_numerics)",
        "Fig. 5   performance vs size (bench_figure5_performance)",
        "Fig. 6   NH order parameters (bench_figure6_order_params)",
        "Fig. 7   folding/unfolding events (bench_figure7_folding)",
        "Sec. 4   determinism / invariance / reversibility (bench_numerics_invariance)",
    ):
        print(f"  {item}")
    return 0


def cmd_serve(args) -> int:
    from repro.serve import ServeConfig, Server

    config = ServeConfig(
        workers=args.workers,
        max_batch=args.max_batch,
        kernel_tier=args.kernel_tier,
        kernel_threads=args.kernel_threads,
        idle_exit=args.idle_exit,
    )
    server = Server(args.dir, config)
    print(f"serving on {server.sock_path} — {config.workers} workers, "
          f"max batch {config.max_batch} (pid {os.getpid()})")
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        server.close()
    return 0


def cmd_submit(args) -> int:
    from repro.serve import ServeClient, ServeUnavailable
    from repro.serve.jobs import JobSpec

    try:
        spec = JobSpec(
            waters=args.waters, build_seed=args.build_seed, steps=args.steps,
            dt=args.dt, temperature=args.temperature, seed=args.seed,
            priority=args.priority, cutoff=args.cutoff,
            record_every=args.record_every,
            trajectory_every=args.trajectory_every,
            checkpoint_every=args.checkpoint_every,
            retain=args.retain, name=args.name,
        )
    except ValueError as exc:
        raise SystemExit(f"bad job spec: {exc}") from exc
    client = ServeClient(args.dir)
    try:
        resp = client.submit(spec.to_dict())
    except (ServeUnavailable, RuntimeError) as exc:
        raise SystemExit(str(exc)) from exc
    print(f"submitted {resp['id']} (arrival {resp['arrival']}, "
          f"priority {spec.priority}, {spec.steps} steps)")
    if args.wait:
        states = client.wait([resp["id"]])
        job = client.status(resp["id"])
        print(f"{resp['id']}: {states[resp['id']]} — {job['steps_done']} steps, "
              f"artifacts in {job['artifact_dir']}")
        return 0 if states[resp["id"]] == "DONE" else 1
    return 0


def _job_table(jobs: list[dict]) -> list[str]:
    head = (f"{'id':<14} {'state':<10} {'pri':>3} {'steps':>11} "
            f"{'pre':>3} {'rec':>3} {'wait s':>7} {'steps/s':>8}")
    lines = [head, "-" * len(head)]
    for j in jobs:
        lines.append(
            f"{j['id']:<14} {j['state']:<10} {j['priority']:>3} "
            f"{j['steps_done']:>5}/{j['steps']:<5} "
            f"{j['preemptions']:>3} {j['recoveries']:>3} "
            f"{j['queue_wait_s']:>7.2f} {j.get('steps_per_s', 0.0):>8.2f}"
        )
    return lines


def cmd_jobs(args) -> int:
    import json as _json
    import time as _time

    from repro.serve import ServeClient, ServeUnavailable
    from repro.serve.jobs import TERMINAL_STATES

    client = ServeClient(args.dir)
    try:
        while True:
            jobs = client.jobs()
            out = _job_table(jobs)
            if args.watch:
                sys.stdout.write("\x1b[2J\x1b[H")
            print("\n".join(out))
            if args.metrics:
                print(_json.dumps(client.metrics(), indent=2, sort_keys=True))
            if not args.watch or (jobs and all(
                    j["state"] in TERMINAL_STATES for j in jobs)):
                return 0
            _time.sleep(0.5)
    except (ServeUnavailable, RuntimeError) as exc:
        raise SystemExit(str(exc)) from exc


def cmd_cancel(args) -> int:
    from repro.serve import ServeClient, ServeUnavailable

    try:
        resp = ServeClient(args.dir).cancel(args.id)
    except (ServeUnavailable, RuntimeError) as exc:
        raise SystemExit(str(exc)) from exc
    print(f"{args.id}: {resp['state']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)
    _add_simulate(sub)
    _add_ensemble(sub)
    _add_serve(sub)
    _add_machine(sub)
    _add_network(sub)
    _add_traj(sub)
    _add_perf(sub)
    sub.add_parser("info", help="version and experiment index")
    args = parser.parse_args(argv)
    return {
        "simulate": cmd_simulate,
        "ensemble": cmd_ensemble,
        "serve": cmd_serve,
        "submit": cmd_submit,
        "jobs": cmd_jobs,
        "cancel": cmd_cancel,
        "machine": cmd_machine,
        "network": cmd_network,
        "traj": cmd_traj,
        "perf": cmd_perf,
        "info": cmd_info,
    }[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
