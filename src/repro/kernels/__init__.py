"""Optional compiled kernel tier for the machine simulation hot loops.

See :mod:`repro.kernels.suite` for the tier contract and
:mod:`repro.kernels.build` for the lazy C build.  The public surface is
:func:`get_suite`, the resolver for the ``kernel_tier`` /
``kernel_threads`` knobs, and :func:`resolve_config`, the shared
env-var/argument resolution both the machine and ensemble layers use.
"""

from repro.kernels.build import KernelBuildError, available
from repro.kernels.suite import (
    KERNEL_TIERS,
    CompiledKernels,
    KernelConfig,
    NumpyKernels,
    PairTableSpec,
    get_suite,
    make_pair_spec,
    resolve_config,
)

__all__ = [
    "KERNEL_TIERS",
    "KernelBuildError",
    "KernelConfig",
    "CompiledKernels",
    "NumpyKernels",
    "PairTableSpec",
    "available",
    "get_suite",
    "make_pair_spec",
    "resolve_config",
]
