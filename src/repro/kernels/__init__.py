"""Optional compiled kernel tier for the machine simulation hot loops.

See :mod:`repro.kernels.suite` for the tier contract and
:mod:`repro.kernels.build` for the lazy C build.  The public surface is
:func:`get_suite`, the ``kernel_tier`` knob's resolver.
"""

from repro.kernels.build import KernelBuildError, available
from repro.kernels.suite import (
    KERNEL_TIERS,
    CompiledKernels,
    NumpyKernels,
    PairTableSpec,
    get_suite,
    make_pair_spec,
)

__all__ = [
    "KERNEL_TIERS",
    "KernelBuildError",
    "CompiledKernels",
    "NumpyKernels",
    "PairTableSpec",
    "available",
    "get_suite",
    "make_pair_spec",
]
