"""Kernel tiers: NumPy reference implementations and ctypes wrappers.

A *kernel suite* is the small set of hot-loop primitives the machine
simulation dispatches through: neighbor-pair cutoff filtering, the
fused tabulated pair kernel (table evaluation straight to fixed-point
force codes), fixed-point scatter deposits, mesh charge spreading, and
the SHAKE/RATTLE constraint sweeps.  Two tiers implement the same
contract:

* :class:`NumpyKernels` — pure NumPy, always available, and the
  reference the property tests compare against.
* :class:`CompiledKernels` — thin ctypes shims over ``_kernels.c``,
  built lazily by :mod:`repro.kernels.build`.

The contract is *bitwise identity*: for any input, both tiers return
the same bytes.  The compiled tier therefore preserves every
reproducibility gate in the repo (backend equivalence, fault-recovery
replay, checkpoint round-trips) while removing the Python interpreter
from the per-pair loops.

:func:`resolve_config` resolves the two knobs — tier and thread count —
from explicit arguments first, then the ``REPRO_KERNEL_TIER`` /
``REPRO_KERNEL_THREADS`` environment variables, then the defaults
(``"numpy"``, 1).  Requesting ``"compiled"`` on a host without a C
compiler degrades to the NumPy tier with a one-time warning — the
package never hard-fails for lack of a toolchain; likewise
``threads > 1`` on a pthread-less build degrades to single-threaded.

Thread counts are **bitwise-invisible**: the compiled tier parallelizes
via per-thread int64 partials folded with wrapping adds (associative
and commutative, so the reduction order cannot change the result) and
via chunked pure writes to disjoint output rows.  Every thread count
produces the same bytes as ``threads=1``, which produces the same bytes
as the NumPy tier.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

from repro.kernels.build import KernelBuildError, load

__all__ = [
    "KERNEL_TIERS",
    "KernelConfig",
    "PairTableSpec",
    "NumpyKernels",
    "CompiledKernels",
    "make_pair_spec",
    "get_suite",
    "resolve_config",
]

KERNEL_TIERS = ("numpy", "compiled")

#: Hard ceiling on kernel_threads (the C pool caps at 256 lanes; 128
#: leaves headroom and catches typos like REPRO_KERNEL_THREADS=1000).
_MAX_THREADS = 128

#: Below this many work items the per-call pool handoff outweighs the
#: parallel speedup; the mt entry points fall back to the serial loop
#: (a pure dispatch choice — both paths produce identical bytes).
_MT_MIN_PAIRS = 4096


@dataclass(frozen=True)
class KernelConfig:
    """Resolved kernel selection: tier name plus thread count."""

    tier: str
    threads: int


def resolve_config(tier: str | None = None, threads: int | None = None) -> KernelConfig:
    """Resolve tier/threads knobs: argument, then env var, then default.

    This is the single place the ``REPRO_KERNEL_TIER`` and
    ``REPRO_KERNEL_THREADS`` environment variables are consulted;
    machine, ensemble, and CLI all funnel through it.
    """
    if tier is None:
        tier = os.environ.get("REPRO_KERNEL_TIER", "numpy")
    if tier not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel_tier {tier!r}; expected one of {KERNEL_TIERS}")
    if threads is None:
        raw = os.environ.get("REPRO_KERNEL_THREADS", "1")
        try:
            threads = int(raw)
        except ValueError:
            raise ValueError(f"REPRO_KERNEL_THREADS={raw!r} is not an integer") from None
    threads = int(threads)
    if not 1 <= threads <= _MAX_THREADS:
        raise ValueError(f"kernel_threads must be in [1, {_MAX_THREADS}], got {threads}")
    return KernelConfig(tier=tier, threads=threads)


def _ptr(a: np.ndarray) -> int:
    return a.ctypes.data


def _i64(a) -> np.ndarray:
    """C-contiguous int64 view (no copy when already conforming)."""
    return np.ascontiguousarray(a, dtype=np.int64)


@dataclass(frozen=True)
class PairTableSpec:
    """Frozen per-system inputs of the fused tabulated pair kernel.

    Everything that does not change between force evaluations: charges,
    LJ type ids, the precomputed per-type-pair A/B coefficient matrices,
    the tier-table segmentations and quantized cubic coefficients for
    the electrostatic and dispersion layouts, and the force-code
    quantization constants.  Built once by :func:`make_pair_spec` and
    reused every step.
    """

    charges: np.ndarray
    types: np.ndarray
    amat: np.ndarray
    bmat: np.ndarray
    n_types: int
    coulomb: float
    cutoff2: float
    umax: float
    e_starts: np.ndarray
    e_widths: np.ndarray
    e_cf: np.ndarray
    e_ce: np.ndarray
    d_starts: np.ndarray
    d_widths: np.ndarray
    c12f: np.ndarray
    c6f: np.ndarray
    c12e: np.ndarray
    c6e: np.ndarray
    q_limit: float
    q_scale: float


def make_pair_spec(tables, lj_table, charges, type_ids, force_codec) -> PairTableSpec:
    """Precompute the static arrays for :meth:`~NumpyKernels.pair_table_codes`.

    The A/B matrices are formed with exactly the elementwise operations
    of :meth:`LJTable.pair_coefficients` (``s6 = sigma**6`` then
    ``4 eps s6 s6`` / ``4 eps s6``) applied to the full type-pair
    matrices; a gather from these matrices is bitwise identical to the
    per-pair computation because every op is elementwise.
    """
    from repro.util import COULOMB

    def seg(table):
        cq = np.ascontiguousarray(table.coeffs_quant, dtype=np.float64)
        if cq.ndim != 2 or cq.shape[1] != 4:
            raise ValueError("fused pair kernel requires cubic tables")
        return (
            np.ascontiguousarray(table.seg_starts, dtype=np.float64),
            np.ascontiguousarray(table.seg_widths, dtype=np.float64),
            cq,
        )

    e_starts, e_widths, e_cf = seg(tables.tables["elec_f"])
    ee_starts, _, e_ce = seg(tables.tables["elec_e"])
    d_starts, d_widths, c12f = seg(tables.tables["lj12_f"])
    _, _, c6f = seg(tables.tables["lj6_f"])
    _, _, c12e = seg(tables.tables["lj12_e"])
    _, _, c6e = seg(tables.tables["lj6_e"])
    if tables.tables["elec_f"].segmentation_key() != tables.tables["elec_e"].segmentation_key():
        raise ValueError("electrostatic tables must share a segmentation")
    for name in ("lj6_f", "lj12_e", "lj6_e"):
        if tables.tables[name].segmentation_key() != tables.tables["lj12_f"].segmentation_key():
            raise ValueError("dispersion tables must share a segmentation")

    s6 = lj_table.sigma_ij**6
    eps_ij = lj_table.eps_ij
    amat = np.ascontiguousarray(4.0 * eps_ij * s6 * s6)
    bmat = np.ascontiguousarray(4.0 * eps_ij * s6)

    return PairTableSpec(
        charges=np.ascontiguousarray(charges, dtype=np.float64),
        types=np.ascontiguousarray(type_ids, dtype=np.int64),
        amat=amat,
        bmat=bmat,
        n_types=int(amat.shape[0]),
        coulomb=float(COULOMB),
        cutoff2=float(tables.cutoff) ** 2,
        umax=float(np.nextafter(1.0, 0.0)),
        e_starts=e_starts,
        e_widths=e_widths,
        e_cf=e_cf,
        e_ce=e_ce,
        d_starts=d_starts,
        d_widths=d_widths,
        c12f=c12f,
        c6f=c6f,
        c12e=c12e,
        c6e=c6e,
        q_limit=float(force_codec.limit),
        q_scale=float(force_codec.fmt.scale),
    )


class NumpyKernels:
    """Reference tier: NumPy expressions matching the simulator's own.

    These mirror (and in the scatter/spread cases simply call) the
    existing vectorized code paths, so "compiled vs numpy" identity is
    the same statement as "compiled vs simulator" identity.
    """

    tier = "numpy"
    #: Worker-lane count.  The NumPy tier is always single-threaded
    #: (BLAS/NumPy manage their own internals); the knob only changes
    #: dispatch on the compiled tier and is bitwise-invisible there.
    threads = 1

    def __init__(self):
        #: Single-threaded suite with identical numerics; self here.
        #: Threaded code hands ``serial`` to Python worker threads so C
        #: kernels are never re-entered through the process-wide pool.
        self.serial = self

    def map_chunks(self, fn, nchunks):
        """Run ``fn(0) .. fn(nchunks - 1)``, possibly concurrently.

        The chunks must write disjoint outputs; ordering is therefore
        bitwise-irrelevant.  The reference tier runs them serially.
        """
        for b in range(nchunks):
            fn(b)

    # -- neighbor filter -------------------------------------------------

    def pair_filter(self, wrapped, ii, jj, lengths, cutoff2, oi, oj, odx, or2):
        """Cutoff-filter candidate pairs into the provided scratch.

        Returns the surviving count ``m``; results land in
        ``oi[:m], oj[:m], odx[:m], or2[:m]``.
        """
        d = wrapped[ii] - wrapped[jj]
        dx = d - lengths * np.round(d / lengths)
        r2 = np.sum(dx * dx, axis=1)
        keep = r2 < cutoff2
        m = int(np.count_nonzero(keep))
        oi[:m] = ii[keep]
        oj[:m] = jj[keep]
        odx[:m] = dx[keep]
        or2[:m] = r2[keep]
        return m

    # -- fused tabulated pair kernel -------------------------------------

    def pair_table_codes(self, spec: PairTableSpec, i, j, dx, r2, codes, e_lj, e_coul):
        """Tabulated pair forces quantized to int64 codes.

        Writes force codes and per-pair energies into the provided
        output arrays (all length ``len(i)``).
        """
        qq = spec.charges[i] * spec.charges[j] * spec.coulomb
        a = spec.amat[spec.types[i], spec.types[j]]
        b = spec.bmat[spec.types[i], spec.types[j]]

        u = r2 / spec.cutoff2
        u = np.minimum(u, spec.umax)

        def locate(starts, widths):
            idx = np.searchsorted(starts, u, side="right") - 1
            idx = np.clip(idx, 0, len(starts) - 1)
            t = (u - starts[idx]) / widths[idx]
            return idx, np.clip(t, 0.0, 1.0)

        def horner(coeffs, idx, t):
            c = coeffs[idx]
            out = c[..., -1].copy()
            for k in range(c.shape[-1] - 2, -1, -1):
                out = out * t + c[..., k]
            return out

        ie, te = locate(spec.e_starts, spec.e_widths)
        idd, td = locate(spec.d_starts, spec.d_widths)
        p = (
            qq * horner(spec.e_cf, ie, te)
            + a * horner(spec.c12f, idd, td)
            - b * horner(spec.c6f, idd, td)
        )
        e_coul[:] = qq * horner(spec.e_ce, ie, te)
        e_lj[:] = a * horner(spec.c12e, idd, td) - b * horner(spec.c6e, idd, td)

        x = p[:, None] * dx / spec.q_limit * spec.q_scale
        cap = 2.0**62
        codes[:] = np.rint(np.clip(x, -cap, cap)).astype(np.int64)

    # -- fixed-point deposits --------------------------------------------

    def deposit_pairs(self, raw, i, j, codes):
        with np.errstate(over="ignore"):
            np.add.at(raw, i, codes)
            np.subtract.at(raw, j, codes)

    def scatter_rows(self, raw, idx, codes):
        with np.errstate(over="ignore"):
            np.add.at(raw, idx, codes)

    def scatter_add(self, acc, keys, codes):
        with np.errstate(over="ignore"):
            np.add.at(acc, keys, codes)

    # -- mesh spreading ---------------------------------------------------

    def mesh_spread(self, acc, flat, w2, qc):
        """``acc[flat[r, c]] += rint(w2[r, c] * qc[r])`` as int64."""
        b = w2 * qc[:, None]
        np.rint(b, out=b)
        part = np.bincount(
            flat.ravel().astype(np.int64, copy=False),
            weights=b.ravel(),
            minlength=len(acc),
        )
        with np.errstate(over="ignore"):
            acc += part.astype(np.int64)

    # -- mesh stencil plan -------------------------------------------------

    def mesh_plan_block(
        self, wxn, wy, wz, dx, dy, dz, ix, iy, iz, my, mz, c2, w, flat
    ):
        """Fill one block of the stencil-plan weight cube and indices.

        Reference implementation of the fused C pass (the hot path in
        :meth:`~repro.ewald.gse.MeshStencilPlan.build` keeps its own
        NumPy formulation; this exists so the property tests can compare
        tiers through one interface).
        """
        wxy = wxn[:, :, None] * wy[:, None, :]
        np.einsum("nxy,nz->nxyz", wxy, wz, out=w)
        r2 = (dx * dx)[:, :, None, None] + (dy * dy)[:, None, :, None]
        r2 = r2 + (dz * dz)[:, None, None, :]
        np.multiply(w, r2 <= c2, out=w)
        fxy = ix[:, :, None] * my + iy[:, None, :]
        np.add(fxy[:, :, :, None] * mz, iz[:, None, None, :], out=flat)

    # -- constraints -------------------------------------------------------

    def shake(self, solver, positions, reference, tol):
        return solver._shake_numpy(positions, reference, tol)

    def rattle(self, solver, velocities, positions, tol):
        return solver._rattle_numpy(velocities, positions, tol)

    # -- leading-replica-axis constraint variants --------------------------

    def shake_batch(self, solver, positions, reference, tol, nrep, natoms):
        """SHAKE ``nrep`` replicas stacked along the atom axis.

        ``solver`` is the *solo* :class:`ConstraintSolver`; replica ``r``
        owns rows ``[r * natoms, (r + 1) * natoms)`` of ``positions`` and
        ``reference``.  The reference tier simply runs the solo sweep per
        replica slice, which is the bitwise definition of the contract.
        """
        for r in range(nrep):
            sl = slice(r * natoms, (r + 1) * natoms)
            solver._shake_numpy(positions[sl], reference[sl], tol)
        return positions

    def rattle_batch(self, solver, velocities, positions, tol, nrep, natoms):
        """RATTLE ``nrep`` replicas stacked along the atom axis."""
        for r in range(nrep):
            sl = slice(r * natoms, (r + 1) * natoms)
            solver._rattle_numpy(velocities[sl], positions[sl], tol)
        return velocities


class CompiledKernels(NumpyKernels):
    """ctypes tier: same contract, C hot loops.

    Inherits the NumPy implementations so any primitive without a C
    counterpart (or future additions) transparently falls back.
    """

    tier = "compiled"

    def __init__(self, lib, threads=1, serial=None):
        self._lib = lib
        self.threads = int(threads)
        #: Single-threaded suite over the same lib; Python worker
        #: threads dispatch through it so the C pool is never
        #: re-entered from inside a threaded region.
        self.serial = serial if serial is not None else self
        self._pool = None
        # Grow-only per-thread scratch (zero-allocation steady state).
        self._filter_counts = None
        self._partial = None
        self._con_dref = None
        self._con_dx = None
        self._con_d2 = None

    # -- threading helpers ------------------------------------------------

    def map_chunks(self, fn, nchunks):
        """Run disjoint-output chunks on a persistent Python pool.

        Used for primitives whose parallel unit is itself a Python-level
        call (per-replica FFTs, mesh-row gather views).  ctypes and
        pocketfft release the GIL, so the chunks genuinely overlap.
        """
        if self.threads <= 1 or nchunks <= 1:
            for b in range(nchunks):
                fn(b)
            return
        if self._pool is None:
            from concurrent.futures import ThreadPoolExecutor

            self._pool = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-kernels"
            )
        list(self._pool.map(fn, range(nchunks)))

    def _filter_scratch(self):
        if self._filter_counts is None:
            self._filter_counts = np.empty(2 * self.threads, dtype=np.int64)
        return self._filter_counts

    def _partials(self, nelem):
        """(threads, nelem) int64 per-lane accumulator partials."""
        if self._partial is None or self._partial.shape[1] < nelem:
            self._partial = np.empty((self.threads, nelem), dtype=np.int64)
        return self._partial

    def _constraint_scratch(self, ncon):
        """Per-lane (dref, dx_all, d2_all) scratch for batched SHAKE/RATTLE."""
        if self._con_dref is None or self._con_dref.shape[1] < 3 * ncon:
            self._con_dref = np.empty((self.threads, 3 * ncon))
            self._con_dx = np.empty((self.threads, 3 * ncon))
            self._con_d2 = np.empty((self.threads, ncon))
        return self._con_dref, self._con_dx, self._con_d2

    # -- kernels -----------------------------------------------------------

    def pair_filter(self, wrapped, ii, jj, lengths, cutoff2, oi, oj, odx, or2):
        if self.threads > 1 and len(ii) >= _MT_MIN_PAIRS:
            return int(
                self._lib.rk_pair_filter_mt(
                    len(ii), _ptr(ii), _ptr(jj), _ptr(wrapped), _ptr(lengths),
                    float(cutoff2), _ptr(oi), _ptr(oj), _ptr(odx), _ptr(or2),
                    self.threads, _ptr(self._filter_scratch()),
                )
            )
        return int(
            self._lib.rk_pair_filter(
                len(ii), _ptr(ii), _ptr(jj), _ptr(wrapped), _ptr(lengths),
                float(cutoff2), _ptr(oi), _ptr(oj), _ptr(odx), _ptr(or2),
            )
        )

    def pair_table_codes(self, spec: PairTableSpec, i, j, dx, r2, codes, e_lj, e_coul):
        args = (
            len(i), _ptr(i), _ptr(j), _ptr(dx), _ptr(r2),
            _ptr(spec.charges), _ptr(spec.types),
            _ptr(spec.amat), _ptr(spec.bmat), spec.n_types,
            spec.coulomb, spec.cutoff2, spec.umax,
            _ptr(spec.e_starts), len(spec.e_starts), _ptr(spec.e_widths),
            _ptr(spec.e_cf), _ptr(spec.e_ce),
            _ptr(spec.d_starts), len(spec.d_starts), _ptr(spec.d_widths),
            _ptr(spec.c12f), _ptr(spec.c6f), _ptr(spec.c12e), _ptr(spec.c6e),
            spec.q_limit, spec.q_scale,
            _ptr(codes), _ptr(e_lj), _ptr(e_coul),
        )
        if self.threads > 1 and len(i) >= _MT_MIN_PAIRS:
            self._lib.rk_pair_table_codes_mt(*args, self.threads)
        else:
            self._lib.rk_pair_table_codes(*args)

    def deposit_pairs(self, raw, i, j, codes):
        i = _i64(i)
        j = _i64(j)
        codes = _i64(codes)
        nelem = raw.size
        # Worth threading only when accumulate work dominates the
        # zero+reduce cost of the per-lane partials.
        if self.threads > 1 and 6 * len(i) >= 4 * nelem:
            self._lib.rk_deposit_pairs_mt(
                _ptr(raw), _ptr(i), _ptr(j), _ptr(codes), len(i), nelem,
                _ptr(self._partials(nelem)), self.threads,
            )
            return
        self._lib.rk_deposit_pairs(_ptr(raw), _ptr(i), _ptr(j), _ptr(codes), len(i))

    def scatter_rows(self, raw, idx, codes):
        idx = _i64(idx)
        codes = _i64(codes)
        nelem = raw.size
        if self.threads > 1 and 3 * len(idx) >= 4 * nelem:
            self._lib.rk_scatter_rows_mt(
                _ptr(raw), _ptr(idx), _ptr(codes), len(idx), nelem,
                _ptr(self._partials(nelem)), self.threads,
            )
            return
        self._lib.rk_scatter_rows(_ptr(raw), _ptr(idx), _ptr(codes), len(idx))

    def scatter_add(self, acc, keys, codes):
        keys = _i64(keys)
        codes = _i64(codes)
        nelem = acc.size
        if self.threads > 1 and len(keys) >= 4 * nelem:
            self._lib.rk_scatter_add_mt(
                _ptr(acc), _ptr(keys), _ptr(codes), len(keys), nelem,
                _ptr(self._partials(nelem)), self.threads,
            )
            return
        self._lib.rk_scatter_add(_ptr(acc), _ptr(keys), _ptr(codes), len(keys))

    def mesh_spread(self, acc, flat, w2, qc):
        is32 = flat.dtype == np.int32
        n, k = flat.shape
        npts = acc.size
        if self.threads > 1 and n * k >= 4 * npts:
            fn = (
                self._lib.rk_mesh_spread_i32_mt
                if is32
                else self._lib.rk_mesh_spread_i64_mt
            )
            fn(
                _ptr(acc), _ptr(flat), _ptr(w2), _ptr(qc), n, k, npts,
                _ptr(self._partials(npts)), self.threads,
            )
            return
        fn = self._lib.rk_mesh_spread_i32 if is32 else self._lib.rk_mesh_spread_i64
        fn(_ptr(acc), _ptr(flat), _ptr(w2), _ptr(qc), n, k)

    def mesh_plan_block(
        self, wxn, wy, wz, dx, dy, dz, ix, iy, iz, my, mz, c2, w, flat
    ):
        n, kx = wxn.shape
        args = (
            n, kx, wy.shape[1], wz.shape[1],
            _ptr(wxn), _ptr(wy), _ptr(wz),
            _ptr(dx), _ptr(dy), _ptr(dz),
            _ptr(ix), _ptr(iy), _ptr(iz),
            int(my), int(mz), float(c2),
            _ptr(w), _ptr(flat),
        )
        if self.threads > 1 and n >= 2 * self.threads:
            self._lib.rk_mesh_plan_mt(*args, self.threads)
        else:
            self._lib.rk_mesh_plan(*args)

    def shake(self, solver, positions, reference, tol):
        pre = solver._compiled_arrays()
        if pre is None:
            return solver._shake_numpy(positions, reference, tol)
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        self._lib.rk_shake(
            _ptr(positions), _ptr(np.ascontiguousarray(reference)),
            _ptr(ci), _ptr(cj), _ptr(d2), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dref),
        )
        return positions

    def rattle(self, solver, velocities, positions, tol):
        pre = solver._compiled_arrays()
        if pre is None:
            return solver._rattle_numpy(velocities, positions, tol)
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        self._lib.rk_rattle(
            _ptr(velocities), _ptr(np.ascontiguousarray(positions)),
            _ptr(ci), _ptr(cj), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dx_all), _ptr(d2_all),
        )
        return velocities

    def shake_batch(self, solver, positions, reference, tol, nrep, natoms):
        pre = solver._compiled_arrays()
        if pre is None:
            return NumpyKernels.shake_batch(
                self, solver, positions, reference, tol, nrep, natoms
            )
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        if self.threads > 1 and nrep > 1:
            con_dref, _, _ = self._constraint_scratch(len(ci))
            self._lib.rk_shake_batch_mt(
                int(nrep), int(natoms),
                _ptr(positions), _ptr(np.ascontiguousarray(reference)),
                _ptr(ci), _ptr(cj), _ptr(d2), _ptr(inv), _ptr(lengths),
                len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
                solver.iterations, float(tol), _ptr(con_dref),
                min(self.threads, int(nrep)),
            )
            return positions
        self._lib.rk_shake_batch(
            int(nrep), int(natoms),
            _ptr(positions), _ptr(np.ascontiguousarray(reference)),
            _ptr(ci), _ptr(cj), _ptr(d2), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dref),
        )
        return positions

    def rattle_batch(self, solver, velocities, positions, tol, nrep, natoms):
        pre = solver._compiled_arrays()
        if pre is None:
            return NumpyKernels.rattle_batch(
                self, solver, velocities, positions, tol, nrep, natoms
            )
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        if self.threads > 1 and nrep > 1:
            _, con_dx, con_d2 = self._constraint_scratch(len(ci))
            self._lib.rk_rattle_batch_mt(
                int(nrep), int(natoms),
                _ptr(velocities), _ptr(np.ascontiguousarray(positions)),
                _ptr(ci), _ptr(cj), _ptr(inv), _ptr(lengths),
                len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
                solver.iterations, float(tol), _ptr(con_dx), _ptr(con_d2),
                min(self.threads, int(nrep)),
            )
            return velocities
        self._lib.rk_rattle_batch(
            int(nrep), int(natoms),
            _ptr(velocities), _ptr(np.ascontiguousarray(positions)),
            _ptr(ci), _ptr(cj), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dx_all), _ptr(d2_all),
        )
        return velocities


_NUMPY_SUITE = NumpyKernels()
#: Compiled suites keyed by thread count.  The threads=1 suite is the
#: shared ``serial`` delegate of every threaded one.
_COMPILED_SUITES: dict[int, CompiledKernels] = {}
_warned = False
_warned_threads = False


def _reset_pools() -> None:
    """Drop Python thread pools after fork (threads don't survive it).

    The C-side pthread pool re-arms itself via ``pthread_atfork``; this
    mirrors that for the :meth:`CompiledKernels.map_chunks` executors so
    the ProcessBackend's forked workers rebuild lazily instead of
    deadlocking on dead worker threads.
    """
    for suite in _COMPILED_SUITES.values():
        suite._pool = None


os.register_at_fork(after_in_child=_reset_pools)


def get_suite(tier: str | None = None, threads: int | None = None):
    """Resolve tier/threads knobs to a kernel-suite instance.

    ``None`` knobs consult ``REPRO_KERNEL_TIER`` /
    ``REPRO_KERNEL_THREADS`` (defaults ``"numpy"``, 1).  An unavailable
    compiled tier falls back to NumPy with a one-time warning rather
    than failing; ``threads > 1`` on a build without pthread support
    falls back to single-threaded the same way.  Every returned suite
    produces identical bytes for identical inputs — the knobs only move
    work between implementations.
    """
    global _warned, _warned_threads
    cfg = resolve_config(tier, threads)
    if cfg.tier == "numpy":
        # NumPy manages its own internal parallelism; threads is a
        # compiled-tier dispatch knob and is deliberately ignored here.
        return _NUMPY_SUITE
    try:
        lib = load()
    except KernelBuildError as exc:
        if not _warned:
            warnings.warn(
                f"compiled kernel tier unavailable ({exc}); "
                "falling back to the numpy tier",
                RuntimeWarning,
                stacklevel=2,
            )
            _warned = True
        return _NUMPY_SUITE
    nthreads = cfg.threads
    if nthreads > 1 and not lib.rk_threads_available():
        if not _warned_threads:
            warnings.warn(
                "compiled kernel tier built without pthread support; "
                f"kernel_threads={nthreads} runs single-threaded",
                RuntimeWarning,
                stacklevel=2,
            )
            _warned_threads = True
        nthreads = 1
    suite = _COMPILED_SUITES.get(nthreads)
    if suite is None:
        base = _COMPILED_SUITES.get(1)
        if base is None:
            base = _COMPILED_SUITES[1] = CompiledKernels(lib)
        if nthreads == 1:
            suite = base
        else:
            suite = CompiledKernels(lib, threads=nthreads, serial=base)
            _COMPILED_SUITES[nthreads] = suite
    return suite
