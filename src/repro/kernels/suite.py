"""Kernel tiers: NumPy reference implementations and ctypes wrappers.

A *kernel suite* is the small set of hot-loop primitives the machine
simulation dispatches through: neighbor-pair cutoff filtering, the
fused tabulated pair kernel (table evaluation straight to fixed-point
force codes), fixed-point scatter deposits, mesh charge spreading, and
the SHAKE/RATTLE constraint sweeps.  Two tiers implement the same
contract:

* :class:`NumpyKernels` — pure NumPy, always available, and the
  reference the property tests compare against.
* :class:`CompiledKernels` — thin ctypes shims over ``_kernels.c``,
  built lazily by :mod:`repro.kernels.build`.

The contract is *bitwise identity*: for any input, both tiers return
the same bytes.  The compiled tier therefore preserves every
reproducibility gate in the repo (backend equivalence, fault-recovery
replay, checkpoint round-trips) while removing the Python interpreter
from the per-pair loops.

:func:`get_suite` resolves the tier knob: explicit argument first, then
the ``REPRO_KERNEL_TIER`` environment variable, then ``"numpy"``.
Requesting ``"compiled"`` on a host without a C compiler degrades to
the NumPy tier with a one-time warning — the package never hard-fails
for lack of a toolchain.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass

import numpy as np

from repro.kernels.build import KernelBuildError, load

__all__ = [
    "KERNEL_TIERS",
    "PairTableSpec",
    "NumpyKernels",
    "CompiledKernels",
    "make_pair_spec",
    "get_suite",
]

KERNEL_TIERS = ("numpy", "compiled")


def _ptr(a: np.ndarray) -> int:
    return a.ctypes.data


def _i64(a) -> np.ndarray:
    """C-contiguous int64 view (no copy when already conforming)."""
    return np.ascontiguousarray(a, dtype=np.int64)


@dataclass(frozen=True)
class PairTableSpec:
    """Frozen per-system inputs of the fused tabulated pair kernel.

    Everything that does not change between force evaluations: charges,
    LJ type ids, the precomputed per-type-pair A/B coefficient matrices,
    the tier-table segmentations and quantized cubic coefficients for
    the electrostatic and dispersion layouts, and the force-code
    quantization constants.  Built once by :func:`make_pair_spec` and
    reused every step.
    """

    charges: np.ndarray
    types: np.ndarray
    amat: np.ndarray
    bmat: np.ndarray
    n_types: int
    coulomb: float
    cutoff2: float
    umax: float
    e_starts: np.ndarray
    e_widths: np.ndarray
    e_cf: np.ndarray
    e_ce: np.ndarray
    d_starts: np.ndarray
    d_widths: np.ndarray
    c12f: np.ndarray
    c6f: np.ndarray
    c12e: np.ndarray
    c6e: np.ndarray
    q_limit: float
    q_scale: float


def make_pair_spec(tables, lj_table, charges, type_ids, force_codec) -> PairTableSpec:
    """Precompute the static arrays for :meth:`~NumpyKernels.pair_table_codes`.

    The A/B matrices are formed with exactly the elementwise operations
    of :meth:`LJTable.pair_coefficients` (``s6 = sigma**6`` then
    ``4 eps s6 s6`` / ``4 eps s6``) applied to the full type-pair
    matrices; a gather from these matrices is bitwise identical to the
    per-pair computation because every op is elementwise.
    """
    from repro.util import COULOMB

    def seg(table):
        cq = np.ascontiguousarray(table.coeffs_quant, dtype=np.float64)
        if cq.ndim != 2 or cq.shape[1] != 4:
            raise ValueError("fused pair kernel requires cubic tables")
        return (
            np.ascontiguousarray(table.seg_starts, dtype=np.float64),
            np.ascontiguousarray(table.seg_widths, dtype=np.float64),
            cq,
        )

    e_starts, e_widths, e_cf = seg(tables.tables["elec_f"])
    ee_starts, _, e_ce = seg(tables.tables["elec_e"])
    d_starts, d_widths, c12f = seg(tables.tables["lj12_f"])
    _, _, c6f = seg(tables.tables["lj6_f"])
    _, _, c12e = seg(tables.tables["lj12_e"])
    _, _, c6e = seg(tables.tables["lj6_e"])
    if tables.tables["elec_f"].segmentation_key() != tables.tables["elec_e"].segmentation_key():
        raise ValueError("electrostatic tables must share a segmentation")
    for name in ("lj6_f", "lj12_e", "lj6_e"):
        if tables.tables[name].segmentation_key() != tables.tables["lj12_f"].segmentation_key():
            raise ValueError("dispersion tables must share a segmentation")

    s6 = lj_table.sigma_ij**6
    eps_ij = lj_table.eps_ij
    amat = np.ascontiguousarray(4.0 * eps_ij * s6 * s6)
    bmat = np.ascontiguousarray(4.0 * eps_ij * s6)

    return PairTableSpec(
        charges=np.ascontiguousarray(charges, dtype=np.float64),
        types=np.ascontiguousarray(type_ids, dtype=np.int64),
        amat=amat,
        bmat=bmat,
        n_types=int(amat.shape[0]),
        coulomb=float(COULOMB),
        cutoff2=float(tables.cutoff) ** 2,
        umax=float(np.nextafter(1.0, 0.0)),
        e_starts=e_starts,
        e_widths=e_widths,
        e_cf=e_cf,
        e_ce=e_ce,
        d_starts=d_starts,
        d_widths=d_widths,
        c12f=c12f,
        c6f=c6f,
        c12e=c12e,
        c6e=c6e,
        q_limit=float(force_codec.limit),
        q_scale=float(force_codec.fmt.scale),
    )


class NumpyKernels:
    """Reference tier: NumPy expressions matching the simulator's own.

    These mirror (and in the scatter/spread cases simply call) the
    existing vectorized code paths, so "compiled vs numpy" identity is
    the same statement as "compiled vs simulator" identity.
    """

    tier = "numpy"

    # -- neighbor filter -------------------------------------------------

    def pair_filter(self, wrapped, ii, jj, lengths, cutoff2, oi, oj, odx, or2):
        """Cutoff-filter candidate pairs into the provided scratch.

        Returns the surviving count ``m``; results land in
        ``oi[:m], oj[:m], odx[:m], or2[:m]``.
        """
        d = wrapped[ii] - wrapped[jj]
        dx = d - lengths * np.round(d / lengths)
        r2 = np.sum(dx * dx, axis=1)
        keep = r2 < cutoff2
        m = int(np.count_nonzero(keep))
        oi[:m] = ii[keep]
        oj[:m] = jj[keep]
        odx[:m] = dx[keep]
        or2[:m] = r2[keep]
        return m

    # -- fused tabulated pair kernel -------------------------------------

    def pair_table_codes(self, spec: PairTableSpec, i, j, dx, r2, codes, e_lj, e_coul):
        """Tabulated pair forces quantized to int64 codes.

        Writes force codes and per-pair energies into the provided
        output arrays (all length ``len(i)``).
        """
        qq = spec.charges[i] * spec.charges[j] * spec.coulomb
        a = spec.amat[spec.types[i], spec.types[j]]
        b = spec.bmat[spec.types[i], spec.types[j]]

        u = r2 / spec.cutoff2
        u = np.minimum(u, spec.umax)

        def locate(starts, widths):
            idx = np.searchsorted(starts, u, side="right") - 1
            idx = np.clip(idx, 0, len(starts) - 1)
            t = (u - starts[idx]) / widths[idx]
            return idx, np.clip(t, 0.0, 1.0)

        def horner(coeffs, idx, t):
            c = coeffs[idx]
            out = c[..., -1].copy()
            for k in range(c.shape[-1] - 2, -1, -1):
                out = out * t + c[..., k]
            return out

        ie, te = locate(spec.e_starts, spec.e_widths)
        idd, td = locate(spec.d_starts, spec.d_widths)
        p = (
            qq * horner(spec.e_cf, ie, te)
            + a * horner(spec.c12f, idd, td)
            - b * horner(spec.c6f, idd, td)
        )
        e_coul[:] = qq * horner(spec.e_ce, ie, te)
        e_lj[:] = a * horner(spec.c12e, idd, td) - b * horner(spec.c6e, idd, td)

        x = p[:, None] * dx / spec.q_limit * spec.q_scale
        cap = 2.0**62
        codes[:] = np.rint(np.clip(x, -cap, cap)).astype(np.int64)

    # -- fixed-point deposits --------------------------------------------

    def deposit_pairs(self, raw, i, j, codes):
        with np.errstate(over="ignore"):
            np.add.at(raw, i, codes)
            np.subtract.at(raw, j, codes)

    def scatter_rows(self, raw, idx, codes):
        with np.errstate(over="ignore"):
            np.add.at(raw, idx, codes)

    def scatter_add(self, acc, keys, codes):
        with np.errstate(over="ignore"):
            np.add.at(acc, keys, codes)

    # -- mesh spreading ---------------------------------------------------

    def mesh_spread(self, acc, flat, w2, qc):
        """``acc[flat[r, c]] += rint(w2[r, c] * qc[r])`` as int64."""
        b = w2 * qc[:, None]
        np.rint(b, out=b)
        part = np.bincount(
            flat.ravel().astype(np.int64, copy=False),
            weights=b.ravel(),
            minlength=len(acc),
        )
        with np.errstate(over="ignore"):
            acc += part.astype(np.int64)

    # -- mesh stencil plan -------------------------------------------------

    def mesh_plan_block(
        self, wxn, wy, wz, dx, dy, dz, ix, iy, iz, my, mz, c2, w, flat
    ):
        """Fill one block of the stencil-plan weight cube and indices.

        Reference implementation of the fused C pass (the hot path in
        :meth:`~repro.ewald.gse.MeshStencilPlan.build` keeps its own
        NumPy formulation; this exists so the property tests can compare
        tiers through one interface).
        """
        wxy = wxn[:, :, None] * wy[:, None, :]
        np.einsum("nxy,nz->nxyz", wxy, wz, out=w)
        r2 = (dx * dx)[:, :, None, None] + (dy * dy)[:, None, :, None]
        r2 = r2 + (dz * dz)[:, None, None, :]
        np.multiply(w, r2 <= c2, out=w)
        fxy = ix[:, :, None] * my + iy[:, None, :]
        np.add(fxy[:, :, :, None] * mz, iz[:, None, None, :], out=flat)

    # -- constraints -------------------------------------------------------

    def shake(self, solver, positions, reference, tol):
        return solver._shake_numpy(positions, reference, tol)

    def rattle(self, solver, velocities, positions, tol):
        return solver._rattle_numpy(velocities, positions, tol)

    # -- leading-replica-axis constraint variants --------------------------

    def shake_batch(self, solver, positions, reference, tol, nrep, natoms):
        """SHAKE ``nrep`` replicas stacked along the atom axis.

        ``solver`` is the *solo* :class:`ConstraintSolver`; replica ``r``
        owns rows ``[r * natoms, (r + 1) * natoms)`` of ``positions`` and
        ``reference``.  The reference tier simply runs the solo sweep per
        replica slice, which is the bitwise definition of the contract.
        """
        for r in range(nrep):
            sl = slice(r * natoms, (r + 1) * natoms)
            solver._shake_numpy(positions[sl], reference[sl], tol)
        return positions

    def rattle_batch(self, solver, velocities, positions, tol, nrep, natoms):
        """RATTLE ``nrep`` replicas stacked along the atom axis."""
        for r in range(nrep):
            sl = slice(r * natoms, (r + 1) * natoms)
            solver._rattle_numpy(velocities[sl], positions[sl], tol)
        return velocities


class CompiledKernels(NumpyKernels):
    """ctypes tier: same contract, C hot loops.

    Inherits the NumPy implementations so any primitive without a C
    counterpart (or future additions) transparently falls back.
    """

    tier = "compiled"

    def __init__(self, lib):
        self._lib = lib

    def pair_filter(self, wrapped, ii, jj, lengths, cutoff2, oi, oj, odx, or2):
        return int(
            self._lib.rk_pair_filter(
                len(ii), _ptr(ii), _ptr(jj), _ptr(wrapped), _ptr(lengths),
                float(cutoff2), _ptr(oi), _ptr(oj), _ptr(odx), _ptr(or2),
            )
        )

    def pair_table_codes(self, spec: PairTableSpec, i, j, dx, r2, codes, e_lj, e_coul):
        self._lib.rk_pair_table_codes(
            len(i), _ptr(i), _ptr(j), _ptr(dx), _ptr(r2),
            _ptr(spec.charges), _ptr(spec.types),
            _ptr(spec.amat), _ptr(spec.bmat), spec.n_types,
            spec.coulomb, spec.cutoff2, spec.umax,
            _ptr(spec.e_starts), len(spec.e_starts), _ptr(spec.e_widths),
            _ptr(spec.e_cf), _ptr(spec.e_ce),
            _ptr(spec.d_starts), len(spec.d_starts), _ptr(spec.d_widths),
            _ptr(spec.c12f), _ptr(spec.c6f), _ptr(spec.c12e), _ptr(spec.c6e),
            spec.q_limit, spec.q_scale,
            _ptr(codes), _ptr(e_lj), _ptr(e_coul),
        )

    def deposit_pairs(self, raw, i, j, codes):
        i = _i64(i)
        j = _i64(j)
        codes = _i64(codes)
        self._lib.rk_deposit_pairs(_ptr(raw), _ptr(i), _ptr(j), _ptr(codes), len(i))

    def scatter_rows(self, raw, idx, codes):
        idx = _i64(idx)
        codes = _i64(codes)
        self._lib.rk_scatter_rows(_ptr(raw), _ptr(idx), _ptr(codes), len(idx))

    def scatter_add(self, acc, keys, codes):
        keys = _i64(keys)
        codes = _i64(codes)
        self._lib.rk_scatter_add(_ptr(acc), _ptr(keys), _ptr(codes), len(keys))

    def mesh_spread(self, acc, flat, w2, qc):
        fn = (
            self._lib.rk_mesh_spread_i32
            if flat.dtype == np.int32
            else self._lib.rk_mesh_spread_i64
        )
        fn(_ptr(acc), _ptr(flat), _ptr(w2), _ptr(qc), flat.shape[0], flat.shape[1])

    def mesh_plan_block(
        self, wxn, wy, wz, dx, dy, dz, ix, iy, iz, my, mz, c2, w, flat
    ):
        n, kx = wxn.shape
        self._lib.rk_mesh_plan(
            n, kx, wy.shape[1], wz.shape[1],
            _ptr(wxn), _ptr(wy), _ptr(wz),
            _ptr(dx), _ptr(dy), _ptr(dz),
            _ptr(ix), _ptr(iy), _ptr(iz),
            int(my), int(mz), float(c2),
            _ptr(w), _ptr(flat),
        )

    def shake(self, solver, positions, reference, tol):
        pre = solver._compiled_arrays()
        if pre is None:
            return solver._shake_numpy(positions, reference, tol)
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        self._lib.rk_shake(
            _ptr(positions), _ptr(np.ascontiguousarray(reference)),
            _ptr(ci), _ptr(cj), _ptr(d2), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dref),
        )
        return positions

    def rattle(self, solver, velocities, positions, tol):
        pre = solver._compiled_arrays()
        if pre is None:
            return solver._rattle_numpy(velocities, positions, tol)
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        self._lib.rk_rattle(
            _ptr(velocities), _ptr(np.ascontiguousarray(positions)),
            _ptr(ci), _ptr(cj), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dx_all), _ptr(d2_all),
        )
        return velocities

    def shake_batch(self, solver, positions, reference, tol, nrep, natoms):
        pre = solver._compiled_arrays()
        if pre is None:
            return NumpyKernels.shake_batch(
                self, solver, positions, reference, tol, nrep, natoms
            )
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        self._lib.rk_shake_batch(
            int(nrep), int(natoms),
            _ptr(positions), _ptr(np.ascontiguousarray(reference)),
            _ptr(ci), _ptr(cj), _ptr(d2), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dref),
        )
        return positions

    def rattle_batch(self, solver, velocities, positions, tol, nrep, natoms):
        pre = solver._compiled_arrays()
        if pre is None:
            return NumpyKernels.rattle_batch(
                self, solver, velocities, positions, tol, nrep, natoms
            )
        ci, cj, d2, inv, lengths, order, starts, dref, dx_all, d2_all = pre
        self._lib.rk_rattle_batch(
            int(nrep), int(natoms),
            _ptr(velocities), _ptr(np.ascontiguousarray(positions)),
            _ptr(ci), _ptr(cj), _ptr(inv), _ptr(lengths),
            len(ci), _ptr(order), _ptr(starts), len(starts) - 1,
            solver.iterations, float(tol), _ptr(dx_all), _ptr(d2_all),
        )
        return velocities


_NUMPY_SUITE = NumpyKernels()
_COMPILED_SUITE: CompiledKernels | None = None
_warned = False


def get_suite(tier: str | None = None):
    """Resolve a kernel tier name to a suite instance.

    ``tier=None`` consults ``REPRO_KERNEL_TIER`` (default ``"numpy"``).
    An unavailable compiled tier falls back to NumPy with a one-time
    warning rather than failing — identical numerics, just slower.
    """
    global _COMPILED_SUITE, _warned
    if tier is None:
        tier = os.environ.get("REPRO_KERNEL_TIER", "numpy")
    if tier not in KERNEL_TIERS:
        raise ValueError(f"unknown kernel_tier {tier!r}; expected one of {KERNEL_TIERS}")
    if tier == "numpy":
        return _NUMPY_SUITE
    if _COMPILED_SUITE is None:
        try:
            _COMPILED_SUITE = CompiledKernels(load())
        except KernelBuildError as exc:
            if not _warned:
                warnings.warn(
                    f"compiled kernel tier unavailable ({exc}); "
                    "falling back to the numpy tier",
                    RuntimeWarning,
                    stacklevel=2,
                )
                _warned = True
            return _NUMPY_SUITE
    return _COMPILED_SUITE
