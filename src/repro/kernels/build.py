"""Lazy, cached build of the compiled kernel extension.

The C source in ``_kernels.c`` is compiled on first use with whatever
C compiler the host provides (``cc``/``gcc``/``clang``), into a shared
object cached next to the package under ``_build/`` keyed by a hash of
the source and the flags — recompiles happen only when either changes.
There is deliberately no setuptools machinery: the kernels are optional,
and a host without a compiler must keep working on the NumPy tier.

Two flags are load-bearing for bitwise reproducibility and are never
negotiable:

* ``-ffp-contract=off`` — GCC contracts ``a*b + c`` into fused
  multiply-adds by default at ``-O2``+; an FMA rounds once where NumPy
  rounds twice and silently changes force bits.
* no ``-ffast-math`` — reassociation and reciprocal math would break
  the operation-order contract the kernels are written against.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
import warnings
from pathlib import Path

__all__ = ["KernelBuildError", "build", "load"]

_SRC = Path(__file__).resolve().parent / "_kernels.c"

#: Optimized but strictly IEEE-ordered; see module docstring.
CFLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off", "-fno-fast-math")

#: Build variants tried in order per compiler: threaded first, then a
#: serial fallback for pthread-less hosts.  Both compile the same
#: source; ``RK_THREADS=0`` turns ``rk_run`` into a direct call so every
#: ``*_mt`` symbol still exists (``_declare`` touches them all).
_VARIANTS = (
    ("-pthread", "-DRK_THREADS=1"),
    ("-DRK_THREADS=0",),
)

_COMPILERS = ("cc", "gcc", "clang")

_lib = None
_lib_error: Exception | None = None
_compiler_idents: dict[str, str | None] = {}
_warned_no_pthread = False


class KernelBuildError(RuntimeError):
    """The compiled tier is unavailable on this host."""


def _compiler_ident(cc: str) -> str | None:
    """First line of ``cc --version``, or None when the compiler is
    missing.  Part of the cache key: a host switching cc -> clang (or
    upgrading gcc) must not reuse a stale ``.so``."""
    if cc not in _compiler_idents:
        try:
            proc = subprocess.run(
                [cc, "--version"], capture_output=True, text=True, timeout=30
            )
            ident = proc.stdout.splitlines()[0] if proc.returncode == 0 else None
        except (OSError, subprocess.TimeoutExpired, IndexError):
            ident = None
        _compiler_idents[cc] = ident
    return _compiler_idents[cc]


def _source_key(variant: tuple[str, ...], ident: str) -> str:
    h = hashlib.sha256()
    h.update(_SRC.read_bytes())
    h.update(" ".join(CFLAGS + variant).encode())
    h.update(ident.encode())
    return h.hexdigest()[:16]


def _build_dir() -> Path:
    """Writable cache directory for the shared object.

    Prefers ``_build/`` inside the package (fast, survives across
    runs); falls back to a per-user temp directory when the package
    tree is read-only (e.g. an installed site-packages).
    """
    cand = _SRC.parent / "_build"
    try:
        cand.mkdir(exist_ok=True)
        probe = cand / ".write-probe"
        probe.write_bytes(b"")
        probe.unlink()
        return cand
    except OSError:
        fallback = Path(tempfile.gettempdir()) / f"repro-kernels-{os.getuid()}"
        fallback.mkdir(exist_ok=True)
        return fallback


def build() -> Path:
    """Compile (if needed) and return the path to the shared object.

    Per compiler the threaded variant (``-pthread -DRK_THREADS=1``) is
    tried first; if the probe fails the serial ``-DRK_THREADS=0`` build
    is used with a one-time warning (``kernel_threads > 1`` then runs
    single-threaded, mirroring the NumPy-tier fallback path).  Raises
    :class:`KernelBuildError` when no working C compiler is found.
    """
    global _warned_no_pthread
    if not _SRC.exists():
        raise KernelBuildError(f"kernel source missing: {_SRC}")
    bdir = _build_dir()
    errors = []
    for cc in _COMPILERS:
        ident = _compiler_ident(cc)
        if ident is None:
            errors.append(f"{cc}: not found")
            continue
        for variant in _VARIANTS:
            out = bdir / f"_kernels-{_source_key(variant, ident)}.so"
            if out.exists():
                return out
            tmp = out.with_name(out.name + f".tmp{os.getpid()}")
            cmd = [cc, *CFLAGS, *variant, str(_SRC), "-o", str(tmp), "-lm"]
            try:
                proc = subprocess.run(
                    cmd, capture_output=True, text=True, timeout=120
                )
            except (OSError, subprocess.TimeoutExpired) as exc:
                errors.append(f"{cc}: {exc}")
                continue
            if proc.returncode == 0 and tmp.exists():
                os.replace(tmp, out)  # atomic: concurrent builders race
                return out
            errors.append(
                f"{cc} {' '.join(variant)}: rc={proc.returncode} "
                f"{proc.stderr.strip()[:400]}"
            )
            tmp.unlink(missing_ok=True)
            if variant is _VARIANTS[0] and not _warned_no_pthread:
                _warned_no_pthread = True
                warnings.warn(
                    "pthread probe failed for the compiled kernel tier; "
                    "building without thread support "
                    "(kernel_threads > 1 will run single-threaded)",
                    RuntimeWarning,
                    stacklevel=2,
                )
    raise KernelBuildError(
        "no working C compiler for the compiled kernel tier: "
        + "; ".join(errors)
    )


def _declare(lib: ctypes.CDLL) -> None:
    """Attach argument/return types so ctypes marshals correctly."""
    i64 = ctypes.c_int64
    f64 = ctypes.c_double
    p = ctypes.c_void_p  # raw array pointers via ndarray.ctypes.data

    lib.rk_pair_filter.restype = i64
    lib.rk_pair_filter.argtypes = [i64, p, p, p, p, f64, p, p, p, p]
    lib.rk_pair_table_codes.restype = None
    lib.rk_pair_table_codes.argtypes = (
        [i64, p, p, p, p, p, p, p, p, i64, f64, f64, f64]
        + [p, i64, p, p, p]
        + [p, i64, p, p, p, p, p]
        + [f64, f64, p, p, p]
    )
    lib.rk_deposit_pairs.restype = None
    lib.rk_deposit_pairs.argtypes = [p, p, p, p, i64]
    lib.rk_scatter_rows.restype = None
    lib.rk_scatter_rows.argtypes = [p, p, p, i64]
    lib.rk_scatter_add.restype = None
    lib.rk_scatter_add.argtypes = [p, p, p, i64]
    lib.rk_mesh_spread_i32.restype = None
    lib.rk_mesh_spread_i32.argtypes = [p, p, p, p, i64, i64]
    lib.rk_mesh_spread_i64.restype = None
    lib.rk_mesh_spread_i64.argtypes = [p, p, p, p, i64, i64]
    lib.rk_mesh_plan.restype = None
    lib.rk_mesh_plan.argtypes = (
        [i64, i64, i64, i64] + [p] * 9 + [i64, i64, f64, p, p]
    )
    lib.rk_shake.restype = None
    lib.rk_shake.argtypes = [p, p, p, p, p, p, p, i64, p, p, i64, i64, f64, p]
    lib.rk_rattle.restype = None
    lib.rk_rattle.argtypes = [p, p, p, p, p, p, i64, p, p, i64, i64, f64, p, p]
    lib.rk_shake_batch.restype = None
    lib.rk_shake_batch.argtypes = (
        [i64, i64, p, p, p, p, p, p, p, i64, p, p, i64, i64, f64, p]
    )
    lib.rk_rattle_batch.restype = None
    lib.rk_rattle_batch.argtypes = (
        [i64, i64, p, p, p, p, p, p, i64, p, p, i64, i64, f64, p, p]
    )

    # Threaded entry points (present in every build; the RK_THREADS=0
    # variant routes them through a direct serial call).
    lib.rk_threads_available.restype = i64
    lib.rk_threads_available.argtypes = []
    lib.rk_pair_filter_mt.restype = i64
    lib.rk_pair_filter_mt.argtypes = (
        [i64, p, p, p, p, f64, p, p, p, p, i64, p]
    )
    lib.rk_pair_table_codes_mt.restype = None
    lib.rk_pair_table_codes_mt.argtypes = (
        list(lib.rk_pair_table_codes.argtypes) + [i64]
    )
    lib.rk_deposit_pairs_mt.restype = None
    lib.rk_deposit_pairs_mt.argtypes = [p, p, p, p, i64, i64, p, i64]
    lib.rk_scatter_rows_mt.restype = None
    lib.rk_scatter_rows_mt.argtypes = [p, p, p, i64, i64, p, i64]
    lib.rk_scatter_add_mt.restype = None
    lib.rk_scatter_add_mt.argtypes = [p, p, p, i64, i64, p, i64]
    lib.rk_mesh_spread_i32_mt.restype = None
    lib.rk_mesh_spread_i32_mt.argtypes = [p, p, p, p, i64, i64, i64, p, i64]
    lib.rk_mesh_spread_i64_mt.restype = None
    lib.rk_mesh_spread_i64_mt.argtypes = [p, p, p, p, i64, i64, i64, p, i64]
    lib.rk_mesh_plan_mt.restype = None
    lib.rk_mesh_plan_mt.argtypes = (
        [i64, i64, i64, i64] + [p] * 9 + [i64, i64, f64, p, p, i64]
    )
    lib.rk_shake_batch_mt.restype = None
    lib.rk_shake_batch_mt.argtypes = (
        [i64, i64, p, p, p, p, p, p, p, i64, p, p, i64, i64, f64, p, i64]
    )
    lib.rk_rattle_batch_mt.restype = None
    lib.rk_rattle_batch_mt.argtypes = (
        [i64, i64, p, p, p, p, p, p, i64, p, p, i64, i64, f64, p, p, i64]
    )


def load() -> ctypes.CDLL:
    """Build if needed and load the extension (cached per process)."""
    global _lib, _lib_error
    if _lib is not None:
        return _lib
    if _lib_error is not None:
        raise KernelBuildError(str(_lib_error))
    try:
        lib = ctypes.CDLL(str(build()))
        _declare(lib)
    except (KernelBuildError, OSError) as exc:
        _lib_error = exc
        raise KernelBuildError(str(exc)) from exc
    _lib = lib
    return lib


def available() -> bool:
    """True when the compiled tier can be (or already was) loaded."""
    try:
        load()
    except KernelBuildError:
        return False
    return True
