/* Compiled hot-loop kernels for the functional machine simulation.
 *
 * Every routine here is a bit-for-bit replica of a NumPy expression in
 * the simulator: same operations, same association order, same rounding
 * (rint == np.rint, round-half-to-even under the default FP
 * environment), and integer accumulation done in uint64 so two's-
 * complement wrap matches NumPy's int64 overflow behaviour instead of
 * tripping C's signed-overflow UB.  Nothing in this file may introduce
 * a fused multiply-add or a reassociated sum: the build compiles with
 * -ffp-contract=off and no -ffast-math, and the property tests compare
 * every output against the NumPy path bitwise.
 *
 * Division is kept literal (x / L, not x * (1.0 / L)): a reciprocal
 * multiply is not the same IEEE operation and does change bits.
 */

#include <math.h>
#include <stdint.h>

/* Segment-lookup acceleration grid: maps u in [0, 1) to a starting
 * segment index; a short forward scan lands on the exact segment,
 * reproducing np.searchsorted(starts, u, side="right") - 1 for the
 * monotone tier layouts (starts[0] == 0.0, u >= 0). */
#define RK_GRID 1024

static void rk_build_grid(const double *starts, int64_t nseg, int32_t *grid)
{
    int64_t idx = 0;
    for (int64_t g = 0; g < RK_GRID; g++) {
        double u0 = (double)g / (double)RK_GRID;
        while (idx + 1 < nseg && starts[idx + 1] <= u0)
            idx++;
        grid[g] = (int32_t)idx;
    }
}

static inline int64_t rk_segment(const double *starts, int64_t nseg,
                                 const int32_t *grid, double u)
{
    int64_t g = (int64_t)(u * (double)RK_GRID);
    if (g >= RK_GRID)
        g = RK_GRID - 1;
    if (g < 0)
        g = 0;
    int64_t idx = grid[g];
    while (idx + 1 < nseg && starts[idx + 1] <= u)
        idx++;
    return idx;
}

/* Cubic Horner over coefficients stored [c0, c1, c2, c3], matching
 * TieredTable.evaluate_at's loop from the highest coefficient down. */
static inline double rk_horner4(const double *c, double t)
{
    double out = c[3];
    out = out * t + c[2];
    out = out * t + c[1];
    out = out * t + c[0];
    return out;
}

/* ScaledFixed.quantize_round_only for one value: (q / limit) * scale,
 * clipped to +-2^62, round-nearest-even, cast to int64. */
static inline int64_t rk_quantize(double q, double limit, double scale)
{
    double x = q / limit * scale;
    const double cap = 4611686018427387904.0; /* 2.0**62 */
    if (x < -cap)
        x = -cap;
    if (x > cap)
        x = cap;
    return (int64_t)rint(x);
}

/* -- neighbor-list cutoff filter ------------------------------------- */

/* NeighborList.pairs steady state: minimum-image displacement of every
 * cached candidate, squared distance, compaction to r2 < cutoff2.
 * Returns the surviving pair count. */
int64_t rk_pair_filter(int64_t n_cand, const int64_t *ii, const int64_t *jj,
                       const double *w, const double *L, double cutoff2,
                       int64_t *oi, int64_t *oj, double *odx, double *or2)
{
    int64_t m = 0;
    for (int64_t k = 0; k < n_cand; k++) {
        const double *a = w + 3 * ii[k];
        const double *b = w + 3 * jj[k];
        double d0 = a[0] - b[0];
        double d1 = a[1] - b[1];
        double d2 = a[2] - b[2];
        d0 = d0 - L[0] * rint(d0 / L[0]);
        d1 = d1 - L[1] * rint(d1 / L[1]);
        d2 = d2 - L[2] * rint(d2 / L[2]);
        double r2 = (d0 * d0 + d1 * d1) + d2 * d2;
        if (r2 < cutoff2) {
            oi[m] = ii[k];
            oj[m] = jj[k];
            odx[3 * m] = d0;
            odx[3 * m + 1] = d1;
            odx[3 * m + 2] = d2;
            or2[m] = r2;
            m++;
        }
    }
    return m;
}

/* -- fused tabulated pair kernel ------------------------------------- */

/* nonbonded_real_space_tabulated + quantize_round_only in one pass:
 * per pair, normalize r2, locate both tier layouts, Horner-evaluate the
 * six tables, combine with the charge product and LJ A/B coefficients,
 * and quantize the force vector straight to int64 codes.  Per-pair
 * energies are written out for the caller's np.sum (so the reported
 * float energies keep NumPy's pairwise-summation bits). */
void rk_pair_table_codes(
    int64_t n, const int64_t *pi, const int64_t *pj,
    const double *dx, const double *r2,
    const double *charges, const int64_t *types,
    const double *amat, const double *bmat, int64_t n_types,
    double coulomb, double cutoff2, double umax,
    const double *e_starts, int64_t e_nseg,
    const double *e_widths,
    const double *e_cf, const double *e_ce,
    const double *d_starts, int64_t d_nseg,
    const double *d_widths,
    const double *c12f, const double *c6f,
    const double *c12e, const double *c6e,
    double q_limit, double q_scale,
    int64_t *codes, double *e_lj, double *e_coul)
{
    int32_t e_grid[RK_GRID];
    int32_t d_grid[RK_GRID];
    rk_build_grid(e_starts, e_nseg, e_grid);
    rk_build_grid(d_starts, d_nseg, d_grid);

    for (int64_t k = 0; k < n; k++) {
        int64_t i = pi[k], j = pj[k];
        double qq = charges[i] * charges[j] * coulomb;
        int64_t tij = types[i] * n_types + types[j];
        double a = amat[tij];
        double b = bmat[tij];

        double u = r2[k] / cutoff2;
        if (u > umax)
            u = umax;

        int64_t ie = rk_segment(e_starts, e_nseg, e_grid, u);
        double te = (u - e_starts[ie]) / e_widths[ie];
        if (te < 0.0)
            te = 0.0;
        if (te > 1.0)
            te = 1.0;
        int64_t id = rk_segment(d_starts, d_nseg, d_grid, u);
        double td = (u - d_starts[id]) / d_widths[id];
        if (td < 0.0)
            td = 0.0;
        if (td > 1.0)
            td = 1.0;

        double ef = rk_horner4(e_cf + 4 * ie, te);
        double ee = rk_horner4(e_ce + 4 * ie, te);
        double f12 = rk_horner4(c12f + 4 * id, td);
        double f6 = rk_horner4(c6f + 4 * id, td);
        double e12 = rk_horner4(c12e + 4 * id, td);
        double e6 = rk_horner4(c6e + 4 * id, td);

        double p = qq * ef + a * f12 - b * f6;
        e_coul[k] = qq * ee;
        e_lj[k] = a * e12 - b * e6;

        codes[3 * k] = rk_quantize(p * dx[3 * k], q_limit, q_scale);
        codes[3 * k + 1] = rk_quantize(p * dx[3 * k + 1], q_limit, q_scale);
        codes[3 * k + 2] = rk_quantize(p * dx[3 * k + 2], q_limit, q_scale);
    }
}

/* -- fixed-point deposits --------------------------------------------- */

/* acc[i] += codes; acc[j] -= codes over (n, 3) rows, with NumPy int64
 * wrap semantics (uint64 arithmetic). */
void rk_deposit_pairs(int64_t *acc, const int64_t *pi, const int64_t *pj,
                      const int64_t *codes, int64_t n)
{
    uint64_t *a = (uint64_t *)acc;
    const uint64_t *c = (const uint64_t *)codes;
    for (int64_t k = 0; k < n; k++) {
        uint64_t *ri = a + 3 * pi[k];
        uint64_t *rj = a + 3 * pj[k];
        ri[0] += c[3 * k];
        ri[1] += c[3 * k + 1];
        ri[2] += c[3 * k + 2];
        rj[0] -= c[3 * k];
        rj[1] -= c[3 * k + 1];
        rj[2] -= c[3 * k + 2];
    }
}

/* acc[idx] += codes over (n, 3) rows (bonded-term deposits). */
void rk_scatter_rows(int64_t *acc, const int64_t *idx, const int64_t *codes,
                     int64_t n)
{
    uint64_t *a = (uint64_t *)acc;
    const uint64_t *c = (const uint64_t *)codes;
    for (int64_t k = 0; k < n; k++) {
        uint64_t *r = a + 3 * idx[k];
        r[0] += c[3 * k];
        r[1] += c[3 * k + 1];
        r[2] += c[3 * k + 2];
    }
}

/* Flat int64 scatter-add: acc[keys[k]] += codes[k]. */
void rk_scatter_add(int64_t *acc, const int64_t *keys, const int64_t *codes,
                    int64_t n)
{
    uint64_t *a = (uint64_t *)acc;
    const uint64_t *c = (const uint64_t *)codes;
    for (int64_t k = 0; k < n; k++)
        a[keys[k]] += c[k];
}

/* -- mesh charge spreading -------------------------------------------- */

/* MeshStencilPlan.spread_codes: codes are rint(w * qc) per stencil
 * point, scattered into the flat int64 mesh accumulator.  Two index
 * widths because the plan stores int32 indices when the mesh fits. */
void rk_mesh_spread_i32(int64_t *acc, const int32_t *flat, const double *w2,
                        const double *qc, int64_t n, int64_t k)
{
    uint64_t *a = (uint64_t *)acc;
    for (int64_t i = 0; i < n; i++) {
        double q = qc[i];
        const double *wr = w2 + i * k;
        const int32_t *fr = flat + i * k;
        for (int64_t m = 0; m < k; m++)
            a[fr[m]] += (uint64_t)(int64_t)rint(wr[m] * q);
    }
}

void rk_mesh_spread_i64(int64_t *acc, const int64_t *flat, const double *w2,
                        const double *qc, int64_t n, int64_t k)
{
    uint64_t *a = (uint64_t *)acc;
    for (int64_t i = 0; i < n; i++) {
        double q = qc[i];
        const double *wr = w2 + i * k;
        const int64_t *fr = flat + i * k;
        for (int64_t m = 0; m < k; m++)
            a[fr[m]] += (uint64_t)(int64_t)rint(wr[m] * q);
    }
}

/* -- SHAKE / RATTLE ---------------------------------------------------- */

static inline double rk_min_image(double d, double L)
{
    return d - L * rint(d / L);
}

/* Running maximum that propagates NaN the way np.max does: once err is
 * NaN it stays NaN, so the convergence test (err < tol) keeps failing
 * exactly as NumPy's would. */
static inline double rk_max(double err, double e)
{
    if (isnan(e) || e > err)
        return e;
    return err;
}

/* ConstraintSolver.shake: Gauss-Seidel sweeps over atom-disjoint
 * constraint batches.  `order` is the concatenation of the coloring
 * batches, `starts` the (nbatch + 1) prefix offsets into it.  `dref`
 * is caller-provided (ncon, 3) scratch. */
void rk_shake(double *pos, const double *ref, const int64_t *ci,
              const int64_t *cj, const double *d2, const double *inv,
              const double *L, int64_t ncon, const int64_t *order,
              const int64_t *starts, int64_t nbatch, int64_t iters,
              double tol, double *dref)
{
    for (int64_t c = 0; c < ncon; c++) {
        const double *ri = ref + 3 * ci[c];
        const double *rj = ref + 3 * cj[c];
        dref[3 * c] = rk_min_image(ri[0] - rj[0], L[0]);
        dref[3 * c + 1] = rk_min_image(ri[1] - rj[1], L[1]);
        dref[3 * c + 2] = rk_min_image(ri[2] - rj[2], L[2]);
    }
    for (int64_t it = 0; it < iters; it++) {
        double err = 0.0;
        for (int64_t c = 0; c < ncon; c++) {
            const double *xi = pos + 3 * ci[c];
            const double *xj = pos + 3 * cj[c];
            double d0 = rk_min_image(xi[0] - xj[0], L[0]);
            double d1 = rk_min_image(xi[1] - xj[1], L[1]);
            double dz = rk_min_image(xi[2] - xj[2], L[2]);
            double r2 = (d0 * d0 + d1 * d1) + dz * dz;
            err = rk_max(err, fabs(r2 - d2[c]));
        }
        if (err < tol)
            break;
        for (int64_t b = 0; b < nbatch; b++) {
            for (int64_t s = starts[b]; s < starts[b + 1]; s++) {
                int64_t c = order[s];
                int64_t i = ci[c], j = cj[c];
                double *xi = pos + 3 * i;
                double *xj = pos + 3 * j;
                double d0 = rk_min_image(xi[0] - xj[0], L[0]);
                double d1 = rk_min_image(xi[1] - xj[1], L[1]);
                double dz = rk_min_image(xi[2] - xj[2], L[2]);
                double diff = ((d0 * d0 + d1 * d1) + dz * dz) - d2[c];
                double dot = (d0 * dref[3 * c] + d1 * dref[3 * c + 1])
                             + dz * dref[3 * c + 2];
                double denom = 2.0 * (inv[i] + inv[j]) * dot;
                if (fabs(denom) < 1e-12)
                    denom = 1e-12;
                double g = diff / denom;
                double c0 = g * dref[3 * c];
                double c1 = g * dref[3 * c + 1];
                double c2 = g * dref[3 * c + 2];
                xi[0] -= inv[i] * c0;
                xi[1] -= inv[i] * c1;
                xi[2] -= inv[i] * c2;
                xj[0] += inv[j] * c0;
                xj[1] += inv[j] * c1;
                xj[2] += inv[j] * c2;
            }
        }
    }
}

/* Leading-replica-axis SHAKE: R independent replicas stacked along the
 * atom axis (replica r owns rows [r*natoms, (r+1)*natoms)), each solved
 * with the solo sweep above against the *solo* constraint arrays.  One
 * ctypes call replaces R, and every replica's arithmetic is literally
 * the solo routine — bitwise identity with a solo run is structural. */
void rk_shake_batch(int64_t nrep, int64_t natoms, double *pos,
                    const double *ref, const int64_t *ci, const int64_t *cj,
                    const double *d2, const double *inv, const double *L,
                    int64_t ncon, const int64_t *order,
                    const int64_t *starts, int64_t nbatch, int64_t iters,
                    double tol, double *dref)
{
    for (int64_t r = 0; r < nrep; r++)
        rk_shake(pos + 3 * natoms * r, ref + 3 * natoms * r, ci, cj, d2,
                 inv, L, ncon, order, starts, nbatch, iters, tol, dref);
}

/* ConstraintSolver.rattle.  `dx_all` (ncon, 3) and `d2_all` (ncon) are
 * caller-provided scratch. */
void rk_rattle(double *vel, const double *pos, const int64_t *ci,
               const int64_t *cj, const double *inv, const double *L,
               int64_t ncon, const int64_t *order, const int64_t *starts,
               int64_t nbatch, int64_t iters, double tol, double *dx_all,
               double *d2_all)
{
    for (int64_t c = 0; c < ncon; c++) {
        const double *xi = pos + 3 * ci[c];
        const double *xj = pos + 3 * cj[c];
        double d0 = rk_min_image(xi[0] - xj[0], L[0]);
        double d1 = rk_min_image(xi[1] - xj[1], L[1]);
        double dz = rk_min_image(xi[2] - xj[2], L[2]);
        dx_all[3 * c] = d0;
        dx_all[3 * c + 1] = d1;
        dx_all[3 * c + 2] = dz;
        d2_all[c] = (d0 * d0 + d1 * d1) + dz * dz;
    }
    for (int64_t it = 0; it < iters; it++) {
        double err = 0.0;
        for (int64_t c = 0; c < ncon; c++) {
            const double *vi = vel + 3 * ci[c];
            const double *vj = vel + 3 * cj[c];
            double s = (dx_all[3 * c] * (vi[0] - vj[0])
                        + dx_all[3 * c + 1] * (vi[1] - vj[1]))
                       + dx_all[3 * c + 2] * (vi[2] - vj[2]);
            err = rk_max(err, fabs(s));
        }
        if (err < tol)
            break;
        for (int64_t b = 0; b < nbatch; b++) {
            for (int64_t s = starts[b]; s < starts[b + 1]; s++) {
                int64_t c = order[s];
                int64_t i = ci[c], j = cj[c];
                double *vi = vel + 3 * i;
                double *vj = vel + 3 * j;
                double rv = (dx_all[3 * c] * (vi[0] - vj[0])
                             + dx_all[3 * c + 1] * (vi[1] - vj[1]))
                            + dx_all[3 * c + 2] * (vi[2] - vj[2]);
                double kk = rv / ((inv[i] + inv[j]) * d2_all[c]);
                double c0 = kk * dx_all[3 * c];
                double c1 = kk * dx_all[3 * c + 1];
                double c2 = kk * dx_all[3 * c + 2];
                vi[0] -= inv[i] * c0;
                vi[1] -= inv[i] * c1;
                vi[2] -= inv[i] * c2;
                vj[0] += inv[j] * c0;
                vj[1] += inv[j] * c1;
                vj[2] += inv[j] * c2;
            }
        }
    }
}

/* Leading-replica-axis RATTLE; see rk_shake_batch. */
void rk_rattle_batch(int64_t nrep, int64_t natoms, double *vel,
                     const double *pos, const int64_t *ci, const int64_t *cj,
                     const double *inv, const double *L, int64_t ncon,
                     const int64_t *order, const int64_t *starts,
                     int64_t nbatch, int64_t iters, double tol,
                     double *dx_all, double *d2_all)
{
    for (int64_t r = 0; r < nrep; r++)
        rk_rattle(vel + 3 * natoms * r, pos + 3 * natoms * r, ci, cj, inv,
                  L, ncon, order, starts, nbatch, iters, tol, dx_all,
                  d2_all);
}

/* -- mesh stencil plan -------------------------------------------------- */

/* One fused pass over the (kx, ky, kz) stencil cube of each atom:
 * weight outer product, spherical r^2 mask, and flattened mesh index.
 * Replicates the NumPy build exactly:
 *   wxy = (wx * norm)[x] * wy[y]   (wxn is precomputed wx * norm)
 *   w   = wxy * wz[z], zeroed where (dx^2 + dy^2) + dz^2 > c2
 *   flat = (ix * my + iy) * mz + iz   (int32 arithmetic)
 * All weights are positive (Gaussians), so the conditional zero matches
 * NumPy's multiply-by-bool mask (w * 0.0 == +0.0) bit for bit.  Index
 * math runs through uint32 so any wrap matches NumPy int32 instead of
 * tripping signed-overflow UB. */
void rk_mesh_plan(int64_t n, int64_t kx, int64_t ky, int64_t kz,
                  const double *wxn, const double *wy, const double *wz,
                  const double *dx, const double *dy, const double *dz,
                  const int32_t *ix, const int32_t *iy, const int32_t *iz,
                  int64_t my, int64_t mz, double c2,
                  double *w, int32_t *flat)
{
    int64_t cube = kx * ky * kz;
    for (int64_t i = 0; i < n; i++) {
        const double *wxi = wxn + i * kx;
        const double *wyi = wy + i * ky;
        const double *wzi = wz + i * kz;
        const double *dxi = dx + i * kx;
        const double *dyi = dy + i * ky;
        const double *dzi = dz + i * kz;
        const int32_t *ixi = ix + i * kx;
        const int32_t *iyi = iy + i * ky;
        const int32_t *izi = iz + i * kz;
        double *wv = w + i * cube;
        int32_t *fl = flat + i * cube;
        for (int64_t x = 0; x < kx; x++) {
            double wxv = wxi[x];
            double dx2 = dxi[x] * dxi[x];
            uint32_t fx = (uint32_t)ixi[x] * (uint32_t)my;
            for (int64_t y = 0; y < ky; y++) {
                double wxy = wxv * wyi[y];
                double r2xy = dx2 + dyi[y] * dyi[y];
                uint32_t fxy = (fx + (uint32_t)iyi[y]) * (uint32_t)mz;
                for (int64_t z = 0; z < kz; z++) {
                    double r2 = r2xy + dzi[z] * dzi[z];
                    *wv++ = (r2 <= c2) ? wxy * wzi[z] : 0.0;
                    *fl++ = (int32_t)(fxy + (uint32_t)izi[z]);
                }
            }
        }
    }
}
