/* Compiled hot-loop kernels for the functional machine simulation.
 *
 * Every routine here is a bit-for-bit replica of a NumPy expression in
 * the simulator: same operations, same association order, same rounding
 * (rint == np.rint, round-half-to-even under the default FP
 * environment), and integer accumulation done in uint64 so two's-
 * complement wrap matches NumPy's int64 overflow behaviour instead of
 * tripping C's signed-overflow UB.  Nothing in this file may introduce
 * a fused multiply-add or a reassociated sum: the build compiles with
 * -ffp-contract=off and no -ffast-math, and the property tests compare
 * every output against the NumPy path bitwise.
 *
 * Division is kept literal (x / L, not x * (1.0 / L)): a reciprocal
 * multiply is not the same IEEE operation and does change bits.
 */

#include <math.h>
#include <stdint.h>
#include <string.h>

/* ------------------------------------------------------------------ */
/* Deterministic thread pool                                          */
/*                                                                    */
/* One persistent pool per process: workers are spawned lazily on the */
/* first multithreaded call and then park on a condition variable     */
/* between jobs (no per-call pthread_create).  A job is a task        */
/* function fn(arg, tid, nthreads); the caller participates as tid 0  */
/* and blocks until every worker has finished, so a kernel call       */
/* returns only when all of its writes are visible.                   */
/*                                                                    */
/* Determinism contract: a task either writes to outputs that are     */
/* disjoint per (tid, chunk) — in which case the thread count is      */
/* trivially invisible — or it accumulates into a per-thread int64    */
/* partial that is reduced with wrapping adds, which are associative  */
/* and commutative, so the reduction order (and hence the thread      */
/* count and scheduling) cannot change the result bits.  No kernel    */
/* in this file performs a cross-thread float reduction.              */
/*                                                                    */
/* Compiled with -DRK_THREADS=0 (no usable pthreads) every entry      */
/* point below still exists but rk_run degenerates to a direct call   */
/* with nthreads == 1, which is exactly the serial kernel.            */
/* ------------------------------------------------------------------ */

#ifndef RK_THREADS
#define RK_THREADS 0
#endif

#define RK_MAX_THREADS 256

typedef void (*rk_task_fn)(void *arg, int64_t tid, int64_t nthreads);

/* Static block split: [lo, hi) of n items for thread tid of nt. */
static void rk_chunk(int64_t n, int64_t tid, int64_t nt,
                     int64_t *lo, int64_t *hi)
{
    int64_t q = n / nt, r = n % nt;
    *lo = tid * q + (tid < r ? tid : r);
    *hi = *lo + q + (tid < r ? 1 : 0);
}

#if RK_THREADS

#include <pthread.h>

static pthread_mutex_t rk_job_mu = PTHREAD_MUTEX_INITIALIZER; /* one job at a time */
static pthread_mutex_t rk_mu = PTHREAD_MUTEX_INITIALIZER;
static pthread_cond_t rk_cv_work = PTHREAD_COND_INITIALIZER;
static pthread_cond_t rk_cv_done = PTHREAD_COND_INITIALIZER;
static int64_t rk_spawned = 0;  /* live workers (caller excluded)    */
static uint64_t rk_seq = 0;     /* job generation counter            */
static int64_t rk_pending = 0;  /* workers still inside current job  */
static rk_task_fn rk_fn = 0;
static void *rk_arg = 0;
static int64_t rk_nt = 1;

typedef struct {
    int64_t tid;
    uint64_t seen0; /* rk_seq at spawn: jobs at or before it are not ours */
} rk_worker_init;

static rk_worker_init rk_winit[RK_MAX_THREADS];

static void *rk_worker(void *p)
{
    rk_worker_init *init = (rk_worker_init *)p;
    int64_t tid = init->tid;
    uint64_t seen = init->seen0;
    pthread_mutex_lock(&rk_mu);
    for (;;) {
        while (rk_seq == seen)
            pthread_cond_wait(&rk_cv_work, &rk_mu);
        seen = rk_seq;
        if (tid < rk_nt) {
            rk_task_fn fn = rk_fn;
            void *arg = rk_arg;
            int64_t nt = rk_nt;
            pthread_mutex_unlock(&rk_mu);
            fn(arg, tid, nt);
            pthread_mutex_lock(&rk_mu);
            if (--rk_pending == 0)
                pthread_cond_signal(&rk_cv_done);
        }
    }
    return 0;
}

/* After fork the worker threads do not exist in the child (only the
 * forking thread survives), so reset the pool bookkeeping; the child
 * respawns workers lazily on its next multithreaded call.  The
 * multiprocess machine backend forks from the main thread between
 * kernel calls, so no job is in flight at fork time. */
static void rk_atfork_child(void)
{
    pthread_mutex_init(&rk_job_mu, 0);
    pthread_mutex_init(&rk_mu, 0);
    pthread_cond_init(&rk_cv_work, 0);
    pthread_cond_init(&rk_cv_done, 0);
    rk_spawned = 0;
    rk_pending = 0;
    rk_seq = 0;
    rk_nt = 1;
}

static pthread_once_t rk_once = PTHREAD_ONCE_INIT;

static void rk_install_atfork(void)
{
    pthread_atfork(0, 0, rk_atfork_child);
}

/* Run fn over nthreads lanes; returns the lane count actually used
 * (spawn failure degrades gracefully toward serial). */
static int64_t rk_run(rk_task_fn fn, void *arg, int64_t nthreads)
{
    if (nthreads > RK_MAX_THREADS)
        nthreads = RK_MAX_THREADS;
    if (nthreads <= 1) {
        fn(arg, 0, 1);
        return 1;
    }
    pthread_once(&rk_once, rk_install_atfork);
    pthread_mutex_lock(&rk_job_mu);
    pthread_mutex_lock(&rk_mu);
    while (rk_spawned < nthreads - 1) {
        pthread_t th;
        pthread_attr_t at;
        rk_worker_init *init = &rk_winit[rk_spawned + 1];
        init->tid = rk_spawned + 1;
        init->seen0 = rk_seq;
        pthread_attr_init(&at);
        pthread_attr_setdetachstate(&at, PTHREAD_CREATE_DETACHED);
        if (pthread_create(&th, &at, rk_worker, init) != 0) {
            pthread_attr_destroy(&at);
            break;
        }
        pthread_attr_destroy(&at);
        rk_spawned++;
    }
    if (nthreads > rk_spawned + 1)
        nthreads = rk_spawned + 1;
    if (nthreads <= 1) {
        pthread_mutex_unlock(&rk_mu);
        pthread_mutex_unlock(&rk_job_mu);
        fn(arg, 0, 1);
        return 1;
    }
    rk_fn = fn;
    rk_arg = arg;
    rk_nt = nthreads;
    rk_pending = nthreads - 1;
    rk_seq++;
    pthread_cond_broadcast(&rk_cv_work);
    pthread_mutex_unlock(&rk_mu);
    fn(arg, 0, nthreads); /* caller is lane 0 */
    pthread_mutex_lock(&rk_mu);
    while (rk_pending > 0)
        pthread_cond_wait(&rk_cv_done, &rk_mu);
    pthread_mutex_unlock(&rk_mu);
    pthread_mutex_unlock(&rk_job_mu);
    return nthreads;
}

#else /* !RK_THREADS: serial fallback, same entry points */

static int64_t rk_run(rk_task_fn fn, void *arg, int64_t nthreads)
{
    (void)nthreads;
    fn(arg, 0, 1);
    return 1;
}

#endif

/* Probe for the Python layer: 1 when this build can actually fan out. */
int64_t rk_threads_available(void)
{
    return RK_THREADS ? 1 : 0;
}

/* Fixed-order wrapping-add reduction of per-thread int64 partials
 * into the shared accumulator, parallel over disjoint element ranges.
 * Each element's sum runs over lanes t = 0..nparts-1 in order; int64
 * wrap-add is associative and commutative, so any other shape (tree,
 * reversed, interleaved) would give identical bits — the property
 * tests assert this rather than assume it. */
typedef struct {
    int64_t *acc;
    const int64_t *part;
    int64_t nelem, nparts;
} rk_red_arg;

static void rk_reduce_task(void *p, int64_t tid, int64_t nt)
{
    rk_red_arg *a = (rk_red_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->nelem, tid, nt, &lo, &hi);
    uint64_t *acc = (uint64_t *)a->acc;
    for (int64_t t = 0; t < a->nparts; t++) {
        const uint64_t *pt = (const uint64_t *)(a->part + t * a->nelem);
        for (int64_t e = lo; e < hi; e++)
            acc[e] += pt[e];
    }
}

/* Segment-lookup acceleration grid: maps u in [0, 1) to a starting
 * segment index; a short forward scan lands on the exact segment,
 * reproducing np.searchsorted(starts, u, side="right") - 1 for the
 * monotone tier layouts (starts[0] == 0.0, u >= 0). */
#define RK_GRID 1024

static void rk_build_grid(const double *starts, int64_t nseg, int32_t *grid)
{
    int64_t idx = 0;
    for (int64_t g = 0; g < RK_GRID; g++) {
        double u0 = (double)g / (double)RK_GRID;
        while (idx + 1 < nseg && starts[idx + 1] <= u0)
            idx++;
        grid[g] = (int32_t)idx;
    }
}

static inline int64_t rk_segment(const double *starts, int64_t nseg,
                                 const int32_t *grid, double u)
{
    int64_t g = (int64_t)(u * (double)RK_GRID);
    if (g >= RK_GRID)
        g = RK_GRID - 1;
    if (g < 0)
        g = 0;
    int64_t idx = grid[g];
    while (idx + 1 < nseg && starts[idx + 1] <= u)
        idx++;
    return idx;
}

/* Cubic Horner over coefficients stored [c0, c1, c2, c3], matching
 * TieredTable.evaluate_at's loop from the highest coefficient down. */
static inline double rk_horner4(const double *c, double t)
{
    double out = c[3];
    out = out * t + c[2];
    out = out * t + c[1];
    out = out * t + c[0];
    return out;
}

/* ScaledFixed.quantize_round_only for one value: (q / limit) * scale,
 * clipped to +-2^62, round-nearest-even, cast to int64. */
static inline int64_t rk_quantize(double q, double limit, double scale)
{
    double x = q / limit * scale;
    const double cap = 4611686018427387904.0; /* 2.0**62 */
    if (x < -cap)
        x = -cap;
    if (x > cap)
        x = cap;
    return (int64_t)rint(x);
}

/* -- neighbor-list cutoff filter ------------------------------------- */

/* NeighborList.pairs steady state: minimum-image displacement of every
 * cached candidate, squared distance, compaction to r2 < cutoff2.
 * Returns the surviving pair count. */
int64_t rk_pair_filter(int64_t n_cand, const int64_t *ii, const int64_t *jj,
                       const double *w, const double *L, double cutoff2,
                       int64_t *oi, int64_t *oj, double *odx, double *or2)
{
    int64_t m = 0;
    for (int64_t k = 0; k < n_cand; k++) {
        const double *a = w + 3 * ii[k];
        const double *b = w + 3 * jj[k];
        double d0 = a[0] - b[0];
        double d1 = a[1] - b[1];
        double d2 = a[2] - b[2];
        d0 = d0 - L[0] * rint(d0 / L[0]);
        d1 = d1 - L[1] * rint(d1 / L[1]);
        d2 = d2 - L[2] * rint(d2 / L[2]);
        double r2 = (d0 * d0 + d1 * d1) + d2 * d2;
        if (r2 < cutoff2) {
            oi[m] = ii[k];
            oj[m] = jj[k];
            odx[3 * m] = d0;
            odx[3 * m + 1] = d1;
            odx[3 * m + 2] = d2;
            or2[m] = r2;
            m++;
        }
    }
    return m;
}

/* Threaded cutoff filter.  Phase 1: each lane filters a static chunk
 * of the candidate range, compacting survivors *in place* at its
 * chunk's own start offset (the output scratch is sized to the full
 * candidate count, so lane writes never collide).  Phase 2 (serial):
 * left-pack the per-lane runs in lane order.  Survivors within a
 * chunk keep candidate order and chunks are packed in candidate
 * order, so the output is byte-identical to the serial scan for ANY
 * chunking — the lane count is invisible. */
typedef struct {
    int64_t n;
    const int64_t *ii, *jj;
    const double *w, *L;
    double cutoff2;
    int64_t *oi, *oj;
    double *odx, *or2;
    int64_t *counts, *offs; /* per-lane survivor counts / chunk starts */
} rk_pf_arg;

static void rk_pair_filter_task(void *p, int64_t tid, int64_t nt)
{
    rk_pf_arg *a = (rk_pf_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    a->offs[tid] = lo;
    a->counts[tid] = rk_pair_filter(
        hi - lo, a->ii + lo, a->jj + lo, a->w, a->L, a->cutoff2,
        a->oi + lo, a->oj + lo, a->odx + 3 * lo, a->or2 + lo);
}

int64_t rk_pair_filter_mt(int64_t n_cand, const int64_t *ii, const int64_t *jj,
                          const double *w, const double *L, double cutoff2,
                          int64_t *oi, int64_t *oj, double *odx, double *or2,
                          int64_t nthreads, int64_t *scratch /* 2*nthreads */)
{
    if (nthreads <= 1 || n_cand < nthreads)
        return rk_pair_filter(n_cand, ii, jj, w, L, cutoff2, oi, oj, odx, or2);
    rk_pf_arg a = {n_cand, ii, jj, w, L, cutoff2, oi, oj, odx, or2,
                   scratch, scratch + nthreads};
    int64_t nt = rk_run(rk_pair_filter_task, &a, nthreads);
    int64_t m = a.counts[0];
    for (int64_t t = 1; t < nt; t++) {
        int64_t src = a.offs[t], c = a.counts[t];
        if (c && src != m) { /* dst <= src: memmove packs leftward */
            memmove(oi + m, oi + src, (size_t)c * sizeof *oi);
            memmove(oj + m, oj + src, (size_t)c * sizeof *oj);
            memmove(odx + 3 * m, odx + 3 * src, (size_t)(3 * c) * sizeof *odx);
            memmove(or2 + m, or2 + src, (size_t)c * sizeof *or2);
        }
        m += c;
    }
    return m;
}

/* -- fused tabulated pair kernel ------------------------------------- */

/* nonbonded_real_space_tabulated + quantize_round_only in one pass:
 * per pair, normalize r2, locate both tier layouts, Horner-evaluate the
 * six tables, combine with the charge product and LJ A/B coefficients,
 * and quantize the force vector straight to int64 codes.  Per-pair
 * energies are written out for the caller's np.sum (so the reported
 * float energies keep NumPy's pairwise-summation bits). */
typedef struct {
    int64_t n;
    const int64_t *pi, *pj;
    const double *dx, *r2, *charges;
    const int64_t *types;
    const double *amat, *bmat;
    int64_t n_types;
    double coulomb, cutoff2, umax;
    const double *e_starts;
    int64_t e_nseg;
    const double *e_widths, *e_cf, *e_ce;
    const double *d_starts;
    int64_t d_nseg;
    const double *d_widths, *c12f, *c6f, *c12e, *c6e;
    double q_limit, q_scale;
    int64_t *codes;
    double *e_lj, *e_coul;
    const int32_t *e_grid, *d_grid;
} rk_pc_arg;

/* Per-pair work over [lo, hi): every output row k is written by
 * exactly one lane, so any partition of the pair range is bitwise
 * identical to the serial loop. */
static void rk_pair_codes_range(const rk_pc_arg *a, int64_t lo, int64_t hi)
{
    const int64_t *pi = a->pi, *pj = a->pj;
    const double *dx = a->dx, *r2 = a->r2;
    const double *charges = a->charges;
    const int64_t *types = a->types;
    const double *amat = a->amat, *bmat = a->bmat;
    int64_t n_types = a->n_types;
    double coulomb = a->coulomb, cutoff2 = a->cutoff2, umax = a->umax;
    const double *e_starts = a->e_starts, *e_widths = a->e_widths;
    const double *e_cf = a->e_cf, *e_ce = a->e_ce;
    int64_t e_nseg = a->e_nseg;
    const double *d_starts = a->d_starts, *d_widths = a->d_widths;
    const double *c12f = a->c12f, *c6f = a->c6f;
    const double *c12e = a->c12e, *c6e = a->c6e;
    int64_t d_nseg = a->d_nseg;
    double q_limit = a->q_limit, q_scale = a->q_scale;
    int64_t *codes = a->codes;
    double *e_lj = a->e_lj, *e_coul = a->e_coul;
    const int32_t *e_grid = a->e_grid, *d_grid = a->d_grid;

    for (int64_t k = lo; k < hi; k++) {
        int64_t i = pi[k], j = pj[k];
        double qq = charges[i] * charges[j] * coulomb;
        int64_t tij = types[i] * n_types + types[j];
        double a = amat[tij];
        double b = bmat[tij];

        double u = r2[k] / cutoff2;
        if (u > umax)
            u = umax;

        int64_t ie = rk_segment(e_starts, e_nseg, e_grid, u);
        double te = (u - e_starts[ie]) / e_widths[ie];
        if (te < 0.0)
            te = 0.0;
        if (te > 1.0)
            te = 1.0;
        int64_t id = rk_segment(d_starts, d_nseg, d_grid, u);
        double td = (u - d_starts[id]) / d_widths[id];
        if (td < 0.0)
            td = 0.0;
        if (td > 1.0)
            td = 1.0;

        double ef = rk_horner4(e_cf + 4 * ie, te);
        double ee = rk_horner4(e_ce + 4 * ie, te);
        double f12 = rk_horner4(c12f + 4 * id, td);
        double f6 = rk_horner4(c6f + 4 * id, td);
        double e12 = rk_horner4(c12e + 4 * id, td);
        double e6 = rk_horner4(c6e + 4 * id, td);

        double p = qq * ef + a * f12 - b * f6;
        e_coul[k] = qq * ee;
        e_lj[k] = a * e12 - b * e6;

        codes[3 * k] = rk_quantize(p * dx[3 * k], q_limit, q_scale);
        codes[3 * k + 1] = rk_quantize(p * dx[3 * k + 1], q_limit, q_scale);
        codes[3 * k + 2] = rk_quantize(p * dx[3 * k + 2], q_limit, q_scale);
    }
}

static rk_pc_arg rk_pc_pack(
    int64_t n, const int64_t *pi, const int64_t *pj,
    const double *dx, const double *r2,
    const double *charges, const int64_t *types,
    const double *amat, const double *bmat, int64_t n_types,
    double coulomb, double cutoff2, double umax,
    const double *e_starts, int64_t e_nseg,
    const double *e_widths,
    const double *e_cf, const double *e_ce,
    const double *d_starts, int64_t d_nseg,
    const double *d_widths,
    const double *c12f, const double *c6f,
    const double *c12e, const double *c6e,
    double q_limit, double q_scale,
    int64_t *codes, double *e_lj, double *e_coul,
    const int32_t *e_grid, const int32_t *d_grid)
{
    rk_pc_arg a;
    a.n = n; a.pi = pi; a.pj = pj; a.dx = dx; a.r2 = r2;
    a.charges = charges; a.types = types;
    a.amat = amat; a.bmat = bmat; a.n_types = n_types;
    a.coulomb = coulomb; a.cutoff2 = cutoff2; a.umax = umax;
    a.e_starts = e_starts; a.e_nseg = e_nseg; a.e_widths = e_widths;
    a.e_cf = e_cf; a.e_ce = e_ce;
    a.d_starts = d_starts; a.d_nseg = d_nseg; a.d_widths = d_widths;
    a.c12f = c12f; a.c6f = c6f; a.c12e = c12e; a.c6e = c6e;
    a.q_limit = q_limit; a.q_scale = q_scale;
    a.codes = codes; a.e_lj = e_lj; a.e_coul = e_coul;
    a.e_grid = e_grid; a.d_grid = d_grid;
    return a;
}

void rk_pair_table_codes(
    int64_t n, const int64_t *pi, const int64_t *pj,
    const double *dx, const double *r2,
    const double *charges, const int64_t *types,
    const double *amat, const double *bmat, int64_t n_types,
    double coulomb, double cutoff2, double umax,
    const double *e_starts, int64_t e_nseg,
    const double *e_widths,
    const double *e_cf, const double *e_ce,
    const double *d_starts, int64_t d_nseg,
    const double *d_widths,
    const double *c12f, const double *c6f,
    const double *c12e, const double *c6e,
    double q_limit, double q_scale,
    int64_t *codes, double *e_lj, double *e_coul)
{
    int32_t e_grid[RK_GRID];
    int32_t d_grid[RK_GRID];
    rk_build_grid(e_starts, e_nseg, e_grid);
    rk_build_grid(d_starts, d_nseg, d_grid);
    rk_pc_arg a = rk_pc_pack(n, pi, pj, dx, r2, charges, types, amat, bmat,
                             n_types, coulomb, cutoff2, umax,
                             e_starts, e_nseg, e_widths, e_cf, e_ce,
                             d_starts, d_nseg, d_widths, c12f, c6f, c12e, c6e,
                             q_limit, q_scale, codes, e_lj, e_coul,
                             e_grid, d_grid);
    rk_pair_codes_range(&a, 0, n);
}

static void rk_pair_codes_task(void *p, int64_t tid, int64_t nt)
{
    const rk_pc_arg *a = (const rk_pc_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    rk_pair_codes_range(a, lo, hi);
}

void rk_pair_table_codes_mt(
    int64_t n, const int64_t *pi, const int64_t *pj,
    const double *dx, const double *r2,
    const double *charges, const int64_t *types,
    const double *amat, const double *bmat, int64_t n_types,
    double coulomb, double cutoff2, double umax,
    const double *e_starts, int64_t e_nseg,
    const double *e_widths,
    const double *e_cf, const double *e_ce,
    const double *d_starts, int64_t d_nseg,
    const double *d_widths,
    const double *c12f, const double *c6f,
    const double *c12e, const double *c6e,
    double q_limit, double q_scale,
    int64_t *codes, double *e_lj, double *e_coul,
    int64_t nthreads)
{
    int32_t e_grid[RK_GRID];
    int32_t d_grid[RK_GRID];
    rk_build_grid(e_starts, e_nseg, e_grid);
    rk_build_grid(d_starts, d_nseg, d_grid);
    rk_pc_arg a = rk_pc_pack(n, pi, pj, dx, r2, charges, types, amat, bmat,
                             n_types, coulomb, cutoff2, umax,
                             e_starts, e_nseg, e_widths, e_cf, e_ce,
                             d_starts, d_nseg, d_widths, c12f, c6f, c12e, c6e,
                             q_limit, q_scale, codes, e_lj, e_coul,
                             e_grid, d_grid);
    if (nthreads <= 1 || n < nthreads) {
        rk_pair_codes_range(&a, 0, n);
        return;
    }
    rk_run(rk_pair_codes_task, &a, nthreads);
}

/* -- fixed-point deposits --------------------------------------------- */

/* acc[i] += codes; acc[j] -= codes over (n, 3) rows, with NumPy int64
 * wrap semantics (uint64 arithmetic). */
void rk_deposit_pairs(int64_t *acc, const int64_t *pi, const int64_t *pj,
                      const int64_t *codes, int64_t n)
{
    uint64_t *a = (uint64_t *)acc;
    const uint64_t *c = (const uint64_t *)codes;
    for (int64_t k = 0; k < n; k++) {
        uint64_t *ri = a + 3 * pi[k];
        uint64_t *rj = a + 3 * pj[k];
        ri[0] += c[3 * k];
        ri[1] += c[3 * k + 1];
        ri[2] += c[3 * k + 2];
        rj[0] -= c[3 * k];
        rj[1] -= c[3 * k + 1];
        rj[2] -= c[3 * k + 2];
    }
}

/* acc[idx] += codes over (n, 3) rows (bonded-term deposits). */
void rk_scatter_rows(int64_t *acc, const int64_t *idx, const int64_t *codes,
                     int64_t n)
{
    uint64_t *a = (uint64_t *)acc;
    const uint64_t *c = (const uint64_t *)codes;
    for (int64_t k = 0; k < n; k++) {
        uint64_t *r = a + 3 * idx[k];
        r[0] += c[3 * k];
        r[1] += c[3 * k + 1];
        r[2] += c[3 * k + 2];
    }
}

/* Flat int64 scatter-add: acc[keys[k]] += codes[k]. */
void rk_scatter_add(int64_t *acc, const int64_t *keys, const int64_t *codes,
                    int64_t n)
{
    uint64_t *a = (uint64_t *)acc;
    const uint64_t *c = (const uint64_t *)codes;
    for (int64_t k = 0; k < n; k++)
        a[keys[k]] += c[k];
}

/* -- threaded deposits: per-lane partials + order-free wrap reduce ----- */

/* Each threaded deposit follows the same two-phase shape: every lane
 * zeroes its own full-size int64 partial and accumulates its chunk of
 * the input into it, then rk_reduce_task folds the partials into acc
 * over disjoint element ranges.  Both phases are bitwise order-free:
 * the accumulate phase because lanes touch disjoint partials, the
 * reduce because int64 wrapping add is associative and commutative.
 * nparts for the reduce is the EFFECTIVE lane count returned by the
 * first rk_run — a degraded spawn must not fold unzeroed partials. */

typedef struct {
    int64_t *part;          /* (nthreads, nelem) */
    const int64_t *pi, *pj, *idx, *keys, *codes;
    int64_t n, nelem;
} rk_dep_arg;

static void rk_deposit_pairs_task(void *p, int64_t tid, int64_t nt)
{
    rk_dep_arg *a = (rk_dep_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    int64_t *mine = a->part + tid * a->nelem;
    memset(mine, 0, (size_t)a->nelem * sizeof(int64_t));
    rk_deposit_pairs(mine, a->pi + lo, a->pj + lo, a->codes + 3 * lo,
                     hi - lo);
}

void rk_deposit_pairs_mt(int64_t *acc, const int64_t *pi, const int64_t *pj,
                         const int64_t *codes, int64_t n, int64_t nelem,
                         int64_t *part, int64_t nthreads)
{
    if (nthreads <= 1 || n < nthreads) {
        rk_deposit_pairs(acc, pi, pj, codes, n);
        return;
    }
    rk_dep_arg a;
    a.part = part; a.pi = pi; a.pj = pj; a.idx = NULL; a.keys = NULL;
    a.codes = codes; a.n = n; a.nelem = nelem;
    int64_t nt = rk_run(rk_deposit_pairs_task, &a, nthreads);
    rk_red_arg r = {acc, part, nelem, nt};
    rk_run(rk_reduce_task, &r, nt);
}

static void rk_scatter_rows_task(void *p, int64_t tid, int64_t nt)
{
    rk_dep_arg *a = (rk_dep_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    int64_t *mine = a->part + tid * a->nelem;
    memset(mine, 0, (size_t)a->nelem * sizeof(int64_t));
    rk_scatter_rows(mine, a->idx + lo, a->codes + 3 * lo, hi - lo);
}

void rk_scatter_rows_mt(int64_t *acc, const int64_t *idx,
                        const int64_t *codes, int64_t n, int64_t nelem,
                        int64_t *part, int64_t nthreads)
{
    if (nthreads <= 1 || n < nthreads) {
        rk_scatter_rows(acc, idx, codes, n);
        return;
    }
    rk_dep_arg a;
    a.part = part; a.pi = NULL; a.pj = NULL; a.idx = idx; a.keys = NULL;
    a.codes = codes; a.n = n; a.nelem = nelem;
    int64_t nt = rk_run(rk_scatter_rows_task, &a, nthreads);
    rk_red_arg r = {acc, part, nelem, nt};
    rk_run(rk_reduce_task, &r, nt);
}

static void rk_scatter_add_task(void *p, int64_t tid, int64_t nt)
{
    rk_dep_arg *a = (rk_dep_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    int64_t *mine = a->part + tid * a->nelem;
    memset(mine, 0, (size_t)a->nelem * sizeof(int64_t));
    rk_scatter_add(mine, a->keys + lo, a->codes + lo, hi - lo);
}

void rk_scatter_add_mt(int64_t *acc, const int64_t *keys,
                       const int64_t *codes, int64_t n, int64_t nelem,
                       int64_t *part, int64_t nthreads)
{
    if (nthreads <= 1 || n < nthreads) {
        rk_scatter_add(acc, keys, codes, n);
        return;
    }
    rk_dep_arg a;
    a.part = part; a.pi = NULL; a.pj = NULL; a.idx = NULL; a.keys = keys;
    a.codes = codes; a.n = n; a.nelem = nelem;
    int64_t nt = rk_run(rk_scatter_add_task, &a, nthreads);
    rk_red_arg r = {acc, part, nelem, nt};
    rk_run(rk_reduce_task, &r, nt);
}

/* -- mesh charge spreading -------------------------------------------- */

/* MeshStencilPlan.spread_codes: codes are rint(w * qc) per stencil
 * point, scattered into the flat int64 mesh accumulator.  Two index
 * widths because the plan stores int32 indices when the mesh fits. */
void rk_mesh_spread_i32(int64_t *acc, const int32_t *flat, const double *w2,
                        const double *qc, int64_t n, int64_t k)
{
    uint64_t *a = (uint64_t *)acc;
    for (int64_t i = 0; i < n; i++) {
        double q = qc[i];
        const double *wr = w2 + i * k;
        const int32_t *fr = flat + i * k;
        for (int64_t m = 0; m < k; m++)
            a[fr[m]] += (uint64_t)(int64_t)rint(wr[m] * q);
    }
}

void rk_mesh_spread_i64(int64_t *acc, const int64_t *flat, const double *w2,
                        const double *qc, int64_t n, int64_t k)
{
    uint64_t *a = (uint64_t *)acc;
    for (int64_t i = 0; i < n; i++) {
        double q = qc[i];
        const double *wr = w2 + i * k;
        const int64_t *fr = flat + i * k;
        for (int64_t m = 0; m < k; m++)
            a[fr[m]] += (uint64_t)(int64_t)rint(wr[m] * q);
    }
}

typedef struct {
    int64_t *part;          /* (nthreads, npts) */
    const void *flat;
    const double *w2, *qc;
    int64_t n, k, npts;
    int is64;
} rk_ms_arg;

static void rk_mesh_spread_task(void *p, int64_t tid, int64_t nt)
{
    rk_ms_arg *a = (rk_ms_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    int64_t *mine = a->part + tid * a->npts;
    memset(mine, 0, (size_t)a->npts * sizeof(int64_t));
    if (a->is64)
        rk_mesh_spread_i64(mine, (const int64_t *)a->flat + lo * a->k,
                           a->w2 + lo * a->k, a->qc + lo, hi - lo, a->k);
    else
        rk_mesh_spread_i32(mine, (const int32_t *)a->flat + lo * a->k,
                           a->w2 + lo * a->k, a->qc + lo, hi - lo, a->k);
}

static void rk_mesh_spread_mt(int64_t *acc, const void *flat,
                              const double *w2, const double *qc,
                              int64_t n, int64_t k, int64_t npts,
                              int64_t *part, int64_t nthreads, int is64)
{
    rk_ms_arg a;
    a.part = part; a.flat = flat; a.w2 = w2; a.qc = qc;
    a.n = n; a.k = k; a.npts = npts; a.is64 = is64;
    int64_t nt = rk_run(rk_mesh_spread_task, &a, nthreads);
    rk_red_arg r = {acc, part, npts, nt};
    rk_run(rk_reduce_task, &r, nt);
}

void rk_mesh_spread_i32_mt(int64_t *acc, const int32_t *flat,
                           const double *w2, const double *qc,
                           int64_t n, int64_t k, int64_t npts,
                           int64_t *part, int64_t nthreads)
{
    if (nthreads <= 1 || n < nthreads) {
        rk_mesh_spread_i32(acc, flat, w2, qc, n, k);
        return;
    }
    rk_mesh_spread_mt(acc, flat, w2, qc, n, k, npts, part, nthreads, 0);
}

void rk_mesh_spread_i64_mt(int64_t *acc, const int64_t *flat,
                           const double *w2, const double *qc,
                           int64_t n, int64_t k, int64_t npts,
                           int64_t *part, int64_t nthreads)
{
    if (nthreads <= 1 || n < nthreads) {
        rk_mesh_spread_i64(acc, flat, w2, qc, n, k);
        return;
    }
    rk_mesh_spread_mt(acc, flat, w2, qc, n, k, npts, part, nthreads, 1);
}

/* -- SHAKE / RATTLE ---------------------------------------------------- */

static inline double rk_min_image(double d, double L)
{
    return d - L * rint(d / L);
}

/* Running maximum that propagates NaN the way np.max does: once err is
 * NaN it stays NaN, so the convergence test (err < tol) keeps failing
 * exactly as NumPy's would. */
static inline double rk_max(double err, double e)
{
    if (isnan(e) || e > err)
        return e;
    return err;
}

/* ConstraintSolver.shake: Gauss-Seidel sweeps over atom-disjoint
 * constraint batches.  `order` is the concatenation of the coloring
 * batches, `starts` the (nbatch + 1) prefix offsets into it.  `dref`
 * is caller-provided (ncon, 3) scratch. */
void rk_shake(double *pos, const double *ref, const int64_t *ci,
              const int64_t *cj, const double *d2, const double *inv,
              const double *L, int64_t ncon, const int64_t *order,
              const int64_t *starts, int64_t nbatch, int64_t iters,
              double tol, double *dref)
{
    for (int64_t c = 0; c < ncon; c++) {
        const double *ri = ref + 3 * ci[c];
        const double *rj = ref + 3 * cj[c];
        dref[3 * c] = rk_min_image(ri[0] - rj[0], L[0]);
        dref[3 * c + 1] = rk_min_image(ri[1] - rj[1], L[1]);
        dref[3 * c + 2] = rk_min_image(ri[2] - rj[2], L[2]);
    }
    for (int64_t it = 0; it < iters; it++) {
        double err = 0.0;
        for (int64_t c = 0; c < ncon; c++) {
            const double *xi = pos + 3 * ci[c];
            const double *xj = pos + 3 * cj[c];
            double d0 = rk_min_image(xi[0] - xj[0], L[0]);
            double d1 = rk_min_image(xi[1] - xj[1], L[1]);
            double dz = rk_min_image(xi[2] - xj[2], L[2]);
            double r2 = (d0 * d0 + d1 * d1) + dz * dz;
            err = rk_max(err, fabs(r2 - d2[c]));
        }
        if (err < tol)
            break;
        for (int64_t b = 0; b < nbatch; b++) {
            for (int64_t s = starts[b]; s < starts[b + 1]; s++) {
                int64_t c = order[s];
                int64_t i = ci[c], j = cj[c];
                double *xi = pos + 3 * i;
                double *xj = pos + 3 * j;
                double d0 = rk_min_image(xi[0] - xj[0], L[0]);
                double d1 = rk_min_image(xi[1] - xj[1], L[1]);
                double dz = rk_min_image(xi[2] - xj[2], L[2]);
                double diff = ((d0 * d0 + d1 * d1) + dz * dz) - d2[c];
                double dot = (d0 * dref[3 * c] + d1 * dref[3 * c + 1])
                             + dz * dref[3 * c + 2];
                double denom = 2.0 * (inv[i] + inv[j]) * dot;
                if (fabs(denom) < 1e-12)
                    denom = 1e-12;
                double g = diff / denom;
                double c0 = g * dref[3 * c];
                double c1 = g * dref[3 * c + 1];
                double c2 = g * dref[3 * c + 2];
                xi[0] -= inv[i] * c0;
                xi[1] -= inv[i] * c1;
                xi[2] -= inv[i] * c2;
                xj[0] += inv[j] * c0;
                xj[1] += inv[j] * c1;
                xj[2] += inv[j] * c2;
            }
        }
    }
}

/* Leading-replica-axis SHAKE: R independent replicas stacked along the
 * atom axis (replica r owns rows [r*natoms, (r+1)*natoms)), each solved
 * with the solo sweep above against the *solo* constraint arrays.  One
 * ctypes call replaces R, and every replica's arithmetic is literally
 * the solo routine — bitwise identity with a solo run is structural. */
void rk_shake_batch(int64_t nrep, int64_t natoms, double *pos,
                    const double *ref, const int64_t *ci, const int64_t *cj,
                    const double *d2, const double *inv, const double *L,
                    int64_t ncon, const int64_t *order,
                    const int64_t *starts, int64_t nbatch, int64_t iters,
                    double tol, double *dref)
{
    for (int64_t r = 0; r < nrep; r++)
        rk_shake(pos + 3 * natoms * r, ref + 3 * natoms * r, ci, cj, d2,
                 inv, L, ncon, order, starts, nbatch, iters, tol, dref);
}

/* ConstraintSolver.rattle.  `dx_all` (ncon, 3) and `d2_all` (ncon) are
 * caller-provided scratch. */
void rk_rattle(double *vel, const double *pos, const int64_t *ci,
               const int64_t *cj, const double *inv, const double *L,
               int64_t ncon, const int64_t *order, const int64_t *starts,
               int64_t nbatch, int64_t iters, double tol, double *dx_all,
               double *d2_all)
{
    for (int64_t c = 0; c < ncon; c++) {
        const double *xi = pos + 3 * ci[c];
        const double *xj = pos + 3 * cj[c];
        double d0 = rk_min_image(xi[0] - xj[0], L[0]);
        double d1 = rk_min_image(xi[1] - xj[1], L[1]);
        double dz = rk_min_image(xi[2] - xj[2], L[2]);
        dx_all[3 * c] = d0;
        dx_all[3 * c + 1] = d1;
        dx_all[3 * c + 2] = dz;
        d2_all[c] = (d0 * d0 + d1 * d1) + dz * dz;
    }
    for (int64_t it = 0; it < iters; it++) {
        double err = 0.0;
        for (int64_t c = 0; c < ncon; c++) {
            const double *vi = vel + 3 * ci[c];
            const double *vj = vel + 3 * cj[c];
            double s = (dx_all[3 * c] * (vi[0] - vj[0])
                        + dx_all[3 * c + 1] * (vi[1] - vj[1]))
                       + dx_all[3 * c + 2] * (vi[2] - vj[2]);
            err = rk_max(err, fabs(s));
        }
        if (err < tol)
            break;
        for (int64_t b = 0; b < nbatch; b++) {
            for (int64_t s = starts[b]; s < starts[b + 1]; s++) {
                int64_t c = order[s];
                int64_t i = ci[c], j = cj[c];
                double *vi = vel + 3 * i;
                double *vj = vel + 3 * j;
                double rv = (dx_all[3 * c] * (vi[0] - vj[0])
                             + dx_all[3 * c + 1] * (vi[1] - vj[1]))
                            + dx_all[3 * c + 2] * (vi[2] - vj[2]);
                double kk = rv / ((inv[i] + inv[j]) * d2_all[c]);
                double c0 = kk * dx_all[3 * c];
                double c1 = kk * dx_all[3 * c + 1];
                double c2 = kk * dx_all[3 * c + 2];
                vi[0] -= inv[i] * c0;
                vi[1] -= inv[i] * c1;
                vi[2] -= inv[i] * c2;
                vj[0] += inv[j] * c0;
                vj[1] += inv[j] * c1;
                vj[2] += inv[j] * c2;
            }
        }
    }
}

/* Leading-replica-axis RATTLE; see rk_shake_batch. */
void rk_rattle_batch(int64_t nrep, int64_t natoms, double *vel,
                     const double *pos, const int64_t *ci, const int64_t *cj,
                     const double *inv, const double *L, int64_t ncon,
                     const int64_t *order, const int64_t *starts,
                     int64_t nbatch, int64_t iters, double tol,
                     double *dx_all, double *d2_all)
{
    for (int64_t r = 0; r < nrep; r++)
        rk_rattle(vel + 3 * natoms * r, pos + 3 * natoms * r, ci, cj, inv,
                  L, ncon, order, starts, nbatch, iters, tol, dx_all,
                  d2_all);
}

/* Threaded constraint batches: replicas are independent (disjoint
 * pos/vel rows, read-only shared topology), so lanes chunk the replica
 * axis and run the solo routine with per-lane scratch.  Per-replica
 * convergence exits live inside rk_shake/rk_rattle and are untouched. */

typedef struct {
    int64_t nrep, natoms, ncon, nbatch, iters;
    double tol;
    double *pos, *vel;
    const double *ref, *cpos, *d2, *inv, *L;
    const int64_t *ci, *cj, *order, *starts;
    double *scr_a;          /* (nthreads, 3*ncon): dref / dx_all */
    double *scr_b;          /* (nthreads, ncon): d2_all (rattle only) */
} rk_cb_arg;

static void rk_shake_batch_task(void *p, int64_t tid, int64_t nt)
{
    rk_cb_arg *a = (rk_cb_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->nrep, tid, nt, &lo, &hi);
    double *dref = a->scr_a + tid * 3 * a->ncon;
    for (int64_t r = lo; r < hi; r++)
        rk_shake(a->pos + 3 * a->natoms * r, a->ref + 3 * a->natoms * r,
                 a->ci, a->cj, a->d2, a->inv, a->L, a->ncon, a->order,
                 a->starts, a->nbatch, a->iters, a->tol, dref);
}

void rk_shake_batch_mt(int64_t nrep, int64_t natoms, double *pos,
                       const double *ref, const int64_t *ci,
                       const int64_t *cj, const double *d2,
                       const double *inv, const double *L, int64_t ncon,
                       const int64_t *order, const int64_t *starts,
                       int64_t nbatch, int64_t iters, double tol,
                       double *scratch, int64_t nthreads)
{
    if (nthreads <= 1 || nrep <= 1) {
        rk_shake_batch(nrep, natoms, pos, ref, ci, cj, d2, inv, L, ncon,
                       order, starts, nbatch, iters, tol, scratch);
        return;
    }
    rk_cb_arg a;
    a.nrep = nrep; a.natoms = natoms; a.ncon = ncon; a.nbatch = nbatch;
    a.iters = iters; a.tol = tol;
    a.pos = pos; a.vel = NULL; a.ref = ref; a.cpos = NULL;
    a.d2 = d2; a.inv = inv; a.L = L;
    a.ci = ci; a.cj = cj; a.order = order; a.starts = starts;
    a.scr_a = scratch; a.scr_b = NULL;
    rk_run(rk_shake_batch_task, &a, nthreads);
}

static void rk_rattle_batch_task(void *p, int64_t tid, int64_t nt)
{
    rk_cb_arg *a = (rk_cb_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->nrep, tid, nt, &lo, &hi);
    double *dx_all = a->scr_a + tid * 3 * a->ncon;
    double *d2_all = a->scr_b + tid * a->ncon;
    for (int64_t r = lo; r < hi; r++)
        rk_rattle(a->vel + 3 * a->natoms * r, a->cpos + 3 * a->natoms * r,
                  a->ci, a->cj, a->inv, a->L, a->ncon, a->order, a->starts,
                  a->nbatch, a->iters, a->tol, dx_all, d2_all);
}

void rk_rattle_batch_mt(int64_t nrep, int64_t natoms, double *vel,
                        const double *pos, const int64_t *ci,
                        const int64_t *cj, const double *inv,
                        const double *L, int64_t ncon,
                        const int64_t *order, const int64_t *starts,
                        int64_t nbatch, int64_t iters, double tol,
                        double *dx_scratch, double *d2_scratch,
                        int64_t nthreads)
{
    if (nthreads <= 1 || nrep <= 1) {
        rk_rattle_batch(nrep, natoms, vel, pos, ci, cj, inv, L, ncon,
                        order, starts, nbatch, iters, tol, dx_scratch,
                        d2_scratch);
        return;
    }
    rk_cb_arg a;
    a.nrep = nrep; a.natoms = natoms; a.ncon = ncon; a.nbatch = nbatch;
    a.iters = iters; a.tol = tol;
    a.pos = NULL; a.vel = vel; a.ref = NULL; a.cpos = pos;
    a.d2 = NULL; a.inv = inv; a.L = L;
    a.ci = ci; a.cj = cj; a.order = order; a.starts = starts;
    a.scr_a = dx_scratch; a.scr_b = d2_scratch;
    rk_run(rk_rattle_batch_task, &a, nthreads);
}

/* -- mesh stencil plan -------------------------------------------------- */

/* One fused pass over the (kx, ky, kz) stencil cube of each atom:
 * weight outer product, spherical r^2 mask, and flattened mesh index.
 * Replicates the NumPy build exactly:
 *   wxy = (wx * norm)[x] * wy[y]   (wxn is precomputed wx * norm)
 *   w   = wxy * wz[z], zeroed where (dx^2 + dy^2) + dz^2 > c2
 *   flat = (ix * my + iy) * mz + iz   (int32 arithmetic)
 * All weights are positive (Gaussians), so the conditional zero matches
 * NumPy's multiply-by-bool mask (w * 0.0 == +0.0) bit for bit.  Index
 * math runs through uint32 so any wrap matches NumPy int32 instead of
 * tripping signed-overflow UB. */
typedef struct {
    int64_t n, kx, ky, kz, my, mz;
    const double *wxn, *wy, *wz, *dx, *dy, *dz;
    const int32_t *ix, *iy, *iz;
    double c2;
    double *w;
    int32_t *flat;
} rk_mp_arg;

/* Atom rows [lo, hi): each atom's stencil cube is written by exactly
 * one lane, so any partition of the atom range matches the serial
 * loop bit for bit. */
static void rk_mesh_plan_range(const rk_mp_arg *a, int64_t lo, int64_t hi)
{
    int64_t kx = a->kx, ky = a->ky, kz = a->kz;
    const double *wxn = a->wxn, *wy = a->wy, *wz = a->wz;
    const double *dx = a->dx, *dy = a->dy, *dz = a->dz;
    const int32_t *ix = a->ix, *iy = a->iy, *iz = a->iz;
    int64_t my = a->my, mz = a->mz;
    double c2 = a->c2;
    double *w = a->w;
    int32_t *flat = a->flat;
    int64_t cube = kx * ky * kz;
    for (int64_t i = lo; i < hi; i++) {
        const double *wxi = wxn + i * kx;
        const double *wyi = wy + i * ky;
        const double *wzi = wz + i * kz;
        const double *dxi = dx + i * kx;
        const double *dyi = dy + i * ky;
        const double *dzi = dz + i * kz;
        const int32_t *ixi = ix + i * kx;
        const int32_t *iyi = iy + i * ky;
        const int32_t *izi = iz + i * kz;
        double *wv = w + i * cube;
        int32_t *fl = flat + i * cube;
        for (int64_t x = 0; x < kx; x++) {
            double wxv = wxi[x];
            double dx2 = dxi[x] * dxi[x];
            uint32_t fx = (uint32_t)ixi[x] * (uint32_t)my;
            for (int64_t y = 0; y < ky; y++) {
                double wxy = wxv * wyi[y];
                double r2xy = dx2 + dyi[y] * dyi[y];
                uint32_t fxy = (fx + (uint32_t)iyi[y]) * (uint32_t)mz;
                for (int64_t z = 0; z < kz; z++) {
                    double r2 = r2xy + dzi[z] * dzi[z];
                    *wv++ = (r2 <= c2) ? wxy * wzi[z] : 0.0;
                    *fl++ = (int32_t)(fxy + (uint32_t)izi[z]);
                }
            }
        }
    }
}

static rk_mp_arg rk_mp_pack(int64_t n, int64_t kx, int64_t ky, int64_t kz,
                            const double *wxn, const double *wy,
                            const double *wz, const double *dx,
                            const double *dy, const double *dz,
                            const int32_t *ix, const int32_t *iy,
                            const int32_t *iz, int64_t my, int64_t mz,
                            double c2, double *w, int32_t *flat)
{
    rk_mp_arg a;
    a.n = n; a.kx = kx; a.ky = ky; a.kz = kz; a.my = my; a.mz = mz;
    a.wxn = wxn; a.wy = wy; a.wz = wz; a.dx = dx; a.dy = dy; a.dz = dz;
    a.ix = ix; a.iy = iy; a.iz = iz; a.c2 = c2; a.w = w; a.flat = flat;
    return a;
}

void rk_mesh_plan(int64_t n, int64_t kx, int64_t ky, int64_t kz,
                  const double *wxn, const double *wy, const double *wz,
                  const double *dx, const double *dy, const double *dz,
                  const int32_t *ix, const int32_t *iy, const int32_t *iz,
                  int64_t my, int64_t mz, double c2,
                  double *w, int32_t *flat)
{
    rk_mp_arg a = rk_mp_pack(n, kx, ky, kz, wxn, wy, wz, dx, dy, dz,
                             ix, iy, iz, my, mz, c2, w, flat);
    rk_mesh_plan_range(&a, 0, n);
}

static void rk_mesh_plan_task(void *p, int64_t tid, int64_t nt)
{
    const rk_mp_arg *a = (const rk_mp_arg *)p;
    int64_t lo, hi;
    rk_chunk(a->n, tid, nt, &lo, &hi);
    rk_mesh_plan_range(a, lo, hi);
}

void rk_mesh_plan_mt(int64_t n, int64_t kx, int64_t ky, int64_t kz,
                     const double *wxn, const double *wy, const double *wz,
                     const double *dx, const double *dy, const double *dz,
                     const int32_t *ix, const int32_t *iy,
                     const int32_t *iz, int64_t my, int64_t mz, double c2,
                     double *w, int32_t *flat, int64_t nthreads)
{
    rk_mp_arg a = rk_mp_pack(n, kx, ky, kz, wxn, wy, wz, dx, dy, dz,
                             ix, iy, iz, my, mz, c2, w, flat);
    if (nthreads <= 1 || n < nthreads) {
        rk_mesh_plan_range(&a, 0, n);
        return;
    }
    rk_run(rk_mesh_plan_task, &a, nthreads);
}
