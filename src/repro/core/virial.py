"""Virials and pressure (Figure 4c; paper Section 4).

Figure 4c shows 86-bit multiply/accumulators "used in the computation
of virials (the large bit widths allow Anton to guarantee determinism
and parallel invariance for pressure-controlled simulations)".  This
module reproduces the scheme functionally: per-interaction scalar
virial contributions are quantized once against a wide fixed-point
codec and summed with exact integer arithmetic, so the pressure — like
the forces — is independent of how work is distributed.

Conventions: the scalar (internal) virial is ``W = sum_pairs r_ij . F_ij``
over all pairwise interactions plus the k-space Coulomb term (for
which homogeneity gives ``W_k = E_k`` exactly), in kcal/mol.  The
instantaneous pressure is ``P = (2 KE + W) / (3 V)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forces import ForceCalculator
from repro.fixedpoint import FixedFormat, ScaledFixed, wrapping_sum

__all__ = ["VirialReport", "virial_codec", "compute_virial", "instantaneous_pressure", "BAR_PER_KCAL_MOL_A3"]

#: Unit conversion: 1 kcal/mol/A^3 = 69476.95 bar.
BAR_PER_KCAL_MOL_A3: float = 69476.95


def virial_codec(bits: int = 52, limit: float = 2.0**21) -> ScaledFixed:
    """The wide virial accumulator format.

    Anton uses 86-bit hardware accumulators; our int64 substrate caps
    the format at 62 bits, so we model the *semantics* (wide enough
    that quantization is far below physical noise: resolution
    ~1e-9 kcal/mol at the default width against a +/-2M kcal/mol
    range).
    """
    return ScaledFixed(FixedFormat(bits), limit=limit)


@dataclass(frozen=True)
class VirialReport:
    """Scalar virial decomposition of one configuration (kcal/mol)."""

    pair: float       # range-limited LJ + real-space Coulomb
    bonded: float
    correction: float
    kspace: float     # = E_k by Coulomb homogeneity

    @property
    def total(self) -> float:
        return self.pair + self.bonded + self.correction + self.kspace


def _pair_virial(dx: np.ndarray, force: np.ndarray) -> np.ndarray:
    """Per-pair r . F contributions."""
    return np.sum(dx * force, axis=1)


def compute_virial(
    calc: ForceCalculator, positions: np.ndarray, codec: ScaledFixed | None = None
) -> VirialReport:
    """Scalar virial of a configuration.

    With ``codec`` set, every contribution is quantized and integer-
    summed (the Figure 4c order-invariance scheme); otherwise plain
    float accumulation.
    """

    def reduce(contribs: np.ndarray) -> float:
        if codec is None:
            return float(np.sum(contribs))
        codes = codec.quantize_round_only(contribs)
        return float(codec.reconstruct(wrapping_sum(codes, codec.fmt)))

    s = calc.system
    box = s.box

    nb = calc._range_limited(positions)
    dx_nb = box.minimum_image(positions[nb.i] - positions[nb.j])
    w_pair = reduce(_pair_virial(dx_nb, nb.force))

    w_bonded_parts = []
    for contrib in calc._bonded(positions):
        if not contrib.n_terms:
            continue
        # Relative coordinates w.r.t. each term's first atom (any
        # reference works: per-term forces sum to zero).
        ref = positions[contrib.idx[:, 0]][:, None, :]
        rel = box.minimum_image(positions[contrib.idx] - ref)
        w_bonded_parts.append(np.sum(rel * contrib.force, axis=(1, 2)))
    w_bonded = reduce(np.concatenate(w_bonded_parts)) if w_bonded_parts else 0.0

    corr = calc._corrections(positions)
    if corr.n_pairs:
        dx = box.minimum_image(positions[corr.i] - positions[corr.j])
        w_corr = reduce(_pair_virial(dx, corr.force))
    else:
        w_corr = 0.0

    if calc.gse is not None:
        e_k, _f = calc.gse.kspace(positions, s.charges, codec=calc.mesh_codec)
    else:
        e_k = 0.0

    return VirialReport(pair=w_pair, bonded=w_bonded, correction=w_corr, kspace=float(e_k))


def instantaneous_pressure(kinetic_energy: float, virial_total: float, volume: float) -> float:
    """Pressure in bar from KE and the scalar virial (kcal/mol, A^3)."""
    p_internal = (2.0 * kinetic_energy + virial_total) / (3.0 * volume)
    return p_internal * BAR_PER_KCAL_MOL_A3
