"""Berendsen temperature control (the paper's BPTI run used it)."""

from __future__ import annotations

import math

__all__ = ["BerendsenThermostat"]


class BerendsenThermostat:
    """Weak-coupling velocity rescaling.

    ``lambda = sqrt(1 + (dt/tau) (T0/T - 1))``, clamped to avoid
    violent rescaling when the instantaneous temperature is far from
    the target (e.g. the first steps of a cold start).

    The thermostat is a callable taking the integrator, so it plugs
    into both the fixed-point and float paths.  Note the paper's
    reversibility claim explicitly excludes thermostatted runs.
    """

    def __init__(self, temperature: float, tau: float = 1000.0, clamp: float = 0.1):
        if temperature <= 0 or tau <= 0:
            raise ValueError("temperature and tau must be positive")
        self.temperature = float(temperature)
        self.tau = float(tau)
        self.clamp = float(clamp)

    def __call__(self, integrator) -> float:
        t_now = integrator.temperature()
        if t_now <= 0:
            return 1.0
        arg = 1.0 + (integrator.dt / self.tau) * (self.temperature / t_now - 1.0)
        lam = math.sqrt(max(arg, 0.0))
        return min(max(lam, 1.0 - self.clamp), 1.0 + self.clamp)
