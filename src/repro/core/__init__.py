"""Core MD engine: system state, fixed-point and float integrators,
constraints, thermostats, force orchestration, and the Simulation
driver."""

from repro.core.barostat import BerendsenBarostat, NPTRecord, run_npt
from repro.core.constraints import ConstraintSolver
from repro.core.forces import ForceCalculator, ForceReport, MDParams, MTSForceProvider
from repro.core.integrator import (
    FixedPointConfig,
    FixedPointIntegrator,
    PositionCodec,
    VelocityVerlet,
)
from repro.core.simulation import EnergyRecord, Simulation, minimize_energy
from repro.core.system import ChemicalSystem
from repro.core.thermostat import BerendsenThermostat
from repro.core.virial import (
    VirialReport,
    compute_virial,
    instantaneous_pressure,
    virial_codec,
)

__all__ = [
    "BerendsenBarostat",
    "NPTRecord",
    "run_npt",
    "VirialReport",
    "compute_virial",
    "instantaneous_pressure",
    "virial_codec",
    "ConstraintSolver",
    "ForceCalculator",
    "ForceReport",
    "MDParams",
    "MTSForceProvider",
    "FixedPointConfig",
    "FixedPointIntegrator",
    "PositionCodec",
    "VelocityVerlet",
    "EnergyRecord",
    "Simulation",
    "minimize_energy",
    "ChemicalSystem",
    "BerendsenThermostat",
]
