"""Berendsen pressure coupling (NPT) on the float path.

Pressure-controlled simulation is the use case Figure 4c's wide virial
accumulators exist for.  We implement Berendsen weak coupling: every
``scale_every`` steps the box and coordinates are rescaled by

    mu = (1 - (dt_eff / tau) * kappa * (P0 - P))^(1/3)

Rescaling the box invalidates the mesh Green's function and the
position codec, so NPT runs are driven by :func:`run_npt`, which
rebuilds the simulation at each coupling point and carries the
dynamic state across — the float64 path only (the paper likewise
exempts pressure-controlled runs from the exact-reversibility
guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.forces import ForceCalculator, MDParams
from repro.core.simulation import Simulation
from repro.core.system import ChemicalSystem
from repro.core.virial import compute_virial, instantaneous_pressure
from repro.geometry import Box

__all__ = ["BerendsenBarostat", "NPTRecord", "run_npt"]


@dataclass(frozen=True)
class NPTRecord:
    """One pressure-coupling event."""

    step: int
    pressure_bar: float
    box_side: float
    scale: float


@dataclass
class BerendsenBarostat:
    """Weak-coupling barostat parameters.

    ``compressibility`` is in 1/bar (water: ~4.5e-5); ``tau`` in fs.
    ``max_scale`` clamps each rescale step (robustness against noisy
    instantaneous pressures of small systems).
    """

    pressure_bar: float = 1.0
    tau: float = 1000.0
    compressibility: float = 4.5e-5
    max_scale: float = 0.01

    def scale_factor(self, pressure_bar: float, dt_eff: float) -> float:
        arg = 1.0 - (dt_eff / self.tau) * self.compressibility * (
            self.pressure_bar - pressure_bar
        )
        # arg <= 0 means a (clamped) maximal shrink, not a no-op.
        mu = arg ** (1.0 / 3.0) if arg > 0 else 0.0
        return float(np.clip(mu, 1.0 - self.max_scale, 1.0 + self.max_scale))


def run_npt(
    system: ChemicalSystem,
    params: MDParams,
    barostat: BerendsenBarostat,
    dt: float = 2.5,
    n_steps: int = 1000,
    scale_every: int = 20,
    thermostat=None,
) -> list[NPTRecord]:
    """Run NPT dynamics; mutates ``system`` (positions/velocities/box).

    Returns the pressure-coupling log.  The density responds on the
    barostat's time scale: boxes above the target pressure expand,
    compressed ones relax.
    """
    records: list[NPTRecord] = []
    steps_done = 0
    while steps_done < n_steps:
        chunk = min(scale_every, n_steps - steps_done)
        sim = Simulation(system, params, dt=dt, mode="float", thermostat=thermostat)
        sim.run(chunk)
        steps_done += chunk
        system.positions = sim.integrator.positions.copy()
        system.velocities = sim.integrator.velocities.copy()

        calc = ForceCalculator(system, params)
        w = compute_virial(calc, system.positions)
        p = instantaneous_pressure(system.kinetic_energy(), w.total, system.box.volume)
        mu = barostat.scale_factor(p, dt_eff=chunk * dt)
        if mu != 1.0:
            new_box = Box(system.box.lengths * mu)
            system.positions = system.positions * mu
            system.box = new_box
        records.append(
            NPTRecord(
                step=steps_done,
                pressure_bar=p,
                box_side=float(system.box.lengths[0]),
                scale=mu,
            )
        )
    return records
