"""High-level simulation driver.

Wires a :class:`ChemicalSystem` to a force calculator, constraint
solver, thermostat, and integrator (fixed-point or float), and runs
time steps while recording energies and optional trajectory snapshots.
Also provides steepest-descent minimization for system preparation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constraints import ConstraintSolver
from repro.core.forces import ForceCalculator, MDParams, MTSForceProvider
from repro.core.integrator import FixedPointConfig, FixedPointIntegrator, VelocityVerlet
from repro.core.system import ChemicalSystem
from repro.io import TrajectoryWriter, check_fingerprint, system_fingerprint

__all__ = ["EnergyRecord", "Simulation", "minimize_energy"]


@dataclass(frozen=True)
class EnergyRecord:
    """One row of the energy log."""

    step: int
    time_fs: float
    kinetic: float
    potential: float
    temperature: float

    @property
    def total(self) -> float:
        return self.kinetic + self.potential


def minimize_energy(
    system: ChemicalSystem,
    params: MDParams = MDParams(),
    max_steps: int = 200,
    initial_step: float = 0.02,
    force_tolerance: float = 10.0,
) -> float:
    """Steepest-descent minimization (system preparation).

    Moves atoms along the normalized force direction with an adaptive
    step, writing relaxed positions back into ``system``.  Returns the
    final potential energy.  Virtual sites follow their parents, and
    rigid constraints (which carry no bonded-term restoring force) are
    re-imposed with SHAKE after every move.
    """
    calc = ForceCalculator(system, params)
    solver = None
    if system.topology.n_constraints:
        solver = ConstraintSolver(system.topology, system.masses, system.box, iterations=100)
    pos = system.box.wrap(system.positions.copy())
    if solver is not None:
        solver.shake(pos, pos)
    system.place_virtual_sites(pos)
    report = calc.compute(pos)
    energy = report.potential_energy
    step = initial_step
    for _ in range(max_steps):
        fmax = float(np.max(np.abs(report.forces)))
        if fmax < force_tolerance:
            break
        trial = pos + report.forces / max(fmax, 1e-12) * step
        if solver is not None:
            solver.shake(trial, pos)
        trial = system.box.wrap(trial)
        system.place_virtual_sites(trial)
        trial_report = calc.compute(trial)
        if trial_report.potential_energy < energy:
            pos, report, energy = trial, trial_report, trial_report.potential_energy
            step = min(step * 1.2, 0.5)
        else:
            step *= 0.5
            if step < 1e-6:
                break
    system.positions = pos
    return energy


class Simulation:
    """One runnable MD simulation.

    Parameters
    ----------
    mode:
        ``"fixed"`` — Anton-numerics path (fixed-point state, integer
        force accumulation); ``"float"`` — conventional float64 path.
    constraints:
        ``True`` builds a solver from the topology's constraint list
        (rigid water, H-bond constraints); ``False`` integrates
        unconstrained (required for exact-reversibility experiments).
    """

    def __init__(
        self,
        system: ChemicalSystem,
        params: MDParams = MDParams(),
        dt: float = 2.5,
        mode: str = "fixed",
        fixed_config: FixedPointConfig = FixedPointConfig(),
        thermostat=None,
        constraints: bool = True,
    ):
        self.system = system
        self.params = params
        self.dt = float(dt)
        self.mode = mode
        self.fixed_config = fixed_config
        self.calc = ForceCalculator(system, params)
        solver = None
        if constraints and system.topology.n_constraints:
            solver = ConstraintSolver(system.topology, system.masses, system.box)
        self.constraint_solver = solver
        if mode == "fixed":
            self.provider = MTSForceProvider(self.calc, force_codec=fixed_config.force_codec())
            self.integrator = FixedPointIntegrator(
                system,
                self.provider,
                dt,
                config=fixed_config,
                constraints=solver,
                thermostat=thermostat,
                timers=self.calc.timers,
            )
        elif mode == "float":
            self.provider = MTSForceProvider(self.calc)
            self.integrator = VelocityVerlet(
                system, self.provider, dt, constraints=solver, thermostat=thermostat
            )
        else:
            raise ValueError(f"unknown mode {mode!r}")
        self.energy_log: list[EnergyRecord] = []
        self.snapshots: list[np.ndarray] = []
        self.snapshot_steps: list[int] = []

    # -- state views ------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        return self.integrator.positions

    @property
    def timers(self):
        """Per-component wall-time counters of the force calculator."""
        return self.calc.timers

    @property
    def velocities(self) -> np.ndarray:
        return self.integrator.velocities

    def record_energy(self) -> EnergyRecord:
        ke = self.integrator.kinetic_energy()
        pe = float(sum(self.integrator.last_info.energies.values()))
        rec = EnergyRecord(
            step=self.integrator.step_count,
            time_fs=self.integrator.step_count * self.dt,
            kinetic=ke,
            potential=pe,
            temperature=self.integrator.temperature(),
        )
        self.energy_log.append(rec)
        return rec

    # -- checkpointing ------------------------------------------------------

    def fingerprint(self) -> dict:
        """Run identity embedded in checkpoints/trajectories.

        Validated on :meth:`restore`: atom count, hashed static system
        arrays, force-parameter hash (minus the bitwise-irrelevant
        neighbor-list skin), mode, dt, and — on the fixed path — the
        integrator datapath widths.
        """
        return system_fingerprint(
            self.system,
            self.params,
            self.mode,
            self.dt,
            self.fixed_config if self.mode == "fixed" else None,
        )

    def checkpoint(self) -> dict:
        """Snapshot the exact dynamic state.

        For the fixed-point path the snapshot holds the raw integer
        state, so a restored simulation continues *bit-for-bit* — the
        property that let the paper's multi-month BPTI run survive
        interruptions without perturbing the trajectory.
        """
        chk = {
            "mode": self.mode,
            "dt": self.dt,
            "step_count": self.integrator.step_count,
            "provider_calls": self.provider.calls,
            "fingerprint": self.fingerprint(),
        }
        if self.mode == "fixed":
            chk["X"], chk["V"] = self.integrator.state_codes()
        else:
            chk["positions"] = self.integrator.positions.copy()
            chk["velocities"] = self.integrator.velocities.copy()
        return chk

    def restore(self, chk: dict) -> None:
        """Resume from a checkpoint taken on a compatible simulation.

        The force cache is rebuilt by replaying the evaluation the
        original run performed at this state (same MTS phase), so the
        next step is identical to what the original would have taken.
        The buffered neighbor list needs no state in the checkpoint:
        its displacement trigger rebuilds it automatically if the
        restored positions have drifted past ``skin/2`` from the list's
        reference configuration, and the pair set it yields is a pure
        function of the current positions either way.
        """
        if chk["mode"] != self.mode or chk["dt"] != self.dt:
            raise ValueError("checkpoint is for a different mode or time step")
        stored = chk.get("fingerprint")
        if stored is not None:
            check_fingerprint(stored, self.fingerprint(), what="checkpoint")
        elif chk.get("X", chk.get("positions")) is not None and (
            len(chk.get("X", chk.get("positions"))) != self.system.n_atoms
        ):
            raise ValueError(
                f"checkpoint holds {len(chk.get('X', chk.get('positions')))} atoms, "
                f"this simulation has {self.system.n_atoms}"
            )
        integ = self.integrator
        if self.mode == "fixed":
            integ.X = chk["X"].copy()
            integ.V = chk["V"].copy()
        else:
            integ.positions = chk["positions"].copy()
            integ.velocities = chk["velocities"].copy()
        integ.step_count = chk["step_count"]
        # Replay the force evaluation that produced the cached forces
        # (the constructor already consumed one provider call).
        self.provider.calls = chk["provider_calls"] - 1
        if self.mode == "fixed":
            integ._force_codes, integ.last_info = self.provider(integ.positions)
        else:
            integ._forces, integ.last_info = self.provider(integ.positions)

    # -- trajectory output ---------------------------------------------------

    def open_trajectory(self, path, meta: dict | None = None) -> TrajectoryWriter:
        """A :class:`TrajectoryWriter` configured for this run.

        The header carries the fingerprint plus the decode parameters
        (datapath widths, box) a reader needs to reconstruct physical
        positions/velocities bit-exactly without the system objects.
        """
        if self.mode == "fixed":
            cfg = self.fixed_config
            decode = {
                "storage": "codes",
                "position_bits": cfg.position_bits,
                "box": [float(x) for x in self.system.box.lengths],
                "velocity_bits": cfg.velocity_bits,
                "velocity_limit": cfg.velocity_limit,
            }
        else:
            decode = {
                "storage": "float",
                "box": [float(x) for x in self.system.box.lengths],
            }
        return TrajectoryWriter(path, fingerprint=self.fingerprint(),
                                decode=decode, meta=meta)

    def append_trajectory(self, path) -> TrajectoryWriter:
        """Reopen ``path`` for resumed writing.

        Frames past the current step (written by an interrupted run
        after its last durable checkpoint) and any torn tail are
        truncated, so the finished file is identical to one from an
        uninterrupted run.
        """
        return TrajectoryWriter.append(
            path, fingerprint=self.fingerprint(),
            resume_step=self.integrator.step_count,
        )

    def write_frame(self, writer: TrajectoryWriter) -> None:
        """Append the current exact state as one frame."""
        if self.mode == "fixed":
            X, V = self.integrator.state_codes()
            arrays = {"X": X, "V": V}
        else:
            arrays = {
                "positions": self.integrator.positions.copy(),
                "velocities": self.integrator.velocities.copy(),
            }
        step = self.integrator.step_count
        writer.write_frame(step, step * self.dt, arrays)

    def run(
        self,
        n_steps: int,
        record_every: int = 0,
        snapshot_every: int = 0,
        energy_writer=None,
        trajectory: TrajectoryWriter | None = None,
        trajectory_every: int = 0,
        checkpoint_store=None,
        checkpoint_every: int = 0,
    ) -> list[EnergyRecord]:
        """Advance ``n_steps``; returns the records appended this call.

        ``record_every`` / ``snapshot_every`` of 0 disable logging.
        With MTS, meaningful total-energy records need ``record_every``
        to be a multiple of ``params.long_range_every``.

        ``energy_writer`` streams each energy record as it is taken
        (an :class:`~repro.io.EnergyLogWriter`).  ``trajectory`` /
        ``checkpoint_store`` persist frames and rolling snapshots every
        ``trajectory_every`` / ``checkpoint_every`` steps; their cadence
        is keyed to the *global* step count, so a resumed run writes at
        exactly the steps the uninterrupted run would have.
        """
        start = len(self.energy_log)
        for i in range(n_steps):
            self.integrator.step()
            done = i + 1
            step = self.integrator.step_count
            if record_every and done % record_every == 0:
                rec = self.record_energy()
                if energy_writer is not None:
                    energy_writer.write(rec)
            if snapshot_every and done % snapshot_every == 0:
                self.snapshots.append(self.positions.copy())
                self.snapshot_steps.append(step)
            if trajectory is not None and trajectory_every and step % trajectory_every == 0:
                self.write_frame(trajectory)
            if checkpoint_store is not None and checkpoint_every and step % checkpoint_every == 0:
                checkpoint_store.save(self.checkpoint(), step)
        return self.energy_log[start:]
