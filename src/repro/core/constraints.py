"""SHAKE/RATTLE distance constraints (paper Section 3.2.4).

"Most MD simulations can be accelerated by incorporating constraints
during integration that fix the lengths of bonds to hydrogen atoms as
well as angles between certain bonds."

Implementation: Gauss–Seidel SHAKE with *constraint coloring*.  The
constraints are greedily partitioned into batches that share no atoms,
so each batch updates vectorized and exactly (not Jacobi-approximately),
while successive batches see each other's corrections — the ordering
that gives classic SHAKE its fast linear convergence.  The coloring is
deterministic (greedy in constraint order), so results are bitwise
reproducible and independent of how constraint groups are distributed
over simulated nodes.

With a compiled kernel suite (``kernels=`` from :mod:`repro.kernels`),
the sweeps run in C over the same flattened batch order with the same
operation ordering — bitwise identical, without the per-iteration
Python/NumPy dispatch that dominates at rigid-water batch sizes.
"""

from __future__ import annotations

import numpy as np

from repro.forcefield import Topology
from repro.geometry import Box

__all__ = ["ConstraintSolver"]


def _color_constraints(idx: np.ndarray) -> list[np.ndarray]:
    """Greedy partition of constraints into atom-disjoint batches."""
    batches: list[list[int]] = []
    batch_atoms: list[set[int]] = []
    for c, (i, j) in enumerate(idx):
        i, j = int(i), int(j)
        for b, atoms in enumerate(batch_atoms):
            if i not in atoms and j not in atoms:
                batches[b].append(c)
                atoms.add(i)
                atoms.add(j)
                break
        else:
            batches.append([c])
            batch_atoms.append({i, j})
    return [np.array(b, dtype=np.int64) for b in batches]


class ConstraintSolver:
    """Iterative SHAKE (positions) and RATTLE (velocities).

    Parameters
    ----------
    iterations:
        Maximum Gauss–Seidel sweeps.  Rigid water converges at ~0.4 per
        sweep even from large perturbations; MD-step displacements
        reach 1e-12 well inside the default.
    """

    def __init__(
        self,
        topology: Topology,
        masses: np.ndarray,
        box: Box,
        iterations: int = 40,
        kernels=None,
    ):
        topology.compile()
        self.idx = topology.constraint_idx
        self.dist = topology.constraint_dist
        self.box = box
        self.iterations = iterations
        inv = np.zeros_like(np.asarray(masses, dtype=np.float64))
        m = np.asarray(masses, dtype=np.float64)
        inv[m > 0] = 1.0 / m[m > 0]
        self.inv_mass = inv
        if len(self.idx):
            i, j = self.idx[:, 0], self.idx[:, 1]
            if np.any(self.inv_mass[i] + self.inv_mass[j] == 0):
                raise ValueError("constraint between two massless atoms")
        self.batches = _color_constraints(self.idx)
        self.kernels = kernels
        self._c_arrays = None

    @property
    def n_constraints(self) -> int:
        return len(self.idx)

    @property
    def n_colors(self) -> int:
        return len(self.batches)

    # -- compiled-tier support -------------------------------------------

    def _compiled_arrays(self):
        """Flattened, C-contiguous constraint data for the C sweeps.

        Built once: constraint endpoints, squared target distances,
        inverse masses, box lengths, the coloring flattened to a single
        ``order`` array with batch prefix ``starts``, plus persistent
        scratch for the reference/current displacement tables — so
        steady-state constraint solves allocate nothing.
        """
        if not self.n_constraints:
            return None
        if self._c_arrays is None:
            ncon = self.n_constraints
            order = np.ascontiguousarray(np.concatenate(self.batches))
            starts = np.zeros(len(self.batches) + 1, dtype=np.int64)
            np.cumsum([len(b) for b in self.batches], out=starts[1:])
            self._c_arrays = (
                np.ascontiguousarray(self.idx[:, 0], dtype=np.int64),
                np.ascontiguousarray(self.idx[:, 1], dtype=np.int64),
                np.ascontiguousarray(self.dist**2, dtype=np.float64),
                np.ascontiguousarray(self.inv_mass, dtype=np.float64),
                np.ascontiguousarray(self.box.lengths, dtype=np.float64),
                order,
                starts,
                np.empty((ncon, 3), dtype=np.float64),  # dref scratch
                np.empty((ncon, 3), dtype=np.float64),  # dx_all scratch
                np.empty(ncon, dtype=np.float64),  # d2_all scratch
            )
        return self._c_arrays

    @staticmethod
    def _c_ready(a: np.ndarray) -> bool:
        return a.dtype == np.float64 and a.flags["C_CONTIGUOUS"]

    def shake(
        self, positions: np.ndarray, reference: np.ndarray, tol: float = 1e-10
    ) -> np.ndarray:
        """Project ``positions`` onto the constraint manifold (in place).

        ``reference`` supplies the pre-drift constraint directions, as
        in classic SHAKE.
        """
        if not self.n_constraints:
            return positions
        k = self.kernels
        if k is not None and k.tier == "compiled" and self._c_ready(positions):
            return k.shake(self, positions, reference, tol)
        return self._shake_numpy(positions, reference, tol)

    def _shake_numpy(
        self, positions: np.ndarray, reference: np.ndarray, tol: float = 1e-10
    ) -> np.ndarray:
        if not self.n_constraints:
            return positions
        all_i, all_j = self.idx[:, 0], self.idx[:, 1]
        d2 = self.dist**2
        dref = self.box.minimum_image(reference[all_i] - reference[all_j])
        inv = self.inv_mass
        for _ in range(self.iterations):
            dx = self.box.minimum_image(positions[all_i] - positions[all_j])
            if np.max(np.abs(np.sum(dx * dx, axis=1) - d2)) < tol:
                break
            for b in self.batches:
                i, j = all_i[b], all_j[b]
                dxb = self.box.minimum_image(positions[i] - positions[j])
                diff = np.sum(dxb * dxb, axis=1) - d2[b]
                denom = 2.0 * (inv[i] + inv[j]) * np.sum(dxb * dref[b], axis=1)
                # Guard the (unphysical at MD step sizes) perpendicular-
                # drift singularity.
                denom = np.where(np.abs(denom) < 1e-12, 1e-12, denom)
                g = diff / denom
                corr = g[:, None] * dref[b]
                positions[i] -= inv[i][:, None] * corr
                positions[j] += inv[j][:, None] * corr
        return positions

    def rattle(self, velocities: np.ndarray, positions: np.ndarray, tol: float = 1e-12) -> np.ndarray:
        """Remove velocity components along constraints (in place)."""
        if not self.n_constraints:
            return velocities
        k = self.kernels
        if k is not None and k.tier == "compiled" and self._c_ready(velocities):
            return k.rattle(self, velocities, positions, tol)
        return self._rattle_numpy(velocities, positions, tol)

    def _rattle_numpy(
        self, velocities: np.ndarray, positions: np.ndarray, tol: float = 1e-12
    ) -> np.ndarray:
        if not self.n_constraints:
            return velocities
        all_i, all_j = self.idx[:, 0], self.idx[:, 1]
        dx_all = self.box.minimum_image(positions[all_i] - positions[all_j])
        d2_all = np.sum(dx_all * dx_all, axis=1)
        inv = self.inv_mass
        for _ in range(self.iterations):
            dv = velocities[all_i] - velocities[all_j]
            if np.max(np.abs(np.sum(dx_all * dv, axis=1))) < tol:
                break
            for b in self.batches:
                i, j = all_i[b], all_j[b]
                dx = dx_all[b]
                rv = np.sum(dx * (velocities[i] - velocities[j]), axis=1)
                k = rv / ((inv[i] + inv[j]) * d2_all[b])
                corr = k[:, None] * dx
                velocities[i] -= inv[i][:, None] * corr
                velocities[j] += inv[j][:, None] * corr
        return velocities

    def max_residual(self, positions: np.ndarray) -> float:
        """Largest |r² - d²| over all constraints (diagnostic)."""
        if not self.n_constraints:
            return 0.0
        i, j = self.idx[:, 0], self.idx[:, 1]
        dx = self.box.minimum_image(positions[i] - positions[j])
        return float(np.max(np.abs(np.sum(dx * dx, axis=1) - self.dist**2)))
