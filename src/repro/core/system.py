"""The chemical system: state + static description of one simulation.

A :class:`ChemicalSystem` bundles the dynamic state (positions,
velocities) with everything static (masses, charges, LJ types,
topology, box, exclusions).  It also owns virtual-site bookkeeping —
placing massless sites from their parents and redistributing their
forces — which both the single-process and simulated-machine paths
share.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.forcefield import ExclusionTable, LJTable, Topology, build_exclusions
from repro.geometry import Box
from repro.util import ACCEL_UNIT, BOLTZMANN, make_rng

__all__ = ["ChemicalSystem"]


@dataclass
class ChemicalSystem:
    """State and parameters of a molecular system.

    ``meta`` carries builder-provided annotations used by the
    performance model and benchmarks (e.g. ``n_protein_atoms``,
    ``n_water_molecules``, ``name``).
    """

    box: Box
    positions: np.ndarray
    masses: np.ndarray
    charges: np.ndarray
    type_ids: np.ndarray
    lj: LJTable
    topology: Topology
    velocities: np.ndarray | None = None
    exclusions: ExclusionTable | None = None
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        n = len(self.positions)
        self.positions = np.asarray(self.positions, dtype=np.float64).reshape(n, 3)
        self.masses = np.asarray(self.masses, dtype=np.float64)
        self.charges = np.asarray(self.charges, dtype=np.float64)
        self.type_ids = np.asarray(self.type_ids, dtype=np.int64)
        for name, arr in (("masses", self.masses), ("charges", self.charges), ("type_ids", self.type_ids)):
            if len(arr) != n:
                raise ValueError(f"{name} has {len(arr)} entries for {n} atoms")
        if self.topology.n_atoms != n:
            raise ValueError("topology atom count mismatch")
        self.topology.compile()
        if self.velocities is None:
            self.velocities = np.zeros((n, 3))
        self.velocities = np.asarray(self.velocities, dtype=np.float64).reshape(n, 3)
        if self.exclusions is None:
            self.exclusions = build_exclusions(self.topology)
        if np.any(self.masses < 0):
            raise ValueError("negative mass")
        vsites = set(self.topology.vsite_idx[:, 0].tolist())
        massless = set(np.nonzero(self.masses == 0)[0].tolist())
        if massless != vsites:
            raise ValueError("massless atoms must be exactly the virtual sites")

    # -- sizes -----------------------------------------------------------

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def massive(self) -> np.ndarray:
        """Boolean mask of atoms that carry mass (non-virtual sites)."""
        return self.masses > 0

    @property
    def n_dof(self) -> int:
        """Degrees of freedom: 3 per massive atom, minus constraints,
        minus 3 for conserved center-of-mass momentum."""
        return 3 * int(np.count_nonzero(self.massive)) - self.topology.n_constraints - 3

    # -- energetics --------------------------------------------------------

    def kinetic_energy(self, velocities: np.ndarray | None = None) -> float:
        """KE in kcal/mol (velocities in A/fs)."""
        v = self.velocities if velocities is None else velocities
        return 0.5 * float(np.sum(self.masses[:, None] * v * v)) / ACCEL_UNIT

    def temperature(self, velocities: np.ndarray | None = None) -> float:
        """Instantaneous temperature in K."""
        return 2.0 * self.kinetic_energy(velocities) / (self.n_dof * BOLTZMANN)

    # -- virtual sites --------------------------------------------------------

    def place_virtual_sites(self, positions: np.ndarray) -> np.ndarray:
        """Set vsite rows of ``positions`` from their parents (in place).

        ``r_s = r_p + w (r_1 - r_p) + w (r_2 - r_p)`` with minimum-image
        differences so molecules straddling the boundary stay intact.
        """
        top = self.topology
        if not len(top.vsite_idx):
            return positions
        s, p, r1, r2 = (top.vsite_idx[:, c] for c in range(4))
        w = top.vsite_weight[:, None]
        d1 = self.box.minimum_image(positions[r1] - positions[p])
        d2 = self.box.minimum_image(positions[r2] - positions[p])
        positions[s] = positions[p] + w * d1 + w * d2
        return positions

    def spread_virtual_site_forces(self, forces: np.ndarray) -> np.ndarray:
        """Redistribute vsite forces to parents (in place); zero vsite rows.

        For the linear site the transpose of the placement map:
        parent gets ``(1 - 2w) F_s``, each reference atom ``w F_s``.
        """
        top = self.topology
        if not len(top.vsite_idx):
            return forces
        s, p, r1, r2 = (top.vsite_idx[:, c] for c in range(4))
        w = top.vsite_weight[:, None]
        fs = forces[s].copy()
        forces[s] = 0.0
        np.add.at(forces, p, (1.0 - 2.0 * w) * fs)
        np.add.at(forces, r1, w * fs)
        np.add.at(forces, r2, w * fs)
        return forces

    # -- initialization ----------------------------------------------------------

    def initialize_velocities(self, temperature: float, seed: int | None = None) -> None:
        """Maxwell–Boltzmann velocities at ``temperature``.

        Virtual sites get zero velocity; net momentum is removed; the
        result is rescaled to hit the target exactly (counting
        constrained DoF approximately — a thermostat or short
        equilibration absorbs the difference).
        """
        rng = make_rng(seed)
        n = self.n_atoms
        v = np.zeros((n, 3))
        m = self.massive
        # sigma_v = sqrt(kB T / m) in A/fs.
        sig = np.sqrt(BOLTZMANN * temperature * ACCEL_UNIT / self.masses[m])
        v[m] = rng.normal(size=(int(np.count_nonzero(m)), 3)) * sig[:, None]
        # Remove center-of-mass drift.
        p_total = np.sum(self.masses[:, None] * v, axis=0)
        v[m] -= p_total / np.sum(self.masses[m])
        self.velocities = v
        t_now = self.temperature()
        if t_now > 0:
            self.velocities *= np.sqrt(temperature / t_now)

    def copy(self) -> "ChemicalSystem":
        """Deep copy of the dynamic state (static parts shared)."""
        return ChemicalSystem(
            box=self.box,
            positions=self.positions.copy(),
            masses=self.masses,
            charges=self.charges,
            type_ids=self.type_ids,
            lj=self.lj,
            topology=self.topology,
            velocities=self.velocities.copy(),
            exclusions=self.exclusions,
            meta=dict(self.meta),
        )
