"""Integrators: fixed-point velocity Verlet (Anton numerics) and a
float64 reference.

The fixed-point integrator realizes Section 4's properties:

* **Determinism** — every update is integer arithmetic on quantized
  increments.
* **Parallel invariance** — force codes arrive as order-invariant
  integer sums (see :mod:`repro.fixedpoint.accumulate`).
* **Exact reversibility** — each half-kick adds an increment that is a
  deterministic function of positions only, and the drift adds an
  increment that is a function of velocities only; round-to-nearest-
  even is odd-symmetric, so negating the velocities retraces the
  trajectory bit-for-bit (when run without constraints or temperature
  control, exactly as the paper qualifies).

Positions are stored as unsigned modular fractions of the box (torus
arithmetic *is* periodic wrapping); velocities and forces as signed
fixed point against physical bounds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.constraints import ConstraintSolver
from repro.core.system import ChemicalSystem
from repro.fixedpoint import FixedFormat, ScaledFixed, round_nearest_even
from repro.geometry import Box
from repro.util import ACCEL_UNIT

__all__ = ["FixedPointConfig", "PositionCodec", "FixedPointIntegrator", "VelocityVerlet"]


@dataclass(frozen=True)
class FixedPointConfig:
    """Bit widths and physical bounds of the integrator datapaths.

    Defaults give position resolution ~1e-11 A and velocity resolution
    ~5e-13 A/fs — comfortably below thermal scales, in the spirit of
    Anton's wide integration datapaths (its arithmetic pipelines are
    narrower; see Figure 4 and :mod:`repro.functions`).
    """

    position_bits: int = 40
    velocity_bits: int = 40
    velocity_limit: float = 0.25  # A/fs; ~16 thermal sigmas for hydrogen
    force_bits: int = 40
    force_limit: float = 8192.0  # kcal/mol/A

    def force_codec(self) -> ScaledFixed:
        return ScaledFixed(FixedFormat(self.force_bits), self.force_limit)

    def velocity_codec(self) -> ScaledFixed:
        return ScaledFixed(FixedFormat(self.velocity_bits), self.velocity_limit)


class PositionCodec:
    """Positions as unsigned modular fractions of the periodic box.

    A coordinate x maps to ``round(x / L * 2**bits) mod 2**bits``; the
    torus wrap of the integer code is exactly the periodic boundary
    condition, so drift never needs a separate wrapping pass.
    """

    def __init__(self, box: Box, bits: int = 40):
        if not 8 <= bits <= 62:
            raise ValueError("position bits must be in [8, 62]")
        self.box = box
        self.bits = bits
        self.modulus = np.int64(1) << np.int64(bits)
        self.scale = float(self.modulus) / box.lengths  # codes per A, per axis

    @property
    def resolution(self) -> np.ndarray:
        """Physical size of one code step per axis (A)."""
        return 1.0 / self.scale

    def encode(self, positions: np.ndarray) -> np.ndarray:
        codes = round_nearest_even(self.box.wrap(positions) * self.scale).astype(np.int64)
        return np.mod(codes, self.modulus)

    def decode(self, codes: np.ndarray) -> np.ndarray:
        return codes.astype(np.float64) / self.scale

    def advance(self, codes: np.ndarray, delta: np.ndarray) -> np.ndarray:
        """Torus-arithmetic position update."""
        with np.errstate(over="ignore"):
            return np.mod(codes + delta, self.modulus)


class FixedPointIntegrator:
    """Velocity Verlet on fixed-point state.

    Parameters
    ----------
    system:
        Supplies initial state, masses, vsite layout.
    force_fn:
        ``force_fn(positions) -> (force_codes, info)`` where
        ``force_codes`` is an int64 (n, 3) array in the config's force
        codec (an order-invariant integer sum of quantized
        contributions) and ``info`` is a dict of energies.
    dt:
        Time step in femtoseconds (the paper uses 2.5 fs).
    constraints:
        Optional :class:`ConstraintSolver`; SHAKE after drift, RATTLE
        after each kick.
    thermostat:
        Optional callable ``thermostat(integrator) -> lambda`` applied
        to velocities at the end of each step.
    timers:
        Optional :class:`~repro.perf.Timers`; when given, each step is
        recorded as a ``step`` phase with ``kick``/``drift``/``force``/
        ``thermostat`` children (and ``constraints`` nested where the
        solver runs), feeding the hierarchical profile.  Timing is
        observational only — a fresh private registry is used when none
        is supplied.
    """

    def __init__(
        self,
        system: ChemicalSystem,
        force_fn,
        dt: float,
        config: FixedPointConfig = FixedPointConfig(),
        constraints: ConstraintSolver | None = None,
        thermostat=None,
        timers=None,
    ):
        self.system = system
        self.force_fn = force_fn
        self.dt = float(dt)
        self.config = config
        self.constraints = constraints
        self.thermostat = thermostat
        if timers is None:
            # Deferred import: repro.perf pulls in the workload model,
            # which imports repro.core.
            from repro.perf import Timers

            timers = Timers()
        self.timers = timers

        self.pos_codec = PositionCodec(system.box, config.position_bits)
        self.vel_codec = config.velocity_codec()
        self.force_codec = config.force_codec()

        self.X = self.pos_codec.encode(system.positions)
        self.V = self.vel_codec.quantize(system.velocities)
        # Per-atom kick factor: force codes -> velocity-code increments.
        inv_m = np.zeros(system.n_atoms)
        m = system.massive
        inv_m[m] = 1.0 / system.masses[m]
        self._kick = (
            self.force_codec.resolution
            * (self.dt / 2.0)
            * ACCEL_UNIT
            * inv_m
            / self.vel_codec.resolution
        )[:, None]
        # Velocity codes -> position-code increments, per axis.
        self._drift = (self.vel_codec.resolution * self.dt * self.pos_codec.scale)[None, :]
        self._force_codes, self.last_info = self.force_fn(self.positions)
        self.step_count = 0

    # -- views -------------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        return self.pos_codec.decode(self.X)

    @property
    def velocities(self) -> np.ndarray:
        return self.vel_codec.reconstruct(self.V)

    def state_codes(self) -> tuple[np.ndarray, np.ndarray]:
        """Raw integer state, for bitwise trajectory comparison."""
        return self.X.copy(), self.V.copy()

    # -- dynamics -------------------------------------------------------------

    def _half_kick(self) -> None:
        dv = round_nearest_even(self._force_codes.astype(np.float64) * self._kick).astype(np.int64)
        with np.errstate(over="ignore"):
            self.V += dv
        if self.constraints is not None:
            with self.timers.time("constraints"):
                v = self.velocities
                self.constraints.rattle(v, self.positions)
                self.V = self.vel_codec.quantize(v)

    def _drift_full(self) -> None:
        dx = round_nearest_even(self.V.astype(np.float64) * self._drift).astype(np.int64)
        self.X = self.pos_codec.advance(self.X, dx)
        needs_shake = self.constraints is not None and self.constraints.n_constraints
        has_vsites = len(self.system.topology.vsite_idx) > 0
        if needs_shake or has_vsites:
            pos = self.positions
            if needs_shake:
                with self.timers.time("constraints"):
                    ref = self.pos_codec.decode(self._X_before_drift)
                    unshaken = pos.copy()
                    self.constraints.shake(pos, ref)
                    # Feed the constraint displacement back into the
                    # velocities (the RATTLE position-stage multipliers);
                    # omitting this silently drains energy every step.
                    v = self.velocities + self.system.box.minimum_image(pos - unshaken) / self.dt
                    self.V = self.vel_codec.quantize(v)
            if has_vsites:
                self.system.place_virtual_sites(pos)
            self.X = self.pos_codec.encode(pos)

    def step(self, n: int = 1) -> None:
        """Advance n velocity-Verlet steps."""
        t = self.timers
        for _ in range(n):
            with t.time("step"):
                with t.time("kick"):
                    self._half_kick()
                self._X_before_drift = self.X
                with t.time("drift"):
                    self._drift_full()
                with t.time("force"):
                    self._force_codes, self.last_info = self.force_fn(self.positions)
                with t.time("kick"):
                    self._half_kick()
                if self.thermostat is not None:
                    with t.time("thermostat"):
                        lam = self.thermostat(self)
                        # np.any handles both the scalar solo case and a
                        # per-atom (ensemble) lambda array; a replica at
                        # exactly lam == 1.0 is untouched either way
                        # since rint(float64(V) * 1.0) == V for |V| < 2^53.
                        if np.any(lam != 1.0):
                            self.V = round_nearest_even(
                                self.V.astype(np.float64) * lam
                            ).astype(np.int64)
            self.step_count += 1

    def negate_velocities(self) -> None:
        """Time reversal: flip all momenta (exact in fixed point)."""
        self.V = -self.V

    def kinetic_energy(self) -> float:
        return self.system.kinetic_energy(self.velocities)

    def temperature(self) -> float:
        return self.system.temperature(self.velocities)


class VelocityVerlet:
    """Float64 velocity Verlet — the conventional-code reference path.

    Same structure as the fixed-point integrator but with a plain
    float force function ``force_fn(positions) -> (forces, info)``.
    """

    def __init__(
        self,
        system: ChemicalSystem,
        force_fn,
        dt: float,
        constraints: ConstraintSolver | None = None,
        thermostat=None,
    ):
        self.system = system
        self.force_fn = force_fn
        self.dt = float(dt)
        self.constraints = constraints
        self.thermostat = thermostat
        self.positions = system.positions.copy()
        self.velocities = system.velocities.copy()
        inv_m = np.zeros(system.n_atoms)
        m = system.massive
        inv_m[m] = 1.0 / system.masses[m]
        self._acc = (ACCEL_UNIT * inv_m)[:, None]
        self._forces, self.last_info = force_fn(self.positions)
        self.step_count = 0

    def _half_kick(self) -> None:
        self.velocities += self._forces * self._acc * (self.dt / 2.0)
        if self.constraints is not None:
            self.constraints.rattle(self.velocities, self.positions)

    def step(self, n: int = 1) -> None:
        for _ in range(n):
            self._half_kick()
            ref = self.positions.copy()
            self.positions += self.velocities * self.dt
            if self.constraints is not None and self.constraints.n_constraints:
                unshaken = self.positions.copy()
                self.constraints.shake(self.positions, ref)
                # RATTLE position-stage velocity correction.
                self.velocities += (self.positions - unshaken) / self.dt
            self.system.place_virtual_sites(self.positions)
            self.positions = self.system.box.wrap(self.positions)
            self._forces, self.last_info = self.force_fn(self.positions)
            self._half_kick()
            if self.thermostat is not None:
                lam = self.thermostat(self)
                if lam != 1.0:
                    self.velocities *= lam
            self.step_count += 1

    def kinetic_energy(self) -> float:
        return self.system.kinetic_energy(self.velocities)

    def temperature(self) -> float:
        return self.system.temperature(self.velocities)
