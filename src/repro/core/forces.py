"""Force orchestration: one object that evaluates the full force field.

Composes the substrates exactly as a time step does (Table 2's rows):

* range-limited forces (LJ + screened Coulomb, analytic or tabulated)
* charge spreading -> FFT -> convolution -> inverse FFT -> force
  interpolation (GSE)
* correction forces for excluded / 1-4 pairs
* bonded forces

and produces either dense float forces (reference path) or
order-invariant fixed-point force codes (Anton path).  Multiple
time-stepping ("long-range interactions are typically evaluated only
every two or three time steps") is provided by :class:`MTSForceProvider`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.system import ChemicalSystem
from repro.ewald import (
    GaussianSplitEwald,
    GSEParams,
    correction_forces_static,
    precompute_correction_static,
    self_energy,
)
from repro.fixedpoint import FixedAccumulator, round_nearest_even
from repro.forcefield import (
    all_bonded_forces,
    build_kernel_tables,
    nonbonded_real_space,
    nonbonded_real_space_tabulated,
    scatter_forces,
)
from repro.geometry import NeighborList

__all__ = ["MDParams", "ForceReport", "ForceCalculator", "MTSForceProvider"]


@dataclass(frozen=True)
class MDParams:
    """Tunable simulation parameters (the knobs of Table 2).

    ``cutoff``/``mesh`` trade real-space against Fourier work;
    ``kernel_mode`` selects analytic float64 kernels or the PPIP-style
    tiered tables; ``long_range_every`` is the MTS interval.
    """

    cutoff: float = 9.0
    #: Verlet-list buffer radius (A).  Pairs are cached out to
    #: ``cutoff + skin`` and the list is rebuilt only when an atom has
    #: moved more than ``skin/2`` since the last build; 0 rebuilds
    #: every evaluation.  Results are bitwise independent of the skin.
    skin: float = 2.0
    mesh: tuple[int, int, int] = (32, 32, 32)
    ewald_tolerance: float = 1e-5
    lj_mode: str = "shift_force"
    kernel_mode: str = "analytic"
    long_range_every: int = 1
    table_mantissa_bits: int = 22
    #: Fixed-point bits for mesh-charge accumulation; None keeps float
    #: spreading.  Set (e.g. 40) when bitwise parallel invariance of
    #: the mesh pipeline matters (the machine simulation requires it).
    quantize_mesh_bits: int | None = None
    #: Disable Coulomb entirely (bead models); also auto-disabled when
    #: every charge is zero.
    electrostatics: bool = True


@dataclass
class ForceReport:
    """Forces plus the per-component energy breakdown of one evaluation.

    ``timings`` holds the wall time (seconds) each component of *this*
    evaluation charged to the calculator's :class:`~repro.perf.Timers`.
    """

    forces: np.ndarray
    energies: dict = field(default_factory=dict)
    n_pairs: int = 0
    timings: dict = field(default_factory=dict)

    @property
    def potential_energy(self) -> float:
        return float(sum(self.energies.values()))


class ForceCalculator:
    """Evaluates all force-field components for one system."""

    def __init__(self, system: ChemicalSystem, params: MDParams = MDParams()):
        # Deferred import: repro.perf pulls in workload -> repro.core.
        from repro.perf.timers import Timers

        self.system = system
        self.params = params
        self.timers = Timers()
        self.neighbor_list = NeighborList(
            system.box,
            params.cutoff,
            skin=params.skin,
            exclusions=system.exclusions,
            timers=self.timers,
        )
        self.electrostatics = bool(params.electrostatics) and bool(np.any(system.charges != 0))
        if self.electrostatics:
            gse_params = GSEParams.choose(
                system.box, params.cutoff, params.mesh, real_space_tolerance=params.ewald_tolerance
            )
            self.gse = GaussianSplitEwald(system.box, gse_params)
            self.sigma = gse_params.sigma
        else:
            from repro.ewald import choose_sigma

            self.gse = None
            # A sigma is still needed for kernel shapes; with zero
            # charges every Coulomb term vanishes identically.
            self.sigma = choose_sigma(params.cutoff, params.ewald_tolerance)
        self.tables = None
        if params.kernel_mode == "table":
            self.tables = build_kernel_tables(
                params.cutoff, self.sigma, mantissa_bits=params.table_mantissa_bits
            )
        elif params.kernel_mode != "analytic":
            raise ValueError(f"unknown kernel_mode {params.kernel_mode!r}")
        self.mesh_codec = None
        if params.quantize_mesh_bits is not None:
            from repro.fixedpoint import FixedFormat, ScaledFixed

            # Mesh charge magnitudes are bounded by a few elementary
            # charges times the (sub-unity) Gaussian weight.
            self.mesh_codec = ScaledFixed(FixedFormat(params.quantize_mesh_bits), limit=8.0)
        # Self energy is configuration-independent: compute once.
        self._e_self = self_energy(system.charges, self.sigma)
        # Correction-pair indices/charge products/LJ coefficients are
        # topology-derived and never change: gather them once.
        self._corr_static = precompute_correction_static(
            system.charges, system.type_ids, system.lj, system.exclusions
        )

    # -- contribution gathering -------------------------------------------

    def _range_limited(self, positions: np.ndarray):
        s = self.system
        with self.timers.time("pair_list"):
            pairs = self.neighbor_list.pairs(positions)
        with self.timers.time("range_limited"):
            if self.tables is not None:
                nb = nonbonded_real_space_tabulated(
                    pairs,
                    s.charges,
                    s.type_ids,
                    s.lj,
                    s.exclusions,
                    self.tables,
                    assume_filtered=True,
                )
            else:
                nb = nonbonded_real_space(
                    pairs,
                    s.charges,
                    s.type_ids,
                    s.lj,
                    s.exclusions,
                    self.sigma,
                    lj_mode=self.params.lj_mode,
                    cutoff=self.params.cutoff,
                    assume_filtered=True,
                )
        return nb

    def _bonded(self, positions: np.ndarray):
        with self.timers.time("bonded"):
            return all_bonded_forces(positions, self.system.box, self.system.topology)

    def _corrections(self, positions: np.ndarray):
        with self.timers.time("correction"):
            return correction_forces_static(
                positions, self.system.box, self._corr_static, self.sigma
            )

    # -- float path -----------------------------------------------------------

    def compute_long(self, positions: np.ndarray) -> ForceReport:
        """Long-range components only: corrections + mesh electrostatics.

        Virtual-site redistribution is NOT applied here; callers that
        combine parts apply it once on the combined force.
        """
        s = self.system
        before = self.timers.snapshot()
        forces = np.zeros((s.n_atoms, 3))
        corr = self._corrections(positions)
        np.add.at(forces, corr.i, corr.force)
        np.add.at(forces, corr.j, -corr.force)
        e_k = 0.0
        if self.gse is not None:
            with self.timers.time("kspace"):
                e_k, f_k = self.gse.kspace(positions, s.charges, codec=self.mesh_codec)
            forces += f_k
        energies = {
            "correction": corr.energy_exclusion + corr.energy_14_coul,
            "lj14": corr.energy_14_lj,
            "coulomb_kspace": e_k,
            "coulomb_self": self._e_self,
        }
        return ForceReport(
            forces=forces, energies=energies, timings=self.timers.delta_since(before)
        )

    def compute(self, positions: np.ndarray, include_long_range: bool = True) -> ForceReport:
        """Dense float64 forces and the energy breakdown."""
        s = self.system
        n = s.n_atoms
        before = self.timers.snapshot()
        forces = np.zeros((n, 3))
        energies: dict[str, float] = {}

        nb = self._range_limited(positions)
        np.add.at(forces, nb.i, nb.force)
        np.add.at(forces, nb.j, -nb.force)
        energies["lj"] = nb.energy_lj
        energies["coulomb_real"] = nb.energy_coul

        bonded = self._bonded(positions)
        forces += scatter_forces(n, bonded)
        energies["bond"] = bonded[0].energy
        energies["angle"] = bonded[1].energy
        energies["dihedral"] = bonded[2].energy

        if include_long_range:
            long_part = self.compute_long(positions)
            forces += long_part.forces
            energies.update(long_part.energies)

        s.spread_virtual_site_forces(forces)
        return ForceReport(
            forces=forces,
            energies=energies,
            n_pairs=nb.n_pairs,
            timings=self.timers.delta_since(before),
        )

    # -- fixed-point path ---------------------------------------------------------

    def compute_long_fixed(
        self, positions: np.ndarray, force_codec
    ) -> tuple[np.ndarray, dict]:
        """Fixed-point codes of the long-range components only.

        Raw (unwrapped) int64 sums — callers combine with short-range
        codes and wrap once.  No vsite redistribution here.
        """
        s = self.system
        acc = FixedAccumulator((s.n_atoms, 3), force_codec.fmt)
        corr = self._corrections(positions)
        ccodes = force_codec.quantize_round_only(corr.force)
        acc.deposit(corr.i, ccodes)
        acc.deposit(corr.j, -ccodes)
        e_k = 0.0
        if self.gse is not None:
            with self.timers.time("kspace"):
                e_k, f_k = self.gse.kspace(positions, s.charges, codec=self.mesh_codec)
            acc.deposit_dense(force_codec.quantize_round_only(f_k))
        energies = {
            "correction": corr.energy_exclusion + corr.energy_14_coul,
            "lj14": corr.energy_14_lj,
            "coulomb_kspace": e_k,
            "coulomb_self": self._e_self,
        }
        return acc.raw(), energies

    def compute_fixed(
        self, positions: np.ndarray, force_codec, include_long_range: bool = True
    ) -> tuple[np.ndarray, ForceReport]:
        """Order-invariant fixed-point force codes.

        Every contribution (per pair, per bonded term, per atom of the
        mesh interpolation) is quantized once with ``force_codec`` and
        integer-accumulated, so the total is independent of evaluation
        and summation order — the machine simulation distributes these
        same contributions over nodes and obtains identical bits.
        """
        s = self.system
        n = s.n_atoms
        before = self.timers.snapshot()
        acc = FixedAccumulator((n, 3), force_codec.fmt)
        energies: dict[str, float] = {}

        nb = self._range_limited(positions)
        codes = force_codec.quantize_round_only(nb.force)
        acc.deposit(nb.i, codes)
        acc.deposit(nb.j, -codes)
        energies["lj"] = nb.energy_lj
        energies["coulomb_real"] = nb.energy_coul

        bonded = self._bonded(positions)
        for contrib in bonded:
            if contrib.n_terms:
                c = force_codec.quantize_round_only(contrib.force)
                acc.deposit(contrib.idx.ravel(), c.reshape(-1, 3))
        energies["bond"] = bonded[0].energy
        energies["angle"] = bonded[1].energy
        energies["dihedral"] = bonded[2].energy

        if include_long_range:
            long_codes, long_energies = self.compute_long_fixed(positions, force_codec)
            acc.deposit_dense(long_codes)
            energies.update(long_energies)

        total = acc.total()
        total = self._spread_vsite_codes(total)
        report = ForceReport(
            forces=force_codec.reconstruct(total),
            energies=energies,
            n_pairs=nb.n_pairs,
            timings=self.timers.delta_since(before),
        )
        return total, report

    def _spread_vsite_codes(self, codes: np.ndarray) -> np.ndarray:
        """Redistribute vsite force codes to parents (integer-exact)."""
        top = self.system.topology
        if not len(top.vsite_idx):
            return codes
        sidx, p, r1, r2 = (top.vsite_idx[:, c] for c in range(4))
        w = top.vsite_weight[:, None]
        fs = codes[sidx].astype(np.float64)
        codes[sidx] = 0
        with np.errstate(over="ignore"):
            np.add.at(codes, p, round_nearest_even((1.0 - 2.0 * w) * fs).astype(np.int64))
            np.add.at(codes, r1, round_nearest_even(w * fs).astype(np.int64))
            np.add.at(codes, r2, round_nearest_even(w * fs).astype(np.int64))
        return codes


class MTSForceProvider:
    """Impulse (Verlet-I / r-RESPA) multiple-time-step force schedule.

    Long-range forces are evaluated every ``k = long_range_every``
    calls and applied as an impulse with weight ``k``; in between, the
    provider returns only range-limited + bonded forces.  Energies
    report the most recent long-range values so monitoring stays
    meaningful on every step.
    """

    def __init__(self, calc: ForceCalculator, force_codec=None):
        self.calc = calc
        self.force_codec = force_codec
        self.k = calc.params.long_range_every
        self.calls = 0
        self.long_evaluations = 0
        self._last_long_energies: dict[str, float] = {}

    def __call__(self, positions: np.ndarray):
        if self.k == 1:
            # Single-rate fast path: one combined evaluation.
            self.calls += 1
            self.long_evaluations += 1
            if self.force_codec is not None:
                return self.calc.compute_fixed(positions, self.force_codec)
            report = self.calc.compute(positions)
            return report.forces, report
        include_long = self.calls % self.k == 0
        if self.force_codec is not None:
            out, report = self.calc.compute_fixed(
                positions, self.force_codec, include_long_range=False
            )
            if include_long:
                long_codes, long_energies = self.calc.compute_long_fixed(
                    positions, self.force_codec
                )
                with np.errstate(over="ignore"):
                    raw = out.astype(np.int64) + np.int64(self.k) * long_codes
                out = self.calc._spread_vsite_codes(self.force_codec.wrap(raw))
                self._last_long_energies = long_energies
                self.long_evaluations += 1
        else:
            report = self.calc.compute(positions, include_long_range=False)
            out = report.forces
            if include_long:
                long_part = self.calc.compute_long(positions)
                out = out + self.k * long_part.forces
                self.calc.system.spread_virtual_site_forces(out)
                self._last_long_energies = long_part.energies
                self.long_evaluations += 1
        report.energies.update(self._last_long_energies)
        self.calls += 1
        return out, report
