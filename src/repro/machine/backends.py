"""Execution backends for the functional machine simulation.

Three interchangeable strategies run the per-node work of a machine
time step:

* :class:`SerialBackend` — the literal per-node Python loops of the
  original implementation: deposits grouped node by node, GSE spreading
  and interpolation called once per owning node, traffic charged one
  ``send`` at a time.  Kept as the baseline the scaling benchmark
  measures against.
* :class:`VectorizedBackend` (the default) — the same contributions
  deposited by single array kernels, owner grouping collapsed (integer
  accumulation commutes, so grouping cannot change the bits), cached
  import routes, and bincount-batched traffic accounting.
* :class:`ProcessBackend` — the vectorized engine with the
  range-limited pair kernel sharded over a persistent pool of forked
  worker processes that share the pair arrays through anonymous shared
  memory and return int64 partial force codes, reduced by integer
  addition in the parent.

All three produce bitwise-identical ``state_codes()`` trajectories:
every force contribution is quantized once and integer-accumulated, so
*where* and *in what order* contributions are summed is invisible —
the paper's parallel-invariance argument (Section 4) applied to the
simulator's own execution strategy.  The process backend's per-chunk
energy sums are reduced in a fixed chunk order, so its reported
energies are independent of the worker count (they may differ from the
serial path's one-pass float sums by rounding, but energies are
diagnostics — forces are exact).

Backends also charge their engine phases to ``machine_*`` timers
(``machine_nt_assign``, ``machine_deposit``, ``machine_mesh``,
``machine_traffic``) on the calculator's
:class:`~repro.perf.timers.Timers`, and the mesh pipeline's sub-phases
to ``mesh_plan`` / ``mesh_spread`` / ``mesh_fft`` / ``mesh_interp``
nested inside ``machine_mesh`` — the breakdown ``repro machine
--profile`` and the scaling benchmark report.
"""

from __future__ import annotations

import os
import weakref

import numpy as np

from repro.forcefield.nonbonded import (
    NonbondedResult,
    nonbonded_real_space,
    nonbonded_real_space_tabulated,
)
from repro.geometry.cells import NeighborPairs
from repro.parallel import (
    NTAssignment,
    nt_assign_pairs,
    nt_node_tables,
    tower_plate_boxes,
)

__all__ = [
    "MachineBackend",
    "SerialBackend",
    "VectorizedBackend",
    "ProcessBackend",
    "make_backend",
]

#: Atom-chunk size for the over-budget GSE fallback (when the shared
#: stencil plan would exceed its memory cap).  Small chunks keep the
#: ~2200-point stencil arrays cache-resident across the several numpy
#: passes of spreading/interpolation.
_GSE_CHUNK = 128

#: Pairs per work unit in the process backend.  Chunk boundaries depend
#: only on the pair count, never on the worker count, so per-chunk
#: energies (and their fixed-order reduction) are scheduling-invariant.
_PAIR_CHUNK = 32768

#: Largest box-pair count tabulated by the vectorized NT lookup; above
#: this (>= 2048 nodes) the direct per-pair computation is used.
_NT_TABLE_MAX_ENTRIES = 4 << 20


def _force_export_side(machine, pair_nodes: np.ndarray, atoms: np.ndarray):
    """Exact force-export routes for one side of the pair list.

    Each remote (atom, computing-node) contribution is one summed force
    vector travelling from the computing node to the atom's owner; the
    per-route byte count is the exact count of such vectors (times
    ``bytes_per_force``, floored at the minimum message size) — the old
    even-split integer division undercounted by up to
    ``len(routes) - 1`` force records per step.

    Returns ``(src, dst, nbytes)`` arrays, or None when nothing leaves
    its computing node.
    """
    owner = machine.owners[atoms]
    remote = pair_nodes != owner
    if not np.any(remote):
        return None
    n = np.int64(machine.topology.n_nodes)
    contrib = np.unique(atoms[remote] * n + pair_nodes[remote])
    c_src = contrib % n
    route = c_src * n + machine.owners[contrib // n]
    routes, counts = np.unique(route, return_counts=True)
    nbytes = np.maximum(
        counts * machine.hw.bytes_per_force, machine.hw.min_message_bytes
    )
    return routes // n, routes % n, nbytes


class MachineBackend:
    """Strategy interface for one machine step's per-node execution.

    ``kernel_tier`` selects the hot-loop implementation suite
    (:mod:`repro.kernels`): ``"numpy"`` (default) or ``"compiled"``
    (lazily built C, falling back to numpy when no compiler exists).
    ``kernel_threads`` sets the compiled tier's worker-lane count.
    Every tier/thread combination is bitwise identical, so both knobs
    compose freely with every backend and with fault-recovery replay.
    """

    name = "base"
    kernel_tier: str | None = None
    kernel_threads: int | None = None

    def bind(self, calc) -> None:
        """Attach to a MachineForceCalculator (called once by it)."""
        self.calc = calc
        from repro.kernels import get_suite

        self.kernels = get_suite(self.kernel_tier, self.kernel_threads)

    def close(self) -> None:
        """Release any external resources (worker pools)."""

    # -- force deposit phases -------------------------------------------

    def range_limited(self, calc, positions, force_codec, acc):
        """Compute + deposit range-limited pair forces; return (nb, assignment)."""
        raise NotImplementedError

    def deposit_bonded(self, calc, acc, bonded, force_codec) -> None:
        raise NotImplementedError

    def deposit_corrections(self, calc, acc, corr, ccodes) -> None:
        raise NotImplementedError

    def mesh_long_range(self, calc, positions, acc, force_codec) -> float:
        """Spread/solve/interpolate the GSE mesh; returns the k-space energy."""
        raise NotImplementedError

    # -- traffic accounting ---------------------------------------------

    def account_position_import(self, machine) -> None:
        raise NotImplementedError

    def account_force_export(self, machine, pair_nodes, i, j) -> None:
        raise NotImplementedError


class SerialBackend(MachineBackend):
    """Per-node Python loops — the original execution strategy.

    Every phase iterates over simulated nodes (or routes) in Python, so
    its cost grows with the node count even though the physics does
    not.  This is the pre-vectorization baseline preserved for the
    scaling benchmark and for differential testing.
    """

    name = "serial"

    def _deposit_by_node(self, calc, acc, node, i, j, codes) -> None:
        """Deposit pair contributions node by node (ascending id)."""
        order = np.argsort(node, kind="stable")
        n_nodes = calc.machine.topology.n_nodes
        boundaries = np.searchsorted(node[order], np.arange(n_nodes + 1))
        for n in range(n_nodes):
            sel = order[boundaries[n] : boundaries[n + 1]]
            if len(sel):
                acc.deposit(i[sel], codes[sel])
                acc.deposit(j[sel], -codes[sel])

    def range_limited(self, calc, positions, force_codec, acc):
        m = calc.machine
        nb, codes = calc._range_limited_codes(positions, force_codec)
        with calc.timers.time("machine_nt_assign"):
            assign = nt_assign_pairs(m.decomp, positions, nb.i, nb.j)
        with calc.timers.time("machine_deposit"):
            self._deposit_by_node(calc, acc, assign.node, nb.i, nb.j, codes)
        return nb, assign

    def deposit_bonded(self, calc, acc, bonded, force_codec) -> None:
        term_nodes = calc.machine.bond_assignment.term_node
        offset = 0
        for contrib in bonded:
            if contrib.n_terms:
                t_nodes = term_nodes[offset : offset + contrib.n_terms]
                c = force_codec.quantize_round_only(contrib.force)
                for n in np.unique(t_nodes):
                    sel = t_nodes == n
                    acc.deposit(contrib.idx[sel].ravel(), c[sel].reshape(-1, 3))
            offset += contrib.n_terms

    def deposit_corrections(self, calc, acc, corr, ccodes) -> None:
        corr_nodes = calc.machine.owners[corr.i]
        self._deposit_by_node(calc, acc, corr_nodes, corr.i, corr.j, ccodes)

    def mesh_long_range(self, calc, positions, acc, force_codec) -> float:
        s, m, gse = calc.system, calc.machine, calc.gse
        t = calc.timers
        # One shared stencil plan per evaluation; each node then spreads
        # and interpolates over the rows it owns.  Bitwise equal to the
        # old per-node weight rebuild: every plan kernel is per-atom
        # arithmetic plus a commutative reduction, so the row partition
        # is invisible in the bits.
        with t.time("mesh_plan"):
            plan = gse.make_plan(positions, kernels=self.kernels)
        mesh_acc = np.zeros(gse.mesh_point_count(), dtype=np.int64)
        node_rows = [np.nonzero(m.owners == n)[0] for n in range(m.topology.n_nodes)]
        with t.time("mesh_spread"):
            for rows in node_rows:
                if len(rows):
                    if plan is not None:
                        plan.spread_codes(s.charges, mesh_acc, calc.mesh_codec, rows=rows)
                    else:
                        gse.spread_contributions(
                            positions[rows], s.charges[rows], mesh_acc, calc.mesh_codec
                        )
        with t.time("mesh_unquantize"):
            Q = calc.mesh_codec.reconstruct(calc.mesh_codec.wrap(mesh_acc)).reshape(
                tuple(gse.mesh)
            )
        with t.time("mesh_fft_traffic"):
            m.account_fft()
        with t.time("mesh_fft"):
            phi, e_k = gse.solve(Q)

        # Force interpolation, per owning node.
        with t.time("mesh_interp"):
            for rows in node_rows:
                if len(rows):
                    if plan is not None:
                        f_k = plan.interpolate_forces(s.charges, phi, rows=rows)
                    else:
                        f_k = gse.interpolate_forces(positions[rows], s.charges[rows], phi)
                    acc.deposit(rows, force_codec.quantize_round_only(f_k))
        return e_k

    def account_position_import(self, machine) -> None:
        # Each occupied source box broadcasts its atoms to every node
        # whose tower/plate imports it — one multicast per source.  The
        # charged statistics equal the old per-route ``send`` loop
        # (multicast batches the same routes); grouping by source is
        # what lets an attached router model the NT broadcast as a
        # spanning tree instead of per-destination unicast paths.
        counts = machine._node_occupancy()
        reach = machine.params.cutoff + machine.migration.import_margin()
        dsts_of: dict[int, list[int]] = {}
        for node in range(machine.topology.n_nodes):
            tower, plate = tower_plate_boxes(
                machine.decomp, machine.topology.coord(node), reach
            )
            for bx in tower | plate:
                src = machine.topology.node_id(bx)
                if src == node or counts[src] == 0:
                    continue
                dsts_of.setdefault(src, []).append(node)
        for src in sorted(dsts_of):
            machine.network.multicast(
                src,
                dsts_of[src],
                int(counts[src]) * machine.hw.bytes_per_position,
                tag="position_import",
            )

    def account_force_export(self, machine, pair_nodes, i, j) -> None:
        for atoms in (i, j):
            out = _force_export_side(machine, pair_nodes, atoms)
            if out is None:
                continue
            for src, dst, nbytes in zip(*out):
                machine.network.send(int(src), int(dst), int(nbytes), tag="force_export")


class VectorizedBackend(MachineBackend):
    """Segmented group-by execution: one array kernel per phase.

    Owner/node grouping is dropped wherever integer accumulation makes
    it unobservable, the NT assignment reuses one ``box_coord`` pass
    over the whole configuration, GSE spreading/interpolation runs as
    cache-sized chunked passes over all atoms, and traffic is charged
    through :meth:`~repro.parallel.comm.SimNetwork.send_batch` with
    routes computed by array ops (position-import routes are static per
    machine and cached).  Bitwise identical to :class:`SerialBackend`.
    """

    name = "vectorized"

    def bind(self, calc) -> None:
        super().bind(calc)
        self._import_routes: tuple[np.ndarray, np.ndarray] | None = None
        self._nt_tables: tuple[np.ndarray, np.ndarray] | None = None
        #: Shared mesh stencil plan, storage reused across steps.
        self._mesh_plan = None
        #: Flat int64 mesh accumulator, reused across evaluations.
        self._mesh_acc: np.ndarray | None = None

    def _assign_pairs(self, m, positions, i, j) -> NTAssignment:
        """NT assignment via the tabulated box-pair rule.

        The computing node is a pure function of the two home-box ids
        (see :func:`~repro.parallel.nt.nt_node_tables`), so per step
        the whole assignment is one ``box_coord`` pass over the
        configuration plus two gathers — identical bits to the direct
        rule at a fraction of the array passes.
        """
        n = m.topology.n_nodes
        if n * n > _NT_TABLE_MAX_ENTRIES:
            coords = m.decomp.box_coord(positions)
            return nt_assign_pairs(m.decomp, positions, i, j, atom_box_coords=coords)
        if self._nt_tables is None:
            self._nt_tables = nt_node_tables(m.decomp)
        node_tab, neutral_tab = self._nt_tables
        flat = m.decomp.node_of(positions)
        key = flat[i] * np.int64(n) + flat[j]
        return NTAssignment(
            node=node_tab.ravel()[key], neutral=neutral_tab.ravel()[key]
        )

    def range_limited(self, calc, positions, force_codec, acc):
        m = calc.machine
        nb, codes = calc._range_limited_codes(positions, force_codec)
        with calc.timers.time("machine_nt_assign"):
            assign = self._assign_pairs(m, positions, nb.i, nb.j)
        with calc.timers.time("machine_deposit"):
            if self.kernels.tier == "compiled":
                self.kernels.deposit_pairs(acc.raw(), nb.i, nb.j, codes)
            else:
                acc.deposit(nb.i, codes)
                acc.deposit(nb.j, -codes)
        return nb, assign

    def deposit_bonded(self, calc, acc, bonded, force_codec) -> None:
        for contrib in bonded:
            if contrib.n_terms:
                c = force_codec.quantize_round_only(contrib.force)
                acc.deposit(contrib.idx.ravel(), c.reshape(-1, 3))

    def deposit_corrections(self, calc, acc, corr, ccodes) -> None:
        if self.kernels.tier == "compiled":
            self.kernels.deposit_pairs(acc.raw(), corr.i, corr.j, ccodes)
        else:
            acc.deposit(corr.i, ccodes)
            acc.deposit(corr.j, -ccodes)

    def mesh_long_range(self, calc, positions, acc, force_codec) -> float:
        s, m, gse = calc.system, calc.machine, calc.gse
        t = calc.timers
        # The stencil plan is built once per evaluation and shared by
        # the spreading and interpolation passes (the old path rebuilt
        # the weights in each); its storage persists across steps, as
        # does the flat mesh accumulator (zero-filled, never
        # reallocated, on the steady-state path).
        with t.time("mesh_plan"):
            self._mesh_plan = gse.make_plan(
                positions, out=self._mesh_plan, kernels=self.kernels
            )
        plan = self._mesh_plan
        if self._mesh_acc is None or self._mesh_acc.shape[0] != gse.mesh_point_count():
            self._mesh_acc = np.zeros(gse.mesh_point_count(), dtype=np.int64)
        else:
            self._mesh_acc[...] = 0
        mesh_acc = self._mesh_acc
        with t.time("mesh_spread"):
            if plan is not None:
                plan.spread_codes(
                    s.charges, mesh_acc, calc.mesh_codec, kernels=self.kernels
                )
            else:
                gse.spread_contributions(
                    positions, s.charges, mesh_acc, calc.mesh_codec, chunk=_GSE_CHUNK
                )
        with t.time("mesh_unquantize"):
            Q = calc.mesh_codec.reconstruct(calc.mesh_codec.wrap(mesh_acc)).reshape(
                tuple(gse.mesh)
            )
        # FFT traffic accounting and the FFT solve are separate phases:
        # the former is simulated-machine bookkeeping, the latter engine
        # compute, and the overhead attribution must tell them apart.
        with t.time("mesh_fft_traffic"):
            m.account_fft()
        with t.time("mesh_fft"):
            phi, e_k = gse.solve(Q)
        with t.time("mesh_interp"):
            if plan is not None:
                f_k = plan.interpolate_forces(s.charges, phi, kernels=self.kernels)
            else:
                f_k = gse.interpolate_forces(positions, s.charges, phi, chunk=_GSE_CHUNK)
            acc.deposit_dense(force_codec.quantize_round_only(f_k))
        return e_k

    def _import_route_arrays(self, machine) -> tuple[np.ndarray, np.ndarray]:
        """(src, dst) node ids of every tower/plate import route.

        The import region depends only on the decomposition and the
        (constant) reach, so the routes are computed once per machine.
        """
        if self._import_routes is None:
            reach = machine.params.cutoff + machine.migration.import_margin()
            srcs, dsts = [], []
            for node in range(machine.topology.n_nodes):
                tower, plate = tower_plate_boxes(
                    machine.decomp, machine.topology.coord(node), reach
                )
                for bx in tower | plate:
                    src = machine.topology.node_id(bx)
                    if src != node:
                        srcs.append(src)
                        dsts.append(node)
            self._import_routes = (
                np.asarray(srcs, dtype=np.int64),
                np.asarray(dsts, dtype=np.int64),
            )
        return self._import_routes

    def account_position_import(self, machine) -> None:
        counts = machine._node_occupancy()
        src, dst = self._import_route_arrays(machine)
        nbytes = counts[src] * machine.hw.bytes_per_position
        occupied = nbytes > 0
        # multicast_routes == send_batch for the flat statistics; an
        # attached router additionally groups the routes by source into
        # NT broadcast trees (matching the serial backend's grouping).
        machine.network.multicast_routes(
            src[occupied], dst[occupied], nbytes[occupied], tag="position_import"
        )

    def _force_export_side_counts(self, machine, pair_nodes, atoms):
        """Bincount equivalent of :func:`_force_export_side`.

        Both key spaces are small (``n_atoms * n_nodes`` and
        ``n_nodes**2``), so counting replaces the sort behind
        ``np.unique`` with linear passes.  Local contributions (the
        computing node owns the atom) survive to the route stage here
        but land on src == dst routes, which ``send_batch`` drops —
        the charged statistics are exactly the serial backend's.
        """
        n = np.int64(machine.topology.n_nodes)
        contrib = np.nonzero(np.bincount(atoms * n + pair_nodes))[0]
        route = (contrib % n) * n + machine.owners[contrib // n]
        counts = np.bincount(route, minlength=int(n * n))
        routes = np.nonzero(counts)[0]
        nbytes = np.maximum(
            counts[routes] * machine.hw.bytes_per_force, machine.hw.min_message_bytes
        )
        return routes // n, routes % n, nbytes

    def account_force_export(self, machine, pair_nodes, i, j) -> None:
        for atoms in (i, j):
            out = self._force_export_side_counts(machine, pair_nodes, atoms)
            machine.network.send_batch(*out, tag="force_export")


# -- multiprocess backend ------------------------------------------------

#: Per-worker-process context, installed by the pool initializer.
_WORKER_CTX = None


def _worker_init(ctx) -> None:
    global _WORKER_CTX
    _WORKER_CTX = ctx


def _worker_eval(task):
    """Evaluate a span of pair chunks; return int64 partial force codes.

    Chunks are fixed-size slices of the shared pair arrays, so the
    partition of chunks over workers affects neither the integer force
    sums (addition commutes) nor the per-chunk energies returned for
    the parent's fixed-order reduction.
    """
    lo_chunk, hi_chunk, n_pairs, n_atoms = task
    ctx = _WORKER_CTX
    i, j, dx, r2 = ctx.pair_views(n_pairs)
    acc = np.zeros((n_atoms, 3), dtype=np.int64)
    e_lj, e_coul = [], []
    for c in range(lo_chunk, hi_chunk):
        lo = c * _PAIR_CHUNK
        hi = min(lo + _PAIR_CHUNK, n_pairs)
        nb = ctx.kernel(
            NeighborPairs(i=i[lo:hi], j=j[lo:hi], dx=dx[lo:hi], r2=r2[lo:hi])
        )
        codes = ctx.codec.quantize_round_only(nb.force)
        with np.errstate(over="ignore"):
            np.add.at(acc, nb.i, codes)
            np.add.at(acc, nb.j, -codes)
        e_lj.append(nb.energy_lj)
        e_coul.append(nb.energy_coul)
    return lo_chunk, e_lj, e_coul, acc


class _PoolContext:
    """Static kernel inputs plus shared pair buffers, inherited by fork.

    Created in the parent *before* the pool starts: the fork start
    method hands every worker the same object — including the numpy
    views over anonymous shared memory — without pickling.  The parent
    rewrites the buffers between ``map`` calls; workers only read them
    while a ``map`` is in flight.
    """

    def __init__(self, system, params, tables, sigma, codec, capacity: int):
        from multiprocessing.sharedctypes import RawArray

        self.charges = system.charges
        self.type_ids = system.type_ids
        self.lj = system.lj
        self.tables = tables
        self.sigma = sigma
        self.lj_mode = params.lj_mode
        self.cutoff = params.cutoff
        self.codec = codec
        self.capacity = capacity
        self._i = np.frombuffer(RawArray("b", 8 * capacity), dtype=np.int64)
        self._j = np.frombuffer(RawArray("b", 8 * capacity), dtype=np.int64)
        self._dx = np.frombuffer(RawArray("b", 24 * capacity), dtype=np.float64).reshape(
            capacity, 3
        )
        self._r2 = np.frombuffer(RawArray("b", 8 * capacity), dtype=np.float64)

    def write_pairs(self, pairs: NeighborPairs) -> None:
        n = len(pairs.i)
        self._i[:n] = pairs.i
        self._j[:n] = pairs.j
        self._dx[:n] = pairs.dx
        self._r2[:n] = pairs.r2

    def pair_views(self, n: int):
        return self._i[:n], self._j[:n], self._dx[:n], self._r2[:n]

    def kernel(self, pairs: NeighborPairs) -> NonbondedResult:
        # Exclusions were pre-applied by the neighbor list
        # (assume_filtered), so the table is not needed here.
        if self.tables is not None:
            return nonbonded_real_space_tabulated(
                pairs, self.charges, self.type_ids, self.lj, None, self.tables,
                assume_filtered=True,
            )
        return nonbonded_real_space(
            pairs, self.charges, self.type_ids, self.lj, None, self.sigma,
            lj_mode=self.lj_mode, cutoff=self.cutoff, assume_filtered=True,
        )


class ProcessBackend(VectorizedBackend):
    """Vectorized execution with multiprocess range-limited kernels.

    The pair list is sharded into fixed-size chunks evaluated by a
    persistent pool of forked workers; each worker quantizes its
    chunks' forces and integer-accumulates them locally, and the parent
    merges the partial int64 code arrays by plain addition.  Because
    the codes are quantized *before* any summation, the result is
    bit-for-bit the serial answer — the paper's order-invariance
    argument is what makes real parallelism safe here.

    Per-chunk energies are reduced in chunk order, so reported energies
    do not depend on the worker count (they differ from the one-pass
    serial float sums only by summation rounding).
    """

    name = "process"

    def __init__(self, n_workers: int | None = None):
        self.n_workers = int(n_workers) if n_workers else (os.cpu_count() or 1)
        self._pool = None
        self._ctx = None
        self._finalizer = None

    def close(self) -> None:
        if self._pool is not None:
            if self._finalizer is not None:
                self._finalizer.detach()
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._ctx = None

    def _ensure_pool(self, calc, force_codec, n_pairs: int) -> None:
        import multiprocessing

        if (
            self._pool is not None
            and self._ctx.capacity >= n_pairs
            and self._ctx.codec is force_codec
        ):
            return
        self.close()
        mp = multiprocessing.get_context("fork")
        self._ctx = _PoolContext(
            calc.system,
            calc.params,
            calc.tables,
            calc.sigma,
            force_codec,
            capacity=max(int(n_pairs * 1.5), 1024),
        )
        self._pool = mp.Pool(
            processes=self.n_workers, initializer=_worker_init, initargs=(self._ctx,)
        )
        self._finalizer = weakref.finalize(self, self._pool.terminate)

    def range_limited(self, calc, positions, force_codec, acc):
        m = calc.machine
        n_atoms = calc.system.n_atoms
        with calc.timers.time("pair_list"):
            pairs = calc.neighbor_list.pairs(positions)
        n_pairs = len(pairs.i)
        with calc.timers.time("range_limited"):
            self._ensure_pool(calc, force_codec, n_pairs)
            e_lj, e_coul, partial = self._evaluate(pairs, n_atoms)
        with calc.timers.time("machine_deposit"):
            with np.errstate(over="ignore"):
                acc.raw()[...] += partial
        nb = NonbondedResult(
            energy_lj=e_lj, energy_coul=e_coul, i=pairs.i, j=pairs.j, force=None
        )
        with calc.timers.time("machine_nt_assign"):
            assign = self._assign_pairs(m, positions, pairs.i, pairs.j)
        return nb, assign

    def _evaluate(self, pairs: NeighborPairs, n_atoms: int):
        n_pairs = len(pairs.i)
        partial = np.zeros((n_atoms, 3), dtype=np.int64)
        if n_pairs == 0:
            return 0.0, 0.0, partial
        self._ctx.write_pairs(pairs)
        n_chunks = -(-n_pairs // _PAIR_CHUNK)
        w = max(min(self.n_workers, n_chunks), 1)
        bounds = np.linspace(0, n_chunks, w + 1).astype(np.int64)
        tasks = [
            (int(bounds[k]), int(bounds[k + 1]), n_pairs, n_atoms)
            for k in range(w)
            if bounds[k] < bounds[k + 1]
        ]
        e_lj = np.zeros(n_chunks)
        e_coul = np.zeros(n_chunks)
        for lo_chunk, chunk_lj, chunk_coul, acc in self._pool.map(_worker_eval, tasks):
            e_lj[lo_chunk : lo_chunk + len(chunk_lj)] = chunk_lj
            e_coul[lo_chunk : lo_chunk + len(chunk_coul)] = chunk_coul
            with np.errstate(over="ignore"):
                partial += acc
        return float(np.sum(e_lj)), float(np.sum(e_coul)), partial


_BACKENDS = {
    "serial": SerialBackend,
    "vectorized": VectorizedBackend,
    "process": ProcessBackend,
}


def make_backend(
    backend,
    kernel_tier: str | None = None,
    kernel_threads: int | None = None,
) -> MachineBackend:
    """Resolve a backend name (or pass through an instance).

    ``kernel_tier`` selects the hot-loop suite (``"numpy"`` or
    ``"compiled"``) and ``kernel_threads`` its worker-lane count;
    ``None`` defers to the instance's own setting and ultimately the
    ``REPRO_KERNEL_TIER`` / ``REPRO_KERNEL_THREADS`` environment
    variables.
    """
    if isinstance(backend, MachineBackend):
        if kernel_tier is not None:
            backend.kernel_tier = kernel_tier
        if kernel_threads is not None:
            backend.kernel_threads = kernel_threads
        return backend
    try:
        out = _BACKENDS[backend]()
    except KeyError:
        raise ValueError(
            f"unknown backend {backend!r}; expected one of {sorted(_BACKENDS)}"
        ) from None
    if kernel_tier is not None:
        out.kernel_tier = kernel_tier
    if kernel_threads is not None:
        out.kernel_threads = kernel_threads
    return out
