"""Anton hardware constants (paper Section 2.2).

"The ASICs are implemented in 90-nm technology and clocked at 485 MHz,
with the exception of the PPIP array in the HTIS, which is clocked at
970 MHz."  Six 50.6 Gbit/s channels connect each node to its torus
neighbors; the HTIS holds 32 PPIPs fed by 8 match units each.

These numbers parameterize both the functional machine's traffic
accounting and the calibrated performance model.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AntonHardware", "ANTON_2008"]


@dataclass(frozen=True)
class AntonHardware:
    """One node's hardware parameters."""

    clock_flexible_hz: float = 485e6
    clock_ppip_hz: float = 970e6
    n_ppips: int = 32
    match_units_per_ppip: int = 8
    n_geometry_cores: int = 8
    n_control_processors: int = 4  # Tensilica LX cores
    n_data_transfer_engines: int = 4
    link_gbit_per_s: float = 50.6
    n_channels: int = 6
    inter_node_latency_s: float = 50e-9  # "tens of nanoseconds"
    min_message_bytes: int = 4
    bytes_per_position: int = 12  # three 32-bit fixed-point coordinates
    bytes_per_force: int = 12

    @property
    def match_units(self) -> int:
        return self.n_ppips * self.match_units_per_ppip

    @property
    def pairs_considered_per_second(self) -> float:
        """Match-unit throughput: one candidate pair per unit per
        flexible-clock cycle."""
        return self.match_units * self.clock_flexible_hz

    @property
    def interactions_per_second(self) -> float:
        """PPIP throughput: one interaction per PPIP per PPIP cycle."""
        return self.n_ppips * self.clock_ppip_hz

    @property
    def link_bytes_per_s(self) -> float:
        return self.link_gbit_per_s * 1e9 / 8.0


#: The machine as built in October 2008.
ANTON_2008 = AntonHardware()
