"""High-Throughput Interaction Subsystem model (paper Sections 2.2, 3.2.1).

The HTIS streams plate atoms past tower atoms: 256 low-precision match
units test candidate pairs (eight tower atoms per plate atom per
cycle), survivors pass through a concentrator into the PPIP input
queues, and 32 pairwise point interaction pipelines evaluate one
interaction per 970 MHz cycle each.

"As long as the average number of such pairs per cycle per PPIP is at
least one, the PPIPs will approach full utilization" — i.e. the HTIS
is PPIP-bound when ``match_efficiency >= pairs_needed_per_cycle``, and
match-unit-bound when low match efficiency starves the pipelines
(the problem subboxes solve, Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import ANTON_2008, AntonHardware

__all__ = ["HTISModel", "HTISTiming"]


@dataclass(frozen=True)
class HTISTiming:
    """Timing breakdown of one HTIS workload."""

    pairs_considered: float
    interactions: float
    match_efficiency: float
    match_limited_s: float
    ppip_limited_s: float

    @property
    def time_s(self) -> float:
        """The binding constraint sets the time."""
        return max(self.match_limited_s, self.ppip_limited_s)

    @property
    def ppip_utilization(self) -> float:
        if self.time_s == 0:
            return 1.0
        return self.ppip_limited_s / self.time_s


class HTISModel:
    """Throughput model of one node's HTIS."""

    def __init__(self, hw: AntonHardware = ANTON_2008):
        self.hw = hw

    def evaluate(self, pairs_considered: float, interactions: float) -> HTISTiming:
        """Time to stream a candidate set through the HTIS.

        Parameters
        ----------
        pairs_considered:
            Candidate pairs the match units examine (tower x plate).
        interactions:
            Pairs within the cutoff (PPIP evaluations).
        """
        if pairs_considered < interactions:
            raise ValueError("cannot have more interactions than candidates")
        match_s = pairs_considered / self.hw.pairs_considered_per_second
        ppip_s = interactions / self.hw.interactions_per_second
        eff = interactions / pairs_considered if pairs_considered else 1.0
        return HTISTiming(
            pairs_considered=pairs_considered,
            interactions=interactions,
            match_efficiency=eff,
            match_limited_s=match_s,
            ppip_limited_s=ppip_s,
        )

    def min_match_efficiency_for_full_utilization(self) -> float:
        """Efficiency below which match units starve the PPIPs.

        PPIPs consume ``n_ppips * 2`` pairs per match cycle (their
        clock is doubled); the match units supply ``match_units``
        candidates per cycle, so utilization needs
        ``eff >= 2 * n_ppips / match_units = 2 / match_units_per_ppip``.
        """
        return 2.0 * self.hw.n_ppips / self.hw.match_units
