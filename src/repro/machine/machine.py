"""The functional Anton machine simulation.

:class:`AntonMachine` executes real MD time steps the way the hardware
does: atoms live on home nodes of a torus, every force contribution is
computed on the node the NT method assigns it to, quantized once, and
integer-accumulated; mesh charges accumulate in fixed point; the FFT
is logically distributed; positions/forces/bond-destinations/migration
traffic is charged to a simulated network.

Because integer addition commutes, the per-node deposit order cannot
change the force bits — which is exactly the paper's *parallel
invariance*: "a given simulation will evolve in exactly the same way
on any single- or multi-node Anton configuration" (Section 4).  The
integration tests run the same system on 1, 8, and 64 simulated nodes
and compare trajectories bit-for-bit.

The same invariance also frees the *simulator* to choose how it
executes each phase: :mod:`repro.machine.backends` provides per-node
loops (``serial``), array kernels (``vectorized``, the default), and a
multiprocess pool (``process``), all producing identical state codes.
Engine phases are charged to ``machine_*`` timers
(:meth:`AntonMachine.phase_timings`, :meth:`AntonMachine.engine_seconds`).
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.constraints import ConstraintSolver
from repro.core.forces import ForceCalculator, ForceReport, MDParams, MTSForceProvider
from repro.core.integrator import FixedPointConfig, FixedPointIntegrator
from repro.core.system import ChemicalSystem
from repro.fault import FaultController, FaultSchedule, FaultyNetwork, RecoveryPolicy
from repro.fft import DistributedFFT3D
from repro.fixedpoint import FixedAccumulator
from repro.io import TrajectoryWriter, check_fingerprint, system_fingerprint
from repro.machine.backends import MachineBackend, make_backend
from repro.machine.config import ANTON_2008, AntonHardware
from repro.machine.flexible import assign_bond_terms, correction_pairs_per_node
from repro.network import LinkRouter, RoutedConfig
from repro.parallel import (
    MigrationSchedule,
    SimNetwork,
    SpatialDecomposition,
    TorusTopology,
)

__all__ = ["MachineForceCalculator", "AntonMachine"]

#: Timers that measure the machine bookkeeping itself (NT assignment,
#: force deposits, traffic accounting) as opposed to the shared physics
#: kernels every backend runs identically.  Their sum is the "engine
#: time" the scaling benchmark gates on.
ENGINE_TIMERS = ("machine_nt_assign", "machine_deposit", "machine_traffic")


class MachineForceCalculator(ForceCalculator):
    """A ForceCalculator that deposits every contribution per node.

    Produces bit-identical force codes to the base class (integer sums
    commute) while exercising the machine's work partitioning and
    charging communication to the simulated network.  *How* each phase
    executes is delegated to a :class:`~repro.machine.backends.MachineBackend`.
    """

    def __init__(
        self,
        system: ChemicalSystem,
        params: MDParams,
        machine: "AntonMachine",
        backend: MachineBackend,
    ):
        if params.quantize_mesh_bits is None:
            raise ValueError("machine execution requires quantize_mesh_bits")
        super().__init__(system, params)
        self.machine = machine
        self.backend = backend
        backend.bind(self)
        self.kernels = backend.kernels
        # The neighbor list shares the backend's kernel suite (compiled
        # cutoff filtering when available).
        self.neighbor_list.kernels = backend.kernels
        # Steady-state scratch: the fused-kernel pair outputs and the
        # short/long force accumulators are allocated once and reused,
        # so repeated steps allocate nothing on the hot path.
        self._pair_spec = None
        self._pair_spec_codec = None
        self._pair_out: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None
        self._acc_short: FixedAccumulator | None = None
        self._acc_long: FixedAccumulator | None = None

    # -- scratch management -------------------------------------------------

    def _accumulator(self, slot: str, force_codec) -> FixedAccumulator:
        """A zeroed per-evaluation accumulator from the reuse pool.

        Two slots ("short", "long") exist because the long-range pass
        runs while the short-range accumulator is live.  Callers
        consume ``acc.raw()``/``acc.total()`` before the next evaluation
        (the MTS provider and :meth:`compute_fixed` both do), so reuse
        is invisible.
        """
        acc = getattr(self, "_acc_" + slot)
        shape = (self.system.n_atoms, 3)
        if acc is None or acc.shape != shape or acc.fmt != force_codec.fmt:
            acc = FixedAccumulator(shape, force_codec.fmt)
            setattr(self, "_acc_" + slot, acc)
        else:
            acc.zero()
        return acc

    def _pair_buffers(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(codes, e_lj, e_coul) output scratch for >= ``n`` pairs."""
        out = self._pair_out
        if out is None or out[0].shape[0] < n:
            cap = max(int(n * 1.25), 1024)
            out = (
                np.empty((cap, 3), dtype=np.int64),
                np.empty(cap, dtype=np.float64),
                np.empty(cap, dtype=np.float64),
            )
            self._pair_out = out
        return out

    # -- fused range-limited path -------------------------------------------

    def _range_limited_codes(self, positions, force_codec):
        """Range-limited pair result plus quantized int64 force codes.

        On the compiled tier with tabulated kernels this runs the fused
        C kernel (table evaluation straight to codes, no intermediate
        float force array); otherwise it is the classic NumPy path with
        the quantization charged to an explicit ``machine_quantize``
        phase.  Codes (and energies) are bitwise identical either way.
        """
        k = self.kernels
        if k.tier == "compiled" and self.tables is not None:
            from repro.forcefield.nonbonded import NonbondedResult
            from repro.kernels import make_pair_spec

            s = self.system
            with self.timers.time("pair_list"):
                pairs = self.neighbor_list.pairs(positions)
            with self.timers.time("range_limited"):
                if self._pair_spec is None or self._pair_spec_codec is not force_codec:
                    self._pair_spec = make_pair_spec(
                        self.tables, s.lj, s.charges, s.type_ids, force_codec
                    )
                    self._pair_spec_codec = force_codec
                n = len(pairs.i)
                codes, e_lj, e_coul = self._pair_buffers(n)
                k.pair_table_codes(
                    self._pair_spec, pairs.i, pairs.j, pairs.dx, pairs.r2,
                    codes, e_lj, e_coul,
                )
                nb = NonbondedResult(
                    energy_lj=float(np.sum(e_lj[:n])),
                    energy_coul=float(np.sum(e_coul[:n])),
                    i=pairs.i,
                    j=pairs.j,
                    force=None,
                )
            return nb, codes[:n]
        nb = self._range_limited(positions)
        with self.timers.time("machine_quantize"):
            codes = force_codec.quantize_round_only(nb.force)
        return nb, codes

    # -- overridden force paths ---------------------------------------------

    def compute_fixed(self, positions, force_codec, include_long_range: bool = True):
        s = self.system
        m = self.machine
        before = self.timers.snapshot()
        acc = self._accumulator("short", force_codec)
        energies: dict[str, float] = {}

        # Range-limited pairs: computed on their NT nodes.
        nb, assign = self.backend.range_limited(self, positions, force_codec, acc)
        m.account_force_export(assign.node, nb.i, nb.j)
        m.last_pair_assignment = assign
        energies["lj"] = nb.energy_lj
        energies["coulomb_real"] = nb.energy_coul

        # Bond terms on their statically assigned geometry cores.
        bonded = self._bonded(positions)
        with self.timers.time("machine_deposit"):
            self.backend.deposit_bonded(self, acc, bonded, force_codec)
        energies["bond"] = bonded[0].energy
        energies["angle"] = bonded[1].energy
        energies["dihedral"] = bonded[2].energy

        if include_long_range:
            long_codes, long_energies = self.compute_long_fixed(positions, force_codec)
            acc.deposit_dense(long_codes)
            energies.update(long_energies)

        # Final assembly (accumulator readout, virtual-site spreading,
        # float reconstruction) is charged to its own leaf phase so the
        # profiler's attribution stays tight.
        with self.timers.time("machine_collect"):
            total = self._spread_vsite_codes(acc.total())
            report = ForceReport(
                forces=force_codec.reconstruct(total),
                energies=energies,
                n_pairs=nb.n_pairs,
                timings=self.timers.delta_since(before),
            )
        return total, report

    def compute_long_fixed(self, positions, force_codec):
        acc = self._accumulator("long", force_codec)

        # Correction pairs on their owners' correction pipelines.
        corr = self._corrections(positions)
        if corr.n_pairs:
            ccodes = force_codec.quantize_round_only(corr.force)
            with self.timers.time("machine_deposit"):
                self.backend.deposit_corrections(self, acc, corr, ccodes)

        e_k = 0.0
        if self.gse is not None:
            with self.timers.time("machine_mesh"):
                e_k = self.backend.mesh_long_range(self, positions, acc, force_codec)

        energies = {
            "correction": corr.energy_exclusion + corr.energy_14_coul,
            "lj14": corr.energy_14_lj,
            "coulomb_kspace": e_k,
            "coulomb_self": self._e_self,
        }
        return acc.raw(), energies


class AntonMachine:
    """A simulated n-node Anton machine running one chemical system.

    Parameters
    ----------
    n_nodes:
        Power-of-two node count (1 to 32768; the paper's flagship is
        512).  Functional results are bitwise independent of this.
    subbox_divisions:
        Subboxes per home box per axis for NT match efficiency.
    migration_interval:
        Steps between migration passes (paper: 4-8).
    backend:
        Execution strategy: ``"serial"``, ``"vectorized"`` (default),
        ``"process"``, or a :class:`~repro.machine.backends.MachineBackend`
        instance.  State codes are bitwise identical across all of them.
    kernel_tier:
        Hot-loop implementation suite: ``"numpy"`` or ``"compiled"``
        (lazily built C via :mod:`repro.kernels`, falling back to numpy
        without a compiler).  ``None`` defers to the
        ``REPRO_KERNEL_TIER`` environment variable.  Bitwise identical
        across tiers, so it never appears in fingerprints.
    kernel_threads:
        Worker-lane count for the compiled tier's persistent pthread
        pool (``None`` defers to ``REPRO_KERNEL_THREADS``, default 1).
        Bitwise-invisible like the tier knob: per-thread fixed-point
        partials reduce with wrapping adds, so every thread count
        produces identical trajectories, checkpoints, and state codes.
    faults:
        Optional fault injection: a :class:`~repro.fault.FaultSchedule`,
        a rates dict, or a ``--faults``-style spec string (e.g.
        ``"drop=1e-3,crash=1"``).  Faults are injected, detected, and
        healed inside :meth:`run`; by construction (and by the chaos
        tests) the recovered trajectory is bit-identical to a fault-free
        run.
    fault_seed:
        Hash key for rate-driven fault schedules (ignored when
        ``faults`` is already a :class:`~repro.fault.FaultSchedule`).
    recovery:
        Optional :class:`~repro.fault.RecoveryPolicy` overriding the
        default retry/backoff/snapshot knobs.
    routed:
        Enable the routed network fabric: every charged message is also
        expanded into dimension-ordered per-link traversals
        (:class:`repro.network.LinkRouter`), feeding
        :meth:`network_report` and ``profile()["network"]``.  Pass a
        :class:`repro.network.RoutedConfig` to set multicast mode or
        delta compression.  Accounting only — trajectories, checkpoints,
        and the flat traffic counters are bitwise unchanged.
    """

    def __init__(
        self,
        system: ChemicalSystem,
        params: MDParams = MDParams(),
        n_nodes: int = 8,
        dt: float = 2.5,
        fixed_config: FixedPointConfig = FixedPointConfig(),
        subbox_divisions: int = 1,
        migration_interval: int = 4,
        bond_reassign_interval: int = 100_000,
        thermostat=None,
        constraints: bool = True,
        hw: AntonHardware = ANTON_2008,
        backend="vectorized",
        kernel_tier: str | None = None,
        kernel_threads: int | None = None,
        faults=None,
        fault_seed: int = 0,
        recovery: RecoveryPolicy | None = None,
        routed=False,
    ):
        if params.quantize_mesh_bits is None:
            params = replace(params, quantize_mesh_bits=40)
        self.system = system
        self.params = params
        self.hw = hw
        self.dt = float(dt)
        self.fixed_config = fixed_config
        self.topology = TorusTopology.for_node_count(n_nodes)
        if faults is not None and not isinstance(faults, FaultSchedule):
            faults = FaultSchedule(seed=fault_seed, rates=faults)
        self.fault_schedule = faults
        self.network = (
            FaultyNetwork(self.topology) if faults is not None else SimNetwork(self.topology)
        )
        self.router = None
        if routed:
            config = routed if isinstance(routed, RoutedConfig) else None
            self.router = LinkRouter(self.topology, config, hw)
            self.network.attach_router(self.router)
        self.decomp = SpatialDecomposition(system.box, self.topology, subbox_divisions)
        self.migration = MigrationSchedule(
            self.decomp, system.topology, interval=migration_interval
        )
        self.bond_reassign_interval = int(bond_reassign_interval)
        self.owners = self.migration.initialize(system.positions)
        self.bond_assignment = assign_bond_terms(system.topology, self.owners, hw)
        self.correction_lists = correction_pairs_per_node(system.exclusions, self.owners)
        self.dfft = None
        if all(mm % d == 0 for mm, d in zip(params.mesh, self.topology.dims)):
            self.dfft = DistributedFFT3D(params.mesh, self.topology, self.network)
        self.backend = make_backend(backend, kernel_tier, kernel_threads)
        self.calc = MachineForceCalculator(system, params, self, self.backend)
        self.provider = MTSForceProvider(self.calc, force_codec=fixed_config.force_codec())
        solver = None
        if constraints and system.topology.n_constraints:
            solver = ConstraintSolver(
                system.topology, system.masses, system.box,
                kernels=self.backend.kernels,
            )
        self.last_pair_assignment = None
        self.integrator = FixedPointIntegrator(
            system,
            self.provider,
            dt,
            config=fixed_config,
            constraints=solver,
            thermostat=thermostat,
            timers=self.calc.timers,
        )
        self.fault_controller = None
        if faults is not None:
            self.fault_controller = FaultController(
                faults, policy=recovery, timers=self.calc.timers
            )

    def close(self) -> None:
        """Release backend resources (worker pools).  Idempotent."""
        self.backend.close()

    # -- traffic accounting -------------------------------------------------

    def _node_occupancy(self) -> np.ndarray:
        """Atoms per home box at the current positions (by box id)."""
        coords = self.decomp.box_coord(self.integrator.positions)
        dims = self.decomp.dims
        flat = (coords[:, 0] * dims[1] + coords[:, 1]) * dims[2] + coords[:, 2]
        return np.bincount(flat, minlength=self.topology.n_nodes)

    def account_position_import(self) -> None:
        """Charge the NT position import: whole remote boxes of each
        node's tower and plate, one multicast message per remote box,
        plus bond-destination position sends."""
        with self.calc.timers.time("machine_traffic"):
            self.backend.account_position_import(self)
            # Bond destinations: atoms' positions sent to remote term
            # nodes.  Charged as aggregate volume (sources and
            # destinations are adjacent by construction) with no hop
            # weighting, so it deliberately bypasses the router — the
            # per-link sums stay an exact decomposition of hop_bytes.
            n_msgs = self.bond_assignment.destination_messages(self.owners)
            if n_msgs:
                stats = self.network.stats
                stats.messages += n_msgs
                stats.bytes += n_msgs * self.hw.bytes_per_position
                stats.charge_tag(
                    "bond_destinations", n_msgs, n_msgs * self.hw.bytes_per_position
                )

    def account_force_export(self, pair_nodes: np.ndarray, i: np.ndarray, j: np.ndarray) -> None:
        """Charge force returns from computing nodes to atom owners.

        One message per (computing node, owner) route per step, sized by
        the exact count of exported per-atom force sums on that route.
        """
        with self.calc.timers.time("machine_traffic"):
            self.backend.account_force_export(self, pair_nodes, i, j)

    def account_fft(self) -> None:
        """Charge forward + inverse FFT redistributions."""
        if self.dfft is not None:
            for axis in (2, 1, 0):
                self.dfft._charge_axis_phase(axis)
            for axis in (0, 1, 2):
                self.dfft._charge_axis_phase(axis)

    def account_migration(self, n_migrated: int) -> None:
        # Aggregate volume with no routes or hop weighting (migrating
        # atoms move to an adjacent box); bypasses the router like the
        # bond-destination charge above.
        self.network.stats.messages += n_migrated
        self.network.stats.bytes += n_migrated * 64
        self.network.stats.charge_tag("migration", n_migrated, n_migrated * 64)

    # -- running ------------------------------------------------------------

    def reassign_bond_terms(self) -> None:
        """Recompute the static bond-term placement from current owners.

        "To ensure that the bond destinations for each atom remain on
        nodes close to the atom's home node as the chemical system
        evolves, we recompute the assignment of bond terms to GCs
        roughly every 100,000 time steps" (Section 3.2.3).  Placement
        affects only communication, never the force bits.
        """
        self.bond_assignment = assign_bond_terms(self.system.topology, self.owners, self.hw)
        self.correction_lists = correction_pairs_per_node(self.system.exclusions, self.owners)

    def step(self, n: int = 1) -> None:
        """Advance n machine time steps.

        Each step is recorded as a ``machine_step`` phase whose
        children (position import, the integrator's ``step`` subtree,
        migration, bond reassignment) cover essentially all of the
        wall time — the basis of :meth:`profile`.
        """
        t = self.calc.timers
        for _ in range(n):
            with t.time("machine_step"):
                with t.time("import"):
                    self.account_position_import()
                self.integrator.step()
                with t.time("migration"):
                    event = self.migration.step(self.integrator.positions)
                    if event is not None:
                        self.account_migration(event.n_migrated)
                        self.owners = self.migration.owners
                if self.integrator.step_count % self.bond_reassign_interval == 0:
                    with t.time("bond_reassign"):
                        self.reassign_bond_terms()

    def run(
        self,
        n_steps: int,
        trajectory: TrajectoryWriter | None = None,
        trajectory_every: int = 0,
        checkpoint_store=None,
        checkpoint_every: int = 0,
    ) -> None:
        """Advance ``n_steps`` with durable-store hooks.

        Frames and rolling snapshots are emitted every
        ``trajectory_every`` / ``checkpoint_every`` steps of the
        *global* step count, so a resumed run writes at exactly the
        steps the uninterrupted run would have.  I/O time is charged
        to the ``machine_io`` timer (it is not part of a machine step).

        With fault injection armed (``faults=`` at construction), every
        step is bracketed by the :class:`~repro.fault.FaultController`:
        the wire ledger records the step's traffic, the barrier audit
        detects and retries message faults, and a node crash rolls the
        machine back to the newest valid checkpoint — ``checkpoint_store``
        when given, else the controller's in-memory snapshot ring — and
        replays deterministically.  Replayed steps charge their traffic
        to the network's recovery pool and skip store writes that
        already happened, so both the primary traffic statistics and
        the on-disk artifacts of a healed run are exactly a clean run's.
        """
        t = self.calc.timers
        fc = self.fault_controller
        if fc is not None:
            fc.start_run(self, n_steps)
        target = self.integrator.step_count + n_steps
        while self.integrator.step_count < target:
            step = self.integrator.step_count + 1
            if fc is not None:
                fc.begin_step(self, step)
            self.step()
            if fc is not None:
                with t.time("machine_fault_barrier"):
                    if fc.after_step(self, step):
                        with t.time("machine_rollback"):
                            fc.rollback(self, checkpoint_store)
                        continue
                if fc.io_done(step):
                    continue
            if trajectory is not None and trajectory_every and step % trajectory_every == 0:
                with t.time("machine_io"):
                    self.write_frame(trajectory)
            if checkpoint_store is not None and checkpoint_every and step % checkpoint_every == 0:
                with t.time("machine_io"):
                    checkpoint_store.save(self.checkpoint(), step)
            if fc is not None:
                fc.maybe_snapshot(self, step, has_store=checkpoint_store is not None)

    # -- trajectory output ---------------------------------------------------

    def open_trajectory(self, path, meta: dict | None = None) -> TrajectoryWriter:
        """A :class:`TrajectoryWriter` configured for this machine."""
        cfg = self.fixed_config
        decode = {
            "storage": "codes",
            "position_bits": cfg.position_bits,
            "box": [float(x) for x in self.system.box.lengths],
            "velocity_bits": cfg.velocity_bits,
            "velocity_limit": cfg.velocity_limit,
        }
        return TrajectoryWriter(path, fingerprint=self.fingerprint(),
                                decode=decode, meta=meta)

    def append_trajectory(self, path) -> TrajectoryWriter:
        """Reopen ``path`` for resumed writing (truncates past-resume frames)."""
        return TrajectoryWriter.append(
            path, fingerprint=self.fingerprint(),
            resume_step=self.integrator.step_count,
        )

    def write_frame(self, writer: TrajectoryWriter) -> None:
        """Append the current exact machine state as one frame."""
        X, V = self.integrator.state_codes()
        step = self.integrator.step_count
        writer.write_frame(step, step * self.dt, {"X": X, "V": V})

    # -- checkpointing -------------------------------------------------------

    def fingerprint(self) -> dict:
        """Run identity embedded in checkpoints/trajectories.

        Node count, backend, and migration cadence are deliberately
        absent: by parallel invariance they influence only traffic,
        never the trajectory bits, so snapshots restore across any
        machine configuration.
        """
        return system_fingerprint(
            self.system, self.params, "machine", self.dt, self.fixed_config
        )

    def checkpoint(self) -> dict:
        """Snapshot of the exact machine state (integer codes).

        Everything that influences future bits or traffic: integrator
        state codes and step count, the MTS call counter, atom
        ownership, and the migration clock.
        """
        X, V = self.integrator.state_codes()
        return {
            "X": X,
            "V": V,
            "step_count": self.integrator.step_count,
            "provider_calls": self.provider.calls,
            "owners": self.owners.copy(),
            "steps_since_migration": self.migration.steps_since_migration,
            "migration_step": self.migration._step,
            "n_nodes": self.topology.n_nodes,
            "fingerprint": self.fingerprint(),
        }

    def restore(self, chk: dict) -> None:
        """Resume bit-exactly from a :meth:`checkpoint` snapshot.

        Works across machines and backends: state codes are integer,
        ownership-derived placement affects only traffic, and replaying
        the force evaluation with the rewound MTS counter reproduces
        the same long-range schedule decision — so the continued
        trajectory is bitwise the uninterrupted one.
        """
        stored = chk.get("fingerprint")
        if stored is not None:
            check_fingerprint(stored, self.fingerprint(), what="checkpoint")
        integ = self.integrator
        integ.X = chk["X"].copy()
        integ.V = chk["V"].copy()
        integ.step_count = int(chk["step_count"])
        if int(chk.get("n_nodes", self.topology.n_nodes)) == self.topology.n_nodes:
            self.owners = chk["owners"].copy()
        else:
            # Snapshot from a different machine configuration: its
            # ownership map indexes another torus.  Reassign from the
            # restored positions — placement affects only traffic,
            # never the trajectory bits.
            self.owners = self.migration.initialize(integ.positions)
        self.migration.owners = self.owners
        self.migration.steps_since_migration = int(chk["steps_since_migration"])
        self.migration._step = int(chk["migration_step"])
        self.reassign_bond_terms()
        self.provider.calls = int(chk["provider_calls"]) - 1
        integ._force_codes, integ.last_info = self.provider(integ.positions)

    # -- observability -------------------------------------------------------

    @property
    def positions(self) -> np.ndarray:
        return self.integrator.positions

    def state_codes(self):
        return self.integrator.state_codes()

    def traffic_summary(self) -> dict[str, tuple[int, int]]:
        """(messages, bytes) per traffic class since construction.

        Primary traffic only: retransmissions and rollback-replay
        traffic live in :meth:`recovery_traffic_summary`, so these
        numbers match a fault-free run exactly (the Table 3 contract).
        """
        stats = self.network.stats
        if isinstance(self.network, FaultyNetwork):
            stats = self.network.primary_stats
        return dict(stats.by_tag)

    def recovery_traffic_summary(self) -> dict:
        """Fault-recovery traffic: retransmits plus replayed-step charges.

        Zero everywhere for machines built without ``faults=``.
        """
        if not isinstance(self.network, FaultyNetwork):
            return {"retransmit": (0, 0), "replay": (0, 0)}
        primary = self.network.primary_stats
        replay = self.network.recovery_stats
        return {
            "retransmit": (primary.retransmit_messages, primary.retransmit_bytes),
            "replay": (replay.messages, replay.bytes),
            "retransmit_by_tag": dict(primary.by_tag_retransmit),
        }

    def network_report(self, top: int = 3) -> dict:
        """Routed-fabric occupancy and congestion, per step so far.

        Requires ``routed=True`` at construction.  Per-phase critical
        links, multicast/compression savings, and the congested
        communication time (see :meth:`repro.network.LinkRouter.report`).
        """
        if self.router is None:
            raise ValueError("machine was built without routed=True")
        return self.router.report(steps=max(self.integrator.step_count, 1), top=top)

    def fault_report(self) -> dict[str, int]:
        """Fault/retry/rollback counters (empty without injection)."""
        if self.fault_controller is None:
            return {}
        return self.fault_controller.report()

    def messages_per_node_per_step(self) -> float:
        steps = max(self.integrator.step_count, 1)
        return self.network.stats.messages / (steps * self.topology.n_nodes)

    def phase_timings(self) -> dict[str, float]:
        """Cumulative seconds per engine phase.

        Covers the ``machine_*`` bookkeeping phases and the ``mesh_*``
        sub-phases (plan build, spread, FFT solve, interpolation) the
        backends charge inside ``machine_mesh``.
        """
        return {
            k: v
            for k, v in self.calc.timers.elapsed.items()
            if k.startswith(("machine_", "mesh_"))
        }

    def profile(self) -> dict:
        """Hierarchical per-step phase profile (the ``--profile`` dump).

        Returns per-step seconds for every phase recorded under the
        ``machine_step`` umbrella, nested exactly as the phases ran
        (``step -> force -> machine_mesh -> mesh_spread``...), plus two
        attribution ratios: ``coverage``, the fraction of the measured
        step wall time accounted for by its top-level children, and the
        stricter ``leaf_coverage``, the fraction attributed all the way
        down to *named leaf phases* — time inside a parent phase but in
        none of its children counts as unattributed, so this is the
        number that exposes hidden per-step bookkeeping.
        """
        out = self.calc.timers.profile("machine_step", self.integrator.step_count)
        out["kernel_tier"] = self.backend.kernels.tier
        out["kernel_threads"] = getattr(self.backend.kernels, "threads", 1)
        if self.router is not None:
            out["network"] = self.network_report()
        if self.fault_controller is not None:
            out["faults"] = self.fault_report()
            out["recovery_traffic"] = {
                k: list(v) if isinstance(v, tuple) else v
                for k, v in self.recovery_traffic_summary().items()
            }
        return out

    def engine_seconds(self) -> float:
        """Cumulative machine-bookkeeping time (the backend-sensitive part).

        Sums NT assignment, force deposits, and traffic accounting —
        the phases whose cost depends on the execution backend — and
        excludes the physics kernels (pair forces, FFT, bonded) that
        every backend runs identically.
        """
        e = self.calc.timers.elapsed
        return sum(e.get(k, 0.0) for k in ENGINE_TIMERS)
