"""The functional Anton machine simulation.

:class:`AntonMachine` executes real MD time steps the way the hardware
does: atoms live on home nodes of a torus, every force contribution is
computed on the node the NT method assigns it to, quantized once, and
integer-accumulated; mesh charges accumulate in fixed point; the FFT
is logically distributed; positions/forces/bond-destinations/migration
traffic is charged to a simulated network.

Because integer addition commutes, the per-node deposit order cannot
change the force bits — which is exactly the paper's *parallel
invariance*: "a given simulation will evolve in exactly the same way
on any single- or multi-node Anton configuration" (Section 4).  The
integration tests run the same system on 1, 8, and 64 simulated nodes
and compare trajectories bit-for-bit.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.core.constraints import ConstraintSolver
from repro.core.forces import ForceCalculator, ForceReport, MDParams, MTSForceProvider
from repro.core.integrator import FixedPointConfig, FixedPointIntegrator
from repro.core.system import ChemicalSystem
from repro.fft import DistributedFFT3D
from repro.fixedpoint import FixedAccumulator
from repro.machine.config import ANTON_2008, AntonHardware
from repro.machine.flexible import assign_bond_terms, correction_pairs_per_node
from repro.parallel import (
    MigrationSchedule,
    SimNetwork,
    SpatialDecomposition,
    TorusTopology,
    nt_assign_pairs,
    tower_plate_boxes,
)

__all__ = ["MachineForceCalculator", "AntonMachine"]


class MachineForceCalculator(ForceCalculator):
    """A ForceCalculator that deposits every contribution per node.

    Produces bit-identical force codes to the base class (integer sums
    commute) while exercising the machine's work partitioning and
    charging communication to the simulated network.
    """

    def __init__(self, system: ChemicalSystem, params: MDParams, machine: "AntonMachine"):
        if params.quantize_mesh_bits is None:
            raise ValueError("machine execution requires quantize_mesh_bits")
        super().__init__(system, params)
        self.machine = machine

    # -- helpers -----------------------------------------------------------

    def _deposit_by_node(self, acc: FixedAccumulator, node: np.ndarray, i, j, codes) -> None:
        """Deposit pair contributions node by node (ascending id)."""
        order = np.argsort(node, kind="stable")
        boundaries = np.searchsorted(node[order], np.arange(self.machine.topology.n_nodes + 1))
        for n in range(self.machine.topology.n_nodes):
            sel = order[boundaries[n] : boundaries[n + 1]]
            if len(sel):
                acc.deposit(i[sel], codes[sel])
                acc.deposit(j[sel], -codes[sel])

    # -- overridden force paths ---------------------------------------------

    def compute_fixed(self, positions, force_codec, include_long_range: bool = True):
        s = self.system
        m = self.machine
        acc = FixedAccumulator((s.n_atoms, 3), force_codec.fmt)
        energies: dict[str, float] = {}

        # Range-limited pairs: computed on their NT nodes.
        nb = self._range_limited(positions)
        assign = nt_assign_pairs(m.decomp, positions, nb.i, nb.j)
        codes = force_codec.quantize_round_only(nb.force)
        self._deposit_by_node(acc, assign.node, nb.i, nb.j, codes)
        m.account_force_export(assign.node, nb.i, nb.j)
        m.last_pair_assignment = assign
        energies["lj"] = nb.energy_lj
        energies["coulomb_real"] = nb.energy_coul

        # Bond terms on their statically assigned geometry cores.
        bonded = self._bonded(positions)
        kinds = ("bond", "angle", "dihedral")
        cursor = {k: 0 for k in kinds}
        term_nodes = m.bond_assignment.term_node
        offset = 0
        for kind, contrib in zip(kinds, bonded):
            if contrib.n_terms:
                t_nodes = term_nodes[offset : offset + contrib.n_terms]
                c = force_codec.quantize_round_only(contrib.force)
                for n in np.unique(t_nodes):
                    sel = t_nodes == n
                    acc.deposit(contrib.idx[sel].ravel(), c[sel].reshape(-1, 3))
            offset += contrib.n_terms
            cursor[kind] = offset
        energies["bond"] = bonded[0].energy
        energies["angle"] = bonded[1].energy
        energies["dihedral"] = bonded[2].energy

        if include_long_range:
            long_codes, long_energies = self.compute_long_fixed(positions, force_codec)
            acc.deposit_dense(long_codes)
            energies.update(long_energies)

        total = self._spread_vsite_codes(acc.total())
        report = ForceReport(
            forces=force_codec.reconstruct(total), energies=energies, n_pairs=nb.n_pairs
        )
        return total, report

    def compute_long_fixed(self, positions, force_codec):
        s = self.system
        m = self.machine
        acc = FixedAccumulator((s.n_atoms, 3), force_codec.fmt)

        # Correction pairs on their owners' correction pipelines.
        corr = self._corrections(positions)
        if corr.n_pairs:
            ccodes = force_codec.quantize_round_only(corr.force)
            corr_nodes = m.owners[corr.i]
            self._deposit_by_node(acc, corr_nodes, corr.i, corr.j, ccodes)

        e_k = 0.0
        if self.gse is not None:
            # Charge spreading: each node spreads the atoms it owns into
            # a shared fixed-point mesh (order-invariant by construction).
            mesh_acc = np.zeros(self.gse.mesh_point_count(), dtype=np.int64)
            for n in range(m.topology.n_nodes):
                mine = m.owners == n
                if np.any(mine):
                    self.gse.spread_contributions(
                        positions[mine], s.charges[mine], mesh_acc, self.mesh_codec
                    )
            Q = self.mesh_codec.reconstruct(self.mesh_codec.wrap(mesh_acc)).reshape(
                tuple(self.gse.mesh)
            )
            m.account_fft()
            phi, e_k = self.gse.solve(Q)

            # Force interpolation, per owning node.
            for n in range(m.topology.n_nodes):
                mine = np.nonzero(m.owners == n)[0]
                if len(mine):
                    f_k = self.gse.interpolate_forces(positions[mine], s.charges[mine], phi)
                    acc.deposit(mine, force_codec.quantize_round_only(f_k))

        energies = {
            "correction": corr.energy_exclusion + corr.energy_14_coul,
            "lj14": corr.energy_14_lj,
            "coulomb_kspace": e_k,
            "coulomb_self": self._e_self,
        }
        return acc.raw(), energies


class AntonMachine:
    """A simulated n-node Anton machine running one chemical system.

    Parameters
    ----------
    n_nodes:
        Power-of-two node count (1 to 32768; the paper's flagship is
        512).  Functional results are bitwise independent of this.
    subbox_divisions:
        Subboxes per home box per axis for NT match efficiency.
    migration_interval:
        Steps between migration passes (paper: 4-8).
    """

    def __init__(
        self,
        system: ChemicalSystem,
        params: MDParams = MDParams(),
        n_nodes: int = 8,
        dt: float = 2.5,
        fixed_config: FixedPointConfig = FixedPointConfig(),
        subbox_divisions: int = 1,
        migration_interval: int = 4,
        bond_reassign_interval: int = 100_000,
        thermostat=None,
        constraints: bool = True,
        hw: AntonHardware = ANTON_2008,
    ):
        if params.quantize_mesh_bits is None:
            params = replace(params, quantize_mesh_bits=40)
        self.system = system
        self.params = params
        self.hw = hw
        self.dt = float(dt)
        self.topology = TorusTopology.for_node_count(n_nodes)
        self.network = SimNetwork(self.topology)
        self.decomp = SpatialDecomposition(system.box, self.topology, subbox_divisions)
        self.migration = MigrationSchedule(
            self.decomp, system.topology, interval=migration_interval
        )
        self.bond_reassign_interval = int(bond_reassign_interval)
        self.owners = self.migration.initialize(system.positions)
        self.bond_assignment = assign_bond_terms(system.topology, self.owners, hw)
        self.correction_lists = correction_pairs_per_node(system.exclusions, self.owners)
        self.dfft = None
        if all(mm % d == 0 for mm, d in zip(params.mesh, self.topology.dims)):
            self.dfft = DistributedFFT3D(params.mesh, self.topology, self.network)
        self.calc = MachineForceCalculator(system, params, self)
        self.provider = MTSForceProvider(self.calc, force_codec=fixed_config.force_codec())
        solver = None
        if constraints and system.topology.n_constraints:
            solver = ConstraintSolver(system.topology, system.masses, system.box)
        self.last_pair_assignment = None
        self.integrator = FixedPointIntegrator(
            system,
            self.provider,
            dt,
            config=fixed_config,
            constraints=solver,
            thermostat=thermostat,
        )

    # -- traffic accounting -------------------------------------------------

    def account_position_import(self) -> None:
        """Charge the NT position import: whole remote boxes of each
        node's tower and plate, one multicast message per remote box."""
        positions = self.integrator.positions
        coords = self.decomp.box_coord(positions)
        dims = self.decomp.dims
        flat = (coords[:, 0] * dims[1] + coords[:, 1]) * dims[2] + coords[:, 2]
        counts = np.bincount(flat, minlength=self.topology.n_nodes)
        margin = self.migration.import_margin()
        reach = self.params.cutoff + margin
        for node in range(self.topology.n_nodes):
            tower, plate = tower_plate_boxes(self.decomp, self.topology.coord(node), reach)
            for bx in tower | plate:
                src = self.topology.node_id(bx)
                if src == node or counts[src] == 0:
                    continue
                self.network.send(
                    src,
                    node,
                    int(counts[src]) * self.hw.bytes_per_position,
                    tag="position_import",
                )
        # Bond destinations: atoms' positions sent to remote term nodes.
        n_msgs = self.bond_assignment.destination_messages(self.owners)
        # Charged as aggregate volume (sources and destinations are
        # adjacent nodes by construction of the assignment).
        if n_msgs:
            self.network.stats.messages += n_msgs
            self.network.stats.bytes += n_msgs * self.hw.bytes_per_position
            m, b = self.network.stats.by_tag.get("bond_destinations", (0, 0))
            self.network.stats.by_tag["bond_destinations"] = (
                m + n_msgs,
                b + n_msgs * self.hw.bytes_per_position,
            )

    def account_force_export(self, pair_nodes: np.ndarray, i: np.ndarray, j: np.ndarray) -> None:
        """Charge force returns from computing nodes to atom owners."""
        for atoms in (i, j):
            owner = self.owners[atoms]
            remote = pair_nodes != owner
            if not np.any(remote):
                continue
            # One message per (computing node, owner) pair per step,
            # carrying that route's summed contributions.
            routes = np.unique(
                pair_nodes[remote] * np.int64(self.topology.n_nodes) + owner[remote]
            )
            n_atoms_exported = len(np.unique(atoms[remote] * np.int64(self.topology.n_nodes**2) + pair_nodes[remote]))
            for r in routes:
                self.network.send(
                    int(r) // self.topology.n_nodes,
                    int(r) % self.topology.n_nodes,
                    max(
                        n_atoms_exported * self.hw.bytes_per_force // max(len(routes), 1),
                        self.hw.min_message_bytes,
                    ),
                    tag="force_export",
                )

    def account_fft(self) -> None:
        """Charge forward + inverse FFT redistributions."""
        if self.dfft is not None:
            for axis in (2, 1, 0):
                self.dfft._charge_axis_phase(axis)
            for axis in (0, 1, 2):
                self.dfft._charge_axis_phase(axis)

    def account_migration(self, n_migrated: int) -> None:
        m, b = self.network.stats.by_tag.get("migration", (0, 0))
        self.network.stats.by_tag["migration"] = (m + n_migrated, b + n_migrated * 64)
        self.network.stats.messages += n_migrated
        self.network.stats.bytes += n_migrated * 64

    # -- running ------------------------------------------------------------

    def reassign_bond_terms(self) -> None:
        """Recompute the static bond-term placement from current owners.

        "To ensure that the bond destinations for each atom remain on
        nodes close to the atom's home node as the chemical system
        evolves, we recompute the assignment of bond terms to GCs
        roughly every 100,000 time steps" (Section 3.2.3).  Placement
        affects only communication, never the force bits.
        """
        self.bond_assignment = assign_bond_terms(self.system.topology, self.owners, self.hw)
        self.correction_lists = correction_pairs_per_node(self.system.exclusions, self.owners)

    def step(self, n: int = 1) -> None:
        """Advance n machine time steps."""
        for _ in range(n):
            self.account_position_import()
            self.integrator.step()
            event = self.migration.step(self.integrator.positions)
            if event is not None:
                self.account_migration(event.n_migrated)
                self.owners = self.migration.owners
            if self.integrator.step_count % self.bond_reassign_interval == 0:
                self.reassign_bond_terms()

    @property
    def positions(self) -> np.ndarray:
        return self.integrator.positions

    def state_codes(self):
        return self.integrator.state_codes()

    def traffic_summary(self) -> dict[str, tuple[int, int]]:
        """(messages, bytes) per traffic class since construction."""
        return dict(self.network.stats.by_tag)

    def messages_per_node_per_step(self) -> float:
        steps = max(self.integrator.step_count, 1)
        return self.network.stats.messages / (steps * self.topology.n_nodes)
