"""The simulated Anton machine: hardware constants, HTIS and
flexible-subsystem models, and the functional whole-machine simulator."""

from repro.machine.backends import (
    MachineBackend,
    ProcessBackend,
    SerialBackend,
    VectorizedBackend,
    make_backend,
)
from repro.machine.config import ANTON_2008, AntonHardware
from repro.machine.flexible import (
    BondTerm,
    BondTermAssignment,
    assign_bond_terms,
    correction_pairs_per_node,
)
from repro.machine.htis import HTISModel, HTISTiming
from repro.machine.machine import AntonMachine, MachineForceCalculator

__all__ = [
    "ANTON_2008",
    "AntonHardware",
    "BondTerm",
    "BondTermAssignment",
    "assign_bond_terms",
    "correction_pairs_per_node",
    "HTISModel",
    "HTISTiming",
    "AntonMachine",
    "MachineForceCalculator",
    "MachineBackend",
    "SerialBackend",
    "VectorizedBackend",
    "ProcessBackend",
    "make_backend",
]
