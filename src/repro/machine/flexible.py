"""Flexible-subsystem model: geometry cores, static bond-term
assignment, bond destinations, and the correction pipeline
(paper Sections 2.2, 3.2.3).

"Bond terms are statically assigned to GCs, so that each atom has a
fixed set of 'bond destinations.'  On every time step an atom's
position is sent directly to the flexible subsystems containing its
bond destinations ... this approach allows us to perform static
load-balancing among the GCs so that the worst-case load is
minimized."
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forcefield import ExclusionTable, Topology
from repro.machine.config import ANTON_2008, AntonHardware

__all__ = ["BondTerm", "BondTermAssignment", "assign_bond_terms", "correction_pairs_per_node"]

#: Relative GC cost of evaluating each term kind (arithmetic op counts).
TERM_COST = {"bond": 1.0, "angle": 2.4, "dihedral": 5.0}


@dataclass(frozen=True)
class BondTerm:
    """One bonded term: kind, its atoms, and its GC cost."""

    kind: str
    atoms: tuple[int, ...]
    cost: float


@dataclass
class BondTermAssignment:
    """Static assignment of bond terms to (node, geometry core) slots."""

    terms: list[BondTerm]
    term_node: np.ndarray          # node id per term
    term_gc: np.ndarray            # GC index within node per term
    gc_load: dict[tuple[int, int], float]  # (node, gc) -> summed cost
    bond_destinations: dict[int, set[int]]  # atom -> nodes needing its position

    def worst_gc_load(self) -> float:
        return max(self.gc_load.values(), default=0.0)

    def node_load(self, node: int) -> float:
        return sum(v for (n, _gc), v in self.gc_load.items() if n == node)

    def destination_messages(self, owners: np.ndarray) -> int:
        """Off-node position sends per step: one per (atom, remote
        destination node) pair (then replicated on-chip to GCs and the
        correction pipeline for free)."""
        count = 0
        for atom, nodes in self.bond_destinations.items():
            count += sum(1 for n in nodes if n != owners[atom])
        return count


def _gather_terms(topology: Topology) -> list[BondTerm]:
    topology.compile()
    terms: list[BondTerm] = []
    for idx in topology.bond_idx:
        terms.append(BondTerm("bond", tuple(int(a) for a in idx), TERM_COST["bond"]))
    for idx in topology.angle_idx:
        terms.append(BondTerm("angle", tuple(int(a) for a in idx), TERM_COST["angle"]))
    for idx in topology.dihedral_idx:
        terms.append(BondTerm("dihedral", tuple(int(a) for a in idx), TERM_COST["dihedral"]))
    return terms


def assign_bond_terms(
    topology: Topology,
    owners: np.ndarray,
    hw: AntonHardware = ANTON_2008,
) -> BondTermAssignment:
    """Statically assign bond terms to geometry cores.

    Each term goes to the node owning its first atom (keeping bond
    destinations close to home nodes, as the periodic reassignment in
    the paper maintains); within a node, terms are spread over the GCs
    by longest-processing-time-first, minimizing the worst-case load.
    """
    terms = _gather_terms(topology)
    term_node = np.array([owners[t.atoms[0]] for t in terms], dtype=np.int64)

    # LPT per node: sort that node's terms by cost descending, place
    # each on the currently lightest GC.
    term_gc = np.zeros(len(terms), dtype=np.int64)
    gc_load: dict[tuple[int, int], float] = {}
    for node in np.unique(term_node):
        t_ids = np.nonzero(term_node == node)[0]
        order = sorted(t_ids, key=lambda t: (-terms[t].cost, t))
        loads = [0.0] * hw.n_geometry_cores
        for t in order:
            gc = int(np.argmin(loads))
            term_gc[t] = gc
            loads[gc] += terms[t].cost
        for gc, load in enumerate(loads):
            if load:
                gc_load[(int(node), gc)] = load

    destinations: dict[int, set[int]] = {}
    for t, term in enumerate(terms):
        for atom in term.atoms:
            destinations.setdefault(atom, set()).add(int(term_node[t]))
    return BondTermAssignment(
        terms=terms,
        term_node=term_node,
        term_gc=term_gc,
        gc_load=gc_load,
        bond_destinations=destinations,
    )


def correction_pairs_per_node(
    exclusions: ExclusionTable, owners: np.ndarray
) -> dict[int, int]:
    """Correction-pipeline list lengths per node.

    Correction pairs (excluded + 1-4) are processed on the node owning
    the pair's first atom — the correction pipeline is "a PPIP with the
    necessary control logic to process a list of atom pairs"
    (Section 3.1).
    """
    out: dict[int, int] = {}
    for arr in (exclusions.excluded, exclusions.pair14):
        if len(arr):
            nodes, counts = np.unique(owners[arr[:, 0]], return_counts=True)
            for n, c in zip(nodes, counts):
                out[int(n)] = out.get(int(n), 0) + int(c)
    return out
