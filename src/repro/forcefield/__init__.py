"""Force-field substrate: topologies, bonded terms, LJ/Coulomb
nonbonded kernels (analytic and PPIP-tabulated), exclusions, and rigid
water models."""

from repro.forcefield.bonded import (
    BondedContributions,
    all_bonded_forces,
    angle_forces,
    bond_forces,
    dihedral_forces,
    scatter_forces,
)
from repro.forcefield.exclusions import ExclusionTable, build_exclusions
from repro.forcefield.nonbonded import (
    NonbondedResult,
    build_kernel_tables,
    lj_energy_prefactor,
    nonbonded_real_space,
    nonbonded_real_space_tabulated,
)
from repro.forcefield.parameters import LJTable
from repro.forcefield.topology import Topology
from repro.forcefield.water import (
    TIP3P,
    TIP4PEW,
    WaterModel,
    add_water_to_topology,
    water_charges,
    water_masses,
    water_site_positions,
)

__all__ = [
    "BondedContributions",
    "all_bonded_forces",
    "angle_forces",
    "bond_forces",
    "dihedral_forces",
    "scatter_forces",
    "ExclusionTable",
    "build_exclusions",
    "NonbondedResult",
    "build_kernel_tables",
    "lj_energy_prefactor",
    "nonbonded_real_space",
    "nonbonded_real_space_tabulated",
    "LJTable",
    "Topology",
    "TIP3P",
    "TIP4PEW",
    "WaterModel",
    "add_water_to_topology",
    "water_charges",
    "water_masses",
    "water_site_positions",
]
