"""Rigid water models: TIP3P (3-site) and TIP4P-Ew (4-site).

The paper's protein benchmarks use rigid TIP3P; the millisecond BPTI
run uses TIP4P-Ew, whose negative charge sits on a massless M site —
"each of the four particles in this water model is treated
computationally as an atom" (Section 5.3).  Rigidity comes from three
distance constraints (no bond/angle terms — which is why the paper's
water-only systems skip bond-term work entirely), and the M site is a
linear virtual site whose force redistributes to O/H/H.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.forcefield.topology import Topology

__all__ = ["WaterModel", "TIP3P", "TIP4PEW", "water_site_positions", "add_water_to_topology"]

#: Water masses, amu.
MASS_O = 15.9994
MASS_H = 1.008


@dataclass(frozen=True)
class WaterModel:
    """Parameters of a rigid water model."""

    name: str
    r_oh: float          # O-H distance, A
    angle_hoh: float     # H-O-H angle, radians
    q_h: float           # charge on each hydrogen, e
    sigma_o: float       # LJ sigma on oxygen, A
    eps_o: float         # LJ epsilon on oxygen, kcal/mol
    r_om: float = 0.0    # O-M distance for 4-site models, A

    @property
    def four_site(self) -> bool:
        return self.r_om > 0.0

    @property
    def sites_per_molecule(self) -> int:
        return 4 if self.four_site else 3

    @property
    def q_charged_center(self) -> float:
        """Charge on O (3-site) or M (4-site)."""
        return -2.0 * self.q_h

    @property
    def r_hh(self) -> float:
        """H-H distance implied by the rigid geometry."""
        return 2.0 * self.r_oh * math.sin(self.angle_hoh / 2.0)

    @property
    def vsite_weight(self) -> float:
        """Linear vsite weight a with r_M = r_O + a (r_H1 - r_O) + a (r_H2 - r_O).

        At the rigid geometry the bisector has length
        ``2 r_oh cos(angle/2)``, so ``a = r_om / (2 r_oh cos(angle/2))``.
        """
        if not self.four_site:
            return 0.0
        return self.r_om / (2.0 * self.r_oh * math.cos(self.angle_hoh / 2.0))


TIP3P = WaterModel(
    name="TIP3P",
    r_oh=0.9572,
    angle_hoh=math.radians(104.52),
    q_h=0.417,
    sigma_o=3.15061,
    eps_o=0.1521,
)

TIP4PEW = WaterModel(
    name="TIP4P-Ew",
    r_oh=0.9572,
    angle_hoh=math.radians(104.52),
    q_h=0.52422,
    sigma_o=3.16435,
    eps_o=0.16275,
    r_om=0.125,
)


def water_site_positions(model: WaterModel) -> np.ndarray:
    """Local site coordinates of one molecule: O at the origin, the
    molecular plane = xz, bisector along +z.  Rows: O, H1, H2[, M]."""
    half = model.angle_hoh / 2.0
    hx = model.r_oh * math.sin(half)
    hz = model.r_oh * math.cos(half)
    sites = [
        [0.0, 0.0, 0.0],
        [hx, 0.0, hz],
        [-hx, 0.0, hz],
    ]
    if model.four_site:
        sites.append([0.0, 0.0, model.r_om])
    return np.array(sites)


def water_charges(model: WaterModel) -> np.ndarray:
    """Per-site charges in the O, H1, H2[, M] order."""
    if model.four_site:
        return np.array([0.0, model.q_h, model.q_h, model.q_charged_center])
    return np.array([model.q_charged_center, model.q_h, model.q_h])


def water_masses(model: WaterModel) -> np.ndarray:
    """Per-site masses; the M site is massless (a virtual site)."""
    if model.four_site:
        return np.array([MASS_O, MASS_H, MASS_H, 0.0])
    return np.array([MASS_O, MASS_H, MASS_H])


def add_water_to_topology(top: Topology, first_atom: int, model: WaterModel) -> None:
    """Register one water molecule's constraints/vsite/exclusions.

    ``first_atom`` is the system index of the molecule's O site; the
    H (and M) sites must follow contiguously in the builder's order.
    """
    o, h1, h2 = first_atom, first_atom + 1, first_atom + 2
    top.add_constraint(o, h1, model.r_oh)
    top.add_constraint(o, h2, model.r_oh)
    top.add_constraint(h1, h2, model.r_hh)
    if model.four_site:
        m = first_atom + 3
        top.add_virtual_site(m, o, h1, h2, model.vsite_weight)
        # M interacts with nothing inside its own molecule.
        top.add_exclusion(m, h1)
        top.add_exclusion(m, h2)
