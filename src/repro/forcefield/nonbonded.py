"""Range-limited nonbonded interactions: LJ + screened Coulomb.

Two execution paths compute the same physics:

* :func:`nonbonded_real_space` — analytic float64 kernels ("Desmond
  double precision" reference path).
* :func:`nonbonded_real_space_tabulated` — tiered piecewise-cubic
  tables of r² ("Anton PPIP" path, paper Section 4), built by
  :func:`build_kernel_tables`.

Both return per-pair force contributions so callers can accumulate in
floating point or in order-invariant fixed point.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ewald.kernels import (
    real_space_energy_kernel,
    real_space_force_kernel,
)
from repro.forcefield.exclusions import ExclusionTable
from repro.forcefield.parameters import LJTable
from repro.functions import KernelTableSet, Tier
from repro.geometry import NeighborPairs
from repro.util import COULOMB

__all__ = [
    "NonbondedResult",
    "lj_energy_prefactor",
    "nonbonded_real_space",
    "build_kernel_tables",
    "nonbonded_real_space_tabulated",
]


@dataclass(frozen=True)
class NonbondedResult:
    """Pairwise nonbonded energies and force contributions.

    ``force`` is the force on atom ``i`` of each pair; the force on
    ``j`` is its negation (the NT method exploits exactly this symmetry
    to halve its plate, Figure 3a).

    ``e_lj_pairs``/``e_coul_pairs`` retain the per-pair energies whose
    pairwise ``np.sum`` produced the scalar totals, so segment consumers
    (the batched ensemble engine) can re-sum contiguous replica slices
    with bitwise-identical results.  They are ``None`` on paths that
    never materialize them (e.g. the fused compiled pair kernel's solo
    totals).
    """

    energy_lj: float
    energy_coul: float
    i: np.ndarray
    j: np.ndarray
    force: np.ndarray
    e_lj_pairs: np.ndarray | None = None
    e_coul_pairs: np.ndarray | None = None

    @property
    def energy(self) -> float:
        return self.energy_lj + self.energy_coul

    @property
    def n_pairs(self) -> int:
        return len(self.i)


def lj_energy_prefactor(r2: np.ndarray, a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """LJ energy and force prefactor from A/B coefficients.

    ``E = A/r^12 - B/r^6``; force vector is ``(12A/r^14 - 6B/r^8) dx``.
    """
    inv_r2 = 1.0 / r2
    inv_r6 = inv_r2 * inv_r2 * inv_r2
    inv_r12 = inv_r6 * inv_r6
    energy = a * inv_r12 - b * inv_r6
    pref = (12.0 * a * inv_r12 - 6.0 * b * inv_r6) * inv_r2
    return energy, pref


def _shift_force_lj(r2, a, b, cutoff):
    """Shift-force LJ: force goes continuously to zero at the cutoff.

    ``F'(r) = F(r) - F(rc) * rhat``, ``E'(r) = E(r) - E(rc) + (r - rc) Fc``.
    Keeps the dynamics conservative through the cutoff, which the
    energy-drift experiments (Table 4) rely on.
    """
    r = np.sqrt(r2)
    e, p = lj_energy_prefactor(r2, a, b)
    rc2 = np.full_like(r2, cutoff * cutoff)
    e_c, p_c = lj_energy_prefactor(rc2, a, b)
    f_c = p_c * cutoff  # force magnitude at cutoff
    energy = e - e_c + (r - cutoff) * f_c
    pref = p - f_c / r
    return energy, pref


def _apply_exclusions(
    pairs: NeighborPairs, exclusions: ExclusionTable, assume_filtered: bool
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Drop excluded/1-4 pairs unless the list pre-filtered them.

    ``assume_filtered=True`` is set by callers whose pair source (the
    buffered :class:`~repro.geometry.NeighborList`) already applied the
    static exclusion mask at build time, skipping the per-evaluation
    membership search.
    """
    if assume_filtered:
        return pairs.i, pairs.j, pairs.dx, pairs.r2
    keep = ~exclusions.is_excluded(pairs.i, pairs.j)
    return pairs.i[keep], pairs.j[keep], pairs.dx[keep], pairs.r2[keep]


def nonbonded_real_space(
    pairs: NeighborPairs,
    charges: np.ndarray,
    type_ids: np.ndarray,
    lj_table: LJTable,
    exclusions: ExclusionTable,
    ewald_sigma: float,
    lj_mode: str = "shift_force",
    cutoff: float | None = None,
    assume_filtered: bool = False,
) -> NonbondedResult:
    """Analytic range-limited forces over a pair list.

    Excluded and 1-4 pairs are skipped entirely here; the correction
    path (:mod:`repro.ewald.correction`) handles them.
    """
    i, j, dx, r2 = _apply_exclusions(pairs, exclusions, assume_filtered)
    qq = charges[i] * charges[j]
    a, b = lj_table.pair_coefficients(type_ids[i], type_ids[j])

    if lj_mode == "shift_force":
        if cutoff is None:
            raise ValueError("shift_force mode needs the cutoff")
        e_lj, p_lj = _shift_force_lj(r2, a, b, cutoff)
    elif lj_mode == "cutoff":
        e_lj, p_lj = lj_energy_prefactor(r2, a, b)
    else:
        raise ValueError(f"unknown lj_mode {lj_mode!r}")

    e_coul = qq * real_space_energy_kernel(r2, ewald_sigma)
    p_coul = qq * real_space_force_kernel(r2, ewald_sigma)

    force = (p_lj + p_coul)[:, None] * dx
    return NonbondedResult(
        energy_lj=float(np.sum(e_lj)),
        energy_coul=float(np.sum(e_coul)),
        i=i,
        j=j,
        force=force,
        e_lj_pairs=e_lj,
        e_coul_pairs=e_coul,
    )


# -- tabulated (PPIP) path -------------------------------------------------

#: Tier layout for the steep dispersion kernels: entries concentrated at
#: small r^2 where r^-14 varies fastest (the paper's tiered indexing).
_DISPERSION_TIERS: tuple[Tier, ...] = (
    Tier(0.0, 1.0 / 64, 96),
    Tier(1.0 / 64, 1.0 / 16, 64),
    Tier(1.0 / 16, 1.0 / 4, 48),
    Tier(1.0 / 4, 1.0, 32),
)


#: Memoized table sets keyed on the full parameterization.  The Remez
#: fits behind a table set cost far more than any single evaluation, and
#: the benchmarks and machine simulator construct many ForceCalculators
#: with identical parameters — they now share one immutable set.
_TABLE_CACHE: dict[tuple[float, float, int, float], KernelTableSet] = {}


def build_kernel_tables(
    cutoff: float,
    ewald_sigma: float,
    mantissa_bits: int = 22,
    r_floor: float = 1.0,
) -> KernelTableSet:
    """Build (or fetch the memoized) PPIP table set for a parameterization.

    Tables: electrostatic force/energy (screened Coulomb per unit
    charge product) and the r^-12 / r^-6 dispersion force/energy
    kernels (per unit A/B coefficient).

    ``r_floor`` reflects the closest non-excluded approach.  Hydrogens
    without LJ cores (rigid-water H) can be pressed to ~1.4 A by
    hydrogen-bond geometry, so the floor sits at 1.0 A; the tiered
    segmentation keeps the steep small-r region accurate.

    Results are cached per ``(cutoff, sigma, mantissa_bits, r_floor)``;
    callers treat the returned set as read-only.
    """
    key = (float(cutoff), float(ewald_sigma), int(mantissa_bits), float(r_floor))
    cached = _TABLE_CACHE.get(key)
    if cached is not None:
        return cached
    ts = KernelTableSet(cutoff=cutoff, r_floor=r_floor)
    ts.add("elec_f", lambda r2: real_space_force_kernel(r2, ewald_sigma) / COULOMB, mantissa_bits=mantissa_bits)
    ts.add("elec_e", lambda r2: real_space_energy_kernel(r2, ewald_sigma) / COULOMB, mantissa_bits=mantissa_bits)
    ts.add("lj12_f", lambda r2: 12.0 / r2**7, tiers=_DISPERSION_TIERS, mantissa_bits=mantissa_bits)
    ts.add("lj6_f", lambda r2: 6.0 / r2**4, tiers=_DISPERSION_TIERS, mantissa_bits=mantissa_bits)
    ts.add("lj12_e", lambda r2: 1.0 / r2**6, tiers=_DISPERSION_TIERS, mantissa_bits=mantissa_bits)
    ts.add("lj6_e", lambda r2: 1.0 / r2**3, tiers=_DISPERSION_TIERS, mantissa_bits=mantissa_bits)
    _TABLE_CACHE[key] = ts
    return ts


def nonbonded_real_space_tabulated(
    pairs: NeighborPairs,
    charges: np.ndarray,
    type_ids: np.ndarray,
    lj_table: LJTable,
    exclusions: ExclusionTable,
    tables: KernelTableSet,
    assume_filtered: bool = False,
) -> NonbondedResult:
    """Table-driven range-limited forces (the Anton numerics path).

    Functionally parallel to :func:`nonbonded_real_space` with
    ``lj_mode="cutoff"``; differences from it measure table error
    (part of Table 4's "numerical force error").
    """
    i, j, dx, r2 = _apply_exclusions(pairs, exclusions, assume_filtered)
    qq = charges[i] * charges[j] * COULOMB
    a, b = lj_table.pair_coefficients(type_ids[i], type_ids[j])

    # One normalization and one segment lookup per distinct tier layout
    # (electrostatic and dispersion) feed all six table evaluations —
    # bitwise identical to six independent ``tables.evaluate`` calls.
    ev = tables.shared_evaluator(tables.normalize(r2))
    p = qq * ev("elec_f") + a * ev("lj12_f") - b * ev("lj6_f")
    e_coul = qq * ev("elec_e")
    e_lj = a * ev("lj12_e") - b * ev("lj6_e")
    return NonbondedResult(
        energy_lj=float(np.sum(e_lj)),
        energy_coul=float(np.sum(e_coul)),
        i=i,
        j=j,
        force=p[:, None] * dx,
        e_lj_pairs=e_lj,
        e_coul_pairs=e_coul,
    )
