"""Nonbonded (Lennard-Jones) parameter sets with combination rules."""

from __future__ import annotations

import numpy as np

__all__ = ["LJTable"]


class LJTable:
    """Per-type LJ parameters with precombined pair tables.

    Uses Lorentz–Berthelot combination: arithmetic-mean sigma,
    geometric-mean epsilon (the rule of the AMBER-family force fields
    the paper's simulations use).
    """

    def __init__(self, sigmas, epsilons):
        self.sigmas = np.asarray(sigmas, dtype=np.float64)
        self.epsilons = np.asarray(epsilons, dtype=np.float64)
        if self.sigmas.shape != self.epsilons.shape or self.sigmas.ndim != 1:
            raise ValueError("sigmas and epsilons must be 1-D and equal length")
        if np.any(self.sigmas < 0) or np.any(self.epsilons < 0):
            raise ValueError("LJ parameters must be non-negative")
        self.sigma_ij = 0.5 * (self.sigmas[:, None] + self.sigmas[None, :])
        self.eps_ij = np.sqrt(self.epsilons[:, None] * self.epsilons[None, :])

    @property
    def n_types(self) -> int:
        return len(self.sigmas)

    def pair_params(self, type_i: np.ndarray, type_j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Combined (sigma, epsilon) for arrays of type indices."""
        return self.sigma_ij[type_i, type_j], self.eps_ij[type_i, type_j]

    def pair_coefficients(self, type_i: np.ndarray, type_j: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """The (A, B) = (4 eps sigma^12, 4 eps sigma^6) coefficients.

        These are the per-pair multipliers that Anton feeds its
        dispersion tables: ``E = A/r^12 - B/r^6``.
        """
        s, e = self.pair_params(type_i, type_j)
        s6 = s**6
        return 4.0 * e * s6 * s6, 4.0 * e * s6
