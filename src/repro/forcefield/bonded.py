"""Bonded force terms: harmonic bonds, harmonic angles, periodic torsions.

Each routine returns per-term, per-atom force *contributions* rather
than a dense force array: the fixed-point pipeline quantizes each
contribution before accumulation (order-invariant integer sums), and
the simulated machine ships contributions between nodes.  Use
:func:`scatter_forces` for the plain float path.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry import Box
from repro.forcefield.topology import Topology

__all__ = [
    "BondedContributions",
    "bond_forces",
    "angle_forces",
    "dihedral_forces",
    "all_bonded_forces",
    "scatter_forces",
]

_SIN_FLOOR = 1e-8


@dataclass(frozen=True)
class BondedContributions:
    """Force contributions of a batch of terms.

    ``idx`` has shape (m, k) — the k atoms of each of m terms; ``force``
    has shape (m, k, 3) and rows sum to ~0 (Newton's third law).
    ``energy_terms`` holds the per-term energies whose (pairwise) sum is
    ``energy``; segment consumers (the batched ensemble engine) re-sum
    contiguous slices of it with the same ``np.sum`` reduction.
    """

    energy: float
    idx: np.ndarray
    force: np.ndarray
    energy_terms: np.ndarray | None = None

    @property
    def n_terms(self) -> int:
        return len(self.idx)


def _empty(width: int) -> BondedContributions:
    return BondedContributions(
        0.0, np.empty((0, width), np.int64), np.empty((0, width, 3)), np.empty(0)
    )


def scatter_forces(n_atoms: int, contribs: list[BondedContributions]) -> np.ndarray:
    """Accumulate contributions into a dense (n_atoms, 3) float array."""
    forces = np.zeros((n_atoms, 3))
    for c in contribs:
        if c.n_terms:
            np.add.at(forces, c.idx.ravel(), c.force.reshape(-1, 3))
    return forces


def bond_forces(positions: np.ndarray, box: Box, top: Topology) -> BondedContributions:
    """Harmonic bonds, ``E = k (r - r0)^2``."""
    top.compile()
    if not len(top.bond_idx):
        return _empty(2)
    i, j = top.bond_idx[:, 0], top.bond_idx[:, 1]
    dx = box.minimum_image(positions[i] - positions[j])
    r = np.linalg.norm(dx, axis=1)
    delta = r - top.bond_r0
    et = top.bond_k * delta**2
    energy = float(np.sum(et))
    # F_i = -dE/dr * dr/dx_i = -2k*delta * dx/r
    fmag = (-2.0 * top.bond_k * delta / r)[:, None]
    f_i = fmag * dx
    force = np.stack([f_i, -f_i], axis=1)
    return BondedContributions(energy, top.bond_idx, force, et)


def angle_forces(positions: np.ndarray, box: Box, top: Topology) -> BondedContributions:
    """Harmonic angles, ``E = k (theta - theta0)^2`` (j is central)."""
    top.compile()
    if not len(top.angle_idx):
        return _empty(3)
    i, j, k = top.angle_idx[:, 0], top.angle_idx[:, 1], top.angle_idx[:, 2]
    u = box.minimum_image(positions[i] - positions[j])
    v = box.minimum_image(positions[k] - positions[j])
    nu = np.linalg.norm(u, axis=1)
    nv = np.linalg.norm(v, axis=1)
    cos_t = np.clip(np.sum(u * v, axis=1) / (nu * nv), -1.0, 1.0)
    theta = np.arccos(cos_t)
    sin_t = np.maximum(np.sqrt(1.0 - cos_t**2), _SIN_FLOOR)
    delta = theta - top.angle_theta0
    et = top.angle_k * delta**2
    energy = float(np.sum(et))
    dEdt = 2.0 * top.angle_k * delta
    # grad_i theta = -(v/(nu nv) - cos * u/nu^2) / sin
    gi = -(v / (nu * nv)[:, None] - cos_t[:, None] * u / (nu**2)[:, None]) / sin_t[:, None]
    gk = -(u / (nu * nv)[:, None] - cos_t[:, None] * v / (nv**2)[:, None]) / sin_t[:, None]
    f_i = -dEdt[:, None] * gi
    f_k = -dEdt[:, None] * gk
    f_j = -f_i - f_k
    force = np.stack([f_i, f_j, f_k], axis=1)
    return BondedContributions(energy, top.angle_idx, force, et)


def dihedral_forces(positions: np.ndarray, box: Box, top: Topology) -> BondedContributions:
    """Periodic torsions, ``E = k (1 + cos(n*phi - delta))``."""
    top.compile()
    if not len(top.dihedral_idx):
        return _empty(4)
    ia, ib, ic, id_ = (top.dihedral_idx[:, c] for c in range(4))
    b1 = box.minimum_image(positions[ib] - positions[ia])
    b2 = box.minimum_image(positions[ic] - positions[ib])
    b3 = box.minimum_image(positions[id_] - positions[ic])
    n1 = np.cross(b1, b2)
    n2 = np.cross(b2, b3)
    nb2 = np.linalg.norm(b2, axis=1)
    # phi = atan2((n1 x n2) . b2hat, n1 . n2)
    phi = np.arctan2(np.sum(np.cross(n1, n2) * b2, axis=1) / nb2, np.sum(n1 * n2, axis=1))
    arg = top.dihedral_n * phi - top.dihedral_delta
    et = top.dihedral_k * (1.0 + np.cos(arg))
    energy = float(np.sum(et))
    dEdphi = -top.dihedral_k * top.dihedral_n * np.sin(arg)
    n1sq = np.maximum(np.sum(n1 * n1, axis=1), 1e-16)
    n2sq = np.maximum(np.sum(n2 * n2, axis=1), 1e-16)
    gi = (-nb2 / n1sq)[:, None] * n1
    gl = (nb2 / n2sq)[:, None] * n2
    s12 = (np.sum(b1 * b2, axis=1) / nb2**2)[:, None]
    s32 = (np.sum(b3 * b2, axis=1) / nb2**2)[:, None]
    gj = -(1.0 + s12) * gi + s32 * gl
    gk = s12 * gi - (1.0 + s32) * gl
    f = -dEdphi[:, None, None] * np.stack([gi, gj, gk, gl], axis=1)
    return BondedContributions(energy, top.dihedral_idx, f, et)


def all_bonded_forces(
    positions: np.ndarray, box: Box, top: Topology
) -> list[BondedContributions]:
    """All bonded term batches for a topology."""
    return [
        bond_forces(positions, box, top),
        angle_forces(positions, box, top),
        dihedral_forces(positions, box, top),
    ]
