"""Nonbonded exclusions and 1-4 scaling.

"In most force fields, the electrostatic and van der Waals forces
between pairs of atoms separated by one to three covalent bonds are
eliminated or scaled down" (Section 3.1).  This module derives the
1-2/1-3 exclusion set and the scaled 1-4 pair list from a topology's
covalent graph (bonds, constraints, and virtual-site attachments all
count as edges), and provides fast membership filtering for pair lists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forcefield.topology import Topology

__all__ = ["ExclusionTable", "build_exclusions"]


def _pair_keys(i: np.ndarray, j: np.ndarray, n_atoms: int) -> np.ndarray:
    lo = np.minimum(i, j).astype(np.int64)
    hi = np.maximum(i, j).astype(np.int64)
    return lo * np.int64(n_atoms) + hi


@dataclass(frozen=True)
class ExclusionTable:
    """Compiled exclusion data for one system.

    ``excluded`` contains 1-2 and 1-3 pairs (plus explicit extras);
    ``pair14`` the 1-4 pairs, which receive scaled interactions.  Both
    are (m, 2) with i < j, deduplicated and sorted.
    """

    n_atoms: int
    excluded: np.ndarray
    pair14: np.ndarray
    lj_scale14: float
    coul_scale14: float
    _excluded_keys: np.ndarray
    _pair14_keys: np.ndarray

    @property
    def n_excluded(self) -> int:
        return len(self.excluded)

    @property
    def n_pair14(self) -> int:
        return len(self.pair14)

    def is_excluded(self, i: np.ndarray, j: np.ndarray) -> np.ndarray:
        """True for pairs that must be skipped in the real-space sum.

        Both hard exclusions and 1-4 pairs are skipped there; 1-4
        interactions are added back, scaled, by the correction-force
        path (as on Anton's correction pipeline).
        """
        keys = _pair_keys(np.asarray(i), np.asarray(j), self.n_atoms)
        out = np.zeros(keys.shape, dtype=bool)
        for table in (self._excluded_keys, self._pair14_keys):
            if len(table):
                pos = np.searchsorted(table, keys)
                pos = np.minimum(pos, len(table) - 1)
                out |= table[pos] == keys
        return out


def build_exclusions(
    top: Topology,
    lj_scale14: float = 0.5,
    coul_scale14: float = 1.0 / 1.2,
) -> ExclusionTable:
    """Derive exclusions from the covalent graph of ``top``.

    The default 1-4 scales are the AMBER conventions (the paper's gpW,
    DHFR and BPTI simulations used AMBER99SB).
    """
    top.compile()
    n = top.n_atoms
    edges = top.bonded_graph_edges()
    adj: list[set[int]] = [set() for _ in range(n)]
    for i, j in edges:
        adj[int(i)].add(int(j))
        adj[int(j)].add(int(i))

    excluded: set[tuple[int, int]] = set()
    pair14: set[tuple[int, int]] = set()

    def canon(a: int, b: int) -> tuple[int, int]:
        return (a, b) if a < b else (b, a)

    for a in range(n):
        for b in adj[a]:  # 1-2
            if b > a:
                excluded.add((a, b))
        for b in adj[a]:  # 1-3 via b
            for c in adj[b]:
                if c != a:
                    excluded.add(canon(a, c))
        for b in adj[a]:  # 1-4 via b-c
            for c in adj[b]:
                if c == a:
                    continue
                for d in adj[c]:
                    if d != a and d != b:
                        pair14.add(canon(a, d))
    # Explicit extras are hard exclusions.
    for i, j in top.extra_exclusions:
        excluded.add(canon(int(i), int(j)))
    # A pair that is both 1-3 (through one path) and 1-4 (through
    # another, e.g. in rings) is excluded, not scaled.
    pair14 -= excluded
    pair14 = {p for p in pair14 if p[0] != p[1]}

    excluded_arr = np.array(sorted(excluded), dtype=np.int64).reshape(-1, 2)
    pair14_arr = np.array(sorted(pair14), dtype=np.int64).reshape(-1, 2)
    return ExclusionTable(
        n_atoms=n,
        excluded=excluded_arr,
        pair14=pair14_arr,
        lj_scale14=float(lj_scale14),
        coul_scale14=float(coul_scale14),
        _excluded_keys=_pair_keys(excluded_arr[:, 0], excluded_arr[:, 1], n) if len(excluded_arr) else np.empty(0, np.int64),
        _pair14_keys=_pair_keys(pair14_arr[:, 0], pair14_arr[:, 1], n) if len(pair14_arr) else np.empty(0, np.int64),
    )
