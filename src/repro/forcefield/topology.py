"""Molecular topology: the static term lists of a force field.

A :class:`Topology` collects everything that is fixed for the lifetime
of a simulation — bond/angle/dihedral terms, distance constraints,
virtual sites, exclusions — mirroring the paper's observation that
"each bonded force term (bond term) is specified prior to the
simulation as a small set of atoms along with parameters governing
their interaction" (Section 3.2.3).
"""

from __future__ import annotations

import numpy as np

__all__ = ["Topology"]


def _as_array(rows: list, dtype, width: int | None = None) -> np.ndarray:
    if not rows:
        shape = (0,) if width is None else (0, width)
        return np.empty(shape, dtype=dtype)
    return np.asarray(rows, dtype=dtype)


class Topology:
    """Mutable builder for per-term arrays, frozen by :meth:`compile`.

    Indices refer to atoms of the owning system.  Energies use the
    conventions:

    * bond:      ``E = k (r - r0)^2``
    * angle:     ``E = k (theta - theta0)^2``
    * dihedral:  ``E = k (1 + cos(n*phi - delta))``
    """

    def __init__(self, n_atoms: int):
        self.n_atoms = int(n_atoms)
        self._bonds: list[tuple[int, int, float, float]] = []
        self._angles: list[tuple[int, int, int, float, float]] = []
        self._dihedrals: list[tuple[int, int, int, int, float, int, float]] = []
        self._constraints: list[tuple[int, int, float]] = []
        self._vsites: list[tuple[int, int, int, int, float]] = []
        self._extra_exclusions: list[tuple[int, int]] = []
        self.compiled = False

    # -- building --------------------------------------------------------

    def _check(self, *idx: int) -> None:
        if self.compiled:
            raise RuntimeError("topology already compiled")
        for i in idx:
            if not 0 <= i < self.n_atoms:
                raise IndexError(f"atom index {i} out of range [0, {self.n_atoms})")
        if len(set(idx)) != len(idx):
            raise ValueError(f"repeated atom index in term {idx}")

    def add_bond(self, i: int, j: int, k: float, r0: float) -> None:
        """Harmonic bond between atoms i and j."""
        self._check(i, j)
        self._bonds.append((i, j, float(k), float(r0)))

    def add_angle(self, i: int, j: int, k: int, k_theta: float, theta0: float) -> None:
        """Harmonic angle i-j-k with j the central atom; theta0 in radians."""
        self._check(i, j, k)
        self._angles.append((i, j, k, float(k_theta), float(theta0)))

    def add_dihedral(
        self, i: int, j: int, k: int, l: int, k_phi: float, n: int, delta: float
    ) -> None:
        """Periodic torsion i-j-k-l; delta in radians, n the periodicity."""
        self._check(i, j, k, l)
        self._dihedrals.append((i, j, k, l, float(k_phi), int(n), float(delta)))

    def add_constraint(self, i: int, j: int, distance: float) -> None:
        """Rigid distance constraint (bond to hydrogen, rigid water edge)."""
        self._check(i, j)
        self._constraints.append((i, j, float(distance)))

    def add_virtual_site(self, site: int, parent: int, ref1: int, ref2: int, weight: float) -> None:
        """Linear 3-point virtual site (TIP4P-Ew M site).

        ``r_site = r_parent + weight * (r_ref1 - r_parent) + weight * (r_ref2 - r_parent)``;
        forces on the massless site redistribute linearly to the three
        parents.
        """
        self._check(site, parent, ref1, ref2)
        self._vsites.append((site, parent, ref1, ref2, float(weight)))

    def add_exclusion(self, i: int, j: int) -> None:
        """Force a nonbonded exclusion not implied by connectivity."""
        self._check(i, j)
        self._extra_exclusions.append((i, j))

    def merge(self, other: "Topology", offset: int) -> None:
        """Append another topology's terms with atom indices shifted."""
        if self.compiled:
            raise RuntimeError("topology already compiled")
        if offset + other.n_atoms > self.n_atoms:
            raise ValueError("merged topology exceeds atom count")
        for i, j, k, r0 in other._bonds:
            self._bonds.append((i + offset, j + offset, k, r0))
        for i, j, kk, kt, t0 in other._angles:
            self._angles.append((i + offset, j + offset, kk + offset, kt, t0))
        for i, j, kk, l, kp, n, d in other._dihedrals:
            self._dihedrals.append((i + offset, j + offset, kk + offset, l + offset, kp, n, d))
        for i, j, dist in other._constraints:
            self._constraints.append((i + offset, j + offset, dist))
        for s, p, r1, r2, w in other._vsites:
            self._vsites.append((s + offset, p + offset, r1 + offset, r2 + offset, w))
        for i, j in other._extra_exclusions:
            self._extra_exclusions.append((i + offset, j + offset))

    # -- compiled views ----------------------------------------------------

    def compile(self) -> "Topology":
        """Freeze term lists into ndarrays (idempotent)."""
        if self.compiled:
            return self
        b = self._bonds
        self.bond_idx = _as_array([(i, j) for i, j, *_ in b], np.int64, 2)
        self.bond_k = _as_array([k for *_ij, k, _r in b], np.float64)
        self.bond_r0 = _as_array([r for *_ij, _k, r in b], np.float64)
        a = self._angles
        self.angle_idx = _as_array([(i, j, k) for i, j, k, *_ in a], np.int64, 3)
        self.angle_k = _as_array([kt for *_i, kt, _t in a], np.float64)
        self.angle_theta0 = _as_array([t0 for *_i, _kt, t0 in a], np.float64)
        d = self._dihedrals
        self.dihedral_idx = _as_array([(i, j, k, l) for i, j, k, l, *_ in d], np.int64, 4)
        self.dihedral_k = _as_array([kp for *_i, kp, _n, _dl in d], np.float64)
        self.dihedral_n = _as_array([n for *_i, _kp, n, _dl in d], np.int64)
        self.dihedral_delta = _as_array([dl for *_i, _kp, _n, dl in d], np.float64)
        c = self._constraints
        self.constraint_idx = _as_array([(i, j) for i, j, _ in c], np.int64, 2)
        self.constraint_dist = _as_array([dist for *_ij, dist in c], np.float64)
        v = self._vsites
        self.vsite_idx = _as_array([(s, p, r1, r2) for s, p, r1, r2, _ in v], np.int64, 4)
        self.vsite_weight = _as_array([w for *_i, w in v], np.float64)
        self.extra_exclusions = _as_array(self._extra_exclusions, np.int64, 2)
        self.compiled = True
        return self

    # -- derived -----------------------------------------------------------

    @property
    def n_bond_terms(self) -> int:
        self.compile()
        return len(self.bond_idx)

    @property
    def n_constraints(self) -> int:
        self.compile()
        return len(self.constraint_idx)

    def bonded_graph_edges(self) -> np.ndarray:
        """Edges of the covalent graph: bonds plus constrained pairs.

        Constraints replace bonds (e.g. rigid water has no bond terms,
        exactly as the paper notes water needs no bond-term work), so
        exclusions must treat constrained pairs as bonded.
        """
        self.compile()
        parts = [self.bond_idx, self.constraint_idx]
        # A virtual site is "bonded" to its parent for exclusion purposes.
        if len(self.vsite_idx):
            parts.append(self.vsite_idx[:, :2])
        edges = np.concatenate([p for p in parts if len(p)], axis=0) if any(len(p) for p in parts) else np.empty((0, 2), np.int64)
        return edges

    def constraint_groups(self) -> list[np.ndarray]:
        """Connected components of the constraint graph (Section 3.2.4).

        Each group must be integrated on a single node; virtual sites
        ride along with their parent group.
        """
        self.compile()
        parent = np.arange(self.n_atoms)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        def union(x: int, y: int) -> None:
            rx, ry = find(x), find(y)
            if rx != ry:
                parent[rx] = ry

        for i, j in self.constraint_idx:
            union(int(i), int(j))
        for s, p, _r1, _r2 in self.vsite_idx:
            union(int(s), int(p))
        roots: dict[int, list[int]] = {}
        involved = set(self.constraint_idx.ravel().tolist()) | set(self.vsite_idx[:, 0].tolist()) | set(self.vsite_idx[:, 1].tolist())
        for atom in involved:
            roots.setdefault(find(int(atom)), []).append(int(atom))
        return [np.array(sorted(v), dtype=np.int64) for _k, v in sorted(roots.items())]
