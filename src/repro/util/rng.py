"""Deterministic random-number helpers.

Every stochastic component in the library draws from a
:class:`numpy.random.Generator` seeded explicitly, so simulations and
benchmarks are reproducible run to run (a property the paper's hardware
guarantees and that we preserve in the functional simulation).
"""

from __future__ import annotations

import numpy as np

#: Default seed used by builders and examples when none is supplied.
DEFAULT_SEED: int = 20090101


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a PCG64 generator with a fixed default seed.

    Parameters
    ----------
    seed:
        Explicit seed; ``None`` selects :data:`DEFAULT_SEED` (*not* OS
        entropy — determinism is a feature here, matching Anton's
        bit-reproducible execution model).
    """
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one seed.

    Used when a workload is split across simulated nodes so that the
    random content of each node's work is independent of the node count.
    """
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
