"""Shared utilities: units, constants, and deterministic RNG helpers."""

from repro.util.constants import (
    ACCEL_UNIT,
    BOLTZMANN,
    COULOMB,
    FS_PER_US,
    SECONDS_PER_DAY,
    SQRT_2PI,
    WATER_ATOM_DENSITY,
    WATER_MOLECULE_DENSITY,
)
from repro.util.rng import DEFAULT_SEED, make_rng, spawn_rngs

__all__ = [
    "ACCEL_UNIT",
    "BOLTZMANN",
    "COULOMB",
    "FS_PER_US",
    "SECONDS_PER_DAY",
    "SQRT_2PI",
    "WATER_ATOM_DENSITY",
    "WATER_MOLECULE_DENSITY",
    "DEFAULT_SEED",
    "make_rng",
    "spawn_rngs",
]
