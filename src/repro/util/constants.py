"""Physical constants and unit conventions.

The library uses the "academic MD" unit system throughout:

* length   : angstrom (A)
* time     : femtosecond (fs)
* energy   : kcal/mol
* mass     : atomic mass unit (amu)
* charge   : elementary charge (e)
* temperature : kelvin (K)

Forces are therefore kcal/mol/A, and accelerations require the
conversion factor :data:`ACCEL_UNIT` below.
"""

from __future__ import annotations

import math

#: Coulomb constant, kcal * A / (mol * e^2).
COULOMB: float = 332.063711

#: Boltzmann constant, kcal / (mol * K).
BOLTZMANN: float = 0.0019872041

#: Conversion from (kcal/mol/A) / amu to acceleration in A/fs^2.
#:
#: 1 kcal/mol/A = 4184 J/mol / 1e-10 m; dividing by 1 amu = 1e-3 kg/mol
#: gives 4.184e16 m/s^2 = 4.184e-4 A/fs^2.
ACCEL_UNIT: float = 4.184e-4

#: Femtoseconds per microsecond (used for energy-drift unit conversions).
FS_PER_US: float = 1.0e9

#: Seconds in a day (used for "simulated us/day" performance figures).
SECONDS_PER_DAY: float = 86400.0

#: sqrt(2*pi), used by Gaussian charge-spreading kernels.
SQRT_2PI: float = math.sqrt(2.0 * math.pi)

#: Approximate number density of atoms in water at ambient conditions,
#: atoms per cubic angstrom (3 atoms per ~29.9 A^3 molecule volume).
WATER_ATOM_DENSITY: float = 0.1003

#: Approximate number density of water molecules, molecules per A^3.
WATER_MOLECULE_DENSITY: float = 0.03343
