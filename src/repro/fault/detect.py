"""Fault detection: per-message checksums and step-barrier audits.

Detection never peeks at the fault schedule.  The sender side of every
charged message is recorded in a per-step wire ledger; injection
mutates only the *received image* (delivery flags, checksums, copy
counts).  At the step barrier the :class:`BarrierDetector` audits the
image against the ledger exactly the way real hardware would — missing
sequence numbers, checksum mismatches, duplicate sequence numbers,
late arrivals — so an injected fault that the detector fails to find
is a test failure, not a silent pass.

The ledger is canonically ordered (tags sorted, messages within a tag
sorted by ``(src, dst, nbytes)``) before a victim is selected, so the
identity of "the k-th message of step s" does not depend on whether
the backend charged the step's traffic one ``send`` at a time or as
one ``send_batch`` — the serial and vectorized machines damage, detect,
and retransmit exactly the same wire bytes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["Anomaly", "BarrierDetector", "StepLedger", "WireImage", "message_checksums"]

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def message_checksums(
    src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray, step: int, seq: np.ndarray
) -> np.ndarray:
    """Vectorized per-message checksum over the modeled wire content.

    A splitmix64-style mix of the message envelope plus its step and
    per-step sequence number — the simulated stand-in for the CRC a
    real link computes over the packet.
    """
    h = np.asarray(src, dtype=np.uint64) ^ np.uint64(0xC2B2AE3D27D4EB4F)
    with np.errstate(over="ignore"):
        for part in (dst, nbytes, np.uint64(step), seq):
            h = (h + np.asarray(part, dtype=np.uint64)) & _MASK
            h = ((h ^ (h >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
            h = h ^ (h >> np.uint64(31))
    return h


@dataclass
class Anomaly:
    """One detected wire fault, as seen at the step barrier."""

    kind: str  # "missing" | "corrupt" | "duplicate" | "delayed"
    tag: str
    seq: int
    src: int
    dst: int
    nbytes: int


@dataclass
class WireImage:
    """Received side of one step's traffic, after fault injection.

    Arrays are index-aligned with the canonical ledger order; a fresh
    image (no faults) has every message delivered exactly once with the
    checksum it was sent with.
    """

    checksums: np.ndarray  # uint64, as received
    copies: np.ndarray  # int64 delivery count (0 = dropped, 2 = duplicated)
    delayed: np.ndarray  # bool, arrived after the nominal window


class StepLedger:
    """Sender-side record of every primary message charged in one step."""

    def __init__(self, step: int):
        self.step = int(step)
        self._tags: list[str] = []
        self._src: list[np.ndarray] = []
        self._dst: list[np.ndarray] = []
        self._nbytes: list[np.ndarray] = []
        self._canonical = None

    def record(self, tag: str, src, dst, nbytes) -> None:
        """Append charged messages (scalars or aligned arrays)."""
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        if not len(src):
            return
        self._tags.append(tag)
        self._src.append(src)
        self._dst.append(np.broadcast_to(np.asarray(dst, dtype=np.int64), src.shape).copy())
        self._nbytes.append(
            np.broadcast_to(np.asarray(nbytes, dtype=np.int64), src.shape).copy()
        )
        self._canonical = None

    @property
    def n_messages(self) -> int:
        return int(sum(len(s) for s in self._src))

    def canonical(self):
        """Canonically ordered ``(tag_ids, tags, src, dst, nbytes, checksums)``.

        Tags are sorted by name and messages within a tag by
        ``(src, dst, nbytes)``, making victim selection independent of
        the charging order (loop of sends vs one batch).  Sequence
        numbers are the canonical positions.
        """
        if self._canonical is not None:
            return self._canonical
        if not self._tags:
            empty = np.zeros(0, dtype=np.int64)
            self._canonical = (empty, [], empty, empty, empty, empty.astype(np.uint64))
            return self._canonical
        names = sorted(set(self._tags))
        name_id = {t: k for k, t in enumerate(names)}
        tag_ids = np.concatenate(
            [np.full(len(s), name_id[t], dtype=np.int64) for t, s in zip(self._tags, self._src)]
        )
        src = np.concatenate(self._src)
        dst = np.concatenate(self._dst)
        nbytes = np.concatenate(self._nbytes)
        order = np.lexsort((nbytes, dst, src, tag_ids))
        tag_ids, src, dst, nbytes = tag_ids[order], src[order], dst[order], nbytes[order]
        seq = np.arange(len(src), dtype=np.uint64)
        sums = message_checksums(src, dst, nbytes, self.step, seq)
        self._canonical = (tag_ids, names, src, dst, nbytes, sums)
        return self._canonical

    def fresh_image(self) -> WireImage:
        """The fault-free received image of this step's traffic."""
        _, _, _, _, _, sums = self.canonical()
        n = len(sums)
        return WireImage(
            checksums=sums.copy(),
            copies=np.ones(n, dtype=np.int64),
            delayed=np.zeros(n, dtype=bool),
        )


class BarrierDetector:
    """Audits a step's received image against its sender-side ledger."""

    def scan(self, ledger: StepLedger, image: WireImage) -> list[Anomaly]:
        """Every wire anomaly of one step, in canonical message order."""
        tag_ids, names, src, dst, nbytes, sent = ledger.canonical()
        out: list[Anomaly] = []

        def emit(kind: str, where: np.ndarray) -> None:
            for k in np.nonzero(where)[0]:
                out.append(
                    Anomaly(
                        kind=kind,
                        tag=names[tag_ids[k]],
                        seq=int(k),
                        src=int(src[k]),
                        dst=int(dst[k]),
                        nbytes=int(nbytes[k]),
                    )
                )

        emit("missing", image.copies == 0)
        emit("corrupt", (image.copies > 0) & (image.checksums != sent))
        emit("duplicate", image.copies > 1)
        emit("delayed", (image.copies > 0) & image.delayed)
        return out


@dataclass
class HeartbeatBoard:
    """Barrier heartbeat tracking for simulated nodes.

    A stalled node misses its heartbeat for a bounded number of barrier
    waits and then responds; a crashed node never responds.  The board
    only records what the controller *observes* — the recovery policy
    decides how long to wait before declaring a node dead.
    """

    #: node id -> remaining silent barrier waits (-1: silent forever).
    silent: dict[int, int] = field(default_factory=dict)

    def mark_stall(self, node: int, waits: int) -> None:
        self.silent[node] = max(self.silent.get(node, 0), int(waits))

    def mark_crash(self, node: int) -> None:
        self.silent[node] = -1

    def poll(self, node: int) -> bool:
        """One barrier wait; True when the node's heartbeat arrived."""
        left = self.silent.get(node, 0)
        if left == 0:
            return True
        if left < 0:
            return False
        left -= 1
        if left == 0:
            del self.silent[node]
        else:
            self.silent[node] = left
        return left == 0

    def clear(self, node: int) -> None:
        self.silent.pop(node, None)
