"""Deterministic fault injection and self-healing recovery.

Anton's fixed-point numerics make failures *detectable* and recovery
*verifiable*: because a run's bits are a pure function of its initial
state, any fault that is caught and repaired must leave the trajectory
bit-for-bit identical to a fault-free run (Section 4's determinism
argument turned into a testing weapon).  This package injects seeded,
fully reproducible faults into the simulated machine and heals them:

* :class:`FaultSchedule` — a pure function of ``(seed, rates, step)``
  that emits message faults (drop / corrupt / duplicate / delay) and
  node faults (stall / crash).  Same seed, same events — on any
  backend, any node count, any process.
* :class:`FaultyNetwork` — a :class:`~repro.parallel.comm.SimNetwork`
  that keeps a per-step wire ledger of every charged message and
  separates recovery traffic (retransmits, rollback replay) from the
  primary statistics, so fault runs never inflate the paper's traffic
  comparisons.
* detection (:mod:`repro.fault.detect`) — per-message checksums and a
  step-barrier audit that *discovers* the injected damage from the
  wire image rather than peeking at the schedule, plus heartbeat
  tracking for stalled/dead nodes.
* :class:`RecoveryPolicy` / :class:`FaultController`
  (:mod:`repro.fault.recovery`) — bounded retry-with-backoff for
  transient message faults, and automatic rollback-and-replay from the
  newest valid checkpoint (durable :class:`~repro.io.CheckpointStore`
  or an in-memory snapshot ring) for crashed nodes.

The acceptance bar is the paper's own: after any injected fault
sequence, the recovered run's final int64 state codes are bit-identical
to the fault-free run (``tests/integration/test_chaos.py``).
"""

from repro.fault.detect import (
    Anomaly,
    BarrierDetector,
    HeartbeatBoard,
    StepLedger,
    WireImage,
    message_checksums,
)
from repro.fault.inject import FaultyNetwork
from repro.fault.recovery import (
    FaultController,
    MemorySnapshotStore,
    RecoveryPolicy,
    RollbackFailed,
)
from repro.fault.schedule import (
    FAULT_KINDS,
    MESSAGE_KINDS,
    NODE_KINDS,
    FaultEvent,
    FaultSchedule,
    parse_fault_spec,
)

__all__ = [
    "Anomaly",
    "BarrierDetector",
    "FAULT_KINDS",
    "FaultController",
    "FaultEvent",
    "FaultSchedule",
    "FaultyNetwork",
    "HeartbeatBoard",
    "MESSAGE_KINDS",
    "MemorySnapshotStore",
    "NODE_KINDS",
    "RecoveryPolicy",
    "RollbackFailed",
    "StepLedger",
    "WireImage",
    "message_checksums",
    "parse_fault_spec",
]
