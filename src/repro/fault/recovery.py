"""Self-healing recovery: bounded retries and rollback-and-replay.

Two tiers, mirroring what a real fleet does:

* **Transient message faults** (drop / corrupt) are healed at the step
  barrier by retry-with-backoff: each retransmission is charged to the
  network's separate retransmit counters, and a message that stays dead
  past :attr:`RecoveryPolicy.max_retries` escalates to a rollback (the
  link is declared failed).
* **Node faults** are watched through barrier heartbeats.  A stalled
  node is waited out (counted waits, bounded by the same retry budget);
  a crashed node triggers rollback to the newest valid checkpoint —
  the durable :class:`~repro.io.CheckpointStore` when the run has one,
  else the controller's in-memory snapshot ring, else the run-start
  baseline — followed by deterministic replay.

Replayed steps re-execute the exact integer arithmetic of the rolled
back steps (checkpoint restore is bit-exact, PR 4), so the healed
trajectory is bit-for-bit the fault-free one; their traffic is charged
to the network's ``recovery_stats`` so primary statistics stay clean.

Every counter is deterministic for a given schedule: the chaos harness
asserts identical counters *and* identical final bits across the serial
and vectorized backends.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.fault.detect import BarrierDetector, HeartbeatBoard
from repro.fault.inject import FaultyNetwork
from repro.fault.schedule import MESSAGE_KINDS, NODE_KINDS, FaultSchedule
from repro.io.checkpoint import CheckpointError, CheckpointStore
from repro.io.serialize import pack_state, unpack_state

__all__ = ["FaultController", "MemorySnapshotStore", "RecoveryPolicy", "RollbackFailed"]


class RollbackFailed(Exception):
    """No snapshot (durable, in-memory, or baseline) could be restored."""


@dataclass(frozen=True)
class RecoveryPolicy:
    """Knobs of the self-healing layer.

    ``max_retries`` bounds both message retransmissions per anomaly and
    heartbeat waits per silent node; ``backoff_base`` grows the modeled
    wait between attempts (attempt k waits ``backoff_base**k`` barrier
    slots — observable as the ``fault_backoff_slots`` counter).
    ``checkpoint_every``/``retain`` drive the in-memory snapshot ring
    used when the run has no durable checkpoint store.
    """

    max_retries: int = 3
    backoff_base: float = 2.0
    checkpoint_every: int = 4
    retain: int = 4

    def __post_init__(self):
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.checkpoint_every < 1:
            raise ValueError("checkpoint_every must be >= 1")
        if self.retain < 1:
            raise ValueError("retain must be >= 1")


class MemorySnapshotStore:
    """In-memory rolling snapshot ring with the CheckpointStore contract.

    Snapshots are held as :func:`~repro.io.serialize.pack_state` bytes —
    the same encoding the durable store writes — so a restored state is
    byte-equivalent to one that round-tripped through disk, and the
    ring is immune to later in-place mutation of the live arrays.
    """

    def __init__(self, retain: int = 4):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.retain = int(retain)
        self._snaps: list[tuple[int, bytes]] = []  # (step, packed), oldest first

    def save(self, state: dict, step: int) -> None:
        packed = pack_state(state)
        self._snaps = [s for s in self._snaps if s[0] != step]
        self._snaps.append((int(step), packed))
        self._snaps.sort()
        del self._snaps[: max(0, len(self._snaps) - self.retain)]

    def steps(self) -> list[int]:
        return [step for step, _ in self._snaps]

    def load_latest(self) -> tuple[dict, int]:
        if not self._snaps:
            raise CheckpointError("no in-memory snapshot")
        step, packed = self._snaps[-1]
        return unpack_state(packed), step


class FaultController:
    """Drives injection, detection, and recovery around a machine run.

    Owned by :class:`~repro.machine.machine.AntonMachine` when it is
    constructed with ``faults=``; the machine's :meth:`run` loop calls
    :meth:`begin_step` / :meth:`after_step` around every time step and
    :meth:`rollback` when a step must be undone.  All counters are also
    mirrored into the machine's :class:`~repro.perf.Timers` counts
    (``fault_*``), so ``--timings`` and :meth:`profile` surface them.
    """

    COUNTERS = (
        "injected",
        "detected_missing",
        "detected_corrupt",
        "duplicates_discarded",
        "delayed",
        "retries",
        "retransmitted_bytes",
        "backoff_slots",
        "stalls",
        "barrier_timeouts",
        "crashes",
        "link_failures",
        "rollbacks",
        "replayed_steps",
    )

    def __init__(
        self,
        schedule: FaultSchedule,
        policy: RecoveryPolicy | None = None,
        timers=None,
    ):
        self.schedule = schedule
        self.policy = policy or RecoveryPolicy()
        self.timers = timers
        self.detector = BarrierDetector()
        self.heartbeats = HeartbeatBoard()
        self.counters: dict[str, int] = {name: 0 for name in self.COUNTERS}
        self.memory_store = MemorySnapshotStore(retain=self.policy.retain)
        self._baseline: bytes | None = None
        self._events_by_step: dict[int, list] = {}
        self._replay_until = -1  # traffic of steps <= this goes to recovery
        self._io_done_until = -1  # store/trajectory writes already emitted
        self._pending_rollback_step = -1

    # -- counter plumbing -----------------------------------------------------

    def _count(self, name: str, k: int = 1) -> None:
        self.counters[name] += int(k)
        if self.timers is not None:
            self.timers.count(f"fault_{name}", k)

    def report(self) -> dict[str, int]:
        """All recovery counters (deterministic for a given schedule)."""
        return dict(self.counters)

    # -- run lifecycle --------------------------------------------------------

    def start_run(self, machine, n_steps: int) -> None:
        """Arm the controller for ``n_steps`` from the machine's current
        step: materialize the event window and take the baseline
        snapshot rollback falls back to when no checkpoint exists yet."""
        start = machine.integrator.step_count + 1
        events = self.schedule.events(start, n_steps)
        self._events_by_step = {}
        for event in events:
            self._events_by_step.setdefault(event.step, []).append(event)
        self._baseline = pack_state(machine.checkpoint())
        self._pending_rollback_step = -1
        self._replay_until = -1
        self._io_done_until = machine.integrator.step_count

    def replaying(self, step: int) -> bool:
        """True while ``step`` is a post-rollback re-execution."""
        return step <= self._replay_until

    def io_done(self, step: int) -> bool:
        """True when ``step``'s store/trajectory writes already happened
        before a rollback (replay must not emit them twice)."""
        return step <= self._io_done_until

    def begin_step(self, machine, step: int) -> None:
        """Arm the wire ledger (original passes only — replayed steps
        were already injected and audited the first time around)."""
        network = machine.network
        if not isinstance(network, FaultyNetwork):
            return
        network.set_recovery(self.replaying(step))
        if not self.replaying(step):
            network.begin_step(step)

    def after_step(self, machine, step: int) -> bool:
        """Barrier work after one executed step.

        Audits the wire, retries transient faults, polls heartbeats,
        and returns True when the step must be rolled back (node crash
        or a link that stayed dead past the retry budget).
        """
        network = machine.network
        if not isinstance(network, FaultyNetwork):
            return False
        if self.replaying(step):
            self._count("replayed_steps")
            if step == self._replay_until:
                self._replay_until = -1
                network.set_recovery(False)
            return False

        ledger = network.end_step()
        events = self._events_by_step.pop(step, [])
        rollback = False

        message_events = [e for e in events if e.kind in MESSAGE_KINDS]
        if ledger is not None and ledger.n_messages and message_events:
            self._count("injected", len(message_events))
            persist = {e.index % ledger.n_messages: e.persist for e in message_events}
            image = network.damage(ledger, message_events)
            for anomaly in self.detector.scan(ledger, image):
                rollback |= self._heal_message(network, anomaly, persist)
        elif message_events:
            # A step with no remote traffic cannot lose messages; the
            # events dissolve (still deterministic — both backends see
            # the same empty ledger).
            pass

        for event in (e for e in events if e.kind in NODE_KINDS):
            self._count("injected")
            node = event.index % machine.topology.n_nodes
            if event.kind == "stall":
                self._count("stalls")
                self.heartbeats.mark_stall(node, min(event.persist + 1, self.policy.max_retries))
            else:  # crash
                self._count("crashes")
                self.heartbeats.mark_crash(node)
            rollback |= self._await_heartbeat(node)

        if rollback:
            self._pending_rollback_step = step
        return rollback

    # -- healing --------------------------------------------------------------

    def _heal_message(self, network: FaultyNetwork, anomaly, persist: dict) -> bool:
        """Heal one wire anomaly; True when it escalates to rollback."""
        if anomaly.kind == "duplicate":
            self._count("duplicates_discarded")
            return False
        if anomaly.kind == "delayed":
            self._count("delayed")
            self._count("backoff_slots")  # one barrier re-poll
            return False
        self._count("detected_missing" if anomaly.kind == "missing" else "detected_corrupt")
        stays_dead = persist.get(anomaly.seq, 0)
        for attempt in range(self.policy.max_retries):
            self._count("retries")
            self._count("backoff_slots", int(self.policy.backoff_base**attempt))
            network.send(
                anomaly.src, anomaly.dst, anomaly.nbytes, anomaly.tag, retransmit=True
            )
            self._count("retransmitted_bytes", anomaly.nbytes)
            if attempt >= stays_dead:
                return False
        self._count("link_failures")
        return True

    def _await_heartbeat(self, node: int) -> bool:
        """Barrier-wait for a silent node; True when it is declared dead."""
        for attempt in range(self.policy.max_retries):
            self._count("backoff_slots", int(self.policy.backoff_base**attempt))
            if self.heartbeats.poll(node):
                return False
            self._count("barrier_timeouts")
        self.heartbeats.clear(node)  # replaced/rebooted by the rollback
        return True

    # -- snapshots & rollback ---------------------------------------------------

    def maybe_snapshot(self, machine, step: int, has_store: bool) -> None:
        """Feed the in-memory ring on the policy cadence when the run
        has no durable store (which otherwise owns checkpointing)."""
        if not has_store and step % self.policy.checkpoint_every == 0:
            self.memory_store.save(machine.checkpoint(), step)

    def rollback(self, machine, store: CheckpointStore | None) -> int:
        """Restore the newest valid snapshot and arm deterministic replay.

        Preference order: durable store (newest snapshot passing CRC +
        fingerprint checks, corrupt ones skipped), the in-memory ring,
        the run-start baseline.  Returns the restored step.
        """
        failed_step = self._pending_rollback_step
        self._pending_rollback_step = -1
        network = machine.network
        if isinstance(network, FaultyNetwork):
            network.end_step()  # discard the failed step's ledger
            network.set_recovery(True)  # restore() recomputes forces
        state = None
        if store is not None:
            try:
                state = store.load_latest(fingerprint=machine.fingerprint()).state
            except CheckpointError:
                state = None
        if state is None:
            try:
                state, _ = self.memory_store.load_latest()
            except CheckpointError:
                if self._baseline is None:
                    raise RollbackFailed(
                        "crash before any checkpoint and no baseline snapshot"
                    ) from None
                state = unpack_state(self._baseline)
        machine.restore(state)
        restored = machine.integrator.step_count
        self._count("rollbacks")
        # Steps (restored, failed_step] replay with recovery-pool
        # traffic; IO for steps up to failed_step - 1 already happened
        # (the failed step's own IO was pre-empted by this rollback).
        self._replay_until = failed_step
        self._io_done_until = max(self._io_done_until, failed_step - 1)
        if isinstance(network, FaultyNetwork) and not self.replaying(restored + 1):
            network.set_recovery(False)
        return restored
