"""Fault injection into the simulated interconnect.

:class:`FaultyNetwork` is a drop-in :class:`~repro.parallel.comm.SimNetwork`
that (a) keeps a per-step :class:`~repro.fault.detect.StepLedger` of
every primary message any backend charges, (b) applies a step's
scheduled message faults to the *received image* of that ledger at the
barrier, and (c) keeps recovery traffic out of the primary statistics:
retransmissions ride the base class's separate retransmit counters, and
whole replayed steps (after a rollback) are charged to a dedicated
``recovery_stats`` by swapping the active stats object — so a fault
run's primary counters are exactly a clean run's, which the chaos
harness asserts.

Physics never flows through the wire: the machine's payloads are
simulator-internal, so injected damage is observable (checksums,
counters, retries, rollbacks) but cannot corrupt state — corrupted
*content* is modeled by the checksum mismatch that forces the
retransmission which, on real hardware, restores the original bytes.
"""

from __future__ import annotations

import numpy as np

from repro.fault.detect import StepLedger, WireImage
from repro.fault.schedule import MESSAGE_KINDS, FaultEvent
from repro.parallel.comm import NetworkStats, SimNetwork
from repro.parallel.topology import TorusTopology

__all__ = ["FaultyNetwork"]


class FaultyNetwork(SimNetwork):
    """A SimNetwork with a wire ledger, fault application, and split
    primary/recovery accounting."""

    def __init__(self, topology: TorusTopology):
        super().__init__(topology)
        #: Traffic charged while healing: retransmitted messages and
        #: every message of a replayed (post-rollback) step.
        self.recovery_stats = NetworkStats(topology.n_nodes)
        self._primary_stats = self.stats
        self._ledger: StepLedger | None = None

    # -- stats routing -------------------------------------------------------

    @property
    def primary_stats(self) -> NetworkStats:
        return self._primary_stats

    @property
    def in_recovery(self) -> bool:
        return self.stats is self.recovery_stats

    def set_recovery(self, active: bool) -> None:
        """Route *all* subsequent charges (including direct ``stats``
        mutations by the machine) to the recovery pool."""
        self.stats = self.recovery_stats if active else self._primary_stats

    def reset_stats(self) -> None:
        recovering = self.in_recovery
        self._primary_stats = NetworkStats(self.topology.n_nodes)
        self.recovery_stats = NetworkStats(self.topology.n_nodes)
        self.stats = self.recovery_stats if recovering else self._primary_stats

    # -- wire ledger ---------------------------------------------------------

    def begin_step(self, step: int) -> None:
        """Start recording the wire ledger for ``step``."""
        self._ledger = StepLedger(step)

    def end_step(self) -> StepLedger | None:
        """Stop recording; returns the step's ledger (None when idle)."""
        ledger, self._ledger = self._ledger, None
        return ledger

    def send(self, src, dst, nbytes, tag, payload=None, retransmit=False):
        super().send(src, dst, nbytes, tag, payload=payload, retransmit=retransmit)
        if (
            self._ledger is not None
            and not retransmit
            and not self.in_recovery
            and src != dst
        ):
            self._ledger.record(tag, src, dst, nbytes)

    def send_batch(self, src, dst, nbytes, tag, retransmit=False, route=True):
        super().send_batch(src, dst, nbytes, tag, retransmit=retransmit, route=route)
        if self._ledger is not None and not retransmit and not self.in_recovery:
            src = np.asarray(src, dtype=np.int64)
            dst = np.asarray(dst, dtype=np.int64)
            nbytes = np.asarray(nbytes, dtype=np.int64)
            remote = src != dst
            if remote.any():
                self._ledger.record(tag, src[remote], dst[remote], nbytes[remote])

    # -- fault application ----------------------------------------------------

    @staticmethod
    def damage(ledger: StepLedger, events: list[FaultEvent]) -> WireImage:
        """Apply a step's message faults to the fresh received image.

        Victims are picked by ``event.index`` modulo the canonical
        message count, so the same schedule wounds the same wire bytes
        on every backend.
        """
        image = ledger.fresh_image()
        n = len(image.copies)
        if n == 0:
            return image
        for event in events:
            if event.kind not in MESSAGE_KINDS:
                continue
            victim = event.index % n
            if event.kind == "drop":
                image.copies[victim] = 0
            elif event.kind == "corrupt":
                image.checksums[victim] ^= np.uint64(1) << np.uint64(event.index % 64)
            elif event.kind == "duplicate":
                image.copies[victim] += 1
            elif event.kind == "delay":
                image.delayed[victim] = True
        return image
