"""Seeded, fully deterministic fault schedules.

A :class:`FaultSchedule` decides *when* and *what* goes wrong.  The
decisions are a pure function of ``(seed, rates, step)`` computed with
a counter-based hash (splitmix64) — no stateful RNG stream is ever
consumed, so the events for any step window can be queried in any
order, from any process, on any execution backend, and always come out
identical.  That purity is what the chaos harness leans on: the
vectorized and serial machines see the very same faults, so their
recovered trajectories can be compared bit-for-bit.

Fault kinds
-----------
Message faults (per-step probability; victim selected by hashed index
over the step's canonically ordered wire ledger):

* ``drop``       — the message never arrives (barrier detects the gap).
* ``corrupt``    — the payload image is damaged (checksum mismatch).
* ``duplicate``  — a second copy arrives (sequence dedupe discards it).
* ``delay``      — the message arrives late but inside the barrier.

Node faults (float = per-step probability, int = exact count placed
uniformly over the run window):

* ``stall``      — a node misses heartbeats for ``persist + 1`` barrier
  waits, then responds (detected by step-barrier timeout).
* ``crash``      — a node dies mid-step; recovery rolls the machine
  back to the newest valid checkpoint and replays.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "FAULT_KINDS",
    "MESSAGE_KINDS",
    "NODE_KINDS",
    "FaultEvent",
    "FaultSchedule",
    "parse_fault_spec",
]

MESSAGE_KINDS = ("drop", "corrupt", "duplicate", "delay")
NODE_KINDS = ("stall", "crash")
FAULT_KINDS = MESSAGE_KINDS + NODE_KINDS

#: Kind index used in the hash stream (order is part of the contract:
#: reordering this tuple would change every seeded schedule).
_KIND_ID = {kind: k for k, kind in enumerate(FAULT_KINDS)}

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)


def _splitmix64(x: np.ndarray) -> np.ndarray:
    """The splitmix64 finalizer: a bijective uint64 mix (wrapping)."""
    with np.errstate(over="ignore"):
        x = (x + np.uint64(0x9E3779B97F4A7C15)) & _MASK
        x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & _MASK
        x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & _MASK
        return x ^ (x >> np.uint64(31))


def _hash_u64(seed: int, kind_id: int, step, slot: int) -> np.ndarray:
    """Counter-based hash: uint64 of (seed, kind, step, slot), vectorized
    over ``step``."""
    step = np.asarray(step, dtype=np.uint64)
    h = _splitmix64(np.uint64(seed & 0xFFFFFFFFFFFFFFFF) ^ np.uint64(0xA5A5A5A5A5A5A5A5))
    h = _splitmix64(h ^ np.uint64(kind_id))
    h = _splitmix64(h ^ step)
    return _splitmix64(h ^ np.uint64(slot))


def _hash_uniform(seed: int, kind_id: int, step, slot: int) -> np.ndarray:
    """Uniform [0, 1) from the counter hash (53 mantissa bits)."""
    return (_hash_u64(seed, kind_id, step, slot) >> np.uint64(11)) / float(1 << 53)


@dataclass(frozen=True, order=True)
class FaultEvent:
    """One scheduled fault.

    ``index`` is a raw hashed selector: for message kinds the victim is
    ``index % n_messages`` of the step's canonically ordered ledger;
    for node kinds the victim node is ``index % n_nodes``.  ``persist``
    is how many *additional* consecutive delivery attempts also fail
    (0: the first retry succeeds) — for node stalls, how many extra
    barrier waits the node stays silent.
    """

    step: int
    kind: str
    index: int = 0
    persist: int = 0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}")
        if self.step < 0 or self.index < 0 or self.persist < 0:
            raise ValueError("step, index, and persist must be non-negative")


def parse_fault_spec(spec: str) -> dict[str, float | int]:
    """Parse a ``--faults`` spec like ``"drop=1e-3,crash=1"``.

    Values with a decimal point or exponent are per-step probabilities;
    bare integers are exact event counts placed uniformly over the run
    window (the natural reading of ``crash=1``).
    """
    rates: dict[str, float | int] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(f"bad fault spec item {part!r}; expected kind=value")
        kind, _, value = part.partition("=")
        kind = kind.strip()
        if kind not in FAULT_KINDS:
            raise ValueError(f"unknown fault kind {kind!r}; expected one of {FAULT_KINDS}")
        value = value.strip()
        rates[kind] = int(value) if value.lstrip("+-").isdigit() else float(value)
    return rates


class FaultSchedule:
    """Deterministic fault events from a seed, or an explicit list.

    Parameters
    ----------
    seed:
        Hash key for rate-driven events.
    rates:
        ``{kind: value}`` — float values are per-step probabilities
        (at most one event of that kind per step), int values are exact
        counts placed uniformly over the queried window.  Also accepts
        a ``--faults``-style spec string.
    events:
        Explicit :class:`FaultEvent` list (merged with any rate-driven
        events); the escape hatch for targeted tests.
    """

    def __init__(
        self,
        seed: int = 0,
        rates: dict[str, float | int] | str | None = None,
        events: list[FaultEvent] | None = None,
    ):
        self.seed = int(seed)
        if isinstance(rates, str):
            rates = parse_fault_spec(rates)
        self.rates = dict(rates or {})
        for kind, value in self.rates.items():
            if kind not in FAULT_KINDS:
                raise ValueError(f"unknown fault kind {kind!r}")
            if isinstance(value, float) and not 0.0 <= value <= 1.0:
                raise ValueError(f"{kind} probability {value} outside [0, 1]")
            if isinstance(value, int) and value < 0:
                raise ValueError(f"{kind} count {value} must be >= 0")
        self.explicit = sorted(events or [])

    def __repr__(self) -> str:
        return (
            f"FaultSchedule(seed={self.seed}, rates={self.rates!r}, "
            f"explicit={len(self.explicit)})"
        )

    # -- event generation ---------------------------------------------------

    def _rate_events(self, kind: str, rate: float, start: int, n_steps: int):
        kid = _KIND_ID[kind]
        steps = np.arange(start, start + n_steps, dtype=np.int64)
        hit = _hash_uniform(self.seed, kid, steps, 0) < rate
        return [
            FaultEvent(
                step=int(s),
                kind=kind,
                index=int(_hash_u64(self.seed, kid, int(s), 1)),
            )
            for s in steps[hit]
        ]

    def _count_events(self, kind: str, count: int, start: int, n_steps: int):
        """Exactly ``count`` events placed uniformly (and distinctly when
        possible) over the window, by probing the counter hash."""
        kid = _KIND_ID[kind]
        out, used = [], set()
        for k in range(count):
            for probe in range(64):
                u = float(_hash_uniform(self.seed, kid, k, 2 + probe))
                step = start + int(u * n_steps)
                if step not in used or len(used) >= n_steps:
                    break
            used.add(step)
            out.append(
                FaultEvent(
                    step=step,
                    kind=kind,
                    index=int(_hash_u64(self.seed, kid, k, 1)),
                )
            )
        return out

    def events(self, start: int, n_steps: int) -> list[FaultEvent]:
        """All events with ``start <= step < start + n_steps``, sorted.

        A pure function: the same ``(seed, rates, window)`` always
        yields the same list, regardless of query order or process.
        """
        if n_steps <= 0:
            return []
        out = [e for e in self.explicit if start <= e.step < start + n_steps]
        for kind, value in sorted(self.rates.items()):
            if isinstance(value, int):
                out.extend(self._count_events(kind, value, start, n_steps))
            elif value > 0.0:
                out.extend(self._rate_events(kind, value, start, n_steps))
        return sorted(out)
