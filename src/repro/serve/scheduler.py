"""Preemptible priority scheduler with same-fingerprint batching.

The scheduler is deliberately a set of **pure functions** over the job
table: given the same queue contents (states, priorities, arrival
order, progress) it always produces the same decisions.  That purity
is load-bearing twice over —

* it is what the hypothesis property test pins: replaying a submission
  log yields the identical slice schedule, every time;
* it is what makes the durable queue sufficient for crash recovery:
  the server never persists scheduler state, because the schedule is a
  function of the journal.

Policy
------
* **Ordering**: higher ``priority`` first, FIFO (submission order)
  within a priority.
* **Batching**: the head pending job pulls every batch-compatible
  pending job (equal :meth:`JobSpec.group_key` — same static system,
  parameters, step count, cadences, priority — and equally *fresh*,
  i.e. zero steps done) into one assignment, up to ``max_batch``; the
  worker fuses the batch into one
  :class:`~repro.ensemble.EnsembleSimulation` pass.  Jobs with
  progress resume solo (restoring mid-flight states into a stacked
  engine is unsupported — and unneeded, since batching is
  bitwise-invisible).
* **Preemption**: when every worker is busy and a pending job's
  priority strictly exceeds a running assignment's, the
  lowest-priority (latest-arrival on ties) assignment is preempted.
  The victim checkpoints at its next slice boundary and requeues as
  PREEMPTED -> PENDING; because slices end exactly at checkpoint
  cadence, resume is bit-exact by construction.  Strict improvement
  only, so equal priorities never preempt each other (no livelock).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.serve.jobs import Job

__all__ = [
    "Assignment",
    "Plan",
    "order_key",
    "pending_order",
    "make_assignment",
    "plan",
    "simulate_schedule",
]


def _default_group_key(job: Job):
    return job.spec.group_key()


@dataclass(frozen=True)
class Assignment:
    """One unit of worker work: a batch of 1+ batch-compatible jobs."""

    jobs: tuple[str, ...]
    priority: int
    #: Earliest arrival in the batch — the FIFO identity of the slot.
    arrival: int

    @property
    def solo(self) -> bool:
        return len(self.jobs) == 1


@dataclass
class Plan:
    """One scheduling decision: what to start, what to preempt."""

    assignments: list[Assignment] = field(default_factory=list)
    #: Running assignments to preempt (checkpoint + requeue).
    preempt: list[Assignment] = field(default_factory=list)


def order_key(job: Job) -> tuple[int, int]:
    """Sort key: highest priority first, then submission order."""
    return (-job.spec.priority, job.arrival)


def pending_order(jobs: dict[str, Job]) -> list[Job]:
    """PENDING jobs in dispatch order (pure; input dict order ignored)."""
    return sorted((j for j in jobs.values() if j.state == "PENDING"), key=order_key)


def make_assignment(
    head: Job, candidates: list[Job], max_batch: int, group_key=_default_group_key
) -> Assignment:
    """The assignment the head pending job leads.

    A fresh head absorbs up to ``max_batch - 1`` other fresh candidates
    with the same group key, merged in arrival order; a job with
    progress runs solo.
    """
    batch = [head]
    if head.fresh and max_batch > 1:
        key = group_key(head)
        mates = sorted(
            (
                j for j in candidates
                if j.id != head.id and j.fresh and group_key(j) == key
            ),
            key=order_key,
        )
        batch += mates[: max_batch - 1]
        batch.sort(key=lambda j: j.arrival)
    return Assignment(
        jobs=tuple(j.id for j in batch),
        priority=head.spec.priority,
        arrival=min(j.arrival for j in batch),
    )


def plan(
    jobs: dict[str, Job],
    free_workers: int,
    running: list[Assignment],
    max_batch: int = 8,
    group_key=_default_group_key,
) -> Plan:
    """Pure scheduling step.

    Fills free workers with assignments in dispatch order; then, if
    higher-priority work is still pending, marks the lowest-priority
    running assignments for preemption — one victim per waiting head,
    strict priority improvement only.  A preemption only vacates the
    slot; the waiting job is dispatched by a later ``plan`` call once
    the victim has checkpointed and requeued.
    """
    out = Plan()
    taken: set[str] = set()
    pending = pending_order(jobs)

    def heads():
        for job in pending:
            if job.id not in taken:
                yield job

    for _ in range(max(0, int(free_workers))):
        head = next(heads(), None)
        if head is None:
            break
        a = make_assignment(
            head, [j for j in pending if j.id not in taken], max_batch, group_key
        )
        taken.update(a.jobs)
        out.assignments.append(a)

    victims = sorted(running, key=lambda a: (a.priority, -a.arrival))
    for head in heads():
        if not victims:
            break
        weakest = victims[0]
        if head.spec.priority <= weakest.priority:
            break
        out.preempt.append(victims.pop(0))
        taken.add(head.id)
    return out


# -- deterministic replay (the property-test surface) -----------------------


def simulate_schedule(
    submissions: list[tuple[int, str, int, int]],
    workers: int,
    max_batch: int = 8,
    group_of: dict[str, object] | None = None,
) -> list[tuple[int, int, tuple[str, ...]]]:
    """Replay a submission log into its slice schedule (pure function).

    ``submissions`` is a list of ``(arrival_tick, job_id, priority,
    slices)`` — each job needs ``slices`` worker slices to finish.
    ``group_of`` optionally maps job ids to batching keys (default:
    every job solo).  Returns the ordered list of
    ``(tick, worker, jobs_tuple)`` slice executions.

    This drives the *real* :func:`plan` on a synthetic clock — each
    busy worker completes one slice per tick — so the property test
    exercises the production decision logic, not a reimplementation.
    """
    from repro.serve.jobs import JobSpec

    if len({s[1] for s in submissions}) != len(submissions):
        raise ValueError("duplicate job ids in submission log")
    groups = group_of or {}

    def group_key(job: Job):
        return groups.get(job.id, ("solo", job.id))

    table: dict[str, Job] = {}
    slices_left: dict[str, int] = {}
    running: dict[int, Assignment] = {}
    schedule: list[tuple[int, int, tuple[str, ...]]] = []
    max_tick = max((t for t, *_ in submissions), default=0)

    for tick in range(10_000):
        for arrive, job_id, priority, slices in submissions:
            if arrive == tick:
                spec = JobSpec(steps=int(slices), priority=int(priority),
                               record_every=1, checkpoint_every=1, name=job_id)
                table[job_id] = Job(id=job_id, spec=spec, arrival=len(table))
                slices_left[job_id] = int(slices)

        free = workers - len(running)
        decision = plan(table, free, list(running.values()),
                        max_batch=max_batch, group_key=group_key)
        for victim in decision.preempt:
            worker = next(w for w, a in running.items() if a == victim)
            del running[worker]
            for job_id in victim.jobs:
                if slices_left[job_id] > 0:
                    table[job_id].state = "PENDING"
                    table[job_id].preemptions += 1
        free_ids = [w for w in range(workers) if w not in running]
        for worker, a in zip(free_ids, decision.assignments):
            running[worker] = a
            for job_id in a.jobs:
                table[job_id].state = "RUNNING"

        for worker in sorted(running):
            a = running[worker]
            live = tuple(j for j in a.jobs if slices_left[j] > 0)
            schedule.append((tick, worker, live))
            for job_id in live:
                slices_left[job_id] -= 1
                job = table[job_id]
                job.steps_done = job.spec.steps - slices_left[job_id]
                if slices_left[job_id] == 0:
                    job.state = "DONE"
        for worker in [w for w, a in running.items()
                       if all(slices_left[j] == 0 for j in a.jobs)]:
            del running[worker]

        if (not running and tick >= max_tick
                and not any(j.state == "PENDING" for j in table.values())):
            return schedule
    raise RuntimeError("simulate_schedule did not converge")
