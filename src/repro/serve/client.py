"""Client side of the serve protocol: one JSONL request per connection.

Used by the ``repro submit|jobs|cancel`` CLI commands, the smoke
harness, and tests.  The protocol is deliberately tiny — connect to
``<dir>/serve.sock``, send one JSON object terminated by a newline,
read one JSON object back, close — so any language (or ``nc -U``) can
drive the service.
"""

from __future__ import annotations

import json
import socket
import time
from pathlib import Path

from repro.serve.server import SOCKET_NAME

__all__ = ["ServeClient", "ServeUnavailable", "request"]


class ServeUnavailable(ConnectionError):
    """No server is listening on the state directory's socket."""


def request(directory, payload: dict, timeout: float = 30.0) -> dict:
    """One request/response round trip against a serve state directory."""
    sock_path = Path(directory) / SOCKET_NAME
    if not sock_path.exists():
        raise ServeUnavailable(f"no server socket at {sock_path}")
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.settimeout(timeout)
    try:
        try:
            s.connect(str(sock_path))
        except OSError as exc:
            raise ServeUnavailable(f"cannot reach server at {sock_path}: {exc}")
        s.sendall((json.dumps(payload) + "\n").encode())
        raw = b""
        while not raw.endswith(b"\n"):
            chunk = s.recv(65536)
            if not chunk:
                break
            raw += chunk
    finally:
        s.close()
    if not raw.strip():
        raise ServeUnavailable(f"server at {sock_path} closed without replying")
    return json.loads(raw.decode())


class ServeClient:
    """Convenience wrapper binding :func:`request` to one directory."""

    def __init__(self, directory, timeout: float = 30.0):
        self.directory = Path(directory)
        self.timeout = timeout

    def _call(self, op: str, **kw) -> dict:
        resp = request(self.directory, {"op": op, **kw}, timeout=self.timeout)
        if not resp.get("ok"):
            raise RuntimeError(resp.get("error", f"op {op!r} failed"))
        return resp

    def ping(self) -> dict:
        return self._call("ping")

    def submit(self, spec_dict: dict) -> dict:
        """Submit a job; returns ``{"id": ..., "arrival": ...}``."""
        return self._call("submit", spec=spec_dict)

    def jobs(self) -> list[dict]:
        return self._call("jobs")["jobs"]

    def status(self, job_id: str) -> dict:
        return self._call("status", id=job_id)["job"]

    def cancel(self, job_id: str) -> dict:
        return self._call("cancel", id=job_id)

    def metrics(self) -> dict:
        return self._call("metrics")["metrics"]

    def shutdown(self) -> None:
        self._call("shutdown")

    def wait(self, job_ids, poll: float = 0.2, timeout: float = 600.0) -> dict:
        """Block until every listed job is terminal; returns id -> state."""
        from repro.serve.jobs import TERMINAL_STATES

        ids = list(job_ids)
        deadline = time.time() + timeout
        while True:
            states = {j["id"]: j["state"] for j in self.jobs() if j["id"] in ids}
            if len(states) == len(ids) and all(
                s in TERMINAL_STATES for s in states.values()
            ):
                return states
            if time.time() > deadline:
                raise TimeoutError(f"jobs not terminal after {timeout}s: {states}")
            time.sleep(poll)
