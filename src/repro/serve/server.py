"""The simulation service: socket front end, worker pool, scheduler loop.

``repro serve --dir STATE`` runs a :class:`Server` over one state
directory::

    STATE/
      queue.rrs      append-only durable job journal (single writer)
      serve.sock     local (unix-domain) JSONL control socket
      jobs/<id>/     per-job artifacts: traj.rrs, ck/, energy.jsonl

Clients (``repro submit|jobs|cancel``, the smoke harness, tests) speak
a one-request-per-connection JSONL protocol over the socket: one JSON
object in, one JSON object out.  All queue mutations happen in the
server process, which is what keeps the append-only journal safe
without file locks.

The main loop is a single thread: poll the socket (bounded wait),
drain worker events, reap dead workers (requeue their jobs, spawn
replacements — the self-healing contract), then run the pure scheduler
(:func:`repro.serve.scheduler.plan`) and act on its decisions.  Server
phases are timed into a :class:`~repro.perf.timers.Timers`, surfaced
with the pool metrics; the per-worker heartbeat record is a
:class:`~repro.fault.detect.HeartbeatBoard` (workers that miss beats
are marked stalled for observability; process liveness is the
authoritative death signal — on one machine ``is_alive`` is honest,
unlike a distributed system where the heartbeat *is* the signal).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import selectors
import socket
import time
from dataclasses import dataclass
from pathlib import Path
from queue import Empty

from repro.fault.detect import HeartbeatBoard
from repro.io import unique_artifact_dir
from repro.perf.timers import Timers
from repro.serve.jobs import TERMINAL_STATES, JobSpec
from repro.serve.queue import JobQueue, QueueError
from repro.serve.scheduler import Assignment, plan
from repro.serve.workers import worker_main

__all__ = ["Server", "ServeConfig", "SOCKET_NAME"]

SOCKET_NAME = "serve.sock"


@dataclass
class ServeConfig:
    """Server knobs (none of them affect artifact bits)."""

    workers: int = 2
    max_batch: int = 8
    kernel_tier: str | None = None
    kernel_threads: int | None = None
    #: Main-loop wait per iteration, seconds.
    tick: float = 0.05
    #: Missed-heartbeat ticks before a live process is flagged stalled.
    stall_ticks: int = 100
    #: Exit once every job is terminal and this many seconds pass with
    #: an empty queue (0: serve until shutdown is requested).
    idle_exit: float = 0.0


class _Worker:
    """Server-side handle of one worker process."""

    __slots__ = ("idx", "proc", "cmd_q", "assignment", "pid", "tier",
                 "threads", "last_beat", "missed", "preempt_sent")

    def __init__(self, idx: int):
        self.idx = idx
        self.proc = None
        self.cmd_q = None
        self.assignment: Assignment | None = None
        self.pid = 0
        self.tier = ""
        self.threads = 0
        self.last_beat = 0.0
        self.missed = 0
        #: One preempt command per assignment: the scheduler re-plans
        #: every tick, so without this latch a long slice would pile up
        #: stale preempts that bleed into the next assignment.
        self.preempt_sent = False

    @property
    def busy(self) -> bool:
        return self.assignment is not None

    def send_preempt(self) -> bool:
        """Ask the current assignment to stop at its slice boundary.

        Idempotent per assignment; the command is tagged with the
        assignment's job ids so the worker can discard it if it arrives
        after that assignment already finished.
        """
        if self.preempt_sent or self.assignment is None:
            return False
        self.cmd_q.put({"cmd": "preempt", "jobs": list(self.assignment.jobs)})
        self.preempt_sent = True
        return True


class _Conn:
    """One in-flight client connection (non-blocking, selector-driven).

    The main loop is single-threaded; a slow or stalled client must
    never block scheduling, event draining, or dead-worker reaping.  So
    connections accumulate bytes on read-readiness, the request is
    handled the instant its newline arrives, and an unflushed response
    drains on write-readiness — with a hard deadline after which the
    connection is dropped.
    """

    __slots__ = ("sock", "inbuf", "outbuf", "deadline")

    #: Seconds a connection may exist before it is summarily closed.
    TIMEOUT = 5.0
    #: Refuse requests larger than this (the protocol is one small
    #: JSON object; anything bigger is a confused or hostile client).
    MAX_REQUEST = 1 << 20

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.inbuf = b""
        self.outbuf = b""
        self.deadline = time.time() + self.TIMEOUT


class Server:
    """Multi-run simulation service over one state directory."""

    def __init__(self, directory, config: ServeConfig = ServeConfig()):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.config = config
        self.queue = JobQueue(self.directory)
        self.jobs_root = self.directory / "jobs"
        self.timers = Timers()
        self.board = HeartbeatBoard()
        self.started_at = time.time()
        self._shutdown = False
        self._idle_since: float | None = None
        self._cancel_requested: set[str] = set()
        self._worker_log: list[str] = []

        # Claim the socket before forking anything: a second server on a
        # live directory must refuse (its shutdown would unlink the
        # incumbent's socket) and must leak no worker processes doing so.
        self.sock_path = self.directory / SOCKET_NAME
        if self.sock_path.exists():
            probe = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            probe.settimeout(1.0)
            try:
                probe.connect(str(self.sock_path))
            except OSError:
                self.sock_path.unlink()  # stale socket of a dead server
            else:
                self.queue.close()
                raise RuntimeError(
                    f"a live server already owns {self.sock_path}")
            finally:
                probe.close()
        self._sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self._sock.bind(str(self.sock_path))
        self._sock.listen(16)
        self._sock.setblocking(False)
        self._sel = selectors.DefaultSelector()
        self._sel.register(self._sock, selectors.EVENT_READ)
        self._conns: list[_Conn] = []

        self._ctx = mp.get_context("fork")
        self._evt_q = self._ctx.Queue()
        self.workers = [_Worker(i) for i in range(config.workers)]
        for w in self.workers:
            self._spawn(w)

    # -- worker lifecycle ---------------------------------------------------

    def _spawn(self, w: _Worker) -> None:
        w.cmd_q = self._ctx.Queue()
        w.proc = self._ctx.Process(
            target=worker_main,
            args=(w.idx, w.cmd_q, self._evt_q, self.config.kernel_tier,
                  self.config.kernel_threads, os.getpid()),
            daemon=True,
        )
        w.proc.start()
        w.pid = w.proc.pid
        w.assignment = None
        w.preempt_sent = False
        w.last_beat = time.time()
        w.missed = 0
        self.board.clear(w.idx)

    def _reap_dead(self) -> None:
        """Requeue jobs of dead workers and spawn replacements."""
        for w in self.workers:
            if w.proc.is_alive():
                continue
            self.board.mark_crash(w.idx)
            if w.assignment is not None:
                for job_id in w.assignment.jobs:
                    job = self.queue.jobs[job_id]
                    if job.state == "RUNNING":
                        self.queue.requeue(job_id, reason="worker-died")
                        if job_id in self._cancel_requested:
                            # The cancel must survive the worker death,
                            # not silently turn back into a requeue.
                            self.queue.transition(job_id, "CANCELLED")
                            self._cancel_requested.discard(job_id)
                self._log(f"worker {w.idx} (pid {w.pid}) died; requeued "
                          f"{list(w.assignment.jobs)}")
                w.assignment = None
            else:
                self._log(f"worker {w.idx} (pid {w.pid}) died while idle")
            self._spawn(w)

    def _dispatch(self, w: _Worker, assignment: Assignment) -> None:
        jobs = []
        for job_id in assignment.jobs:
            job = self.queue.jobs[job_id]
            fields = {"started_at": job.started_at or time.time()}
            if not job.artifact_dir:
                fields["artifact_dir"] = str(
                    unique_artifact_dir(self.jobs_root, job.id))
            self.queue.transition(job.id, "RUNNING", reason="assign", **fields)
            jobs.append({"id": job.id, "spec": job.spec.to_dict(),
                         "artifact_dir": job.artifact_dir,
                         "steps_done": job.steps_done})
        w.assignment = assignment
        w.preempt_sent = False
        w.cmd_q.put({"cmd": "run", "jobs": jobs})

    # -- event handling -----------------------------------------------------

    def _drain_events(self) -> None:
        while True:
            try:
                evt = self._evt_q.get_nowait()
            except Empty:
                return
            w = self.workers[evt["worker"]]
            if evt.get("pid") != w.pid:
                # A SIGKILLed worker's queued events can surface after
                # _reap_dead already requeued its jobs and spawned a
                # replacement; applying them would clear the
                # replacement's assignment and double-dispatch.  Every
                # event carries its process incarnation — drop strays.
                continue
            w.last_beat = time.time()
            w.missed = 0
            self.board.clear(w.idx)
            kind = evt["evt"]
            if kind == "online":
                w.tier, w.threads = evt["tier"], evt["threads"]
                for note in evt["warnings"]:
                    self._log(f"worker {w.idx}: {note}")
            elif kind == "slice":
                self.timers.count("serve_slices")
                for job_id, steps in evt["steps"].items():
                    job = self.queue.jobs.get(job_id)
                    if job is not None and job.state == "RUNNING":
                        self.queue.update(job_id, steps_done=int(steps),
                                          slices=job.slices + 1)
            elif kind in ("done", "preempted", "failed"):
                self._finish_assignment(w, evt)

    def _finish_assignment(self, w: _Worker, evt: dict) -> None:
        kind = evt["evt"]
        seconds = float(evt.get("seconds", 0.0))
        for job_id in evt["jobs"]:
            job = self.queue.jobs.get(job_id)
            if job is None or job.state != "RUNNING":
                continue
            steps = int(evt["steps"].get(job_id, job.steps_done))
            run_s = job.run_seconds + seconds
            if kind == "done":
                self.queue.transition(job_id, "DONE", steps_done=steps,
                                      run_seconds=run_s,
                                      finished_at=float(evt["wall"]))
                # Finished before the preempt landed: the cancel is moot.
                self._cancel_requested.discard(job_id)
            elif kind == "failed":
                self.queue.transition(job_id, "FAILED", steps_done=steps,
                                      run_seconds=run_s, error=evt["error"],
                                      finished_at=float(evt["wall"]))
                self._log(f"job {job_id} failed:\n{evt['error']}")
                self._cancel_requested.discard(job_id)
            else:  # preempted (scheduler or cancel request)
                self.queue.transition(job_id, "PREEMPTED", reason="preempt",
                                      steps_done=steps, run_seconds=run_s,
                                      preemptions=job.preemptions + 1)
                if job_id in self._cancel_requested:
                    # PREEMPTED -> PENDING -> CANCELLED, all journaled.
                    self.queue.transition(job_id, "PENDING", reason="cancel")
                    self.queue.transition(job_id, "CANCELLED")
                    self._cancel_requested.discard(job_id)
                else:
                    self.queue.transition(job_id, "PENDING", reason="preempt")
        w.assignment = None
        w.preempt_sent = False

    def _check_stalls(self) -> None:
        for w in self.workers:
            if not w.busy:
                continue
            w.missed += 1
            if w.missed == self.config.stall_ticks:
                # Observability only: flag it on the board; a live
                # process keeps its slot (it may be in a long slice).
                self.board.mark_stall(w.idx, waits=1)
                self._log(f"worker {w.idx} (pid {w.pid}) heartbeat stalled")

    # -- scheduling ---------------------------------------------------------

    def _schedule(self) -> None:
        free = sum(1 for w in self.workers if not w.busy)
        running = [w.assignment for w in self.workers if w.busy]
        decision = plan(self.queue.jobs, free, running,
                        max_batch=self.config.max_batch)
        for victim in decision.preempt:
            for w in self.workers:
                if w.assignment == victim:
                    if w.send_preempt():
                        self.timers.count("serve_preemptions")
                    break
        free_workers = [w for w in self.workers if not w.busy]
        for w, assignment in zip(free_workers, decision.assignments):
            self._dispatch(w, assignment)
            self.timers.count("serve_dispatches")

    # -- client protocol ----------------------------------------------------

    def _handle_request(self, req: dict) -> dict:
        """Serve one client request; never raises.

        The broad except is load-bearing: an exception escaping here
        would unwind ``tick()``/``serve_forever`` and take the whole
        multi-tenant service down over one bad request.
        """
        try:
            return self._dispatch_request(req)
        except Exception as exc:
            return {"ok": False, "error": f"{type(exc).__name__}: {exc}"}

    def _dispatch_request(self, req: dict) -> dict:
        op = req.get("op")
        if op == "ping":
            return {"ok": True, "pid": os.getpid()}
        if op == "submit":
            try:
                spec = JobSpec.from_dict(req.get("spec", {}))
                job = self.queue.submit(spec)
            except (TypeError, ValueError, QueueError) as exc:
                # QueueError covers a resubmitted job name — a client
                # mistake, not a server fault.
                return {"ok": False, "error": str(exc)}
            return {"ok": True, "id": job.id, "arrival": job.arrival}
        if op == "jobs":
            return {"ok": True, "jobs": [self._job_view(j) for j in sorted(
                self.queue.jobs.values(), key=lambda j: j.arrival)]}
        if op == "status":
            job = self.queue.jobs.get(req.get("id", ""))
            if job is None:
                return {"ok": False, "error": f"unknown job {req.get('id')!r}"}
            return {"ok": True, "job": self._job_view(job)}
        if op == "cancel":
            return self._cancel(req.get("id", ""))
        if op == "metrics":
            return {"ok": True, "metrics": self.metrics()}
        if op == "shutdown":
            self._shutdown = True
            return {"ok": True}
        return {"ok": False, "error": f"unknown op {op!r}"}

    def _cancel(self, job_id: str) -> dict:
        job = self.queue.jobs.get(job_id)
        if job is None:
            return {"ok": False, "error": f"unknown job {job_id!r}"}
        if job.state in TERMINAL_STATES:
            return {"ok": False, "error": f"job {job_id} is already {job.state}"}
        if job.state in ("PENDING", "PREEMPTED"):
            if job.state == "PREEMPTED":
                self.queue.transition(job_id, "PENDING", reason="cancel")
            self.queue.transition(job_id, "CANCELLED")
            return {"ok": True, "state": "CANCELLED"}
        # RUNNING: preempt its assignment; the preempted event completes
        # the cancellation (other jobs in the batch simply requeue).
        self._cancel_requested.add(job_id)
        for w in self.workers:
            if w.assignment and job_id in w.assignment.jobs:
                w.send_preempt()
                break
        return {"ok": True, "state": "CANCELLING"}

    def _job_view(self, job) -> dict:
        spec = job.spec
        view = {
            "id": job.id, "state": job.state, "priority": spec.priority,
            "steps": spec.steps, "steps_done": job.steps_done,
            "arrival": job.arrival, "preemptions": job.preemptions,
            "recoveries": job.recoveries, "slices": job.slices,
            "seed": spec.seed, "waters": spec.waters,
            "artifact_dir": job.artifact_dir,
            "queue_wait_s": round(max(0.0, (job.started_at or time.time())
                                      - job.submitted_at), 3)
                            if job.submitted_at else 0.0,
            "run_seconds": round(job.run_seconds, 3),
        }
        if job.run_seconds > 0:
            view["steps_per_s"] = round(job.steps_done / job.run_seconds, 2)
        if job.error:
            view["error"] = job.error.splitlines()[-1]
        return view

    def metrics(self) -> dict:
        jobs = list(self.queue.jobs.values())
        by_state: dict[str, int] = {}
        for j in jobs:
            by_state[j.state] = by_state.get(j.state, 0) + 1
        run_s = sum(j.run_seconds for j in jobs)
        steps = sum(j.steps_done for j in jobs)
        wall = max(1e-9, time.time() - self.started_at)
        counts = dict(self.timers.counts)
        return {
            "jobs": by_state,
            "total_jobs": len(jobs),
            "steps_done": steps,
            "preemptions": sum(j.preemptions for j in jobs),
            "recoveries": sum(j.recoveries for j in jobs),
            "dispatches": counts.get("serve_dispatches", 0),
            "slices": counts.get("serve_slices", 0),
            "wall_seconds": round(wall, 3),
            "busy_seconds": round(run_s, 3),
            "aggregate_steps_per_s": round(steps / wall, 2),
            "workers": [
                {"idx": w.idx, "pid": w.pid, "busy": w.busy,
                 "tier": w.tier, "threads": w.threads,
                 "stalled": w.idx in self.board.silent,
                 "jobs": list(w.assignment.jobs) if w.assignment else []}
                for w in self.workers
            ],
            "timers": {k: round(v, 4) for k, v in self.timers.elapsed.items()},
            "log": self._worker_log[-20:],
        }

    # -- socket plumbing ----------------------------------------------------

    def _poll_socket(self, timeout: float) -> None:
        """One bounded select pass: accept, read, write — never block.

        All client I/O is readiness-driven so a slow client costs the
        main loop nothing beyond its buffered bytes; connections that
        overstay :attr:`_Conn.TIMEOUT` are dropped.
        """
        for key, mask in self._sel.select(timeout):
            if key.fileobj is self._sock:
                try:
                    sock, _ = self._sock.accept()
                except OSError:
                    continue
                sock.setblocking(False)
                conn = _Conn(sock)
                self._conns.append(conn)
                self._sel.register(sock, selectors.EVENT_READ, conn)
            else:
                self._conn_io(key.data, mask)
        now = time.time()
        for conn in [c for c in self._conns if now > c.deadline]:
            self._close_conn(conn)

    def _conn_io(self, conn: _Conn, mask: int) -> None:
        try:
            if mask & selectors.EVENT_READ:
                chunk = conn.sock.recv(65536)
                if not chunk:  # client went away (or sent EOF early)
                    self._close_conn(conn)
                    return
                conn.inbuf += chunk
                if len(conn.inbuf) > _Conn.MAX_REQUEST:
                    self._close_conn(conn)
                    return
                if b"\n" in conn.inbuf:
                    self._respond(conn)
            if conn.outbuf and mask & selectors.EVENT_WRITE:
                self._flush_conn(conn)
        except BlockingIOError:
            pass
        except OSError:
            self._close_conn(conn)

    def _respond(self, conn: _Conn) -> None:
        raw, _, _ = conn.inbuf.partition(b"\n")
        if not raw.strip():
            self._close_conn(conn)
            return
        try:
            req = json.loads(raw.decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            resp = {"ok": False, "error": f"bad request: {exc}"}
        else:
            resp = self._handle_request(req)
        conn.outbuf = (json.dumps(resp) + "\n").encode()
        self._flush_conn(conn)

    def _flush_conn(self, conn: _Conn) -> None:
        try:
            sent = conn.sock.send(conn.outbuf)
        except BlockingIOError:
            sent = 0
        except OSError:
            self._close_conn(conn)
            return
        conn.outbuf = conn.outbuf[sent:]
        if not conn.outbuf:
            self._close_conn(conn)
        else:
            self._sel.modify(conn.sock, selectors.EVENT_WRITE, conn)

    def _close_conn(self, conn: _Conn) -> None:
        try:
            self._sel.unregister(conn.sock)
        except (KeyError, ValueError):
            pass
        conn.sock.close()
        if conn in self._conns:
            self._conns.remove(conn)

    # -- main loop ----------------------------------------------------------

    def _log(self, line: str) -> None:
        self._worker_log.append(line)
        print(f"[serve] {line}", flush=True)

    def tick(self) -> None:
        """One main-loop iteration (socket, events, reap, schedule)."""
        with self.timers.time("serve_tick"):
            with self.timers.time("serve_socket"):
                self._poll_socket(self.config.tick)
            with self.timers.time("serve_events"):
                self._drain_events()
                self._check_stalls()
                self._reap_dead()
            with self.timers.time("serve_schedule"):
                self._schedule()

    def serve_forever(self) -> None:
        try:
            while not self._shutdown:
                self.tick()
                if self.config.idle_exit > 0:
                    if self.queue.jobs and self.queue.all_terminal():
                        if self._idle_since is None:
                            self._idle_since = time.time()
                        elif time.time() - self._idle_since > self.config.idle_exit:
                            self._log("idle; exiting (--idle-exit)")
                            return
                    else:
                        self._idle_since = None
        finally:
            self.close()

    def close(self) -> None:
        for w in self.workers:
            if w.proc is not None and w.proc.is_alive():
                w.cmd_q.put({"cmd": "stop"})
        deadline = time.time() + 5.0
        for w in self.workers:
            if w.proc is not None:
                w.proc.join(timeout=max(0.1, deadline - time.time()))
                if w.proc.is_alive():
                    w.proc.terminate()
        for conn in list(self._conns):
            self._close_conn(conn)
        self._sel.close()
        self._sock.close()
        self.sock_path.unlink(missing_ok=True)
        self.queue.close()
