"""Worker pool: multiprocess execution of job assignments in slices.

A worker is one OS process running :func:`worker_main`: it resolves
the kernel configuration **once** (per process, not per job slice —
:func:`resolve_worker_kernels` is the single
:func:`repro.kernels.resolve_config` call, and any
``KernelBuildError`` fallback warning is captured and forwarded to the
server exactly once), then loops on its command queue executing
assignments.

Execution model
---------------
An assignment is 1+ batch-compatible jobs.  Fresh jobs run through one
:class:`~repro.ensemble.EnsembleSimulation` pass (R = batch size, the
PR 7 engine — each replica bit-identical to its solo run on every
kernel tier); a job with prior progress resumes solo through
:class:`~repro.core.simulation.Simulation` from its newest valid
checkpoint, appending to its trajectory and energy log with the torn /
past-checkpoint output truncated.  Work proceeds in **slices of
exactly the checkpoint cadence**: every slice boundary coincides with
a durable checkpoint save, so

* preemption (requested between slices) needs no special checkpoint —
  the state is already on disk, and the requeued job resumes from it
  bit-exactly;
* a SIGKILLed worker loses at most one slice of progress; the job is
  requeued and its artifacts heal to byte-identity on resume.

:func:`execute_assignment` is the in-process core (used directly by
tests and benchmarks); :func:`worker_main` wraps it in the process /
queue plumbing and heartbeats.
"""

from __future__ import annotations

import os
import time
import traceback
import warnings
from queue import Empty

from repro.serve.jobs import JobSpec, prepare_job_system

__all__ = [
    "resolve_worker_kernels",
    "execute_assignment",
    "worker_main",
    "AssignmentJob",
    "SliceOutcome",
]


class AssignmentJob:
    """One job as shipped to a worker: spec + artifact paths + progress."""

    __slots__ = ("id", "spec", "artifact_dir", "steps_done")

    def __init__(self, id: str, spec: JobSpec, artifact_dir: str, steps_done: int = 0):
        self.id = id
        self.spec = spec
        self.artifact_dir = artifact_dir
        self.steps_done = int(steps_done)

    def to_dict(self) -> dict:
        return {"id": self.id, "spec": self.spec.to_dict(),
                "artifact_dir": self.artifact_dir, "steps_done": self.steps_done}

    @classmethod
    def from_dict(cls, d: dict) -> "AssignmentJob":
        return cls(id=d["id"], spec=JobSpec.from_dict(d["spec"]),
                   artifact_dir=d["artifact_dir"], steps_done=d.get("steps_done", 0))


class SliceOutcome:
    """Result of :func:`execute_assignment`."""

    __slots__ = ("status", "steps_done", "error")

    def __init__(self, status: str, steps_done: dict[str, int], error: str = ""):
        self.status = status  # "done" | "preempted" | "failed"
        self.steps_done = steps_done
        self.error = error


def resolve_worker_kernels(tier, threads):
    """Resolve the kernel config once per worker process.

    Returns ``(config, suite_tier, suite_threads, warnings)`` where
    ``warnings`` holds the text of any fallback warning (missing
    compiler, pthread-less build) raised while actually loading the
    suite — captured here so the server can log it once per worker,
    and so job slices never re-trigger the resolution.
    """
    from repro.kernels import get_suite, resolve_config

    cfg = resolve_config(tier, threads)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        suite = get_suite(cfg.tier, cfg.threads)
    notes = [str(w.message) for w in caught]
    return cfg, suite.tier, getattr(suite, "threads", 1), notes


def _open_fresh_artifacts(ens, jobs):
    """Per-job (trajectory, store, energy writer) for a fresh batch."""
    from pathlib import Path

    from repro.io import (
        CheckpointStore,
        EnergyLogWriter,
        job_checkpoint_dir,
        job_energy_log_path,
        job_trajectory_path,
    )

    trajectories, stores, writers = [], [], []
    for job in jobs:
        d = Path(job.artifact_dir)
        d.mkdir(parents=True, exist_ok=True)
        trajectories.append(ens.open_replica_trajectory(job_trajectory_path(d)))
        stores.append(CheckpointStore(job_checkpoint_dir(d), retain=job.spec.retain))
        writers.append(EnergyLogWriter(job_energy_log_path(d)))
    return trajectories, stores, writers


def _run_fresh_batch(jobs, control, progress, kernel_cfg):
    """One EnsembleSimulation pass over a batch of fresh jobs."""
    from repro.core.thermostat import BerendsenThermostat
    from repro.ensemble import EnsembleSimulation

    spec = jobs[0].spec
    system, params = prepare_job_system(spec)
    ens = EnsembleSimulation(
        system, params, dt=spec.dt,
        seeds=[j.spec.seed for j in jobs],
        temperature=spec.temperature,
        thermostat=BerendsenThermostat(spec.temperature),
        constraints=True,
        kernel_tier=kernel_cfg.tier, kernel_threads=kernel_cfg.threads,
    )
    trajectories, stores, writers = _open_fresh_artifacts(ens, jobs)

    def save_checkpoints() -> None:
        # Durability order: trajectories are flushed BEFORE the slice's
        # checkpoint lands, so a durable checkpoint is always covered
        # by durable frames — a SIGKILL can never leave a checkpoint
        # newer than the trajectory prefix (frames a resume could not
        # regenerate).  Energy lines flush per record already.
        for t in trajectories:
            t.flush()
        for r, store in enumerate(stores):
            store.save(ens.replica_checkpoint(r), ens.integrator.step_count)

    done = {j.id: 0 for j in jobs}
    try:
        step = 0
        while step < spec.steps:
            n = min(spec.slice_steps, spec.steps - step)
            # In-run checkpointing stays off: the slice boundary saves
            # below hit exactly the same steps (slice == cadence), in
            # the flush-then-save order the durability argument needs.
            ens.run(
                n, record_every=spec.record_every,
                energy_writers=writers,
                trajectories=trajectories,
                trajectory_every=spec.effective_trajectory_every,
            )
            step += n
            if spec.checkpoint_every and step % spec.checkpoint_every == 0:
                save_checkpoints()
            for j in jobs:
                done[j.id] = step
            if progress is not None:
                progress(dict(done))
            if step < spec.steps and control is not None and control() == "preempt":
                return SliceOutcome("preempted", done)
        # Final checkpoint at the last step, exactly like the solo CLI
        # (the cadence save above already wrote it when steps is a
        # multiple; saving the same step again produces the same file).
        save_checkpoints()
        return SliceOutcome("done", done)
    finally:
        for t in trajectories:
            t.close()
        for w in writers:
            w.close()


def _run_resumed_solo(job, control, progress, kernel_cfg):
    """Resume one job from its newest valid checkpoint, bit-exactly."""
    from pathlib import Path

    from repro.core.simulation import Simulation
    from repro.core.thermostat import BerendsenThermostat
    from repro.io import (
        CheckpointError,
        CheckpointStore,
        EnergyLogWriter,
        job_checkpoint_dir,
        job_energy_log_path,
        job_trajectory_path,
        truncate_energy_log,
    )

    spec = job.spec
    d = Path(job.artifact_dir)
    store = CheckpointStore(job_checkpoint_dir(d), retain=spec.retain)
    try:
        loaded = store.load_latest()
    except CheckpointError:
        # Nothing durable survived (killed before the first snapshot,
        # or every snapshot torn): start over from scratch — the
        # "run-start baseline" rung of the recovery ladder.
        job.steps_done = 0
        return _run_fresh_batch([job], control, progress, kernel_cfg)

    system, params = prepare_job_system(spec)
    sim = Simulation(
        system, params, dt=spec.dt, mode="fixed",
        thermostat=BerendsenThermostat(spec.temperature), constraints=True,
    )
    sim.restore(loaded.state)
    resume_step = sim.integrator.step_count

    from repro.io.records import CorruptRecord

    traj_path = job_trajectory_path(d)
    try:
        if traj_path.exists():
            trajectory = sim.append_trajectory(traj_path)
        else:  # pragma: no cover - checkpoint without trajectory
            trajectory = sim.open_trajectory(traj_path)
    except CorruptRecord:  # pragma: no cover - externally damaged file
        # Unreadable even at the header: nothing to append to.  The
        # flush-before-checkpoint order makes this unreachable from a
        # worker SIGKILL, so it means external damage — regenerate the
        # whole artifact set from step 0 (bit-exact, just slower).
        job.steps_done = 0
        return _run_fresh_batch([job], control, progress, kernel_cfg)
    truncate_energy_log(job_energy_log_path(d), resume_step)
    writer = EnergyLogWriter(job_energy_log_path(d), append=True)

    def save_checkpoint() -> None:
        # Same durability order as the fresh path: flush frames, then
        # land the checkpoint they cover.
        trajectory.flush()
        store.save(sim.checkpoint(), sim.integrator.step_count)

    done = {job.id: resume_step}
    try:
        step = resume_step
        while step < spec.steps:
            n = min(spec.slice_steps, spec.steps - step)
            sim.run(
                n, record_every=spec.record_every,
                energy_writer=writer,
                trajectory=trajectory,
                trajectory_every=spec.effective_trajectory_every,
            )
            step += n
            if spec.checkpoint_every and step % spec.checkpoint_every == 0:
                save_checkpoint()
            done[job.id] = step
            if progress is not None:
                progress(dict(done))
            if step < spec.steps and control is not None and control() == "preempt":
                return SliceOutcome("preempted", done)
        save_checkpoint()
        return SliceOutcome("done", done)
    finally:
        trajectory.close()
        writer.close()


def execute_assignment(jobs, control=None, progress=None, kernel_cfg=None):
    """Run one assignment to completion, preemption, or failure.

    ``jobs`` is a list of :class:`AssignmentJob`; ``control`` is a
    zero-argument callable polled between slices (return ``"preempt"``
    to stop after the current slice); ``progress`` receives a
    ``{job_id: steps_done}`` dict after every slice.  ``kernel_cfg``
    is the worker's resolved :class:`~repro.kernels.KernelConfig`
    (resolved once per process — see :func:`resolve_worker_kernels`).
    """
    from repro.kernels import resolve_config

    if kernel_cfg is None:
        kernel_cfg = resolve_config()
    try:
        if len(jobs) == 1 and jobs[0].steps_done > 0:
            return _run_resumed_solo(jobs[0], control, progress, kernel_cfg)
        if any(j.steps_done > 0 for j in jobs):
            raise ValueError("batched assignments must be fresh")
        return _run_fresh_batch(list(jobs), control, progress, kernel_cfg)
    except Exception:
        return SliceOutcome(
            "failed",
            {j.id: j.steps_done for j in jobs},
            error=traceback.format_exc(limit=8),
        )


# -- process entry point -----------------------------------------------------


def worker_main(worker_id: int, cmd_q, evt_q, kernel_tier, kernel_threads,
                parent_pid: int, idle_poll: float = 0.2) -> None:
    """Worker process: resolve kernels once, then serve assignments.

    Exits when told to stop, or when the parent process disappears
    (``getppid`` changed — an orphan after a server SIGKILL must not
    keep mutating artifacts a restarted server will reschedule).
    """
    cfg, tier, threads, notes = resolve_worker_kernels(kernel_tier, kernel_threads)
    # Every event carries this process incarnation's pid: mp.Queue can
    # surface a SIGKILLed worker's buffered events after the server has
    # already spawned a replacement into the same slot, and the server
    # must be able to tell the two apart.
    pid = os.getpid()
    evt_q.put({"evt": "online", "worker": worker_id, "pid": pid,
               "tier": tier, "threads": threads, "warnings": notes})

    def drain_cmds() -> list[dict]:
        out = []
        while True:
            try:
                out.append(cmd_q.get_nowait())
            except Empty:
                return out

    pending_cmds: list[dict] = []
    while True:
        if pending_cmds:
            msg = pending_cmds.pop(0)
        else:
            try:
                msg = cmd_q.get(timeout=idle_poll)
            except Empty:
                if os.getppid() != parent_pid:
                    return
                evt_q.put({"evt": "heartbeat", "worker": worker_id,
                           "pid": pid, "wall": time.time()})
                continue
        if msg.get("cmd") == "stop":
            return
        if msg.get("cmd") != "run":
            continue

        jobs = [AssignmentJob.from_dict(d) for d in msg["jobs"]]
        job_ids = {j.id for j in jobs}
        evt_q.put({"evt": "started", "worker": worker_id, "pid": pid,
                   "jobs": [j.id for j in jobs], "wall": time.time()})
        t0 = time.time()
        state = {"preempt": False}

        def control() -> str | None:
            if os.getppid() != parent_pid:
                os._exit(1)  # orphaned mid-run: stop touching artifacts
            for cmd in drain_cmds():
                if cmd.get("cmd") == "preempt":
                    # A preempt tagged for a different assignment is a
                    # stale leftover — obeying it would churn this one.
                    if cmd.get("jobs") is None or job_ids.issuperset(cmd["jobs"]):
                        state["preempt"] = True
                elif cmd.get("cmd") == "stop":
                    state["preempt"] = True
                    pending_cmds.append(cmd)
                elif cmd.get("cmd") == "run":
                    # Never drop work: hold it for the idle loop rather
                    # than leaving its jobs RUNNING with no worker.
                    pending_cmds.append(cmd)
            return "preempt" if state["preempt"] else None

        def progress(done: dict) -> None:
            evt_q.put({"evt": "slice", "worker": worker_id, "pid": pid,
                       "steps": done, "wall": time.time()})

        outcome = execute_assignment(jobs, control=control, progress=progress,
                                     kernel_cfg=cfg)
        evt_q.put({
            "evt": outcome.status,  # "done" | "preempted" | "failed"
            "worker": worker_id,
            "pid": pid,
            "jobs": [j.id for j in jobs],
            "steps": outcome.steps_done,
            "error": outcome.error,
            "seconds": time.time() - t0,
            "wall": time.time(),
        })
