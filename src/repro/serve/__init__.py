"""Multi-run simulation service: durable queue, scheduler, worker pool.

``repro serve`` turns the single-run engine into a small local
service: jobs are submitted over a unix socket, journaled durably
(SIGKILL-safe), scheduled by priority + FIFO with same-system batching
into one :class:`~repro.ensemble.EnsembleSimulation` pass, and
executed by a pool of worker processes in checkpoint-cadence slices —
so preemption, worker death, and server restarts all resume bit-exactly
and every job's artifacts stay byte-identical to a same-seed solo
:class:`~repro.core.simulation.Simulation` run.
"""

from repro.serve.client import ServeClient, ServeUnavailable, request
from repro.serve.jobs import (
    JOB_STATES,
    TERMINAL_STATES,
    VALID_TRANSITIONS,
    InvalidTransition,
    Job,
    JobSpec,
    prepare_job_system,
)
from repro.serve.queue import JobQueue, QueueError
from repro.serve.scheduler import (
    Assignment,
    Plan,
    make_assignment,
    order_key,
    pending_order,
    plan,
    simulate_schedule,
)
from repro.serve.server import SOCKET_NAME, ServeConfig, Server
from repro.serve.workers import (
    AssignmentJob,
    SliceOutcome,
    execute_assignment,
    resolve_worker_kernels,
    worker_main,
)

__all__ = [
    "JobSpec",
    "Job",
    "JOB_STATES",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "InvalidTransition",
    "prepare_job_system",
    "JobQueue",
    "QueueError",
    "Assignment",
    "Plan",
    "order_key",
    "pending_order",
    "make_assignment",
    "plan",
    "simulate_schedule",
    "AssignmentJob",
    "SliceOutcome",
    "execute_assignment",
    "resolve_worker_kernels",
    "worker_main",
    "Server",
    "ServeConfig",
    "SOCKET_NAME",
    "ServeClient",
    "ServeUnavailable",
    "request",
]
