"""Durable job queue: an append-only, CRC-framed event journal.

The queue is the service's single source of truth.  Every mutation —
submit, state transition, counter bump — is one appended record in
``queue.rrs`` using the run store's framing
(:mod:`repro.io.records`: RPR1 magic + CRC32 per record) and tagged
state serialization (:func:`repro.io.pack_state`), flushed and fsynced
before the mutation is acted on.  Restarting the server replays the
journal:

* a SIGKILL can tear at most the record being written — the replay
  scan keeps every intact event and drops the torn tail, exactly the
  trajectory-file contract;
* jobs that were RUNNING when the server died are *requeued* (a
  ``recovered`` transition appended on reopen): their artifacts resume
  from the newest durable checkpoint, so no work is lost and — because
  trajectory/energy-log resume truncates past-checkpoint output — no
  work is duplicated;
* completed jobs stay completed; job ids are assigned from a persisted
  monotonic counter, so a restart can never reuse one.

All writes happen in the server process only; clients mutate through
the socket front end.  (Single-writer is what makes the plain
append-only file safe without locks.)
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from repro.io.records import REC_HEADER, REC_STATE, scan_records, write_record
from repro.io.serialize import pack_state, unpack_state
from repro.serve.jobs import TERMINAL_STATES, Job, JobSpec

__all__ = ["JobQueue", "QueueError"]

_JOURNAL = "queue.rrs"


class QueueError(RuntimeError):
    """The journal is unusable (wrong kind, unreadable header)."""


class JobQueue:
    """Journal-backed job table with atomic, durable transitions."""

    def __init__(self, directory, sync: bool = True):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.path = self.directory / _JOURNAL
        self.sync = bool(sync)
        self.jobs: dict[str, Job] = {}
        self._arrival = 0  # next submission index
        self._recovered: list[str] = []
        existing = self.path.exists()
        if existing:
            self._replay()
        # Reopen for appending *after* the replay determined the intact
        # prefix; a torn tail is overwritten by the next append.
        self._f = open(self.path, "r+b" if existing else "wb")
        if existing:
            self._f.seek(self._keep_end)
            self._f.truncate(self._keep_end)
        else:
            write_record(self._f, REC_HEADER,
                         pack_state({"kind": "jobqueue", "version": 1}))
            self._flush()
        # Journal the requeue of jobs orphaned by a dead server so a
        # second restart replays the same decision.
        for job_id in self._recovered:
            self._append({"event": "transition", "id": job_id, "to": "PREEMPTED",
                          "reason": "server-died"})
            self._append({"event": "transition", "id": job_id, "to": "PENDING",
                          "reason": "server-died",
                          "fields": {"recoveries": self.jobs[job_id].recoveries}})

    # -- journal plumbing ---------------------------------------------------

    def _flush(self) -> None:
        self._f.flush()
        if self.sync:
            os.fsync(self._f.fileno())

    def _append(self, event: dict) -> None:
        write_record(self._f, REC_STATE, pack_state(event))
        self._flush()

    def _replay(self) -> None:
        self._keep_end = 0
        with open(self.path, "rb") as f:
            records = scan_records(f)
            try:
                offset, end, rtype, payload = next(records)
            except StopIteration:
                raise QueueError(f"{self.path}: empty or unreadable journal header")
            header = unpack_state(payload)
            if rtype != REC_HEADER or header.get("kind") != "jobqueue":
                raise QueueError(f"{self.path}: not a job-queue journal")
            self._keep_end = end
            for _offset, end, rtype, payload in records:
                if rtype != REC_STATE:
                    break
                self._apply(unpack_state(payload))
                self._keep_end = end
        # Jobs mid-run when the server died: requeue (journaled in
        # __init__ once the file is writable again).
        self._recovered = []
        for job in self.jobs.values():
            if job.state == "RUNNING":
                job.state = "PENDING"
                job.recoveries += 1
                self._recovered.append(job.id)

    def _apply(self, event: dict) -> None:
        """Apply one journal event to the in-memory table (replay path)."""
        kind = event.get("event")
        if kind == "submit":
            spec = JobSpec.from_dict(event["spec"])
            job = Job(
                id=event["id"], spec=spec, arrival=int(event["arrival"]),
                artifact_dir=event.get("artifact_dir", ""),
                submitted_at=float(event.get("wall", 0.0)),
            )
            self.jobs[job.id] = job
            self._arrival = max(self._arrival, job.arrival + 1)
        elif kind == "transition":
            job = self.jobs.get(event["id"])
            if job is None:
                return  # tolerate foreign tails; never crash a replay
            job.state = event["to"]
            for key, value in (event.get("fields") or {}).items():
                if hasattr(job, key):
                    setattr(job, key, value)
        elif kind == "update":
            job = self.jobs.get(event["id"])
            if job is None:
                return
            for key, value in (event.get("fields") or {}).items():
                if hasattr(job, key):
                    setattr(job, key, value)

    # -- mutations (all journaled) ------------------------------------------

    def submit(self, spec: JobSpec, artifact_dir: str = "") -> Job:
        arrival = self._arrival
        self._arrival += 1
        job_id = spec.name or f"job-{arrival:04d}"
        if job_id in self.jobs:
            raise QueueError(f"job id {job_id!r} already exists")
        job = Job(id=job_id, spec=spec, arrival=arrival,
                  artifact_dir=artifact_dir, submitted_at=time.time())
        self._append({"event": "submit", "id": job.id, "arrival": arrival,
                      "spec": spec.to_dict(), "artifact_dir": artifact_dir,
                      "wall": job.submitted_at})
        self.jobs[job.id] = job
        return job

    def transition(self, job_id: str, to: str, reason: str = "", **fields) -> Job:
        """Validate, journal, then apply one state transition.

        ``fields`` are counter/bookkeeping updates carried with the
        transition (``steps_done``, ``preemptions``, …) so a replay
        reconstructs them too.
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        # Validate before journaling: the journal only ever records
        # legal transitions, so a replay can apply them unchecked.
        probe = Job(id=job.id, spec=job.spec, state=job.state)
        probe.transition(to)
        event = {"event": "transition", "id": job_id, "to": to}
        if reason:
            event["reason"] = reason
        if fields:
            event["fields"] = dict(fields)
        self._append(event)
        job.state = to
        for key, value in fields.items():
            if hasattr(job, key):
                setattr(job, key, value)
        return job

    def update(self, job_id: str, **fields) -> Job:
        """Journal a field-only update (progress counters, wall times).

        No state change — this is how slice progress lands durably
        while a job stays RUNNING (the state machine has no
        RUNNING -> RUNNING edge, deliberately).
        """
        job = self.jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        self._append({"event": "update", "id": job_id, "fields": dict(fields)})
        for key, value in fields.items():
            if hasattr(job, key):
                setattr(job, key, value)
        return job

    def requeue(self, job_id: str, reason: str) -> Job:
        """RUNNING -> PREEMPTED -> PENDING with the right counter bump."""
        job = self.jobs[job_id]
        counter = "preemptions" if reason == "preempt" else "recoveries"
        self.transition(job_id, "PREEMPTED", reason=reason,
                        **{counter: getattr(job, counter) + 1})
        return self.transition(job_id, "PENDING", reason=reason)

    # -- views --------------------------------------------------------------

    def pending(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state == "PENDING"]

    def active(self) -> list[Job]:
        return [j for j in self.jobs.values() if j.state not in TERMINAL_STATES]

    def all_terminal(self) -> bool:
        return all(j.state in TERMINAL_STATES for j in self.jobs.values())

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
