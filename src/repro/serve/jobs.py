"""Job model for the multi-run simulation service.

A *job* is one requested MD run: a :class:`JobSpec` (what to simulate,
for how many steps, from which seed, at what priority) plus mutable
scheduling state (:class:`Job`).  The spec is deliberately a closed
recipe — system family, build parameters, force parameters, cadences —
rather than a pickled system object, so that

* the queue can serialize it through the run store's tagged binary
  format (:func:`repro.io.pack_state`) and replay it after a server
  SIGKILL;
* any worker (or the verification harness) can rebuild the *identical*
  prepared system from the spec alone: the build / minimize /
  velocity-draw sequence below is exactly the solo CLI's, so a job's
  artifacts are byte-comparable to a plain same-seed
  :class:`~repro.core.simulation.Simulation` run;
* two jobs can be recognized as batch-compatible (same static system
  and parameters, differing only in velocity seed) from their specs,
  without building anything — the grouping key the scheduler uses to
  fuse jobs into one :class:`~repro.ensemble.EnsembleSimulation` pass.

Job lifecycle::

    PENDING --assign--> RUNNING --slices done--> DONE
       ^                  | | |
       |   preempted /    | | +--error--> FAILED
       +-- worker died ---+ |
       |                    +--cancel--> CANCELLED
       +--- (requeue keeps checkpoints; resume is bit-exact)

``PREEMPTED`` is recorded as a distinct state in the durable journal
(it is how the operator sees *why* a job left its worker), but a
preempted or worker-orphaned job always transitions back to PENDING to
become schedulable again.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = [
    "JobSpec",
    "Job",
    "JOB_STATES",
    "TERMINAL_STATES",
    "VALID_TRANSITIONS",
    "InvalidTransition",
    "prepare_job_system",
]

#: Every state a job can be in.
JOB_STATES = ("PENDING", "RUNNING", "PREEMPTED", "FAILED", "DONE", "CANCELLED")
#: States a job never leaves.
TERMINAL_STATES = frozenset({"DONE", "FAILED", "CANCELLED"})

#: The job state machine.  PREEMPTED covers both scheduler preemption
#: and a worker death (the journal's transition reason distinguishes
#: them); it immediately requeues to PENDING.
VALID_TRANSITIONS = {
    "PENDING": {"RUNNING", "CANCELLED"},
    "RUNNING": {"PREEMPTED", "FAILED", "DONE", "CANCELLED"},
    "PREEMPTED": {"PENDING"},
    "FAILED": set(),
    "DONE": set(),
    "CANCELLED": set(),
}


class InvalidTransition(ValueError):
    """A job was asked to enter a state its current state forbids."""


@dataclass(frozen=True)
class JobSpec:
    """Everything needed to (re)run one simulation deterministically.

    ``seed`` is the velocity seed (the per-run identity); everything
    else describes the static system and parameters.  Fields mirror the
    ``repro simulate``/``repro ensemble`` flags for the water family.
    """

    system: str = "water"
    waters: int = 64
    build_seed: int = 0
    steps: int = 100
    dt: float = 1.0
    temperature: float = 300.0
    seed: int = 0
    priority: int = 0
    cutoff: float | None = None
    record_every: int = 10
    trajectory_every: int = 0  # 0: record_every
    checkpoint_every: int = 0  # 0: steps (one slice)
    retain: int = 4
    name: str = ""

    def __post_init__(self):
        if self.system != "water":
            raise ValueError(f"unsupported job system {self.system!r}")
        if self.steps < 1:
            raise ValueError("steps must be >= 1")
        # Energy records are cadenced per run() call, not per global
        # step, so slice boundaries (== checkpoint cadence) must land
        # on record boundaries for sliced output to be byte-identical
        # to an unsliced run's.
        if (self.checkpoint_every and self.record_every
                and self.checkpoint_every % self.record_every):
            raise ValueError(
                f"checkpoint_every ({self.checkpoint_every}) must be a "
                f"multiple of record_every ({self.record_every})"
            )

    # -- derived cadences ---------------------------------------------------

    @property
    def effective_trajectory_every(self) -> int:
        return self.trajectory_every or self.record_every

    @property
    def slice_steps(self) -> int:
        """Steps per worker slice == checkpoint cadence.

        Slices end exactly at checkpoint saves, so preemption and
        recovery always resume from an on-cadence snapshot and the
        rolling store's contents match an uninterrupted run's.
        """
        return self.checkpoint_every or self.steps

    # -- batching -----------------------------------------------------------

    def group_key(self) -> tuple:
        """Batch-compatibility key: equal keys may share one engine pass.

        Everything except the velocity ``seed`` and ``name`` — same
        static system, parameters, step count, cadences, and priority.
        (Same priority keeps batching from smuggling a low-priority job
        into a high-priority slot.)  Jobs with equal keys produce equal
        system fingerprints, which is what makes the fused
        :class:`~repro.ensemble.EnsembleSimulation` pass bitwise-safe.
        """
        d = asdict(self)
        d.pop("seed")
        d.pop("name")
        return tuple(sorted(d.items()))

    # -- wire format --------------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        return cls(**{k: v for k, v in d.items() if k in cls.__dataclass_fields__})


@dataclass
class Job:
    """One job's durable scheduling state (spec + journal-backed fields)."""

    id: str
    spec: JobSpec
    state: str = "PENDING"
    #: Monotonic submission index — the FIFO tiebreaker.
    arrival: int = 0
    #: Steps completed and durably checkpointed.
    steps_done: int = 0
    preemptions: int = 0
    recoveries: int = 0
    slices: int = 0
    error: str = ""
    #: Artifact directory (assigned at submit, relative to the state dir).
    artifact_dir: str = ""
    #: Wall-clock bookkeeping for metrics (never affects artifacts).
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    run_seconds: float = 0.0

    def transition(self, to: str) -> None:
        if to not in JOB_STATES:
            raise InvalidTransition(f"unknown job state {to!r}")
        if to not in VALID_TRANSITIONS[self.state]:
            raise InvalidTransition(f"job {self.id}: cannot go {self.state} -> {to}")
        self.state = to

    @property
    def remaining(self) -> int:
        return max(0, self.spec.steps - self.steps_done)

    @property
    def fresh(self) -> bool:
        """True while no slice has completed (batchable from step 0)."""
        return self.steps_done == 0


def prepare_job_system(spec: JobSpec):
    """Build the prepared (minimized) system + params for a spec.

    This is the exact solo-CLI preparation sequence for the water
    family (``cmd_simulate``): build, derive the cutoff, minimize 80
    steps.  Velocities are *not* drawn here — the velocity seed is the
    per-job identity, applied by the worker (via the ensemble engine's
    seed list) or by ``initialize_velocities`` on the solo path.
    Deterministic: equal specs (modulo ``seed``/``name``/``priority``)
    yield bitwise-equal prepared systems.
    """
    from repro.core.forces import MDParams
    from repro.core.simulation import minimize_energy
    from repro.systems import build_water_box

    system = build_water_box(n_molecules=spec.waters, seed=spec.build_seed)
    cutoff = spec.cutoff or min(5.5, system.box.max_cutoff() * 0.9)
    params = MDParams(cutoff=cutoff, mesh=(16, 16, 16), long_range_every=2)
    minimize_energy(system, params, max_steps=80)
    return system, params


