"""Seekable, CRC-protected, bit-exact trajectory files.

A trajectory file is a header record, a sequence of frame records, and
(when closed cleanly) an index record plus trailer for O(1) random
access (see :mod:`repro.io.records` for the framing).  Frames store
the *raw integer state codes* of the fixed-point path — the quantities
the paper's determinism guarantees are about — so reading a frame back
reproduces the run's state bit for bit; the float path stores raw
float64 arrays, which round-trip exactly too.

Crash tolerance: a writer killed mid-frame leaves a torn tail that the
reader detects by CRC and drops, keeping every complete frame.
:meth:`TrajectoryWriter.append` reopens such a file, truncates the torn
tail (and, on resume, any frames past the restored step), and continues
writing — so an interrupted-then-resumed run ends with a trajectory
file *byte-identical* to an uninterrupted one.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

import numpy as np

from repro.fixedpoint import FixedFormat, ScaledFixed
from repro.io.records import (
    REC_FRAME,
    REC_HEADER,
    REC_INDEX,
    TRAILER_SIZE,
    CorruptRecord,
    read_record,
    read_record_at,
    read_trailer,
    scan_records,
    write_record,
    write_trailer,
)
from repro.io.serialize import check_fingerprint, pack_state, unpack_state

__all__ = ["Frame", "TrajectoryWriter", "TrajectoryReader", "VerifyReport"]


@dataclass(frozen=True)
class Frame:
    """One stored time point: step metadata plus the exact state arrays."""

    step: int
    time_fs: float
    arrays: dict


def _decode_positions(codes: np.ndarray, bits: int, box_lengths) -> np.ndarray:
    # Same arithmetic as PositionCodec.decode (codes / scale with
    # scale = 2**bits / L), so the floats are bitwise those a live
    # simulation would report.
    scale = float(np.int64(1) << np.int64(bits)) / np.asarray(box_lengths, dtype=np.float64)
    return codes.astype(np.float64) / scale


class TrajectoryWriter:
    """Streams frames to disk; index + trailer are written at close.

    Parameters
    ----------
    fingerprint:
        :func:`~repro.io.serialize.system_fingerprint` of the producing
        run, validated when the file is later appended to or analyzed.
    decode:
        How to map stored arrays back to physical values, e.g.
        ``{"storage": "codes", "position_bits": 40, "box": [...],
        "velocity_bits": 40, "velocity_limit": 0.25}`` for the
        fixed-point path or ``{"storage": "float", "box": [...]}``.
    """

    def __init__(self, path, fingerprint: dict | None = None,
                 decode: dict | None = None, meta: dict | None = None):
        self.path = os.fspath(path)
        self._f = open(self.path, "wb")
        self.header = {
            "kind": "trajectory",
            "version": 1,
            "fingerprint": fingerprint or {},
            "decode": decode or {},
            "meta": meta or {},
        }
        write_record(self._f, REC_HEADER, pack_state(self.header))
        self._offsets: list[int] = []
        self._steps: list[int] = []
        self._closed = False

    @classmethod
    def append(cls, path, fingerprint: dict | None = None,
               resume_step: int | None = None) -> "TrajectoryWriter":
        """Reopen an existing trajectory to continue writing.

        Scans the file, keeps every intact frame whose step does not
        exceed ``resume_step`` (all intact frames when None), truncates
        everything after the last kept frame — torn tails from a crash,
        stale index/trailer from a clean close, frames the interrupted
        run wrote past its last durable checkpoint — and appends from
        there.
        """
        f = open(path, "r+b")
        try:
            try:
                rtype, payload = read_record_at(f, 0)
            except (EOFError, CorruptRecord) as exc:
                raise CorruptRecord(f"{path}: unreadable trajectory header: {exc}") from exc
            if rtype != REC_HEADER:
                raise CorruptRecord(f"{path}: first record is not a header")
            header = unpack_state(payload)
            if fingerprint is not None and header.get("fingerprint"):
                check_fingerprint(header["fingerprint"], fingerprint, what="trajectory")
            keep_end = f.tell()
            offsets, steps = [], []
            for offset, end, rtype, payload in scan_records(f, keep_end):
                if rtype != REC_FRAME:
                    break  # index record from a clean close: rewrite it
                frame = unpack_state(payload)
                if resume_step is not None and frame["step"] > resume_step:
                    break
                offsets.append(offset)
                steps.append(frame["step"])
                keep_end = end
            f.seek(keep_end)
            f.truncate(keep_end)
        except BaseException:
            f.close()
            raise
        writer = cls.__new__(cls)
        writer.path = os.fspath(path)
        writer._f = f
        writer.header = header
        writer._offsets = offsets
        writer._steps = steps
        writer._closed = False
        return writer

    @property
    def n_frames(self) -> int:
        return len(self._offsets)

    def write_frame(self, step: int, time_fs: float, arrays: dict) -> None:
        payload = pack_state({"step": int(step), "time_fs": float(time_fs),
                              "arrays": dict(arrays)})
        offset = write_record(self._f, REC_FRAME, payload)
        self._offsets.append(offset)
        self._steps.append(int(step))

    def flush(self) -> None:
        self._f.flush()

    def close(self) -> None:
        """Write the frame index and trailer, fsync, and close."""
        if self._closed:
            return
        index = {
            "offsets": np.asarray(self._offsets, dtype=np.int64),
            "steps": np.asarray(self._steps, dtype=np.int64),
        }
        index_offset = write_record(self._f, REC_INDEX, pack_state(index))
        write_trailer(self._f, index_offset)
        self._f.flush()
        os.fsync(self._f.fileno())
        self._f.close()
        self._closed = True

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


@dataclass
class VerifyReport:
    """Result of a full-file integrity scan."""

    n_frames: int = 0
    header_ok: bool = False
    index_ok: bool = False
    clean_tail: bool = True
    errors: list = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.header_ok and self.index_ok and self.clean_tail and not self.errors


class TrajectoryReader:
    """Random-access reader with crash-tolerant index recovery.

    Opens via the trailer + index when the file was closed cleanly;
    otherwise rebuilds the index with a forward scan, dropping any torn
    tail (``index_rebuilt`` is True in that case).
    """

    def __init__(self, path):
        self.path = os.fspath(path)
        self._f = open(self.path, "rb")
        try:
            rtype, payload = read_record_at(self._f, 0)
        except (EOFError, CorruptRecord) as exc:
            self._f.close()
            raise CorruptRecord(f"{self.path}: unreadable trajectory header: {exc}") from exc
        if rtype != REC_HEADER:
            self._f.close()
            raise CorruptRecord(f"{self.path}: first record is not a header")
        self.header = unpack_state(payload)
        self._frames_start = self._f.tell()
        self.index_rebuilt = not self._load_index()

    def _load_index(self) -> bool:
        index_offset = read_trailer(self._f)
        if index_offset is not None:
            try:
                rtype, payload = read_record_at(self._f, index_offset)
            except CorruptRecord:
                rtype = None
            if rtype == REC_INDEX:
                index = unpack_state(payload)
                self._offsets = index["offsets"]
                self._steps = index["steps"]
                return True
        offsets, steps = [], []
        for offset, _end, rtype, payload in scan_records(self._f, self._frames_start):
            if rtype != REC_FRAME:
                continue
            offsets.append(offset)
            steps.append(unpack_state(payload)["step"])
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._steps = np.asarray(steps, dtype=np.int64)
        return False

    # -- access --------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._offsets)

    @property
    def steps(self) -> np.ndarray:
        """Stored step numbers, in file order."""
        return np.asarray(self._steps, dtype=np.int64).copy()

    @property
    def fingerprint(self) -> dict:
        return self.header.get("fingerprint", {})

    @property
    def decode(self) -> dict:
        return self.header.get("decode", {})

    @property
    def meta(self) -> dict:
        return self.header.get("meta", {})

    def frame(self, i: int) -> Frame:
        """Random-access read of frame ``i`` (negative indices allowed)."""
        n = len(self._offsets)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(f"frame {i} out of range [0, {n})")
        rtype, payload = read_record_at(self._f, int(self._offsets[i]))
        if rtype != REC_FRAME:
            raise CorruptRecord(f"record at indexed offset {self._offsets[i]} is not a frame")
        data = unpack_state(payload)
        return Frame(step=data["step"], time_fs=data["time_fs"], arrays=data["arrays"])

    def __iter__(self):
        for i in range(len(self)):
            yield self.frame(i)

    # -- decoding ------------------------------------------------------------

    def positions(self, frame: Frame) -> np.ndarray:
        """Physical float64 positions of a frame (bit-exact decode)."""
        dec = self.decode
        if dec.get("storage") == "codes":
            return _decode_positions(frame.arrays["X"], dec["position_bits"], dec["box"])
        return np.asarray(frame.arrays["positions"])

    def velocities(self, frame: Frame) -> np.ndarray:
        """Physical float64 velocities of a frame (bit-exact decode)."""
        dec = self.decode
        if dec.get("storage") == "codes":
            codec = ScaledFixed(FixedFormat(dec["velocity_bits"]), dec["velocity_limit"])
            return codec.reconstruct(frame.arrays["V"])
        return np.asarray(frame.arrays["velocities"])

    # -- integrity -----------------------------------------------------------

    def verify(self) -> VerifyReport:
        """Re-scan the whole file, CRC-checking every record."""
        report = VerifyReport(header_ok=True)
        self._f.seek(0, 2)
        size = self._f.tell()
        self._f.seek(self._frames_start)
        saw_index = False
        while True:
            pos = self._f.tell()
            if size - pos == TRAILER_SIZE and read_trailer(self._f) is not None:
                break  # valid trailer: clean end of file
            self._f.seek(pos)
            try:
                rtype, payload = read_record(self._f)
            except EOFError:
                break
            except CorruptRecord as exc:
                report.clean_tail = False
                report.errors.append(f"torn/corrupt record after frame {report.n_frames}: {exc}")
                break
            if rtype == REC_FRAME:
                if saw_index:
                    report.errors.append("frame record after the index")
                try:
                    unpack_state(payload)
                except ValueError as exc:
                    report.errors.append(f"frame {report.n_frames}: {exc}")
                report.n_frames += 1
            elif rtype == REC_INDEX:
                saw_index = True
        report.index_ok = saw_index
        if not saw_index:
            report.errors.append("no index record (file was not closed cleanly)")
        if report.n_frames != len(self._offsets):
            report.errors.append(
                f"index lists {len(self._offsets)} frames, file holds {report.n_frames}"
            )
        return report

    def close(self) -> None:
        self._f.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
