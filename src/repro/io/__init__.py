"""Durable run store: bit-exact checkpoint/trajectory I/O.

The paper's headline results are multi-month simulations that survive
interruption and restart *bit-for-bit* (Section 4's determinism makes
that meaningful; Table 1's runs make it necessary).  This package is
the storage layer that realizes it in the reproduction:

* :mod:`~repro.io.records` — CRC-protected binary record framing.
* :mod:`~repro.io.serialize` — deterministic state serialization and
  the system fingerprint validated on every restore.
* :mod:`~repro.io.trajectory` — compact, random-access trajectory
  files storing raw fixed-point state codes.
* :mod:`~repro.io.checkpoint` — atomic checkpoint store with rolling
  retention and corruption fallback.
* :mod:`~repro.io.energylog` — streaming JSONL energy observables.
* :mod:`~repro.io.replicas` — per-replica artifact naming for
  batched ensemble runs (solo formats, indexed paths).
"""

from repro.io.checkpoint import CheckpointError, CheckpointStore, LoadedCheckpoint
from repro.io.energylog import EnergyLogWriter, read_energy_log, truncate_energy_log
from repro.io.records import CorruptRecord
from repro.io.replicas import (
    indexed_artifact_path,
    job_checkpoint_dir,
    job_energy_log_path,
    job_trajectory_path,
    replica_checkpoint_dir,
    replica_checkpoint_store,
    replica_trajectory_path,
    sanitize_artifact_name,
    unique_artifact_dir,
)
from repro.io.serialize import (
    FingerprintMismatch,
    check_fingerprint,
    pack_state,
    system_fingerprint,
    unpack_state,
)
from repro.io.trajectory import Frame, TrajectoryReader, TrajectoryWriter, VerifyReport

__all__ = [
    "CheckpointError",
    "CheckpointStore",
    "LoadedCheckpoint",
    "EnergyLogWriter",
    "read_energy_log",
    "CorruptRecord",
    "FingerprintMismatch",
    "check_fingerprint",
    "pack_state",
    "system_fingerprint",
    "unpack_state",
    "Frame",
    "TrajectoryReader",
    "TrajectoryWriter",
    "VerifyReport",
    "replica_checkpoint_dir",
    "replica_checkpoint_store",
    "replica_trajectory_path",
    "indexed_artifact_path",
    "job_checkpoint_dir",
    "job_energy_log_path",
    "job_trajectory_path",
    "sanitize_artifact_name",
    "truncate_energy_log",
    "unique_artifact_dir",
]
