"""Artifact naming shared by ensemble replicas and the job store.

Two consumers persist *solo-format* artifact sets under derived names:

* **Batched ensembles** (one file set per replica) — the whole point of
  the bitwise contract is that replica r's files are byte-identical to
  a solo run's, so the store layer needs nothing new beyond a naming
  convention:

  - trajectories:  ``traj.rrs`` -> ``traj.r000.rrs``, ``traj.r001.rrs``…
  - checkpoints:   ``ckpt/``    -> ``ckpt/replica-000/``, …

* **The simulation service** (one directory per job) — every job owns
  ``jobs/<id>/traj.rrs``, ``jobs/<id>/ck/``, ``jobs/<id>/energy.jsonl``
  under the service's state directory, with user-supplied job names
  sanitized to filesystem-safe slugs and collisions resolved
  deterministically.

Both go through the same helpers: :func:`indexed_artifact_path` is the
suffix-preserving index insertion, :func:`sanitize_artifact_name` /
:func:`unique_artifact_dir` the slug and collision logic.  Each
per-replica / per-job checkpoint directory is an ordinary
:class:`~repro.io.checkpoint.CheckpointStore` (atomic writes, retention
pruning, corrupt-skip recovery all inherited).
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.io.checkpoint import CheckpointStore

__all__ = [
    "indexed_artifact_path",
    "replica_trajectory_path",
    "replica_checkpoint_dir",
    "replica_checkpoint_store",
    "sanitize_artifact_name",
    "unique_artifact_dir",
    "job_trajectory_path",
    "job_checkpoint_dir",
    "job_energy_log_path",
]

_UNSAFE = re.compile(r"[^A-Za-z0-9._-]+")


def indexed_artifact_path(
    base, index: int, prefix: str = "r", width: int = 3, default_suffix: str = ".rrs"
) -> Path:
    """Insert an index tag before the suffix: ``traj.rrs`` -> ``traj.r003.rrs``.

    A base without a suffix gets ``default_suffix`` appended, so
    ``traj`` and ``traj.rrs`` derive the same family of names (the
    rename edge case that used to live, untested, in the replica
    helper).
    """
    p = Path(base)
    suffix = p.suffix or default_suffix
    stem = p.stem if p.suffix else p.name
    return p.with_name(f"{stem}.{prefix}{int(index):0{width}d}{suffix}")


def replica_trajectory_path(base, r: int) -> Path:
    """``traj.rrs`` -> ``traj.r003.rrs`` (suffix preserved)."""
    return indexed_artifact_path(base, r, prefix="r")


def replica_checkpoint_dir(base, r: int) -> Path:
    """``ckpt/`` -> ``ckpt/replica-003`` subdirectory."""
    return Path(base) / f"replica-{int(r):03d}"


def replica_checkpoint_store(base, r: int, retain: int = 4) -> CheckpointStore:
    """A standard :class:`CheckpointStore` rooted at the replica's dir."""
    return CheckpointStore(replica_checkpoint_dir(base, r), retain=retain)


# -- job-store naming --------------------------------------------------------


def sanitize_artifact_name(name: str, fallback: str = "job") -> str:
    """Collapse ``name`` to a filesystem-safe slug.

    Runs of unsafe characters become one ``-``; leading dots are
    stripped (no hidden directories, no ``..`` traversal); an empty
    result falls back to ``fallback``.
    """
    slug = _UNSAFE.sub("-", str(name))
    slug = re.sub(r"\.{2,}", "-", slug)  # no ".." components anywhere
    slug = re.sub(r"-{2,}", "-", slug).strip("-").lstrip(".")
    return slug or fallback


def unique_artifact_dir(root, name: str) -> Path:
    """Create and return a fresh ``root/<slug>`` directory.

    Collisions (two names sanitizing to the same slug, or a resubmitted
    name) are resolved deterministically by appending ``-2``, ``-3``, …
    — the first free suffix wins, so the mapping depends only on which
    directories already exist.
    """
    root = Path(root)
    root.mkdir(parents=True, exist_ok=True)
    slug = sanitize_artifact_name(name)
    candidate = root / slug
    n = 1
    while True:
        try:
            candidate.mkdir()
            return candidate
        except FileExistsError:
            n += 1
            candidate = root / f"{slug}-{n}"


def job_trajectory_path(job_dir) -> Path:
    return Path(job_dir) / "traj.rrs"


def job_checkpoint_dir(job_dir) -> Path:
    return Path(job_dir) / "ck"


def job_energy_log_path(job_dir) -> Path:
    return Path(job_dir) / "energy.jsonl"
