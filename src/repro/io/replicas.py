"""Per-replica artifact naming over the existing store classes.

Ensemble runs persist one *solo-format* artifact set per replica —
the whole point of the bitwise contract is that replica r's files are
byte-identical to a solo run's — so the store layer needs nothing new
beyond a naming convention:

* trajectories:  ``traj.rrs`` -> ``traj.r000.rrs``, ``traj.r001.rrs``…
* checkpoints:   ``ckpt/``    -> ``ckpt/replica-000/``, …

Each per-replica checkpoint directory is an ordinary
:class:`~repro.io.checkpoint.CheckpointStore` (atomic writes, retention
pruning, corrupt-skip recovery all inherited).
"""

from __future__ import annotations

from pathlib import Path

from repro.io.checkpoint import CheckpointStore

__all__ = [
    "replica_trajectory_path",
    "replica_checkpoint_dir",
    "replica_checkpoint_store",
]


def replica_trajectory_path(base, r: int) -> Path:
    """``traj.rrs`` -> ``traj.r003.rrs`` (suffix preserved)."""
    p = Path(base)
    suffix = p.suffix or ".rrs"
    stem = p.stem if p.suffix else p.name
    return p.with_name(f"{stem}.r{int(r):03d}{suffix}")


def replica_checkpoint_dir(base, r: int) -> Path:
    """``ckpt/`` -> ``ckpt/replica-003`` subdirectory."""
    return Path(base) / f"replica-{int(r):03d}"


def replica_checkpoint_store(base, r: int, retain: int = 4) -> CheckpointStore:
    """A standard :class:`CheckpointStore` rooted at the replica's dir."""
    return CheckpointStore(replica_checkpoint_dir(base, r), retain=retain)
