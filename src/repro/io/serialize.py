"""Deterministic binary serialization of checkpoint/frame state.

The run store must round-trip the *exact* dynamic state — int64
position/velocity codes for the fixed-point path, raw float64 arrays
for the float path — so the encoding is a tiny tagged binary format
rather than anything text-based: ndarrays are stored as dtype + shape +
C-order bytes, scalars at full width, and encoding the same value twice
produces the same bytes (which lets the crash-recovery test compare
whole files bitwise).

Also home to the **system fingerprint**: the identity of a simulation
(atom count, hashed static arrays, parameter hash, mode, dt, datapath
widths) that is embedded in every checkpoint and trajectory header and
validated on restore, so a snapshot from a different system is rejected
with a field-by-field error instead of restoring garbage shapes.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import asdict

import numpy as np

__all__ = [
    "pack_state",
    "unpack_state",
    "system_fingerprint",
    "check_fingerprint",
    "FingerprintMismatch",
]

_U32 = struct.Struct("<I")
_I64 = struct.Struct("<q")
_F64 = struct.Struct("<d")
_U8 = struct.Struct("<B")


# -- tagged value encoding ---------------------------------------------------


def _pack_str(out: bytearray, s: str) -> None:
    raw = s.encode("utf-8")
    out += _U32.pack(len(raw))
    out += raw


def _pack_value(out: bytearray, obj) -> None:
    if obj is None:
        out += b"N"
    elif isinstance(obj, (bool, np.bool_)):
        out += b"T" if obj else b"F"
    elif isinstance(obj, (int, np.integer)):
        out += b"I"
        out += _I64.pack(int(obj))
    elif isinstance(obj, (float, np.floating)):
        out += b"f"
        out += _F64.pack(float(obj))
    elif isinstance(obj, str):
        out += b"S"
        _pack_str(out, obj)
    elif isinstance(obj, bytes):
        out += b"B"
        out += _U32.pack(len(obj))
        out += obj
    elif isinstance(obj, np.ndarray):
        if obj.dtype.hasobject:
            raise TypeError("object-dtype arrays are not serializable")
        arr = np.ascontiguousarray(obj)
        out += b"A"
        _pack_str(out, arr.dtype.str)
        out += _U8.pack(arr.ndim)
        for dim in arr.shape:
            out += _I64.pack(dim)
        raw = arr.tobytes()
        out += _I64.pack(len(raw))
        out += raw
    elif isinstance(obj, (list, tuple)):
        out += b"L"
        out += _U32.pack(len(obj))
        for item in obj:
            _pack_value(out, item)
    elif isinstance(obj, dict):
        out += b"D"
        out += _U32.pack(len(obj))
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"dict keys must be str, got {type(key).__name__}")
            _pack_str(out, key)
            _pack_value(out, value)
    else:
        raise TypeError(f"cannot serialize {type(obj).__name__}")


class _Cursor:
    __slots__ = ("data", "pos")

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.data):
            raise ValueError("serialized state ends unexpectedly")
        raw = self.data[self.pos:end]
        self.pos = end
        return raw


def _unpack_str(c: _Cursor) -> str:
    (n,) = _U32.unpack(c.take(4))
    return c.take(n).decode("utf-8")


def _unpack_value(c: _Cursor):
    tag = c.take(1)
    if tag == b"N":
        return None
    if tag == b"T":
        return True
    if tag == b"F":
        return False
    if tag == b"I":
        return _I64.unpack(c.take(8))[0]
    if tag == b"f":
        return _F64.unpack(c.take(8))[0]
    if tag == b"S":
        return _unpack_str(c)
    if tag == b"B":
        (n,) = _U32.unpack(c.take(4))
        return c.take(n)
    if tag == b"A":
        dtype = np.dtype(_unpack_str(c))
        (ndim,) = _U8.unpack(c.take(1))
        shape = tuple(_I64.unpack(c.take(8))[0] for _ in range(ndim))
        (nbytes,) = _I64.unpack(c.take(8))
        arr = np.frombuffer(c.take(nbytes), dtype=dtype).reshape(shape)
        return arr.copy()  # writable, independent of the input buffer
    if tag == b"L":
        (n,) = _U32.unpack(c.take(4))
        return [_unpack_value(c) for _ in range(n)]
    if tag == b"D":
        (n,) = _U32.unpack(c.take(4))
        out = {}
        for _ in range(n):
            key = _unpack_str(c)
            out[key] = _unpack_value(c)
        return out
    raise ValueError(f"unknown serialization tag {tag!r}")


def pack_state(obj) -> bytes:
    """Encode a state value (dicts/lists of ndarrays and scalars)."""
    out = bytearray()
    _pack_value(out, obj)
    return bytes(out)


def unpack_state(data: bytes):
    """Decode :func:`pack_state` output; tuples come back as lists."""
    c = _Cursor(data)
    obj = _unpack_value(c)
    if c.pos != len(c.data):
        raise ValueError(f"{len(c.data) - c.pos} trailing bytes after state")
    return obj


# -- system fingerprint ------------------------------------------------------


def _hash_arrays(arrays) -> str:
    h = hashlib.sha256()
    for arr in arrays:
        arr = np.ascontiguousarray(arr)
        h.update(arr.dtype.str.encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return h.hexdigest()


#: Compiled topology arrays that define the force-field terms.
_TOPOLOGY_ARRAYS = (
    "bond_idx", "bond_k", "bond_r0",
    "angle_idx", "angle_k", "angle_theta0",
    "dihedral_idx", "dihedral_k", "dihedral_n", "dihedral_delta",
    "constraint_idx", "constraint_dist",
    "vsite_idx", "vsite_weight",
)


def _system_hash(system) -> str:
    """Hash of everything static that influences force bits.

    Covers per-atom parameters, the LJ type table, the compiled
    topology term arrays, and the exclusion/1-4 lists.  Positions and
    velocities are deliberately absent: they are the *dynamic* state a
    checkpoint replaces.
    """
    top = system.topology
    arrays = [system.masses, system.charges, system.type_ids,
              system.lj.sigmas, system.lj.epsilons]
    for name in _TOPOLOGY_ARRAYS:
        arr = getattr(top, name, None)
        if arr is not None:
            arrays.append(np.asarray(arr))
    ex = system.exclusions
    if ex is not None:
        arrays += [ex.excluded, ex.pair14,
                   np.array([ex.lj_scale14, ex.coul_scale14])]
    return _hash_arrays(arrays)


def _params_hash(params) -> str:
    """Hash of the MDParams fields that influence force bits.

    ``skin`` is excluded on purpose: the buffered neighbor list yields
    a pair set that is a pure function of the positions, so results
    are bitwise independent of the skin and a checkpoint may be
    restored under a different buffer radius.
    """
    fields = asdict(params)
    fields.pop("skin", None)
    canon = ";".join(f"{k}={fields[k]!r}" for k in sorted(fields))
    return hashlib.sha256(canon.encode()).hexdigest()


def system_fingerprint(system, params, mode: str, dt: float, fixed_config=None) -> dict:
    """Identity of a run for checkpoint/trajectory compatibility checks.

    Two simulations with equal fingerprints produce bitwise-identical
    trajectories from the same state codes; node count and execution
    backend are deliberately absent (parallel invariance, Section 4).
    """
    fp = {
        "version": 1,
        "n_atoms": int(system.n_atoms),
        "mode": str(mode),
        "dt": float(dt),
        "box": [float(x) for x in system.box.lengths],
        "system_hash": _system_hash(system),
        "params_hash": _params_hash(params),
    }
    if fixed_config is not None:
        fp["position_bits"] = int(fixed_config.position_bits)
        fp["velocity_bits"] = int(fixed_config.velocity_bits)
        fp["velocity_limit"] = float(fixed_config.velocity_limit)
        fp["force_bits"] = int(fixed_config.force_bits)
        fp["force_limit"] = float(fixed_config.force_limit)
    return fp


class FingerprintMismatch(ValueError):
    """A stored state belongs to a different system/configuration."""


def check_fingerprint(stored: dict, current: dict, what: str = "checkpoint") -> None:
    """Raise :class:`FingerprintMismatch` listing every differing field.

    Only fields present in *both* fingerprints are compared, so newer
    fingerprints stay readable by code that predates a field.
    """
    mismatches = []
    for key in stored:
        if key not in current:
            continue
        a, b = stored[key], current[key]
        if isinstance(a, float) and isinstance(b, float):
            same = (a == b) or (np.isnan(a) and np.isnan(b))
        else:
            same = a == b
        if not same:
            mismatches.append(f"{key}: {what} has {a!r}, this run has {b!r}")
    if mismatches:
        raise FingerprintMismatch(
            f"{what} belongs to a different system/configuration:\n  "
            + "\n  ".join(mismatches)
        )
