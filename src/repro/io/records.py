"""Binary record framing for the durable run store.

Every on-disk artifact of the run store (trajectories, checkpoints) is
a sequence of self-describing *records*:

    +--------+-------+-----+----------------+---------------+---------+
    | magic  | rtype | pad | crc32(payload) | payload bytes | payload |
    | 4 B    | 1 B   | 3 B | 4 B            | 8 B (LE)      | ...     |
    +--------+-------+-----+----------------+---------------+---------+

The CRC covers the payload, so a torn write (power loss, SIGKILL) is
detected at the exact record it hit and everything before it stays
readable.  Seekable files additionally end with a fixed-size *trailer*
pointing at an index record:

    +--------+--------------+------------------------+
    | "RIDX" | index offset | crc32(magic || offset) |
    | 4 B    | 8 B (LE)     | 4 B                    |
    +--------+--------------+------------------------+

A reader that finds a valid trailer can seek straight to the index; a
reader that does not (the writer crashed before closing) falls back to
a forward scan that keeps every intact record and drops the torn tail.
"""

from __future__ import annotations

import struct
import zlib

__all__ = [
    "MAGIC",
    "REC_HEADER",
    "REC_FRAME",
    "REC_INDEX",
    "REC_STATE",
    "CorruptRecord",
    "write_record",
    "read_record",
    "read_record_at",
    "scan_records",
    "write_trailer",
    "read_trailer",
    "TRAILER_SIZE",
]

MAGIC = b"RPR1"
TRAILER_MAGIC = b"RIDX"

_HEADER = struct.Struct("<4sB3xIQ")  # magic, rtype, pad, crc32, payload length
_TRAILER = struct.Struct("<4sQI")  # magic, index offset, crc32(magic || offset)
TRAILER_SIZE = _TRAILER.size

#: Record types.
REC_HEADER = 1  # file header: kind/version/fingerprint/decode metadata
REC_FRAME = 2  # one trajectory frame
REC_INDEX = 3  # frame index (offsets + steps), written at close
REC_STATE = 4  # one serialized checkpoint state dict

#: Sanity cap on a single payload (1 TiB): a length field larger than
#: this is garbage from a corrupt header, not a real record.
_MAX_PAYLOAD = 1 << 40


class CorruptRecord(ValueError):
    """A record failed its magic, length, or CRC check."""


def write_record(f, rtype: int, payload: bytes) -> int:
    """Append one record; returns the record's start offset."""
    offset = f.tell()
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    f.write(_HEADER.pack(MAGIC, rtype, crc, len(payload)))
    f.write(payload)
    return offset


def read_record(f) -> tuple[int, bytes]:
    """Read the record at the current position.

    Raises ``EOFError`` on a clean end of file (zero bytes available)
    and :class:`CorruptRecord` on a torn or damaged record.
    """
    head = f.read(_HEADER.size)
    if not head:
        raise EOFError("end of file")
    if len(head) < _HEADER.size:
        raise CorruptRecord("truncated record header")
    magic, rtype, crc, n = _HEADER.unpack(head)
    if magic != MAGIC:
        raise CorruptRecord(f"bad record magic {magic!r}")
    if n > _MAX_PAYLOAD:
        raise CorruptRecord(f"implausible payload length {n}")
    payload = f.read(n)
    if len(payload) < n:
        raise CorruptRecord(f"truncated payload ({len(payload)} of {n} bytes)")
    if zlib.crc32(payload) & 0xFFFFFFFF != crc:
        raise CorruptRecord("payload CRC mismatch")
    return rtype, payload


def read_record_at(f, offset: int) -> tuple[int, bytes]:
    """Seek to ``offset`` and read one record."""
    f.seek(offset)
    return read_record(f)


def scan_records(f, start: int = 0):
    """Yield ``(offset, end_offset, rtype, payload)`` from ``start``.

    Stops silently at the first torn or corrupt record (the crash-
    recovery contract: keep every record that made it to disk intact,
    drop the tail).  Use :func:`read_record` directly when corruption
    should be an error instead.
    """
    f.seek(start)
    offset = start
    while True:
        try:
            rtype, payload = read_record(f)
        except (EOFError, CorruptRecord):
            return
        end = f.tell()
        yield offset, end, rtype, payload
        offset = end


def write_trailer(f, index_offset: int) -> None:
    """Append the fixed-size trailer locating the index record."""
    crc = zlib.crc32(TRAILER_MAGIC + struct.pack("<Q", index_offset)) & 0xFFFFFFFF
    f.write(_TRAILER.pack(TRAILER_MAGIC, index_offset, crc))


def read_trailer(f) -> int | None:
    """Offset of the index record, or None if the trailer is absent/torn."""
    f.seek(0, 2)
    size = f.tell()
    if size < TRAILER_SIZE:
        return None
    f.seek(size - TRAILER_SIZE)
    raw = f.read(TRAILER_SIZE)
    magic, index_offset, crc = _TRAILER.unpack(raw)
    if magic != TRAILER_MAGIC:
        return None
    if zlib.crc32(TRAILER_MAGIC + struct.pack("<Q", index_offset)) & 0xFFFFFFFF != crc:
        return None
    if index_offset >= size - TRAILER_SIZE:
        return None
    return index_offset
