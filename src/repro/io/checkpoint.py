"""Durable checkpoint store: atomic snapshots with rolling retention.

A store is a directory of ``ckpt-<step>.rrs`` files, each holding a
header record (kind, version, step, fingerprint) and a state record
(the serialized checkpoint dict), both CRC-protected.  Writes are
atomic — temp file in the same directory, flush, fsync, rename, then
directory fsync — so a crash at any instant leaves either the previous
set of snapshots or the previous set plus one complete new snapshot,
never a half-written one under the final name.

:meth:`CheckpointStore.load_latest` walks snapshots newest-first and
falls back past any that fail their CRC or structure checks (recording
what it skipped), which is the recovery contract the paper's
multi-month runs rely on: an interrupted run resumes from the newest
snapshot that actually made it to disk intact.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass, field
from pathlib import Path

from repro.io.records import (
    REC_HEADER,
    REC_STATE,
    CorruptRecord,
    read_record,
    write_record,
)
from repro.io.serialize import check_fingerprint, pack_state, unpack_state

__all__ = ["CheckpointStore", "CheckpointError", "LoadedCheckpoint"]

_NAME = re.compile(r"^ckpt-(\d{12})\.rrs$")


class CheckpointError(Exception):
    """No valid snapshot could be loaded from the store."""


@dataclass
class LoadedCheckpoint:
    """A successfully loaded snapshot plus the recovery trail."""

    state: dict
    header: dict
    path: Path
    #: Newer snapshots that were skipped as corrupt: (path, reason).
    skipped: list = field(default_factory=list)

    @property
    def step(self) -> int:
        return int(self.header.get("step", self.state.get("step_count", 0)))


class CheckpointStore:
    """Rolling store of the last ``retain`` snapshots of one run."""

    def __init__(self, directory, retain: int = 4):
        if retain < 1:
            raise ValueError("retain must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.retain = int(retain)

    # -- paths ---------------------------------------------------------------

    def path_for(self, step: int) -> Path:
        return self.directory / f"ckpt-{int(step):012d}.rrs"

    def snapshots(self) -> list[Path]:
        """Snapshot files, oldest first."""
        found = []
        for p in self.directory.iterdir():
            m = _NAME.match(p.name)
            if m:
                found.append((int(m.group(1)), p))
        return [p for _step, p in sorted(found)]

    def steps(self) -> list[int]:
        return [int(_NAME.match(p.name).group(1)) for p in self.snapshots()]

    # -- writing -------------------------------------------------------------

    def save(self, state: dict, step: int, fingerprint: dict | None = None) -> Path:
        """Atomically persist one snapshot; prunes beyond ``retain``.

        ``fingerprint`` defaults to ``state["fingerprint"]`` when the
        state dict carries one (as :meth:`Simulation.checkpoint` and
        :meth:`AntonMachine.checkpoint` do).
        """
        if fingerprint is None:
            fingerprint = state.get("fingerprint", {})
        header = {
            "kind": "checkpoint",
            "version": 1,
            "step": int(step),
            "fingerprint": fingerprint,
        }
        final = self.path_for(step)
        tmp = self.directory / f".tmp-{os.getpid()}-{int(step):012d}"
        with open(tmp, "wb") as f:
            write_record(f, REC_HEADER, pack_state(header))
            write_record(f, REC_STATE, pack_state(state))
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, final)
        self._fsync_dir()
        self._prune()
        return final

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir fds
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _prune(self) -> None:
        snaps = self.snapshots()
        for p in snaps[: max(0, len(snaps) - self.retain)]:
            p.unlink(missing_ok=True)
        # Leftover temp files from a crashed writer are garbage.
        for p in self.directory.glob(".tmp-*"):
            p.unlink(missing_ok=True)

    # -- reading -------------------------------------------------------------

    def load(self, path) -> tuple[dict, dict]:
        """Load one snapshot file; raises :class:`CorruptRecord` on damage."""
        with open(path, "rb") as f:
            try:
                rtype, payload = read_record(f)
            except EOFError as exc:
                raise CorruptRecord(f"{path}: empty snapshot file") from exc
            if rtype != REC_HEADER:
                raise CorruptRecord(f"{path}: first record is not a header")
            header = unpack_state(payload)
            if header.get("kind") != "checkpoint":
                raise CorruptRecord(f"{path}: not a checkpoint file")
            try:
                rtype, payload = read_record(f)
            except EOFError as exc:
                raise CorruptRecord(f"{path}: missing state record") from exc
            if rtype != REC_STATE:
                raise CorruptRecord(f"{path}: second record is not a state record")
            state = unpack_state(payload)
        if not isinstance(state, dict):
            raise CorruptRecord(f"{path}: state record is not a dict")
        return state, header

    def load_latest(self, fingerprint: dict | None = None) -> LoadedCheckpoint:
        """Newest snapshot that passes integrity checks.

        Corrupt/truncated snapshots are skipped (recorded in
        ``skipped``); a fingerprint mismatch on a *valid* snapshot is a
        hard error — that store belongs to a different system, and
        silently walking past it would resume the wrong run.
        """
        skipped = []
        for path in reversed(self.snapshots()):
            try:
                state, header = self.load(path)
            except (CorruptRecord, ValueError) as exc:
                skipped.append((path, str(exc)))
                continue
            if fingerprint is not None and header.get("fingerprint"):
                check_fingerprint(header["fingerprint"], fingerprint, what="checkpoint")
            return LoadedCheckpoint(state=state, header=header, path=path, skipped=skipped)
        detail = "".join(f"\n  {p}: {why}" for p, why in skipped)
        raise CheckpointError(
            f"no valid checkpoint in {self.directory}"
            + (f" ({len(skipped)} corrupt snapshot(s) skipped):{detail}" if skipped else "")
        )

    def latest_step(self) -> int | None:
        """Step of the newest snapshot file (without validating it)."""
        steps = self.steps()
        return steps[-1] if steps else None
