"""Streaming JSONL energy logs.

Long runs should emit observables incrementally instead of holding
them in memory: each :class:`~repro.core.simulation.EnergyRecord` is
one JSON line, flushed as written, so a SIGKILL loses at most the
record being written.  ``json.dumps`` serializes floats via ``repr``,
which round-trips float64 exactly — the log is as bit-faithful as the
binary formats.

On resume the writer appends; an interrupted run may therefore leave
overlapping step ranges (records the killed run logged past its last
durable checkpoint, re-logged by the resumed run).  Since the resumed
trajectory is bitwise the original, duplicates are identical;
:func:`read_energy_log` deduplicates by step keeping the last
occurrence and returns records sorted by step.
"""

from __future__ import annotations

import json
import os

__all__ = ["EnergyLogWriter", "read_energy_log", "truncate_energy_log"]

_FIELDS = ("step", "time_fs", "kinetic", "potential", "temperature")


class EnergyLogWriter:
    """Appends energy records to a JSONL file, flushing each line."""

    def __init__(self, path, append: bool = False):
        self.path = os.fspath(path)
        self._f = open(self.path, "a" if append else "w")

    def write(self, record) -> None:
        row = {name: getattr(record, name) for name in _FIELDS}
        self._f.write(json.dumps(row) + "\n")
        self._f.flush()

    def close(self) -> None:
        if not self._f.closed:
            self._f.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def truncate_energy_log(path, resume_step: int) -> int:
    """Drop records past ``resume_step`` (and any torn tail) in place.

    A run resuming from a checkpoint at ``resume_step`` will re-log
    every later record with identical bits, so cutting the file at the
    first line whose step exceeds ``resume_step`` — or at the first
    unparseable (torn) line — makes the finished log **byte-identical**
    to an uninterrupted run's, not merely record-identical after the
    read-back dedupe.  Returns the number of records kept.  A missing
    file is fine (nothing was logged yet): returns 0.
    """
    try:
        f = open(path, "r+b")
    except FileNotFoundError:
        return 0
    with f:
        keep_end = 0
        kept = 0
        for line in f:
            try:
                row = json.loads(line)
                step = int(row["step"])
            except (json.JSONDecodeError, KeyError, ValueError, TypeError):
                break  # torn tail from a crash mid-write
            if not line.endswith(b"\n") or step > int(resume_step):
                break
            keep_end += len(line)
            kept += 1
        f.seek(keep_end)
        f.truncate(keep_end)
    return kept


def read_energy_log(path) -> list:
    """Load a JSONL energy log as :class:`EnergyRecord` objects.

    Tolerates a torn final line (crash mid-write); overlapping step
    ranges from interrupted-then-resumed runs collapse to one record
    per step (last occurrence wins).
    """
    # Deferred import: repro.core.simulation imports repro.io at module
    # load, so importing it here at module level would be circular.
    from repro.core.simulation import EnergyRecord

    by_step: dict[int, EnergyRecord] = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn tail from a crash mid-write
            rec = EnergyRecord(
                step=int(row["step"]),
                time_fs=float(row["time_fs"]),
                kinetic=float(row["kinetic"]),
                potential=float(row["potential"]),
                temperature=float(row["temperature"]),
            )
            by_step[rec.step] = rec
    return [by_step[s] for s in sorted(by_step)]
