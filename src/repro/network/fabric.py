"""Cycle-approximate link fabric: occupancy, congestion, multicast.

:class:`LinkRouter` sits behind a :class:`~repro.parallel.comm.SimNetwork`
(attached with :meth:`SimNetwork.attach_router`) and expands every
charged message into the directed torus links it traverses
(:mod:`repro.network.routing`).  It is an *accounting layer only*: the
flat :class:`~repro.parallel.comm.NetworkStats` counters — and
therefore every trajectory, checkpoint, and Table 3 number — are
bitwise unchanged whether a router is attached or not.  What routing
adds is the quantity the flat counters cannot express: **where** the
bytes go, and which single link limits the step.

Accounting contract (pinned by the conservation tests):

* With plain unicast accounting and no compression, the sum of
  per-link bytes equals ``NetworkStats.hop_bytes`` exactly — every
  message charges its full byte count to each link of its
  dimension-ordered path, and the path length equals the torus hop
  distance.
* Tree multicast and payload compression are *savings transforms*;
  each tracks exactly the hop-bytes it removed, so
  ``link_bytes + multicast_saved + compression_saved == hop_bytes``
  remains an integer identity in every configuration.
* Fault-recovery traffic (retransmissions and replayed steps) routes
  over the same links but lands in a separate recovery
  :class:`LinkLoad` — a faulted run's *primary* link loads are exactly
  a clean run's, extending the Table 3 segregation contract down to
  individual links.

The congestion model turns occupancy into time the way the GROMACS
scaling analysis does for real clusters: each accounting phase (tag)
is limited by its most loaded link, so the phase time is that link's
serialization time plus the longest route's per-hop latency, and the
step's communication time sums the phase critical paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.machine.config import ANTON_2008, AntonHardware
from repro.network import routing
from repro.parallel.topology import TorusTopology

__all__ = ["RoutedConfig", "CongestionModel", "LinkLoad", "LinkRouter"]


@dataclass(frozen=True)
class RoutedConfig:
    """Knobs of the routed fabric model (accounting only).

    multicast:
        ``"tree"`` charges the NT position broadcast along the edges of
        the dimension-ordered spanning tree (each link carries the
        payload once); ``"unicast"`` charges one full path per
        destination — the flat model's assumption, kept for exact
        conservation tests and as the savings baseline.
    delta_bits:
        When set, payloads of ``compressed_tags`` are charged at
        ``delta_bits`` per 32-bit fixed-point word instead of 32 — the
        fixed-point delta compression of position/force traffic.  The
        transform touches wire bytes only, never the flat counters.
    compressed_tags:
        Traffic classes carrying 32-bit fixed-point coordinate words.
    """

    multicast: str = "tree"
    delta_bits: int | None = None
    compressed_tags: tuple[str, ...] = ("position_import", "force_export")

    def __post_init__(self) -> None:
        if self.multicast not in ("tree", "unicast"):
            raise ValueError(f"multicast must be 'tree' or 'unicast', got {self.multicast!r}")
        if self.delta_bits is not None and not 1 <= int(self.delta_bits) <= 32:
            raise ValueError(f"delta_bits must be in [1, 32], got {self.delta_bits}")


@dataclass(frozen=True)
class CongestionModel:
    """Per-link bandwidth/latency cost model.

    ``bandwidth_scale`` scales the usable link bandwidth (< 1 injects
    congestion — protocol overhead, flow-control stalls); the smoke
    gate checks predicted step time is monotone in it.
    """

    link_bytes_per_s: float = ANTON_2008.link_bytes_per_s
    latency_s: float = ANTON_2008.inter_node_latency_s
    bandwidth_scale: float = 1.0

    @classmethod
    def from_hardware(cls, hw: AntonHardware, bandwidth_scale: float = 1.0) -> "CongestionModel":
        return cls(
            link_bytes_per_s=hw.link_bytes_per_s,
            latency_s=hw.inter_node_latency_s,
            bandwidth_scale=bandwidth_scale,
        )

    def phase_time_us(self, critical_link_bytes: float, max_hops: int) -> float:
        """Time for one phase: serialization on the most loaded link
        plus the longest route's store-and-forward latency."""
        if critical_link_bytes <= 0 and max_hops <= 0:
            return 0.0
        serialization = critical_link_bytes / (self.link_bytes_per_s * self.bandwidth_scale)
        return (serialization + max_hops * self.latency_s) * 1e6


@dataclass
class LinkLoad:
    """Occupancy of every directed link: bytes and packet traversals."""

    bytes: np.ndarray
    packets: np.ndarray

    @classmethod
    def zeros(cls, n: int) -> "LinkLoad":
        return cls(np.zeros(n, dtype=np.int64), np.zeros(n, dtype=np.int64))

    def total_bytes(self) -> int:
        return int(self.bytes.sum())

    def total_packets(self) -> int:
        return int(self.packets.sum())

    def max_bytes(self) -> int:
        return int(self.bytes.max(initial=0))

    def busiest(self, k: int = 3) -> list[tuple[int, str, int]]:
        """Top-k loaded links as (node, direction, bytes), ties by id."""
        hot = np.argsort(-self.bytes, kind="stable")[:k]
        return [
            (int(routing.link_node(link)), routing.DIRECTION_NAMES[int(routing.link_direction(link))], int(self.bytes[link]))
            for link in hot
            if self.bytes[link] > 0
        ]


@dataclass
class _TagLoad:
    """Per-phase (traffic-class) primary accounting."""

    bytes: np.ndarray
    max_hops: int = 0
    messages: int = 0
    wire_bytes: int = 0  # post-compression bytes injected (not hop-weighted)


class LinkRouter:
    """Routes charged messages onto directed torus links.

    All entry points accept ``recovery=True`` to land the traversals in
    the segregated recovery pool (retransmissions and rollback replay);
    everything else accumulates into the primary pool and the per-tag
    phase arrays the congestion model reads.
    """

    def __init__(
        self,
        topology: TorusTopology,
        config: RoutedConfig | None = None,
        hw: AntonHardware = ANTON_2008,
    ):
        self.topology = topology
        self.config = config or RoutedConfig()
        self.hw = hw
        self.congestion = CongestionModel.from_hardware(hw)
        self.n_links = routing.n_links(topology)
        self.reset()

    def reset(self) -> None:
        self.primary = LinkLoad.zeros(self.n_links)
        self.recovery = LinkLoad.zeros(self.n_links)
        self.by_tag: dict[str, _TagLoad] = {}
        self.recovery_by_tag: dict[str, int] = {}
        # Savings transforms, in hop-bytes (see module docstring).
        self.multicast_saved_hop_bytes = 0
        self.compression_saved_hop_bytes = 0
        # Multicast comparison totals (wire-scale hop bytes).
        self.multicast_unicast_hop_bytes = 0
        self.multicast_tree_hop_bytes = 0

    # -- helpers -------------------------------------------------------------

    def _tag(self, tag: str) -> _TagLoad:
        load = self.by_tag.get(tag)
        if load is None:
            load = _TagLoad(np.zeros(self.n_links, dtype=np.int64))
            self.by_tag[tag] = load
        return load

    def _wire_bytes(self, tag: str, nbytes: np.ndarray) -> np.ndarray:
        """Post-compression wire size of each payload.

        Fixed-point delta compression re-encodes each 32-bit coordinate
        word in ``delta_bits`` bits; the wire size never drops below the
        minimum efficient message ("messages with as little as four
        bytes of data can be sent efficiently").
        """
        bits = self.config.delta_bits
        if bits is None or tag not in self.config.compressed_tags:
            return nbytes
        compressed = (nbytes * int(bits) + 31) // 32
        return np.maximum(compressed, self.hw.min_message_bytes)

    # -- unicast charging ----------------------------------------------------

    def charge(self, src: int, dst: int, nbytes: int, tag: str, recovery: bool = False) -> None:
        """Route one message (scalar convenience over charge_batch)."""
        self.charge_batch(
            np.asarray([src], dtype=np.int64),
            np.asarray([dst], dtype=np.int64),
            np.asarray([nbytes], dtype=np.int64),
            tag,
            recovery=recovery,
        )

    def charge_batch(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray, tag: str, recovery: bool = False
    ) -> None:
        """Route a message batch; local (src == dst) routes are free."""
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
        nbytes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), src.shape)
        remote = src != dst
        if not remote.all():
            src, dst, nbytes = src[remote], dst[remote], nbytes[remote]
        if not len(src):
            return
        wire = self._wire_bytes(tag, nbytes)
        hops = self.topology.hop_distances(src, dst)
        if recovery:
            routing.accumulate_link_loads(
                self.topology, src, dst, wire, self.recovery.bytes, self.recovery.packets
            )
            charged = int(np.sum(wire * hops))
            self.recovery_by_tag[tag] = self.recovery_by_tag.get(tag, 0) + charged
            return
        routing.accumulate_link_loads(
            self.topology, src, dst, wire, self.primary.bytes, self.primary.packets
        )
        load = self._tag(tag)
        routing.accumulate_link_loads(self.topology, src, dst, wire, load.bytes)
        load.max_hops = max(load.max_hops, int(hops.max(initial=0)))
        load.messages += len(src)
        load.wire_bytes += int(wire.sum())
        self.compression_saved_hop_bytes += int(np.sum((nbytes - wire) * hops))

    # -- multicast charging --------------------------------------------------

    def charge_multicast(
        self, src: int, dsts: np.ndarray, nbytes: int, tag: str, recovery: bool = False
    ) -> None:
        """Route one source's broadcast of a single payload.

        In ``tree`` mode the payload is charged once per spanning-tree
        edge; in ``unicast`` mode once per destination path (exactly
        what ``charge_batch`` would do).  Both modes record the
        unicast/tree comparison totals the savings report exposes.
        """
        dsts = np.atleast_1d(np.asarray(dsts, dtype=np.int64))
        dsts = dsts[dsts != src]
        if not len(dsts):
            return
        src_arr = np.full(dsts.shape, src, dtype=np.int64)
        nbytes = int(nbytes)
        wire = int(self._wire_bytes(tag, np.asarray([nbytes], dtype=np.int64))[0])
        hops = self.topology.hop_distances(src_arr, dsts)
        unicast_hop_bytes = wire * int(hops.sum())
        tree = routing.multicast_tree_links(self.topology, src, dsts)
        tree_bytes = wire * len(tree)
        if not recovery:
            self.multicast_unicast_hop_bytes += unicast_hop_bytes
            self.multicast_tree_hop_bytes += tree_bytes
        if self.config.multicast == "unicast":
            self.charge_batch(src_arr, dsts, np.full(dsts.shape, nbytes, dtype=np.int64), tag, recovery=recovery)
            return
        # Tree edges: payload crosses each once.
        if recovery:
            np.add.at(self.recovery.bytes, tree, wire)
            self.recovery.packets[tree] += 1
            self.recovery_by_tag[tag] = self.recovery_by_tag.get(tag, 0) + tree_bytes
            return
        np.add.at(self.primary.bytes, tree, wire)
        self.primary.packets[tree] += 1
        load = self._tag(tag)
        np.add.at(load.bytes, tree, wire)
        load.max_hops = max(load.max_hops, int(hops.max(initial=0)))
        load.messages += len(dsts)
        load.wire_bytes += wire * len(dsts)
        self.compression_saved_hop_bytes += (nbytes - wire) * int(hops.sum())
        self.multicast_saved_hop_bytes += unicast_hop_bytes - tree_bytes

    def charge_multicast_routes(
        self, src: np.ndarray, dst: np.ndarray, nbytes: np.ndarray, tag: str, recovery: bool = False
    ) -> None:
        """Route a batch of broadcast fan-outs grouped by source.

        ``(src[k], dst[k], nbytes[k])`` rows with a common ``src`` are
        one source's multicast of a single payload (all its rows carry
        the same byte count — the NT subbox broadcast pattern), handled
        as one spanning tree per source.
        """
        src = np.atleast_1d(np.asarray(src, dtype=np.int64))
        dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
        nbytes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), src.shape)
        if not len(src):
            return
        order = np.argsort(src, kind="stable")
        src, dst, nbytes = src[order], dst[order], nbytes[order]
        starts = np.flatnonzero(np.r_[True, src[1:] != src[:-1]])
        bounds = np.r_[starts, len(src)]
        for lo, hi in zip(bounds[:-1], bounds[1:]):
            self.charge_multicast(
                int(src[lo]), dst[lo:hi], int(nbytes[lo]), tag, recovery=recovery
            )

    # -- congestion / reporting ----------------------------------------------

    def phase_times_us(
        self, steps: int = 1, congestion: CongestionModel | None = None
    ) -> dict[str, float]:
        """Per-phase critical-path time, averaged over ``steps``.

        Each phase is limited by its most loaded link; latency counts
        once per hop of the phase's longest route.
        """
        model = congestion or self.congestion
        return {
            tag: model.phase_time_us(load.bytes.max(initial=0) / max(steps, 1), load.max_hops)
            for tag, load in sorted(self.by_tag.items())
        }

    def step_comm_us(self, steps: int = 1, congestion: CongestionModel | None = None) -> float:
        """Summed phase critical paths: the step's communication time
        if no phase overlaps compute (the pessimistic bound)."""
        return float(sum(self.phase_times_us(steps, congestion).values()))

    def multicast_savings(self) -> dict[str, int]:
        """Tree-vs-unicast comparison for all multicast traffic seen."""
        return {
            "unicast_link_bytes": self.multicast_unicast_hop_bytes,
            "tree_link_bytes": self.multicast_tree_hop_bytes,
            "saved_link_bytes": self.multicast_unicast_hop_bytes - self.multicast_tree_hop_bytes,
        }

    def report(
        self, steps: int = 1, congestion: CongestionModel | None = None, top: int = 3
    ) -> dict:
        """Occupancy/congestion summary (the ``repro network`` payload)."""
        model = congestion or self.congestion
        steps = max(int(steps), 1)
        phases = {}
        for tag, load in sorted(self.by_tag.items()):
            peak = int(load.bytes.max(initial=0))
            hot = int(np.argmax(load.bytes)) if peak else 0
            phases[tag] = {
                "messages": load.messages,
                "wire_bytes": load.wire_bytes,
                "link_bytes": int(load.bytes.sum()),
                "max_link_bytes": peak,
                "max_hops": load.max_hops,
                "busiest_link": [
                    int(routing.link_node(hot)),
                    routing.DIRECTION_NAMES[int(routing.link_direction(hot))],
                ] if peak else None,
                "time_us_per_step": model.phase_time_us(peak / steps, load.max_hops),
            }
        return {
            "topology": list(self.topology.dims),
            "links": self.n_links,
            "multicast_mode": self.config.multicast,
            "delta_bits": self.config.delta_bits,
            "steps": steps,
            "phases": phases,
            "link_bytes_total": self.primary.total_bytes(),
            "link_packets_total": self.primary.total_packets(),
            "max_link_bytes": self.primary.max_bytes(),
            "busiest_links": [list(x) for x in self.primary.busiest(top)],
            "multicast": self.multicast_savings(),
            "compression_saved_link_bytes": self.compression_saved_hop_bytes,
            "multicast_saved_link_bytes": self.multicast_saved_hop_bytes,
            "recovery_link_bytes": self.recovery.total_bytes(),
            "comm_us_per_step": self.step_comm_us(steps, model),
        }
