"""Dimension-ordered routing on the node torus.

The Anton 3 network paper describes what the interconnect actually
does with a message: it traverses torus links one dimension at a time
(x, then y, then z), taking the shorter way around each ring.  This
module expands batches of ``(src, dst)`` node pairs into the directed
links those messages occupy, entirely with array operations: per axis,
per hop, the set of in-flight messages is advanced one link and the
link occupancy accumulated with a bincount-style reduction.  The outer
loop runs ``sum(dims) / 2`` times at most (24 iterations for a 4096
node machine), so routing a hundred-thousand-message step costs a few
dozen array passes, never a Python loop per message.

Link naming: every node owns six outgoing directed links, one per
direction (+x, -x, +y, -y, +z, -z); the flat link id of direction
``d`` out of node ``n`` is ``n * 6 + d``.  Because each message takes
the minimal ring path per axis (ties between the two equally long ways
break toward +), the number of links a message traverses equals
:meth:`~repro.parallel.topology.TorusTopology.hop_distance` exactly —
which is what makes routed per-link byte sums reproduce the flat
``hop_bytes`` counter bit for bit (the conservation tests pin this).
"""

from __future__ import annotations

import numpy as np

from repro.parallel.topology import TorusTopology

__all__ = [
    "N_DIRECTIONS",
    "DIRECTION_NAMES",
    "n_links",
    "link_node",
    "link_direction",
    "signed_axis_hops",
    "accumulate_link_loads",
    "message_link_ids",
    "multicast_tree_links",
]

#: Directed links per node: one per torus direction.
N_DIRECTIONS = 6

#: Direction index -> human-readable name (axis * 2 + (0 fwd, 1 back)).
DIRECTION_NAMES = ("+x", "-x", "+y", "-y", "+z", "-z")


def n_links(topology: TorusTopology) -> int:
    """Directed link count of the fabric (6 per node)."""
    return topology.n_nodes * N_DIRECTIONS


def link_node(link_ids: np.ndarray) -> np.ndarray:
    """Tail node (the sender side) of each link id."""
    return np.asarray(link_ids, dtype=np.int64) // N_DIRECTIONS


def link_direction(link_ids: np.ndarray) -> np.ndarray:
    """Direction index (see :data:`DIRECTION_NAMES`) of each link id."""
    return np.asarray(link_ids, dtype=np.int64) % N_DIRECTIONS


def signed_axis_hops(
    topology: TorusTopology, src: np.ndarray, dst: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Per-axis minimal ring routes for a message batch.

    Returns ``(src_xyz, dst_xyz, hops, forward)`` where ``hops[:, a]``
    is the ring distance along axis ``a`` and ``forward[:, a]`` whether
    the route takes the + direction.  A tie (distance exactly half the
    ring) breaks toward +, deterministically.  ``hops.sum(axis=1)``
    equals :meth:`TorusTopology.hop_distances` by construction.
    """
    src_xyz = topology.coords_of(np.asarray(src, dtype=np.int64))
    dst_xyz = topology.coords_of(np.asarray(dst, dtype=np.int64))
    dims = np.asarray(topology.dims, dtype=np.int64)
    ahead = (dst_xyz - src_xyz) % dims  # hops going +, in [0, d)
    forward = ahead * 2 <= dims  # tie (ahead == d/2) breaks toward +
    hops = np.where(forward, ahead, dims - ahead)
    return src_xyz, dst_xyz, hops, forward


def _phase_start(src_xyz: np.ndarray, dst_xyz: np.ndarray, axis: int) -> np.ndarray:
    """Node coordinates at the start of a message's ``axis`` phase.

    Dimension order is x -> y -> z: when the ``axis`` phase begins, all
    lower axes have already been corrected to the destination while the
    higher axes still hold the source coordinates.
    """
    start = src_xyz.copy()
    start[:, :axis] = dst_xyz[:, :axis]
    return start


def _flat_ids(coords: np.ndarray, dims: np.ndarray) -> np.ndarray:
    return (coords[:, 0] * dims[1] + coords[:, 1]) * dims[2] + coords[:, 2]


def accumulate_link_loads(
    topology: TorusTopology,
    src: np.ndarray,
    dst: np.ndarray,
    nbytes: np.ndarray,
    out_bytes: np.ndarray,
    out_packets: np.ndarray | None = None,
) -> None:
    """Accumulate a message batch's per-link traffic in place.

    ``out_bytes`` (and optionally ``out_packets``) are int64 arrays of
    length :func:`n_links`; each link a message traverses receives the
    message's full byte count (wormhole links carry the whole packet),
    so ``out_bytes.sum()`` grows by exactly ``sum(nbytes * hops)`` —
    the same quantity :class:`~repro.parallel.comm.NetworkStats` calls
    ``hop_bytes``.  Local (zero-hop) messages charge nothing.
    """
    src = np.atleast_1d(np.asarray(src, dtype=np.int64))
    dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
    nbytes = np.broadcast_to(np.asarray(nbytes, dtype=np.int64), src.shape)
    if not len(src):
        return
    dims = np.asarray(topology.dims, dtype=np.int64)
    src_xyz, dst_xyz, hops, forward = signed_axis_hops(topology, src, dst)
    nl = n_links(topology)
    for axis in range(3):
        axis_hops = hops[:, axis]
        max_hops = int(axis_hops.max(initial=0))
        if max_hops == 0:
            continue
        start = _phase_start(src_xyz, dst_xyz, axis)
        step = np.where(forward[:, axis], 1, -1)
        direction = np.where(forward[:, axis], 2 * axis, 2 * axis + 1)
        cur = start.copy()
        for k in range(max_hops):
            live = axis_hops > k
            if k:
                cur[:, axis] = (start[:, axis] + step * k) % dims[axis]
            links = _flat_ids(cur[live], dims) * N_DIRECTIONS + direction[live]
            # Packets reduce with bincount; bytes need exact int64
            # sums (bincount weights are float64), so ufunc.at.
            np.add.at(out_bytes, links, nbytes[live])
            if out_packets is not None:
                out_packets += np.bincount(links, minlength=nl)


def message_link_ids(
    topology: TorusTopology, src: np.ndarray, dst: np.ndarray
) -> np.ndarray:
    """Every link traversal of a message batch, with multiplicity.

    Returns a flat int64 array of link ids — one entry per (message,
    hop).  Order groups by axis phase, then hop index, then message;
    callers that only need the *set* of links (multicast trees) apply
    ``np.unique``.
    """
    src = np.atleast_1d(np.asarray(src, dtype=np.int64))
    dst = np.atleast_1d(np.asarray(dst, dtype=np.int64))
    if not len(src):
        return np.zeros(0, dtype=np.int64)
    dims = np.asarray(topology.dims, dtype=np.int64)
    src_xyz, dst_xyz, hops, forward = signed_axis_hops(topology, src, dst)
    out: list[np.ndarray] = []
    for axis in range(3):
        axis_hops = hops[:, axis]
        max_hops = int(axis_hops.max(initial=0))
        if max_hops == 0:
            continue
        start = _phase_start(src_xyz, dst_xyz, axis)
        step = np.where(forward[:, axis], 1, -1)
        direction = np.where(forward[:, axis], 2 * axis, 2 * axis + 1)
        cur = start.copy()
        for k in range(max_hops):
            live = axis_hops > k
            if k:
                cur[:, axis] = (start[:, axis] + step * k) % dims[axis]
            out.append(_flat_ids(cur[live], dims) * N_DIRECTIONS + direction[live])
    if not out:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(out)


def multicast_tree_links(
    topology: TorusTopology, src: int, dsts: np.ndarray
) -> np.ndarray:
    """Unique links of the dimension-ordered multicast tree from ``src``.

    Dimension-ordered paths from one source form a tree (two paths
    that ever share a node share their whole prefix), so the tree is
    exactly the union of the per-destination unicast paths.  The
    payload crosses each tree edge once, which is where multicast beats
    per-destination unicast: the savings is the difference between the
    paths' total hop count and the size of their union.
    """
    dsts = np.atleast_1d(np.asarray(dsts, dtype=np.int64))
    links = message_link_ids(topology, np.full(dsts.shape, src, dtype=np.int64), dsts)
    return np.unique(links)
