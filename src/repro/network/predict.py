"""Analytic step-traffic synthesis on large tori (512–4096 nodes).

The functional simulator cannot step a 4096-node machine directly, but
the *shape* of a step's traffic is analytic: the NT import region is
translation-invariant on a homogeneous torus, force export reverses
it, and the distributed FFT's all-to-all phases come from the real
:class:`~repro.fft.DistributedFFT3D` accounting.  This module
synthesizes one step's messages for a benchmark spec at an arbitrary
node count, routes them through a :class:`~repro.network.LinkRouter`,
and reports the congested per-phase critical paths — the communication
side of the Figure 5 prediction.  The compute side stays with
:class:`repro.perf.antonmodel.AntonModel`, which composes the two
(``repro.perf`` imports this module, never the reverse).
"""

from __future__ import annotations

import numpy as np

from repro.fft import DistributedFFT3D
from repro.geometry import Box
from repro.machine.config import ANTON_2008, AntonHardware
from repro.network.fabric import CongestionModel, LinkRouter, RoutedConfig
from repro.parallel.comm import SimNetwork
from repro.parallel.decomposition import SpatialDecomposition
from repro.parallel.nt import tower_plate_boxes
from repro.parallel.topology import TorusTopology

__all__ = ["synthesize_step_router", "predict_comm", "predict_scaling"]

#: Traffic classes charged every step (vs once per long-range interval).
SHORT_RANGE_TAGS = ("position_import", "force_export")


def _import_offsets(decomp: SpatialDecomposition, cutoff: float) -> np.ndarray:
    """Box offsets of the NT import region, relative to the home box.

    The tower/plate region is translation-invariant on a homogeneous
    torus, so one evaluation at the origin covers every node.
    """
    tower, plate = tower_plate_boxes(decomp, (0, 0, 0), cutoff)
    dims = decomp.dims
    offsets = []
    for bx in sorted(tower | plate):
        off = tuple(int(c) if c <= d // 2 else int(c) - int(d) for c, d in zip(bx, dims))
        if off != (0, 0, 0):
            offsets.append(off)
    return np.asarray(sorted(set(offsets)), dtype=np.int64)


def synthesize_step_router(
    spec,
    n_nodes: int,
    hw: AntonHardware = ANTON_2008,
    config: RoutedConfig | None = None,
    long_range_every: int = 2,
) -> tuple[LinkRouter, SimNetwork]:
    """Charge one synthetic time step's traffic onto a routed fabric.

    Uniform density is assumed (true of the solvated Table 4 systems):
    every home box holds ``n_atoms / n_nodes`` atoms.  Charges:

    * ``position_import`` — each node broadcasts its box to every node
      whose tower/plate imports it (one multicast per source);
    * ``force_export`` — the reverse routes, one summed force record
      per imported atom, point-to-point;
    * ``fft_axis{0,1,2}`` — the distributed FFT's six axis all-to-all
      phases (forward + inverse), charged once; callers divide by
      ``long_range_every`` when composing step time.

    Returns the router and the network carrying the flat counters for
    the same traffic (the counter-model comparison).
    """
    topology = TorusTopology.for_node_count(n_nodes)
    decomp = SpatialDecomposition(Box.cubic(spec.side), topology)
    network = SimNetwork(topology)
    router = LinkRouter(topology, config, hw)
    network.attach_router(router)

    atoms_per_node = max(int(round(spec.n_atoms / n_nodes)), 1)
    offsets = _import_offsets(decomp, spec.cutoff)
    dims = np.asarray(topology.dims, dtype=np.int64)
    dst_coords = topology.coords_of(np.arange(n_nodes, dtype=np.int64))
    srcs, dsts = [], []
    for off in offsets:
        src_c = (dst_coords + off) % dims
        src = (src_c[:, 0] * dims[1] + src_c[:, 1]) * dims[2] + src_c[:, 2]
        srcs.append(src)
        dsts.append(np.arange(n_nodes, dtype=np.int64))
    src = np.concatenate(srcs) if srcs else np.zeros(0, dtype=np.int64)
    dst = np.concatenate(dsts) if dsts else np.zeros(0, dtype=np.int64)

    pos_bytes = np.full(src.shape, atoms_per_node * hw.bytes_per_position, dtype=np.int64)
    network.multicast_routes(src, dst, pos_bytes, tag="position_import")

    # Force export: each importing node returns one summed force record
    # per atom of the source box it computed against.
    force_bytes = np.full(src.shape, atoms_per_node * hw.bytes_per_force, dtype=np.int64)
    network.send_batch(dst, src, force_bytes, tag="force_export")

    mesh = spec.mesh_shape
    if all(m % d == 0 for m, d in zip(mesh, topology.dims)):
        dfft = DistributedFFT3D(mesh, topology, network)
        for axis in (2, 1, 0):
            dfft._charge_axis_phase(axis)
        for axis in (0, 1, 2):
            dfft._charge_axis_phase(axis)
    return router, network


def predict_comm(
    spec,
    n_nodes: int,
    hw: AntonHardware = ANTON_2008,
    config: RoutedConfig | None = None,
    congestion: CongestionModel | None = None,
    long_range_every: int = 2,
) -> dict:
    """Congested communication critical paths of one predicted step.

    Returns ``short_comm_us`` (position import + force export, every
    step), ``long_comm_us`` (the FFT all-to-alls, amortized by the
    caller over ``long_range_every``), per-phase times, the flat
    counter totals, and the multicast/compression savings.
    """
    router, network = synthesize_step_router(
        spec, n_nodes, hw=hw, config=config, long_range_every=long_range_every
    )
    phase_times = router.phase_times_us(steps=1, congestion=congestion)
    short_us = sum(t for tag, t in phase_times.items() if tag in SHORT_RANGE_TAGS)
    long_us = sum(t for tag, t in phase_times.items() if tag.startswith("fft_axis"))
    stats = network.stats
    return {
        "n_nodes": n_nodes,
        "dims": list(router.topology.dims),
        "short_comm_us": short_us,
        "long_comm_us": long_us,
        "phase_times_us": phase_times,
        "counter_bytes": stats.bytes,
        "counter_hop_bytes": stats.hop_bytes,
        "link_bytes_total": router.primary.total_bytes(),
        "max_link_bytes": router.primary.max_bytes(),
        "multicast": router.multicast_savings(),
        "compression_saved_link_bytes": router.compression_saved_hop_bytes,
        "by_tag": {k: list(v) for k, v in stats.by_tag.items()},
    }


def predict_scaling(
    spec,
    node_counts=(512, 1024, 2048, 4096),
    hw: AntonHardware = ANTON_2008,
    config: RoutedConfig | None = None,
    congestion: CongestionModel | None = None,
    long_range_every: int = 2,
) -> list[dict]:
    """:func:`predict_comm` swept over node counts (the Figure 5 axis)."""
    return [
        predict_comm(
            spec, n, hw=hw, config=config, congestion=congestion,
            long_range_every=long_range_every,
        )
        for n in node_counts
    ]
