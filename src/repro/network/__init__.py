"""Routed torus network fabric: link-level accounting behind SimNetwork.

Timing/accounting layer only — attaching a router never changes
simulation state, flat traffic counters, trajectories, or checkpoints.
"""

from repro.network.fabric import CongestionModel, LinkLoad, LinkRouter, RoutedConfig
from repro.network.routing import (
    DIRECTION_NAMES,
    N_DIRECTIONS,
    accumulate_link_loads,
    link_direction,
    link_node,
    message_link_ids,
    multicast_tree_links,
    n_links,
    signed_axis_hops,
)

__all__ = [
    "CongestionModel",
    "LinkLoad",
    "LinkRouter",
    "RoutedConfig",
    "DIRECTION_NAMES",
    "N_DIRECTIONS",
    "accumulate_link_loads",
    "link_direction",
    "link_node",
    "message_link_ids",
    "multicast_tree_links",
    "n_links",
    "signed_axis_hops",
]
