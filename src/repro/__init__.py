"""repro — a functional reproduction of Anton's co-designed MD algorithms.

Reproduces the algorithms and measured behaviours of *Millisecond-Scale
Molecular Dynamics Simulations on Anton* (Shaw et al., SC 2009) as a
pure-Python library: the NT method, Gaussian Split Ewald, fixed-point
numerics (determinism, parallel invariance, exact reversibility),
tiered PPIP function tables, the distributed FFT, and a functional
whole-machine simulator with a calibrated performance model.

Quick start::

    from repro import build_water_box, MDParams, Simulation, minimize_energy

    system = build_water_box(n_molecules=64)
    params = MDParams(cutoff=5.5, mesh=(16, 16, 16))
    minimize_energy(system, params)
    system.initialize_velocities(300.0)
    sim = Simulation(system, params, dt=1.0, mode="fixed")
    sim.run(100, record_every=10)

See DESIGN.md for the full system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro.core import (
    BerendsenBarostat,
    BerendsenThermostat,
    ChemicalSystem,
    ConstraintSolver,
    FixedPointConfig,
    FixedPointIntegrator,
    ForceCalculator,
    MDParams,
    Simulation,
    VelocityVerlet,
    compute_virial,
    instantaneous_pressure,
    minimize_energy,
    run_npt,
)
from repro.ensemble import (
    EnsembleSimulation,
    derive_replica_seeds,
    parse_seed_spec,
)
from repro.fault import (
    FaultEvent,
    FaultSchedule,
    RecoveryPolicy,
    parse_fault_spec,
)
from repro.io import (
    CheckpointStore,
    EnergyLogWriter,
    TrajectoryReader,
    TrajectoryWriter,
    read_energy_log,
)
from repro.machine import ANTON_2008, AntonHardware, AntonMachine
from repro.perf import PerformanceModel
from repro.systems import (
    BPTI,
    TABLE4_SYSTEMS,
    benchmark_by_name,
    build_hp_system,
    build_solvated_protein,
    build_water_box,
    hp_miniprotein,
    synthetic_protein,
)

__version__ = "0.1.0"

__all__ = [
    "BerendsenBarostat",
    "BerendsenThermostat",
    "compute_virial",
    "instantaneous_pressure",
    "run_npt",
    "ChemicalSystem",
    "ConstraintSolver",
    "FixedPointConfig",
    "FixedPointIntegrator",
    "ForceCalculator",
    "MDParams",
    "Simulation",
    "VelocityVerlet",
    "minimize_energy",
    "CheckpointStore",
    "EnergyLogWriter",
    "EnsembleSimulation",
    "derive_replica_seeds",
    "parse_seed_spec",
    "FaultEvent",
    "FaultSchedule",
    "RecoveryPolicy",
    "TrajectoryReader",
    "TrajectoryWriter",
    "parse_fault_spec",
    "read_energy_log",
    "ANTON_2008",
    "AntonHardware",
    "AntonMachine",
    "PerformanceModel",
    "BPTI",
    "TABLE4_SYSTEMS",
    "benchmark_by_name",
    "build_hp_system",
    "build_solvated_protein",
    "build_water_box",
    "hp_miniprotein",
    "synthetic_protein",
    "__version__",
]
