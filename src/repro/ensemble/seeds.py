"""Replica seed derivation for batched ensembles.

Each replica of an ensemble run gets its own velocity seed derived
from one base seed with the same splitmix64 mix the fault scheduler
uses (:mod:`repro.fault.schedule`), so

* the mapping is *stable*: ``(base_seed, r)`` always yields the same
  replica seed, across sessions and machines (pinned by unit test);
* replica streams are decorrelated even for adjacent base seeds
  (splitmix64 is a full-avalanche 64-bit mix);
* a replica is *detachable*: knowing ``base_seed`` and ``r`` is enough
  to reconstruct the solo run it must match bit for bit.

``repro ensemble --seeds`` accepts either a base seed (an integer,
fed through :func:`derive_replica_seeds`) or an explicit
comma-separated list of per-replica seeds.
"""

from __future__ import annotations

import numpy as np

from repro.fault.schedule import _splitmix64

__all__ = ["derive_replica_seeds", "parse_seed_spec"]

_MASK64 = 0xFFFFFFFFFFFFFFFF
#: Domain-separation salt: keeps ensemble seed streams disjoint from the
#: fault scheduler's draws even when both hash the same base seed.
_ENSEMBLE_SALT = np.uint64(0x5EEDD15EA5EB1A5E & _MASK64)


def derive_replica_seeds(base_seed: int, replicas: int) -> list[int]:
    """Derive ``replicas`` independent seeds from one base seed.

    ``seed_r = splitmix64(splitmix64(base ^ salt) ^ r)`` — two rounds of
    the mix so both the base seed and the replica index are fully
    avalanched.  Results are plain Python ints in ``[0, 2**64)``,
    directly usable by :func:`repro.util.make_rng`.
    """
    if replicas < 1:
        raise ValueError("replicas must be >= 1")
    h = _splitmix64(np.uint64(int(base_seed) & _MASK64) ^ _ENSEMBLE_SALT)
    return [int(_splitmix64(h ^ np.uint64(r))) for r in range(replicas)]


def parse_seed_spec(
    spec: str | int | None, replicas: int, base_seed: int = 0
) -> list[int]:
    """Resolve a ``--seeds`` value to one seed per replica.

    ``None`` derives from ``base_seed``; a bare integer (or integer
    string) is used as the derivation base instead; a comma-separated
    list pins each replica's seed explicitly (its length must match
    ``replicas``).
    """
    if spec is None:
        return derive_replica_seeds(base_seed, replicas)
    text = str(spec).strip()
    if "," in text:
        seeds = [int(tok) for tok in text.split(",") if tok.strip()]
        if len(seeds) != replicas:
            raise ValueError(
                f"--seeds lists {len(seeds)} seeds but --replicas is {replicas}"
            )
        return seeds
    return derive_replica_seeds(int(text), replicas)
