"""Batched ensemble runs: R bit-exact replicas through one engine pass.

See :mod:`repro.ensemble.engine` for the replica-axis layout and the
bitwise contract, and :mod:`repro.ensemble.seeds` for the stable
splitmix64 seed derivation behind ``repro ensemble --seeds``.
"""

from repro.ensemble.engine import (
    EnsembleBerendsenThermostat,
    EnsembleConstraintSolver,
    EnsembleForceCalculator,
    EnsembleSimulation,
    tile_exclusions,
    tile_system,
)
from repro.ensemble.seeds import derive_replica_seeds, parse_seed_spec

__all__ = [
    "EnsembleBerendsenThermostat",
    "EnsembleConstraintSolver",
    "EnsembleForceCalculator",
    "EnsembleSimulation",
    "derive_replica_seeds",
    "parse_seed_spec",
    "tile_exclusions",
    "tile_system",
]
