"""Batched ensemble engine: R independent replicas in one stacked system.

The paper's throughput numbers come from running *many* independent
simulations (seeds, mutants, temperatures) at once; on commodity
hardware the analogous win is amortizing per-step dispatch overhead
across replicas.  This module stacks R replicas of one chemical system
along the atom axis (replica ``r`` owns rows ``[r*N, (r+1)*N)``) and
steps them all through ONE pass of the vectorized/compiled kernels per
phase: one batched neighbor-list rebuild, one fused pair kernel call,
one stacked mesh/FFT pass, one fixed-point accumulation, one batched
SHAKE/RATTLE sweep.

The correctness bar is *bitwise*: every replica's integer trajectory
(position/velocity codes), energies, and checkpoint artifacts are
byte-identical to the same seed run solo through
:class:`~repro.core.simulation.Simulation`, on both kernel tiers.  The
engine gets this by construction rather than by tolerance:

* all per-atom/per-pair/per-term arithmetic is elementwise, so tiled
  inputs produce tiled outputs with identical bits;
* force accumulation is the same order-invariant fixed-point integer
  sum the solo path uses — replica blocks cannot interact because no
  pair, bonded term, or stencil point ever crosses a block boundary;
* float energy *reductions* are re-done per replica over contiguous
  slices whose length and values match the solo arrays exactly
  (NumPy's pairwise summation depends only on those), never with
  axis/``reduceat`` reductions whose grouping differs;
* the shared-skin neighbor list is bitwise harmless because the pair
  set is a pure function of the current configuration regardless of
  when the list was rebuilt.

Replicas are *detachable*: :meth:`EnsembleSimulation.detach` (or any
per-replica checkpoint) restores into a stock solo ``Simulation`` that
continues bit-for-bit.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.constraints import ConstraintSolver
from repro.core.forces import (
    ForceCalculator,
    ForceReport,
    MDParams,
    MTSForceProvider,
)
from repro.core.integrator import FixedPointConfig, FixedPointIntegrator
from repro.core.simulation import EnergyRecord, Simulation
from repro.core.system import ChemicalSystem
from repro.core.thermostat import BerendsenThermostat
from repro.ewald import self_energy
from repro.ewald.correction import _segment_sums, correction_forces_static
from repro.fixedpoint import FixedAccumulator
from repro.forcefield.exclusions import ExclusionTable, _pair_keys
from repro.forcefield.nonbonded import (
    NonbondedResult,
    nonbonded_real_space,
    nonbonded_real_space_tabulated,
)
from repro.forcefield.topology import Topology
from repro.geometry.neighborlist import EnsembleNeighborList
from repro.io import TrajectoryWriter, system_fingerprint
from repro.kernels import get_suite, make_pair_spec

__all__ = [
    "tile_system",
    "tile_exclusions",
    "EnsembleForceCalculator",
    "EnsembleConstraintSolver",
    "EnsembleBerendsenThermostat",
    "EnsembleSimulation",
]


# -- system tiling ---------------------------------------------------------


def tile_exclusions(solo: ExclusionTable, replicas: int) -> ExclusionTable:
    """Replicate an exclusion table R times with per-block index offsets.

    Built directly from the solo table's arrays instead of re-walking
    the tiled covalent graph (the graph walk is Python-loop heavy).
    Block r's keys are ``lo*(R*N) + hi`` with ``lo`` shifted by ``r*N``,
    so concatenated blocks are globally sorted and the binary-search
    membership test works unchanged.
    """
    n = solo.n_atoms
    big_n = replicas * n

    def shift(block: np.ndarray) -> np.ndarray:
        if not len(block):
            return np.empty((0, 2), dtype=np.int64)
        return np.concatenate([block + np.int64(r * n) for r in range(replicas)])

    def keys(block: np.ndarray) -> np.ndarray:
        if not len(block):
            return np.empty(0, dtype=np.int64)
        return _pair_keys(block[:, 0], block[:, 1], big_n)

    excluded = shift(solo.excluded)
    pair14 = shift(solo.pair14)
    return ExclusionTable(
        n_atoms=big_n,
        excluded=excluded,
        pair14=pair14,
        lj_scale14=solo.lj_scale14,
        coul_scale14=solo.coul_scale14,
        _excluded_keys=keys(excluded),
        _pair14_keys=keys(pair14),
    )


def tile_system(
    solo: ChemicalSystem, replicas: int, velocities: np.ndarray | None = None
) -> ChemicalSystem:
    """Stack R copies of ``solo`` along the atom axis.

    Topology terms are merged replica-major (block r's bonds before
    block r+1's), matching the layout every per-replica energy
    segmentation in the force calculator assumes.  ``velocities``
    optionally provides the stacked ``(R*N, 3)`` initial velocities
    (per-replica seeds); default tiles the solo velocities.
    """
    n = solo.n_atoms
    top = Topology(replicas * n)
    for r in range(replicas):
        top.merge(solo.topology, r * n)
    if velocities is None:
        velocities = np.tile(solo.velocities, (replicas, 1))
    return ChemicalSystem(
        box=solo.box,
        positions=np.tile(solo.positions, (replicas, 1)),
        masses=np.tile(solo.masses, replicas),
        charges=np.tile(solo.charges, replicas),
        type_ids=np.tile(solo.type_ids, replicas),
        lj=solo.lj,
        topology=top,
        velocities=np.asarray(velocities, dtype=np.float64),
        exclusions=tile_exclusions(solo.exclusions, replicas),
        meta={**solo.meta, "ensemble_replicas": replicas, "ensemble_n_solo": n},
    )


# -- forces ----------------------------------------------------------------


class EnsembleForceCalculator(ForceCalculator):
    """Force calculator over a replica-stacked system.

    Runs the same physics as :class:`ForceCalculator` on the tiled
    system through one kernel pass per phase, but reports every energy
    as an ``(R,)`` per-replica array whose entries are bitwise equal to
    the solo scalars.  Phases are charged to ``ensemble_*`` timers so
    the hierarchical profile attributes batched work separately.
    """

    def __init__(
        self,
        system: ChemicalSystem,
        params: MDParams,
        replicas: int,
        n_solo: int,
        kernels=None,
    ):
        if system.n_atoms != replicas * n_solo:
            raise ValueError("tiled system size does not match replicas * n_solo")
        super().__init__(system, params)
        self.replicas = int(replicas)
        self.n_solo = int(n_solo)
        self.kernels = kernels if kernels is not None else get_suite()
        # Batched rebuild: per-replica cell binning in a single
        # filter/sort pass (cells are offset per replica so identical
        # replica configurations never cross-pair).
        self.neighbor_list = EnsembleNeighborList(
            system.box,
            params.cutoff,
            replicas,
            n_solo,
            skin=params.skin,
            exclusions=system.exclusions,
            timers=self.timers,
            kernels=self.kernels,
        )
        # The tiled ``_e_self`` is the R-fold total; each replica's
        # self energy is the solo scalar.
        self._e_self_solo = self_energy(system.charges[:n_solo], self.sigma)
        # Pair-index boundaries between replica blocks (ascending i).
        self._bounds = np.arange(1, replicas, dtype=np.int64) * np.int64(n_solo)
        self._plan = None
        self._pair_spec = None
        self._pair_spec_codec = None
        self._pair_out = None
        self._acc_short = None
        self._acc_long = None

    # -- scratch -----------------------------------------------------------

    def _accumulator(self, slot: str, force_codec) -> FixedAccumulator:
        """Zeroed persistent accumulator (no per-evaluation allocation)."""
        acc = getattr(self, "_acc_" + slot)
        shape = (self.system.n_atoms, 3)
        if acc is None or acc.shape != shape or acc.fmt != force_codec.fmt:
            acc = FixedAccumulator(shape, force_codec.fmt)
            setattr(self, "_acc_" + slot, acc)
        else:
            acc.zero()
        return acc

    def _pair_buffers(self, n: int) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """(codes, e_lj, e_coul) output scratch for >= ``n`` pairs."""
        out = self._pair_out
        if out is None or out[0].shape[0] < n:
            cap = max(int(n * 1.25), 1024)
            out = (
                np.empty((cap, 3), dtype=np.int64),
                np.empty(cap, dtype=np.float64),
                np.empty(cap, dtype=np.float64),
            )
            self._pair_out = out
        return out

    # -- per-replica reductions --------------------------------------------

    def _pair_segment_sums(self, keys_i: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Per-replica sums of per-pair values split on the owner index.

        The canonical pair order sorts on ``i*(R*N) + j`` so ``keys_i``
        ascends; replica r's pairs form one contiguous slice whose
        values and order equal the solo pair list's, making each
        ``float(np.sum(slice))`` bitwise the solo total.
        """
        cuts = np.searchsorted(keys_i, self._bounds)
        out = np.empty(self.replicas)
        lo = 0
        for r, hi in enumerate([*cuts.tolist(), len(values)]):
            out[r] = float(np.sum(values[lo:hi]))
            lo = hi
        return out

    # -- range-limited ------------------------------------------------------

    def _range_limited_ensemble(
        self, positions: np.ndarray, force_codec
    ) -> tuple[NonbondedResult, np.ndarray]:
        """Pair result + quantized force codes, one batched kernel pass.

        Mirrors the machine's fused dispatch: the compiled tier with
        tabulated kernels runs ``pair_table_codes`` straight to codes;
        otherwise the classic NumPy evaluation plus one quantization
        (bitwise identical either way — the fused kernel's contract).
        """
        k = self.kernels
        s = self.system
        if k.tier == "compiled" and self.tables is not None:
            with self.timers.time("ensemble_pair_list"):
                pairs = self.neighbor_list.pairs(positions)
            with self.timers.time("ensemble_range_limited"):
                if self._pair_spec is None or self._pair_spec_codec is not force_codec:
                    self._pair_spec = make_pair_spec(
                        self.tables, s.lj, s.charges, s.type_ids, force_codec
                    )
                    self._pair_spec_codec = force_codec
                n = len(pairs.i)
                codes, e_lj, e_coul = self._pair_buffers(n)
                k.pair_table_codes(
                    self._pair_spec, pairs.i, pairs.j, pairs.dx, pairs.r2,
                    codes, e_lj, e_coul,
                )
                nb = NonbondedResult(
                    energy_lj=float(np.sum(e_lj[:n])),
                    energy_coul=float(np.sum(e_coul[:n])),
                    i=pairs.i,
                    j=pairs.j,
                    force=None,
                    e_lj_pairs=e_lj[:n],
                    e_coul_pairs=e_coul[:n],
                )
            return nb, codes[:n]
        with self.timers.time("ensemble_pair_list"):
            pairs = self.neighbor_list.pairs(positions)
        with self.timers.time("ensemble_range_limited"):
            if self.tables is not None:
                nb = nonbonded_real_space_tabulated(
                    pairs, s.charges, s.type_ids, s.lj, s.exclusions,
                    self.tables, assume_filtered=True,
                )
            else:
                nb = nonbonded_real_space(
                    pairs, s.charges, s.type_ids, s.lj, s.exclusions,
                    self.sigma, lj_mode=self.params.lj_mode,
                    cutoff=self.params.cutoff, assume_filtered=True,
                )
            codes = force_codec.quantize_round_only(nb.force)
        return nb, codes

    # -- long range ---------------------------------------------------------

    def _kspace_stack(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-replica k-space energies and stacked mesh forces.

        One shared stencil plan is built over all R*N positions; each
        replica's spread/interpolation runs over a zero-copy row view
        of it (chunk loops restart at the view, preserving solo bits),
        and the FFT/convolution covers the whole ``(R, *mesh)`` stack
        in one batched transform.  When the plan exceeds the memory
        budget, replicas fall back to R solo ``kspace`` calls — bitwise
        solo by definition.
        """
        g = self.gse
        R, n = self.replicas, self.n_solo
        q_solo = self.system.charges[:n]
        with self.timers.time("mesh_plan"):
            plan = g.make_plan(positions, out=self._plan, kernels=self.kernels)
        if plan is None:
            energies = np.empty(R)
            forces = np.empty((R * n, 3))
            for r in range(R):
                sl = slice(r * n, (r + 1) * n)
                e_r, f_r = g.kspace(positions[sl], q_solo, codec=self.mesh_codec)
                energies[r] = e_r
                forces[sl] = f_r
            return energies, forces
        self._plan = plan
        mesh_shape = (R, *(int(m) for m in g.mesh))
        m_points = g.mesh_point_count()
        # Replicas are the parallel unit: each owns disjoint plan rows,
        # mesh slab, and force rows, so farming them to the kernel
        # suite's thread pool cannot reorder any reduction.  Worker
        # threads get the single-threaded `serial` suite — the C lanes
        # belong to the process-wide pool, never nested inside Python
        # threads.  map_chunks degenerates to the same `for r in
        # range(R)` loop at threads=1, so the serial bits are literal.
        serial = getattr(self.kernels, "serial", self.kernels)
        nthreads = getattr(self.kernels, "threads", 1)
        replica_views = plan._thread_views(R)[1] if R > 1 else [plan]
        with self.timers.time("mesh_spread"):
            if self.mesh_codec is not None:
                acc = np.zeros((R, m_points), dtype=np.int64)

                def _spread(r):
                    replica_views[r].spread_codes(
                        q_solo, acc[r], self.mesh_codec, kernels=serial
                    )

                self.kernels.map_chunks(_spread, R)
                Q = self.mesh_codec.reconstruct(self.mesh_codec.wrap(acc)).reshape(
                    mesh_shape
                )
            else:
                Qf = np.zeros((R, m_points))
                for r in range(R):
                    replica_views[r].spread_float(q_solo, Qf[r])
                Q = Qf.reshape(mesh_shape)
        with self.timers.time("mesh_fft"):
            if nthreads > 1 and R > 1:
                # Per-replica solo transforms in worker threads: the
                # stacked solve is pinned bitwise to R solo solves, so
                # this is the same bytes with the replica axis farmed
                # out (pocketfft releases the GIL).
                phi = np.empty(mesh_shape)
                energies = np.empty(R)

                def _solve(r):
                    phi[r], energies[r] = g.solve(Q[r])

                self.kernels.map_chunks(_solve, R)
            else:
                phi, energies = g.solve_stack(Q)
        with self.timers.time("mesh_interp"):
            forces = np.empty((R * n, 3))

            def _interp(r):
                replica_views[r].interpolate_forces(
                    q_solo, phi[r], out=forces[r * n : (r + 1) * n]
                )

            self.kernels.map_chunks(_interp, R)
        return energies, forces

    def compute_long_fixed(self, positions: np.ndarray, force_codec):
        """Long-range codes with per-replica ``(R,)`` energies."""
        R = self.replicas
        acc = self._accumulator("long", force_codec)
        with self.timers.time("ensemble_correction"):
            corr = correction_forces_static(
                positions, self.system.box, self._corr_static, self.sigma,
                replicas=R,
            )
        with self.timers.time("ensemble_deposit"):
            ccodes = force_codec.quantize_round_only(corr.force)
            self.kernels.deposit_pairs(acc.raw(), corr.i, corr.j, ccodes)
        e_k = np.zeros(R)
        if self.gse is not None:
            with self.timers.time("ensemble_kspace"):
                e_k, f_k = self._kspace_stack(positions)
            with self.timers.time("ensemble_deposit"):
                acc.deposit_dense(force_codec.quantize_round_only(f_k))
        energies = {
            "correction": corr.energy_exclusion + corr.energy_14_coul,
            "lj14": corr.energy_14_lj,
            "coulomb_kspace": e_k,
            "coulomb_self": np.full(R, self._e_self_solo),
        }
        return acc.raw(), energies

    def compute_fixed(
        self, positions: np.ndarray, force_codec, include_long_range: bool = True
    ) -> tuple[np.ndarray, ForceReport]:
        """Batched fixed-point forces with per-replica energy arrays.

        Identical deposits to the solo path (order-invariant integer
        sums over the same contributions), with each energy re-summed
        per replica block.  Energy keys are inserted in the exact solo
        order so per-replica ``sum(energies.values())`` reproduces the
        solo left-to-right float additions.
        """
        s = self.system
        before = self.timers.snapshot()
        acc = self._accumulator("short", force_codec)
        energies: dict[str, np.ndarray] = {}

        nb, codes = self._range_limited_ensemble(positions, force_codec)
        with self.timers.time("ensemble_deposit"):
            self.kernels.deposit_pairs(acc.raw(), nb.i, nb.j, codes)
        with self.timers.time("ensemble_energies"):
            energies["lj"] = self._pair_segment_sums(nb.i, nb.e_lj_pairs)
            energies["coulomb_real"] = self._pair_segment_sums(nb.i, nb.e_coul_pairs)

        bonded = self._bonded(positions)
        with self.timers.time("ensemble_deposit"):
            for contrib in bonded:
                if contrib.n_terms:
                    c = force_codec.quantize_round_only(contrib.force)
                    self.kernels.scatter_rows(
                        acc.raw(), contrib.idx.ravel(), c.reshape(-1, 3)
                    )
        with self.timers.time("ensemble_energies"):
            energies["bond"] = _segment_sums(bonded[0].energy_terms, self.replicas)
            energies["angle"] = _segment_sums(bonded[1].energy_terms, self.replicas)
            energies["dihedral"] = _segment_sums(bonded[2].energy_terms, self.replicas)

        if include_long_range:
            long_codes, long_energies = self.compute_long_fixed(positions, force_codec)
            with self.timers.time("ensemble_deposit"):
                acc.deposit_dense(long_codes)
            energies.update(long_energies)

        with self.timers.time("ensemble_collect"):
            total = acc.total()
            total = self._spread_vsite_codes(total)
            report = ForceReport(
                forces=force_codec.reconstruct(total),
                energies=energies,
                n_pairs=nb.n_pairs,
                timings=self.timers.delta_since(before),
            )
        return total, report


# -- constraints -----------------------------------------------------------


class EnsembleConstraintSolver:
    """SHAKE/RATTLE over R replica blocks in one batched dispatch.

    Wraps ONE solo :class:`ConstraintSolver` (the constraint topology
    is identical in every block) and dispatches through the kernel
    suite: the compiled tier sweeps all replicas in a single C call
    that runs the solo kernel per block — bitwise the solo solve,
    including each block's own convergence exit (a converged replica
    must not absorb extra sweeps, which would change bits).
    """

    def __init__(
        self, solo: ConstraintSolver, replicas: int, n_solo: int, kernels=None
    ):
        self.solo = solo
        self.replicas = int(replicas)
        self.n_solo = int(n_solo)
        self.kernels = kernels if kernels is not None else get_suite()

    @property
    def n_constraints(self) -> int:
        return self.solo.n_constraints * self.replicas

    def _suite(self, arr: np.ndarray):
        k = self.kernels
        if k.tier == "compiled" and not (
            arr.dtype == np.float64 and arr.flags["C_CONTIGUOUS"]
        ):
            return get_suite("numpy")
        return k

    def shake(self, positions: np.ndarray, reference: np.ndarray, tol: float = 1e-10):
        if not self.solo.n_constraints:
            return positions
        return self._suite(positions).shake_batch(
            self.solo, positions, reference, float(tol), self.replicas, self.n_solo
        )

    def rattle(self, velocities: np.ndarray, positions: np.ndarray, tol: float = 1e-12):
        if not self.solo.n_constraints:
            return velocities
        return self._suite(velocities).rattle_batch(
            self.solo, velocities, positions, float(tol), self.replicas, self.n_solo
        )


# -- thermostat ------------------------------------------------------------


class EnsembleBerendsenThermostat:
    """Per-replica Berendsen scaling with the exact solo scalar math.

    Computes each replica's temperature from its own contiguous
    velocity block (solo masses, solo ``n_dof``) and its lambda with
    the same ``math.sqrt``/``min``/``max`` scalar chain the solo
    thermostat uses, then broadcasts ``(R,) -> (R*N, 1)`` so the
    integrator applies one vectorized velocity scale.  A replica at
    exactly ``lam == 1.0`` is untouched (the integrator's round-trip
    through float64 is exact for 40-bit codes).
    """

    def __init__(
        self,
        solo: BerendsenThermostat,
        replicas: int,
        n_solo: int,
        solo_system: ChemicalSystem,
    ):
        self.solo = solo
        self.replicas = int(replicas)
        self.n_solo = int(n_solo)
        self.solo_system = solo_system

    def __call__(self, integrator) -> np.ndarray:
        v = integrator.velocities
        n = self.n_solo
        lams = np.empty(self.replicas)
        for r in range(self.replicas):
            t_now = self.solo_system.temperature(v[r * n : (r + 1) * n])
            if t_now <= 0:
                lams[r] = 1.0
                continue
            arg = 1.0 + (integrator.dt / self.solo.tau) * (
                self.solo.temperature / t_now - 1.0
            )
            lam = math.sqrt(max(arg, 0.0))
            lams[r] = min(max(lam, 1.0 - self.solo.clamp), 1.0 + self.solo.clamp)
        return np.repeat(lams, n)[:, None]


# -- driver ----------------------------------------------------------------


class EnsembleSimulation:
    """Drive R bit-exact replicas through one batched integrator.

    Parameters mirror :class:`~repro.core.simulation.Simulation` where
    they overlap.  ``system`` is the *solo* prepared system (already
    minimized); each replica starts from its positions with velocities
    drawn from its own seed.

    ``seeds``/``temperature`` initialize replica r's velocities exactly
    as ``system.initialize_velocities(temperature, seed=seeds[r])``
    would solo; with ``seeds=None`` all ``replicas`` blocks start from
    the solo velocities verbatim.  ``kernel_tier`` picks the kernel
    suite and ``kernel_threads`` its worker-lane count (defaults: the
    ``REPRO_KERNEL_TIER`` / ``REPRO_KERNEL_THREADS`` environment
    resolution).  Both knobs are bitwise-invisible.

    Per-replica artifacts (energy records, trajectory frames,
    checkpoints) use the *solo* fingerprint and the solo formats, so
    they are byte-identical to a solo run's files and restore into a
    stock solo ``Simulation`` (:meth:`detach`).
    """

    def __init__(
        self,
        system: ChemicalSystem,
        params: MDParams = MDParams(),
        dt: float = 2.5,
        replicas: int | None = None,
        seeds: list[int] | None = None,
        temperature: float | None = None,
        fixed_config: FixedPointConfig = FixedPointConfig(),
        thermostat: BerendsenThermostat | None = None,
        constraints: bool = True,
        kernel_tier: str | None = None,
        kernel_threads: int | None = None,
    ):
        if seeds is not None:
            if replicas is not None and replicas != len(seeds):
                raise ValueError("replicas does not match len(seeds)")
            replicas = len(seeds)
            if temperature is None and thermostat is not None:
                temperature = thermostat.temperature
            if temperature is None:
                raise ValueError("seeds need a temperature to draw velocities")
        if replicas is None or replicas < 1:
            raise ValueError("need replicas >= 1 (or an explicit seeds list)")

        self.solo_system = system
        self.params = params
        self.dt = float(dt)
        self.mode = "fixed"
        self.fixed_config = fixed_config
        self.replicas = int(replicas)
        self.n_solo = system.n_atoms
        self.seeds = list(seeds) if seeds is not None else None
        self.solo_thermostat = thermostat
        self.constraints_enabled = bool(constraints)
        self.kernels = get_suite(kernel_tier, kernel_threads)

        n = self.n_solo
        velocities = np.empty((self.replicas * n, 3))
        for r in range(self.replicas):
            if self.seeds is not None:
                rep = system.copy()
                rep.initialize_velocities(temperature, seed=self.seeds[r])
                velocities[r * n : (r + 1) * n] = rep.velocities
            else:
                velocities[r * n : (r + 1) * n] = system.velocities
        self.system = tile_system(system, self.replicas, velocities=velocities)

        self.calc = EnsembleForceCalculator(
            self.system, params, self.replicas, n, kernels=self.kernels
        )
        solver = None
        if constraints and system.topology.n_constraints:
            solver = EnsembleConstraintSolver(
                ConstraintSolver(system.topology, system.masses, system.box),
                self.replicas,
                n,
                kernels=self.kernels,
            )
        self.constraint_solver = solver
        ens_thermo = None
        if thermostat is not None:
            ens_thermo = EnsembleBerendsenThermostat(
                thermostat, self.replicas, n, system
            )
        self.provider = MTSForceProvider(
            self.calc, force_codec=fixed_config.force_codec()
        )
        self.integrator = FixedPointIntegrator(
            self.system,
            self.provider,
            dt,
            config=fixed_config,
            constraints=solver,
            thermostat=ens_thermo,
            timers=self.calc.timers,
        )
        # One fingerprint serves every replica: it hashes only the
        # static solo system, parameters, and datapath widths — never
        # positions/velocities — so it is verbatim what a solo run of
        # any replica embeds in its artifacts.
        self._solo_fingerprint = system_fingerprint(
            system, params, self.mode, self.dt, fixed_config
        )
        self.energy_logs: list[list[EnergyRecord]] = [
            [] for _ in range(self.replicas)
        ]

    # -- views ---------------------------------------------------------------

    @property
    def timers(self):
        return self.calc.timers

    def replica_slice(self, r: int) -> slice:
        if not 0 <= r < self.replicas:
            raise IndexError(f"replica {r} out of range (R={self.replicas})")
        return slice(r * self.n_solo, (r + 1) * self.n_solo)

    def state_codes(self, r: int) -> tuple[np.ndarray, np.ndarray]:
        """Replica r's raw integer state (bitwise-comparison handle)."""
        sl = self.replica_slice(r)
        return self.integrator.X[sl].copy(), self.integrator.V[sl].copy()

    # -- energies ------------------------------------------------------------

    def record_energy(self) -> list[EnergyRecord]:
        """Append one solo-identical energy record per replica."""
        integ = self.integrator
        v = integ.velocities
        energies = integ.last_info.energies
        recs = []
        for r in range(self.replicas):
            vr = v[self.replica_slice(r)]
            # Left-to-right float additions over the solo key order —
            # the same chain ``float(sum(energies.values()))`` runs solo.
            pe = float(sum(float(np.asarray(val)[r]) for val in energies.values()))
            rec = EnergyRecord(
                step=integ.step_count,
                time_fs=integ.step_count * self.dt,
                kinetic=self.solo_system.kinetic_energy(vr),
                potential=pe,
                temperature=self.solo_system.temperature(vr),
            )
            self.energy_logs[r].append(rec)
            recs.append(rec)
        return recs

    # -- artifacts -----------------------------------------------------------

    def replica_fingerprint(self) -> dict:
        """The solo fingerprint every replica's artifacts embed."""
        return self._solo_fingerprint

    def replica_checkpoint(self, r: int) -> dict:
        """Replica r's state in the exact solo checkpoint schema.

        Byte-identical (through ``pack_state``) to what the same-seed
        solo run's :meth:`Simulation.checkpoint` yields at this step,
        and restorable by it (:meth:`detach`).
        """
        sl = self.replica_slice(r)
        return {
            "mode": self.mode,
            "dt": self.dt,
            "step_count": self.integrator.step_count,
            "provider_calls": self.provider.calls,
            "fingerprint": self._solo_fingerprint,
            "X": self.integrator.X[sl].copy(),
            "V": self.integrator.V[sl].copy(),
        }

    def open_replica_trajectory(self, path, meta: dict | None = None) -> TrajectoryWriter:
        """A solo-format trajectory writer for one replica's frames."""
        cfg = self.fixed_config
        decode = {
            "storage": "codes",
            "position_bits": cfg.position_bits,
            "box": [float(x) for x in self.solo_system.box.lengths],
            "velocity_bits": cfg.velocity_bits,
            "velocity_limit": cfg.velocity_limit,
        }
        return TrajectoryWriter(
            path, fingerprint=self._solo_fingerprint, decode=decode, meta=meta
        )

    def write_replica_frame(self, writer: TrajectoryWriter, r: int) -> None:
        X, V = self.state_codes(r)
        step = self.integrator.step_count
        writer.write_frame(step, step * self.dt, {"X": X, "V": V})

    def detach(self, r: int) -> Simulation:
        """Extract replica r as a live solo :class:`Simulation`.

        The solo simulation is built on a copy of the solo system and
        restored from the replica checkpoint, so it continues exactly
        the bits the batched run would have produced for this replica.
        """
        sim = Simulation(
            self.solo_system.copy(),
            self.params,
            dt=self.dt,
            mode=self.mode,
            fixed_config=self.fixed_config,
            thermostat=self.solo_thermostat,
            constraints=self.constraints_enabled,
        )
        sim.restore(self.replica_checkpoint(r))
        return sim

    # -- stepping ------------------------------------------------------------

    def run(
        self,
        n_steps: int,
        record_every: int = 0,
        energy_writers=None,
        trajectories=None,
        trajectory_every: int = 0,
        checkpoint_stores=None,
        checkpoint_every: int = 0,
    ) -> list[list[EnergyRecord]]:
        """Advance all replicas ``n_steps``; per-replica record lists.

        Cadences mirror :meth:`Simulation.run` exactly (global step
        count keys the trajectory/checkpoint cadence).  The per-replica
        sequences ``energy_writers`` / ``trajectories`` /
        ``checkpoint_stores`` may be ``None`` or contain ``None``
        entries to skip individual replicas.
        """
        start = [len(log) for log in self.energy_logs]
        for i in range(n_steps):
            self.integrator.step()
            done = i + 1
            step = self.integrator.step_count
            if record_every and done % record_every == 0:
                recs = self.record_energy()
                if energy_writers is not None:
                    for writer, rec in zip(energy_writers, recs):
                        if writer is not None:
                            writer.write(rec)
            if trajectories is not None and trajectory_every and step % trajectory_every == 0:
                for r, writer in enumerate(trajectories):
                    if writer is not None:
                        self.write_replica_frame(writer, r)
            if checkpoint_stores is not None and checkpoint_every and step % checkpoint_every == 0:
                for r, store in enumerate(checkpoint_stores):
                    if store is not None:
                        store.save(self.replica_checkpoint(r), step)
        return [log[s:] for log, s in zip(self.energy_logs, start)]

    def profile(self) -> dict:
        """Hierarchical per-step phase profile of the batched engine.

        Rooted at the integrator's ``step`` phase; the batched force
        phases appear as ``ensemble_*`` children.  Same coverage /
        ``leaf_coverage`` attribution contract as the machine profile.
        """
        return self.calc.timers.profile("step", self.integrator.step_count)
