"""Block-floating-point coefficient encoding (paper Section 4).

Each entry of a PPIP function table stores the four coefficients of a
cubic polynomial plus "a single exponent common to all four
coefficients, as in block-floating-point schemes".  This module encodes
a coefficient vector as signed fixed-point mantissas sharing one power-
of-two exponent, which is what lets the 19–22-bit datapaths of Figure 4
capture functions with large dynamic range.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.format import round_nearest_even

__all__ = ["BlockFloat", "BlockFloatCodec"]


@dataclass(frozen=True)
class BlockFloat:
    """An encoded coefficient block: integer mantissas and shared exponent.

    The represented values are ``mantissas * 2**(exponent + 1 - mantissa_bits)``.
    """

    mantissas: np.ndarray  # int64, shape (k,)
    exponent: int
    mantissa_bits: int

    def decode(self) -> np.ndarray:
        """Reconstruct the coefficient values as float64."""
        step = math.ldexp(1.0, self.exponent + 1 - self.mantissa_bits)
        return self.mantissas.astype(np.float64) * step


class BlockFloatCodec:
    """Encoder for coefficient blocks with ``mantissa_bits``-bit mantissas.

    Parameters
    ----------
    mantissa_bits:
        Signed mantissa width; mantissas lie in
        ``[-2**(mantissa_bits-1), 2**(mantissa_bits-1))``.
    exponent_range:
        Inclusive (lo, hi) clamp on the shared exponent, mimicking a
        finite hardware exponent field.
    """

    def __init__(self, mantissa_bits: int, exponent_range: tuple[int, int] = (-64, 64)):
        if mantissa_bits < 2:
            raise ValueError("mantissa_bits must be >= 2")
        self.mantissa_bits = mantissa_bits
        self.exponent_range = exponent_range

    def encode(self, coeffs: np.ndarray) -> BlockFloat:
        """Encode a small vector of coefficients with one shared exponent.

        The exponent is the smallest power of two such that every
        coefficient's mantissa fits; smaller coefficients simply lose
        low-order bits, exactly as in the hardware scheme.
        """
        coeffs = np.asarray(coeffs, dtype=np.float64)
        amax = float(np.max(np.abs(coeffs))) if coeffs.size else 0.0
        if amax == 0.0 or not np.isfinite(amax):
            exponent = self.exponent_range[0]
        else:
            # Smallest e with amax * 2**(-e) <= 1 (then mantissa fits,
            # modulo the asymmetry of two's complement handled below).
            exponent = max(int(math.ceil(math.log2(amax))), self.exponent_range[0])
            exponent = min(exponent, self.exponent_range[1])
        half = 1 << (self.mantissa_bits - 1)
        step = math.ldexp(1.0, exponent + 1 - self.mantissa_bits)
        mantissas = round_nearest_even(coeffs / step).astype(np.int64)
        # The +1.0 boundary case rounds to +half which is unrepresentable;
        # bump the exponent rather than saturate so the error stays small.
        if mantissas.size and int(np.max(mantissas)) > half - 1:
            exponent = min(exponent + 1, self.exponent_range[1])
            step = math.ldexp(1.0, exponent + 1 - self.mantissa_bits)
            mantissas = round_nearest_even(coeffs / step).astype(np.int64)
        mantissas = np.clip(mantissas, -half, half - 1)
        return BlockFloat(mantissas=mantissas, exponent=exponent, mantissa_bits=self.mantissa_bits)

    def roundtrip(self, coeffs: np.ndarray) -> np.ndarray:
        """Encode then decode (the quantized coefficient values)."""
        return self.encode(coeffs).decode()
