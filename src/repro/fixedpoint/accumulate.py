"""Order-invariant fixed-point accumulation.

The heart of Anton's determinism and parallel invariance (Section 4):
force contributions are quantized once, then summed with exact integer
arithmetic, so *any* distribution of the terms over nodes — and any
arrival order of messages — produces the same bits.

These helpers are used by every force routine: per-interaction
contributions enter as int64 codes, land in an int64 accumulator via
``np.add.at`` (unordered, which is safe precisely because integer
addition is associative and commutative), and the final sums are wrapped
into the accumulator's fixed-point format.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.format import FixedFormat

__all__ = ["FixedAccumulator", "wrapping_sum"]


def wrapping_sum(codes: np.ndarray, fmt: FixedFormat, axis=None) -> np.ndarray:
    """Sum int64 codes with two's-complement wrap in ``fmt``.

    Intermediate sums may wrap (mod ``2**64`` natively, which is
    congruent mod ``2**fmt.bits``); the result is correct whenever the
    true sum is representable, per the paper's footnote 2.
    """
    with np.errstate(over="ignore"):
        total = np.sum(np.asarray(codes, dtype=np.int64), axis=axis)
    return fmt.wrap(total)


class FixedAccumulator:
    """An int64 accumulator array with fixed-point wrap-on-read semantics.

    Parameters
    ----------
    shape:
        Shape of the accumulator (e.g. ``(n_atoms, 3)`` for forces).
    fmt:
        Fixed-point format applied when the totals are read out.
    """

    def __init__(self, shape, fmt: FixedFormat):
        self.fmt = fmt
        self._acc = np.zeros(shape, dtype=np.int64)

    @property
    def shape(self):
        return self._acc.shape

    def zero(self) -> None:
        """Reset all accumulated values."""
        self._acc[...] = 0

    def deposit(self, index, codes: np.ndarray) -> None:
        """Scatter-add quantized contributions at ``index`` (unordered).

        ``index`` follows ``np.add.at`` semantics; duplicate indices
        accumulate, and because the arithmetic is integer the result is
        independent of the order in which duplicates are applied.
        """
        with np.errstate(over="ignore"):
            np.add.at(self._acc, index, np.asarray(codes, dtype=np.int64))

    def deposit_dense(self, codes: np.ndarray) -> None:
        """Add a full-shape array of contributions."""
        with np.errstate(over="ignore"):
            self._acc += np.asarray(codes, dtype=np.int64)

    def merge(self, other: "FixedAccumulator") -> None:
        """Fold another accumulator's raw totals into this one.

        This is how simulated nodes combine partial force sums: the
        merge is a plain integer add, so the combining tree's shape is
        irrelevant to the final bits.
        """
        if other.shape != self.shape:
            raise ValueError("accumulator shapes differ")
        with np.errstate(over="ignore"):
            self._acc += other._acc

    def raw(self) -> np.ndarray:
        """The raw (unwrapped) int64 totals. Mutating the result mutates
        the accumulator."""
        return self._acc

    def total(self) -> np.ndarray:
        """Final totals wrapped into the fixed-point format."""
        return self.fmt.wrap(self._acc)
