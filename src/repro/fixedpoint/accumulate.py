"""Order-invariant fixed-point accumulation.

The heart of Anton's determinism and parallel invariance (Section 4):
force contributions are quantized once, then summed with exact integer
arithmetic, so *any* distribution of the terms over nodes — and any
arrival order of messages — produces the same bits.

These helpers are used by every force routine: per-interaction
contributions enter as int64 codes, land in an int64 accumulator via
``np.add.at`` (unordered, which is safe precisely because integer
addition is associative and commutative), and the final sums are wrapped
into the accumulator's fixed-point format.
"""

from __future__ import annotations

import numpy as np

from repro.fixedpoint.format import FixedFormat

__all__ = ["FixedAccumulator", "scatter_add_int64", "wrapping_sum"]

#: Contributions per scatter slice.  Each 32-bit half-word is summed in
#: float64 via ``np.bincount``; partial sums stay below
#: ``2**21 * 2**32 = 2**53`` per slice, so every float64 partial sum is
#: exact and the recombined int64 total matches ``np.add.at`` bit for
#: bit (including two's-complement wrap, which both paths take mod
#: ``2**64``).
_SCATTER_SLICE = 1 << 21


def scatter_add_int64(
    acc: np.ndarray, keys: np.ndarray, codes: np.ndarray
) -> None:
    """Scatter-add int64 ``codes`` into flat ``acc`` at ``keys``.

    Bitwise equivalent to ``np.add.at(acc, keys, codes)`` but built on
    ``np.bincount``, which runs a tight contiguous counting loop instead
    of ``add.at``'s generalized buffered inner loop — several times
    faster for the many-duplicate scatters of mesh charge spreading.

    Each int64 code is split into its two 32-bit half-words; each half
    is bincount-summed in float64 over slices small enough that the
    partial sums are exact integers, then the halves are recombined with
    wrapping int64 arithmetic.  Integer sums commute, so (exactly like
    ``np.add.at``) the result is independent of the order and partition
    of the contributions.
    """
    keys = keys.ravel()
    codes = codes.ravel()
    n = acc.shape[0]
    lo_mask = np.int64(0xFFFFFFFF)
    with np.errstate(over="ignore"):
        for s in range(0, len(codes), _SCATTER_SLICE):
            c = codes[s : s + _SCATTER_SLICE]
            k = keys[s : s + _SCATTER_SLICE]
            lo = np.bincount(
                k, weights=(c & lo_mask).astype(np.float64), minlength=n
            )
            hi = np.bincount(
                k, weights=(c >> np.int64(32)).astype(np.float64), minlength=n
            )
            acc += (hi.astype(np.int64) << np.int64(32)) + lo.astype(np.int64)


def wrapping_sum(codes: np.ndarray, fmt: FixedFormat, axis=None) -> np.ndarray:
    """Sum int64 codes with two's-complement wrap in ``fmt``.

    Intermediate sums may wrap (mod ``2**64`` natively, which is
    congruent mod ``2**fmt.bits``); the result is correct whenever the
    true sum is representable, per the paper's footnote 2.
    """
    with np.errstate(over="ignore"):
        total = np.sum(np.asarray(codes, dtype=np.int64), axis=axis)
    return fmt.wrap(total)


class FixedAccumulator:
    """An int64 accumulator array with fixed-point wrap-on-read semantics.

    Parameters
    ----------
    shape:
        Shape of the accumulator (e.g. ``(n_atoms, 3)`` for forces).
    fmt:
        Fixed-point format applied when the totals are read out.
    """

    def __init__(self, shape, fmt: FixedFormat):
        self.fmt = fmt
        self._acc = np.zeros(shape, dtype=np.int64)

    @property
    def shape(self):
        return self._acc.shape

    def zero(self) -> None:
        """Reset all accumulated values."""
        self._acc[...] = 0

    def deposit(self, index, codes: np.ndarray) -> None:
        """Scatter-add quantized contributions at ``index`` (unordered).

        ``index`` follows ``np.add.at`` semantics; duplicate indices
        accumulate, and because the arithmetic is integer the result is
        independent of the order in which duplicates are applied.
        """
        with np.errstate(over="ignore"):
            np.add.at(self._acc, index, np.asarray(codes, dtype=np.int64))

    def deposit_dense(self, codes: np.ndarray) -> None:
        """Add a full-shape array of contributions."""
        with np.errstate(over="ignore"):
            self._acc += np.asarray(codes, dtype=np.int64)

    def merge(self, other: "FixedAccumulator") -> None:
        """Fold another accumulator's raw totals into this one.

        This is how simulated nodes combine partial force sums: the
        merge is a plain integer add, so the combining tree's shape is
        irrelevant to the final bits.
        """
        if other.shape != self.shape:
            raise ValueError("accumulator shapes differ")
        with np.errstate(over="ignore"):
            self._acc += other._acc

    def raw(self) -> np.ndarray:
        """The raw (unwrapped) int64 totals. Mutating the result mutates
        the accumulator."""
        return self._acc

    def total(self) -> np.ndarray:
        """Final totals wrapped into the fixed-point format."""
        return self.fmt.wrap(self._acc)
