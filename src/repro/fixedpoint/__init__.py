"""Fixed-point arithmetic with Anton's semantics (paper Section 4).

Determinism, parallel invariance, and exact time reversibility all rest
on this package: values are quantized once with round-to-nearest-even
and summed with exact, associative, wrapping integer arithmetic.
"""

from repro.fixedpoint.accumulate import (
    FixedAccumulator,
    scatter_add_int64,
    wrapping_sum,
)
from repro.fixedpoint.blockfloat import BlockFloat, BlockFloatCodec
from repro.fixedpoint.format import FixedFormat, round_nearest_even
from repro.fixedpoint.scaled import ScaledFixed

__all__ = [
    "FixedAccumulator",
    "scatter_add_int64",
    "wrapping_sum",
    "BlockFloat",
    "BlockFloatCodec",
    "FixedFormat",
    "round_nearest_even",
    "ScaledFixed",
]
