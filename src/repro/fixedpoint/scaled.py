"""Fixed-point representation of physical quantities.

Anton represents every physical quantity (position, velocity, force,
charge, energy, virial) as a fixed-point fraction of a statically known
bound — "all of the arithmetic in an MD simulation involves quantities
that are bounded by physical considerations" (Section 4).  A
:class:`ScaledFixed` pairs a :class:`~repro.fixedpoint.format.FixedFormat`
with such a bound so that quantization and reconstruction are one-liners
at every point force contributions are produced.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.fixedpoint.format import FixedFormat, round_nearest_even

__all__ = ["ScaledFixed"]


@dataclass(frozen=True)
class ScaledFixed:
    """Fixed-point codec for a physical quantity bounded by ``limit``.

    A quantity ``q`` with ``|q| <= limit`` maps to the fixed-point
    fraction ``q / limit`` in ``[-1, 1)``.

    Parameters
    ----------
    fmt:
        Bit-level format of the stored codes.
    limit:
        Physical bound; the representable range is ``[-limit, limit)``
        with resolution ``limit * 2**(1 - fmt.bits)``.
    """

    fmt: FixedFormat
    limit: float

    def __post_init__(self) -> None:
        if not np.isfinite(self.limit) or self.limit <= 0:
            raise ValueError(f"limit must be positive and finite, got {self.limit}")

    @property
    def resolution(self) -> float:
        """Physical size of one integer code step."""
        return self.limit * self.fmt.resolution

    def quantize(self, q: np.ndarray | float) -> np.ndarray:
        """Physical values -> integer codes (round-to-nearest-even, wrap)."""
        x = np.asarray(q, dtype=np.float64) / self.limit
        return self.fmt.encode(x)

    def reconstruct(self, codes: np.ndarray | int) -> np.ndarray:
        """Integer codes -> physical float64 values."""
        return self.fmt.decode(codes) * self.limit

    def quantize_round_only(self, q: np.ndarray | float) -> np.ndarray:
        """Quantize without wrapping (codes may exceed the format range).

        Used for *accumulators*: individual contributions are rounded to
        the accumulator's resolution but summed in full int64 so wrap
        semantics are applied once, by the caller, on the final sum.
        Values beyond the int64 range saturate (rather than producing an
        undefined cast) — a configuration that extreme is unphysical and
        surfaces immediately in the energy diagnostics.
        """
        x = np.asarray(q, dtype=np.float64) / self.limit * self.fmt.scale
        cap = 2.0**62
        return round_nearest_even(np.clip(x, -cap, cap)).astype(np.int64)

    def wrap(self, codes: np.ndarray | int) -> np.ndarray:
        """Apply the format's two's-complement wrap to raw int64 codes."""
        return self.fmt.wrap(codes)

    def in_range(self, q: np.ndarray | float) -> np.ndarray:
        """Elementwise check that physical values fit without wrapping."""
        q = np.asarray(q, dtype=np.float64)
        return (q >= -self.limit) & (q < self.limit)
