"""Two's-complement fixed-point formats (paper Section 4).

A *B*-bit signed fixed-point number represents the ``2**B`` evenly
spaced values in ``[-1, 1)`` with step ``2**(1-B)``.  We store such
numbers in ``int64`` ndarrays and reproduce the two properties the
paper's hardware relies on:

* **Associativity** — integer addition is exact, so the order of
  summation never changes the result (unlike floating point).
* **Natural wrap** — addition wraps modulo ``2**B``; a collection of
  values sums correctly as long as the *final* sum is representable,
  regardless of intermediate wrap (the paper's footnote 2 example is
  exercised in the tests).

Because ``2**B`` divides ``2**64``, letting NumPy's native ``int64``
arithmetic wrap and then reducing modulo ``2**B`` at the end is exactly
equivalent to wrapping after every add, so accumulation is both exact
in the modular sense and cheap.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["FixedFormat", "round_nearest_even"]


def round_nearest_even(x: np.ndarray | float) -> np.ndarray:
    """Round to the nearest integer, ties to even (the PPIP rounding rule).

    This is odd-symmetric (``round(-x) == -round(x)``), which is what
    makes the fixed-point integrator exactly time reversible.
    """
    return np.rint(x)


@dataclass(frozen=True)
class FixedFormat:
    """A signed fixed-point format with ``bits`` total bits.

    Representable values are ``k * 2**(1-bits)`` for integer
    ``k`` in ``[-2**(bits-1), 2**(bits-1))``.
    """

    bits: int

    def __post_init__(self) -> None:
        if not 2 <= self.bits <= 62:
            raise ValueError(f"bits must be in [2, 62], got {self.bits}")

    @property
    def scale(self) -> float:
        """Multiplier from real value in [-1,1) to integer code."""
        return float(1 << (self.bits - 1))

    @property
    def resolution(self) -> float:
        """Smallest representable increment, ``2**(1-bits)``."""
        return 1.0 / self.scale

    @property
    def min_code(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def max_code(self) -> int:
        return (1 << (self.bits - 1)) - 1

    # -- conversions ---------------------------------------------------

    def encode(self, x: np.ndarray | float) -> np.ndarray:
        """Quantize real values to integer codes (round-to-nearest-even).

        Values outside [-1, 1) wrap, exactly as the hardware's
        two's-complement datapath would.
        """
        codes = round_nearest_even(np.asarray(x, dtype=np.float64) * self.scale)
        return self.wrap(codes.astype(np.int64))

    def encode_clip(self, x: np.ndarray | float) -> np.ndarray:
        """Quantize with saturation instead of wrap (for table lookups)."""
        codes = round_nearest_even(np.asarray(x, dtype=np.float64) * self.scale)
        return np.clip(codes, self.min_code, self.max_code).astype(np.int64)

    def decode(self, codes: np.ndarray | int) -> np.ndarray:
        """Integer codes back to float64 values."""
        return np.asarray(codes, dtype=np.float64) * self.resolution

    # -- modular arithmetic --------------------------------------------

    def wrap(self, codes: np.ndarray | int) -> np.ndarray:
        """Reduce int64 values into this format's two's-complement range.

        ``wrap(a + b)`` equals the hardware result of adding ``a`` and
        ``b`` in *bits*-wide two's complement, for any int64 ``a``, ``b``
        (including values that already wrapped mod ``2**64``).
        """
        codes = np.asarray(codes, dtype=np.int64)
        half = np.int64(1) << np.int64(self.bits - 1)
        mask = (np.int64(1) << np.int64(self.bits)) - np.int64(1)
        # ((v + half) mod 2**bits) - half, computed with masking so it is
        # correct even when v + half wraps int64.
        return (((codes + half) & mask) - half).astype(np.int64)

    def add(self, a: np.ndarray | int, b: np.ndarray | int) -> np.ndarray:
        """Wrapping addition in this format."""
        with np.errstate(over="ignore"):
            s = np.asarray(a, dtype=np.int64) + np.asarray(b, dtype=np.int64)
        return self.wrap(s)

    def representable(self, codes: np.ndarray | int) -> np.ndarray:
        """Elementwise check that codes lie in the representable range."""
        codes = np.asarray(codes, dtype=np.int64)
        return (codes >= self.min_code) & (codes <= self.max_code)
