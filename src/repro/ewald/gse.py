"""Gaussian Split Ewald (GSE) — the paper's mesh electrostatics method.

GSE (Shan et al. 2005, ref [31]) replaces SPME's B-spline charge
assignment with *radially symmetric Gaussians*, which is what lets
Anton run charge spreading and force interpolation on the same
pairwise-point-interaction hardware as the range-limited forces
(Section 3.1): the interaction between an atom and a mesh point is a
table-driven function of the distance between them.

The splitting: the total screening Gaussian has width ``sigma``;
charges are spread onto the mesh with a narrower Gaussian ``sigma_s``
and forces interpolated back with the same ``sigma_s``, so the mesh
convolution carries the remaining width ``sigma² - 2 sigma_s²`` (which
must be positive).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ewald.kernels import choose_sigma
from repro.geometry import Box
from repro.util import COULOMB

__all__ = ["GSEParams", "GaussianSplitEwald"]


@dataclass(frozen=True)
class GSEParams:
    """Tunable parameters of a GSE evaluation.

    ``sigma`` is the total Ewald width (tied to the real-space cutoff),
    ``sigma_s`` the spreading/interpolation Gaussian, ``mesh`` the FFT
    grid, and ``spreading_cutoff`` the atom–mesh-point interaction
    radius (the paper's BPTI run used 7.1 A).
    """

    sigma: float
    sigma_s: float
    mesh: tuple[int, int, int]
    spreading_cutoff: float

    def __post_init__(self) -> None:
        if self.sigma**2 <= 2.0 * self.sigma_s**2:
            raise ValueError(
                f"need sigma^2 > 2 sigma_s^2 (got sigma={self.sigma}, sigma_s={self.sigma_s})"
            )
        if any(m < 4 for m in self.mesh):
            raise ValueError("mesh must be at least 4 points per axis")

    @classmethod
    def choose(
        cls,
        box: Box,
        cutoff: float,
        mesh: tuple[int, int, int],
        real_space_tolerance: float = 1e-5,
        sigma_s_factor: float = 0.5,
        spreading_radius_sigmas: float = 5.5,
        sigma_s_per_h: float = 1.05,
    ) -> "GSEParams":
        """Pick consistent GSE parameters for a cutoff and mesh.

        ``sigma`` comes from the real-space tolerance at the cutoff
        (larger cutoff -> larger sigma -> coarser mesh suffices: the
        Table 2 tradeoff).  ``sigma_s`` is a fixed fraction of sigma,
        floored at ``sigma_s_per_h`` mesh spacings so the grid resolves
        it (calibrated to land total force error in Table 4's 1e-5 to
        1e-4 band).
        """
        sigma = choose_sigma(cutoff, real_space_tolerance)
        h = float(np.max(box.lengths / np.asarray(mesh)))
        sigma_s = max(sigma_s_factor * sigma / math.sqrt(2.0), sigma_s_per_h * h)
        if sigma**2 <= 2.0 * sigma_s**2:
            raise ValueError(
                f"mesh {mesh} too coarse for cutoff {cutoff}: spreading "
                f"Gaussian {sigma_s:.2f} A cannot stay under sigma/sqrt(2)"
            )
        return cls(
            sigma=sigma,
            sigma_s=sigma_s,
            mesh=tuple(mesh),
            spreading_cutoff=spreading_radius_sigmas * sigma_s,
        )


class GaussianSplitEwald:
    """GSE k-space evaluator for a fixed box and parameter set.

    The pieces (spreading weights, mesh solve, interpolation) are
    exposed separately so the simulated machine can quantize and
    distribute each stage; :meth:`kspace` composes them for the
    single-process path.
    """

    def __init__(self, box: Box, params: GSEParams, fft_backend: str = "numpy"):
        self.box = box
        self.params = params
        self.mesh = np.asarray(params.mesh, dtype=np.int64)
        self.h = box.lengths / self.mesh
        self.cell_volume = float(np.prod(self.h))
        if fft_backend == "numpy":
            self._fftn = np.fft.fftn
            self._ifftn = np.fft.ifftn
        elif fft_backend == "radix2":
            from repro.fft import fft3d, ifft3d

            self._fftn = fft3d
            self._ifftn = ifft3d
        else:
            raise ValueError(f"unknown fft_backend {fft_backend!r}")
        self._green = self._build_green()
        self._offsets = self._build_offsets()

    # -- precomputation ---------------------------------------------------

    def _build_green(self) -> np.ndarray:
        """Mesh Green's function ke*(4 pi / V) exp(-(s²-2ss²)k²/2)/k²."""
        p = self.params
        L = self.box.lengths
        freqs = [2.0 * math.pi * np.fft.fftfreq(m, d=1.0 / m) / L[a] for a, m in enumerate(p.mesh)]
        KX, KY, KZ = np.meshgrid(*freqs, indexing="ij")
        k2 = KX**2 + KY**2 + KZ**2
        width = p.sigma**2 - 2.0 * p.sigma_s**2
        with np.errstate(divide="ignore", invalid="ignore"):
            g = np.exp(-width * k2 / 2.0) / k2
        g[0, 0, 0] = 0.0  # tinfoil boundary: drop k=0
        return COULOMB * (4.0 * math.pi / self.box.volume) * g

    def _build_offsets(self) -> np.ndarray:
        """Integer per-axis mesh offset ranges covering the cutoff."""
        nc = np.ceil(self.params.spreading_cutoff / self.h).astype(int)
        return nc

    # -- spreading ----------------------------------------------------------

    def _cube_weights(self, positions: np.ndarray):
        """Separable Gaussian stencil weights over the enclosing cube.

        Returns ``(flat, w, axis_d)`` with ``flat``/``w`` shaped
        (n, kx, ky, kz) and ``axis_d`` the three per-axis displacement
        arrays (n, ka).  The Gaussian is evaluated separably — one
        small exp per axis per stencil line, combined by outer
        product — the hot-path optimization that keeps charge
        spreading from dominating a time step.
        """
        positions = self.box.wrap(np.asarray(positions, dtype=np.float64))
        p = self.params
        n = len(positions)
        base = np.floor(positions / self.h).astype(np.int64)  # nearest-lower mesh pt
        nc = self._offsets
        inv_2ss2 = 1.0 / (2.0 * p.sigma_s**2)

        axis_w: list[np.ndarray] = []
        axis_d: list[np.ndarray] = []
        axis_idx: list[np.ndarray] = []
        for a in range(3):
            offs = np.arange(-nc[a], nc[a] + 1)
            cells = base[:, a : a + 1] + offs[None, :]  # (n, ka)
            disp = positions[:, a : a + 1] - cells * self.h[a]
            axis_d.append(disp)
            axis_w.append(np.exp(-(disp * disp) * inv_2ss2))
            axis_idx.append(np.mod(cells, self.mesh[a]))

        kx, ky, kz = (a.shape[1] for a in axis_w)
        norm = (2.0 * math.pi * p.sigma_s**2) ** -1.5 * self.cell_volume
        w = (
            axis_w[0][:, :, None, None]
            * axis_w[1][:, None, :, None]
            * axis_w[2][:, None, None, :]
        ) * norm
        r2 = (
            (axis_d[0] ** 2)[:, :, None, None]
            + (axis_d[1] ** 2)[:, None, :, None]
            + (axis_d[2] ** 2)[:, None, None, :]
        )
        w[r2 > p.spreading_cutoff**2] = 0.0
        flat = (
            (axis_idx[0] * self.mesh[1])[:, :, None, None]
            + axis_idx[1][:, None, :, None]
        ) * self.mesh[2] + axis_idx[2][:, None, None, :]
        flat = np.ascontiguousarray(np.broadcast_to(flat, (n, kx, ky, kz)))
        return flat, w, axis_d

    def spread_weights(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-atom mesh contributions.

        Returns ``(flat_idx, weights, disp)``: for each atom (axis 0)
        and stencil point (axis 1), the flattened mesh index, the
        Gaussian weight ``h³ g_{sigma_s}(d)`` (zero outside the
        spreading cutoff — the match-unit test), and the displacement
        vector from mesh point to atom.
        """
        flat4, w4, axis_d = self._cube_weights(positions)
        n, kx, ky, kz = w4.shape
        d = np.empty((n, kx * ky * kz, 3))
        d[:, :, 0] = np.broadcast_to(axis_d[0][:, :, None, None], (n, kx, ky, kz)).reshape(n, -1)
        d[:, :, 1] = np.broadcast_to(axis_d[1][:, None, :, None], (n, kx, ky, kz)).reshape(n, -1)
        d[:, :, 2] = np.broadcast_to(axis_d[2][:, None, None, :], (n, kx, ky, kz)).reshape(n, -1)
        return flat4.reshape(n, -1), w4.reshape(n, -1), d

    def spread(
        self, positions: np.ndarray, charges: np.ndarray, chunk: int = 4096, codec=None
    ) -> np.ndarray:
        """Charge-spread onto the mesh: ``Q[m] = sum_i q_i h³ g(r_m - r_i)``.

        With ``codec`` (a :class:`~repro.fixedpoint.ScaledFixed`), each
        contribution is quantized and summed in integer arithmetic, so
        the mesh is independent of atom order and of how spreading work
        is distributed over simulated nodes (the machine's
        parallel-invariance requirement).  Use
        :meth:`spread_contributions` to deposit subsets into a shared
        integer mesh.
        """
        if codec is not None:
            acc = np.zeros(int(np.prod(self.mesh)), dtype=np.int64)
            self.spread_contributions(positions, charges, acc, codec, chunk=chunk)
            return codec.reconstruct(codec.wrap(acc)).reshape(tuple(self.mesh))
        Q = np.zeros(int(np.prod(self.mesh)))
        charges = np.asarray(charges, dtype=np.float64)
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            flat, w, _ = self.spread_weights(positions[lo:hi])
            np.add.at(Q, flat.ravel(), (w * charges[lo:hi, None]).ravel())
        return Q.reshape(tuple(self.mesh))

    def spread_contributions(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        mesh_acc: np.ndarray,
        codec,
        chunk: int = 4096,
    ) -> None:
        """Deposit quantized spreading contributions into ``mesh_acc``.

        ``mesh_acc`` is a flat int64 accumulator; deposits commute, so
        any partition of atoms over callers yields identical bits.
        """
        charges = np.asarray(charges, dtype=np.float64)
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            flat, w, _ = self.spread_weights(positions[lo:hi])
            codes = codec.quantize_round_only(w * charges[lo:hi, None])
            with np.errstate(over="ignore"):
                np.add.at(mesh_acc, flat.ravel(), codes.ravel())

    # -- mesh solve -----------------------------------------------------------

    def solve(self, Q: np.ndarray) -> tuple[np.ndarray, float]:
        """Convolve mesh charge with the Green's function.

        Returns the potential mesh ``phi`` and the k-space energy
        ``E = 1/2 sum_m Q[m] phi[m]``.
        """
        Qhat = self._fftn(Q.astype(np.complex128))
        phi = np.real(self._ifftn(self._green * Qhat)) * Q.size
        energy = 0.5 * float(np.sum(Q * phi))
        return phi, energy

    # -- interpolation ----------------------------------------------------------

    def interpolate_potential(self, positions: np.ndarray, phi: np.ndarray) -> np.ndarray:
        """Per-atom potential ``phi_i = sum_m phi[m] h³ g(r_i - r_m)``."""
        flat, w, _ = self.spread_weights(positions)
        return np.sum(w * phi.ravel()[flat], axis=1)

    def interpolate_forces(
        self, positions: np.ndarray, charges: np.ndarray, phi: np.ndarray, chunk: int = 4096
    ) -> np.ndarray:
        """Force interpolation: ``F_i = q_i sum_m phi[m] w(d) d / sigma_s²``."""
        out = np.empty((len(positions), 3))
        charges = np.asarray(charges, dtype=np.float64)
        inv_ss2 = 1.0 / self.params.sigma_s**2
        phi_flat = phi.ravel()
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            flat, w, d = self.spread_weights(positions[lo:hi])
            coef = (w * phi_flat[flat])[..., None] * d * inv_ss2
            out[lo:hi] = charges[lo:hi, None] * np.sum(coef, axis=1)
        return out

    # -- composition ---------------------------------------------------------------

    def kspace(
        self, positions: np.ndarray, charges: np.ndarray, codec=None
    ) -> tuple[float, np.ndarray]:
        """Full k-space pass: spread, solve, interpolate.

        Returns (energy, forces).  Combine with the real-space sum,
        self energy, and excluded-pair corrections for total
        electrostatics.  ``codec`` enables order-invariant quantized
        spreading (see :meth:`spread`).

        When the weight arrays fit in a modest memory budget they are
        computed once and shared between the spreading and
        interpolation passes (they are identical by construction —
        the same radially symmetric kernel runs both on Anton's HTIS).
        """
        n = len(positions)
        k = int(np.prod(2 * self._offsets + 1))
        if n * k <= 16_000_000:
            flat, w, axis_d = self._cube_weights(positions)
            charges = np.asarray(charges, dtype=np.float64)
            contrib = w.reshape(n, -1) * charges[:, None]
            if codec is not None:
                acc = np.zeros(self.mesh_point_count(), dtype=np.int64)
                with np.errstate(over="ignore"):
                    np.add.at(acc, flat.reshape(n, -1).ravel(), codec.quantize_round_only(contrib).ravel())
                Q = codec.reconstruct(codec.wrap(acc)).reshape(tuple(self.mesh))
            else:
                Qf = np.zeros(self.mesh_point_count())
                np.add.at(Qf, flat.reshape(n, -1).ravel(), contrib.ravel())
                Q = Qf.reshape(tuple(self.mesh))
            phi, energy = self.solve(Q)
            g = w * phi.ravel()[flat]  # (n, kx, ky, kz)
            pref = charges / self.params.sigma_s**2
            forces = np.stack(
                [
                    pref * np.einsum("nxyz,nx->n", g, axis_d[0]),
                    pref * np.einsum("nxyz,ny->n", g, axis_d[1]),
                    pref * np.einsum("nxyz,nz->n", g, axis_d[2]),
                ],
                axis=1,
            )
            return energy, forces
        Q = self.spread(positions, charges, codec=codec)
        phi, energy = self.solve(Q)
        forces = self.interpolate_forces(positions, charges, phi)
        return energy, forces

    def mesh_point_count(self) -> int:
        return int(np.prod(self.mesh))

    def stencil_size(self) -> int:
        """Mesh points each atom touches (the charge-spreading workload).

        The stencil is the (2 nc + 1)³ cube enclosing the spreading
        sphere; weights outside the sphere are zeroed by the cutoff
        test but still counted as touched (the hardware's match units
        consider and reject them the same way).
        """
        return int(np.prod(2 * self._offsets + 1))
