"""Gaussian Split Ewald (GSE) — the paper's mesh electrostatics method.

GSE (Shan et al. 2005, ref [31]) replaces SPME's B-spline charge
assignment with *radially symmetric Gaussians*, which is what lets
Anton run charge spreading and force interpolation on the same
pairwise-point-interaction hardware as the range-limited forces
(Section 3.1): the interaction between an atom and a mesh point is a
table-driven function of the distance between them.

The splitting: the total screening Gaussian has width ``sigma``;
charges are spread onto the mesh with a narrower Gaussian ``sigma_s``
and forces interpolated back with the same ``sigma_s``, so the mesh
convolution carries the remaining width ``sigma² - 2 sigma_s²`` (which
must be positive).

Charge spreading and force interpolation share one
:class:`MeshStencilPlan` per evaluation: the separable axis weights
and mesh indices are computed once and reused by both passes (they are
identical by construction — the same radially symmetric kernel runs
both on Anton's HTIS), instead of being rebuilt per pass and, on the
serial machine backend, per owning node.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.ewald.kernels import choose_sigma
from repro.fixedpoint.accumulate import scatter_add_int64
from repro.geometry import Box
from repro.util import COULOMB

__all__ = ["GSEParams", "GaussianSplitEwald", "MeshStencilPlan"]

#: Default cap on plan storage, in elements (atoms x stencil points).
#: A plan stores ~12 bytes per element (float64 weight + int32 index),
#: so 16M elements is ~190 MB; above the cap :meth:`~GaussianSplitEwald
#: .make_plan` declines and callers fall back to chunked per-pass
#: evaluation (same kernels, same bits).
PLAN_MAX_ELEMENTS = 16_000_000

#: Atom rows per pass while filling a plan (bounds the r² scratch).
_PLAN_BUILD_CHUNK = 256

#: Atom rows per pass in the spreading / interpolation kernels (bounds
#: the per-chunk contribution buffers).  Chunking never changes bits:
#: the quantize/einsum arithmetic is per-atom and the scatters commute.
_KERNEL_CHUNK = 512


@dataclass(frozen=True)
class GSEParams:
    """Tunable parameters of a GSE evaluation.

    ``sigma`` is the total Ewald width (tied to the real-space cutoff),
    ``sigma_s`` the spreading/interpolation Gaussian, ``mesh`` the FFT
    grid, and ``spreading_cutoff`` the atom–mesh-point interaction
    radius (the paper's BPTI run used 7.1 A).
    """

    sigma: float
    sigma_s: float
    mesh: tuple[int, int, int]
    spreading_cutoff: float

    def __post_init__(self) -> None:
        if self.sigma**2 <= 2.0 * self.sigma_s**2:
            raise ValueError(
                f"need sigma^2 > 2 sigma_s^2 (got sigma={self.sigma}, sigma_s={self.sigma_s})"
            )
        if any(m < 4 for m in self.mesh):
            raise ValueError("mesh must be at least 4 points per axis")

    @classmethod
    def choose(
        cls,
        box: Box,
        cutoff: float,
        mesh: tuple[int, int, int],
        real_space_tolerance: float = 1e-5,
        sigma_s_factor: float = 0.5,
        spreading_radius_sigmas: float = 5.5,
        sigma_s_per_h: float = 1.05,
    ) -> "GSEParams":
        """Pick consistent GSE parameters for a cutoff and mesh.

        ``sigma`` comes from the real-space tolerance at the cutoff
        (larger cutoff -> larger sigma -> coarser mesh suffices: the
        Table 2 tradeoff).  ``sigma_s`` is a fixed fraction of sigma,
        floored at ``sigma_s_per_h`` mesh spacings so the grid resolves
        it (calibrated to land total force error in Table 4's 1e-5 to
        1e-4 band).
        """
        sigma = choose_sigma(cutoff, real_space_tolerance)
        h = float(np.max(box.lengths / np.asarray(mesh)))
        sigma_s = max(sigma_s_factor * sigma / math.sqrt(2.0), sigma_s_per_h * h)
        if sigma**2 <= 2.0 * sigma_s**2:
            raise ValueError(
                f"mesh {mesh} too coarse for cutoff {cutoff}: spreading "
                f"Gaussian {sigma_s:.2f} A cannot stay under sigma/sqrt(2)"
            )
        return cls(
            sigma=sigma,
            sigma_s=sigma_s,
            mesh=tuple(mesh),
            spreading_cutoff=spreading_radius_sigmas * sigma_s,
        )


class MeshStencilPlan:
    """Shared stencil weights/indices for one set of atom positions.

    Built once per mesh evaluation and reused by charge spreading,
    force interpolation, and potential interpolation.  Storage per atom
    is the masked 4-D weight cube ``w`` (n, kx, ky, kz), the flattened
    mesh indices ``flat`` (n, k) — int32 when the mesh fits, halving
    gather/scatter index traffic — and the three per-axis displacement
    rows ``axis_d`` used by the separable force contraction.  The full
    ``(n, k, 3)`` displacement tensor of the old per-pass path is never
    materialized.

    Every kernel is strictly per-atom arithmetic followed by a
    commutative reduction (integer scatter, float bincount in element
    order, or an einsum/sum over each atom's own stencil row), so the
    results are bitwise independent of how callers chunk or partition
    the ``rows`` they pass — the machine's parallel-invariance
    requirement.
    """

    __slots__ = ("gse", "n", "shape", "flat", "w", "axis_d", "_scratch", "_mt_views")

    def __init__(self, gse: "GaussianSplitEwald", n: int):
        kx, ky, kz = (int(2 * c + 1) for c in gse._offsets)
        self.gse = gse
        self.n = int(n)
        self.shape = (kx, ky, kz)
        idx_t = np.int32 if gse.mesh_point_count() <= np.iinfo(np.int32).max else np.int64
        self.flat = np.empty((self.n, kx * ky * kz), dtype=idx_t)
        self.w = np.empty((self.n, kx, ky, kz))
        self.axis_d = [np.empty((self.n, k)) for k in (kx, ky, kz)]
        self._scratch: np.ndarray | None = None
        self._mt_views = None

    def _buffer(self, chunk: int) -> np.ndarray:
        """Reusable (chunk, k) contribution buffer.

        Shared by the spreading and interpolation kernels (they never
        run concurrently) and kept across steps when the plan storage
        is reused, so the hot loops touch warm pages instead of
        faulting fresh allocations every evaluation.
        """
        k = self.flat.shape[1]
        if self._scratch is None or self._scratch.shape[0] < chunk:
            self._scratch = np.empty((chunk, k))
        return self._scratch

    # -- construction ------------------------------------------------------

    def build(self, positions: np.ndarray, kernels=None) -> "MeshStencilPlan":
        """Fill the plan for ``positions`` (row i of every array is atom i).

        With a compiled kernel suite, the heavy cube fill (weight outer
        product, r² mask, flattened indices — the only O(n·k³) work)
        runs as one fused C pass per chunk; the small per-axis arrays
        (``np.exp`` weights, displacements, wrapped indices) stay in
        NumPy, which keeps the bits trivially identical.
        """
        g = self.gse
        p = g.params
        kx, ky, kz = self.shape
        mesh = [int(m) for m in g.mesh]
        inv_2ss2 = 1.0 / (2.0 * p.sigma_s**2)
        norm = g._spread_norm
        c2 = p.spreading_cutoff**2
        positions = g.box.wrap(np.asarray(positions, dtype=np.float64))
        offs = [np.arange(-c, c + 1) for c in g._offsets]
        flat4 = self.flat.reshape(self.n, kx, ky, kz)
        use_c = (
            kernels is not None
            and kernels.tier == "compiled"
            and self.flat.dtype == np.int32
        )
        scratch = None
        if not use_c:
            scratch = np.empty((min(_PLAN_BUILD_CHUNK, self.n), kx, ky, kz))
        for lo in range(0, self.n, _PLAN_BUILD_CHUNK):
            hi = min(lo + _PLAN_BUILD_CHUNK, self.n)
            pos = positions[lo:hi]
            base = np.floor(pos / g.h).astype(np.int64)  # nearest-lower mesh pt
            axis_w, axis_d, axis_i = [], [], []
            for a in range(3):
                cells = base[:, a : a + 1] + offs[a][None, :]  # (m, ka)
                disp = pos[:, a : a + 1] - cells * g.h[a]
                self.axis_d[a][lo:hi] = disp
                axis_d.append(disp)
                axis_w.append(np.exp(-(disp * disp) * inv_2ss2))
                axis_i.append(np.mod(cells, g.mesh[a]).astype(self.flat.dtype))
            if use_c:
                kernels.mesh_plan_block(
                    axis_w[0] * norm, axis_w[1], axis_w[2],
                    axis_d[0], axis_d[1], axis_d[2],
                    axis_i[0], axis_i[1], axis_i[2],
                    mesh[1], mesh[2], c2,
                    self.w[lo:hi], flat4[lo:hi],
                )
                continue
            # Weights: two outer products, the big one written in place
            # (einsum's specialized outer loop beats the stride-0
            # broadcast multiply; each element is the same single
            # product either way, so the bits are unchanged).
            wv = self.w[lo:hi]
            wxy = (axis_w[0] * norm)[:, :, None] * axis_w[1][:, None, :]
            np.einsum("nxy,nz->nxyz", wxy, axis_w[2], out=wv)
            # Spherical cutoff mask on r² = (dx²+dy²)+dz² (this exact
            # association order also classifies the dense reference, so
            # masked entries agree bit for bit).
            d2 = [d * d for d in axis_d]
            r2 = scratch[: hi - lo]
            r2xy = d2[0][:, :, None] + d2[1][:, None, :]
            np.add(r2xy[:, :, :, None], d2[2][:, None, None, :], out=r2)
            np.multiply(wv, r2 <= c2, out=wv)
            # Flattened mesh indices, x-major to match the mesh layout.
            fxy = axis_i[0][:, :, None] * mesh[1] + axis_i[1][:, None, :]
            np.add(
                fxy[:, :, :, None] * mesh[2],
                axis_i[2][:, None, None, :],
                out=flat4[lo:hi],
            )
        return self

    def rows_view(self, lo: int, hi: int) -> "MeshStencilPlan":
        """Zero-copy plan over the contiguous atom rows ``[lo, hi)``.

        The view shares this plan's storage (it stays valid across
        in-place :meth:`build` refills) and runs every kernel exactly as
        a standalone plan over those atoms would: chunk loops restart at
        the view's first row, which is what makes the chunk-*sensitive*
        float spreading path of a stacked-replica mesh bitwise equal to
        each replica's solo evaluation.  Do not call :meth:`build` on a
        view; rebuild the parent.
        """
        v = MeshStencilPlan.__new__(MeshStencilPlan)
        v.gse = self.gse
        v.n = int(hi - lo)
        v.shape = self.shape
        v.flat = self.flat[lo:hi]
        v.w = self.w[lo:hi]
        v.axis_d = [a[lo:hi] for a in self.axis_d]
        v._scratch = None
        v._mt_views = None
        return v

    def _thread_views(self, nblocks: int):
        """Cached contiguous row-block views for threaded interpolation.

        Views share plan storage, so they stay valid across in-place
        :meth:`build` refills; each keeps its own ``_scratch``, which
        preserves the zero-allocation steady state per worker thread.
        """
        bounds = tuple(i * self.n // nblocks for i in range(nblocks + 1))
        if self._mt_views is None or self._mt_views[0] != bounds:
            views = [
                self.rows_view(bounds[b], bounds[b + 1]) for b in range(nblocks)
            ]
            self._mt_views = (bounds, views)
        return self._mt_views

    # -- kernels -----------------------------------------------------------

    def _take(self, arr: np.ndarray, rows, lo: int, hi: int) -> np.ndarray:
        """Chunk ``arr`` by position (all rows) or by a ``rows`` subset."""
        return arr[lo:hi] if rows is None else arr[rows[lo:hi]]

    def spread_codes(
        self, charges: np.ndarray, mesh_acc: np.ndarray, codec,
        rows=None, chunk: int = _KERNEL_CHUNK, kernels=None,
    ) -> None:
        """Quantize and scatter ``w · q`` into the flat int64 mesh.

        Codes are ``rint(w * (q * scale / limit))`` — per-atom
        arithmetic, so the partition of ``rows`` across callers cannot
        change any code — and the scatter is bincount-based: whenever
        every per-slice bin sum provably fits float64's 2⁵³ integer
        window the integral codes are summed directly by one float64
        ``np.bincount`` per slice (exact, and bitwise equal to
        ``np.add.at`` because integer sums commute); codes too large
        for that window take :func:`scatter_add_int64`'s split-word
        path instead.
        """
        charges = np.asarray(charges, dtype=np.float64)
        qc = charges * (codec.fmt.scale / codec.limit)
        w2 = self.w.reshape(self.n, -1)
        k = w2.shape[1]
        n_rows = self.n if rows is None else len(rows)
        if n_rows == 0:
            return
        if kernels is not None and kernels.tier == "compiled" and rows is None:
            # One C pass: rint(w * qc) scattered by integer adds.
            # Integer sums commute, so this matches both bincount paths
            # below bit for bit, with no exactness-window analysis.
            kernels.mesh_spread(mesh_acc, self.flat, w2, qc)
            return
        # |code| <= max|w| * max|q·scale/limit| + 1/2 (rint); the +1.0
        # over-covers.  A slice of r rows contributes at most r·k codes
        # to one bin, so r·k·bound < 2**53 keeps every partial sum an
        # exact float64 integer.
        bound = self.gse._spread_norm * float(np.max(np.abs(qc))) + 1.0
        exact_rows = int(2.0**52 / (bound * k))
        if exact_rows >= 1:
            chunk = max(1, min(chunk, exact_rows))
            buf = self._buffer(chunk)
            for lo in range(0, n_rows, chunk):
                hi = min(lo + chunk, n_rows)
                b = buf[: hi - lo]
                np.multiply(
                    self._take(w2, rows, lo, hi),
                    self._take(qc, rows, lo, hi)[:, None],
                    out=b,
                )
                np.rint(b, out=b)
                part = np.bincount(
                    self._take(self.flat, rows, lo, hi).ravel(),
                    weights=b.ravel(),
                    minlength=mesh_acc.shape[0],
                )
                with np.errstate(over="ignore"):
                    mesh_acc += part.astype(np.int64)
            return
        for lo in range(0, n_rows, chunk):
            hi = min(lo + chunk, n_rows)
            buf = self._take(w2, rows, lo, hi) * self._take(qc, rows, lo, hi)[:, None]
            np.rint(buf, out=buf)
            scatter_add_int64(
                mesh_acc, self._take(self.flat, rows, lo, hi), buf.astype(np.int64)
            )

    def spread_float(
        self, charges: np.ndarray, mesh: np.ndarray,
        rows=None, chunk: int = _KERNEL_CHUNK,
    ) -> None:
        """Unquantized spreading into the flat float64 ``mesh``."""
        charges = np.asarray(charges, dtype=np.float64)
        w2 = self.w.reshape(self.n, -1)
        n_rows = self.n if rows is None else len(rows)
        buf = self._buffer(chunk)
        for lo in range(0, n_rows, chunk):
            hi = min(lo + chunk, n_rows)
            b = buf[: hi - lo]
            np.multiply(
                self._take(w2, rows, lo, hi),
                self._take(charges, rows, lo, hi)[:, None],
                out=b,
            )
            mesh += np.bincount(
                self._take(self.flat, rows, lo, hi).ravel(),
                weights=b.ravel(),
                minlength=mesh.shape[0],
            )

    def interpolate_forces(
        self, charges: np.ndarray, phi: np.ndarray,
        rows=None, out=None, chunk: int = _KERNEL_CHUNK,
        kernels=None,
    ) -> np.ndarray:
        """Separable gather-and-contract force interpolation.

        Gathers ``phi`` at the stencil indices, multiplies by the
        weight cube, and contracts each axis factor with an einsum —
        the ``(n, k, 3)`` displacement/coefficient tensors of the old
        path are never built.  Each atom's contraction runs over its
        own fixed-size stencil row, so chunk and subset boundaries are
        invisible in the bits — which is also what licenses the
        threaded path below: contiguous row blocks are farmed to a
        kernel suite's thread pool, and partition-invariance makes the
        result byte-identical to the serial sweep.
        """
        g = self.gse
        charges = np.asarray(charges, dtype=np.float64)
        phi_flat = phi.ravel()
        n_rows = self.n if rows is None else len(rows)
        if out is None:
            out = np.empty((n_rows, 3))
        nthreads = getattr(kernels, "threads", 1)
        if nthreads > 1 and rows is None and self.n >= 2 * nthreads:
            bounds, views = self._thread_views(nthreads)

            def _run(b):
                lo, hi = bounds[b], bounds[b + 1]
                if hi > lo:
                    views[b].interpolate_forces(
                        charges[lo:hi], phi, out=out[lo:hi], chunk=chunk
                    )

            kernels.map_chunks(_run, nthreads)
            return out
        kx, ky, kz = self.shape
        w2 = self.w.reshape(self.n, -1)
        buf = self._buffer(chunk)
        for lo in range(0, n_rows, chunk):
            hi = min(lo + chunk, n_rows)
            m = hi - lo
            cube2 = buf[:m]
            # mode="clip" skips the bounds-check path (indices are
            # in-range by construction: the plan wraps them with mod).
            np.take(phi_flat, self._take(self.flat, rows, lo, hi), out=cube2, mode="clip")
            cube2 *= self._take(w2, rows, lo, hi)
            dz = self._take(self.axis_d[2], rows, lo, hi)
            # One pass over the cube: contract z against [1, dz] with a
            # per-atom fixed-shape matmul, leaving the small (m, kx, ky)
            # partials s0 = sum_z g and s1 = sum_z g·dz.  Each atom's
            # matmul has the same (kx·ky, kz)x(kz, 2) shape no matter
            # how rows are chunked, so the bits are partition-invariant.
            B = np.empty((m, kz, 2))
            B[:, :, 0] = 1.0
            B[:, :, 1] = dz
            s = np.matmul(cube2.reshape(m, kx * ky, kz), B)
            s3 = s.reshape(m, kx, ky, 2)
            pref = self._take(charges, rows, lo, hi) / g.params.sigma_s**2
            out[lo:hi, 0] = pref * np.einsum(
                "nxy,nx->n", s3[..., 0], self._take(self.axis_d[0], rows, lo, hi)
            )
            out[lo:hi, 1] = pref * np.einsum(
                "nxy,ny->n", s3[..., 0], self._take(self.axis_d[1], rows, lo, hi)
            )
            out[lo:hi, 2] = pref * np.einsum("nxy->n", s3[..., 1])
        return out

    def interpolate_potential(
        self, phi: np.ndarray, rows=None, chunk: int = _KERNEL_CHUNK
    ) -> np.ndarray:
        """Per-atom potential ``phi_i = sum_m phi[m] w_im``."""
        phi_flat = phi.ravel()
        w2 = self.w.reshape(self.n, -1)
        n_rows = self.n if rows is None else len(rows)
        out = np.empty(n_rows)
        buf = self._buffer(chunk)
        for lo in range(0, n_rows, chunk):
            hi = min(lo + chunk, n_rows)
            b = buf[: hi - lo]
            np.take(phi_flat, self._take(self.flat, rows, lo, hi), out=b, mode="clip")
            b *= self._take(w2, rows, lo, hi)
            out[lo:hi] = np.sum(b, axis=1)
        return out


class GaussianSplitEwald:
    """GSE k-space evaluator for a fixed box and parameter set.

    The pieces (spreading weights, mesh solve, interpolation) are
    exposed separately so the simulated machine can quantize and
    distribute each stage; :meth:`kspace` composes them for the
    single-process path.  All of them run on :class:`MeshStencilPlan`
    kernels, so the chunked wrappers here and a caller-held shared plan
    produce identical bits by construction.
    """

    def __init__(self, box: Box, params: GSEParams, fft_backend: str = "numpy"):
        self.box = box
        self.params = params
        self.mesh = np.asarray(params.mesh, dtype=np.int64)
        self.h = box.lengths / self.mesh
        self.cell_volume = float(np.prod(self.h))
        if fft_backend == "numpy":
            self._fftn = np.fft.fftn
            self._ifftn = np.fft.ifftn
        elif fft_backend == "radix2":
            from repro.fft import fft3d, ifft3d

            self._fftn = fft3d
            self._ifftn = ifft3d
        else:
            raise ValueError(f"unknown fft_backend {fft_backend!r}")
        self._green = self._build_green()
        self._offsets = self._build_offsets()
        #: Peak spreading weight ``h³ g_{sigma_s}(0)`` — the stencil
        #: normalization, and the |w| bound the quantized scatter uses
        #: to prove its float64 bin sums exact.
        self._spread_norm = (
            2.0 * math.pi * params.sigma_s**2
        ) ** -1.5 * self.cell_volume

    # -- precomputation ---------------------------------------------------

    def _build_green(self) -> np.ndarray:
        """Mesh Green's function ke*(4 pi / V) exp(-(s²-2ss²)k²/2)/k²."""
        p = self.params
        L = self.box.lengths
        freqs = [2.0 * math.pi * np.fft.fftfreq(m, d=1.0 / m) / L[a] for a, m in enumerate(p.mesh)]
        KX, KY, KZ = np.meshgrid(*freqs, indexing="ij")
        k2 = KX**2 + KY**2 + KZ**2
        width = p.sigma**2 - 2.0 * p.sigma_s**2
        with np.errstate(divide="ignore", invalid="ignore"):
            g = np.exp(-width * k2 / 2.0) / k2
        g[0, 0, 0] = 0.0  # tinfoil boundary: drop k=0
        return COULOMB * (4.0 * math.pi / self.box.volume) * g

    def _build_offsets(self) -> np.ndarray:
        """Integer per-axis mesh offset ranges covering the cutoff."""
        nc = np.ceil(self.params.spreading_cutoff / self.h).astype(int)
        return nc

    # -- stencil plan -------------------------------------------------------

    def make_plan(
        self,
        positions: np.ndarray,
        out: MeshStencilPlan | None = None,
        max_elements: int | None = PLAN_MAX_ELEMENTS,
        kernels=None,
    ) -> MeshStencilPlan | None:
        """Build (or refill) the shared stencil plan for ``positions``.

        Returns ``None`` when the plan would exceed ``max_elements``
        (callers then fall back to the chunked per-pass wrappers, which
        run the same kernels and therefore the same bits).  Pass a
        previous plan as ``out`` to reuse its storage across steps, and
        a kernel suite as ``kernels`` to fill it with the compiled cube
        pass (bitwise identical either way).
        """
        n = len(positions)
        if max_elements is not None and n * self.stencil_size() > max_elements:
            return None
        if out is None or out.n != n or out.gse is not self:
            out = MeshStencilPlan(self, n)
        return out.build(positions, kernels=kernels)

    # -- spreading ----------------------------------------------------------

    def spread_weights(self, positions: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Per-atom mesh contributions.

        Returns ``(flat_idx, weights, disp)``: for each atom (axis 0)
        and stencil point (axis 1), the flattened mesh index, the
        Gaussian weight ``h³ g_{sigma_s}(d)`` (zero outside the
        spreading cutoff — the match-unit test), and the displacement
        vector from mesh point to atom.

        This is the dense compatibility view of :class:`MeshStencilPlan`
        (the ``disp`` tensor is materialized here and only here); the
        hot paths hold the plan instead.
        """
        plan = self.make_plan(positions, max_elements=None)
        n = plan.n
        kx, ky, kz = plan.shape
        d = np.empty((n, kx * ky * kz, 3))
        d[:, :, 0] = np.broadcast_to(
            plan.axis_d[0][:, :, None, None], (n, kx, ky, kz)
        ).reshape(n, -1)
        d[:, :, 1] = np.broadcast_to(
            plan.axis_d[1][:, None, :, None], (n, kx, ky, kz)
        ).reshape(n, -1)
        d[:, :, 2] = np.broadcast_to(
            plan.axis_d[2][:, None, None, :], (n, kx, ky, kz)
        ).reshape(n, -1)
        return plan.flat, plan.w.reshape(n, -1), d

    def spread(
        self, positions: np.ndarray, charges: np.ndarray, chunk: int = 4096, codec=None
    ) -> np.ndarray:
        """Charge-spread onto the mesh: ``Q[m] = sum_i q_i h³ g(r_m - r_i)``.

        With ``codec`` (a :class:`~repro.fixedpoint.ScaledFixed`), each
        contribution is quantized and summed in integer arithmetic, so
        the mesh is independent of atom order and of how spreading work
        is distributed over simulated nodes (the machine's
        parallel-invariance requirement).  Use
        :meth:`spread_contributions` to deposit subsets into a shared
        integer mesh.
        """
        if codec is not None:
            acc = np.zeros(self.mesh_point_count(), dtype=np.int64)
            self.spread_contributions(positions, charges, acc, codec, chunk=chunk)
            return codec.reconstruct(codec.wrap(acc)).reshape(tuple(self.mesh))
        Q = np.zeros(self.mesh_point_count())
        charges = np.asarray(charges, dtype=np.float64)
        plan = None
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            plan = self.make_plan(positions[lo:hi], out=plan, max_elements=None)
            plan.spread_float(charges[lo:hi], Q)
        return Q.reshape(tuple(self.mesh))

    def spread_contributions(
        self,
        positions: np.ndarray,
        charges: np.ndarray,
        mesh_acc: np.ndarray,
        codec,
        chunk: int = 4096,
    ) -> None:
        """Deposit quantized spreading contributions into ``mesh_acc``.

        ``mesh_acc`` is a flat int64 accumulator; deposits commute, so
        any partition of atoms over callers yields identical bits.
        """
        charges = np.asarray(charges, dtype=np.float64)
        plan = None
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            plan = self.make_plan(positions[lo:hi], out=plan, max_elements=None)
            plan.spread_codes(charges[lo:hi], mesh_acc, codec)

    # -- mesh solve -----------------------------------------------------------

    def solve(self, Q: np.ndarray) -> tuple[np.ndarray, float]:
        """Convolve mesh charge with the Green's function.

        Returns the potential mesh ``phi`` and the k-space energy
        ``E = 1/2 sum_m Q[m] phi[m]``.
        """
        Qhat = self._fftn(Q.astype(np.complex128))
        phi = np.real(self._ifftn(self._green * Qhat)) * Q.size
        energy = 0.5 * float(np.sum(Q * phi))
        return phi, energy

    def solve_stack(self, Qs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`solve` over a ``(R, *mesh)`` charge stack.

        One FFT/convolution/inverse-FFT pass covers all R replica
        meshes.  NumPy's pocketfft transforms each trailing-axes block
        independently, so every replica's potential mesh is bitwise the
        slice a solo :meth:`solve` returns (pinned by the property
        tests); per-replica energies are summed over each contiguous
        ``Q[r] * phi[r]`` block exactly as solo.  Backends without a
        batched transform (radix2) fall back to a per-replica loop of
        the identical solo solve.
        """
        if self._fftn is not np.fft.fftn:
            phis = np.empty_like(Qs)
            energies = np.empty(len(Qs))
            for r in range(len(Qs)):
                phis[r], energies[r] = self.solve(Qs[r])
            return phis, energies
        Qhat = np.fft.fftn(Qs.astype(np.complex128), axes=(1, 2, 3))
        phi = np.real(np.fft.ifftn(self._green[None] * Qhat, axes=(1, 2, 3)))
        phi = phi * float(Qs[0].size)
        energies = np.array(
            [0.5 * float(np.sum(Qs[r] * phi[r])) for r in range(len(Qs))]
        )
        return phi, energies

    # -- interpolation ----------------------------------------------------------

    def interpolate_potential(
        self, positions: np.ndarray, phi: np.ndarray, chunk: int = 4096
    ) -> np.ndarray:
        """Per-atom potential ``phi_i = sum_m phi[m] h³ g(r_i - r_m)``.

        Chunked like :meth:`spread` / :meth:`interpolate_forces` so the
        weight buffers never exceed ``chunk`` atoms' worth of memory.
        """
        out = np.empty(len(positions))
        plan = None
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            plan = self.make_plan(positions[lo:hi], out=plan, max_elements=None)
            out[lo:hi] = plan.interpolate_potential(phi)
        return out

    def interpolate_forces(
        self, positions: np.ndarray, charges: np.ndarray, phi: np.ndarray, chunk: int = 4096
    ) -> np.ndarray:
        """Force interpolation: ``F_i = q_i sum_m phi[m] w(d) d / sigma_s²``."""
        out = np.empty((len(positions), 3))
        charges = np.asarray(charges, dtype=np.float64)
        plan = None
        for lo in range(0, len(positions), chunk):
            hi = min(lo + chunk, len(positions))
            plan = self.make_plan(positions[lo:hi], out=plan, max_elements=None)
            plan.interpolate_forces(charges[lo:hi], phi, out=out[lo:hi])
        return out

    # -- composition ---------------------------------------------------------------

    def kspace(
        self, positions: np.ndarray, charges: np.ndarray, codec=None
    ) -> tuple[float, np.ndarray]:
        """Full k-space pass: spread, solve, interpolate.

        Returns (energy, forces).  Combine with the real-space sum,
        self energy, and excluded-pair corrections for total
        electrostatics.  ``codec`` enables order-invariant quantized
        spreading (see :meth:`spread`).

        When the stencil plan fits the memory budget it is built once
        and shared between the spreading and interpolation passes;
        above the budget the chunked wrappers run the identical kernels
        piecewise.
        """
        plan = self.make_plan(positions)
        if plan is None:
            Q = self.spread(positions, charges, codec=codec)
            phi, energy = self.solve(Q)
            return energy, self.interpolate_forces(positions, charges, phi)
        charges = np.asarray(charges, dtype=np.float64)
        if codec is not None:
            acc = np.zeros(self.mesh_point_count(), dtype=np.int64)
            plan.spread_codes(charges, acc, codec)
            Q = codec.reconstruct(codec.wrap(acc)).reshape(tuple(self.mesh))
        else:
            Qf = np.zeros(self.mesh_point_count())
            plan.spread_float(charges, Qf)
            Q = Qf.reshape(tuple(self.mesh))
        phi, energy = self.solve(Q)
        return energy, plan.interpolate_forces(charges, phi)

    def mesh_point_count(self) -> int:
        return int(np.prod(self.mesh))

    def stencil_size(self) -> int:
        """Mesh points each atom touches (the charge-spreading workload).

        The stencil is the (2 nc + 1)³ cube enclosing the spreading
        sphere; weights outside the sphere are zeroed by the cutoff
        test but still counted as touched (the hardware's match units
        consider and reject them the same way).
        """
        return int(np.prod(2 * self._offsets + 1))
