"""Smooth Particle Mesh Ewald (SPME) — the commodity-code baseline.

"Most high-performance codes use the Smooth Particle Mesh Ewald (SPME)
algorithm, in which the interaction between an atom and a mesh point is
based on B-spline interpolation" (Section 3.1) — a *separable*,
non-radial functional form that cannot run on Anton's pairwise
pipelines.  We implement it as the baseline for the GSE-vs-SPME
ablation: same Ewald split, different mesh machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.geometry import Box
from repro.util import COULOMB

__all__ = ["SPMEParams", "SmoothPME", "bspline"]


def bspline(u: np.ndarray, order: int) -> np.ndarray:
    """Cardinal B-spline M_order(u), supported on [0, order]."""
    if order < 2:
        raise ValueError("order must be >= 2")
    return _bspline_rec(np.asarray(u, dtype=np.float64), order)


def _bspline_rec(u: np.ndarray, order: int) -> np.ndarray:
    if order == 1:
        return np.where((u >= 0) & (u < 1), 1.0, 0.0)
    if order == 2:
        return np.where((u >= 0) & (u <= 2), 1.0 - np.abs(u - 1.0), 0.0)
    return (u * _bspline_rec(u, order - 1) + (order - u) * _bspline_rec(u - 1.0, order - 1)) / (
        order - 1
    )


def bspline_derivative(u: np.ndarray, order: int) -> np.ndarray:
    """dM_order/du = M_{order-1}(u) - M_{order-1}(u-1)."""
    return _bspline_rec(u, order - 1) - _bspline_rec(u - 1.0, order - 1)


@dataclass(frozen=True)
class SPMEParams:
    """SPME configuration: Ewald sigma, mesh, and B-spline order."""

    sigma: float
    mesh: tuple[int, int, int]
    order: int = 4

    def __post_init__(self) -> None:
        if self.order < 3:
            raise ValueError("SPME needs order >= 3 for continuous forces")
        if any(m < self.order for m in self.mesh):
            raise ValueError("mesh must be at least `order` points per axis")


class SmoothPME:
    """SPME k-space evaluator for a fixed box and parameter set."""

    def __init__(self, box: Box, params: SPMEParams):
        self.box = box
        self.params = params
        self.mesh = np.asarray(params.mesh, dtype=np.int64)
        self._bg = self._build_influence()

    def _build_influence(self) -> np.ndarray:
        """B(m) * G(k): Euler-spline deconvolution times Green function."""
        p = self.params
        L = self.box.lengths
        factors = []
        for axis in range(3):
            K = p.mesh[axis]
            m = np.arange(K)
            ks = np.arange(p.order - 1)
            denom = bspline(ks + 1.0, p.order)[None, :] * np.exp(
                2j * math.pi * np.outer(m, ks) / K
            )
            b = np.exp(2j * math.pi * (p.order - 1) * m / K) / denom.sum(axis=1)
            factors.append(np.abs(b) ** 2)
        BX, BY, BZ = np.meshgrid(*factors, indexing="ij")
        B = BX * BY * BZ

        freqs = [2.0 * math.pi * np.fft.fftfreq(m, d=1.0 / m) / L[a] for a, m in enumerate(p.mesh)]
        KX, KY, KZ = np.meshgrid(*freqs, indexing="ij")
        k2 = KX**2 + KY**2 + KZ**2
        with np.errstate(divide="ignore", invalid="ignore"):
            g = np.exp(-(p.sigma**2) * k2 / 2.0) / k2
        g[0, 0, 0] = 0.0
        return COULOMB * (4.0 * math.pi / self.box.volume) * g * B

    # -- charge assignment ----------------------------------------------

    def _stencil(self, positions: np.ndarray):
        """Per-atom grid indices and separable spline weights."""
        p = self.params
        u = self.box.fractional(positions) * self.mesh  # grid units
        base = np.floor(u).astype(np.int64)
        offs = np.arange(p.order)
        # Axis k grid points: base - order + 1 + offs ... base; spline
        # argument u - k lands in (0, order).
        idx = base[:, None, :] - (p.order - 1) + offs[None, :, None]  # (n, order, 3)
        arg = u[:, None, :] - idx  # in (0, order)
        w = _bspline_rec(arg, p.order)
        dw = bspline_derivative(arg, p.order)
        idx_wrapped = np.mod(idx, self.mesh)
        return idx_wrapped, w, dw

    def spread(self, positions: np.ndarray, charges: np.ndarray) -> np.ndarray:
        """Assign charges to the mesh with separable B-spline weights."""
        idx, w, _ = self._stencil(positions)
        Q = np.zeros(tuple(self.mesh))
        p = self.params.order
        n = len(positions)
        # Outer product of the three axis stencils per atom.
        wx = w[:, :, 0][:, :, None, None]
        wy = w[:, :, 1][:, None, :, None]
        wz = w[:, :, 2][:, None, None, :]
        weights = (wx * wy * wz) * np.asarray(charges)[:, None, None, None]
        ix = idx[:, :, 0][:, :, None, None]
        iy = idx[:, :, 1][:, None, :, None]
        iz = idx[:, :, 2][:, None, None, :]
        flat = ((ix * self.mesh[1] + iy) * self.mesh[2] + iz)
        flat = np.broadcast_to(flat, (n, p, p, p))
        np.add.at(Q.reshape(-1), flat.ravel(), weights.ravel())
        return Q

    # -- evaluation ---------------------------------------------------------

    def kspace(self, positions: np.ndarray, charges: np.ndarray) -> tuple[float, np.ndarray]:
        """K-space energy and forces via the SPME convolution."""
        charges = np.asarray(charges, dtype=np.float64)
        Q = self.spread(positions, charges)
        Qhat = np.fft.fftn(Q)
        energy = 0.5 * float(np.sum(self._bg * np.abs(Qhat) ** 2))
        conv = np.real(np.fft.ifftn(self._bg * Qhat)) * Q.size

        idx, w, dw = self._stencil(positions)
        p = self.params.order
        n = len(positions)
        ix = np.broadcast_to(idx[:, :, 0][:, :, None, None], (n, p, p, p))
        iy = np.broadcast_to(idx[:, :, 1][:, None, :, None], (n, p, p, p))
        iz = np.broadcast_to(idx[:, :, 2][:, None, None, :], (n, p, p, p))
        phi = conv[ix, iy, iz]
        wx, wy, wz = (w[:, :, a] for a in range(3))
        dwx, dwy, dwz = (dw[:, :, a] for a in range(3))
        # dE/dx_i = q_i * sum over stencil dQ/dx * conv; grid-unit chain
        # rule brings a mesh/L factor per axis.
        scale = self.mesh / self.box.lengths
        fx = np.einsum("na,nb,nc,nabc->n", dwx, wy, wz, phi) * scale[0]
        fy = np.einsum("na,nb,nc,nabc->n", wx, dwy, wz, phi) * scale[1]
        fz = np.einsum("na,nb,nc,nabc->n", wx, wy, dwz, phi) * scale[2]
        forces = -charges[:, None] * np.stack([fx, fy, fz], axis=1)
        return energy, forces

    def stencil_size(self) -> int:
        """Mesh points each atom touches (order³)."""
        return int(self.params.order**3)
