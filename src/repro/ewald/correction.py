"""Correction forces for excluded and 1-4 scaled pairs (Section 3.1).

"The long-range interactions include contributions from these pairs,
which must be computed separately as correction forces and subtracted
out."  On Anton this list-driven work runs on the correction pipeline
(a PPIP with list-processing control logic) in the flexible subsystem;
here it is one vectorized pass over the static pair lists.

For a hard-excluded pair the mesh computed ``erf(r/(sqrt2 sigma))/r``
that should not exist: subtract it.  For a 1-4 pair the target is
*scaled* full interactions: subtract the mesh part and add the scaled
analytic LJ + Coulomb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.ewald.kernels import (
    kspace_pair_energy_kernel,
    kspace_pair_force_kernel,
    plain_coulomb_energy_kernel,
    plain_coulomb_force_kernel,
)
from repro.geometry import Box

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.forcefield.exclusions import ExclusionTable
    from repro.forcefield.parameters import LJTable

__all__ = [
    "CorrectionResult",
    "CorrectionStatic",
    "precompute_correction_static",
    "correction_forces_static",
    "correction_forces",
]


@dataclass(frozen=True)
class CorrectionResult:
    """Correction energies and per-pair force contributions.

    ``force`` acts on atom ``i`` of each pair (negate for ``j``), in
    the same contribution format as the range-limited kernels so the
    fixed-point accumulators treat all sources identically.
    """

    energy_exclusion: float   # subtracted mesh double-count (1-2, 1-3)
    energy_14_coul: float     # scaled 1-4 Coulomb minus its mesh part
    energy_14_lj: float       # scaled 1-4 LJ
    i: np.ndarray
    j: np.ndarray
    force: np.ndarray

    @property
    def energy(self) -> float:
        return self.energy_exclusion + self.energy_14_coul + self.energy_14_lj

    @property
    def n_pairs(self) -> int:
        return len(self.i)


@dataclass(frozen=True)
class CorrectionStatic:
    """Topology-derived correction-pair data, constant per system.

    The index arrays, charge products, and LJ coefficients of the
    excluded and 1-4 lists never change between evaluations; hoisting
    them out of the per-step path (and into
    :class:`~repro.core.forces.ForceCalculator` construction) leaves
    only the distance-dependent kernels on the hot path.
    """

    excl_i: np.ndarray
    excl_j: np.ndarray
    excl_qq: np.ndarray
    p14_i: np.ndarray
    p14_j: np.ndarray
    p14_qq: np.ndarray
    p14_a: np.ndarray
    p14_b: np.ndarray
    coul_scale14: float
    lj_scale14: float


def precompute_correction_static(
    charges: np.ndarray,
    type_ids: np.ndarray,
    lj_table: "LJTable",
    exclusions: "ExclusionTable",
) -> CorrectionStatic:
    """Gather the configuration-independent correction-pair data once."""
    empty_idx = np.empty(0, dtype=np.int64)
    empty_f = np.empty(0)
    excl_i, excl_j, excl_qq = empty_idx, empty_idx, empty_f
    if exclusions.n_excluded:
        excl_i = exclusions.excluded[:, 0]
        excl_j = exclusions.excluded[:, 1]
        excl_qq = charges[excl_i] * charges[excl_j]
    p14_i, p14_j, p14_qq = empty_idx, empty_idx, empty_f
    p14_a, p14_b = empty_f, empty_f
    if exclusions.n_pair14:
        p14_i = exclusions.pair14[:, 0]
        p14_j = exclusions.pair14[:, 1]
        p14_qq = charges[p14_i] * charges[p14_j]
        p14_a, p14_b = lj_table.pair_coefficients(type_ids[p14_i], type_ids[p14_j])
    return CorrectionStatic(
        excl_i=excl_i,
        excl_j=excl_j,
        excl_qq=excl_qq,
        p14_i=p14_i,
        p14_j=p14_j,
        p14_qq=p14_qq,
        p14_a=p14_a,
        p14_b=p14_b,
        coul_scale14=exclusions.coul_scale14,
        lj_scale14=exclusions.lj_scale14,
    )


def _segment_sums(values: np.ndarray, replicas: int) -> np.ndarray:
    """Per-replica ``float(np.sum(slice))`` over equal contiguous blocks.

    Each block is summed with the same pairwise ``np.sum`` a solo run
    applies to its own (identical-length, identical-value) array, so the
    per-replica results are bitwise equal to R independent solo sums.
    """
    m = len(values) // replicas
    return np.array(
        [float(np.sum(values[r * m : (r + 1) * m])) for r in range(replicas)]
    )


def correction_forces_static(
    positions: np.ndarray,
    box: Box,
    static: CorrectionStatic,
    sigma: float,
    replicas: int | None = None,
) -> CorrectionResult:
    """Evaluate all correction terms against precomputed static data.

    With ``replicas=R`` the static pair lists are interpreted as R
    replica-major blocks of equal length (the tiled-system layout) and
    the three energies come back as ``(R,)`` arrays of per-replica
    totals, each bitwise equal to the scalar a solo evaluation of that
    replica returns.  Forces are unaffected (they are per-pair either
    way).
    """
    from repro.forcefield.nonbonded import lj_energy_prefactor

    parts_i, parts_j, parts_f = [], [], []

    # -- hard exclusions: remove the mesh's erf part ---------------------
    e_excl = 0.0 if replicas is None else np.zeros(replicas)
    if len(static.excl_i):
        i, j, qq = static.excl_i, static.excl_j, static.excl_qq
        dx = box.minimum_image(positions[i] - positions[j])
        r2 = np.sum(dx * dx, axis=1)
        ev = qq * kspace_pair_energy_kernel(r2, sigma)
        if replicas is None:
            e_excl = -float(np.sum(ev))
        else:
            e_excl = -_segment_sums(ev, replicas)
        pref = -qq * kspace_pair_force_kernel(r2, sigma)
        parts_i.append(i)
        parts_j.append(j)
        parts_f.append(pref[:, None] * dx)

    # -- 1-4 pairs: scaled explicit interaction minus mesh part -----------
    e14c = 0.0 if replicas is None else np.zeros(replicas)
    e14lj = 0.0 if replicas is None else np.zeros(replicas)
    if len(static.p14_i):
        i, j, qq = static.p14_i, static.p14_j, static.p14_qq
        dx = box.minimum_image(positions[i] - positions[j])
        r2 = np.sum(dx * dx, axis=1)
        cs = static.coul_scale14
        ev14 = qq * (
            cs * plain_coulomb_energy_kernel(r2) - kspace_pair_energy_kernel(r2, sigma)
        )
        pref_c = qq * (cs * plain_coulomb_force_kernel(r2) - kspace_pair_force_kernel(r2, sigma))
        e_lj, pref_lj = lj_energy_prefactor(r2, static.p14_a, static.p14_b)
        ls = static.lj_scale14
        if replicas is None:
            e14c = float(np.sum(ev14))
            e14lj = ls * float(np.sum(e_lj))
        else:
            e14c = _segment_sums(ev14, replicas)
            e14lj = ls * _segment_sums(e_lj, replicas)
        parts_i.append(i)
        parts_j.append(j)
        parts_f.append((pref_c + ls * pref_lj)[:, None] * dx)

    if parts_i:
        out_i = np.concatenate(parts_i)
        out_j = np.concatenate(parts_j)
        out_f = np.concatenate(parts_f)
    else:
        out_i = np.empty(0, dtype=np.int64)
        out_j = np.empty(0, dtype=np.int64)
        out_f = np.empty((0, 3))
    return CorrectionResult(
        energy_exclusion=e_excl,
        energy_14_coul=e14c,
        energy_14_lj=e14lj,
        i=out_i,
        j=out_j,
        force=out_f,
    )


def correction_forces(
    positions: np.ndarray,
    box: Box,
    charges: np.ndarray,
    type_ids: np.ndarray,
    lj_table: "LJTable",
    exclusions: "ExclusionTable",
    sigma: float,
) -> CorrectionResult:
    """Evaluate all correction terms for one configuration.

    Convenience wrapper around :func:`precompute_correction_static` +
    :func:`correction_forces_static`; repeated-evaluation callers hold
    the static part themselves.
    """
    static = precompute_correction_static(charges, type_ids, lj_table, exclusions)
    return correction_forces_static(positions, box, static, sigma)
