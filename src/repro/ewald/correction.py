"""Correction forces for excluded and 1-4 scaled pairs (Section 3.1).

"The long-range interactions include contributions from these pairs,
which must be computed separately as correction forces and subtracted
out."  On Anton this list-driven work runs on the correction pipeline
(a PPIP with list-processing control logic) in the flexible subsystem;
here it is one vectorized pass over the static pair lists.

For a hard-excluded pair the mesh computed ``erf(r/(sqrt2 sigma))/r``
that should not exist: subtract it.  For a 1-4 pair the target is
*scaled* full interactions: subtract the mesh part and add the scaled
analytic LJ + Coulomb.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from typing import TYPE_CHECKING

from repro.ewald.kernels import (
    kspace_pair_energy_kernel,
    kspace_pair_force_kernel,
    plain_coulomb_energy_kernel,
    plain_coulomb_force_kernel,
)
from repro.geometry import Box

if TYPE_CHECKING:  # pragma: no cover - import cycle broken at runtime
    from repro.forcefield.exclusions import ExclusionTable
    from repro.forcefield.parameters import LJTable

__all__ = ["CorrectionResult", "correction_forces"]


@dataclass(frozen=True)
class CorrectionResult:
    """Correction energies and per-pair force contributions.

    ``force`` acts on atom ``i`` of each pair (negate for ``j``), in
    the same contribution format as the range-limited kernels so the
    fixed-point accumulators treat all sources identically.
    """

    energy_exclusion: float   # subtracted mesh double-count (1-2, 1-3)
    energy_14_coul: float     # scaled 1-4 Coulomb minus its mesh part
    energy_14_lj: float       # scaled 1-4 LJ
    i: np.ndarray
    j: np.ndarray
    force: np.ndarray

    @property
    def energy(self) -> float:
        return self.energy_exclusion + self.energy_14_coul + self.energy_14_lj

    @property
    def n_pairs(self) -> int:
        return len(self.i)


def correction_forces(
    positions: np.ndarray,
    box: Box,
    charges: np.ndarray,
    type_ids: np.ndarray,
    lj_table: "LJTable",
    exclusions: "ExclusionTable",
    sigma: float,
) -> CorrectionResult:
    """Evaluate all correction terms for one configuration."""
    from repro.forcefield.nonbonded import lj_energy_prefactor

    parts_i, parts_j, parts_f = [], [], []

    # -- hard exclusions: remove the mesh's erf part ---------------------
    e_excl = 0.0
    if exclusions.n_excluded:
        i = exclusions.excluded[:, 0]
        j = exclusions.excluded[:, 1]
        dx = box.minimum_image(positions[i] - positions[j])
        r2 = np.sum(dx * dx, axis=1)
        qq = charges[i] * charges[j]
        e_excl = -float(np.sum(qq * kspace_pair_energy_kernel(r2, sigma)))
        pref = -qq * kspace_pair_force_kernel(r2, sigma)
        parts_i.append(i)
        parts_j.append(j)
        parts_f.append(pref[:, None] * dx)

    # -- 1-4 pairs: scaled explicit interaction minus mesh part -----------
    e14c = 0.0
    e14lj = 0.0
    if exclusions.n_pair14:
        i = exclusions.pair14[:, 0]
        j = exclusions.pair14[:, 1]
        dx = box.minimum_image(positions[i] - positions[j])
        r2 = np.sum(dx * dx, axis=1)
        qq = charges[i] * charges[j]
        cs = exclusions.coul_scale14
        e14c = float(
            np.sum(qq * (cs * plain_coulomb_energy_kernel(r2) - kspace_pair_energy_kernel(r2, sigma)))
        )
        pref_c = qq * (cs * plain_coulomb_force_kernel(r2) - kspace_pair_force_kernel(r2, sigma))
        a, b = lj_table.pair_coefficients(type_ids[i], type_ids[j])
        e_lj, pref_lj = lj_energy_prefactor(r2, a, b)
        ls = exclusions.lj_scale14
        e14lj = ls * float(np.sum(e_lj))
        parts_i.append(i)
        parts_j.append(j)
        parts_f.append((pref_c + ls * pref_lj)[:, None] * dx)

    if parts_i:
        out_i = np.concatenate(parts_i)
        out_j = np.concatenate(parts_j)
        out_f = np.concatenate(parts_f)
    else:
        out_i = np.empty(0, dtype=np.int64)
        out_j = np.empty(0, dtype=np.int64)
        out_f = np.empty((0, 3))
    return CorrectionResult(
        energy_exclusion=e_excl,
        energy_14_coul=e14c,
        energy_14_lj=e14lj,
        i=out_i,
        j=out_j,
        force=out_f,
    )
