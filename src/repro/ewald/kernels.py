"""Analytic Ewald pair kernels (real-space screened Coulomb).

The Ewald decomposition splits 1/r into a short-range part
``erfc(r / (sqrt(2) sigma)) / r`` (computed pairwise, within the
cutoff) and a smooth long-range part ``erf(r / (sqrt(2) sigma)) / r``
(computed on the mesh).  ``sigma`` is the Gaussian width of the
screening charge.

All kernels are expressed as functions of r² (the PPIP indexing
variable) and return *prefactors* ``g`` such that the force vector is
``g * dx`` — i.e. they absorb the 1/r of the unit vector.
"""

from __future__ import annotations

import math

import numpy as np
from scipy.special import erf, erfc

from repro.util import COULOMB

__all__ = [
    "real_space_energy_kernel",
    "real_space_force_kernel",
    "kspace_pair_energy_kernel",
    "kspace_pair_force_kernel",
    "plain_coulomb_energy_kernel",
    "plain_coulomb_force_kernel",
    "self_energy",
    "choose_sigma",
]

_SQRT_2_OVER_PI = math.sqrt(2.0 / math.pi)


def real_space_energy_kernel(r2: np.ndarray, sigma: float) -> np.ndarray:
    """``ke * erfc(r / (sqrt(2) sigma)) / r`` per unit charge product."""
    r = np.sqrt(r2)
    return COULOMB * erfc(r / (math.sqrt(2.0) * sigma)) / r


def real_space_force_kernel(r2: np.ndarray, sigma: float) -> np.ndarray:
    """Force prefactor of the screened Coulomb term.

    ``F = qq * g(r2) * dx`` with
    ``g = ke (erfc(r/(sqrt2 sigma))/r^3 + sqrt(2/pi) exp(-r^2/2sigma^2)/(sigma r^2))``.
    """
    r = np.sqrt(r2)
    x = r / (math.sqrt(2.0) * sigma)
    return COULOMB * (erfc(x) / (r2 * r) + _SQRT_2_OVER_PI * np.exp(-r2 / (2.0 * sigma**2)) / (sigma * r2))


def kspace_pair_energy_kernel(r2: np.ndarray, sigma: float) -> np.ndarray:
    """``ke * erf(r / (sqrt(2) sigma)) / r`` — the smooth part one pair
    contributes through the mesh; subtracted for excluded pairs."""
    r = np.sqrt(r2)
    return COULOMB * erf(r / (math.sqrt(2.0) * sigma)) / r


def kspace_pair_force_kernel(r2: np.ndarray, sigma: float) -> np.ndarray:
    """Force prefactor of the smooth (erf) part, for correction forces."""
    r = np.sqrt(r2)
    return COULOMB * (
        erf(r / (math.sqrt(2.0) * sigma)) / (r2 * r)
        - _SQRT_2_OVER_PI * np.exp(-r2 / (2.0 * sigma**2)) / (sigma * r2)
    )


def plain_coulomb_energy_kernel(r2: np.ndarray) -> np.ndarray:
    """Unscreened ``ke / r`` (used for explicit 1-4 interactions)."""
    return COULOMB / np.sqrt(r2)


def plain_coulomb_force_kernel(r2: np.ndarray) -> np.ndarray:
    """Force prefactor of unscreened Coulomb: ``ke / r^3``."""
    return COULOMB / (r2 * np.sqrt(r2))


def self_energy(charges: np.ndarray, sigma: float) -> float:
    """Ewald self-interaction energy, subtracted from the mesh sum.

    Each point charge interacts with its own screening Gaussian:
    ``E_self = -ke * sum q_i^2 / (sqrt(2 pi) sigma)``.
    """
    return -float(COULOMB * np.sum(np.asarray(charges) ** 2) / (math.sqrt(2.0 * math.pi) * sigma))


def choose_sigma(cutoff: float, tolerance: float = 1e-5) -> float:
    """Pick the Ewald sigma for a real-space cutoff and target accuracy.

    Solves ``erfc(cutoff / (sqrt(2) sigma)) = tolerance`` so the
    real-space kernel has decayed to ``tolerance`` at the cutoff —
    increasing the cutoff therefore allows a larger sigma and hence a
    coarser mesh, the tradeoff at the center of the paper's Table 2.
    """
    from scipy.special import erfcinv

    return float(cutoff / (math.sqrt(2.0) * erfcinv(tolerance)))
