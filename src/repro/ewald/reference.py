"""Direct Ewald summation — the double-precision electrostatics oracle.

This is the "extremely conservative values for adjustable parameters"
reference the paper compares Anton's forces against (Section 5.2): the
real-space sum is taken over explicit periodic images and the k-space
sum over an exact sphere of wave vectors, at cost O(N² · images) —
usable only for small systems, which is all the accuracy tests need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.special import erfc

from repro.geometry import Box
from repro.util import COULOMB

__all__ = ["EwaldResult", "direct_ewald", "direct_coulomb_images"]


@dataclass(frozen=True)
class EwaldResult:
    """Energy components and forces of an electrostatics evaluation."""

    energy: float
    forces: np.ndarray
    energy_real: float = 0.0
    energy_k: float = 0.0
    energy_self: float = 0.0


def direct_ewald(
    positions: np.ndarray,
    charges: np.ndarray,
    box: Box,
    sigma: float,
    real_images: int = 1,
    kmax: int = 12,
) -> EwaldResult:
    """Full Ewald sum with explicit image and k-vector loops.

    Parameters
    ----------
    sigma:
        Gaussian screening width; ``erfc(r / (sqrt(2) sigma))`` decays
        the real-space term.
    real_images:
        Image shells for the real-space sum; 1 (nearest images) is
        ample when erfc has decayed by half a box length.
    kmax:
        Include wave vectors with integer components in [-kmax, kmax]
        (k=0 excluded).
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    n = len(positions)
    L = box.lengths
    V = box.volume
    alpha = 1.0 / (math.sqrt(2.0) * sigma)

    # --- real space: all pairs over image shells -----------------------
    e_real = 0.0
    f = np.zeros((n, 3))
    shells = range(-real_images, real_images + 1)
    for sx in shells:
        for sy in shells:
            for sz in shells:
                shift = np.array([sx, sy, sz]) * L
                d = positions[:, None, :] - positions[None, :, :] + shift
                r2 = np.sum(d * d, axis=2)
                if sx == sy == sz == 0:
                    np.fill_diagonal(r2, np.inf)
                r = np.sqrt(r2)
                qq = charges[:, None] * charges[None, :]
                sr = erfc(alpha * r) / r
                e_real += 0.5 * COULOMB * float(np.sum(qq * sr))
                pref = COULOMB * qq * (
                    erfc(alpha * r) / (r2 * r)
                    + 2.0 * alpha / math.sqrt(math.pi) * np.exp(-(alpha * r) ** 2) / r2
                )
                f += np.sum(pref[:, :, None] * d, axis=1)

    # --- k space --------------------------------------------------------
    e_k = 0.0
    ms = np.arange(-kmax, kmax + 1)
    MX, MY, MZ = np.meshgrid(ms, ms, ms, indexing="ij")
    mask = ~((MX == 0) & (MY == 0) & (MZ == 0))
    kvecs = 2.0 * math.pi * np.stack(
        [MX[mask] / L[0], MY[mask] / L[1], MZ[mask] / L[2]], axis=1
    )
    k2 = np.sum(kvecs * kvecs, axis=1)
    ak = np.exp(-(sigma**2) * k2 / 2.0) / k2  # (m,)
    phase = kvecs @ positions.T  # (m, n)
    cos_p, sin_p = np.cos(phase), np.sin(phase)
    S_re = cos_p @ charges
    S_im = sin_p @ charges
    e_k = COULOMB * (2.0 * math.pi / V) * float(np.sum(ak * (S_re**2 + S_im**2)))
    # F_i = ke (4 pi q_i / V) sum_k ak * k * (sin(k.r_i) S_re - cos(k.r_i) S_im)
    coef = ak[:, None] * kvecs  # (m, 3)
    fk = (sin_p * S_re[:, None] - cos_p * S_im[:, None]).T @ coef  # (n, 3)
    f += COULOMB * (4.0 * math.pi / V) * charges[:, None] * fk

    # --- self + neutralizing background ---------------------------------
    e_self = -COULOMB * float(np.sum(charges**2)) * alpha / math.sqrt(math.pi)
    q_total = float(np.sum(charges))
    e_background = -COULOMB * math.pi * q_total**2 / (2.0 * V * alpha**2)

    total = e_real + e_k + e_self + e_background
    return EwaldResult(
        energy=total, forces=f, energy_real=e_real, energy_k=e_k, energy_self=e_self
    )


def direct_coulomb_images(
    positions: np.ndarray,
    charges: np.ndarray,
    box: Box,
    n_images: int = 8,
) -> float:
    """Brute-force periodic Coulomb energy by slowly converging image sums.

    Shell-by-shell summation converges (conditionally) to the Ewald
    value for neutral systems; used to validate :func:`direct_ewald`
    on lattices with known Madelung constants.
    """
    positions = np.asarray(positions, dtype=np.float64)
    charges = np.asarray(charges, dtype=np.float64)
    L = box.lengths
    energy = 0.0
    shells = range(-n_images, n_images + 1)
    for sx in shells:
        for sy in shells:
            for sz in shells:
                shift = np.array([sx, sy, sz]) * L
                d = positions[:, None, :] - positions[None, :, :] + shift
                r2 = np.sum(d * d, axis=2)
                if sx == sy == sz == 0:
                    np.fill_diagonal(r2, np.inf)
                qq = charges[:, None] * charges[None, :]
                energy += 0.5 * COULOMB * float(np.sum(qq / np.sqrt(r2)))
    return energy
