"""Ewald electrostatics: analytic kernels, Gaussian Split Ewald (GSE),
SPME baseline, excluded-pair corrections, and a direct-sum reference."""

from repro.ewald.correction import (
    CorrectionResult,
    CorrectionStatic,
    correction_forces,
    correction_forces_static,
    precompute_correction_static,
)
from repro.ewald.gse import GaussianSplitEwald, GSEParams, MeshStencilPlan
from repro.ewald.reference import EwaldResult, direct_coulomb_images, direct_ewald
from repro.ewald.spme import SmoothPME, SPMEParams, bspline
from repro.ewald.kernels import (
    choose_sigma,
    kspace_pair_energy_kernel,
    kspace_pair_force_kernel,
    plain_coulomb_energy_kernel,
    plain_coulomb_force_kernel,
    real_space_energy_kernel,
    real_space_force_kernel,
    self_energy,
)

__all__ = [
    "CorrectionResult",
    "CorrectionStatic",
    "correction_forces",
    "correction_forces_static",
    "precompute_correction_static",
    "GaussianSplitEwald",
    "MeshStencilPlan",
    "GSEParams",
    "EwaldResult",
    "direct_coulomb_images",
    "direct_ewald",
    "SmoothPME",
    "SPMEParams",
    "bspline",
    "choose_sigma",
    "kspace_pair_energy_kernel",
    "kspace_pair_force_kernel",
    "plain_coulomb_energy_kernel",
    "plain_coulomb_force_kernel",
    "real_space_energy_kernel",
    "real_space_force_kernel",
    "self_energy",
]
