"""Synthetic protein builders.

No PDB structures or published force-field parameter sets are available
offline, so benchmark "proteins" are generated procedurally (see
DESIGN.md's substitution table):

* :func:`synthetic_protein` — an all-atom-like polymer (8 atoms per
  residue with bonds/angles/dihedrals and balanced partial charges)
  whose equilibrium bonded parameters are derived from the generated
  geometry, giving a relaxed, stable start.  Used for the Table 2/4 and
  Figure 5 workload/accuracy systems, where what matters is atom
  counts, densities, and term mixes.

* :func:`hp_miniprotein` — a hydrophobic/polar bead chain that
  collapses to a compact state and unfolds at elevated temperature:
  the Figure 7 (folding/unfolding trajectory) stand-in that actually
  folds on Python-simulatable timescales.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.forcefield import Topology
from repro.systems.types import (
    BEAD_HYDROPHOBIC,
    BEAD_POLAR,
    PROT_C,
    PROT_H,
    PROT_N,
    PROT_O,
)
from repro.util import make_rng

__all__ = ["ProteinFragment", "synthetic_protein", "hp_miniprotein"]


@dataclass
class ProteinFragment:
    """A built molecule fragment, ready to merge into a system."""

    positions: np.ndarray
    charges: np.ndarray
    masses: np.ndarray
    type_ids: np.ndarray
    topology: Topology

    @property
    def n_atoms(self) -> int:
        return len(self.positions)


# Residue template: local offsets from the CA position, with type,
# charge, and mass per atom.  Charges sum to zero per residue.
_RESIDUE_ATOMS = [
    # (name, offset, type, charge, mass)
    ("N", np.array([-1.20, 0.45, 0.00]), PROT_N, -0.40, 14.007),
    ("HN", np.array([-1.45, 1.42, 0.05]), PROT_H, 0.25, 1.008),
    ("CA", np.array([0.00, 0.00, 0.00]), PROT_C, 0.05, 12.011),
    ("HA", np.array([0.25, -0.60, 0.86]), PROT_H, 0.10, 1.008),
    ("CB", np.array([0.45, -0.80, -1.22]), PROT_C, -0.10, 12.011),
    ("HB", np.array([0.10, -1.83, -1.27]), PROT_H, 0.10, 1.008),
    ("C", np.array([1.05, 1.05, 0.10]), PROT_C, 0.55, 12.011),
    ("O", np.array([1.00, 2.10, -0.52]), PROT_O, -0.55, 15.999),
]
_ATOMS_PER_RESIDUE = len(_RESIDUE_ATOMS)
_NAME_TO_SLOT = {a[0]: i for i, a in enumerate(_RESIDUE_ATOMS)}

# Intra-residue bonds (by template name) and stiffnesses.
_RESIDUE_BONDS = [
    ("N", "HN", 434.0),
    ("N", "CA", 337.0),
    ("CA", "HA", 340.0),
    ("CA", "CB", 310.0),
    ("CB", "HB", 340.0),
    ("CA", "C", 317.0),
    ("C", "O", 570.0),
]
_INTER_BOND = ("C", "N", 490.0)  # C(i) - N(i+1)

_RESIDUE_ANGLES = [
    ("HN", "N", "CA", 35.0),
    ("N", "CA", "C", 63.0),
    ("N", "CA", "CB", 80.0),
    ("HA", "CA", "C", 50.0),
    ("CA", "C", "O", 80.0),
    ("CA", "CB", "HB", 50.0),
]
_INTER_ANGLES = [
    # (i residue names..., next-residue name last)
    (("CA", "C"), "N", 70.0),
    (("O", "C"), "N", 80.0),
]

_DIHEDRALS = [
    # phi/psi-like backbone torsions across the junction.
    (("N", "CA", "C"), "N", 0.45, 2),
    (("CB", "CA", "C"), "N", 0.30, 3),
]


def _chain_path(n_residues: int, spacing: float, rng: np.random.Generator) -> np.ndarray:
    """CA positions along a compact 3-D boustrophedon (globule-like).

    Consecutive residues occupy adjacent lattice points, so every
    inter-residue bond has length ~``spacing``.
    """
    per_side = max(int(np.ceil(n_residues ** (1.0 / 3.0))), 1)
    points: list[tuple[int, int, int]] = []
    for layer in range(per_side + 2):
        rows = range(per_side) if layer % 2 == 0 else range(per_side - 1, -1, -1)
        for row in rows:
            cols = range(per_side) if (layer + row) % 2 == 0 else range(per_side - 1, -1, -1)
            for col in cols:
                points.append((layer, row, col))
                if len(points) >= n_residues:
                    ca = np.array(points, dtype=np.float64) * spacing
                    ca += rng.normal(0.0, 0.05, ca.shape)
                    return ca
    raise AssertionError("unreachable")


def synthetic_protein(n_residues: int, seed: int = 0, spacing: float = 4.9) -> ProteinFragment:
    """Build an all-atom-like synthetic protein of ``n_residues``.

    Bond lengths and angles take their equilibrium values from the
    as-built geometry, so the structure starts relaxed; dihedral terms
    add realistic torsional workload.  Bonds to hydrogens are distance
    *constraints*, exactly as in the paper's simulations ("Bond lengths
    to hydrogen atoms were constrained"), which is what permits the
    2.5 fs time step.  Per residue: ~5 bonds, 3 H constraints, 8
    angles, 2 dihedrals — the term densities the bond-term
    load-balancing and Table 2 profiles care about.
    """
    if n_residues < 1:
        raise ValueError("need at least one residue")
    rng = make_rng(seed)
    ca = _chain_path(n_residues, spacing, rng)
    n_atoms = n_residues * _ATOMS_PER_RESIDUE
    positions = np.empty((n_atoms, 3))
    charges = np.empty(n_atoms)
    masses = np.empty(n_atoms)
    type_ids = np.empty(n_atoms, dtype=np.int64)
    # Random per-residue rotation keeps the globule isotropic.
    for r in range(n_residues):
        rot = _random_rotation(rng)
        for s, (_name, offset, typ, q, m) in enumerate(_RESIDUE_ATOMS):
            a = r * _ATOMS_PER_RESIDUE + s
            positions[a] = ca[r] + rot @ offset
            charges[a] = q
            masses[a] = m
            type_ids[a] = typ

    top = Topology(n_atoms)

    def slot(r: int, name: str) -> int:
        return r * _ATOMS_PER_RESIDUE + _NAME_TO_SLOT[name]

    def dist(i: int, j: int) -> float:
        return float(np.linalg.norm(positions[i] - positions[j]))

    def angle(i: int, j: int, k: int) -> float:
        u = positions[i] - positions[j]
        v = positions[k] - positions[j]
        c = np.dot(u, v) / (np.linalg.norm(u) * np.linalg.norm(v))
        return float(np.arccos(np.clip(c, -1.0, 1.0)))

    hydrogens = {name for name, *_rest in _RESIDUE_ATOMS if name.startswith("H")}
    for r in range(n_residues):
        for a, b, k in _RESIDUE_BONDS:
            i, j = slot(r, a), slot(r, b)
            if a in hydrogens or b in hydrogens:
                top.add_constraint(i, j, dist(i, j))
            else:
                top.add_bond(i, j, k, dist(i, j))
        for a, b, c, k in _RESIDUE_ANGLES:
            i, j, kk = slot(r, a), slot(r, b), slot(r, c)
            top.add_angle(i, j, kk, k, angle(i, j, kk))
        if r + 1 < n_residues:
            a, b, k = _INTER_BOND
            i, j = slot(r, a), slot(r + 1, b)
            top.add_bond(i, j, k, dist(i, j))
            for (names, nxt, k2) in _INTER_ANGLES:
                i, j = slot(r, names[0]), slot(r, names[1])
                kk = slot(r + 1, nxt)
                top.add_angle(i, j, kk, k2, angle(i, j, kk))
            for (names, nxt, kphi, period) in _DIHEDRALS:
                i, j, kk = (slot(r, nm) for nm in names)
                ll = slot(r + 1, nxt)
                top.add_dihedral(i, j, kk, ll, kphi, period, 0.0)

    return ProteinFragment(
        positions=positions, charges=charges, masses=masses, type_ids=type_ids, topology=top
    )


def _random_rotation(rng: np.random.Generator) -> np.ndarray:
    """Uniform random rotation matrix (QR of a Gaussian matrix)."""
    m = rng.normal(size=(3, 3))
    q, r = np.linalg.qr(m)
    q *= np.sign(np.diag(r))
    if np.linalg.det(q) < 0:
        q[:, 0] = -q[:, 0]
    return q


def hp_miniprotein(
    sequence: str = "HHPHHPPHHHPPHHPH",
    bond_length: float = 4.2,
    seed: int = 0,
) -> ProteinFragment:
    """A hydrophobic/polar bead mini-protein for folding studies.

    H beads attract strongly (deep LJ well), P beads weakly; at low
    temperature the chain collapses to a compact hydrophobic core and
    near its transition temperature it folds and unfolds repeatedly —
    the observable of the paper's 236 us gpW run (Figure 7), at bead-
    model scale.  Bonds and angles keep chain connectivity; there are
    no charges, so the model runs without electrostatics.
    """
    sequence = sequence.upper()
    if not sequence or any(c not in "HP" for c in sequence):
        raise ValueError("sequence must be a nonempty string of H and P")
    rng = make_rng(seed)
    n = len(sequence)
    # Start extended with slight random kinks (so folding is observable).
    positions = np.zeros((n, 3))
    direction = np.array([1.0, 0.0, 0.0])
    for i in range(1, n):
        kick = rng.normal(0.0, 0.15, 3)
        step = direction + kick
        step /= np.linalg.norm(step)
        positions[i] = positions[i - 1] + bond_length * step
        direction = step
    charges = np.zeros(n)
    masses = np.full(n, 100.0)  # heavy beads -> slow, stable dynamics
    type_ids = np.array(
        [BEAD_HYDROPHOBIC if c == "H" else BEAD_POLAR for c in sequence], dtype=np.int64
    )
    top = Topology(n)
    for i in range(n - 1):
        top.add_bond(i, i + 1, 20.0, bond_length)
    for i in range(n - 2):
        top.add_angle(i, i + 1, i + 2, 4.0, np.deg2rad(120.0))
    return ProteinFragment(
        positions=positions, charges=charges, masses=masses, type_ids=type_ids, topology=top
    )
