"""System assembly: water boxes, solvated proteins, ions.

Builders return ready-to-run :class:`~repro.core.system.ChemicalSystem`
objects.  Water is placed on a lattice at ambient density with random
orientations; proteins are centered and overlapping waters carved out;
ions replace waters to neutralize or match a composition spec.
"""

from __future__ import annotations

import numpy as np

from repro.core.system import ChemicalSystem
from repro.forcefield import (
    TIP3P,
    Topology,
    WaterModel,
    add_water_to_topology,
    water_charges,
    water_masses,
    water_site_positions,
)
from repro.geometry import Box
from repro.systems.peptide import ProteinFragment, _random_rotation, synthetic_protein
from repro.systems.types import ION_CL, WATER_H, WATER_M, WATER_O, standard_lj_table
from repro.util import WATER_MOLECULE_DENSITY, make_rng

__all__ = ["build_water_box", "build_solvated_protein", "build_hp_system"]

#: Mass and charge of the chloride counter-ion (single LJ particle).
_CL_MASS = 35.453
_CL_CHARGE = -1.0


def _water_lattice(box: Box, n_molecules: int, rng: np.random.Generator) -> np.ndarray:
    """O-site positions: jittered lattice slots at roughly even spacing."""
    per_axis = np.ceil((n_molecules * box.lengths**3 / box.volume) ** (1 / 3)).astype(int)
    per_axis = np.maximum(per_axis, 1)
    while np.prod(per_axis) < n_molecules:
        per_axis[np.argmin(per_axis)] += 1
    spacing = box.lengths / per_axis
    grid = np.stack(
        np.meshgrid(*[np.arange(p) for p in per_axis], indexing="ij"), axis=-1
    ).reshape(-1, 3)
    slots = (grid + 0.5) * spacing
    order = rng.permutation(len(slots))[:n_molecules]
    return slots[order] + rng.normal(0.0, 0.05, (n_molecules, 3))


def _assemble(
    box: Box,
    fragments: list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, Topology | None]],
    water_model: WaterModel,
    meta: dict,
) -> ChemicalSystem:
    """Concatenate fragments into one system with merged topology."""
    n_total = sum(len(f[0]) for f in fragments)
    top = Topology(n_total)
    positions = np.empty((n_total, 3))
    charges = np.empty(n_total)
    masses = np.empty(n_total)
    type_ids = np.empty(n_total, dtype=np.int64)
    offset = 0
    for pos, q, m, t, frag_top in fragments:
        k = len(pos)
        positions[offset : offset + k] = pos
        charges[offset : offset + k] = q
        masses[offset : offset + k] = m
        type_ids[offset : offset + k] = t
        if frag_top is not None:
            top.merge(frag_top, offset)
        offset += k
    return ChemicalSystem(
        box=box,
        positions=box.wrap(positions),
        masses=masses,
        charges=charges,
        type_ids=type_ids,
        lj=standard_lj_table(water_model.sigma_o, water_model.eps_o),
        topology=top,
        meta=meta,
    )


def _water_fragment(
    o_positions: np.ndarray, model: WaterModel, rng: np.random.Generator
):
    """Water sites/charges/masses/types + per-molecule topology."""
    n = len(o_positions)
    spm = model.sites_per_molecule
    local = water_site_positions(model)
    q1 = water_charges(model)
    m1 = water_masses(model)
    types1 = [WATER_O, WATER_H, WATER_H] + ([WATER_M] if model.four_site else [])
    positions = np.empty((n * spm, 3))
    for i in range(n):
        rot = _random_rotation(rng)
        positions[i * spm : (i + 1) * spm] = o_positions[i] + local @ rot.T
    top = Topology(n * spm)
    for i in range(n):
        add_water_to_topology(top, i * spm, model)
    return (
        positions,
        np.tile(q1, n),
        np.tile(m1, n),
        np.tile(np.array(types1, dtype=np.int64), n),
        top,
    )


def build_water_box(
    n_molecules: int | None = None,
    side: float | None = None,
    model: WaterModel = TIP3P,
    seed: int = 0,
) -> ChemicalSystem:
    """A pure-water box at ambient density.

    Give either ``n_molecules`` (side chosen for density) or ``side``
    (molecule count chosen for density), or both.
    """
    if n_molecules is None and side is None:
        raise ValueError("give n_molecules and/or side")
    if side is None:
        side = (n_molecules / WATER_MOLECULE_DENSITY) ** (1.0 / 3.0)
    if n_molecules is None:
        n_molecules = int(round(side**3 * WATER_MOLECULE_DENSITY))
    rng = make_rng(seed)
    box = Box.cubic(side)
    o_pos = _water_lattice(box, n_molecules, rng)
    frag = _water_fragment(o_pos, model, rng)
    meta = {
        "name": f"water{n_molecules}",
        "n_water_molecules": n_molecules,
        "n_protein_atoms": 0,
        "water_model": model.name,
    }
    return _assemble(box, [frag], model, meta)


def build_solvated_protein(
    n_residues: int,
    side: float,
    model: WaterModel = TIP3P,
    n_ions: int = 0,
    seed: int = 0,
    name: str = "protein",
    clearance: float = 2.4,
) -> ChemicalSystem:
    """A synthetic protein centered in a water box, optionally with ions.

    Waters whose O site falls within ``clearance`` A of a protein atom
    are removed; ions replace the most distant waters.  Run
    :func:`repro.core.minimize_energy` before dynamics.
    """
    rng = make_rng(seed)
    box = Box.cubic(side)
    prot = synthetic_protein(n_residues, seed=seed)
    prot_pos = prot.positions - prot.positions.mean(axis=0) + box.lengths / 2.0

    target_waters = int(round(side**3 * WATER_MOLECULE_DENSITY))
    o_pos = _water_lattice(box, target_waters, rng)
    # Carve out waters overlapping the protein (minimum-image distances).
    keep = np.ones(len(o_pos), dtype=bool)
    for chunk in range(0, len(o_pos), 1024):
        sl = slice(chunk, min(chunk + 1024, len(o_pos)))
        d2 = np.min(
            np.sum(box.minimum_image(o_pos[sl, None, :] - prot_pos[None, :, :]) ** 2, axis=2),
            axis=1,
        )
        keep[sl] = d2 > clearance**2
    o_pos = o_pos[keep]

    if n_ions > len(o_pos):
        raise ValueError("more ions requested than available water sites")
    ion_pos = o_pos[:n_ions]
    o_pos = o_pos[n_ions:]

    fragments = [
        (prot_pos, prot.charges, prot.masses, prot.type_ids, prot.topology),
        _water_fragment(o_pos, model, rng),
    ]
    if n_ions:
        fragments.append(
            (
                ion_pos,
                np.full(n_ions, _CL_CHARGE),
                np.full(n_ions, _CL_MASS),
                np.full(n_ions, ION_CL, dtype=np.int64),
                None,
            )
        )
    meta = {
        "name": name,
        "n_water_molecules": len(o_pos),
        "n_protein_atoms": prot.n_atoms,
        "n_protein_residues": n_residues,
        "n_ions": n_ions,
        "water_model": model.name,
    }
    return _assemble(box, fragments, model, meta)


def build_hp_system(fragment: ProteinFragment, side: float | None = None) -> ChemicalSystem:
    """Wrap an HP bead chain in a (vacuum) periodic box.

    The folding model runs without solvent — its effective potentials
    already fold solvation in — so the box only provides boundary
    conditions.
    """
    extent = float(np.max(fragment.positions) - np.min(fragment.positions))
    if side is None:
        side = max(3.0 * extent, 60.0)
    box = Box.cubic(side)
    positions = fragment.positions - fragment.positions.mean(axis=0) + box.lengths / 2.0
    return ChemicalSystem(
        box=box,
        positions=box.wrap(positions),
        masses=fragment.masses,
        charges=fragment.charges,
        type_ids=fragment.type_ids,
        lj=standard_lj_table(),
        topology=fragment.topology,
        meta={"name": "hp_miniprotein", "n_protein_atoms": fragment.n_atoms},
    )
