"""Global LJ atom-type registry for the synthetic systems.

One shared enumeration keeps every builder's ``type_ids`` compatible
with a single :class:`~repro.forcefield.parameters.LJTable`, so systems
can be composed (protein + water + ions) without re-indexing.
"""

from __future__ import annotations

from repro.forcefield import LJTable

__all__ = [
    "WATER_O",
    "WATER_H",
    "WATER_M",
    "PROT_C",
    "PROT_N",
    "PROT_O",
    "PROT_H",
    "ION_CL",
    "BEAD_HYDROPHOBIC",
    "BEAD_POLAR",
    "standard_lj_table",
]

WATER_O = 0
WATER_H = 1
WATER_M = 2
PROT_C = 3
PROT_N = 4
PROT_O = 5
PROT_H = 6
ION_CL = 7
BEAD_HYDROPHOBIC = 8
BEAD_POLAR = 9

#: (sigma A, epsilon kcal/mol) per type id.  Water O values are
#: overridden per water model by the builder; the rest are generic
#: AMBER-like magnitudes for the synthetic protein atoms, and the two
#: bead types parameterize the HP folding mini-protein.
_SIGMAS = [3.15061, 0.0, 0.0, 3.40, 3.25, 2.96, 1.07, 4.40, 4.70, 4.70]
_EPSILONS = [0.1521, 0.0, 0.0, 0.086, 0.17, 0.21, 0.0157, 0.10, 1.00, 0.05]


def standard_lj_table(water_sigma_o: float = 3.15061, water_eps_o: float = 0.1521) -> LJTable:
    """The shared LJ table, with the water-model oxygen slot filled in."""
    sigmas = list(_SIGMAS)
    epsilons = list(_EPSILONS)
    sigmas[WATER_O] = water_sigma_o
    epsilons[WATER_O] = water_eps_o
    return LJTable(sigmas, epsilons)
