"""The paper's benchmark chemical systems (Table 4, Section 5.3).

Each spec records the paper's published parameters and measurements —
atom count, box side, cutoff, mesh, performance, energy drift, force
errors — and can build a synthetic stand-in system at full size (for
workload counting and the performance model) or at reduced scale (for
functional dynamics, which pure Python cannot run at 10^5 atoms).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.system import ChemicalSystem
from repro.forcefield import TIP3P, TIP4PEW, WaterModel
from repro.systems.builder import build_solvated_protein, build_water_box

__all__ = ["BenchmarkSpec", "TABLE4_SYSTEMS", "BPTI", "benchmark_by_name"]


@dataclass(frozen=True)
class BenchmarkSpec:
    """One row of Table 4 (or the Section 5.3 BPTI system)."""

    name: str
    pdb_id: str
    n_atoms: int
    side: float                    # box side, A
    cutoff: float                  # range-limited cutoff, A
    mesh: int                      # FFT mesh per axis
    water_model: WaterModel
    forcefield: str
    paper_us_per_day: float
    paper_energy_drift: float | None = None       # kcal/mol/DoF/us
    paper_total_force_error: float | None = None  # fraction of rms force
    paper_numerical_force_error: float | None = None
    n_ions: int = 0
    protein_atoms_override: int | None = None

    @property
    def mesh_shape(self) -> tuple[int, int, int]:
        return (self.mesh, self.mesh, self.mesh)

    @property
    def n_residues(self) -> int:
        """Residue count of the synthetic protein stand-in.

        Sized at ~11% of total atoms unless the paper states the
        protein size (BPTI: 892 protein atoms of 17,758 particles;
        DHFR's real protein is 2,489 of 23,558).
        """
        if self.protein_atoms_override is not None:
            return max(int(round(self.protein_atoms_override / 8.0)), 2)
        return max(int(round(0.11 * self.n_atoms / 8.0)), 2)

    @property
    def n_protein_atoms(self) -> int:
        """Atom count of the synthetic protein (8 per residue)."""
        return self.n_residues * 8

    @property
    def n_water_molecules(self) -> int:
        """Waters implied by the atom count after protein and ions."""
        spm = self.water_model.sites_per_molecule
        return (self.n_atoms - self.n_protein_atoms - self.n_ions) // spm

    def build(self, scale: float = 1.0, seed: int = 0, waters_only: bool = False) -> ChemicalSystem:
        """Build the synthetic stand-in at ``scale`` of the atom count.

        ``scale < 1`` shrinks atom count and box side together at
        constant density, preserving cutoff physics; ``waters_only``
        builds the matching pure-water system of Figure 5.
        """
        side = self.side * scale ** (1.0 / 3.0)
        if waters_only:
            n_waters = int(round(self.n_atoms * scale)) // self.water_model.sites_per_molecule
            sys = build_water_box(n_molecules=n_waters, side=side, model=self.water_model, seed=seed)
            sys.meta["name"] = f"{self.name}-water"
            return sys
        n_res = max(int(round(self.n_residues * scale)), 2)
        n_ions = int(round(self.n_ions * scale))
        sys = build_solvated_protein(
            n_residues=n_res,
            side=side,
            model=self.water_model,
            n_ions=n_ions,
            seed=seed,
            name=self.name if scale == 1.0 else f"{self.name}@{scale:g}",
        )
        sys.meta["spec"] = self.name
        return sys


#: Table 4, in the paper's order.
TABLE4_SYSTEMS: tuple[BenchmarkSpec, ...] = (
    BenchmarkSpec("gpW", "1HYW", 9865, 46.8, 10.5, 32, TIP3P, "AMBER99SB", 18.7, 0.035, 80.7e-6, 9.8e-6),
    BenchmarkSpec("DHFR", "5DFR", 23558, 62.2, 13.0, 32, TIP3P, "AMBER99SB", 16.4, 0.053, 73.9e-6, 9.0e-6),
    BenchmarkSpec("aSFP", "1SFP", 48423, 78.8, 15.5, 32, TIP3P, "OPLS-AA", 11.2, 0.036, 67.3e-6, 11.5e-6),
    BenchmarkSpec("NADHOx", "1NOX", 78017, 92.6, 10.5, 64, TIP3P, "OPLS-AA", 6.4, 0.015, 58.4e-6, 8.3e-6),
    BenchmarkSpec("FtsZ", "1FSZ", 98236, 99.8, 11.0, 64, TIP3P, "OPLS-AA", 5.8, 0.015, 62.0e-6, 8.9e-6),
    BenchmarkSpec("T7Lig", "1A0I", 116650, 105.6, 11.0, 64, TIP3P, "OPLS-AA", 5.5, 0.021, 60.6e-6, 8.9e-6),
)

#: The millisecond-simulation system (Section 5.3): 17,758 particles,
#: 892 protein atoms + 6 Cl- + 4,215 TIP4P-Ew waters, 51.3 A box,
#: 10.4 A cutoff, 32^3 mesh; ran at 9.8 us/day (18.2 after upgrades).
BPTI = BenchmarkSpec(
    name="BPTI",
    pdb_id="5PTI",
    n_atoms=17758,
    side=51.3,
    cutoff=10.4,
    mesh=32,
    water_model=TIP4PEW,
    forcefield="AMBER99SB",
    paper_us_per_day=9.8,
    n_ions=6,
    protein_atoms_override=892,
)


def benchmark_by_name(name: str) -> BenchmarkSpec:
    """Look up a spec by its Table 4 / Section 5.3 name."""
    for spec in (*TABLE4_SYSTEMS, BPTI):
        if spec.name.lower() == name.lower():
            return spec
    raise KeyError(f"unknown benchmark system {name!r}")
