"""Benchmark chemical systems: water boxes, synthetic solvated
proteins, the HP folding mini-protein, and the paper's Table 4 /
BPTI system specifications."""

from repro.systems.benchmarks import BPTI, TABLE4_SYSTEMS, BenchmarkSpec, benchmark_by_name
from repro.systems.builder import build_hp_system, build_solvated_protein, build_water_box
from repro.systems.peptide import ProteinFragment, hp_miniprotein, synthetic_protein
from repro.systems.types import (
    BEAD_HYDROPHOBIC,
    BEAD_POLAR,
    ION_CL,
    PROT_C,
    PROT_H,
    PROT_N,
    PROT_O,
    WATER_H,
    WATER_M,
    WATER_O,
    standard_lj_table,
)

__all__ = [
    "BPTI",
    "TABLE4_SYSTEMS",
    "BenchmarkSpec",
    "benchmark_by_name",
    "build_hp_system",
    "build_solvated_protein",
    "build_water_box",
    "ProteinFragment",
    "hp_miniprotein",
    "synthetic_protein",
    "BEAD_HYDROPHOBIC",
    "BEAD_POLAR",
    "ION_CL",
    "PROT_C",
    "PROT_H",
    "PROT_N",
    "PROT_O",
    "WATER_H",
    "WATER_M",
    "WATER_O",
    "standard_lj_table",
]
