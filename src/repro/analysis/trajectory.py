"""Offline analysis straight from durable run-store files.

The paper's analyses (order parameters for Figure 6, energy drift for
Table 4) were computed from stored trajectories of multi-month runs,
not from live simulation state.  These helpers mirror that workflow on
our on-disk formats: a :class:`~repro.io.TrajectoryReader` decodes the
stored integer state codes to bit-exact positions, so every metric
computed offline equals the in-memory value to the last bit.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.energy import DriftResult, energy_drift
from repro.analysis.order_params import nh_vectors, order_parameters
from repro.analysis.rmsd import kabsch_align
from repro.io import TrajectoryReader, read_energy_log

__all__ = [
    "load_positions",
    "order_parameters_from_trajectory",
    "drift_from_energy_log",
]


def load_positions(path, every: int = 1) -> tuple[np.ndarray, list[np.ndarray]]:
    """(steps, positions) decoded from a trajectory file.

    ``every`` subsamples the stored frames.  Positions are the exact
    float64 values the producing run held at each stored step.
    """
    with TrajectoryReader(path) as reader:
        steps, frames = [], []
        for i in range(0, len(reader), every):
            frame = reader.frame(i)
            steps.append(frame.step)
            frames.append(reader.positions(frame))
    return np.asarray(steps, dtype=np.int64), frames


def order_parameters_from_trajectory(
    path,
    n_idx: np.ndarray,
    h_idx: np.ndarray,
    align_subset: np.ndarray | None = None,
    every: int = 1,
) -> np.ndarray:
    """S² per residue computed from a stored trajectory.

    Frames are aligned to the first stored frame (optionally on
    ``align_subset``, e.g. the heavy backbone) before the N-H vectors
    are accumulated, matching the live-snapshot analysis path.
    """
    _steps, frames = load_positions(path, every=every)
    if len(frames) < 2:
        raise ValueError(f"{path}: need at least 2 frames for order parameters")
    ref = frames[0]
    aligned = [kabsch_align(f, ref, subset=align_subset) for f in frames]
    return order_parameters(nh_vectors(aligned, n_idx, h_idx))


def drift_from_energy_log(path, n_dof: int) -> DriftResult:
    """Energy drift fitted to a streamed JSONL energy log.

    Reads the records back (deduplicated across resumes, sorted by
    step) and runs the Table 4 least-squares fit.
    """
    records = read_energy_log(path)
    return energy_drift(records, n_dof)
