"""Backbone amide order parameters (Figure 6).

"backbone amide order parameters, which are measured by nuclear
magnetic resonance (NMR) experiments and which characterize the amount
of movement of each amino acid in a protein (an order parameter near 1
indicates that the amino acid has little mobility, while a lower order
parameter indicates that it has more)."

We use the standard ensemble estimator (the long-time plateau of the
P2 autocorrelation of the N-H unit vector, computed via second-moment
averages — the method of the paper's ref [24]):

    S^2 = (3/2) * sum_{a,b} <u_a u_b>^2 - 1/2
"""

from __future__ import annotations

import numpy as np

__all__ = ["order_parameters", "nh_vectors"]


def nh_vectors(snapshots: list[np.ndarray], n_idx: np.ndarray, h_idx: np.ndarray) -> np.ndarray:
    """Unit N->H bond vectors over a trajectory.

    Returns shape (n_frames, n_residues, 3).  Frames should be aligned
    to a reference (or the molecule tumble-free) so internal motion is
    what is measured; for the synthetic systems the chain is kept from
    tumbling by analyzing short windows.
    """
    out = np.empty((len(snapshots), len(n_idx), 3))
    for f, snap in enumerate(snapshots):
        v = snap[h_idx] - snap[n_idx]
        out[f] = v / np.linalg.norm(v, axis=1, keepdims=True)
    return out


def order_parameters(unit_vectors: np.ndarray) -> np.ndarray:
    """S² per residue from unit bond vectors (frames, residues, 3).

    S² = 1 for a perfectly rigid vector; lower values indicate more
    internal motion.
    """
    u = np.asarray(unit_vectors, dtype=np.float64)
    if u.ndim != 3 or u.shape[-1] != 3:
        raise ValueError("expected (frames, residues, 3)")
    if u.shape[0] < 2:
        raise ValueError("need at least 2 frames")
    # <u_a u_b> over frames, per residue: (res, 3, 3).
    m = np.einsum("fra,frb->rab", u, u) / u.shape[0]
    s2 = 1.5 * np.einsum("rab,rab->r", m, m) - 0.5
    return np.clip(s2, 0.0, 1.0)
