"""Structural analysis: Kabsch RMSD, radius of gyration, and
folding/unfolding event detection (Figure 7).

"We observed a sequence of folding and unfolding events" — detected
here as threshold crossings (with hysteresis) of the RMSD-to-native or
compactness trace of a trajectory.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "kabsch_rmsd",
    "kabsch_align",
    "radius_of_gyration",
    "FoldingEvent",
    "detect_folding_events",
]


def _kabsch_rotation(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Optimal proper rotation taking centered p onto centered q."""
    h = p.T @ q
    u, _s, vt = np.linalg.svd(h)
    d = np.sign(np.linalg.det(vt.T @ u.T))
    return vt.T @ np.diag([1.0, 1.0, d]) @ u.T


def kabsch_align(
    coords: np.ndarray, reference: np.ndarray, subset: np.ndarray | None = None
) -> np.ndarray:
    """Superpose ``coords`` onto ``reference`` (translation + rotation).

    Used to remove overall tumbling before computing internal-motion
    observables like N-H order parameters.  With ``subset``, the
    transform is fitted on those atom indices only (e.g. the backbone)
    and applied to all atoms — floppy side groups then contribute
    motion, not alignment noise.
    """
    p = np.asarray(coords, dtype=np.float64)
    q = np.asarray(reference, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("coordinate sets must match in shape")
    sel = slice(None) if subset is None else np.asarray(subset)
    p_fit = p[sel]
    q_fit = q[sel]
    p_com = p_fit.mean(axis=0)
    q_com = q_fit.mean(axis=0)
    rot = _kabsch_rotation(p_fit - p_com, q_fit - q_com)
    return (rot @ (p - p_com).T).T + q_com


def kabsch_rmsd(coords: np.ndarray, reference: np.ndarray) -> float:
    """Minimum RMSD after optimal superposition (Kabsch algorithm)."""
    p = np.asarray(coords, dtype=np.float64)
    q = np.asarray(reference, dtype=np.float64)
    if p.shape != q.shape:
        raise ValueError("coordinate sets must match in shape")
    p = p - p.mean(axis=0)
    q = q - q.mean(axis=0)
    rot = _kabsch_rotation(p, q)
    diff = (rot @ p.T).T - q
    return float(np.sqrt(np.mean(np.sum(diff * diff, axis=1))))


def radius_of_gyration(coords: np.ndarray, masses: np.ndarray | None = None) -> float:
    """Mass-weighted radius of gyration (compactness measure)."""
    c = np.asarray(coords, dtype=np.float64)
    if masses is None:
        masses = np.ones(len(c))
    m = np.asarray(masses, dtype=np.float64)
    com = np.average(c, axis=0, weights=m)
    return float(np.sqrt(np.average(np.sum((c - com) ** 2, axis=1), weights=m)))


@dataclass(frozen=True)
class FoldingEvent:
    """One transition between folded and unfolded states."""

    frame: int
    kind: str  # "fold" or "unfold"
    value: float


def detect_folding_events(
    trace: np.ndarray,
    folded_below: float,
    unfolded_above: float,
) -> list[FoldingEvent]:
    """Hysteresis threshold detection of folding/unfolding transitions.

    ``trace`` is a per-frame order parameter that is low when folded
    (e.g. RMSD to native, or Rg).  The state flips to folded when the
    trace drops below ``folded_below`` and to unfolded when it rises
    above ``unfolded_above``; the gap suppresses flicker.
    """
    if folded_below >= unfolded_above:
        raise ValueError("need folded_below < unfolded_above for hysteresis")
    trace = np.asarray(trace, dtype=np.float64)
    events: list[FoldingEvent] = []
    state = "folded" if trace[0] < folded_below else "unfolded"
    for f, v in enumerate(trace):
        if state == "unfolded" and v < folded_below:
            state = "folded"
            events.append(FoldingEvent(frame=f, kind="fold", value=float(v)))
        elif state == "folded" and v > unfolded_above:
            state = "unfolded"
            events.append(FoldingEvent(frame=f, kind="unfold", value=float(v)))
    return events
