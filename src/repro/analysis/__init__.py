"""Analysis: energy drift, force-error metrics, NMR order parameters,
RMSD and folding-event detection."""

from repro.analysis.energy import DriftResult, energy_drift
from repro.analysis.forces import ForceError, force_error, rms_force
from repro.analysis.order_params import nh_vectors, order_parameters
from repro.analysis.rmsd import (
    FoldingEvent,
    detect_folding_events,
    kabsch_align,
    kabsch_rmsd,
    radius_of_gyration,
)
from repro.analysis.trajectory import (
    drift_from_energy_log,
    load_positions,
    order_parameters_from_trajectory,
)

__all__ = [
    "DriftResult",
    "energy_drift",
    "ForceError",
    "force_error",
    "rms_force",
    "nh_vectors",
    "order_parameters",
    "FoldingEvent",
    "detect_folding_events",
    "kabsch_align",
    "kabsch_rmsd",
    "radius_of_gyration",
    "drift_from_energy_log",
    "load_positions",
    "order_parameters_from_trajectory",
]
