"""Force-error metrics (Table 4, Section 5.2).

"We examined errors in the per-atom forces computed on Anton by
comparing them with forces computed in Desmond using double-precision
floating-point arithmetic and extremely conservative values for
adjustable parameters ... Force errors are expressed as fractions of
the rms force."

Two error kinds:

* **total force error** — Anton parameters and numerics vs. the
  conservative double-precision reference (dominated by parameter
  choices: cutoff, mesh, spreading radius);
* **numerical force error** — Anton numerics vs. double precision *at
  the same parameters* (isolates fixed-point/table error; "nearly an
  order of magnitude smaller").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ForceError", "force_error", "rms_force"]


@dataclass(frozen=True)
class ForceError:
    """RMS force-error fraction between two force evaluations."""

    rms_error: float        # kcal/mol/A
    rms_reference: float    # rms of the reference forces
    fraction: float         # rms_error / rms_reference
    max_error: float

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.fraction:.2e} of rms force"


def rms_force(forces: np.ndarray) -> float:
    """RMS over all force components (the paper's normalization)."""
    return float(np.sqrt(np.mean(np.asarray(forces) ** 2)))


def force_error(test: np.ndarray, reference: np.ndarray) -> ForceError:
    """Compare a force evaluation against a reference."""
    test = np.asarray(test, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    if test.shape != reference.shape:
        raise ValueError("force arrays must have the same shape")
    diff = test - reference
    rms_ref = rms_force(reference)
    rms_err = rms_force(diff)
    return ForceError(
        rms_error=rms_err,
        rms_reference=rms_ref,
        fraction=rms_err / rms_ref if rms_ref else float("inf"),
        max_error=float(np.max(np.abs(diff))),
    )
