"""Energy-drift measurement (Table 4's accuracy diagnostic).

"Energy drift, the rate of change of total system energy (which is
exactly conserved by the underlying equations of motion), is more
sensitive to certain errors that could adversely affect the physical
predictions of a simulation."  The paper reports it in
kcal/mol per degree of freedom per simulated microsecond, measured on
unthermostatted runs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.simulation import EnergyRecord
from repro.util import FS_PER_US

__all__ = ["DriftResult", "energy_drift"]


@dataclass(frozen=True)
class DriftResult:
    """Linear-fit drift of a total-energy time series."""

    drift_per_dof_per_us: float
    drift_per_us: float          # kcal/mol/us, whole system
    rms_fluctuation: float       # residual around the fit, kcal/mol
    mean_energy: float
    n_samples: int

    @property
    def relative_fluctuation(self) -> float:
        if self.mean_energy == 0:
            return float("inf")
        return abs(self.rms_fluctuation / self.mean_energy)


def energy_drift(records: list[EnergyRecord], n_dof: int) -> DriftResult:
    """Least-squares drift rate of the total energy.

    Parameters
    ----------
    records:
        Energy log of an NVE run (no thermostat — footnote 4).
    n_dof:
        Degrees of freedom for the per-DoF normalization.
    """
    if len(records) < 3:
        raise ValueError("need at least 3 energy records for a drift fit")
    t_us = np.array([r.time_fs for r in records]) / FS_PER_US
    e = np.array([r.total for r in records])
    slope, intercept = np.polyfit(t_us, e, 1)
    resid = e - (slope * t_us + intercept)
    return DriftResult(
        drift_per_dof_per_us=float(slope) / n_dof,
        drift_per_us=float(slope),
        rms_fluctuation=float(np.sqrt(np.mean(resid**2))),
        mean_energy=float(np.mean(e)),
        n_samples=len(records),
    )
