"""Calibrated cost model of a conventional x86 core running GROMACS.

Table 2's x86 column defines the baseline: a 2.66 GHz Xeon X5550
(Nehalem) core stepping the DHFR system.  The model assigns a constant
cost per unit of each work item, calibrated once against the small-
cutoff (9 A, 64^3) column; the large-cutoff column and every other
system are then *predictions* (EXPERIMENTS.md records anchors vs.
predictions).

The per-op magnitudes that fall out are themselves sanity checks:
~15 ns per range-limited pair interaction and ~2.6 ns per FFT
butterfly-unit are entirely plausible for scalar x86 code of the era.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


from repro.perf.workload import StepWorkload

__all__ = ["X86Model", "TaskProfile"]

#: Calibration anchors: Table 2, x86, DHFR, small cutoff (9 A) + fine
#: mesh (64^3).  Values in milliseconds.
_ANCHOR = {
    "range_limited": 56.6,
    "fft": 12.3,
    "mesh_interpolation": 9.6,
    "correction": 4.0,
    "bonded": 2.7,
    "integration": 3.4,
}
_ANCHOR_ATOMS = 23558
_ANCHOR_SIDE = 62.2
_ANCHOR_CUTOFF = 9.0
_ANCHOR_MESH = 64


@dataclass(frozen=True)
class TaskProfile:
    """Per-task times (ms for x86, us for Anton) of one time step."""

    range_limited: float
    fft: float
    mesh_interpolation: float
    correction: float
    bonded: float
    integration: float

    @property
    def total(self) -> float:
        return (
            self.range_limited
            + self.fft
            + self.mesh_interpolation
            + self.correction
            + self.bonded
            + self.integration
        )

    def rows(self) -> list[tuple[str, float, float]]:
        """(task, time, fraction-of-total) rows, Table 2 style."""
        t = self.total
        return [
            ("Range-limited forces", self.range_limited, self.range_limited / t),
            ("FFT & inverse FFT", self.fft, self.fft / t),
            ("Mesh interpolation", self.mesh_interpolation, self.mesh_interpolation / t),
            ("Correction forces", self.correction, self.correction / t),
            ("Bonded forces", self.bonded, self.bonded / t),
            ("Integration", self.integration, self.integration / t),
        ]


class X86Model:
    """Single-core GROMACS-like cost model (times in milliseconds)."""

    def __init__(self):
        rho = _ANCHOR_ATOMS / _ANCHOR_SIDE**3
        anchor_pairs = _ANCHOR_ATOMS * (4.0 / 3.0) * math.pi * _ANCHOR_CUTOFF**3 * rho / 2.0
        self.ns_per_pair = _ANCHOR["range_limited"] * 1e6 / anchor_pairs
        m = _ANCHOR_MESH**3
        self.ns_per_fft_unit = _ANCHOR["fft"] * 1e6 / (m * math.log2(m))
        # GROMACS SPME order-4: 64 mesh points per atom, spread + gather.
        self.spme_stencil = 64.0
        self.ns_per_spread_point = _ANCHOR["mesh_interpolation"] * 1e6 / (
            _ANCHOR_ATOMS * 2.0 * self.spme_stencil
        )
        # Correction work scales with the excluded/1-4 list (water-dominated
        # here); fold the anchor into a per-atom cost for robustness.
        self.ns_per_atom_correction = _ANCHOR["correction"] * 1e6 / _ANCHOR_ATOMS
        self.ns_per_bonded_cost = None  # set below
        # The anchor system's bonded cost: DHFR-like protein of 324
        # residues (5 bonds + 8 angles + 2 dihedrals each; H bonds are
        # constraints).
        anchor_bonded_cost = (324 * 5) * 1.0 + (324 * 8) * 2.4 + (324 * 2) * 5.0
        self.ns_per_bonded_cost = _ANCHOR["bonded"] * 1e6 / anchor_bonded_cost
        self.ns_per_atom_integration = _ANCHOR["integration"] * 1e6 / _ANCHOR_ATOMS

    def profile(self, w: StepWorkload) -> TaskProfile:
        """Per-task step time (ms) for a whole-machine workload on one core."""
        return TaskProfile(
            range_limited=w.pairs_within_cutoff * self.ns_per_pair * 1e-6,
            fft=w.mesh_points * math.log2(max(w.mesh_points, 2)) * self.ns_per_fft_unit * 1e-6,
            mesh_interpolation=w.n_atoms * 2.0 * self.spme_stencil * self.ns_per_spread_point * 1e-6,
            correction=w.n_atoms * self.ns_per_atom_correction * 1e-6,
            bonded=w.bonded_cost * self.ns_per_bonded_cost * 1e-6,
            integration=w.n_atoms * self.ns_per_atom_integration * 1e-6,
        )

    def us_per_day(self, w: StepWorkload, dt_fs: float = 2.5, long_range_every: int = 1) -> float:
        """Simulated microseconds per wall-clock day on one core."""
        p = self.profile(w)
        long_part = (p.fft + p.mesh_interpolation + p.correction) * (1.0 / long_range_every)
        short_part = p.range_limited + p.bonded + p.integration
        step_ms = short_part + long_part
        steps_per_day = 86400e3 / step_ms
        return steps_per_day * dt_fs * 1e-9
