"""Performance modeling: workload counting and calibrated x86/Anton
cost models reproducing Tables 1-2 and Figure 5."""

from repro.perf.antonmodel import AntonModel
from repro.perf.timers import Timers
from repro.perf.model import (
    DESMOND_DHFR_NS_PER_DAY,
    TABLE1_SIMULATIONS,
    PerformanceModel,
    PublishedSimulation,
)
from repro.perf.workload import (
    StepWorkload,
    workload_from_counts,
    workload_from_spec,
    workload_from_system,
)
from repro.perf.x86model import TaskProfile, X86Model

__all__ = [
    "AntonModel",
    "Timers",
    "DESMOND_DHFR_NS_PER_DAY",
    "TABLE1_SIMULATIONS",
    "PerformanceModel",
    "PublishedSimulation",
    "StepWorkload",
    "workload_from_counts",
    "workload_from_spec",
    "workload_from_system",
    "TaskProfile",
    "X86Model",
]
