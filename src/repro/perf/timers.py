"""Lightweight per-component wall-time and event counters.

Every :class:`~repro.core.forces.ForceCalculator` owns a
:class:`Timers` registry and charges each force component (pair
search, range-limited kernels, bonded, correction, k-space) to a named
accumulator; the neighbor list counts its builds and reuses in the
same registry.  Per-evaluation deltas are surfaced in
:class:`~repro.core.forces.ForceReport.timings` and the cumulative
summary in the CLI, so hot-path optimizations — this PR's buffered
Verlet list and every future one — are measurable without a profiler.

Timing is observational only: nothing in the numerics reads a clock,
so determinism and bitwise reproducibility are untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = ["Timers"]


class Timers:
    """Named wall-time accumulators plus event counters."""

    __slots__ = ("elapsed", "counts")

    def __init__(self) -> None:
        self.elapsed: dict[str, float] = {}
        self.counts: dict[str, int] = {}

    @contextmanager
    def time(self, name: str):
        """Context manager charging the enclosed block to ``name``."""
        t0 = perf_counter()
        try:
            yield
        finally:
            self.elapsed[name] = self.elapsed.get(name, 0.0) + (perf_counter() - t0)

    def add(self, name: str, seconds: float) -> None:
        self.elapsed[name] = self.elapsed.get(name, 0.0) + float(seconds)

    def count(self, name: str, k: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + int(k)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Copy of the elapsed-time table (for later :meth:`delta_since`)."""
        return dict(self.elapsed)

    def delta_since(self, before: dict[str, float]) -> dict[str, float]:
        """Per-component time accrued since ``before`` was snapshotted."""
        out = {}
        for name, total in self.elapsed.items():
            d = total - before.get(name, 0.0)
            if d > 0.0:
                out[name] = d
        return out

    def total(self, prefix: str = "") -> float:
        """Cumulative seconds across all timers named with ``prefix``.

        The machine backends charge their engine phases to
        ``machine_*`` timers, so ``total("machine_")`` is the per-run
        cost of the simulated-machine bookkeeping itself.
        """
        return sum(v for k, v in self.elapsed.items() if k.startswith(prefix))

    def reset(self) -> None:
        self.elapsed.clear()
        self.counts.clear()

    def summary_lines(self) -> list[str]:
        """Human-readable cumulative summary, slowest component first."""
        lines = [
            f"{name:<18} {secs * 1e3:10.2f} ms"
            for name, secs in sorted(self.elapsed.items(), key=lambda kv: -kv[1])
        ]
        lines += [
            f"{name:<18} {n:>10d} x"
            for name, n in sorted(self.counts.items())
        ]
        return lines
