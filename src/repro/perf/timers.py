"""Lightweight per-component wall-time and event counters.

Every :class:`~repro.core.forces.ForceCalculator` owns a
:class:`Timers` registry and charges each force component (pair
search, range-limited kernels, bonded, correction, k-space) to a named
accumulator; the neighbor list counts its builds and reuses in the
same registry.  Per-evaluation deltas are surfaced in
:class:`~repro.core.forces.ForceReport.timings` and the cumulative
summary in the CLI, so hot-path optimizations — the buffered Verlet
list, the shared mesh stencil plan, and every future one — are
measurable without a profiler.

:meth:`Timers.time` is nesting-aware: in addition to the flat
per-name totals it records each timing under its full runtime path
(``step/force/machine_mesh/mesh_spread``), and :meth:`Timers.tree`
folds those paths into a hierarchical phase profile — the
``repro machine --profile`` report that shows where a whole time step
actually goes.

Timing is observational only: nothing in the numerics reads a clock,
so determinism and bitwise reproducibility are untouched.
"""

from __future__ import annotations

from contextlib import contextmanager
from time import perf_counter

__all__ = ["Timers"]


class Timers:
    """Named wall-time accumulators plus event counters.

    ``elapsed`` keeps the familiar flat per-name totals (a name nested
    under several parents accumulates into one flat entry, and
    :meth:`snapshot`/:meth:`delta_since` operate on it unchanged);
    ``paths`` additionally keys each total by the "/"-joined stack of
    enclosing :meth:`time` blocks, which is what :meth:`tree` renders.
    """

    __slots__ = ("elapsed", "counts", "paths", "_stack")

    def __init__(self) -> None:
        self.elapsed: dict[str, float] = {}
        self.counts: dict[str, int] = {}
        self.paths: dict[str, float] = {}
        self._stack: list[str] = []

    @contextmanager
    def time(self, name: str):
        """Context manager charging the enclosed block to ``name``.

        The charge lands both in the flat ``elapsed[name]`` total and
        in ``paths`` under the current nesting (``outer/inner``).
        """
        self._stack.append(name)
        path = "/".join(self._stack)
        t0 = perf_counter()
        try:
            yield
        finally:
            dt = perf_counter() - t0
            self._stack.pop()
            self.elapsed[name] = self.elapsed.get(name, 0.0) + dt
            self.paths[path] = self.paths.get(path, 0.0) + dt

    def add(self, name: str, seconds: float) -> None:
        self.elapsed[name] = self.elapsed.get(name, 0.0) + float(seconds)

    def count(self, name: str, k: int = 1) -> None:
        self.counts[name] = self.counts.get(name, 0) + int(k)

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict[str, float]:
        """Copy of the elapsed-time table (for later :meth:`delta_since`)."""
        return dict(self.elapsed)

    def delta_since(self, before: dict[str, float]) -> dict[str, float]:
        """Per-component time accrued since ``before`` was snapshotted."""
        out = {}
        for name, total in self.elapsed.items():
            d = total - before.get(name, 0.0)
            if d > 0.0:
                out[name] = d
        return out

    def total(self, prefix: str = "") -> float:
        """Cumulative seconds across all timers named with ``prefix``.

        The machine backends charge their engine phases to
        ``machine_*`` timers, so ``total("machine_")`` is the per-run
        cost of the simulated-machine bookkeeping itself.
        """
        return sum(v for k, v in self.elapsed.items() if k.startswith(prefix))

    def reset(self) -> None:
        self.elapsed.clear()
        self.counts.clear()
        self.paths.clear()

    # -- hierarchy ---------------------------------------------------------

    def tree(self, root: str | None = None) -> dict:
        """Fold the recorded paths into a nested phase profile.

        Returns ``{name: {"seconds": s, "children": {...}}}`` mirroring
        the runtime nesting of :meth:`time` blocks.  With ``root``,
        only the subtree beneath that top-level phase is returned
        (e.g. ``tree("step")`` for the per-step profile).
        """
        out: dict = {}
        for path, secs in self.paths.items():
            parts = path.split("/")
            if root is not None:
                if parts[0] != root:
                    continue
                parts = parts[1:]
                if not parts:
                    continue
            node = out
            for part in parts[:-1]:
                node = node.setdefault(part, {"seconds": 0.0, "children": {}})[
                    "children"
                ]
            leaf = node.setdefault(parts[-1], {"seconds": 0.0, "children": {}})
            leaf["seconds"] += secs
        return out

    def profile(self, root: str, steps: int) -> dict:
        """Hierarchical per-step profile with attribution ratios.

        Folds the subtree under the top-level ``root`` phase into
        per-step seconds and computes two ratios against the measured
        ``root`` wall time: ``coverage`` (fraction accounted for by the
        root's direct children) and the stricter ``leaf_coverage``
        (fraction attributed all the way down to named leaf phases —
        time inside a parent but in none of its children counts as
        unattributed).  Shared by the machine's ``--profile`` dump and
        the ensemble engine so both report under one contract.
        """
        divisor = max(int(steps), 1)
        total = self.paths.get(root, 0.0)

        def scale(node: dict) -> dict:
            return {
                name: {
                    "seconds_per_step": entry["seconds"] / divisor,
                    "children": scale(entry["children"]),
                }
                for name, entry in sorted(
                    node.items(), key=lambda kv: -kv[1]["seconds"]
                )
            }

        def leaf_seconds(entry: dict) -> float:
            if not entry["children"]:
                return entry["seconds"]
            return sum(leaf_seconds(c) for c in entry["children"].values())

        phases = self.tree(root)
        covered = sum(entry["seconds"] for entry in phases.values())
        leaf_covered = sum(leaf_seconds(entry) for entry in phases.values())
        return {
            "steps": int(steps),
            "wall_per_step": total / divisor,
            "coverage": covered / total if total > 0.0 else 0.0,
            "leaf_coverage": leaf_covered / total if total > 0.0 else 0.0,
            "phases": scale(phases),
        }

    def summary_lines(self) -> list[str]:
        """Human-readable cumulative summary, slowest component first."""
        lines = [
            f"{name:<18} {secs * 1e3:10.2f} ms"
            for name, secs in sorted(self.elapsed.items(), key=lambda kv: -kv[1])
        ]
        lines += [
            f"{name:<18} {n:>10d} x"
            for name, n in sorted(self.counts.items())
        ]
        return lines
