"""Per-time-step workload counting.

Everything the cost models consume: range-limited pair counts, match
candidates, mesh and spreading work, bonded-term mixes, correction
lists, constraint counts — derived either analytically from a
benchmark spec (usable at 10^5 atoms) or by counting an actual built
system (used to validate the analytic path at small scale).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core import MDParams
from repro.core.system import ChemicalSystem
from repro.geometry import NeighborList
from repro.machine.flexible import TERM_COST
from repro.parallel.nt import match_efficiency

__all__ = ["StepWorkload", "workload_from_counts", "workload_from_system", "workload_from_spec"]

#: Per-residue term counts of the synthetic protein (see
#: :mod:`repro.systems.peptide`): 4 intra + 1 inter bond (H bonds are
#: constraints), 6 + 2 angles, 2 dihedrals.
TERMS_PER_RESIDUE = {"bond": 5.0, "angle": 8.0, "dihedral": 2.0}

#: Exclusions (1-2 + 1-3) and 1-4 pairs per protein residue, measured
#: from the synthetic topology (dominated by the 8-atom backbone graph).
EXCLUSIONS_PER_RESIDUE = 25.0
PAIR14_PER_RESIDUE = 11.0

#: Anton's physical charge-spreading radius (the BPTI run used 7.1 A).
SPREADING_RADIUS = 7.1


@dataclass(frozen=True)
class StepWorkload:
    """Work items of one MD time step (whole machine, per step)."""

    n_atoms: int
    n_protein_atoms: int
    pairs_within_cutoff: float
    pairs_considered: float          # tower x plate candidates (NT)
    mesh_points: int
    spreading_points_per_atom: float  # mesh points touched per atom
    bonded_cost: float               # weighted GC cost units
    n_bonded_terms: int
    correction_pairs: int
    n_constraints: int

    @property
    def match_efficiency(self) -> float:
        if self.pairs_considered == 0:
            return 1.0
        return self.pairs_within_cutoff / self.pairs_considered

    @property
    def spreading_interactions(self) -> float:
        """Atom-meshpoint interactions of one charge-spreading pass."""
        return self.n_atoms * self.spreading_points_per_atom

    def per_node(self, n_nodes: int) -> "StepWorkload":
        """Even-split per-node view of the workload."""
        return StepWorkload(
            n_atoms=max(self.n_atoms // n_nodes, 1),
            n_protein_atoms=self.n_protein_atoms // n_nodes,
            pairs_within_cutoff=self.pairs_within_cutoff / n_nodes,
            pairs_considered=self.pairs_considered / n_nodes,
            mesh_points=max(self.mesh_points // n_nodes, 1),
            spreading_points_per_atom=self.spreading_points_per_atom,
            bonded_cost=self.bonded_cost / n_nodes,
            n_bonded_terms=self.n_bonded_terms // n_nodes,
            correction_pairs=self.correction_pairs // n_nodes,
            n_constraints=self.n_constraints // n_nodes,
        )


def _spreading_points(cutoff_mesh: float, h: float) -> float:
    """Mesh points inside the spreading sphere of radius ``cutoff_mesh``."""
    return 4.0 / 3.0 * math.pi * (cutoff_mesh / h) ** 3


def workload_from_counts(
    n_atoms: int,
    n_protein_atoms: int,
    side: float,
    params: MDParams,
    box_side_per_node: float,
    subbox_divisions: int = 2,
    n_constraints: int | None = None,
) -> StepWorkload:
    """Analytic workload from system-level counts (Table 4 scale).

    Pair counts use the uniform-density estimate
    ``N * (4/3 pi rc^3 rho) / 2``; candidates divide by the NT match
    efficiency of the node's subbox geometry.
    """
    rho = n_atoms / side**3
    pairs = n_atoms * (4.0 / 3.0 * math.pi * params.cutoff**3 * rho) / 2.0
    eff = match_efficiency(
        box_side_per_node, params.cutoff, subbox_divisions, density=rho, n_samples=4
    )
    n_res = n_protein_atoms / 8.0
    bonded_terms = {k: v * n_res for k, v in TERMS_PER_RESIDUE.items()}
    bonded_cost = sum(TERM_COST[k] * v for k, v in bonded_terms.items())
    n_waters = (n_atoms - n_protein_atoms) // 3
    corr = int(EXCLUSIONS_PER_RESIDUE * n_res + PAIR14_PER_RESIDUE * n_res + 3 * n_waters)
    h = side / params.mesh[0]
    if n_constraints is None:
        n_constraints = 3 * n_waters + int(n_res * 3)  # water + H bonds
    return StepWorkload(
        n_atoms=n_atoms,
        n_protein_atoms=n_protein_atoms,
        pairs_within_cutoff=pairs,
        pairs_considered=pairs / max(eff, 1e-9),
        mesh_points=int(np.prod(params.mesh)),
        spreading_points_per_atom=_spreading_points(SPREADING_RADIUS, h),
        bonded_cost=bonded_cost,
        n_bonded_terms=int(sum(bonded_terms.values())),
        correction_pairs=corr,
        n_constraints=n_constraints,
    )


def workload_from_spec(spec, params: MDParams | None = None, n_nodes: int = 512) -> StepWorkload:
    """Analytic workload for a Table 4 benchmark spec."""
    if params is None:
        params = MDParams(cutoff=spec.cutoff, mesh=spec.mesh_shape)
    box_per_node = spec.side / round(n_nodes ** (1.0 / 3.0))
    return workload_from_counts(
        n_atoms=spec.n_atoms,
        n_protein_atoms=spec.n_protein_atoms,
        side=spec.side,
        params=params,
        box_side_per_node=box_per_node,
    )


def workload_from_system(
    system: ChemicalSystem, params: MDParams, box_side_per_node: float, subbox_divisions: int = 2
) -> StepWorkload:
    """Exact workload counted from a built system (small scale)."""
    nlist = NeighborList(system.box, params.cutoff, skin=params.skin)
    pairs = nlist.pairs(system.positions)
    top = system.topology
    bonded_cost = (
        TERM_COST["bond"] * len(top.bond_idx)
        + TERM_COST["angle"] * len(top.angle_idx)
        + TERM_COST["dihedral"] * len(top.dihedral_idx)
    )
    rho = system.n_atoms / system.box.volume
    eff = match_efficiency(
        box_side_per_node, params.cutoff, subbox_divisions, density=rho, n_samples=4
    )
    h = float(np.max(system.box.lengths / np.asarray(params.mesh)))
    return StepWorkload(
        n_atoms=system.n_atoms,
        n_protein_atoms=int(system.meta.get("n_protein_atoms", 0)),
        pairs_within_cutoff=float(len(pairs)),
        pairs_considered=float(len(pairs)) / max(eff, 1e-9),
        mesh_points=int(np.prod(params.mesh)),
        spreading_points_per_atom=_spreading_points(min(SPREADING_RADIUS, params.cutoff), h),
        bonded_cost=bonded_cost,
        n_bonded_terms=len(top.bond_idx) + len(top.angle_idx) + len(top.dihedral_idx),
        correction_pairs=system.exclusions.n_excluded + system.exclusions.n_pair14,
        n_constraints=top.n_constraints,
    )
