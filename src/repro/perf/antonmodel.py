"""Calibrated per-node cost model of an Anton machine.

Task times decompose as ``overhead + work / hardware_rate``:

* hardware rates come straight from the paper's Section 2.2 numbers
  (32 PPIPs x 970 MHz, 256 match units x 485 MHz, one correction-
  pipeline pair per cycle, ...);
* per-task overheads (pipeline fill, import latency, on-chip staging)
  are calibrated once against Table 2's Anton large-cutoff column for
  DHFR on one node of a 512-node machine, plus a per-step bookkeeping
  constant anchored to the measured 16.4 us/day DHFR rate;
* everything else — the small-cutoff column, every other system size,
  other node counts — is then a prediction.

EXPERIMENTS.md records which numbers are anchors and which are
predictions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.config import ANTON_2008, AntonHardware
from repro.machine.htis import HTISModel
from repro.perf.workload import StepWorkload
from repro.perf.x86model import TaskProfile

__all__ = ["AntonModel"]

#: Calibration anchors: Table 2, Anton, DHFR, large cutoff (13 A) +
#: coarse mesh (32^3), per node of a 512-node machine.  Microseconds.
_ANCHOR_COARSE = {
    "range_limited": 1.9,
    "fft": 8.9,
    "mesh_interpolation": 2.0,
    "correction": 2.5,
    "bonded": 4.1,
    "integration": 1.6,
}
#: The fine-mesh FFT anchor (64^3) pins the per-point slope of the
#: latency-dominated distributed FFT.
_ANCHOR_FFT_FINE_US = 24.7
_ANCHOR_NODES = 512

#: Fraction of bonded-force time on the critical path (the rest
#: overlaps HTIS work); fit from Table 2's totals.
_BONDED_CRITICAL = 0.71

#: Per-step bookkeeping/host overhead, anchored to DHFR's measured
#: 16.4 us/day (Section 5.1).
_STEP_OVERHEAD_US = 3.2


@dataclass(frozen=True)
class _DHFRCoarseWork:
    """The anchor workload (DHFR, 13 A, 32^3, per node of 512)."""

    interactions: float = 21237.0          # 3.61e6 pairs * (13/9)^3 / 512
    mesh_points_per_node: float = 64.0     # 32^3 / 512
    mesh_points_per_node_fine: float = 512.0
    spread_interactions: float = 18800.0   # 46 atoms * 204 pts * 2 passes
    correction_pairs: float = 63.7
    bonded_cost: float = 21.6
    atoms: float = 46.0


class AntonModel:
    """Per-node task times (microseconds) for Anton workloads."""

    def __init__(self, hw: AntonHardware = ANTON_2008):
        self.hw = hw
        self.htis = HTISModel(hw)
        a = _DHFRCoarseWork()
        # Range-limited: PPIP-rate work plus calibrated overhead.
        ppip_us = a.interactions / hw.interactions_per_second * 1e6
        self.rl_overhead_us = _ANCHOR_COARSE["range_limited"] - ppip_us
        # FFT: latency floor + per-point slope from the two mesh anchors.
        self.fft_slope_us = (_ANCHOR_FFT_FINE_US - _ANCHOR_COARSE["fft"]) / (
            a.mesh_points_per_node_fine - a.mesh_points_per_node
        )
        self.fft_floor_us = _ANCHOR_COARSE["fft"] - self.fft_slope_us * a.mesh_points_per_node
        # Mesh interpolation on the HTIS: slope from the coarse/fine
        # anchor pair (2.0 us at 18.8k vs 9.5 us at 150k interactions).
        self.mi_slope_us = (9.5 - _ANCHOR_COARSE["mesh_interpolation"]) / (150000.0 - a.spread_interactions)
        self.mi_overhead_us = _ANCHOR_COARSE["mesh_interpolation"] - self.mi_slope_us * a.spread_interactions
        # Correction pipeline: one pair per flexible cycle.
        corr_rate_us = 1.0 / hw.clock_flexible_hz * 1e6
        self.corr_overhead_us = _ANCHOR_COARSE["correction"] - a.correction_pairs * corr_rate_us
        self.corr_rate_us = corr_rate_us
        # Bonded on the GCs: calibrated cost-unit time + overhead.
        self.bonded_unit_us = 0.05
        self.bonded_overhead_us = _ANCHOR_COARSE["bonded"] - a.bonded_cost * self.bonded_unit_us
        # Integration (GCs): per-atom slope + overhead.
        self.integ_atom_us = 0.005
        self.integ_overhead_us = _ANCHOR_COARSE["integration"] - a.atoms * self.integ_atom_us

    # -- per-task times -----------------------------------------------------

    def profile(self, w: StepWorkload, n_nodes: int = 512) -> TaskProfile:
        """Per-node task times (us) for a whole-machine workload."""
        pn = w.per_node(n_nodes)
        htis = self.htis.evaluate(
            max(pn.pairs_considered, pn.pairs_within_cutoff), pn.pairs_within_cutoff
        )
        spread = pn.n_atoms * pn.spreading_points_per_atom * 2.0
        return TaskProfile(
            range_limited=self.rl_overhead_us + htis.time_s * 1e6,
            fft=self.fft_floor_us + self.fft_slope_us * pn.mesh_points,
            mesh_interpolation=self.mi_overhead_us + self.mi_slope_us * spread,
            correction=self.corr_overhead_us + self.corr_rate_us * pn.correction_pairs,
            bonded=self.bonded_overhead_us + self.bonded_unit_us * pn.bonded_cost,
            integration=self.integ_overhead_us + self.integ_atom_us * pn.n_atoms,
        )

    # -- step composition ------------------------------------------------------

    def long_range_us(self, p: TaskProfile) -> float:
        """Critical-path time of the long-range chain (spread -> FFT ->
        interpolate); corrections overlap on the flexible subsystem."""
        return p.fft + p.mesh_interpolation

    def short_us(self, p: TaskProfile) -> float:
        """Critical-path time of the every-step work."""
        return max(p.range_limited, _BONDED_CRITICAL * p.bonded) + p.integration

    def step_us(self, w: StepWorkload, n_nodes: int = 512, long_range_every: int = 2) -> float:
        """Average wall time of one time step (us)."""
        p = self.profile(w, n_nodes)
        return (
            _STEP_OVERHEAD_US
            + self.short_us(p)
            + self.long_range_us(p) / long_range_every
        )

    def step_us_routed(
        self,
        w: StepWorkload,
        n_nodes: int = 512,
        short_comm_us: float = 0.0,
        long_comm_us: float = 0.0,
        long_range_every: int = 2,
    ) -> float:
        """Step time with communication on the critical path.

        The counter-free :meth:`step_us` assumes communication hides
        under compute; here each half of the step takes the *longer* of
        its compute chain and its congested communication critical path
        (from :func:`repro.network.predict.predict_comm`) — compute and
        communication overlap, but neither hides a longer partner.
        """
        p = self.profile(w, n_nodes)
        return (
            _STEP_OVERHEAD_US
            + max(self.short_us(p), float(short_comm_us))
            + max(self.long_range_us(p), float(long_comm_us)) / long_range_every
        )

    def us_per_day_routed(
        self,
        w: StepWorkload,
        n_nodes: int = 512,
        short_comm_us: float = 0.0,
        long_comm_us: float = 0.0,
        dt_fs: float = 2.5,
        long_range_every: int = 2,
    ) -> float:
        """Figure 5 rate from the congested critical-path step time."""
        step = self.step_us_routed(
            w, n_nodes, short_comm_us, long_comm_us, long_range_every
        )
        return 86400e6 / step * dt_fs * 1e-9

    def total_step_us_single_rate(self, w: StepWorkload, n_nodes: int = 512) -> float:
        """Table 2's 'total' row: every task every step, with overlap."""
        p = self.profile(w, n_nodes)
        return self.short_us(p) + self.long_range_us(p)

    def us_per_day(
        self,
        w: StepWorkload,
        n_nodes: int = 512,
        dt_fs: float = 2.5,
        long_range_every: int = 2,
    ) -> float:
        """Simulated microseconds per wall-clock day (Figure 5's axis)."""
        step = self.step_us(w, n_nodes, long_range_every)
        steps_per_day = 86400e6 / step
        return steps_per_day * dt_fs * 1e-9
