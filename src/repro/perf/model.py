"""The end-to-end performance model: Figure 5, Tables 1 and 2.

Combines the workload counter with the calibrated x86 and Anton cost
models, and carries the published baselines (Desmond on an InfiniBand
Xeon cluster; the longest published simulations of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core import MDParams
from repro.perf.antonmodel import AntonModel
from repro.perf.workload import StepWorkload, workload_from_counts, workload_from_spec
from repro.perf.x86model import TaskProfile, X86Model

__all__ = ["PerformanceModel", "PublishedSimulation", "TABLE1_SIMULATIONS", "DESMOND_DHFR_NS_PER_DAY"]

#: Desmond's DHFR rate on a 512-node 2.66 GHz Xeon E5430 cluster with
#: DDR InfiniBand, two cores per node (Section 5.1).
DESMOND_DHFR_NS_PER_DAY: float = 471.0

#: "the performance realized in such cluster-based simulations is
#: generally limited to speeds on the order of 100 ns/day."
PRACTICAL_CLUSTER_NS_PER_DAY: float = 100.0


@dataclass(frozen=True)
class PublishedSimulation:
    """A row of Table 1: the longest published all-atom simulations."""

    length_us: float
    protein: str
    hardware: str
    software: str
    citation: str


TABLE1_SIMULATIONS: tuple[PublishedSimulation, ...] = (
    PublishedSimulation(1031.0, "BPTI", "Anton", "[native]", "Here"),
    PublishedSimulation(236.0, "gpW", "Anton", "[native]", "Here"),
    PublishedSimulation(10.0, "WW domain", "x86 cluster", "NAMD", "[10]"),
    PublishedSimulation(2.0, "villin HP-35", "x86", "GROMACS", "[6]"),
    PublishedSimulation(2.0, "rhodopsin", "Blue Gene/L", "Blue Matter", "[25]"),
    PublishedSimulation(2.0, "rhodopsin", "Blue Gene/L", "Blue Matter", "[12]"),
    PublishedSimulation(2.0, "beta2AR", "x86 cluster", "Desmond", "[5]"),
)


class PerformanceModel:
    """One object answering every performance question in the paper."""

    def __init__(self):
        self.x86 = X86Model()
        self.anton = AntonModel()

    # -- Table 2 -----------------------------------------------------------

    def x86_profile(self, w: StepWorkload) -> TaskProfile:
        """Single-core x86 per-task times, milliseconds."""
        return self.x86.profile(w)

    def anton_profile(self, w: StepWorkload, n_nodes: int = 512) -> TaskProfile:
        """Anton per-node task times, microseconds."""
        return self.anton.profile(w, n_nodes)

    def dhfr_workload(self, cutoff: float, mesh: int, n_nodes: int = 512) -> StepWorkload:
        """The Table 2 benchmark system at either parameterization."""
        params = MDParams(cutoff=cutoff, mesh=(mesh, mesh, mesh))
        return workload_from_counts(
            n_atoms=23558,
            n_protein_atoms=2592,  # 324 residues x 8 atoms
            side=62.2,
            params=params,
            box_side_per_node=62.2 / round(n_nodes ** (1 / 3)),
        )

    # -- Figure 5 / Table 4 -------------------------------------------------

    def anton_us_per_day(
        self, spec, n_nodes: int = 512, long_range_every: int = 2, waters_only: bool = False
    ) -> float:
        """Predicted simulation rate for a benchmark spec."""
        w = workload_from_spec(spec, n_nodes=n_nodes)
        if waters_only:
            w = StepWorkload(
                n_atoms=w.n_atoms,
                n_protein_atoms=0,
                pairs_within_cutoff=w.pairs_within_cutoff,
                pairs_considered=w.pairs_considered,
                mesh_points=w.mesh_points,
                spreading_points_per_atom=w.spreading_points_per_atom,
                bonded_cost=0.0,
                n_bonded_terms=0,
                correction_pairs=w.n_atoms,  # water exclusions only
                n_constraints=w.n_atoms,
            )
        return self.anton.us_per_day(w, n_nodes=n_nodes, long_range_every=long_range_every)

    def anton_routed_prediction(
        self,
        spec,
        n_nodes: int = 512,
        long_range_every: int = 2,
        config=None,
        congestion=None,
    ) -> dict:
        """Figure 5 prediction with the routed fabric on the critical path.

        Synthesizes one step's traffic on the n-node torus
        (:func:`repro.network.predict.predict_comm`), takes the
        congested per-phase critical paths, and composes them with the
        calibrated compute model.  Returns the communication breakdown
        plus ``us_per_day_routed`` and the counter-model
        ``us_per_day_counter`` (compute only, communication assumed
        hidden) for shape comparison.
        """
        from repro.network.predict import predict_comm

        comm = predict_comm(
            spec, n_nodes, config=config, congestion=congestion,
            long_range_every=long_range_every,
        )
        w = workload_from_spec(spec, n_nodes=n_nodes)
        comm["step_us_routed"] = self.anton.step_us_routed(
            w, n_nodes, comm["short_comm_us"], comm["long_comm_us"], long_range_every
        )
        comm["us_per_day_routed"] = self.anton.us_per_day_routed(
            w, n_nodes, comm["short_comm_us"], comm["long_comm_us"],
            long_range_every=long_range_every,
        )
        comm["us_per_day_counter"] = self.anton.us_per_day(
            w, n_nodes=n_nodes, long_range_every=long_range_every
        )
        return comm

    def anton_routed_scaling(
        self,
        spec,
        node_counts=(512, 1024, 2048, 4096),
        long_range_every: int = 2,
        config=None,
        congestion=None,
    ) -> list[dict]:
        """:meth:`anton_routed_prediction` swept over node counts."""
        return [
            self.anton_routed_prediction(
                spec, n, long_range_every=long_range_every,
                config=config, congestion=congestion,
            )
            for n in node_counts
        ]

    # -- Table 1 -------------------------------------------------------------

    def days_to_simulate(self, length_us: float, rate_us_per_day: float) -> float:
        """Wall-clock days to reach a trajectory length at a given rate."""
        return length_us / rate_us_per_day

    def speedup_vs_desmond(self, anton_us_per_day: float) -> float:
        """Headline comparison of Section 5.1."""
        return anton_us_per_day * 1000.0 / DESMOND_DHFR_NS_PER_DAY

    def speedup_vs_practical_cluster(self, anton_us_per_day: float) -> float:
        return anton_us_per_day * 1000.0 / PRACTICAL_CLUSTER_NS_PER_DAY
