"""Unit tests for the direct Ewald reference and analytic kernels."""

import math

import numpy as np
import pytest

from repro.ewald import (
    choose_sigma,
    direct_ewald,
    kspace_pair_energy_kernel,
    kspace_pair_force_kernel,
    plain_coulomb_energy_kernel,
    real_space_energy_kernel,
    real_space_force_kernel,
    self_energy,
)
from repro.geometry import Box
from repro.util import COULOMB


def nacl_unit_cell(a=5.64):
    """Rock-salt conventional cell: 4 Na+ + 4 Cl-."""
    base = np.array(
        [[0, 0, 0], [0.5, 0.5, 0], [0.5, 0, 0.5], [0, 0.5, 0.5]]
    )
    na = base * a
    cl = (base + [0.5, 0, 0]) % 1.0 * a
    pos = np.concatenate([na, cl])
    q = np.array([1.0] * 4 + [-1.0] * 4)
    return pos, q, Box.cubic(a)


class TestKernels:
    def test_real_plus_kspace_equals_plain_coulomb(self):
        r2 = np.linspace(1.0, 80.0, 200)
        sigma = 2.0
        total = real_space_energy_kernel(r2, sigma) + kspace_pair_energy_kernel(r2, sigma)
        np.testing.assert_allclose(total, plain_coulomb_energy_kernel(r2), rtol=1e-12)

    def test_force_kernels_are_energy_derivatives(self):
        sigma = 1.7
        r = np.linspace(1.2, 8.0, 50)
        h = 1e-6
        for e_k, f_k in [
            (real_space_energy_kernel, real_space_force_kernel),
            (kspace_pair_energy_kernel, kspace_pair_force_kernel),
        ]:
            dEdr = (e_k((r + h) ** 2, sigma) - e_k((r - h) ** 2, sigma)) / (2 * h)
            np.testing.assert_allclose(f_k(r**2, sigma) * r, -dEdr, atol=1e-5)

    def test_self_energy_negative(self):
        assert self_energy(np.array([1.0, -1.0]), 2.0) < 0

    def test_choose_sigma_hits_tolerance(self):
        from scipy.special import erfc

        sigma = choose_sigma(13.0, 1e-5)
        assert erfc(13.0 / (math.sqrt(2) * sigma)) == pytest.approx(1e-5, rel=1e-6)

    def test_larger_cutoff_allows_larger_sigma(self):
        assert choose_sigma(13.0, 1e-5) > choose_sigma(9.0, 1e-5)


class TestDirectEwald:
    def test_nacl_madelung_constant(self):
        # E per ion pair = -M * ke / a0 with Madelung constant 1.7476
        # and nearest-neighbor distance a0 = a/2.
        pos, q, box = nacl_unit_cell()
        out = direct_ewald(pos, q, box, sigma=1.2, real_images=1, kmax=12)
        a0 = 5.64 / 2
        madelung = -out.energy / 4 * a0 / COULOMB  # 4 ion pairs per cell
        assert madelung == pytest.approx(1.747565, rel=1e-4)

    def test_forces_vanish_on_lattice(self):
        pos, q, box = nacl_unit_cell()
        out = direct_ewald(pos, q, box, sigma=1.2, real_images=1, kmax=12)
        np.testing.assert_allclose(out.forces, 0.0, atol=1e-6)

    def test_independent_of_sigma(self):
        # The Ewald total must not depend on the (artificial) split.
        rng = np.random.default_rng(0)
        box = Box.cubic(12.0)
        pos = rng.uniform(0, 12, (16, 3))
        q = rng.uniform(-1, 1, 16)
        q -= q.mean()
        e1 = direct_ewald(pos, q, box, sigma=1.0, real_images=2, kmax=14).energy
        e2 = direct_ewald(pos, q, box, sigma=1.6, real_images=2, kmax=14).energy
        assert e1 == pytest.approx(e2, rel=1e-6)

    def test_forces_match_numerical_gradient(self):
        rng = np.random.default_rng(1)
        box = Box.cubic(10.0)
        pos = rng.uniform(0, 10, (8, 3))
        q = rng.uniform(-1, 1, 8)
        q -= q.mean()
        out = direct_ewald(pos, q, box, sigma=1.2, real_images=1, kmax=10)
        h = 1e-5
        for a in (0, 3, 7):
            for c in range(3):
                p1, p2 = pos.copy(), pos.copy()
                p1[a, c] += h
                p2[a, c] -= h
                num = -(
                    direct_ewald(p1, q, box, 1.2, 1, 10).energy
                    - direct_ewald(p2, q, box, 1.2, 1, 10).energy
                ) / (2 * h)
                assert out.forces[a, c] == pytest.approx(num, abs=2e-4)

    def test_two_charge_sanity(self):
        # Two opposite charges far from images: energy close to -ke/r.
        box = Box.cubic(40.0)
        pos = np.array([[20.0, 20.0, 20.0], [22.0, 20.0, 20.0]])
        q = np.array([1.0, -1.0])
        out = direct_ewald(pos, q, box, sigma=2.0, real_images=1, kmax=16)
        assert out.energy == pytest.approx(-COULOMB / 2.0, rel=2e-3)
