"""Unit tests for two's-complement fixed-point formats."""

import numpy as np
import pytest

from repro.fixedpoint import FixedFormat, round_nearest_even


class TestRoundNearestEven:
    def test_ties_go_to_even(self):
        assert round_nearest_even(0.5) == 0.0
        assert round_nearest_even(1.5) == 2.0
        assert round_nearest_even(2.5) == 2.0
        assert round_nearest_even(-0.5) == 0.0
        assert round_nearest_even(-1.5) == -2.0

    def test_odd_symmetry(self):
        # Symmetry is what makes the integrator exactly reversible.
        x = np.linspace(-10, 10, 4001)
        np.testing.assert_array_equal(round_nearest_even(-x), -round_nearest_even(x))


class TestFixedFormat:
    def test_paper_definition_2B_values_in_unit_interval(self):
        # "a B-bit, signed fixed-point number can represent 2**B evenly
        # spaced distinct real numbers in [-1, 1)"
        fmt = FixedFormat(4)
        codes = np.arange(fmt.min_code, fmt.max_code + 1)
        vals = fmt.decode(codes)
        assert len(vals) == 2**4
        assert vals[0] == -1.0
        assert vals[-1] == 1.0 - 2.0 ** (1 - 4)
        np.testing.assert_allclose(np.diff(vals), 2.0 ** (1 - 4))

    def test_bits_bounds(self):
        with pytest.raises(ValueError):
            FixedFormat(1)
        with pytest.raises(ValueError):
            FixedFormat(63)

    def test_encode_decode_roundtrip_error(self):
        fmt = FixedFormat(24)
        x = np.linspace(-0.999, 0.999, 1001)
        err = np.abs(fmt.decode(fmt.encode(x)) - x)
        assert np.max(err) <= 0.5 * fmt.resolution

    def test_encode_wraps_out_of_range(self):
        fmt = FixedFormat(8)
        # 1.0 wraps to -1.0 in two's complement.
        assert fmt.decode(fmt.encode(1.0)) == -1.0

    def test_encode_clip_saturates(self):
        fmt = FixedFormat(8)
        assert fmt.encode_clip(2.0) == fmt.max_code
        assert fmt.encode_clip(-2.0) == fmt.min_code

    def test_paper_footnote2_wrap_example(self):
        # In 4-bit arithmetic 3/8 + 7/8 - 5/8 = 5/8 even though the
        # intermediate 3/8 + 7/8 wraps to -3/4.
        fmt = FixedFormat(4)
        a, b, c = fmt.encode(3 / 8), fmt.encode(7 / 8), fmt.encode(-5 / 8)
        partial = fmt.add(a, b)
        assert fmt.decode(partial) == -3 / 4
        assert fmt.decode(fmt.add(partial, c)) == 5 / 8

    def test_add_order_invariance_with_wrap(self):
        fmt = FixedFormat(4)
        vals = [3 / 8, 7 / 8, -5 / 8]
        codes = [fmt.encode(v) for v in vals]
        import itertools

        results = set()
        for perm in itertools.permutations(codes):
            acc = np.int64(0)
            for cd in perm:
                acc = fmt.add(acc, cd)
            results.add(int(acc))
        assert len(results) == 1

    def test_wrap_matches_modular_definition(self):
        fmt = FixedFormat(10)
        raw = np.arange(-5000, 5000, 7, dtype=np.int64)
        expected = ((raw + 512) % 1024) - 512
        np.testing.assert_array_equal(fmt.wrap(raw), expected)

    def test_wrap_safe_near_int64_extremes(self):
        fmt = FixedFormat(32)
        big = np.array([np.iinfo(np.int64).max - 3, np.iinfo(np.int64).min + 3], dtype=np.int64)
        out = fmt.wrap(big)
        assert np.all(fmt.representable(out))

    def test_representable(self):
        fmt = FixedFormat(8)
        assert fmt.representable(fmt.max_code)
        assert fmt.representable(fmt.min_code)
        assert not fmt.representable(fmt.max_code + 1)
        assert not fmt.representable(fmt.min_code - 1)

    def test_resolution_scale_consistency(self):
        for bits in (8, 16, 24, 40):
            fmt = FixedFormat(bits)
            assert fmt.scale * fmt.resolution == 1.0
            assert fmt.decode(1) == fmt.resolution
