"""LinkRouter accounting: conservation, segregation, congestion.

The router is an additive accounting layer on SimNetwork; these tests
pin its contracts — per-link byte sums decompose ``hop_bytes``
exactly in every configuration, loop and batch charging produce
identical link loads, recovery traffic never touches the primary
pool, and predicted phase time is monotone in injected congestion.
"""

import numpy as np
import pytest

from repro.machine.config import ANTON_2008
from repro.network import CongestionModel, LinkRouter, RoutedConfig
from repro.parallel.comm import SimNetwork
from repro.parallel.topology import TorusTopology

DIMS = (4, 2, 8)


def routed_network(config=None):
    topo = TorusTopology(DIMS)
    net = SimNetwork(topo)
    net.attach_router(LinkRouter(topo, config))
    return net


def random_traffic(net, seed=0, n=200, tag="pairs"):
    rng = np.random.default_rng(seed)
    n_nodes = net.topology.n_nodes
    src = rng.integers(0, n_nodes, size=n)
    dst = rng.integers(0, n_nodes, size=n)
    nbytes = rng.integers(1, 5000, size=n)
    net.send_batch(src, dst, nbytes, tag=tag)
    return src, dst, nbytes


class TestConservation:
    def test_unicast_batch(self):
        net = routed_network()
        random_traffic(net)
        assert net.router.primary.total_bytes() == net.stats.hop_bytes

    def test_loop_equals_batch(self):
        """A loop of send() and one send_batch() produce identical link
        loads, byte for byte, link for link."""
        net_a, net_b = routed_network(), routed_network()
        src, dst, nbytes = random_traffic(net_a, seed=5)
        for s, d, b in zip(src, dst, nbytes):
            net_b.send(int(s), int(d), int(b), tag="pairs")
        assert np.array_equal(net_a.router.primary.bytes, net_b.router.primary.bytes)
        assert np.array_equal(net_a.router.primary.packets, net_b.router.primary.packets)
        assert net_a.stats.hop_bytes == net_b.stats.hop_bytes

    def test_multicast_tree_identity(self):
        """link_bytes + multicast_saved == hop_bytes with tree multicast."""
        net = routed_network()
        rng = np.random.default_rng(2)
        for src in range(0, 16, 3):
            dsts = rng.choice(
                [d for d in range(net.topology.n_nodes) if d != src], size=6, replace=False
            )
            net.multicast(src, list(dsts), 120, tag="position_import")
        r = net.router
        assert r.multicast_saved_hop_bytes > 0
        assert r.primary.total_bytes() + r.multicast_saved_hop_bytes == net.stats.hop_bytes

    def test_multicast_unicast_mode_exact(self):
        net = routed_network(RoutedConfig(multicast="unicast"))
        net.multicast(0, [1, 2, 3, 9], 64, tag="position_import")
        r = net.router
        assert r.multicast_saved_hop_bytes == 0
        assert r.primary.total_bytes() == net.stats.hop_bytes
        # Comparison totals are recorded even when not applied.
        assert r.multicast_savings()["saved_link_bytes"] >= 0

    def test_compression_identity(self):
        net = routed_network(RoutedConfig(delta_bits=8, multicast="unicast"))
        random_traffic(net, tag="position_import")
        random_traffic(net, seed=9, tag="force_export")
        random_traffic(net, seed=10, tag="fft_axis0")  # not compressed
        r = net.router
        assert r.compression_saved_hop_bytes > 0
        assert (
            r.primary.total_bytes() + r.compression_saved_hop_bytes == net.stats.hop_bytes
        )

    def test_compression_respects_min_message(self):
        net = routed_network(RoutedConfig(delta_bits=1, multicast="unicast"))
        net.send(0, 1, 8, tag="position_import")
        # ceil(8 * 1 / 32) = 1 byte, floored at min_message_bytes.
        assert net.router.primary.max_bytes() == ANTON_2008.min_message_bytes

    def test_all_transforms_together(self):
        net = routed_network(RoutedConfig(delta_bits=16, multicast="tree"))
        random_traffic(net, tag="position_import")
        net.multicast(0, list(range(1, 12)), 480, tag="position_import")
        random_traffic(net, seed=4, tag="fft_axis1")
        r = net.router
        lhs = (
            r.primary.total_bytes()
            + r.multicast_saved_hop_bytes
            + r.compression_saved_hop_bytes
        )
        assert lhs == net.stats.hop_bytes

    def test_local_routes_free(self):
        net = routed_network()
        net.send(3, 3, 999, tag="pairs")
        net.send_batch(np.array([5, 5]), np.array([5, 5]), np.array([7, 7]), tag="pairs")
        assert net.router.primary.total_bytes() == 0


class TestRecoverySegregation:
    def test_retransmit_lands_in_recovery_pool(self):
        net = routed_network()
        net.send(0, 9, 100, tag="pairs")
        primary = net.router.primary.bytes.copy()
        net.send(0, 9, 100, tag="pairs", retransmit=True)
        net.send_batch(
            np.array([1, 2]), np.array([8, 9]), np.array([50, 60]),
            tag="pairs", retransmit=True,
        )
        assert np.array_equal(net.router.primary.bytes, primary)
        assert net.router.recovery.total_bytes() > 0
        assert net.router.recovery_by_tag["pairs"] == net.router.recovery.total_bytes()

    def test_recovery_routes_over_same_links(self):
        """A retransmission occupies exactly the primary message's links,
        just in the other pool."""
        net_a, net_b = routed_network(), routed_network()
        net_a.send(2, 13, 100, tag="pairs")
        net_b.send(2, 13, 100, tag="pairs", retransmit=True)
        assert np.array_equal(
            net_a.router.primary.bytes, net_b.router.recovery.bytes
        )


class TestCongestion:
    def test_phase_time_monotone_in_congestion(self):
        net = routed_network()
        random_traffic(net)
        times = [
            net.router.step_comm_us(congestion=CongestionModel(bandwidth_scale=s))
            for s in (1.0, 0.5, 0.1)
        ]
        assert times[0] < times[1] < times[2]

    def test_phase_time_components(self):
        model = CongestionModel(link_bytes_per_s=1e9, latency_s=1e-6)
        # 1000 bytes at 1 GB/s = 1 us serialization + 3 hops latency.
        assert model.phase_time_us(1000, 3) == pytest.approx(4.0)
        assert model.phase_time_us(0, 0) == 0.0

    def test_critical_path_is_max_link(self):
        net = routed_network()
        # Two messages over disjoint links; phase time tracks the bigger.
        net.send(0, 1, 10_000, tag="a")
        net.send(16, 17, 50_000, tag="a")
        load = net.router.by_tag["a"]
        assert load.bytes.max() == 50_000
        t = net.router.phase_times_us()
        assert t["a"] == net.router.congestion.phase_time_us(50_000, 1)

    def test_steps_normalization(self):
        net = routed_network()
        net.send(0, 1, 10_000, tag="a")
        t1 = net.router.phase_times_us(steps=1)["a"]
        t10 = net.router.phase_times_us(steps=10)["a"]
        assert t10 < t1


class TestReportShape:
    def test_report_keys(self):
        net = routed_network()
        random_traffic(net, tag="position_import")
        report = net.router.report(steps=4)
        for key in (
            "topology", "links", "multicast_mode", "delta_bits", "steps",
            "phases", "link_bytes_total", "link_packets_total", "max_link_bytes",
            "busiest_links", "multicast", "compression_saved_link_bytes",
            "multicast_saved_link_bytes", "recovery_link_bytes", "comm_us_per_step",
        ):
            assert key in report, key
        ph = report["phases"]["position_import"]
        for key in (
            "messages", "wire_bytes", "link_bytes", "max_link_bytes",
            "max_hops", "busiest_link", "time_us_per_step",
        ):
            assert key in ph, key
        assert report["links"] == 64 * 6
        assert report["steps"] == 4

    def test_busiest_links_sorted(self):
        net = routed_network()
        random_traffic(net)
        top = net.router.primary.busiest(5)
        loads = [b for _, _, b in top]
        assert loads == sorted(loads, reverse=True)

    def test_config_validation(self):
        with pytest.raises(ValueError):
            RoutedConfig(multicast="flood")
        with pytest.raises(ValueError):
            RoutedConfig(delta_bits=0)
        with pytest.raises(ValueError):
            RoutedConfig(delta_bits=40)
