"""Unit tests for block-floating-point coefficient encoding."""

import numpy as np
import pytest

from repro.fixedpoint import BlockFloatCodec


class TestBlockFloatCodec:
    def test_roundtrip_relative_error_of_largest_coefficient(self):
        codec = BlockFloatCodec(mantissa_bits=22)
        coeffs = np.array([1.5, -0.3, 0.0021, 4.0e-5])
        out = codec.roundtrip(coeffs)
        # Largest coefficient carries nearly full mantissa precision.
        assert abs(out[0] - coeffs[0]) / abs(coeffs[0]) < 2.0**-20

    def test_shared_exponent_quantizes_small_coeffs_coarsely(self):
        codec = BlockFloatCodec(mantissa_bits=10)
        coeffs = np.array([1.0, 1e-9])
        out = codec.roundtrip(coeffs)
        # The tiny coefficient falls below the shared step and flushes to 0.
        assert out[1] == 0.0

    def test_zero_block(self):
        codec = BlockFloatCodec(mantissa_bits=12)
        out = codec.roundtrip(np.zeros(4))
        np.testing.assert_array_equal(out, 0.0)

    def test_power_of_two_exact(self):
        codec = BlockFloatCodec(mantissa_bits=16)
        coeffs = np.array([0.5, 0.25, -0.125])
        np.testing.assert_array_equal(codec.roundtrip(coeffs), coeffs)

    def test_boundary_magnitude_does_not_saturate_badly(self):
        codec = BlockFloatCodec(mantissa_bits=16)
        coeffs = np.array([1.0, -1.0])
        out = codec.roundtrip(coeffs)
        np.testing.assert_allclose(out, coeffs, rtol=2.0**-14)

    def test_mantissa_width_validation(self):
        with pytest.raises(ValueError):
            BlockFloatCodec(mantissa_bits=1)

    def test_more_bits_never_worse(self):
        rng = np.random.default_rng(3)
        coeffs = rng.normal(size=6) * 10.0**rng.integers(-3, 3, size=6)
        errs = []
        for bits in (8, 12, 16, 20, 24):
            out = BlockFloatCodec(mantissa_bits=bits).roundtrip(coeffs)
            errs.append(np.max(np.abs(out - coeffs)))
        assert all(e2 <= e1 + 1e-30 for e1, e2 in zip(errs, errs[1:]))

    def test_negative_only_block(self):
        codec = BlockFloatCodec(mantissa_bits=14)
        coeffs = np.array([-3.0, -0.7])
        out = codec.roundtrip(coeffs)
        # Block-float error is absolute, bounded by half the shared step
        # (here exponent=2, step=2**(2+1-14)).
        np.testing.assert_allclose(out, coeffs, atol=0.5 * 2.0**-11)
