"""Unit tests for bonded terms, including numerical-gradient checks."""

import numpy as np
import pytest

from repro.forcefield import (
    Topology,
    all_bonded_forces,
    angle_forces,
    bond_forces,
    dihedral_forces,
    scatter_forces,
)
from repro.geometry import Box


def numerical_forces(positions, box, top, energy_of, h=1e-6):
    """Central-difference forces for any bonded energy function."""
    forces = np.zeros_like(positions)
    for a in range(len(positions)):
        for c in range(3):
            for sgn in (+1, -1):
                p = positions.copy()
                p[a, c] += sgn * h
                forces[a, c] -= sgn * energy_of(p, box, top).energy / (2 * h)
    return forces


class TestBondForces:
    def setup_method(self):
        self.box = Box.cubic(20.0)
        self.top = Topology(2)
        self.top.add_bond(0, 1, 340.0, 1.09)

    def test_energy_at_equilibrium_is_zero(self):
        pos = np.array([[5.0, 5.0, 5.0], [6.09, 5.0, 5.0]])
        out = bond_forces(pos, self.box, self.top)
        assert out.energy == pytest.approx(0.0, abs=1e-12)
        np.testing.assert_allclose(out.force, 0.0, atol=1e-9)

    def test_energy_value(self):
        pos = np.array([[5.0, 5.0, 5.0], [6.29, 5.0, 5.0]])
        out = bond_forces(pos, self.box, self.top)
        assert out.energy == pytest.approx(340.0 * 0.2**2, rel=1e-9)

    def test_forces_match_numerical_gradient(self):
        rng = np.random.default_rng(0)
        pos = np.array([[5.0, 5.0, 5.0], [6.0, 5.4, 4.7]]) + rng.normal(0, 0.05, (2, 3))
        out = bond_forces(pos, self.box, self.top)
        dense = scatter_forces(2, [out])
        num = numerical_forces(pos, self.box, self.top, bond_forces)
        np.testing.assert_allclose(dense, num, atol=1e-4)

    def test_newton_third_law(self):
        pos = np.array([[5.0, 5.0, 5.0], [6.4, 5.5, 4.6]])
        out = bond_forces(pos, self.box, self.top)
        np.testing.assert_allclose(out.force.sum(axis=1), 0.0, atol=1e-10)

    def test_periodic_bond_across_boundary(self):
        pos = np.array([[0.2, 5.0, 5.0], [19.5, 5.0, 5.0]])  # 0.7 apart via PBC
        out = bond_forces(pos, self.box, self.top)
        assert out.energy == pytest.approx(340.0 * (0.7 - 1.09) ** 2, rel=1e-9)


class TestAngleForces:
    def setup_method(self):
        self.box = Box.cubic(20.0)
        self.top = Topology(3)
        self.top.add_angle(0, 1, 2, 50.0, np.deg2rad(109.5))

    def test_energy_at_equilibrium(self):
        t = np.deg2rad(109.5)
        pos = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0], [np.cos(t), np.sin(t), 0.0]]) + 5.0
        out = angle_forces(pos, self.box, self.top)
        assert out.energy == pytest.approx(0.0, abs=1e-12)

    def test_right_angle_energy(self):
        pos = np.array([[1.0, 0.0, 0.0], [0.0, 0.0, 0.0], [0.0, 1.0, 0.0]]) + 5.0
        out = angle_forces(pos, self.box, self.top)
        expected = 50.0 * (np.pi / 2 - np.deg2rad(109.5)) ** 2
        assert out.energy == pytest.approx(expected, rel=1e-9)

    def test_forces_match_numerical_gradient(self):
        rng = np.random.default_rng(1)
        pos = np.array([[1.1, 0.2, -0.1], [0.0, 0.0, 0.0], [-0.4, 1.0, 0.3]]) + 5.0
        pos += rng.normal(0, 0.02, (3, 3))
        dense = scatter_forces(3, [angle_forces(pos, self.box, self.top)])
        num = numerical_forces(pos, self.box, self.top, angle_forces)
        np.testing.assert_allclose(dense, num, atol=1e-4)

    def test_net_force_and_torque_zero(self):
        pos = np.array([[1.1, 0.2, -0.1], [0.0, 0.0, 0.0], [-0.4, 1.0, 0.3]]) + 5.0
        out = angle_forces(pos, self.box, self.top)
        f = out.force[0]
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)
        torque = np.cross(pos[self.top.angle_idx[0]] - 5.0, f).sum(axis=0)
        np.testing.assert_allclose(torque, 0.0, atol=1e-9)


class TestDihedralForces:
    def setup_method(self):
        self.box = Box.cubic(20.0)
        self.top = Topology(4)
        self.top.add_dihedral(0, 1, 2, 3, 2.5, 3, 0.0)

    def _positions(self, phi):
        """Butane-like frame with torsion angle phi."""
        return np.array(
            [
                [np.cos(np.pi - 1.9), np.sin(np.pi - 1.9), -1.0],
                [0.0, 0.0, -1.0],
                [0.0, 0.0, 0.0],
                [np.cos(phi), np.sin(phi), 0.8],
            ]
        ) + 8.0

    def test_energy_profile(self):
        # E = k (1 + cos(3 phi)); maxima at phi = 0, minima at pi/3.
        e0 = dihedral_forces(self._positions(np.pi - 0.0), self.box, self.top).energy
        e1 = dihedral_forces(self._positions(np.pi - np.pi / 3), self.box, self.top).energy
        assert abs(e0 - e1) > 1.0  # phi shifts by pi/3 change energy

    def test_forces_match_numerical_gradient(self):
        for phi in (0.3, 1.2, 2.5, -2.0):
            pos = self._positions(phi)
            dense = scatter_forces(4, [dihedral_forces(pos, self.box, self.top)])
            num = numerical_forces(pos, self.box, self.top, dihedral_forces)
            np.testing.assert_allclose(dense, num, atol=5e-4)

    def test_net_force_zero(self):
        out = dihedral_forces(self._positions(0.7), self.box, self.top)
        np.testing.assert_allclose(out.force[0].sum(axis=0), 0.0, atol=1e-10)

    def test_periodicity_symmetry(self):
        # n=3 torsion: phi and phi + 2pi/3 give the same energy.
        e1 = dihedral_forces(self._positions(0.4), self.box, self.top).energy
        e2 = dihedral_forces(self._positions(0.4 + 2 * np.pi / 3), self.box, self.top).energy
        assert e1 == pytest.approx(e2, rel=1e-6)


class TestAllBonded:
    def test_empty_topology(self):
        box = Box.cubic(10.0)
        top = Topology(3)
        outs = all_bonded_forces(np.ones((3, 3)), box, top)
        assert all(o.energy == 0.0 and o.n_terms == 0 for o in outs)
        np.testing.assert_array_equal(scatter_forces(3, outs), 0.0)

    def test_combined_molecule(self):
        box = Box.cubic(20.0)
        top = Topology(4)
        top.add_bond(0, 1, 300.0, 1.5)
        top.add_bond(1, 2, 300.0, 1.5)
        top.add_bond(2, 3, 300.0, 1.5)
        top.add_angle(0, 1, 2, 40.0, 1.9)
        top.add_angle(1, 2, 3, 40.0, 1.9)
        top.add_dihedral(0, 1, 2, 3, 1.0, 3, 0.0)
        rng = np.random.default_rng(4)
        pos = np.cumsum(rng.normal(0, 1, (4, 3)), axis=0) + 10.0
        outs = all_bonded_forces(pos, box, top)
        dense = scatter_forces(4, outs)
        assert dense.shape == (4, 3)
        np.testing.assert_allclose(dense.sum(axis=0), 0.0, atol=1e-9)
