"""Unit tests for fault detection, injection, and recovery plumbing."""

import numpy as np
import pytest

from repro.fault import (
    Anomaly,
    BarrierDetector,
    FaultController,
    FaultEvent,
    FaultSchedule,
    FaultyNetwork,
    HeartbeatBoard,
    MemorySnapshotStore,
    RecoveryPolicy,
    StepLedger,
    message_checksums,
)
from repro.io.checkpoint import CheckpointError
from repro.parallel.topology import TorusTopology


def make_ledger(step=3):
    ledger = StepLedger(step)
    ledger.record("bonds", src=0, dst=1, nbytes=100)
    ledger.record("mesh", src=2, dst=3, nbytes=50)
    ledger.record("bonds", src=1, dst=0, nbytes=80)
    return ledger


class TestChecksums:
    def test_deterministic(self):
        src = np.array([0, 1], dtype=np.int64)
        dst = np.array([1, 2], dtype=np.int64)
        nbytes = np.array([100, 50], dtype=np.int64)
        seq = np.arange(2, dtype=np.uint64)
        a = message_checksums(src, dst, nbytes, 7, seq)
        b = message_checksums(src, dst, nbytes, 7, seq)
        assert np.array_equal(a, b)

    def test_sensitive_to_every_field(self):
        base = message_checksums(0, 1, 100, 7, np.uint64(0))
        assert base != message_checksums(1, 1, 100, 7, np.uint64(0))
        assert base != message_checksums(0, 2, 100, 7, np.uint64(0))
        assert base != message_checksums(0, 1, 101, 7, np.uint64(0))
        assert base != message_checksums(0, 1, 100, 8, np.uint64(0))
        assert base != message_checksums(0, 1, 100, 7, np.uint64(1))


class TestStepLedger:
    def test_canonical_order_independent_of_record_order(self):
        # The same wire traffic charged as a send loop vs a batch must
        # produce the identical canonical ledger — victim selection
        # depends on it.
        a = StepLedger(5)
        a.record("x", src=0, dst=1, nbytes=10)
        a.record("x", src=2, dst=3, nbytes=20)
        a.record("y", src=1, dst=2, nbytes=30)
        b = StepLedger(5)
        b.record("y", src=1, dst=2, nbytes=30)
        b.record("x", src=np.array([2, 0]), dst=np.array([3, 1]), nbytes=np.array([20, 10]))
        for left, right in zip(a.canonical(), b.canonical()):
            if isinstance(left, list):
                assert left == right
            else:
                assert np.array_equal(left, right)

    def test_fresh_image_clean(self):
        image = make_ledger().fresh_image()
        assert np.all(image.copies == 1)
        assert not image.delayed.any()
        assert BarrierDetector().scan(make_ledger(), image) == []

    def test_empty_ledger(self):
        ledger = StepLedger(0)
        assert ledger.n_messages == 0
        assert len(ledger.fresh_image().copies) == 0


class TestBarrierDetector:
    def test_detects_each_anomaly_kind(self):
        ledger = make_ledger()
        image = ledger.fresh_image()
        image.copies[0] = 0  # drop
        image.checksums[1] ^= np.uint64(1)  # corrupt
        image.copies[2] += 1  # duplicate
        anomalies = BarrierDetector().scan(ledger, image)
        assert [a.kind for a in anomalies] == ["missing", "corrupt", "duplicate"]
        assert all(isinstance(a, Anomaly) for a in anomalies)

    def test_delayed_detected(self):
        ledger = make_ledger()
        image = ledger.fresh_image()
        image.delayed[1] = True
        anomalies = BarrierDetector().scan(ledger, image)
        assert [a.kind for a in anomalies] == ["delayed"]

    def test_anomaly_carries_envelope(self):
        ledger = make_ledger()
        image = ledger.fresh_image()
        image.copies[:] = 0
        got = {(a.tag, a.src, a.dst, a.nbytes) for a in BarrierDetector().scan(ledger, image)}
        assert got == {("bonds", 0, 1, 100), ("bonds", 1, 0, 80), ("mesh", 2, 3, 50)}


class TestHeartbeatBoard:
    def test_stall_recovers_after_waits(self):
        board = HeartbeatBoard()
        board.mark_stall(3, waits=2)
        assert not board.poll(3)
        assert board.poll(3)
        assert board.poll(3)  # healthy again

    def test_crash_is_silent_forever(self):
        board = HeartbeatBoard()
        board.mark_crash(5)
        assert all(not board.poll(5) for _ in range(10))
        board.clear(5)
        assert board.poll(5)

    def test_healthy_node_always_answers(self):
        assert HeartbeatBoard().poll(0)


class TestFaultyNetwork:
    def test_ledger_records_remote_primary_only(self):
        net = FaultyNetwork(TorusTopology.cubic(2))
        net.begin_step(1)
        net.send(0, 1, 100, tag="a")
        net.send(2, 2, 100, tag="a")  # local: free, not on the wire
        net.send(0, 1, 100, tag="a", retransmit=True)  # recovery traffic
        ledger = net.end_step()
        assert ledger.n_messages == 1

    def test_batch_ledger_matches_loop_ledger(self):
        src = np.array([0, 1, 2, 3], dtype=np.int64)
        dst = np.array([1, 1, 3, 0], dtype=np.int64)
        nbytes = np.array([10, 0, 30, 40], dtype=np.int64)
        loop = FaultyNetwork(TorusTopology.cubic(2))
        loop.begin_step(4)
        for s, d, b in zip(src, dst, nbytes):
            loop.send(int(s), int(d), int(b), tag="t")
        batch = FaultyNetwork(TorusTopology.cubic(2))
        batch.begin_step(4)
        batch.send_batch(src, dst, nbytes, tag="t")
        for left, right in zip(loop.end_step().canonical(), batch.end_step().canonical()):
            if isinstance(left, list):
                assert left == right
            else:
                assert np.array_equal(left, right)

    def test_recovery_mode_swaps_stats(self):
        net = FaultyNetwork(TorusTopology.cubic(2))
        net.send(0, 1, 100, tag="a")
        net.set_recovery(True)
        assert net.in_recovery
        net.send(0, 1, 100, tag="a")
        net.set_recovery(False)
        assert net.primary_stats.messages == 1
        assert net.recovery_stats.messages == 1

    def test_reset_stats_preserves_mode(self):
        net = FaultyNetwork(TorusTopology.cubic(2))
        net.set_recovery(True)
        net.send(0, 1, 100, tag="a")
        net.reset_stats()
        assert net.in_recovery
        assert net.recovery_stats.messages == 0
        assert net.stats is net.recovery_stats

    def test_damage_applies_each_kind(self):
        ledger = make_ledger()
        events = [
            FaultEvent(step=3, kind="drop", index=0),
            FaultEvent(step=3, kind="corrupt", index=1),
            FaultEvent(step=3, kind="duplicate", index=2),
            FaultEvent(step=3, kind="delay", index=1),
        ]
        image = FaultyNetwork.damage(ledger, events)
        assert image.copies[0] == 0
        assert image.checksums[1] != ledger.fresh_image().checksums[1]
        assert image.copies[2] == 2
        assert image.delayed[1]

    def test_damage_victim_wraps_modulo(self):
        ledger = make_ledger()  # 3 messages
        image = FaultyNetwork.damage(ledger, [FaultEvent(step=3, kind="drop", index=7)])
        assert image.copies[7 % 3] == 0


class TestRecoveryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RecoveryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(checkpoint_every=0)
        with pytest.raises(ValueError):
            RecoveryPolicy(retain=0)


class TestMemorySnapshotStore:
    @staticmethod
    def state(value):
        return {"x": np.full(4, value, dtype=np.int64)}

    def test_save_load_roundtrip(self):
        store = MemorySnapshotStore(retain=2)
        store.save(self.state(1), step=10)
        state, step = store.load_latest()
        assert step == 10
        assert np.array_equal(state["x"], self.state(1)["x"])

    def test_retain_prunes_oldest(self):
        store = MemorySnapshotStore(retain=2)
        for k in range(5):
            store.save(self.state(k), step=k)
        assert store.steps() == [3, 4]

    def test_resave_same_step_replaces(self):
        store = MemorySnapshotStore(retain=3)
        store.save(self.state(1), step=5)
        store.save(self.state(2), step=5)
        assert store.steps() == [5]
        state, _ = store.load_latest()
        assert state["x"][0] == 2

    def test_empty_store_raises(self):
        with pytest.raises(CheckpointError):
            MemorySnapshotStore().load_latest()

    def test_snapshot_immune_to_mutation(self):
        store = MemorySnapshotStore()
        live = self.state(7)
        store.save(live, step=1)
        live["x"][:] = 0
        state, _ = store.load_latest()
        assert np.all(state["x"] == 7)


class TestFaultControllerHealing:
    def make_controller(self, **policy):
        schedule = FaultSchedule(seed=0)
        return FaultController(schedule, policy=RecoveryPolicy(**policy))

    def test_transient_drop_heals_with_one_retry(self):
        fc = self.make_controller(max_retries=3)
        net = FaultyNetwork(TorusTopology.cubic(2))
        anomaly = Anomaly(kind="missing", tag="t", seq=0, src=0, dst=1, nbytes=64)
        assert not fc._heal_message(net, anomaly, persist={0: 0})
        assert fc.counters["retries"] == 1
        assert fc.counters["retransmitted_bytes"] == 64
        assert net.primary_stats.messages == 0  # retransmit never hits primary
        assert net.stats.retransmit_messages == 1

    def test_persistent_fault_escalates_to_link_failure(self):
        fc = self.make_controller(max_retries=2)
        net = FaultyNetwork(TorusTopology.cubic(2))
        anomaly = Anomaly(kind="corrupt", tag="t", seq=0, src=0, dst=1, nbytes=64)
        assert fc._heal_message(net, anomaly, persist={0: 99})
        assert fc.counters["retries"] == 2
        assert fc.counters["link_failures"] == 1

    def test_duplicate_discarded_without_retry(self):
        fc = self.make_controller()
        net = FaultyNetwork(TorusTopology.cubic(2))
        anomaly = Anomaly(kind="duplicate", tag="t", seq=0, src=0, dst=1, nbytes=64)
        assert not fc._heal_message(net, anomaly, persist={})
        assert fc.counters["duplicates_discarded"] == 1
        assert fc.counters["retries"] == 0

    def test_stalled_node_waited_out(self):
        fc = self.make_controller(max_retries=4)
        fc.heartbeats.mark_stall(2, waits=2)
        assert not fc._await_heartbeat(2)
        # waits=2 silent polls: the first misses, the second answers.
        assert fc.counters["barrier_timeouts"] == 1

    def test_crashed_node_declared_dead(self):
        fc = self.make_controller(max_retries=3)
        fc.heartbeats.mark_crash(2)
        assert fc._await_heartbeat(2)
        assert fc.counters["barrier_timeouts"] == 3
