"""Unit tests for the Simulation driver and minimizer."""

import numpy as np
import pytest

from repro.core import MDParams, Simulation, minimize_energy
from repro.systems import build_water_box

PARAMS = MDParams(cutoff=4.2, mesh=(16, 16, 16))


@pytest.fixture(scope="module")
def relaxed_water():
    s = build_water_box(n_molecules=24, seed=9)
    minimize_energy(s, PARAMS, max_steps=50)
    s.initialize_velocities(300.0, seed=10)
    return s


class TestMinimizer:
    def test_reduces_energy(self):
        from repro.core import ForceCalculator

        s = build_water_box(n_molecules=24, seed=11)
        e0 = ForceCalculator(s, PARAMS).compute(s.positions).potential_energy
        e1 = minimize_energy(s, PARAMS, max_steps=50)
        assert e1 < e0

    def test_respects_constraints(self):
        from repro.core import ConstraintSolver

        s = build_water_box(n_molecules=24, seed=12)
        minimize_energy(s, PARAMS, max_steps=50)
        solver = ConstraintSolver(s.topology, s.masses, s.box)
        assert solver.max_residual(s.positions) < 1e-6

    def test_converges_on_force_tolerance(self):
        s = build_water_box(n_molecules=8, seed=13)
        minimize_energy(s, MDParams(cutoff=3.0, mesh=(16, 16, 16)), max_steps=500,
                        force_tolerance=30.0)
        from repro.core import ForceCalculator

        f = ForceCalculator(s, MDParams(cutoff=3.0, mesh=(16, 16, 16))).compute(s.positions).forces
        # Not guaranteed to hit tolerance within the step cap, but must
        # be far from the initial clash regime.
        assert np.max(np.abs(f)) < 1e3


class TestSimulation:
    def test_energy_log_and_snapshots(self, relaxed_water):
        sim = Simulation(relaxed_water.copy(), PARAMS, dt=1.0, mode="fixed")
        recs = sim.run(20, record_every=5, snapshot_every=10)
        assert len(recs) == 4
        assert len(sim.snapshots) == 2
        assert sim.snapshot_steps == [10, 20]
        assert recs[0].step == 5 and recs[-1].step == 20

    def test_run_returns_only_new_records(self, relaxed_water):
        sim = Simulation(relaxed_water.copy(), PARAMS, dt=1.0, mode="fixed")
        first = sim.run(10, record_every=5)
        second = sim.run(10, record_every=5)
        assert len(first) == 2 and len(second) == 2
        assert len(sim.energy_log) == 4

    def test_invalid_mode(self, relaxed_water):
        with pytest.raises(ValueError):
            Simulation(relaxed_water.copy(), PARAMS, mode="quantum")

    def test_float_and_fixed_agree_initially(self, relaxed_water):
        fx = Simulation(relaxed_water.copy(), PARAMS, dt=1.0, mode="fixed")
        fl = Simulation(relaxed_water.copy(), PARAMS, dt=1.0, mode="float")
        fx.run(5)
        fl.run(5)
        assert np.max(np.abs(fx.positions - fl.positions)) < 1e-5

    def test_constraints_maintained_during_run(self, relaxed_water):
        sim = Simulation(relaxed_water.copy(), PARAMS, dt=1.0, mode="fixed")
        sim.run(15)
        assert sim.constraint_solver.max_residual(sim.positions) < 1e-6

    def test_positions_stay_in_box(self, relaxed_water):
        sim = Simulation(relaxed_water.copy(), PARAMS, dt=1.0, mode="fixed")
        sim.run(15)
        assert np.all(sim.positions >= 0)
        assert np.all(sim.positions < relaxed_water.box.lengths)
