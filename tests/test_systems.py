"""Unit tests for the system builders and benchmark specs."""

import numpy as np
import pytest

from repro.forcefield import TIP4PEW
from repro.systems import (
    BPTI,
    TABLE4_SYSTEMS,
    benchmark_by_name,
    build_hp_system,
    build_solvated_protein,
    build_water_box,
    hp_miniprotein,
    standard_lj_table,
    synthetic_protein,
)
from repro.util import WATER_MOLECULE_DENSITY


class TestWaterBox:
    def test_molecule_count_and_sites(self):
        s = build_water_box(n_molecules=50, seed=0)
        assert s.n_atoms == 150
        assert s.meta["n_water_molecules"] == 50

    def test_density_from_side(self):
        s = build_water_box(side=25.0, seed=0)
        expected = int(round(25.0**3 * WATER_MOLECULE_DENSITY))
        assert s.meta["n_water_molecules"] == expected

    def test_neutral(self):
        s = build_water_box(n_molecules=30, seed=1)
        assert abs(float(np.sum(s.charges))) < 1e-10

    def test_tip4pew_has_vsites(self):
        s = build_water_box(n_molecules=10, model=TIP4PEW, seed=0)
        assert s.n_atoms == 40
        assert np.count_nonzero(~s.massive) == 10

    def test_no_heavy_atom_overlaps(self):
        # H-H contacts between lattice neighbors are expected before
        # minimization; the oxygens themselves must not overlap.
        s = build_water_box(n_molecules=100, seed=2)
        from repro.geometry import neighbor_pairs

        o_pos = s.positions[0::3]
        pairs = neighbor_pairs(o_pos, s.box, 2.2)
        assert len(pairs) == 0

    def test_requires_some_argument(self):
        with pytest.raises(ValueError):
            build_water_box()

    def test_deterministic(self):
        a = build_water_box(n_molecules=20, seed=5)
        b = build_water_box(n_molecules=20, seed=5)
        np.testing.assert_array_equal(a.positions, b.positions)


class TestSyntheticProtein:
    def test_atom_count(self):
        frag = synthetic_protein(10)
        assert frag.n_atoms == 80

    def test_neutral_per_residue(self):
        frag = synthetic_protein(5)
        per_res = frag.charges.reshape(5, 8).sum(axis=1)
        np.testing.assert_allclose(per_res, 0.0, atol=1e-12)

    def test_term_counts(self):
        frag = synthetic_protein(10)
        top = frag.topology.compile()
        # 4 heavy-atom bonds per residue + 9 inter-residue C-N bonds;
        # the 3 X-H bonds per residue are constraints (paper style).
        assert len(top.bond_idx) == 10 * 4 + 9
        assert len(top.constraint_idx) == 10 * 3
        assert len(top.angle_idx) == 10 * 6 + 9 * 2
        assert len(top.dihedral_idx) == 9 * 2

    def test_bonds_at_equilibrium(self):
        # Bond r0 comes from the as-built geometry: zero bond energy.
        from repro.forcefield import bond_forces
        from repro.geometry import Box

        frag = synthetic_protein(8)
        box = Box.cubic(1000.0)
        pos = frag.positions - frag.positions.min(axis=0) + 100.0
        out = bond_forces(pos, box, frag.topology)
        assert out.energy == pytest.approx(0.0, abs=1e-16)

    def test_needs_residue(self):
        with pytest.raises(ValueError):
            synthetic_protein(0)


class TestHPMiniprotein:
    def test_sequence_types(self):
        from repro.systems import BEAD_HYDROPHOBIC, BEAD_POLAR

        frag = hp_miniprotein("HPH")
        np.testing.assert_array_equal(
            frag.type_ids, [BEAD_HYDROPHOBIC, BEAD_POLAR, BEAD_HYDROPHOBIC]
        )

    def test_chain_connectivity(self):
        frag = hp_miniprotein("HHPP")
        top = frag.topology.compile()
        assert len(top.bond_idx) == 3
        assert len(top.angle_idx) == 2

    def test_sequence_validation(self):
        with pytest.raises(ValueError):
            hp_miniprotein("HXH")
        with pytest.raises(ValueError):
            hp_miniprotein("")

    def test_build_hp_system(self):
        s = build_hp_system(hp_miniprotein("HHPHHPPH"))
        assert s.n_atoms == 8
        assert s.box.lengths[0] >= 60.0


class TestSolvatedProtein:
    def test_composition(self):
        s = build_solvated_protein(n_residues=4, side=22.0, n_ions=2, seed=0)
        assert s.meta["n_protein_atoms"] == 32
        assert s.meta["n_ions"] == 2
        assert s.n_atoms == 32 + 2 + 3 * s.meta["n_water_molecules"]

    def test_clearance_respected(self):
        s = build_solvated_protein(n_residues=4, side=22.0, seed=0, clearance=2.4)
        prot = s.positions[:32]
        waters_o = s.positions[32::3][: s.meta["n_water_molecules"]]
        d2 = np.min(s.box.distance2(waters_o[:, None, :], prot[None, :, :]), axis=1)
        assert np.all(d2 > 2.4**2 - 1e-9)

    def test_too_many_ions(self):
        with pytest.raises(ValueError):
            build_solvated_protein(n_residues=2, side=15.0, n_ions=10000)


class TestBenchmarkSpecs:
    def test_table4_rows(self):
        names = [s.name for s in TABLE4_SYSTEMS]
        assert names == ["gpW", "DHFR", "aSFP", "NADHOx", "FtsZ", "T7Lig"]
        dhfr = benchmark_by_name("DHFR")
        assert dhfr.n_atoms == 23558
        assert dhfr.cutoff == 13.0
        assert dhfr.mesh == 32

    def test_bpti_composition(self):
        # Section 5.3: 892 protein atoms + 6 Cl + 4215 TIP4P-Ew waters.
        assert BPTI.n_atoms == 17758
        assert BPTI.water_model.four_site
        assert BPTI.n_protein_atoms == pytest.approx(892, abs=8)
        assert BPTI.n_water_molecules == pytest.approx(4215, abs=3)

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            benchmark_by_name("nosuch")

    def test_scaled_build(self):
        s = benchmark_by_name("gpW").build(scale=0.03, seed=0)
        assert 150 < s.n_atoms < 600
        # Density preserved.
        rho_full = 9865 / 46.8**3
        rho = s.n_atoms / s.box.volume
        assert rho == pytest.approx(rho_full, rel=0.25)

    def test_waters_only_build(self):
        s = benchmark_by_name("gpW").build(scale=0.02, waters_only=True)
        assert s.meta["n_protein_atoms"] == 0

    def test_paper_accuracy_columns_present(self):
        for spec in TABLE4_SYSTEMS:
            assert spec.paper_energy_drift is not None
            assert spec.paper_total_force_error < 1e-4
            assert spec.paper_numerical_force_error < spec.paper_total_force_error


class TestLJTableTypes:
    def test_water_slot_override(self):
        t = standard_lj_table(water_sigma_o=3.2, water_eps_o=0.2)
        assert t.sigmas[0] == 3.2
        assert t.epsilons[0] == 0.2

    def test_hydrogens_noninteracting(self):
        t = standard_lj_table()
        a, b = t.pair_coefficients(np.array([1]), np.array([1]))  # water H
        assert a[0] == 0.0 and b[0] == 0.0
