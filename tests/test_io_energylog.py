"""Unit tests for the streaming JSONL energy log."""

from repro.core.simulation import EnergyRecord
from repro.io import EnergyLogWriter, read_energy_log


def rec(step, e=1.0):
    return EnergyRecord(step=step, time_fs=step * 2.5, kinetic=e,
                        potential=-2 * e, temperature=300.0 + step)


class TestEnergyLog:
    def test_round_trip_exact_floats(self, tmp_path):
        path = tmp_path / "e.jsonl"
        records = [rec(1, 0.1 + 0.2), rec(2, 1e-300), rec(3, 12345.6789)]
        with EnergyLogWriter(path) as w:
            for r in records:
                w.write(r)
        assert read_energy_log(path) == records  # bit-exact float round-trip

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EnergyLogWriter(path) as w:
            w.write(rec(1))
            w.write(rec(2))
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])  # crash mid-write of the last line
        assert [r.step for r in read_energy_log(path)] == [1]

    def test_resume_overlap_deduplicated(self, tmp_path):
        # Interrupted run logged steps 1-3, then a resume from step 2's
        # checkpoint re-logs 3 and continues; read back is one record
        # per step, last occurrence winning.
        path = tmp_path / "e.jsonl"
        with EnergyLogWriter(path) as w:
            for s in (1, 2, 3):
                w.write(rec(s))
        with EnergyLogWriter(path, append=True) as w:
            for s in (3, 4):
                w.write(rec(s))
        assert [r.step for r in read_energy_log(path)] == [1, 2, 3, 4]

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EnergyLogWriter(path) as w:
            w.write(rec(1))
        with EnergyLogWriter(path) as w:
            w.write(rec(9))
        assert [r.step for r in read_energy_log(path)] == [9]
