"""Unit tests for the streaming JSONL energy log."""

from repro.core.simulation import EnergyRecord
from repro.io import EnergyLogWriter, read_energy_log, truncate_energy_log


def rec(step, e=1.0):
    return EnergyRecord(step=step, time_fs=step * 2.5, kinetic=e,
                        potential=-2 * e, temperature=300.0 + step)


class TestEnergyLog:
    def test_round_trip_exact_floats(self, tmp_path):
        path = tmp_path / "e.jsonl"
        records = [rec(1, 0.1 + 0.2), rec(2, 1e-300), rec(3, 12345.6789)]
        with EnergyLogWriter(path) as w:
            for r in records:
                w.write(r)
        assert read_energy_log(path) == records  # bit-exact float round-trip

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EnergyLogWriter(path) as w:
            w.write(rec(1))
            w.write(rec(2))
        raw = path.read_bytes()
        path.write_bytes(raw[:-15])  # crash mid-write of the last line
        assert [r.step for r in read_energy_log(path)] == [1]

    def test_resume_overlap_deduplicated(self, tmp_path):
        # Interrupted run logged steps 1-3, then a resume from step 2's
        # checkpoint re-logs 3 and continues; read back is one record
        # per step, last occurrence winning.
        path = tmp_path / "e.jsonl"
        with EnergyLogWriter(path) as w:
            for s in (1, 2, 3):
                w.write(rec(s))
        with EnergyLogWriter(path, append=True) as w:
            for s in (3, 4):
                w.write(rec(s))
        assert [r.step for r in read_energy_log(path)] == [1, 2, 3, 4]

    def test_fresh_open_truncates(self, tmp_path):
        path = tmp_path / "e.jsonl"
        with EnergyLogWriter(path) as w:
            w.write(rec(1))
        with EnergyLogWriter(path) as w:
            w.write(rec(9))
        assert [r.step for r in read_energy_log(path)] == [9]


class TestTruncateEnergyLog:
    """Resume-time truncation: drop records past the checkpoint so an
    appended continuation is *byte*-identical to an uninterrupted log
    (dedup-on-read hides duplicates, but bytes are the contract)."""

    def write(self, path, steps):
        with EnergyLogWriter(path) as w:
            for s in steps:
                w.write(rec(s))

    def test_drops_past_checkpoint_records(self, tmp_path):
        path = tmp_path / "e.jsonl"
        self.write(path, [2, 4, 6, 8])
        assert truncate_energy_log(path, resume_step=4) == 2
        assert [r.step for r in read_energy_log(path)] == [2, 4]

    def test_byte_identity_after_resume_style_append(self, tmp_path):
        full, healed = tmp_path / "full.jsonl", tmp_path / "healed.jsonl"
        self.write(full, [2, 4, 6, 8])
        self.write(healed, [2, 4, 6])  # crashed after logging step 6
        truncate_energy_log(healed, resume_step=4)  # resume from step-4 ckpt
        with EnergyLogWriter(healed, append=True) as w:
            for s in (6, 8):
                w.write(rec(s))
        assert healed.read_bytes() == full.read_bytes()

    def test_torn_tail_dropped_even_before_resume_step(self, tmp_path):
        path = tmp_path / "e.jsonl"
        self.write(path, [2, 4])
        path.write_bytes(path.read_bytes()[:-9])  # tear the step-4 line
        assert truncate_energy_log(path, resume_step=10) == 1
        assert [r.step for r in read_energy_log(path)] == [2]

    def test_noop_when_nothing_past(self, tmp_path):
        path = tmp_path / "e.jsonl"
        self.write(path, [2, 4])
        before = path.read_bytes()
        assert truncate_energy_log(path, resume_step=4) == 2
        assert path.read_bytes() == before

    def test_missing_file_is_zero(self, tmp_path):
        assert truncate_energy_log(tmp_path / "absent.jsonl", 5) == 0
