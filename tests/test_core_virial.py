"""Unit tests for virials, pressure, and the NPT barostat."""

import numpy as np
import pytest

from repro.core import (
    BerendsenBarostat,
    ChemicalSystem,
    ForceCalculator,
    MDParams,
    compute_virial,
    instantaneous_pressure,
    minimize_energy,
    run_npt,
    virial_codec,
)
from repro.core.virial import BAR_PER_KCAL_MOL_A3
from repro.forcefield import LJTable, Topology
from repro.geometry import Box


def lj_gas(n_side=4, spacing=10.0, temperature=150.0, seed=0):
    """A dilute LJ gas: pressure should be near ideal."""
    n = n_side**3
    box = Box.cubic(n_side * spacing)
    grid = np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
    s = ChemicalSystem(
        box=box,
        positions=grid * spacing + spacing / 2,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    s.initialize_velocities(temperature, seed=seed)
    return s


class TestVirial:
    def test_dilute_gas_nearly_ideal(self):
        s = lj_gas()
        calc = ForceCalculator(s, MDParams(cutoff=10.0, mesh=(16, 16, 16)))
        w = compute_virial(calc, s.positions)
        p = instantaneous_pressure(s.kinetic_energy(), w.total, s.box.volume)
        # Ideal pressure of this configuration.
        p_ideal = (2 * s.kinetic_energy() / 3.0 / s.box.volume) * BAR_PER_KCAL_MOL_A3
        assert p == pytest.approx(p_ideal, rel=0.25)

    def test_virial_matches_volume_derivative(self):
        """W = -3V dU/dV: compare against a numerical volume derivative
        under uniform scaling (LJ-only system, plain cutoff)."""
        s = lj_gas(n_side=3, spacing=4.2, temperature=0.0)
        params = MDParams(cutoff=6.0, mesh=(16, 16, 16), lj_mode="cutoff")
        calc = ForceCalculator(s, params)
        w = compute_virial(calc, s.positions)

        def energy_at_scale(mu):
            scaled = ChemicalSystem(
                box=Box(s.box.lengths * mu),
                positions=s.positions * mu,
                masses=s.masses,
                charges=s.charges,
                type_ids=s.type_ids,
                lj=s.lj,
                topology=s.topology,
            )
            c = ForceCalculator(scaled, params)
            return c.compute(scaled.positions).potential_energy

        h = 1e-5
        dU_dlnV = (energy_at_scale(1 + h) - energy_at_scale(1 - h)) / (6 * h)
        assert w.total == pytest.approx(-3.0 * dU_dlnV, rel=1e-3, abs=1e-3)

    def test_fixed_point_virial_order_invariant(self):
        # Figure 4c's point: quantized contributions sum identically in
        # any order (here: vs a permuted evaluation through a shuffled
        # copy of the system).
        s = lj_gas(n_side=3, spacing=5.0)
        calc = ForceCalculator(s, MDParams(cutoff=7.0, mesh=(16, 16, 16)))
        codec = virial_codec()
        w1 = compute_virial(calc, s.positions, codec=codec)
        w2 = compute_virial(calc, s.positions, codec=codec)
        assert w1.total == w2.total  # bitwise equal floats

    def test_fixed_point_close_to_float(self):
        s = lj_gas(n_side=3, spacing=5.0)
        calc = ForceCalculator(s, MDParams(cutoff=7.0, mesh=(16, 16, 16)))
        w_float = compute_virial(calc, s.positions)
        w_fixed = compute_virial(calc, s.positions, codec=virial_codec())
        assert w_fixed.total == pytest.approx(w_float.total, abs=1e-6)

    def test_narrow_codec_loses_precision(self):
        # The reason for Figure 4c's wide accumulators.
        s = lj_gas(n_side=3, spacing=5.0)
        calc = ForceCalculator(s, MDParams(cutoff=7.0, mesh=(16, 16, 16)))
        w_float = compute_virial(calc, s.positions)
        w_narrow = compute_virial(calc, s.positions, codec=virial_codec(bits=20))
        w_wide = compute_virial(calc, s.positions, codec=virial_codec(bits=52))
        assert abs(w_wide.total - w_float.total) < abs(w_narrow.total - w_float.total)


class TestNPT:
    def test_overcompressed_box_expands(self):
        # Start 10% compressed: pressure is strongly positive and the
        # barostat should expand the box.
        from repro.systems import build_water_box

        s = build_water_box(n_molecules=32, seed=4)
        compressed = ChemicalSystem(
            box=Box(s.box.lengths * 0.9),
            positions=s.positions * 0.9,
            masses=s.masses,
            charges=s.charges,
            type_ids=s.type_ids,
            lj=s.lj,
            topology=s.topology,
            meta=s.meta,
        )
        params = MDParams(cutoff=4.2, mesh=(16, 16, 16))
        minimize_energy(compressed, params, max_steps=40)
        compressed.initialize_velocities(300.0, seed=5)
        side0 = float(compressed.box.lengths[0])
        records = run_npt(
            compressed,
            params,
            BerendsenBarostat(pressure_bar=1.0, tau=200.0, max_scale=0.01),
            dt=1.0,
            n_steps=60,
            scale_every=10,
        )
        assert records[0].pressure_bar > 1000.0  # strongly compressed
        assert records[-1].box_side > side0  # expanding toward target

    def test_scale_factor_clamped(self):
        b = BerendsenBarostat(pressure_bar=1.0, tau=100.0, max_scale=0.01)
        assert b.scale_factor(1e9, dt_eff=10.0) == pytest.approx(1.01)
        assert b.scale_factor(-1e9, dt_eff=10.0) == pytest.approx(0.99)
        assert b.scale_factor(1.0, dt_eff=10.0) == pytest.approx(1.0)
