"""Unit tests for the workload counter and performance models."""

import pytest

from repro.core import MDParams
from repro.perf import (
    DESMOND_DHFR_NS_PER_DAY,
    TABLE1_SIMULATIONS,
    PerformanceModel,
    workload_from_spec,
    workload_from_system,
)
from repro.systems import TABLE4_SYSTEMS, benchmark_by_name


@pytest.fixture(scope="module")
def pm():
    return PerformanceModel()


class TestWorkload:
    def test_analytic_pair_count_matches_built_system(self):
        # The analytic density estimate must agree with real counting.
        spec = benchmark_by_name("DHFR")
        sys_small = spec.build(scale=0.02, seed=0)
        params = MDParams(cutoff=6.0, mesh=(16, 16, 16))
        w = workload_from_system(sys_small, params, box_side_per_node=sys_small.box.lengths[0] / 2)
        import math

        rho = sys_small.n_atoms / sys_small.box.volume
        analytic = sys_small.n_atoms * (4 / 3) * math.pi * 6.0**3 * rho / 2
        assert w.pairs_within_cutoff == pytest.approx(analytic, rel=0.15)

    def test_per_node_split(self, pm):
        w = pm.dhfr_workload(13.0, 32)
        pn = w.per_node(512)
        assert pn.pairs_within_cutoff == pytest.approx(w.pairs_within_cutoff / 512)
        assert pn.n_atoms == w.n_atoms // 512

    def test_match_efficiency_in_range(self, pm):
        w = pm.dhfr_workload(13.0, 32)
        assert 0.05 < w.match_efficiency < 0.9

    def test_spec_workload(self):
        w = workload_from_spec(benchmark_by_name("T7Lig"))
        assert w.n_atoms == 116650
        assert w.pairs_within_cutoff > 1e7


class TestX86Model:
    def test_anchor_column_reproduced(self, pm):
        # Table 2, x86, small cutoff: the calibration must round-trip.
        w = pm.dhfr_workload(9.0, 64)
        p = pm.x86_profile(w)
        assert p.range_limited == pytest.approx(56.6, rel=0.02)
        assert p.fft == pytest.approx(12.3, rel=0.02)
        assert p.total == pytest.approx(88.5, rel=0.02)

    def test_large_cutoff_prediction(self, pm):
        # The other column is a prediction: paper 164.4 ms range-limited,
        # 1.4 ms FFT, 184.5 ms total.
        w = pm.dhfr_workload(13.0, 32)
        p = pm.x86_profile(w)
        assert p.range_limited == pytest.approx(164.4, rel=0.08)
        assert p.fft == pytest.approx(1.4, rel=0.15)
        assert p.total == pytest.approx(184.5, rel=0.08)

    def test_x86_slows_down_with_anton_parameters(self, pm):
        # "On the x86, this parameter change leads to an overall
        # slowdown of nearly twofold."
        small = pm.x86_profile(pm.dhfr_workload(9.0, 64)).total
        large = pm.x86_profile(pm.dhfr_workload(13.0, 32)).total
        assert 1.8 < large / small < 2.4


class TestAntonModel:
    def test_anchor_column_reproduced(self, pm):
        w = pm.dhfr_workload(13.0, 32)
        p = pm.anton_profile(w)
        assert p.range_limited == pytest.approx(1.9, rel=0.05)
        assert p.fft == pytest.approx(8.9, rel=0.05)
        assert p.mesh_interpolation == pytest.approx(2.0, rel=0.05)
        assert pm.anton.total_step_us_single_rate(w) == pytest.approx(15.4, rel=0.05)

    def test_small_cutoff_prediction(self, pm):
        # Predictions: paper 1.4 us range-limited, 39.2 us total.
        w = pm.dhfr_workload(9.0, 64)
        p = pm.anton_profile(w)
        assert p.range_limited == pytest.approx(1.4, rel=0.15)
        assert pm.anton.total_step_us_single_rate(w) == pytest.approx(39.2, rel=0.10)

    def test_anton_speeds_up_with_large_cutoff(self, pm):
        # "whereas on Anton, it results in a speedup of more than twofold."
        small = pm.anton.total_step_us_single_rate(pm.dhfr_workload(9.0, 64))
        large = pm.anton.total_step_us_single_rate(pm.dhfr_workload(13.0, 32))
        assert small / large > 2.0

    def test_dhfr_rate_anchor(self, pm):
        rate = pm.anton_us_per_day(benchmark_by_name("DHFR"))
        assert rate == pytest.approx(16.4, rel=0.03)


class TestFigure5Shape:
    def test_rate_decreases_with_system_size(self, pm):
        rates = [pm.anton_us_per_day(s) for s in TABLE4_SYSTEMS]
        sizes = [s.n_atoms for s in TABLE4_SYSTEMS]
        assert sizes == sorted(sizes)
        # Monotone within same-mesh groups; overall strongly decreasing.
        assert rates[0] > rates[-1] * 2

    def test_plateau_below_25k_atoms(self, pm):
        # gpW (9.9k) is not proportionally faster than DHFR (23.6k).
        gpw = pm.anton_us_per_day(benchmark_by_name("gpW"))
        dhfr = pm.anton_us_per_day(benchmark_by_name("DHFR"))
        atom_ratio = 23558 / 9865
        assert gpw / dhfr < 0.6 * atom_ratio

    def test_water_faster_than_protein(self, pm):
        # "Systems containing only water run 3-24% faster."
        for spec in TABLE4_SYSTEMS[:3]:
            prot = pm.anton_us_per_day(spec)
            water = pm.anton_us_per_day(spec, waters_only=True)
            assert 1.0 < water / prot < 1.30

    def test_128_node_partition_beats_quarter_rate(self, pm):
        # "each of which achieves 7.5 us/day on the DHFR system — well
        # over 25% of the performance ... across all 512 nodes."
        dhfr = benchmark_by_name("DHFR")
        r512 = pm.anton_us_per_day(dhfr, n_nodes=512)
        r128 = pm.anton_us_per_day(dhfr, n_nodes=128)
        assert r128 > 0.25 * r512
        assert r128 < r512


class TestHeadlineComparisons:
    def test_two_orders_of_magnitude_vs_practical_clusters(self, pm):
        rate = pm.anton_us_per_day(benchmark_by_name("DHFR"))
        assert pm.speedup_vs_practical_cluster(rate) > 100

    def test_vs_desmond(self, pm):
        # 16.4 us/day vs 471 ns/day ~ 35x.
        rate = pm.anton_us_per_day(benchmark_by_name("DHFR"))
        assert 25 < pm.speedup_vs_desmond(rate) < 45

    def test_table1_contents(self):
        assert TABLE1_SIMULATIONS[0].length_us == 1031.0
        assert TABLE1_SIMULATIONS[0].protein == "BPTI"
        longest_non_anton = max(
            s.length_us for s in TABLE1_SIMULATIONS if s.hardware != "Anton"
        )
        assert TABLE1_SIMULATIONS[0].length_us / longest_non_anton > 100

    def test_days_to_simulate(self, pm):
        # The millisecond BPTI run at ~10-18 us/day is months, not years;
        # the same on a 100 ns/day cluster is ~28 years.
        days_anton = pm.days_to_simulate(1031.0, 9.8)
        days_cluster = pm.days_to_simulate(1031.0, 0.1)
        assert 60 < days_anton < 150
        assert days_cluster / 365 > 25
        assert DESMOND_DHFR_NS_PER_DAY == 471.0


class TestRoutedPrediction:
    """The routed fabric on the critical path of the Figure 5 model."""

    def test_step_composition_without_comm_is_step_us(self, pm):
        w = pm.dhfr_workload(cutoff=13.0, mesh=64)
        assert pm.anton.step_us_routed(w, 512, 0.0, 0.0) == pytest.approx(
            pm.anton.step_us(w, 512)
        )

    def test_comm_only_binds_when_it_exceeds_compute(self, pm):
        w = pm.dhfr_workload(cutoff=13.0, mesh=64)
        base = pm.anton.step_us(w, 512)
        hidden = pm.anton.step_us_routed(w, 512, short_comm_us=0.01, long_comm_us=0.01)
        bound = pm.anton.step_us_routed(w, 512, short_comm_us=1e4, long_comm_us=1e4)
        assert hidden == pytest.approx(base)
        assert bound > base

    def test_dhfr_anchor_survives_routing(self, pm):
        """At full link bandwidth the synthesized communication hides
        under compute, so the routed rate keeps the 16.4 us/day anchor."""
        out = pm.anton_routed_prediction(benchmark_by_name("DHFR"), n_nodes=512)
        assert out["us_per_day_routed"] == pytest.approx(16.4, rel=0.03)
        assert out["us_per_day_routed"] == pytest.approx(out["us_per_day_counter"])

    def test_congestion_slows_the_routed_rate_monotonically(self, pm):
        from repro.network import CongestionModel

        spec = benchmark_by_name("DHFR")
        rates = [
            pm.anton_routed_prediction(
                spec, n_nodes=512,
                congestion=CongestionModel(bandwidth_scale=s),
            )["us_per_day_routed"]
            for s in (1.0, 0.05, 0.01)
        ]
        assert rates[0] > rates[1] > rates[2]

    def test_synthesized_traffic_conserves(self, pm):
        out = pm.anton_routed_prediction(benchmark_by_name("DHFR"), n_nodes=512)
        lhs = (
            out["link_bytes_total"]
            + out["multicast"]["saved_link_bytes"]
            + out["compression_saved_link_bytes"]
        )
        assert lhs == out["counter_hop_bytes"]
        assert out["multicast"]["saved_link_bytes"] > 0

    def test_scaling_sweep_shape(self, pm):
        rows = pm.anton_routed_scaling(
            benchmark_by_name("DHFR"), node_counts=(512, 1024)
        )
        assert [r["n_nodes"] for r in rows] == [512, 1024]
        for r in rows:
            assert r["step_us_routed"] > 0
            assert r["max_link_bytes"] > 0
        # Per-node traffic shrinks as boxes get smaller.
        assert rows[1]["max_link_bytes"] < rows[0]["max_link_bytes"]
