"""Unit tests for the integrators and the Section 4 numerics claims."""

import numpy as np
import pytest

from repro.core import (
    BerendsenThermostat,
    ChemicalSystem,
    MDParams,
    PositionCodec,
    Simulation,
)
from repro.forcefield import LJTable, Topology
from repro.geometry import Box


def argon_system(n_side=4, spacing=3.8, temperature=120.0, seed=5):
    n = n_side**3
    box = Box.cubic(n_side * spacing + 1.0)
    grid = np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
    s = ChemicalSystem(
        box=box,
        positions=grid * spacing + 1.0,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    s.initialize_velocities(temperature, seed=seed)
    return s


ARGON_PARAMS = MDParams(cutoff=7.0, mesh=(16, 16, 16))


class TestPositionCodec:
    def test_roundtrip_resolution(self):
        box = Box.cubic(50.0)
        codec = PositionCodec(box, bits=40)
        rng = np.random.default_rng(0)
        pos = rng.uniform(0, 50, (100, 3))
        back = codec.decode(codec.encode(pos))
        assert np.max(np.abs(back - pos)) <= 0.5 * np.max(codec.resolution)

    def test_advance_wraps_like_pbc(self):
        box = Box.cubic(10.0)
        codec = PositionCodec(box, bits=16)
        x = codec.encode(np.array([[9.9, 0.1, 5.0]]))
        step = np.array([[300, -800, 0]], dtype=np.int64)  # ~0.05 A steps
        out = codec.decode(codec.advance(x, step))
        assert 0.0 <= out[0, 0] < 10.0
        assert 0.0 <= out[0, 1] < 10.0

    def test_bits_validation(self):
        with pytest.raises(ValueError):
            PositionCodec(Box.cubic(10.0), bits=4)


class TestEnergyConservation:
    def test_fixed_point_nve(self):
        s = argon_system()
        sim = Simulation(s, ARGON_PARAMS, dt=2.0, mode="fixed", constraints=False)
        recs = sim.run(150, record_every=25)
        energies = [r.total for r in recs]
        assert abs(energies[-1] - energies[0]) < 2e-3 * abs(np.mean(energies)) + 1e-3

    def test_float_nve(self):
        s = argon_system()
        sim = Simulation(s, ARGON_PARAMS, dt=2.0, mode="float", constraints=False)
        recs = sim.run(150, record_every=25)
        energies = [r.total for r in recs]
        assert abs(energies[-1] - energies[0]) < 2e-3 * abs(np.mean(energies)) + 1e-3

    def test_fixed_matches_float_closely(self):
        s1 = argon_system()
        s2 = s1.copy()
        sim_fx = Simulation(s1, ARGON_PARAMS, dt=2.0, mode="fixed", constraints=False)
        sim_fl = Simulation(s2, ARGON_PARAMS, dt=2.0, mode="float", constraints=False)
        sim_fx.run(20)
        sim_fl.run(20)
        # Fixed-point quantization perturbs the chaotic trajectory only
        # slightly over 20 steps.
        assert np.max(np.abs(sim_fx.positions - sim_fl.positions)) < 1e-4


class TestDeterminism:
    def test_bitwise_identical_reruns(self):
        s = argon_system()
        runs = []
        for _ in range(2):
            sim = Simulation(s.copy(), ARGON_PARAMS, dt=2.0, mode="fixed", constraints=False)
            sim.run(40)
            runs.append(sim.integrator.state_codes())
        assert np.array_equal(runs[0][0], runs[1][0])
        assert np.array_equal(runs[0][1], runs[1][1])

    def test_determinism_with_thermostat_and_constraints(self):
        from repro.systems import build_water_box

        base = build_water_box(n_molecules=16, seed=0)
        base.initialize_velocities(300.0, seed=1)
        params = MDParams(cutoff=3.5, mesh=(16, 16, 16))
        runs = []
        for _ in range(2):
            sim = Simulation(
                base.copy(), params, dt=1.0, mode="fixed",
                thermostat=BerendsenThermostat(300.0),
            )
            sim.run(10)
            runs.append(sim.integrator.state_codes())
        assert np.array_equal(runs[0][0], runs[1][0])
        assert np.array_equal(runs[0][1], runs[1][1])


class TestExactReversibility:
    def test_forward_backward_recovers_initial_bits(self):
        # The paper's experiment (Section 4) at reduced scale: run, negate
        # velocities, run again, recover the start bit-for-bit.
        s = argon_system()
        sim = Simulation(s, ARGON_PARAMS, dt=2.0, mode="fixed", constraints=False)
        x0, v0 = sim.integrator.state_codes()
        sim.run(60)
        x_mid, _ = sim.integrator.state_codes()
        assert not np.array_equal(x0, x_mid)  # actually moved
        sim.integrator.negate_velocities()
        sim.run(60)
        sim.integrator.negate_velocities()
        x1, v1 = sim.integrator.state_codes()
        assert np.array_equal(x0, x1)
        assert np.array_equal(v0, v1)

    def test_thermostat_breaks_reversibility(self):
        # Confirms the paper's qualifier: reversible only *without*
        # temperature control.
        s = argon_system(temperature=80.0)
        sim = Simulation(
            s, ARGON_PARAMS, dt=2.0, mode="fixed", constraints=False,
            thermostat=BerendsenThermostat(300.0, tau=50.0),
        )
        x0, _ = sim.integrator.state_codes()
        sim.run(30)
        sim.integrator.negate_velocities()
        sim.run(30)
        x1, _ = sim.integrator.state_codes()
        assert not np.array_equal(x0, x1)


class TestMTS:
    def test_long_range_every_two_tracks_single_rate(self):
        from repro.systems import build_water_box
        from repro.core import minimize_energy

        base = build_water_box(n_molecules=27, seed=3)
        params1 = MDParams(cutoff=4.0, mesh=(16, 16, 16), long_range_every=1)
        minimize_energy(base, params1, max_steps=40)
        base.initialize_velocities(300.0, seed=4)
        params2 = MDParams(cutoff=4.0, mesh=(16, 16, 16), long_range_every=2)
        sim1 = Simulation(base.copy(), params1, dt=1.0, mode="fixed")
        sim2 = Simulation(base.copy(), params2, dt=1.0, mode="fixed")
        sim1.run(10)
        sim2.run(10)
        assert sim2.provider.long_evaluations == 6  # init + steps 2,4,..
        # MTS perturbs but does not derail the trajectory.
        assert np.max(np.abs(sim1.positions - sim2.positions)) < 0.05

    def test_thermostat_keeps_temperature(self):
        s = argon_system(temperature=120.0)
        sim = Simulation(
            s, ARGON_PARAMS, dt=2.0, mode="fixed", constraints=False,
            thermostat=BerendsenThermostat(60.0, tau=100.0),
        )
        sim.run(200)
        assert sim.integrator.temperature() < 90.0
