"""Property-based tests for periodic geometry invariants."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import Box, brute_force_pairs, neighbor_pairs

sides = st.floats(5.0, 60.0, allow_nan=False)


def positions_strategy(n_min=2, n_max=30):
    return st.integers(n_min, n_max).flatmap(
        lambda n: arrays(
            np.float64,
            (n, 3),
            elements=st.floats(-100.0, 100.0, allow_nan=False, allow_infinity=False),
        )
    )


@given(side=sides, d=arrays(np.float64, (5, 3), elements=st.floats(-500, 500, allow_nan=False)))
def test_minimum_image_within_half_box(side, d):
    box = Box.cubic(side)
    m = box.minimum_image(d)
    assert np.all(np.abs(m) <= side / 2 + 1e-9)


@given(side=sides, pos=positions_strategy())
def test_wrap_idempotent_and_in_range(side, pos):
    box = Box.cubic(side)
    w = box.wrap(pos)
    assert np.all((w >= 0) & (w < side))
    np.testing.assert_allclose(box.wrap(w), w, atol=1e-12)


@given(side=sides, pos=positions_strategy())
def test_distance_symmetric(side, pos):
    box = Box.cubic(side)
    d_ab = box.distance(pos[0], pos[1])
    d_ba = box.distance(pos[1], pos[0])
    assert d_ab == d_ba


@given(
    side=st.floats(10.0, 40.0),
    pos=positions_strategy(4, 25),
    shift=arrays(np.float64, (3,), elements=st.floats(-50, 50, allow_nan=False)),
)
@settings(max_examples=40, deadline=None)
def test_pair_list_translation_invariant(side, pos, shift):
    """Translating everything rigidly leaves the pair set unchanged.

    Pairs sitting exactly on the cutoff boundary are excluded: wrapping
    the translated coordinates rounds differently, so a distance equal
    to the cutoff can legitimately land on either side of the strict
    ``r2 < cutoff2`` test (e.g. atoms 4.0 A apart with cutoff 4.0).
    The invariant being asserted is about the pair *sets*, not about
    float rounding at a measure-zero boundary.
    """
    box = Box.cubic(side)
    cutoff = side / 3.0
    w = box.wrap(pos)
    d = box.minimum_image(w[:, None, :] - w[None, :, :])
    r = np.sqrt(np.sum(d * d, axis=-1))
    iu = np.triu_indices(len(pos), k=1)
    assume(not np.any(np.abs(r[iu] - cutoff) < 1e-9 * max(1.0, cutoff)))
    base = {(min(a, b), max(a, b)) for a, b in zip(*_ij(neighbor_pairs(pos, box, cutoff)))}
    moved = {(min(a, b), max(a, b)) for a, b in zip(*_ij(neighbor_pairs(pos + shift, box, cutoff)))}
    assert base == moved


def _ij(p):
    return p.i, p.j


@given(side=st.floats(12.0, 40.0), pos=positions_strategy(4, 40))
@settings(max_examples=30, deadline=None)
def test_cell_list_equals_brute_force(side, pos):
    box = Box.cubic(side)
    cutoff = side / 3.5
    a = neighbor_pairs(pos, box, cutoff)
    b = brute_force_pairs(box.wrap(pos), box, cutoff)
    sa = {(min(i, j), max(i, j)) for i, j in zip(a.i, a.j)}
    sb = {(min(i, j), max(i, j)) for i, j in zip(b.i, b.j)}
    assert sa == sb


@given(side=st.floats(12.0, 40.0), pos=positions_strategy(4, 30))
@settings(max_examples=30, deadline=None)
def test_pair_distances_below_cutoff(side, pos):
    box = Box.cubic(side)
    cutoff = side / 4.0
    p = neighbor_pairs(pos, box, cutoff)
    assert np.all(p.r2 < cutoff * cutoff)
    assert np.all(p.i != p.j)
