"""Property-based tests: threaded kernels == single-thread == NumPy, bitwise.

The thread-count knob's contract is stronger than "same answer": it is
*invisible in the bits* for every thread count.  Two mechanisms carry
that contract, and both are asserted here rather than assumed:

* Fixed-point accumulation — per-thread int64 partials folded with
  wrapping adds.  Int64 wrap is associative and commutative, so the
  fold order cannot change the result; ``test_wrapping_add_order_free``
  pins that algebraic fact directly (including at the accumulator
  extremes) instead of trusting it.
* Disjoint-output chunking — pair tables, mesh plans, and gather
  interpolation write each output row from exactly one lane, so any
  partition equals the serial loop.

Every threaded primitive is driven with inputs sized past its dispatch
threshold (small inputs fall back to the serial path by design, which
would make the comparison vacuous) and compared for exact equality
against both the single-thread compiled suite and the NumPy reference.

Skipped wholesale when the host has no C compiler.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MDParams, minimize_energy
from repro.kernels import available, get_suite, make_pair_spec
from repro.kernels.build import load
from repro.kernels.suite import _MT_MIN_PAIRS, CompiledKernels
from repro.machine import AntonMachine
from repro.systems import build_water_box

pytestmark = pytest.mark.skipif(
    not available(), reason="no C compiler: compiled kernel tier unavailable"
)

I64 = np.iinfo(np.int64)

#: Thread counts exercised everywhere; 2 and 8 are the bench sweep
#: points, 5 is deliberately coprime with typical input sizes so chunk
#: boundaries land at awkward offsets.
THREADS = (2, 5, 8)


@pytest.fixture(scope="module")
def suites():
    """(numpy, compiled-T1, {T: compiled-T}) with a shared serial base."""
    base = CompiledKernels(load())
    threaded = {t: CompiledKernels(load(), threads=t, serial=base) for t in THREADS}
    return get_suite("numpy"), base, threaded


@pytest.fixture(scope="module")
def table_machine():
    """A small tabulated-kernel machine supplying real tables/codecs."""
    params = MDParams(
        cutoff=4.0, mesh=(32, 32, 32), kernel_mode="table",
        long_range_every=2, quantize_mesh_bits=40,
    )
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, params, max_steps=20)
    system.initialize_velocities(300.0, seed=12)
    machine = AntonMachine(
        system.copy(), params, n_nodes=8, dt=1.0, backend="vectorized",
        kernel_tier="numpy",
    )
    yield machine
    machine.close()


# -- the algebraic foundation, asserted not assumed -----------------------


@given(seed=st.integers(0, 2**31 - 1), nparts=st.integers(2, 16))
@settings(max_examples=60, deadline=None)
def test_wrapping_add_order_free(seed, nparts):
    """Folding int64 partials wraps to the same bits in ANY order.

    This is the exact reduction the C pool runs (per-lane partials,
    wrapping adds), exercised at accumulator extremes where non-wrapping
    arithmetic would overflow and order-dependent schemes would differ.
    """
    rng = np.random.default_rng(seed)
    parts = rng.integers(I64.min, I64.max, (nparts, 32), dtype=np.int64)
    # Salt with exact extremes so the fold genuinely wraps.
    parts[rng.integers(0, nparts), :] = I64.max
    parts[rng.integers(0, nparts), :] = I64.min
    with np.errstate(over="ignore"):
        ref = parts[0].copy()
        for t in range(1, nparts):
            ref += parts[t]
        for _ in range(4):
            order = rng.permutation(nparts)
            out = parts[order[0]].copy()
            for t in order[1:]:
                out += parts[t]
            np.testing.assert_array_equal(out, ref)


# -- per-thread partial reductions ----------------------------------------


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_scatter_add_threaded_bitwise_at_wrap_extremes(suites, seed):
    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    size = 64
    n = int(rng.integers(4 * size, 4000))  # past the n >= 4*nelem gate
    keys = rng.integers(0, size, n)
    codes = rng.integers(-(2**62), 2**62, n)
    big = rng.random(n) < 0.25
    codes[big] = rng.choice([I64.min, I64.max, I64.max - 1], size=int(big.sum()))
    base = rng.integers(-(2**62), 2**62, size)
    want = base.copy()
    numpy_k.scatter_add(want, keys, codes)
    for k in (one, *threaded.values()):
        got = base.copy()
        k.scatter_add(got, keys, codes)
        np.testing.assert_array_equal(got, want)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_deposit_pairs_threaded_bitwise(suites, seed):
    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    n_atoms = 50
    n = int(rng.integers(n_atoms, 3000))  # past the 6n >= 4*nelem gate
    i = rng.integers(0, n_atoms, n)
    j = rng.integers(0, n_atoms, n)
    codes = rng.integers(-(2**62), 2**62, (n, 3))
    base = rng.integers(-(2**60), 2**60, (n_atoms, 3))
    want = base.copy()
    numpy_k.deposit_pairs(want, i, j, codes)
    for k in (one, *threaded.values()):
        got = base.copy()
        k.deposit_pairs(got, i, j, codes)
        np.testing.assert_array_equal(got, want)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_scatter_rows_threaded_bitwise(suites, seed):
    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    n_atoms = 40
    n = int(rng.integers(n_atoms, 2500))
    idx = rng.integers(0, n_atoms, n)
    codes = rng.integers(-(2**62), 2**62, (n, 3))
    base = rng.integers(-(2**60), 2**60, (n_atoms, 3))
    want = base.copy()
    numpy_k.scatter_rows(want, idx, codes)
    for k in (one, *threaded.values()):
        got = base.copy()
        k.scatter_rows(got, idx, codes)
        np.testing.assert_array_equal(got, want)


@given(seed=st.integers(0, 2**31 - 1), wide=st.booleans())
@settings(max_examples=25, deadline=None)
def test_mesh_spread_threaded_bitwise(suites, seed, wide):
    """Both index widths (int32/int64) through the partial-mesh reduce."""
    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    k_sten, n_mesh = 27, 512
    n = int(rng.integers(4 * n_mesh // k_sten, 1500))  # past n*k >= 4*npts
    dtype = np.int64 if wide else np.int32
    flat = rng.integers(0, n_mesh, (n, k_sten)).astype(dtype)
    w2 = rng.uniform(-1, 1, (n, k_sten))
    qc = rng.uniform(-1e6, 1e6, n)
    base = rng.integers(-(2**40), 2**40, n_mesh)
    want = base.copy()
    numpy_k.mesh_spread(want, flat, w2, qc)
    for k in (one, *threaded.values()):
        got = base.copy()
        k.mesh_spread(got, flat, w2, qc)
        np.testing.assert_array_equal(got, want)


# -- chunked compaction and disjoint-output chunking ----------------------


@given(seed=st.integers(0, 2**31 - 1), mode=st.sampled_from(["mixed", "none", "all"]))
@settings(max_examples=25, deadline=None)
def test_pair_filter_threaded_bitwise(suites, seed, mode):
    """Chunk-compacted survivors equal the serial scan in content AND order.

    `mode` drives the keep pattern to the adversarial ends (everything
    kept / nothing kept) where compaction boundary bugs would live.
    """
    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    n_atoms = 60
    n_cand = int(rng.integers(_MT_MIN_PAIRS, 3 * _MT_MIN_PAIRS))
    L = np.array([11.0, 13.0, 9.5])
    wrapped = rng.uniform(0, 1, (n_atoms, 3)) * L
    ii = rng.integers(0, n_atoms, n_cand)
    jj = rng.integers(0, n_atoms, n_cand)
    if mode == "none":
        cutoff2 = 1e-12  # nothing survives
    elif mode == "all":
        cutoff2 = 1e4  # everything survives
    else:
        cutoff2 = 4.0**2
    results = []
    for k in (numpy_k, one, *threaded.values()):
        oi = np.empty(n_cand, dtype=np.int64)
        oj = np.empty(n_cand, dtype=np.int64)
        odx = np.empty((n_cand, 3))
        or2 = np.empty(n_cand)
        m = k.pair_filter(wrapped, ii, jj, L, cutoff2, oi, oj, odx, or2)
        results.append((m, oi[:m].copy(), oj[:m].copy(), odx[:m].copy(), or2[:m].copy()))
    want = results[0]
    for got in results[1:]:
        assert got[0] == want[0]
        for x, y in zip(got[1:], want[1:]):
            np.testing.assert_array_equal(x, y)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=15, deadline=None)
def test_pair_table_codes_threaded_bitwise(suites, table_machine, seed):
    """Fused table kernel over pair chunks, incl. cutoff-edge r²."""
    numpy_k, one, threaded = suites
    calc = table_machine.calc
    s = calc.system
    codec = table_machine.fixed_config.force_codec()
    spec = make_pair_spec(calc.tables, s.lj, s.charges, s.type_ids, codec)
    rng = np.random.default_rng(seed)
    cutoff = float(calc.tables.cutoff)
    n = int(rng.integers(_MT_MIN_PAIRS, 2 * _MT_MIN_PAIRS))
    i = rng.integers(0, s.n_atoms, n)
    j = rng.integers(0, s.n_atoms, n)
    dx = rng.normal(0, cutoff / 3, (n, 3))
    r2 = np.sum(dx * dx, axis=1)
    r2[0] = 0.0
    r2[1] = np.nextafter(cutoff**2, 0.0)
    r2[2] = cutoff**2 * rng.random()
    results = []
    for k in (numpy_k, one, *threaded.values()):
        codes = np.empty((n, 3), dtype=np.int64)
        e_lj = np.empty(n)
        e_coul = np.empty(n)
        k.pair_table_codes(spec, i, j, dx, r2, codes, e_lj, e_coul)
        results.append((codes, e_lj, e_coul))
    for got in results[1:]:
        for x, y in zip(got, results[0]):
            np.testing.assert_array_equal(x, y)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_mesh_plan_build_threaded_bitwise(suites, seed):
    """Stencil-plan build chunked over atom rows across thread counts."""
    from repro.ewald.gse import GSEParams, GaussianSplitEwald
    from repro.geometry import Box

    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    box = Box(np.array([17.0, 17.0, 17.0]))
    gse = GaussianSplitEwald(box, GSEParams.choose(box, 4.0, (32, 32, 32)))
    pos = rng.uniform(-5.0, 22.0, (64, 3))
    want = gse.make_plan(pos, kernels=numpy_k)
    for k in (one, *threaded.values()):
        got = gse.make_plan(pos, kernels=k)
        np.testing.assert_array_equal(got.w, want.w)
        np.testing.assert_array_equal(got.flat, want.flat)
        for a, b in zip(got.axis_d, want.axis_d):
            np.testing.assert_array_equal(a, b)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=10, deadline=None)
def test_interpolate_forces_threaded_bitwise(suites, seed):
    """Row-block threaded gather == serial sweep, any thread count."""
    from repro.ewald.gse import GSEParams, GaussianSplitEwald
    from repro.geometry import Box

    numpy_k, one, threaded = suites
    rng = np.random.default_rng(seed)
    box = Box(np.array([17.0, 17.0, 17.0]))
    gse = GaussianSplitEwald(box, GSEParams.choose(box, 4.0, (32, 32, 32)))
    n = int(rng.integers(17, 120))
    pos = rng.uniform(0.0, 17.0, (n, 3))
    charges = rng.normal(0, 1, n)
    phi = rng.normal(0, 1, tuple(int(m) for m in gse.mesh))
    plan = gse.make_plan(pos, kernels=one)
    want = plan.interpolate_forces(charges, phi)
    for k in (one, *threaded.values()):
        got = plan.interpolate_forces(charges, phi, kernels=k)
        np.testing.assert_array_equal(got, want)


@given(seed=st.integers(0, 2**31 - 1), nrep=st.integers(2, 6))
@settings(max_examples=10, deadline=None)
def test_shake_rattle_batch_threaded_bitwise(suites, table_machine, seed, nrep):
    """Replica-parallel SHAKE/RATTLE == per-replica solo sweeps.

    Each replica block gets its own lane and its own convergence exit;
    a converged replica absorbing extra sweeps would change bits.
    """
    from repro.core.constraints import ConstraintSolver

    numpy_k, one, threaded = suites
    s = table_machine.calc.system
    solver = ConstraintSolver(s.topology, s.masses, s.box)
    rng = np.random.default_rng(seed)
    n = s.n_atoms
    ref = np.tile(s.positions, (nrep, 1))
    pos0 = ref + rng.normal(0, 0.05, ref.shape)
    vel0 = rng.normal(0, 0.1, ref.shape)
    want_pos = pos0.copy()
    numpy_k.shake_batch(solver, want_pos, ref, 1e-10, nrep, n)
    want_vel = vel0.copy()
    numpy_k.rattle_batch(solver, want_vel, want_pos, 1e-12, nrep, n)
    for k in (one, *threaded.values()):
        got_pos = pos0.copy()
        k.shake_batch(solver, got_pos, ref, 1e-10, nrep, n)
        np.testing.assert_array_equal(got_pos, want_pos)
        got_vel = vel0.copy()
        k.rattle_batch(solver, got_vel, got_pos, 1e-12, nrep, n)
        np.testing.assert_array_equal(got_vel, want_vel)


@given(seed=st.integers(0, 2**31 - 1), nrep=st.integers(2, 5))
@settings(max_examples=10, deadline=None)
def test_solve_stack_equals_per_replica_solo(seed, nrep):
    """Stacked FFT == R solo solves, bit for bit.

    This equality is what licenses farming the ensemble FFT to Python
    worker threads per replica when kernel_threads > 1.
    """
    from repro.ewald.gse import GSEParams, GaussianSplitEwald
    from repro.geometry import Box

    rng = np.random.default_rng(seed)
    box = Box(np.array([17.0, 17.0, 17.0]))
    gse = GaussianSplitEwald(box, GSEParams.choose(box, 4.0, (32, 32, 32)))
    Q = rng.normal(0, 1, (nrep, 32, 32, 32))
    phi_stack, e_stack = gse.solve_stack(Q)
    for r in range(nrep):
        phi_r, e_r = gse.solve(Q[r])
        np.testing.assert_array_equal(phi_stack[r], phi_r)
        assert e_stack[r] == e_r
