"""Property-based tests of the routed network fabric.

For arbitrary message sets on arbitrary torus shapes: summing routed
per-link bytes reproduces ``NetworkStats.hop_bytes`` exactly (with the
multicast/compression savings counters closing the identity when
those transforms are on), and primary/retransmit segregation survives
routing — recovery charges never perturb a single primary link.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fault.inject import FaultyNetwork
from repro.network import LinkRouter, RoutedConfig
from repro.parallel.comm import SimNetwork
from repro.parallel.topology import TorusTopology

dims_strategy = st.sampled_from(
    [(1, 1, 1), (2, 2, 2), (4, 2, 2), (8, 2, 1), (4, 4, 4), (4, 2, 8), (16, 2, 1)]
)

config_strategy = st.sampled_from(
    [
        RoutedConfig(),
        RoutedConfig(multicast="unicast"),
        RoutedConfig(delta_bits=8),
        RoutedConfig(delta_bits=31, multicast="unicast"),
    ]
)


def traffic():
    return st.tuples(
        dims_strategy,
        config_strategy,
        st.integers(0, 2**31 - 1),
        st.integers(1, 120),
    )


def charge_random(net, seed: int, n_messages: int, retransmit_every: int = 0):
    """Drive a deterministic mix of send / send_batch / multicast."""
    rng = np.random.default_rng(seed)
    n_nodes = net.topology.n_nodes
    tags = ("position_import", "force_export", "fft_axis0")
    for k in range(n_messages):
        kind = rng.integers(0, 3)
        tag = tags[rng.integers(0, len(tags))]
        retransmit = bool(retransmit_every and k % retransmit_every == 0)
        if kind == 0:
            net.send(
                int(rng.integers(0, n_nodes)), int(rng.integers(0, n_nodes)),
                int(rng.integers(1, 4096)), tag=tag, retransmit=retransmit,
            )
        elif kind == 1:
            m = int(rng.integers(1, 8))
            net.send_batch(
                rng.integers(0, n_nodes, size=m), rng.integers(0, n_nodes, size=m),
                rng.integers(1, 4096, size=m), tag=tag, retransmit=retransmit,
            )
        else:
            src = int(rng.integers(0, n_nodes))
            m = int(rng.integers(1, min(n_nodes + 1, 6)))
            dsts = rng.choice(n_nodes, size=m, replace=False)
            net.multicast(src, list(dsts), int(rng.integers(1, 4096)), tag=tag)


@given(traffic())
@settings(max_examples=30, deadline=None)
def test_link_bytes_conserve_hop_bytes(params):
    """The integer identity holding in every configuration:
    link_bytes + multicast_saved + compression_saved == hop_bytes."""
    dims, config, seed, n_messages = params
    topo = TorusTopology(dims)
    net = SimNetwork(topo)
    net.attach_router(LinkRouter(topo, config))
    charge_random(net, seed, n_messages)
    r = net.router
    lhs = (
        r.primary.total_bytes()
        + r.multicast_saved_hop_bytes
        + r.compression_saved_hop_bytes
    )
    assert lhs == net.stats.hop_bytes
    # Per-tag link arrays partition the primary pool exactly.
    tag_sum = sum(int(load.bytes.sum()) for load in r.by_tag.values())
    assert tag_sum == r.primary.total_bytes()


@given(traffic())
@settings(max_examples=30, deadline=None)
def test_attaching_router_never_changes_flat_stats(params):
    dims, config, seed, n_messages = params
    topo = TorusTopology(dims)
    plain, routed = SimNetwork(topo), SimNetwork(topo)
    routed.attach_router(LinkRouter(topo, config))
    charge_random(plain, seed, n_messages)
    charge_random(routed, seed, n_messages)
    a, b = plain.stats, routed.stats
    assert (a.messages, a.bytes, a.hop_bytes) == (b.messages, b.bytes, b.hop_bytes)
    assert a.by_tag == b.by_tag
    assert np.array_equal(a.per_node_messages, b.per_node_messages)
    assert np.array_equal(a.per_node_bytes, b.per_node_bytes)


@given(traffic())
@settings(max_examples=30, deadline=None)
def test_retransmit_segregation_survives_routing(params):
    """A run with interleaved retransmissions has exactly the clean
    run's primary link loads; the extras land in the recovery pool."""
    dims, config, seed, n_messages = params
    topo = TorusTopology(dims)
    clean, faulted = SimNetwork(topo), SimNetwork(topo)
    clean.attach_router(LinkRouter(topo, config))
    faulted.attach_router(LinkRouter(topo, config))
    charge_random(clean, seed, n_messages)
    charge_random(faulted, seed, n_messages, retransmit_every=3)
    # A retransmitted message occupies exactly the links its primary
    # copy would have, just in the other pool — so pool-wise the
    # faulted run decomposes the clean run's loads, link by link.
    assert np.array_equal(
        faulted.router.primary.bytes + faulted.router.recovery.bytes,
        clean.router.primary.bytes,
    )
    # And the faulted run's primary counters stay internally consistent.
    r = faulted.router
    lhs = (
        r.primary.total_bytes()
        + r.multicast_saved_hop_bytes
        + r.compression_saved_hop_bytes
    )
    assert lhs == faulted.stats.hop_bytes


@given(traffic())
@settings(max_examples=20, deadline=None)
def test_faulty_network_recovery_pool_segregation(params):
    """FaultyNetwork in recovery mode routes everything to the recovery
    pool, leaving primary link loads untouched."""
    dims, config, seed, n_messages = params
    topo = TorusTopology(dims)
    net = FaultyNetwork(topo)
    net.attach_router(LinkRouter(topo, config))
    charge_random(net, seed, n_messages)
    primary_bytes = net.router.primary.bytes.copy()
    primary_hop_bytes = net.primary_stats.hop_bytes
    net.set_recovery(True)
    charge_random(net, seed + 1, n_messages)
    net.set_recovery(False)
    assert np.array_equal(net.router.primary.bytes, primary_bytes)
    assert net.primary_stats.hop_bytes == primary_hop_bytes
    r = net.router
    lhs = (
        r.primary.total_bytes()
        + r.multicast_saved_hop_bytes
        + r.compression_saved_hop_bytes
    )
    assert lhs == net.primary_stats.hop_bytes
