"""Property-based tests of fault-schedule determinism and recovery.

The contract under test: a fault schedule is a pure function of
``(seed, rates, step)`` — no stream state, no query-order dependence —
and the recovery machinery built on it heals any injected sequence
back to the fault-free bits identically on every execution backend.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ChemicalSystem, MDParams
from repro.fault import MESSAGE_KINDS, NODE_KINDS, FaultSchedule
from repro.forcefield import LJTable, Topology
from repro.geometry import Box
from repro.io.serialize import pack_state
from repro.machine import AntonMachine

seeds = st.integers(0, 2**31 - 1)


def rates_strategy():
    message = st.dictionaries(
        st.sampled_from(MESSAGE_KINDS),
        st.floats(0.0, 1.0, allow_nan=False),
        max_size=len(MESSAGE_KINDS),
    )
    node = st.dictionaries(
        st.sampled_from(NODE_KINDS), st.integers(0, 3), max_size=len(NODE_KINDS)
    )
    return st.tuples(message, node).map(lambda t: {**t[0], **t[1]})


@given(seeds, rates_strategy(), st.integers(0, 1000), st.integers(0, 200))
@settings(max_examples=60, deadline=None)
def test_same_seed_same_events(seed, rates, start, n_steps):
    a = FaultSchedule(seed=seed, rates=rates).events(start, n_steps)
    b = FaultSchedule(seed=seed, rates=rates).events(start, n_steps)
    assert a == b
    assert all(start <= e.step < start + n_steps for e in a)
    assert {e.kind for e in a} <= set(rates)


@given(seeds, st.dictionaries(st.sampled_from(MESSAGE_KINDS),
                              st.floats(0.0, 1.0, allow_nan=False), min_size=1),
       st.integers(0, 500), st.integers(1, 150), st.integers(1, 149))
@settings(max_examples=60, deadline=None)
def test_rate_events_split_invariant(seed, rates, start, n_steps, cut):
    # Querying one window must equal concatenating its two halves, in
    # either order — the purity that makes schedules backend-agnostic.
    cut = cut % n_steps
    sched = FaultSchedule(seed=seed, rates=rates)
    whole = sched.events(start, n_steps)
    tail = sched.events(start + cut, n_steps - cut)  # queried first
    head = sched.events(start, cut)
    assert whole == sorted(head + tail)


@given(seeds, st.integers(0, 5), st.integers(1, 100))
@settings(max_examples=60, deadline=None)
def test_count_events_place_exactly_n(seed, count, n_steps):
    events = FaultSchedule(seed=seed, rates={"crash": count}).events(0, n_steps)
    assert len(events) == count
    assert all(0 <= e.step < n_steps for e in events)


# -- recovered-trajectory invariance across backends -------------------------

PARAMS = MDParams(cutoff=7.0, mesh=(16, 16, 16))
RATES = {"drop": 0.4, "corrupt": 0.2, "crash": 1}
_clean_cache: dict[str, bytes] = {}


def argon_system():
    n_side, spacing = 4, 3.8
    n = n_side**3
    box = Box.cubic(n_side * spacing + 1.0)
    grid = np.stack(np.meshgrid(*[np.arange(n_side)] * 3, indexing="ij"), -1).reshape(-1, 3)
    s = ChemicalSystem(
        box=box,
        positions=grid * spacing + 1.0,
        masses=np.full(n, 39.948),
        charges=np.zeros(n),
        type_ids=np.zeros(n, np.int64),
        lj=LJTable([3.4], [0.238]),
        topology=Topology(n),
    )
    s.initialize_velocities(120.0, seed=5)
    return s


def run_machine(backend, fault_seed=None, steps=6):
    faults = RATES if fault_seed is not None else None
    machine = AntonMachine(
        argon_system(), PARAMS, n_nodes=8, dt=2.0, constraints=False,
        backend=backend, faults=faults, fault_seed=fault_seed or 0,
    )
    try:
        machine.run(steps)
        return pack_state(machine.checkpoint()), machine.fault_report()
    finally:
        machine.close()


def clean_packed(backend):
    if backend not in _clean_cache:
        _clean_cache[backend], _ = run_machine(backend)
    return _clean_cache[backend]


@given(seeds)
@settings(max_examples=5, deadline=None)
def test_same_seed_identical_recovery_across_backends(fault_seed):
    serial_packed, serial_report = run_machine("serial", fault_seed)
    vector_packed, vector_report = run_machine("vectorized", fault_seed)
    # Identical fault handling on both backends...
    assert serial_report == vector_report
    assert serial_packed == vector_packed
    # ...and both healed to the fault-free trajectory.
    assert serial_packed == clean_packed("serial")
    assert vector_packed == clean_packed("vectorized")
