"""Property: a batched R-replica run IS R independent solo runs.

The ensemble engine's whole contract in one property: for any base
seed, replica count, and kernel tier, stepping R replicas through the
batched engine yields — per replica — the same state codes, the same
energy records, and the same trajectory *bytes* as R stock
:class:`~repro.core.Simulation` runs seeded identically.  No tolerance
anywhere: the comparison is ``==`` on integers, floats, and files.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BerendsenThermostat, MDParams, Simulation, minimize_energy
from repro.ensemble import EnsembleSimulation, derive_replica_seeds
from repro.io.serialize import pack_state
from repro.kernels import available
from repro.systems import build_water_box

TEMPERATURE = 300.0
STEPS = 6
RECORD_EVERY = 2  # multiple of long_range_every: totals are meaningful
TIERS = ["numpy"] + (["compiled"] if available() else [])

_BASE = build_water_box(n_molecules=32, seed=5)
PARAMS = MDParams(
    cutoff=min(5.5, _BASE.box.max_cutoff() * 0.9),
    mesh=(16, 16, 16),
    long_range_every=2,
    kernel_mode="table",
)
minimize_energy(_BASE, PARAMS, max_steps=30)


def run_solo(seed: int, traj_path) -> tuple:
    ss = _BASE.copy()
    ss.initialize_velocities(TEMPERATURE, seed=seed)
    sim = Simulation(
        ss, PARAMS, dt=1.0,
        thermostat=BerendsenThermostat(TEMPERATURE), constraints=True,
    )
    with sim.open_trajectory(traj_path) as traj:
        recs = sim.run(
            STEPS, record_every=RECORD_EVERY,
            trajectory=traj, trajectory_every=RECORD_EVERY,
        )
    return (
        sim.integrator.X.copy(),
        sim.integrator.V.copy(),
        recs,
        pack_state(sim.checkpoint()),
    )


@given(
    replicas=st.integers(1, 3),
    base_seed=st.integers(0, 2**32 - 1),
    tier=st.sampled_from(TIERS),
)
@settings(max_examples=8, deadline=None)
def test_batched_run_equals_solo_runs_bitwise(replicas, base_seed, tier):
    seeds = derive_replica_seeds(base_seed, replicas)
    ens = EnsembleSimulation(
        _BASE, PARAMS, dt=1.0, seeds=seeds, temperature=TEMPERATURE,
        thermostat=BerendsenThermostat(TEMPERATURE), constraints=True,
        kernel_tier=tier,
    )
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        writers = [
            ens.open_replica_trajectory(tmp / f"ens{r}.rrs")
            for r in range(replicas)
        ]
        try:
            ens_recs = ens.run(
                STEPS, record_every=RECORD_EVERY,
                trajectories=writers, trajectory_every=RECORD_EVERY,
            )
        finally:
            for w in writers:
                w.close()

        for r in range(replicas):
            solo_x, solo_v, solo_recs, solo_ck = run_solo(
                seeds[r], tmp / f"solo{r}.rrs"
            )
            ens_x, ens_v = ens.state_codes(r)
            np.testing.assert_array_equal(ens_x, solo_x)
            np.testing.assert_array_equal(ens_v, solo_v)
            # EnergyRecord is a plain dataclass: == is exact per field.
            assert ens_recs[r] == solo_recs
            assert (tmp / f"ens{r}.rrs").read_bytes() == (
                tmp / f"solo{r}.rrs"
            ).read_bytes()
            assert pack_state(ens.replica_checkpoint(r)) == solo_ck
