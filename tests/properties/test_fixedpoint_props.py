"""Property-based tests of fixed-point arithmetic invariants.

These are the properties the paper's Section 4 leans on: associativity
(and hence order-invariance) of wrapping addition, odd symmetry of
rounding (exact reversibility), and correctness of sums whose partial
results wrap (footnote 2).
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.fixedpoint import FixedFormat, ScaledFixed, round_nearest_even, wrapping_sum

fmt_bits = st.integers(min_value=4, max_value=48)


@given(
    bits=fmt_bits,
    values=st.lists(st.floats(-0.999, 0.999, allow_nan=False), min_size=2, max_size=30),
    seed=st.integers(0, 2**31 - 1),
)
@settings(max_examples=100, deadline=None)
def test_wrapping_sum_is_order_invariant(bits, values, seed):
    fmt = FixedFormat(bits)
    codes = fmt.encode(np.array(values))
    rng = np.random.default_rng(seed)
    shuffled = codes[rng.permutation(len(codes))]
    assert wrapping_sum(codes, fmt) == wrapping_sum(shuffled, fmt)


@given(
    bits=fmt_bits,
    values=st.lists(st.floats(-0.999, 0.999, allow_nan=False), min_size=2, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_wrapping_sum_correct_when_final_sum_representable(bits, values):
    fmt = FixedFormat(bits)
    codes = fmt.encode(np.array(values))
    true_code_sum = int(np.sum(codes.astype(object)))  # exact integer sum
    if fmt.min_code <= true_code_sum <= fmt.max_code:
        assert int(wrapping_sum(codes, fmt)) == true_code_sum


@given(x=st.floats(-1e12, 1e12, allow_nan=False))
def test_round_nearest_even_odd_symmetry(x):
    assert round_nearest_even(-x) == -round_nearest_even(x)


@given(x=st.floats(-1e9, 1e9, allow_nan=False))
def test_round_nearest_even_within_half(x):
    assert abs(round_nearest_even(x) - x) <= 0.5


@given(bits=fmt_bits, x=st.floats(-0.9999, 0.9999, allow_nan=False))
def test_encode_decode_within_half_step(bits, x):
    fmt = FixedFormat(bits)
    # Values that round up to the unrepresentable +1.0 wrap (hardware
    # two's-complement behaviour); exclude them from the error bound.
    assume(round_nearest_even(x * fmt.scale) <= fmt.max_code)
    assert abs(float(fmt.decode(fmt.encode(x))) - x) <= 0.5 * fmt.resolution + 1e-18


@given(bits=fmt_bits, raw=st.integers(-(2**62), 2**62))
def test_wrap_is_idempotent_and_in_range(bits, raw):
    fmt = FixedFormat(bits)
    wrapped = fmt.wrap(np.int64(raw))
    assert fmt.representable(wrapped)
    assert int(fmt.wrap(wrapped)) == int(wrapped)


@given(bits=fmt_bits, a=st.integers(-(2**40), 2**40), b=st.integers(-(2**40), 2**40))
def test_add_congruent_modulo_2B(bits, a, b):
    fmt = FixedFormat(bits)
    out = int(fmt.add(np.int64(a), np.int64(b)))
    assert (out - (a + b)) % (1 << bits) == 0


@given(
    limit=st.floats(1e-3, 1e6, allow_nan=False, allow_infinity=False),
    q=st.floats(-0.99, 0.99),
    bits=st.integers(8, 48),
)
def test_scaled_negation_symmetry(limit, q, bits):
    codec = ScaledFixed(FixedFormat(bits), limit=limit)
    phys = q * limit
    assert int(codec.quantize(-phys)) == -int(codec.quantize(phys))
