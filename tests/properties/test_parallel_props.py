"""Property-based tests of the NT and half-shell assignment rules."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, neighbor_pairs
from repro.parallel import (
    SpatialDecomposition,
    TorusTopology,
    half_shell_assign_pairs,
    nt_assign_pairs,
)

dims_strategy = st.sampled_from([(1, 1, 1), (2, 2, 2), (4, 4, 4), (4, 2, 2), (8, 2, 1)])


def scene():
    return st.tuples(
        dims_strategy,
        st.integers(5, 40),
        st.integers(0, 2**31 - 1),
    )


@given(scene())
@settings(max_examples=40, deadline=None)
def test_nt_assignment_valid_and_swap_invariant(params):
    dims, n, seed = params
    box = Box.cubic(24.0)
    decomp = SpatialDecomposition(box, TorusTopology(dims))
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 24, (n, 3))
    pairs = neighbor_pairs(pos, box, 6.0)
    if not len(pairs):
        return
    a = nt_assign_pairs(decomp, pos, pairs.i, pairs.j)
    b = nt_assign_pairs(decomp, pos, pairs.j, pairs.i)
    np.testing.assert_array_equal(a.node, b.node)
    assert np.all((a.node >= 0) & (a.node < decomp.torus.n_nodes))


@given(scene())
@settings(max_examples=40, deadline=None)
def test_half_shell_owner_is_an_endpoint(params):
    dims, n, seed = params
    box = Box.cubic(24.0)
    decomp = SpatialDecomposition(box, TorusTopology(dims))
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, 24, (n, 3))
    pairs = neighbor_pairs(pos, box, 6.0)
    if not len(pairs):
        return
    out = half_shell_assign_pairs(decomp, pos, pairs.i, pairs.j)
    owners = decomp.node_of(pos)
    assert np.all((out.node == owners[pairs.i]) | (out.node == owners[pairs.j]))
    assert not np.any(out.neutral)


@given(st.integers(5, 40), st.integers(0, 2**31 - 1), st.integers(0, 2))
@settings(max_examples=30, deadline=None)
def test_nt_assignment_translation_covariant(n, seed, axis):
    """Shifting all atoms by one node-box length along an axis shifts
    every pair's computing node by one along that axis.

    Restricted to a 4x4x4 torus with a sub-box cutoff: covariance is
    exact only away from the |delta| == dims/2 wrap ties, whose
    raw-coordinate tie-break is deterministic but not shift-covariant.
    """
    dims = (4, 4, 4)
    box = Box.cubic(24.0)
    topo = TorusTopology(dims)
    decomp = SpatialDecomposition(box, topo)
    rng = np.random.default_rng(seed)
    # Keep atoms off box-boundary edges so the shift cannot reassign
    # home boxes through rounding.
    pos = rng.uniform(0.05, 23.95, (n, 3))
    margin = 0.02 * decomp.node_box[axis]
    frac = np.mod(pos[:, axis], decomp.node_box[axis])
    pos = pos[(frac > margin) & (frac < decomp.node_box[axis] - margin)]
    if len(pos) < 2:
        return
    pairs = neighbor_pairs(pos, box, 5.0)
    if not len(pairs):
        return
    a = nt_assign_pairs(decomp, pos, pairs.i, pairs.j)
    shift = np.zeros(3)
    shift[axis] = decomp.node_box[axis]
    b = nt_assign_pairs(decomp, box.wrap(pos + shift), pairs.i, pairs.j)
    expected = np.array(
        [
            topo.node_id(tuple(np.add(topo.coord(int(nd)), np.eye(3, dtype=int)[axis])))
            for nd in a.node
        ]
    )
    np.testing.assert_array_equal(b.node, expected)
