"""Property tests: the buffered Verlet list is indistinguishable from a
fresh brute-force search for random boxes, cutoffs, skins, and motion
histories."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Box, NeighborList, brute_force_pairs


def _assert_same_pairs(a, b):
    np.testing.assert_array_equal(a.i, b.i)
    np.testing.assert_array_equal(a.j, b.j)
    np.testing.assert_array_equal(a.dx, b.dx)
    np.testing.assert_array_equal(a.r2, b.r2)


@given(
    side=st.floats(10.0, 50.0),
    n=st.integers(2, 120),
    cutoff_frac=st.floats(0.1, 0.49),
    skin=st.floats(0.0, 5.0),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=60, deadline=None)
def test_buffered_list_matches_brute_force(side, n, cutoff_frac, skin, seed):
    box = Box.cubic(side)
    cutoff = side * cutoff_frac
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, side, size=(n, 3))
    nl = NeighborList(box, cutoff, skin=skin)
    _assert_same_pairs(nl.pairs(pos), brute_force_pairs(box.wrap(pos), box, cutoff))


@given(
    side=st.floats(12.0, 40.0),
    n=st.integers(16, 100),
    skin=st.floats(0.5, 4.0),
    seed=st.integers(0, 2**31),
    n_moves=st.integers(1, 6),
)
@settings(max_examples=40, deadline=None)
def test_buffered_list_correct_along_a_trajectory(side, n, skin, seed, n_moves):
    """Random walks through rebuild-triggering and reusing regimes both
    give exactly the brute-force pair set at every visited configuration."""
    box = Box.cubic(side)
    cutoff = side / 4.0
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, side, size=(n, 3))
    nl = NeighborList(box, cutoff, skin=skin)
    for _ in range(n_moves):
        # Mix small (reuse) and large (rebuild) displacements.
        scale = rng.choice([0.1 * skin, 2.0 * skin])
        pos = pos + rng.uniform(-scale, scale, size=pos.shape)
        _assert_same_pairs(nl.pairs(pos), brute_force_pairs(box.wrap(pos), box, cutoff))
    assert nl.n_builds + nl.n_reuses == n_moves


@given(
    side=st.floats(12.0, 40.0),
    n=st.integers(16, 80),
    seed=st.integers(0, 2**31),
)
@settings(max_examples=30, deadline=None)
def test_forced_rebuild_changes_nothing(side, n, seed):
    box = Box.cubic(side)
    cutoff = side / 4.0
    rng = np.random.default_rng(seed)
    pos = rng.uniform(0, side, size=(n, 3))
    nl = NeighborList(box, cutoff, skin=2.0)
    before = nl.pairs(pos)
    nl.build(pos)
    _assert_same_pairs(before, nl.pairs(pos))
