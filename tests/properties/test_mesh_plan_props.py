"""Property tests of the shared mesh stencil plan.

The machine backends build one :class:`~repro.ewald.MeshStencilPlan`
per mesh evaluation and run charge spreading and force interpolation
from it, partitioned over simulated nodes by ``rows`` subsets.  These
properties pin down the bitwise contract that makes that safe: under
quantized (``mesh_codec``-style) arithmetic the plan kernels must be
exactly equivalent to the independent chunked GSE passes, for any atom
permutation, any kernel chunk size, and any partition of rows.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ewald import GaussianSplitEwald, GSEParams
from repro.fixedpoint import FixedFormat, ScaledFixed
from repro.geometry import Box

#: Same codec family the machine uses for its fixed-point mesh.
MESH_CODEC = ScaledFixed(FixedFormat(40), limit=8.0)

SIDE = 18.0


def scene():
    return st.tuples(
        st.integers(2, 24),  # atoms
        st.integers(0, 2**31 - 1),  # seed
        st.integers(1, 16),  # kernel chunk size
    )


def make_gse() -> GaussianSplitEwald:
    box = Box.cubic(SIDE)
    return GaussianSplitEwald(box, GSEParams.choose(box, 5.0, (24, 24, 24)))


def random_atoms(rng, n):
    pos = rng.uniform(0, SIDE, (n, 3))
    q = rng.uniform(-1, 1, n)
    return pos, q


@given(scene())
@settings(max_examples=25, deadline=None)
def test_plan_spread_matches_independent_path_under_permutation(params):
    n, seed, chunk = params
    rng = np.random.default_rng(seed)
    gse = make_gse()
    pos, q = random_atoms(rng, n)

    ref = np.zeros(gse.mesh_point_count(), dtype=np.int64)
    gse.spread_contributions(pos, q, ref, MESH_CODEC)

    perm = rng.permutation(n)
    acc = np.zeros_like(ref)
    gse.make_plan(pos[perm]).spread_codes(q[perm], acc, MESH_CODEC, chunk=chunk)
    np.testing.assert_array_equal(acc, ref)


@given(scene())
@settings(max_examples=25, deadline=None)
def test_plan_forces_match_independent_path_under_permutation(params):
    n, seed, chunk = params
    rng = np.random.default_rng(seed)
    gse = make_gse()
    pos, q = random_atoms(rng, n)
    phi, _ = gse.solve(gse.spread(pos, q, codec=MESH_CODEC))

    ref = gse.interpolate_forces(pos, q, phi)

    perm = rng.permutation(n)
    f = gse.make_plan(pos[perm]).interpolate_forces(q[perm], phi, chunk=chunk)
    np.testing.assert_array_equal(f, ref[perm])


@given(scene())
@settings(max_examples=25, deadline=None)
def test_rows_partition_is_invisible(params):
    """Spreading/interpolating by arbitrary row subsets (the serial
    backend's per-node split) is bitwise the whole-array result."""
    n, seed, chunk = params
    rng = np.random.default_rng(seed)
    gse = make_gse()
    pos, q = random_atoms(rng, n)
    plan = gse.make_plan(pos)

    whole = np.zeros(gse.mesh_point_count(), dtype=np.int64)
    plan.spread_codes(q, whole, MESH_CODEC)
    phi, _ = gse.solve(MESH_CODEC.reconstruct(MESH_CODEC.wrap(whole)).reshape(tuple(gse.mesh)))
    f_whole = plan.interpolate_forces(q, phi)

    owners = rng.integers(0, 3, n)
    split = np.zeros_like(whole)
    f_split = np.empty_like(f_whole)
    for node in range(3):
        rows = np.nonzero(owners == node)[0]
        if len(rows):
            plan.spread_codes(q, split, MESH_CODEC, rows=rows, chunk=chunk)
            f_split[rows] = plan.interpolate_forces(q, phi, rows=rows, chunk=chunk)
    np.testing.assert_array_equal(split, whole)
    np.testing.assert_array_equal(f_split, f_whole)


@given(scene())
@settings(max_examples=15, deadline=None)
def test_plan_potential_matches_independent_path(params):
    n, seed, chunk = params
    rng = np.random.default_rng(seed)
    gse = make_gse()
    pos, q = random_atoms(rng, n)
    phi, _ = gse.solve(gse.spread(pos, q, codec=MESH_CODEC))
    ref = gse.interpolate_potential(pos, phi)
    got = gse.make_plan(pos).interpolate_potential(phi, chunk=chunk)
    np.testing.assert_array_equal(got, ref)
