"""Property-based tests: compiled kernel tier == NumPy tier, bitwise.

The compiled tier's entire contract is that it is *invisible in the
bits*: every C kernel replicates its NumPy expression operation for
operation (same association order, same rounding, int64 accumulation
through uint64 so overflow wraps identically).  These properties drive
randomized inputs — including overflow-scale codes and cutoff-edge
distances — through both tiers and require exact array equality.

Skipped wholesale when the host has no C compiler; the NumPy tier is
the reference and needs no self-test here.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MDParams, minimize_energy
from repro.kernels import available, get_suite, make_pair_spec
from repro.machine import AntonMachine
from repro.systems import build_water_box

pytestmark = pytest.mark.skipif(
    not available(), reason="no C compiler: compiled kernel tier unavailable"
)

I64 = np.iinfo(np.int64)


@pytest.fixture(scope="module")
def tiers():
    return get_suite("numpy"), get_suite("compiled")


@pytest.fixture(scope="module")
def table_machine():
    """A small tabulated-kernel machine supplying real tables/codecs."""
    params = MDParams(
        cutoff=4.0, mesh=(32, 32, 32), kernel_mode="table",
        long_range_every=2, quantize_mesh_bits=40,
    )
    system = build_water_box(n_molecules=24, seed=11)
    minimize_energy(system, params, max_steps=20)
    system.initialize_velocities(300.0, seed=12)
    machine = AntonMachine(
        system.copy(), params, n_nodes=8, dt=1.0, backend="vectorized",
        kernel_tier="numpy",
    )
    yield machine
    machine.close()


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(0, 400))
@settings(max_examples=40, deadline=None)
def test_scatter_add_bitwise_including_wrap(tiers, seed, n):
    """Flat int64 scatter-add: identical bits even at overflow scale."""
    numpy_k, compiled_k = tiers
    rng = np.random.default_rng(seed)
    size = 64
    keys = rng.integers(0, size, n)
    # Mix ordinary magnitudes with near-limit ones so sums wrap.
    codes = rng.integers(-(2**62), 2**62, n)
    big = rng.random(n) < 0.25
    codes[big] = rng.choice([I64.min, I64.max, I64.max - 1], size=int(big.sum()))
    a = rng.integers(-(2**62), 2**62, size)
    b = a.copy()
    numpy_k.scatter_add(a, keys, codes)
    compiled_k.scatter_add(b, keys, codes)
    np.testing.assert_array_equal(a, b)


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(0, 300))
@settings(max_examples=40, deadline=None)
def test_deposit_pairs_bitwise(tiers, seed, n):
    """Newton-pair deposit (+codes at i, -codes at j), identical bits."""
    numpy_k, compiled_k = tiers
    rng = np.random.default_rng(seed)
    n_atoms = 50
    i = rng.integers(0, n_atoms, n)
    j = rng.integers(0, n_atoms, n)
    codes = rng.integers(-(2**62), 2**62, (n, 3))
    a = rng.integers(-(2**60), 2**60, (n_atoms, 3))
    b = a.copy()
    numpy_k.deposit_pairs(a, i, j, codes)
    compiled_k.deposit_pairs(b, i, j, codes)
    np.testing.assert_array_equal(a, b)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=30, deadline=None)
def test_pair_filter_bitwise(tiers, seed):
    """Minimum-image cutoff filter: same survivors, same dx/r2 bits."""
    numpy_k, compiled_k = tiers
    rng = np.random.default_rng(seed)
    n_atoms, n_cand = 60, 500
    L = np.array([11.0, 13.0, 9.5])
    wrapped = rng.uniform(0, 1, (n_atoms, 3)) * L
    ii = rng.integers(0, n_atoms, n_cand)
    jj = rng.integers(0, n_atoms, n_cand)
    cutoff2 = 4.0**2
    outs = []
    for k in (numpy_k, compiled_k):
        oi = np.empty(n_cand, dtype=np.int64)
        oj = np.empty(n_cand, dtype=np.int64)
        odx = np.empty((n_cand, 3))
        or2 = np.empty(n_cand)
        m = k.pair_filter(wrapped, ii, jj, L, cutoff2, oi, oj, odx, or2)
        outs.append((m, oi[:m].copy(), oj[:m].copy(), odx[:m].copy(), or2[:m].copy()))
    (mn, *an), (mc, *ac) = outs
    assert mn == mc
    for x, y in zip(an, ac):
        np.testing.assert_array_equal(x, y)


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(1, 400))
@settings(max_examples=30, deadline=None)
def test_pair_table_codes_bitwise(tiers, table_machine, seed, n):
    """Fused tabulated force/energy/quantize kernel vs the NumPy tier.

    Random pair geometries including cutoff-edge r² (0, the cutoff²
    itself, and just inside) must give identical int64 force codes and
    identical per-pair energy bits.
    """
    numpy_k, compiled_k = tiers
    calc = table_machine.calc
    s = calc.system
    codec = table_machine.fixed_config.force_codec()
    spec = make_pair_spec(calc.tables, s.lj, s.charges, s.type_ids, codec)
    rng = np.random.default_rng(seed)
    cutoff = float(calc.tables.cutoff)
    i = rng.integers(0, s.n_atoms, n)
    j = rng.integers(0, s.n_atoms, n)
    dx = rng.normal(0, cutoff / 3, (n, 3))
    r2 = np.sum(dx * dx, axis=1)
    # Force some edge distances into the batch.
    r2[0] = 0.0
    if n > 2:
        r2[1] = np.nextafter(cutoff**2, 0.0)
        r2[2] = cutoff**2 * rng.random()
    outs = []
    for k in (numpy_k, compiled_k):
        codes = np.empty((n, 3), dtype=np.int64)
        e_lj = np.empty(n)
        e_coul = np.empty(n)
        k.pair_table_codes(spec, i, j, dx, r2, codes, e_lj, e_coul)
        outs.append((codes, e_lj, e_coul))
    for x, y in zip(*outs):
        np.testing.assert_array_equal(x, y)


@given(seed=st.integers(0, 2**31 - 1), n=st.integers(0, 200))
@settings(max_examples=30, deadline=None)
def test_mesh_spread_bitwise(tiers, seed, n):
    """Quantized stencil scatter: rint(w*qc) int64 deposit, same bits."""
    numpy_k, compiled_k = tiers
    rng = np.random.default_rng(seed)
    k_sten, n_mesh = 27, 4096
    flat = rng.integers(0, n_mesh, (n, k_sten)).astype(np.int32)
    w2 = rng.uniform(-1, 1, (n, k_sten))
    qc = rng.uniform(-1e6, 1e6, n)
    a = rng.integers(-(2**40), 2**40, n_mesh)
    b = a.copy()
    numpy_k.mesh_spread(a, flat, w2, qc)
    compiled_k.mesh_spread(b, flat, w2, qc)
    np.testing.assert_array_equal(a, b)


@given(seed=st.integers(0, 2**31 - 1))
@settings(max_examples=20, deadline=None)
def test_mesh_plan_build_bitwise(tiers, seed):
    """Full stencil-plan build (weights, mask, indices) across tiers."""
    from repro.ewald.gse import GSEParams, GaussianSplitEwald
    from repro.geometry import Box

    numpy_k, compiled_k = tiers
    rng = np.random.default_rng(seed)
    box = Box(np.array([17.0, 17.0, 17.0]))
    gse = GaussianSplitEwald(box, GSEParams.choose(box, 4.0, (32, 32, 32)))
    pos = rng.uniform(-5.0, 22.0, (40, 3))  # wrap() handles out-of-box
    pn = gse.make_plan(pos, kernels=numpy_k)
    pc = gse.make_plan(pos, kernels=compiled_k)
    np.testing.assert_array_equal(pn.w, pc.w)
    np.testing.assert_array_equal(pn.flat, pc.flat)
    for a, b in zip(pn.axis_d, pc.axis_d):
        np.testing.assert_array_equal(a, b)
