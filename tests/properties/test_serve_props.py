"""Property-based tests of scheduler determinism.

The serve scheduler's contract is that it is a *pure function* of the
submission log: the same queue contents, priorities, and arrival order
always yield the identical slice schedule.  (That purity is what lets
the durable journal be the only persisted state — a restarted server
re-derives the same decisions.)  The properties below drive the real
:func:`~repro.serve.scheduler.plan` through the synthetic replay clock
and pin replay identity, conservation of work, and priority sanity on
random submission logs.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.scheduler import simulate_schedule

# A random submission log: up to 8 jobs, arrival ticks 0-5,
# priorities 0-3, each needing 1-4 slices.
submission_logs = st.lists(
    st.tuples(
        st.integers(0, 5),  # arrival tick
        st.integers(0, 3),  # priority
        st.integers(1, 4),  # slices of work
    ),
    min_size=1,
    max_size=8,
).map(lambda rows: [(t, f"job-{i}", p, s) for i, (t, p, s) in enumerate(rows)])

worker_counts = st.integers(1, 3)


@given(log=submission_logs, workers=worker_counts, data=st.data())
@settings(max_examples=60, deadline=None)
def test_replay_identity(log, workers, data):
    """Same submission log -> byte-for-byte identical slice schedule."""
    # Optionally group a random subset of jobs into one batch family.
    grouped = data.draw(st.booleans())
    group_of = {job_id: "fam" for _, job_id, _, _ in log} if grouped else None
    first = simulate_schedule(log, workers, group_of=group_of)
    second = simulate_schedule(log, workers, group_of=group_of)
    assert first == second


@given(log=submission_logs, workers=worker_counts)
@settings(max_examples=60, deadline=None)
def test_work_is_conserved(log, workers):
    """Every job receives exactly its requested slices — no loss, no
    duplication — regardless of preemptions along the way."""
    schedule = simulate_schedule(log, workers)
    executed: dict[str, int] = {}
    for _tick, _worker, jobs in schedule:
        for job_id in jobs:
            executed[job_id] = executed.get(job_id, 0) + 1
    assert executed == {job_id: slices for _, job_id, _, slices in log}


@given(log=submission_logs, workers=worker_counts)
@settings(max_examples=60, deadline=None)
def test_no_worker_double_booked(log, workers):
    """At any tick each worker executes at most one assignment."""
    schedule = simulate_schedule(log, workers)
    seen = set()
    for tick, worker, _jobs in schedule:
        assert (tick, worker) not in seen
        seen.add((tick, worker))
        assert 0 <= worker < workers


@given(log=submission_logs)
@settings(max_examples=60, deadline=None)
def test_strictly_higher_priority_finishes_first_on_one_worker(log):
    """With one worker and preemption, a job strictly higher-priority
    than every other job, arriving at tick 0, finishes before any
    lower-priority job gets a slice *after* its arrival... i.e. it is
    never made to wait behind lower-priority work."""
    top = max(p for _, _, p, _ in log)
    highs = [j for j in log if j[2] == top and j[0] == 0]
    if not highs or len([j for j in log if j[2] == top]) > 1:
        return  # need a unique top-priority job arriving at 0
    hi_id = highs[0][1]
    schedule = simulate_schedule(log, workers=1)
    hi_ticks = [t for t, _, jobs in schedule if hi_id in jobs]
    other_ticks = [t for t, _, jobs in schedule if jobs and hi_id not in jobs]
    if hi_ticks and other_ticks:
        assert max(hi_ticks) < min(t for t in other_ticks if t >= hi_ticks[0]) \
            or all(t < hi_ticks[0] for t in other_ticks)
